/**
 * @file
 * Analysis-infrastructure throughput, measured with google-benchmark:
 * symbolic engine cycles/second, concrete gate-level simulation rate,
 * netlist elaboration, assembly, and statistical power estimation.
 * The paper reports "complete analysis of our most complex benchmark
 * takes 2 hours" on a 2x Xeon server; this binary shows where this
 * implementation stands.
 */

#include <benchmark/benchmark.h>

#include "baseline/baselines.hh"
#include "bench430/benchmarks.hh"
#include "peak/peak_analysis.hh"
#include "power/statistical.hh"

using namespace ulpeak;

namespace {

msp::System &
sharedSystem()
{
    static msp::System sys(CellLibrary::tsmc65Like());
    return sys;
}

void
BM_NetlistElaboration(benchmark::State &state)
{
    for (auto _ : state) {
        msp::System sys(CellLibrary::tsmc65Like());
        benchmark::DoNotOptimize(sys.netlist().numGates());
    }
}
BENCHMARK(BM_NetlistElaboration)->Unit(benchmark::kMillisecond);

void
BM_Assemble(benchmark::State &state)
{
    const auto &b = bench430::benchmarkByName("FFT");
    for (auto _ : state) {
        isa::Image img = isa::assemble(b.source);
        benchmark::DoNotOptimize(img.segments.size());
    }
}
BENCHMARK(BM_Assemble)->Unit(benchmark::kMillisecond);

void
BM_ConcreteSimulation(benchmark::State &state)
{
    msp::System &sys = sharedSystem();
    const auto &b = bench430::benchmarkByName("tea8");
    isa::Image img = b.assembleImage();
    power::PowerContext ctx(sys.netlist(), 100e6);
    auto in = b.makeInputs(1, 3)[0];
    uint64_t cycles = 0;
    for (auto _ : state) {
        power::ConcreteRunOptions opts;
        opts.recordTrace = false;
        opts.portIn = in.portIn;
        auto run = power::runConcrete(sys, img, ctx, opts, in.ram);
        cycles += run.stats.cycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConcreteSimulation)->Unit(benchmark::kMillisecond);

void
BM_SymbolicAnalysis(benchmark::State &state)
{
    msp::System &sys = sharedSystem();
    // div: the forkiest kernel (2^8 paths).
    isa::Image img = bench430::benchmarkByName("div").assembleImage();
    uint64_t cycles = 0;
    for (auto _ : state) {
        peak::Options opts;
        peak::Report r = peak::analyze(sys, img, opts);
        cycles += r.totalCycles;
    }
    state.counters["sym-cycles/s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SymbolicAnalysis)->Unit(benchmark::kMillisecond);

void
BM_StatisticalPower(benchmark::State &state)
{
    msp::System &sys = sharedSystem();
    for (auto _ : state) {
        auto r = power::statisticalPower(sys.netlist(), 100e6, 0.4);
        benchmark::DoNotOptimize(r.totalPowerW);
    }
}
BENCHMARK(BM_StatisticalPower)->Unit(benchmark::kMillisecond);

void
BM_StressmarkGeneration(benchmark::State &state)
{
    msp::System &sys = sharedSystem();
    for (auto _ : state) {
        baseline::StressmarkConfig cfg;
        cfg.population = 6;
        cfg.generations = 2;
        cfg.evalCycles = 300;
        auto r = baseline::generateStressmark(sys, 100e6, cfg);
        benchmark::DoNotOptimize(r.peakPowerW);
    }
}
BENCHMARK(BM_StressmarkGeneration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
