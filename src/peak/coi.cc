#include "peak/coi.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "isa/disassembler.hh"
#include "msp/cpu.hh"

namespace ulpeak {
namespace peak {

std::string
CoiReport::toString() const
{
    std::ostringstream os;
    for (const CoiCycle &c : cois) {
        os << "COI " << c.flatCycle << ": "
           << c.powerW * 1e3 << " mW, " << c.fsmState << " of '"
           << c.disasm << "' (0x" << std::hex << c.instrPc << std::dec
           << ")\n";
        for (auto &[mod, w] : c.modulePowerW)
            os << "    " << mod << ": " << w * 1e3 << " mW\n";
    }
    return os.str();
}

CoiReport
analyzeCoi(const Netlist &nl, const sym::SymbolicResult &sr,
           const isa::Image &image, unsigned k,
           uint64_t min_separation)
{
    CoiReport report;
    auto refs = sr.tree.flattenRefs();
    if (refs.empty())
        return report;

    // Rank cycles by power.
    std::vector<uint64_t> order(refs.size());
    for (uint64_t i = 0; i < refs.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
        const auto &ra = refs[a];
        const auto &rb = refs[b];
        return sr.tree.node(ra.nodeId).powerW[ra.offset] >
               sr.tree.node(rb.nodeId).powerW[rb.offset];
    });

    auto flat = image.flatten();
    auto fetch = [&](uint32_t a) -> uint16_t {
        for (auto &[addr, w] : flat)
            if (addr == a)
                return w;
        return 0xffff;
    };

    std::vector<uint64_t> chosen;
    for (uint64_t idx : order) {
        if (report.cois.size() >= k)
            break;
        bool tooClose = false;
        for (uint64_t c : chosen)
            if (uint64_t(std::llabs(int64_t(c) - int64_t(idx))) <
                min_separation)
                tooClose = true;
        if (tooClose)
            continue;
        chosen.push_back(idx);

        const auto &ref = refs[idx];
        const sym::TreeNode &node = sr.tree.node(ref.nodeId);
        CoiCycle coi;
        coi.flatCycle = idx;
        coi.powerW = node.powerW[ref.offset];
        if (ref.offset < node.cycleInfo.size()) {
            const sym::CycleInfo &info = node.cycleInfo[ref.offset];
            coi.instrPc = info.instrPc;
            coi.disasm = isa::disassemble(info.instrPc, fetch);
            coi.fsmState = info.fsmState < msp::kNumStates
                               ? msp::fsmStateName(info.fsmState)
                               : "?";
        }
        if (ref.offset < node.modulePowerW.size()) {
            const auto &mods = node.modulePowerW[ref.offset];
            for (size_t m = 0; m < mods.size(); ++m) {
                if (mods[m] <= 0.0)
                    continue;
                coi.modulePowerW.emplace_back(
                    nl.moduleName(ModuleId(m)), double(mods[m]));
            }
            std::sort(coi.modulePowerW.begin(), coi.modulePowerW.end(),
                      [](auto &a, auto &b) { return a.second > b.second; });
        }
        report.cois.push_back(std::move(coi));
    }
    return report;
}

} // namespace peak
} // namespace ulpeak
