#include "peak/peak_analysis.hh"

#include <map>

namespace ulpeak {
namespace peak {

Report
analyze(msp::System &sys, const isa::Image &image, const Options &opts)
{
    sym::SymbolicConfig cfg;
    cfg.freqHz = opts.freqHz;
    cfg.recordActiveSets = opts.recordActiveSets;
    cfg.recordModuleTrace = opts.recordModuleTrace;
    cfg.inputDependentLoopBound = opts.inputDependentLoopBound;
    cfg.maxTotalCycles = opts.maxTotalCycles;
    cfg.evalMode = opts.evalMode;
    cfg.numThreads = opts.numThreads;
    cfg.recordEnvelope = opts.recordEnvelope;
    cfg.scenario = opts.scenario;
    cfg.snapshotMode = opts.snapshotMode;
    cfg.staticPrune = opts.staticPrune;
    cfg.packedExplore = opts.packedExplore;

    sym::SymbolicEngine engine(sys, cfg);
    sym::SymbolicResult sr = engine.run(image);

    Report r;
    r.ok = sr.ok;
    r.error = sr.error;
    r.peakPowerW = sr.peakPowerW;
    r.peakEnergyJ = sr.peakEnergyJ;
    r.npeJPerCycle = sr.npeJPerCycle;
    r.maxPathCycles = sr.maxPathCycles;
    r.totalCycles = sr.totalCycles;
    r.pathsExplored = sr.pathsExplored;
    r.dedupMerges = sr.dedupMerges;
    r.steals = sr.steals;
    r.snapshotBytesCopied = sr.snapshotBytesCopied;
    r.snapshotBytesFull = sr.snapshotBytesFull;
    r.perWorkerCycles = sr.perWorkerCycles;
    r.packedBatches = sr.packedBatches;
    r.packedSweeps = sr.packedSweeps;
    r.packedLaneCycles = sr.packedLaneCycles;
    if (sr.ok)
        r.flatTraceW = sr.tree.flatten();
    if (sr.ok && opts.recordEnvelope) {
        r.envelope.present = true;
        r.envelope.powerW = std::move(sr.envelopeW);
        r.envelope.windows = opts.envelopeWindows;
        if (opts.scenario.hasModes())
            buildWindowCurves(r.envelope, opts.scenario.phaseTclkS());
        else
            buildWindowCurves(r.envelope, 1.0 / opts.freqHz);
    }
    r.everActive = sr.everActive;
    r.peakActive = sr.peakActive;
    r.sym = std::move(sr);
    return r;
}

std::vector<std::pair<std::string, size_t>>
activeGatesPerModule(const Netlist &nl,
                     const std::vector<uint32_t> &gates)
{
    std::map<std::string, size_t> counts;
    for (uint32_t g : gates) {
        ModuleId top = nl.topLevelModuleOf(nl.gate(g).module);
        ++counts[nl.moduleName(top)];
    }
    return {counts.begin(), counts.end()};
}

} // namespace peak
} // namespace ulpeak
