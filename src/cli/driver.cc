#include "cli/driver.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bench430/benchmarks.hh"
#include "cli/parse_util.hh"

namespace ulpeak {
namespace cli {
namespace {

std::string
fmtDouble(double d)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
csvQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

bool
looksLikePath(const std::string &spec)
{
    if (spec.find('/') != std::string::npos)
        return true;
    auto ends = [&](const char *suf) {
        size_t n = std::strlen(suf);
        return spec.size() > n &&
               spec.compare(spec.size() - n, n, suf) == 0;
    };
    return ends(".s") || ends(".asm");
}

std::string
pathStem(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = base.find_last_of('.');
    return dot == std::string::npos ? base : base.substr(0, dot);
}

/** "envelope": {...} JSON object (no surrounding key). */
std::string
envelopeJson(const ulpeak::peak::Envelope &env)
{
    std::ostringstream o;
    o << "{\"cycles\": " << env.powerW.size()
      << ", \"peak_power_w\": " << fmtDouble(env.peakPowerW())
      << ", \"windows\": [";
    for (size_t w = 0; w < env.windows.size(); ++w)
        o << (w ? ", " : "") << env.windows[w];
    o << "], \"peak_window_energy_j\": [";
    for (size_t w = 0; w < env.peakWindowEnergyJ.size(); ++w)
        o << (w ? ", " : "") << fmtDouble(env.peakWindowEnergyJ[w]);
    o << "], \"power_w\": [";
    for (size_t c = 0; c < env.powerW.size(); ++c)
        o << (c ? ", " : "") << fmtDouble(double(env.powerW[c]));
    o << "], \"window_energy_j\": [";
    for (size_t w = 0; w < env.windowEnergyJ.size(); ++w) {
        o << (w ? ", [" : "[");
        for (size_t c = 0; c < env.windowEnergyJ[w].size(); ++c)
            o << (c ? ", " : "")
              << fmtDouble(double(env.windowEnergyJ[w][c]));
        o << "]";
    }
    o << "]}";
    return o.str();
}

/** Shared whole-token integer parsing (cli/parse_util.hh): rejects
 *  trailing garbage and "-1"-style wraparound like the other CLIs. */
bool
parseUnsigned(const std::string &s, uint64_t &out)
{
    return parseUnsignedInt(s.c_str(), out);
}

} // namespace

std::string
usage()
{
    return
        "ulpeak -- guaranteed peak power/energy requirements of "
        "application suites\n"
        "\n"
        "usage: ulpeak [--programs SPEC[,SPEC...]] [SPEC...] [options]\n"
        "\n"
        "program specs (mixable):\n"
        "  all               every bench430 program (14 benchmarks)\n"
        "  NAME              a bench430 program by name (mult, FFT, ...)\n"
        "  PATH.s|PATH.asm   an MSP430 assembly file from disk\n"
        "\n"
        "options:\n"
        "  --jobs N          program-level workers         (default 1)\n"
        "  --threads N       symbolic workers per analysis (default 1)\n"
        "  --freq HZ         operating frequency [Hz]  (default 1e8)\n"
        "  --eval-mode M     simulation kernel: event|full "
        "(default event)\n"
        "  --loop-bound N    input-dependent loop bound    (default 0)\n"
        "  --max-cycles N    total symbolic cycle budget "
        "(default 3000000)\n"
        "  --static-prune    skip gates the static lint analysis\n"
        "                    proves constant under each scenario\n"
        "                    (see ullint; never changes a reported\n"
        "                    number)\n"
        "  --packed-explore  drain the exploration frontier through\n"
        "                    the bit-parallel kernel, up to 64 paths\n"
        "                    per sweep (never changes a reported\n"
        "                    number)\n"
        "  --json FILE       write the suite report as JSON\n"
        "  --csv FILE        write per-program rows as CSV\n"
        "  --envelope[=json|csv]\n"
        "                    per-cycle peak power envelope + windowed\n"
        "                    peak-energy curves: json embeds them in\n"
        "                    the --json report, csv streams per-cycle\n"
        "                    rows to stdout (default json)\n"
        "  --windows LIST    envelope window lengths in cycles\n"
        "                    (default 1,10,100)\n"
        "  --modes[=table|json|csv]\n"
        "                    per-operating-mode report of mode-\n"
        "                    scheduled scenarios (implies envelope\n"
        "                    recording): per-mode envelope slices,\n"
        "                    schedule transitions with settling-window\n"
        "                    peaks, assertion verdicts and sizing\n"
        "                    findings; table appends sections to the\n"
        "                    stdout table, json/csv print a standalone\n"
        "                    deterministic report (default table)\n"
        "  --no-timings      omit wall-time / cache fields from the\n"
        "                    --json report (byte-identical output\n"
        "                    across --jobs/--threads/cache states)\n"
        "  --scenario S[,S...]\n"
        "                    deployment scenarios to sweep the suite\n"
        "                    across: preset names (unconstrained,\n"
        "                    ports-grounded, sensor-4bit,\n"
        "                    periodic-sensor, duty-cycled-dvfs) or\n"
        "                    scenario .json files; the report carries\n"
        "                    the scenario x program matrix and\n"
        "                    per-scenario suite maxima\n"
        "  --cache-dir DIR   result cache (default .ulpeak-cache)\n"
        "  --no-cache        disable the result cache\n"
        "  --fail-fast       stop claiming programs after a failure\n"
        "  --quiet           suppress the stdout table\n"
        "  --help            this text\n";
}

bool
parseArgs(int argc, const char *const *argv, CliOptions &out,
          std::string &err)
{
    auto splitSpecs = [&](const std::string &arg) {
        std::stringstream ss(arg);
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty())
                out.programSpecs.push_back(item);
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                err = std::string(flag) + " requires a value";
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            out.help = true;
        } else if (a == "--programs") {
            const char *v = value("--programs");
            if (!v)
                return false;
            splitSpecs(v);
        } else if (a == "--jobs" || a == "--threads") {
            const char *v = value(a.c_str());
            if (!v)
                return false;
            // Worker counts: a whole positive integer (0 workers is
            // as much a typo as trailing garbage).
            unsigned n = 0;
            if (!parsePositiveInt(v, n)) {
                err = a + ": not a positive worker count: " + v;
                return false;
            }
            if (a == "--jobs")
                out.jobs = n;
            else
                out.threads = n;
        } else if (a == "--loop-bound" || a == "--max-cycles") {
            const char *v = value(a.c_str());
            if (!v)
                return false;
            uint64_t n = 0;
            if (!parseUnsigned(v, n)) {
                err = a + ": not a number: " + v;
                return false;
            }
            if (a == "--loop-bound")
                out.loopBound = unsigned(n);
            else
                out.maxTotalCycles = n;
        } else if (a == "--freq") {
            const char *v = value("--freq");
            if (!v)
                return false;
            if (!parsePositiveDouble(v, out.freqHz)) {
                err = std::string("--freq: bad frequency: ") + v;
                return false;
            }
        } else if (a == "--eval-mode") {
            const char *v = value("--eval-mode");
            if (!v)
                return false;
            if (std::string(v) == "event")
                out.evalMode = EvalMode::EventDriven;
            else if (std::string(v) == "full")
                out.evalMode = EvalMode::FullSweep;
            else {
                err = std::string("--eval-mode: expected event|full, "
                                  "got ") +
                      v;
                return false;
            }
        } else if (a == "--envelope" ||
                   a.rfind("--envelope=", 0) == 0) {
            out.envelope = true;
            if (a.size() > std::strlen("--envelope")) {
                out.envelopeFormat =
                    a.substr(std::strlen("--envelope="));
                if (out.envelopeFormat != "json" &&
                    out.envelopeFormat != "csv") {
                    err = "--envelope: expected json|csv, got " +
                          out.envelopeFormat;
                    return false;
                }
            }
        } else if (a == "--modes" || a.rfind("--modes=", 0) == 0) {
            out.modes = true;
            if (a.size() > std::strlen("--modes")) {
                out.modesFormat = a.substr(std::strlen("--modes="));
                if (out.modesFormat != "table" &&
                    out.modesFormat != "json" &&
                    out.modesFormat != "csv") {
                    err = "--modes: expected table|json|csv, got " +
                          out.modesFormat;
                    return false;
                }
            }
        } else if (a == "--static-prune") {
            out.staticPrune = true;
        } else if (a == "--packed-explore") {
            out.packedExplore = true;
        } else if (a == "--no-timings") {
            out.noTimings = true;
        } else if (a == "--scenario") {
            const char *v = value("--scenario");
            if (!v)
                return false;
            std::stringstream ss(v);
            std::string item;
            while (std::getline(ss, item, ','))
                if (!item.empty())
                    out.scenarioSpecs.push_back(item);
            if (out.scenarioSpecs.empty()) {
                err = "--scenario: empty list";
                return false;
            }
        } else if (a == "--windows") {
            const char *v = value("--windows");
            if (!v)
                return false;
            std::stringstream ss(v);
            std::string item;
            out.windows.clear();
            while (std::getline(ss, item, ',')) {
                uint64_t n = 0;
                if (!parseUnsigned(item, n) || n == 0 ||
                    n > 0xffffffffull) {
                    err = std::string(
                              "--windows: bad window length: ") +
                          item;
                    return false;
                }
                out.windows.push_back(unsigned(n));
            }
            if (out.windows.empty()) {
                err = "--windows: empty list";
                return false;
            }
        } else if (a == "--json") {
            const char *v = value("--json");
            if (!v)
                return false;
            out.jsonPath = v;
        } else if (a == "--csv") {
            const char *v = value("--csv");
            if (!v)
                return false;
            out.csvPath = v;
        } else if (a == "--cache-dir") {
            const char *v = value("--cache-dir");
            if (!v)
                return false;
            out.cacheDir = v;
        } else if (a == "--no-cache") {
            out.noCache = true;
        } else if (a == "--fail-fast") {
            out.failFast = true;
        } else if (a == "--quiet") {
            out.quiet = true;
        } else if (!a.empty() && a[0] == '-') {
            err = "unknown option: " + a;
            return false;
        } else {
            splitSpecs(a);
        }
    }
    if (!out.help && out.programSpecs.empty()) {
        err = "no programs given (try --programs all)";
        return false;
    }
    return true;
}

std::vector<peak::BatchProgram>
resolvePrograms(const std::vector<std::string> &specs)
{
    std::vector<peak::BatchProgram> out;
    for (const std::string &spec : specs) {
        if (spec == "all") {
            for (const auto &b : bench430::allBenchmarks())
                out.push_back({b.name, b.assembleImage()});
        } else if (looksLikePath(spec)) {
            std::ifstream in(spec);
            if (!in)
                throw std::runtime_error("cannot read assembly file: " +
                                         spec);
            std::stringstream ss;
            ss << in.rdbuf();
            try {
                out.push_back({pathStem(spec),
                               isa::assemble(ss.str())});
            } catch (const std::exception &e) {
                throw std::runtime_error(spec + ": " + e.what());
            }
        } else {
            try {
                const bench430::Benchmark &b =
                    bench430::benchmarkByName(spec);
                out.push_back({b.name, b.assembleImage()});
            } catch (const std::out_of_range &) {
                std::string names;
                for (const std::string &n :
                     bench430::allBenchmarkNames())
                    names += (names.empty() ? "" : ", ") + n;
                throw std::runtime_error(
                    "unknown program '" + spec +
                    "' (known: all, " + names +
                    ", or a .s/.asm path)");
            }
        }
    }
    return out;
}

peak::BatchOptions
toBatchOptions(const CliOptions &cli)
{
    peak::BatchOptions b;
    b.analysis.freqHz = cli.freqHz;
    b.analysis.evalMode = cli.evalMode;
    b.analysis.numThreads = cli.threads;
    b.analysis.inputDependentLoopBound = cli.loopBound;
    b.analysis.maxTotalCycles = cli.maxTotalCycles;
    b.analysis.staticPrune = cli.staticPrune;
    b.analysis.packedExplore = cli.packedExplore;
    // The mode report is sliced from the envelope, so --modes
    // records one even without an explicit --envelope.
    b.analysis.recordEnvelope = cli.envelope || cli.modes;
    if (!cli.windows.empty())
        b.analysis.envelopeWindows = cli.windows;
    for (const std::string &spec : cli.scenarioSpecs)
        b.scenarios.push_back(scenario::Scenario::resolve(spec));
    b.jobs = cli.jobs;
    b.cacheDir = cli.noCache ? "" : cli.cacheDir;
    b.failFast = cli.failFast;
    return b;
}

std::string
toJson(const peak::BatchReport &rep, const peak::BatchOptions &opts,
       bool include_timings)
{
    std::ostringstream o;
    o << "{\n";
    o << "  \"tool\": \"ulpeak\",\n  \"format_version\": 3,\n";
    o << "  \"options\": {\n"
      << "    \"freq_hz\": " << fmtDouble(opts.analysis.freqHz)
      << ",\n"
      << "    \"eval_mode\": \""
      << (opts.analysis.evalMode == EvalMode::EventDriven ? "event"
                                                          : "full")
      << "\",\n"
      << "    \"loop_bound\": " << opts.analysis.inputDependentLoopBound
      << ",\n"
      << "    \"max_total_cycles\": " << opts.analysis.maxTotalCycles
      << "\n  },\n";
    if (include_timings) {
        o << "  \"run\": {\n"
          << "    \"jobs\": " << opts.jobs << ",\n"
          << "    \"threads\": " << opts.analysis.numThreads << ",\n"
          << "    \"cache\": "
          << (opts.cacheDir.empty() ? "false" : "true") << ",\n"
          << "    \"cache_hits\": " << rep.cacheHits << ",\n"
          << "    \"cache_misses\": " << rep.cacheMisses << ",\n"
          << "    \"wall_seconds\": " << fmtDouble(rep.wallSeconds)
          << "\n  },\n";
    }
    o << "  \"programs\": [\n";
    for (size_t i = 0; i < rep.programs.size(); ++i) {
        const peak::ProgramResult &r = rep.programs[i];
        o << "    {\"name\": \"" << jsonEscape(r.name) << "\", "
          << "\"scenario\": \"" << jsonEscape(r.scenario) << "\", "
          << "\"ok\": " << (r.ok ? "true" : "false");
        if (!r.ok)
            o << ", \"error\": \"" << jsonEscape(r.error) << "\"";
        o << ", \"peak_power_w\": " << fmtDouble(r.peakPowerW)
          << ", \"peak_energy_j\": " << fmtDouble(r.peakEnergyJ)
          << ", \"npe_j_per_cycle\": " << fmtDouble(r.npeJPerCycle)
          << ", \"max_path_cycles\": " << r.maxPathCycles
          << ", \"total_cycles\": " << r.totalCycles
          << ", \"paths_explored\": " << r.pathsExplored
          << ", \"dedup_merges\": " << r.dedupMerges;
        if (r.envelope.present)
            o << ", \"envelope\": " << envelopeJson(r.envelope);
        if (include_timings) {
            // Run-provenance statistics live with the timing fields:
            // steals and the per-worker split are
            // scheduling-dependent, and all of them are zero on
            // cache hits, so they would break the byte-identity
            // contract anywhere else.
            o << ", \"cached\": " << (r.cached ? "true" : "false")
              << ", \"wall_seconds\": " << fmtDouble(r.wallSeconds)
              << ", \"stats\": {\"steals\": " << r.steals
              << ", \"snapshot_bytes_copied\": "
              << r.snapshotBytesCopied
              << ", \"snapshot_bytes_full\": " << r.snapshotBytesFull
              << ", \"packed_batches\": " << r.packedBatches
              << ", \"packed_sweeps\": " << r.packedSweeps
              << ", \"packed_lane_cycles\": " << r.packedLaneCycles
              << ", \"per_worker_cycles\": [";
            for (size_t w = 0; w < r.perWorkerCycles.size(); ++w)
                o << (w ? ", " : "") << r.perWorkerCycles[w];
            o << "]}";
        }
        o << "}" << (i + 1 < rep.programs.size() ? "," : "") << "\n";
    }
    o << "  ],\n";
    o << "  \"scenarios\": [\n";
    for (size_t s = 0; s < rep.scenarios.size(); ++s) {
        const peak::ScenarioSummary &sum = rep.scenarios[s];
        const peak::ScenarioSummary &first = rep.scenarios.front();
        o << "    {\"name\": \"" << jsonEscape(sum.scenario)
          << "\", \"summary\": \"" << jsonEscape(sum.summary)
          << "\", \"ok\": " << (sum.ok ? "true" : "false")
          << ", \"max_peak_power_w\": "
          << fmtDouble(sum.maxPeakPowerW)
          << ", \"max_peak_power_program\": \""
          << jsonEscape(sum.maxPeakPowerProgram)
          << "\", \"max_peak_energy_j\": "
          << fmtDouble(sum.maxPeakEnergyJ)
          << ", \"max_peak_energy_program\": \""
          << jsonEscape(sum.maxPeakEnergyProgram)
          << "\", \"max_npe_j_per_cycle\": "
          << fmtDouble(sum.maxNpeJPerCycle) << ", \"max_npe_program\": \""
          << jsonEscape(sum.maxNpeProgram) << "\"";
        // How much this scenario's constraints tighten the suite
        // bounds relative to the first listed scenario (1.0 = no
        // change; < 1 = tighter).
        if (s > 0 && first.maxPeakPowerW > 0 &&
            first.maxPeakEnergyJ > 0)
            o << ", \"vs_first\": {\"peak_power\": "
              << fmtDouble(sum.maxPeakPowerW / first.maxPeakPowerW)
              << ", \"peak_energy\": "
              << fmtDouble(sum.maxPeakEnergyJ / first.maxPeakEnergyJ)
              << "}";
        if (sum.suiteEnvelope.present) {
            const sizing::EnvelopeSupply &es = sum.envelopeSupply;
            o << ", \"envelope_sizing\": {\"peak_power_w\": "
              << fmtDouble(es.peakPowerW)
              << ", \"sustained_power_w\": "
              << fmtDouble(es.sustainedPowerW) << "}";
        }
        o << "}" << (s + 1 < rep.scenarios.size() ? "," : "") << "\n";
    }
    o << "  ],\n";
    o << "  \"suite\": {\n"
      << "    \"programs\": " << rep.programs.size() << ",\n"
      << "    \"ok\": " << (rep.ok ? "true" : "false") << ",\n"
      << "    \"max_peak_power_w\": " << fmtDouble(rep.maxPeakPowerW)
      << ",\n"
      << "    \"max_peak_power_program\": \""
      << jsonEscape(rep.maxPeakPowerProgram) << "\",\n"
      << "    \"max_peak_energy_j\": " << fmtDouble(rep.maxPeakEnergyJ)
      << ",\n"
      << "    \"max_peak_energy_program\": \""
      << jsonEscape(rep.maxPeakEnergyProgram) << "\",\n"
      << "    \"max_npe_j_per_cycle\": "
      << fmtDouble(rep.maxNpeJPerCycle) << ",\n"
      << "    \"max_npe_program\": \"" << jsonEscape(rep.maxNpeProgram)
      << "\"\n  },\n";
    o << "  \"sizing\": {\n"
      << "    \"peak_power_w\": " << fmtDouble(rep.supply.peakPowerW)
      << ",\n"
      << "    \"peak_energy_j\": " << fmtDouble(rep.supply.peakEnergyJ)
      << ",\n    \"harvesters\": [\n";
    for (size_t i = 0; i < rep.supply.harvesters.size(); ++i) {
        const auto &h = rep.supply.harvesters[i];
        o << "      {\"name\": \"" << jsonEscape(h.name)
          << "\", \"area_cm2\": " << fmtDouble(h.areaCm2) << "}"
          << (i + 1 < rep.supply.harvesters.size() ? "," : "") << "\n";
    }
    o << "    ],\n    \"batteries\": [\n";
    for (size_t i = 0; i < rep.supply.batteries.size(); ++i) {
        const auto &b = rep.supply.batteries[i];
        o << "      {\"name\": \"" << jsonEscape(b.name)
          << "\", \"volume_l\": " << fmtDouble(b.volumeL)
          << ", \"mass_g\": " << fmtDouble(b.massG) << "}"
          << (i + 1 < rep.supply.batteries.size() ? "," : "") << "\n";
    }
    o << "    ]\n  }";
    if (rep.suiteEnvelope.present) {
        o << ",\n  \"suite_envelope\": "
          << envelopeJson(rep.suiteEnvelope) << ",\n";
        const sizing::EnvelopeSupply &es = rep.envelopeSupply;
        o << "  \"envelope_sizing\": {\n"
          << "    \"peak_power_w\": " << fmtDouble(es.peakPowerW)
          << ",\n"
          << "    \"sustained_power_w\": "
          << fmtDouble(es.sustainedPowerW) << ",\n"
          << "    \"windows\": [";
        for (size_t w = 0; w < es.windows.size(); ++w)
            o << (w ? ", " : "") << es.windows[w];
        o << "],\n    \"peak_window_energy_j\": [";
        for (size_t w = 0; w < es.peakWindowEnergyJ.size(); ++w)
            o << (w ? ", " : "")
              << fmtDouble(es.peakWindowEnergyJ[w]);
        o << "],\n    \"decap_f\": [";
        for (size_t w = 0; w < es.decapF.size(); ++w)
            o << (w ? ", " : "") << fmtDouble(es.decapF[w]);
        o << "],\n    \"harvesters\": [\n";
        for (size_t i = 0; i < es.harvesters.size(); ++i) {
            const auto &h = es.harvesters[i];
            o << "      {\"name\": \"" << jsonEscape(h.name)
              << "\", \"area_cm2\": " << fmtDouble(h.areaCm2) << "}"
              << (i + 1 < es.harvesters.size() ? "," : "") << "\n";
        }
        o << "    ]\n  }";
    }
    o << "\n}\n";
    return o.str();
}

std::string
toCsv(const peak::BatchReport &rep)
{
    std::ostringstream o;
    o << "name,scenario,ok,cached,peak_power_w,peak_energy_j,"
         "npe_j_per_cycle,max_path_cycles,total_cycles,"
         "paths_explored,dedup_merges,wall_seconds,error\n";
    for (const peak::ProgramResult &r : rep.programs) {
        o << csvQuote(r.name) << ',' << csvQuote(r.scenario) << ','
          << (r.ok ? 1 : 0) << ','
          << (r.cached ? 1 : 0) << ',' << fmtDouble(r.peakPowerW)
          << ',' << fmtDouble(r.peakEnergyJ) << ','
          << fmtDouble(r.npeJPerCycle) << ',' << r.maxPathCycles << ','
          << r.totalCycles << ',' << r.pathsExplored << ','
          << r.dedupMerges << ',' << fmtDouble(r.wallSeconds) << ','
          << csvQuote(r.error) << "\n";
    }
    return o.str();
}

std::string
toEnvelopeCsv(const peak::BatchReport &rep)
{
    std::ostringstream o;
    const peak::Envelope *any = nullptr;
    for (const peak::ProgramResult &r : rep.programs)
        if (r.envelope.present) {
            any = &r.envelope;
            break;
        }
    if (!any && rep.suiteEnvelope.present)
        any = &rep.suiteEnvelope;
    o << "program,scenario,cycle,envelope_w";
    if (any)
        for (unsigned w : any->windows)
            o << ",window_energy_j_w" << w;
    o << "\n";
    auto emit = [&o](const std::string &name,
                     const std::string &scenario,
                     const peak::Envelope &env) {
        for (size_t c = 0; c < env.powerW.size(); ++c) {
            o << csvQuote(name) << ',' << csvQuote(scenario) << ','
              << c << ',' << fmtDouble(double(env.powerW[c]));
            for (const auto &curve : env.windowEnergyJ)
                o << ','
                  << fmtDouble(c < curve.size() ? double(curve[c])
                                                : 0.0);
            o << "\n";
        }
    };
    for (const peak::ProgramResult &r : rep.programs)
        if (r.envelope.present)
            emit(r.name, r.scenario, r.envelope);
    for (const peak::ScenarioSummary &s : rep.scenarios)
        if (s.suiteEnvelope.present)
            emit("__suite__", s.scenario, s.suiteEnvelope);
    return o.str();
}

std::vector<peak::ModeReport>
buildModeReports(const peak::BatchReport &rep,
                 const std::vector<scenario::Scenario> &scens,
                 double lib_vdd)
{
    std::vector<peak::ModeReport> out(rep.programs.size());
    if (scens.empty() || rep.programs.empty())
        return out;
    // Rows are scenario-major: row i ran scenario i / (P programs).
    size_t nProg = rep.programs.size() / scens.size();
    if (nProg == 0)
        return out;
    for (size_t i = 0; i < rep.programs.size(); ++i) {
        size_t s = i / nProg;
        if (s >= scens.size() || !scens[s].hasModes())
            continue;
        const peak::ProgramResult &r = rep.programs[i];
        if (r.ok && r.envelope.present)
            out[i] =
                peak::buildModeReport(r.envelope, scens[s], lib_vdd);
    }
    return out;
}

std::string
toModesJson(const peak::BatchReport &rep,
            const std::vector<peak::ModeReport> &reports)
{
    std::ostringstream o;
    o << "{\n  \"tool\": \"ulpeak\",\n  \"report\": \"modes\",\n"
      << "  \"rows\": [\n";
    bool firstRow = true;
    for (size_t i = 0; i < rep.programs.size(); ++i) {
        if (i >= reports.size() || !reports[i].present)
            continue;
        const peak::ProgramResult &r = rep.programs[i];
        const peak::ModeReport &m = reports[i];
        o << (firstRow ? "" : ",\n");
        firstRow = false;
        o << "    {\"program\": \"" << jsonEscape(r.name)
          << "\", \"scenario\": \"" << jsonEscape(r.scenario)
          << "\", \"composite_peak_w\": "
          << fmtDouble(m.compositePeakW)
          << ", \"envelope_cycles\": " << m.envelopeCycles
          << ", \"all_assertions_pass\": "
          << (m.allAssertionsPass() ? "true" : "false")
          << ",\n     \"modes\": [";
        for (size_t k = 0; k < m.modes.size(); ++k) {
            const peak::ModeSlice &s = m.modes[k];
            o << (k ? ", " : "") << "{\"name\": \""
              << jsonEscape(s.name)
              << "\", \"vdd\": " << fmtDouble(s.vdd)
              << ", \"freq_hz\": " << fmtDouble(s.freqHz)
              << ", \"cycles\": " << s.cycles
              << ", \"peak_w\": " << fmtDouble(s.peakW)
              << ", \"peak_cycle\": " << s.peakCycle
              << ", \"avg_w\": " << fmtDouble(s.avgW)
              << ", \"energy_j\": " << fmtDouble(s.energyJ) << "}";
        }
        o << "],\n     \"transitions\": [";
        for (size_t k = 0; k < m.transitions.size(); ++k) {
            const peak::ModeTransition &t = m.transitions[k];
            o << (k ? ", " : "") << "{\"from\": \""
              << jsonEscape(t.from) << "\", \"to\": \""
              << jsonEscape(t.to) << "\", \"phase\": " << t.phase
              << ", \"occurrences\": " << t.occurrences
              << ", \"peak_entry_w\": " << fmtDouble(t.peakEntryW)
              << ", \"settle_cycles\": " << t.settleCycles
              << ", \"peak_settle_w\": " << fmtDouble(t.peakSettleW)
              << "}";
        }
        o << "],\n     \"assertions\": [";
        for (size_t k = 0; k < m.assertions.size(); ++k) {
            const peak::ModeAssertionResult &a = m.assertions[k];
            o << (k ? ", " : "") << "{\"mode\": \""
              << jsonEscape(a.assertion.mode)
              << "\", \"max_power_w\": "
              << fmtDouble(a.assertion.maxPowerW)
              << ", \"settle_cycles\": " << a.assertion.settleCycles
              << ", \"pass\": " << (a.pass ? "true" : "false")
              << ", \"checked_cycles\": " << a.checkedCycles
              << ", \"violations\": " << a.violations
              << ", \"first_violation_cycle\": "
              << a.firstViolationCycle
              << ", \"max_excess_w\": " << fmtDouble(a.maxExcessW)
              << "}";
        }
        o << "],\n     \"findings\": [";
        for (size_t k = 0; k < m.findings.size(); ++k)
            o << (k ? ", " : "") << "\"" << jsonEscape(m.findings[k])
              << "\"";
        o << "]}";
    }
    o << "\n  ]\n}\n";
    return o.str();
}

std::string
toModesCsv(const peak::BatchReport &rep,
           const std::vector<peak::ModeReport> &reports)
{
    std::ostringstream o;
    o << "program,scenario,kind,name,vdd,freq_hz,cycles,peak_w,"
         "avg_w,energy_j,pass,detail\n";
    for (size_t i = 0; i < rep.programs.size(); ++i) {
        if (i >= reports.size() || !reports[i].present)
            continue;
        const peak::ProgramResult &r = rep.programs[i];
        const peak::ModeReport &m = reports[i];
        auto row = [&](const char *kind, const std::string &name) {
            o << csvQuote(r.name) << ',' << csvQuote(r.scenario)
              << ',' << kind << ',' << csvQuote(name) << ',';
        };
        for (const peak::ModeSlice &s : m.modes) {
            row("mode", s.name);
            o << fmtDouble(s.vdd) << ',' << fmtDouble(s.freqHz)
              << ',' << s.cycles << ',' << fmtDouble(s.peakW) << ','
              << fmtDouble(s.avgW) << ',' << fmtDouble(s.energyJ)
              << ",,\n";
        }
        for (const peak::ModeTransition &t : m.transitions) {
            row("transition", t.from + "->" + t.to);
            o << ",," << t.occurrences << ','
              << fmtDouble(t.peakSettleW) << ",,,,"
              << csvQuote("phase " + std::to_string(t.phase) +
                          " settle " + std::to_string(t.settleCycles))
              << "\n";
        }
        for (const peak::ModeAssertionResult &a : m.assertions) {
            row("assertion", a.assertion.mode);
            o << ",," << a.checkedCycles << ','
              << fmtDouble(a.assertion.maxPowerW) << ",,,"
              << (a.pass ? 1 : 0) << ','
              << csvQuote("violations " +
                          std::to_string(a.violations) +
                          " max_excess_w " +
                          fmtDouble(a.maxExcessW))
              << "\n";
        }
        for (const std::string &f : m.findings) {
            row("finding", "");
            o << ",,,,,,," << csvQuote(f) << "\n";
        }
    }
    return o.str();
}

int
runCli(int argc, const char *const *argv)
{
    CliOptions cli;
    std::string err;
    if (!parseArgs(argc, argv, cli, err)) {
        std::fprintf(stderr, "ulpeak: %s\n\n%s", err.c_str(),
                     usage().c_str());
        return 2;
    }
    if (cli.help) {
        std::fputs(usage().c_str(), stdout);
        return 0;
    }

    std::vector<peak::BatchProgram> suite;
    peak::BatchOptions opts;
    try {
        suite = resolvePrograms(cli.programSpecs);
        // Resolves --scenario specs too; bad presets / unreadable
        // or malformed scenario files are usage errors like bad
        // program specs, not crashes.
        opts = toBatchOptions(cli);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ulpeak: %s\n", e.what());
        return 2;
    }
    const CellLibrary &lib = CellLibrary::tsmc65Like();
    peak::BatchReport rep = peak::analyzeBatch(lib, suite, opts);

    std::vector<peak::ModeReport> modeReps;
    if (cli.modes) {
        std::vector<scenario::Scenario> scens = opts.scenarios;
        if (scens.empty())
            scens.push_back(opts.analysis.scenario);
        modeReps = buildModeReports(rep, scens, lib.vdd());
    }

    if (!cli.quiet) {
        const bool multi = rep.scenarios.size() > 1;
        std::printf("%-12s %-15s %3s %6s %12s %14s %13s %7s %9s %8s\n",
                    "program", "scenario", "ok", "cached", "peak [mW]",
                    "NPE [pJ/cyc]", "energy [nJ]", "paths", "cycles",
                    "wall [s]");
        for (const peak::ProgramResult &r : rep.programs) {
            if (r.ok)
                std::printf(
                    "%-12s %-15s %3s %6s %12.3f %14.2f %13.3f %7u "
                    "%9" PRIu64 " %8.2f\n",
                    r.name.c_str(), r.scenario.c_str(), "yes",
                    r.cached ? "yes" : "no",
                    r.peakPowerW * 1e3, r.npeJPerCycle * 1e12,
                    r.peakEnergyJ * 1e9, r.pathsExplored,
                    r.totalCycles, r.wallSeconds);
            else
                std::printf("%-12s %-15s %3s  FAILED: %s\n",
                            r.name.c_str(), r.scenario.c_str(), "no",
                            r.error.c_str());
        }
        std::printf("\nsuite: %zu programs x %zu scenario%s, %s "
                    "(%.2f s, %u cache hits / %u misses)\n",
                    rep.programs.size() /
                        (rep.scenarios.empty()
                             ? 1
                             : rep.scenarios.size()),
                    rep.scenarios.size(), multi ? "s" : "",
                    rep.ok ? "all ok" : "FAILURES", rep.wallSeconds,
                    rep.cacheHits, rep.cacheMisses);
        for (const peak::ScenarioSummary &sum : rep.scenarios) {
            if (sum.maxPeakPowerProgram.empty())
                continue;
            if (multi)
                std::printf("\nscenario %s (%s):\n",
                            sum.scenario.c_str(),
                            sum.summary.c_str());
            std::printf("suite peak power : %.3f mW (%s) -- the "
                        "supply-sizing number\n",
                        sum.maxPeakPowerW * 1e3,
                        sum.maxPeakPowerProgram.c_str());
            std::printf("suite peak energy: %.3f nJ (%s)\n",
                        sum.maxPeakEnergyJ * 1e9,
                        sum.maxPeakEnergyProgram.c_str());
            std::printf("suite max NPE    : %.2f pJ/cycle (%s)\n",
                        sum.maxNpeJPerCycle * 1e12,
                        sum.maxNpeProgram.c_str());
            if (multi && &sum != &rep.scenarios.front() &&
                rep.scenarios.front().maxPeakPowerW > 0)
                std::printf("tightening       : peak power %.1f%% of "
                            "%s\n",
                            100.0 * sum.maxPeakPowerW /
                                rep.scenarios.front().maxPeakPowerW,
                            rep.scenarios.front().scenario.c_str());
            for (const auto &h : sum.supply.harvesters)
                std::printf("  harvester %-22s %12.4f cm^2\n",
                            h.name.c_str(), h.areaCm2);
            if (sum.suiteEnvelope.present) {
                const sizing::EnvelopeSupply &es = sum.envelopeSupply;
                std::printf("suite envelope   : %zu cycles, peak "
                            "%.3f mW, sustained %.3f mW\n",
                            sum.suiteEnvelope.cycles(),
                            es.peakPowerW * 1e3,
                            es.sustainedPowerW * 1e3);
                for (size_t w = 0; w < es.windows.size(); ++w)
                    std::printf("  window %6u cyc: peak energy "
                                "%10.3f nJ, decap %10.3f nF\n",
                                es.windows[w],
                                es.peakWindowEnergyJ[w] * 1e9,
                                es.decapF[w] * 1e9);
            }
        }
    }
    if (!cli.quiet && cli.modes && cli.modesFormat == "table") {
        for (size_t i = 0; i < modeReps.size(); ++i) {
            const peak::ModeReport &m = modeReps[i];
            if (!m.present)
                continue;
            const peak::ProgramResult &r = rep.programs[i];
            std::printf("\nmodes: %s under %s (composite peak "
                        "%.3f mW over %" PRIu64 " cycles)\n",
                        r.name.c_str(), r.scenario.c_str(),
                        m.compositePeakW * 1e3, m.envelopeCycles);
            for (const peak::ModeSlice &s : m.modes)
                std::printf("  mode %-10s %5.2f V %9.3g Hz: "
                            "%8" PRIu64 " cyc, peak %9.3f mW @%-8"
                            PRIu64 " avg %9.3f mW, %10.3f nJ\n",
                            s.name.c_str(), s.vdd, s.freqHz,
                            s.cycles, s.peakW * 1e3, s.peakCycle,
                            s.avgW * 1e3, s.energyJ * 1e9);
            for (const peak::ModeTransition &t : m.transitions)
                std::printf("  switch %s -> %-10s phase %-4" PRIu64
                            " x%-5" PRIu64 " entry %9.3f mW, settle "
                            "%" PRIu64 " cyc peak %9.3f mW\n",
                            t.from.c_str(), t.to.c_str(), t.phase,
                            t.occurrences, t.peakEntryW * 1e3,
                            t.settleCycles, t.peakSettleW * 1e3);
            for (const peak::ModeAssertionResult &a : m.assertions) {
                if (a.pass)
                    std::printf("  assert %-10s <= %9.3f mW "
                                "(settle %" PRIu64 "): PASS over "
                                "%" PRIu64 " cycles\n",
                                a.assertion.mode.c_str(),
                                a.assertion.maxPowerW * 1e3,
                                a.assertion.settleCycles,
                                a.checkedCycles);
                else
                    std::printf("  assert %-10s <= %9.3f mW "
                                "(settle %" PRIu64 "): FAIL -- %"
                                PRIu64 " violation(s), first at "
                                "cycle %" PRIu64 ", worst +%.3f mW\n",
                                a.assertion.mode.c_str(),
                                a.assertion.maxPowerW * 1e3,
                                a.assertion.settleCycles,
                                a.violations, a.firstViolationCycle,
                                a.maxExcessW * 1e3);
            }
            for (const std::string &f : m.findings)
                std::printf("  finding: %s\n", f.c_str());
        }
    }
    if (cli.envelope && cli.envelopeFormat == "csv")
        std::fputs(toEnvelopeCsv(rep).c_str(), stdout);
    if (cli.modes && cli.modesFormat == "json")
        std::fputs(toModesJson(rep, modeReps).c_str(), stdout);
    if (cli.modes && cli.modesFormat == "csv")
        std::fputs(toModesCsv(rep, modeReps).c_str(), stdout);

    if (!cli.jsonPath.empty()) {
        std::ofstream out(cli.jsonPath);
        if (!out) {
            std::fprintf(stderr, "ulpeak: cannot write %s\n",
                         cli.jsonPath.c_str());
            return 1;
        }
        out << toJson(rep, opts,
                      /*include_timings=*/!cli.noTimings);
    }
    if (!cli.csvPath.empty()) {
        std::ofstream out(cli.csvPath);
        if (!out) {
            std::fprintf(stderr, "ulpeak: cannot write %s\n",
                         cli.csvPath.c_str());
            return 1;
        }
        out << toCsv(rep);
    }
    return rep.ok ? 0 : 1;
}

} // namespace cli
} // namespace ulpeak
