#include "power/statistical.hh"

#include <cmath>

#include "logic/v4.hh"

namespace ulpeak {
namespace power {

namespace {

/** Evaluate a combinational cell over concrete booleans. */
bool
evalBool(CellKind k, const bool *in)
{
    V4 v[4];
    for (unsigned i = 0; i < cellFaninCount(k); ++i)
        v[i] = fromBool(in[i]);
    return evalCell(k, v) == V4::One;
}

} // namespace

StatisticalResult
statisticalPower(const Netlist &nl, double freq_hz,
                 double default_toggle_rate)
{
    StatisticalResult r;
    size_t n = nl.numGates();
    r.density.assign(n, 0.0);
    r.probOne.assign(n, 0.5);

    for (const EvalItem &item : nl.evalOrder()) {
        if (item.type == EvalItem::Type::Hook)
            continue;
        GateId g = item.index;
        const Gate &gate = nl.gate(g);
        CellKind k = gate.kind;
        switch (k) {
          case CellKind::Const0:
            r.probOne[g] = 0.0;
            r.density[g] = 0.0;
            continue;
          case CellKind::Const1:
            r.probOne[g] = 1.0;
            r.density[g] = 0.0;
            continue;
          case CellKind::Input:
            r.probOne[g] = 0.5;
            r.density[g] = default_toggle_rate;
            continue;
          default:
            break;
        }
        if (isSequential(k)) {
            // Registers resample once per cycle; the design-tool
            // default assumes they toggle at the default rate with
            // P(1)=0.5 (no knowledge of the state machine).
            r.probOne[g] = 0.5;
            r.density[g] = default_toggle_rate;
            continue;
        }

        unsigned nin = gate.nin;
        unsigned combos = 1u << nin;
        double p1 = 0.0;
        for (unsigned v = 0; v < combos; ++v) {
            bool in[4];
            double p = 1.0;
            for (unsigned i = 0; i < nin; ++i) {
                in[i] = (v >> i) & 1;
                double pi = r.probOne[gate.in[i]];
                p *= in[i] ? pi : (1.0 - pi);
            }
            if (p > 0.0 && evalBool(k, in))
                p1 += p;
        }
        r.probOne[g] = p1;

        // Transition density via Boolean differences:
        //   D(out) = sum_i P(df/dx_i) * D(x_i)
        double d = 0.0;
        for (unsigned i = 0; i < nin; ++i) {
            double sens = 0.0;
            for (unsigned v = 0; v < combos; ++v) {
                if ((v >> i) & 1)
                    continue; // enumerate the other inputs only
                bool in0[4], in1[4];
                double p = 1.0;
                for (unsigned j = 0; j < nin; ++j) {
                    bool bit = (v >> j) & 1;
                    in0[j] = bit;
                    in1[j] = bit;
                    if (j == i)
                        continue;
                    double pj = r.probOne[gate.in[j]];
                    p *= bit ? pj : (1.0 - pj);
                }
                in1[i] = true;
                if (p > 0.0 && evalBool(k, in0) != evalBool(k, in1))
                    sens += p;
            }
            d += sens * r.density[gate.in[i]];
        }
        // A net cannot toggle more than once per cycle in the
        // cycle-based model.
        r.density[g] = std::min(d, 1.0);
    }

    // Power integration.
    double sw = 0.0;
    for (GateId g = 0; g < n; ++g) {
        double eAvg = 0.5 * (nl.riseEnergyJ(g) + nl.fallEnergyJ(g));
        sw += r.density[g] * eAvg;
    }
    r.switchingPowerW = sw * freq_hz;
    r.clockPowerW = nl.clockEnergyPerCycleJ() * freq_hz;
    r.leakagePowerW = nl.totalLeakageW();
    r.totalPowerW = r.switchingPowerW + r.clockPowerW + r.leakagePowerW;
    return r;
}

} // namespace power
} // namespace ulpeak
