/**
 * @file
 * Batched concrete power-analysis runs on the bit-parallel kernel: one
 * PackedSimulator sweep executes 64 concrete runs of the same binary
 * that differ only in their per-cycle input-port schedules -- the
 * batching shape of concrete trace validation (many random port
 * schedules against one analyzed envelope).
 *
 * Per lane, runConcretePacked() is bit-identical to power::runConcrete
 * with ConcreteRunOptions{maxCycles, portSchedule = that lane's
 * schedule}: each lane owns a private copy of the behavioral memory,
 * halts independently (a halted lane keeps simulating but stops
 * recording, and its memory edge is inhibited exactly where the scalar
 * run would have stopped stepping), and its recorded trace floats are
 * the same sums in the same order (the PackedSimulator lane-identity
 * invariant). tests/test_packed_sim.cc and the ulfuzz packed property
 * lockstep the two.
 */

#ifndef ULPEAK_POWER_PACKED_RUN_HH
#define ULPEAK_POWER_PACKED_RUN_HH

#include <array>
#include <vector>

#include "power/analysis.hh"
#include "sim/packed_simulator.hh"

namespace ulpeak {
namespace power {

struct PackedRunOptions {
    uint64_t maxCycles = 200000;
    bool recordTrace = true;
    /** Per-lane per-cycle port values, cycled and indexed by absolute
     *  cycle exactly like ConcreteRunOptions::portSchedule. An empty
     *  lane schedule holds that lane's port at portIn. */
    std::array<std::vector<uint16_t>, PackedSimulator::kLanes>
        portSchedules;
    uint16_t portIn = 0;
};

/** One lane's run outcome: the fields of ConcreteRunResult the packed
 *  path supports, plus the lane's X-store fault flag. */
struct PackedLaneResult {
    bool halted = false;
    bool xStoreFault = false;
    TraceStats stats;
    std::vector<float> traceW;
    double totalEnergyJ = 0.0;
};

struct PackedRunResult {
    std::array<PackedLaneResult, PackedSimulator::kLanes> lanes;
};

/**
 * Run @p image concretely on @p sys's netlist, 64 port schedules at
 * once. The system's memory is reset and reloaded (then copied per
 * lane), so calls are independent of prior runs and of each other.
 */
PackedRunResult runConcretePacked(msp::System &sys,
                                  const isa::Image &image,
                                  const PowerContext &ctx,
                                  const PackedRunOptions &opts,
                                  const RamInit &ram_init = {});

/// @name Per-lane behavioral-memory mirrors (shared with src/fault)
/// @{

/** Per-lane mirror of System::memHook: asynchronous RAM/ROM read data
 *  for every lane, one access-energy bill per accessing lane. */
void packedMemHook(PackedSimulator &s, const msp::CpuHandles &h,
                   std::vector<Memory> &mem);

/**
 * Per-lane mirror of System::memEdge. Lanes in @p skip_mask are
 * skipped outright (their scalar counterpart stopped stepping before
 * this edge, so nothing may commit); additionally lanes already in
 * @p halted_mask are skipped, keeping memory, fault flag and halt
 * state bit-identical to independent scalar runs while other lanes
 * keep going.
 */
void packedMemEdge(PackedSimulator &s, const msp::CpuHandles &h,
                   std::vector<Memory> &mem, uint64_t &halted_mask,
                   uint64_t &fault_mask, uint64_t skip_mask);

/// @}

} // namespace power
} // namespace ulpeak

#endif // ULPEAK_POWER_PACKED_RUN_HH
