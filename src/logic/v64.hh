/**
 * @file
 * Bit-parallel three-valued logic: 64 independent V4 lanes packed into
 * two 64-bit planes, so one and/or/xor/not/mux evaluates 64 patterns
 * in a handful of word operations.
 *
 * Encoding (two-plane): lane i of a V64 holds
 *
 *   k bit | v bit | lane value
 *   ------+-------+-----------
 *     1   |   0   |   0
 *     1   |   1   |   1
 *     0   |   0   |   X
 *
 * The encoding is canonical: an X lane keeps its @ref V64::v bit at 0
 * (v is always a subset of k), so two V64s are lane-wise equal exactly
 * when both planes are equal -- the packed analogue of Word16 keeping
 * X bits of `value` at 0. Every operation below preserves canonical
 * form and computes, in each lane, exactly the scalar v4And / v4Or /
 * v4Xor / v4Not / v4Mux of that lane's operands (tests/test_logic.cc
 * pins this against the scalar truth tables). PackedSimulator builds
 * on these ops to sweep a netlist once for 64 input patterns.
 */

#ifndef ULPEAK_LOGIC_V64_HH
#define ULPEAK_LOGIC_V64_HH

#include <cstdint>
#include <string>

#include "logic/v4.hh"

namespace ulpeak {

/** 64 three-valued lanes: value plane @ref v, known plane @ref k. */
struct V64 {
    uint64_t v = 0; ///< value plane (lane subset of k: X lanes read 0)
    uint64_t k = 0; ///< known plane (0 = lane is X)

    /** Default: every lane X. */
    constexpr V64() = default;
    constexpr V64(uint64_t v_, uint64_t k_) : v(v_ & k_), k(k_) {}

    constexpr bool
    operator==(const V64 &o) const
    {
        return v == o.v && k == o.k;
    }
    constexpr bool operator!=(const V64 &o) const { return !(*this == o); }

    /** Lanes whose value differs from @p o (X counts as a value). */
    constexpr uint64_t
    diffMask(const V64 &o) const
    {
        return (v ^ o.v) | (k ^ o.k);
    }

    constexpr V4
    lane(unsigned i) const
    {
        uint64_t m = uint64_t(1) << i;
        if (!(k & m))
            return V4::X;
        return (v & m) ? V4::One : V4::Zero;
    }

    /**
     * Flip the value of every known lane in @p lane_mask; X lanes are
     * untouched (an upset of a bit with no defined value has no
     * defined effect -- the same rule as Simulator::injectSeuFlip and
     * Memory::flipBit). Preserves canonical form. Returns the mask of
     * lanes actually flipped.
     */
    constexpr uint64_t
    flipKnown(uint64_t lane_mask)
    {
        uint64_t m = lane_mask & k;
        v ^= m;
        return m;
    }

    void
    setLane(unsigned i, V4 val)
    {
        uint64_t m = uint64_t(1) << i;
        if (val == V4::X) {
            k &= ~m;
            v &= ~m;
        } else {
            k |= m;
            v = (val == V4::One) ? (v | m) : (v & ~m);
        }
    }

    /** All 64 lanes X. */
    static constexpr V64
    allX()
    {
        return V64();
    }

    /** The same concrete/unknown value in every lane. */
    static constexpr V64
    splat(V4 val)
    {
        if (val == V4::X)
            return V64();
        return V64(val == V4::One ? ~uint64_t(0) : 0, ~uint64_t(0));
    }

    /** Render as 64 characters, lane 63 first (VCD style). */
    std::string toString() const;
};

/** Lane-wise Kleene AND (64 x v4And). A known 0 forces the lane known
 *  regardless of the other operand. */
constexpr V64
v64And(V64 a, V64 b)
{
    V64 r;
    r.v = a.v & b.v;
    r.k = (a.k & b.k) | (a.k & ~a.v) | (b.k & ~b.v);
    return r;
}

/** Lane-wise Kleene OR (64 x v4Or). A known 1 dominates. Canonical
 *  since v bits only appear where some operand was known-1. */
constexpr V64
v64Or(V64 a, V64 b)
{
    V64 r;
    r.v = a.v | b.v;
    r.k = (a.k & b.k) | a.v | b.v;
    return r;
}

/** Lane-wise XOR (64 x v4Xor): X if either lane is X. */
constexpr V64
v64Xor(V64 a, V64 b)
{
    V64 r;
    r.k = a.k & b.k;
    r.v = (a.v ^ b.v) & r.k;
    return r;
}

/** Lane-wise NOT (64 x v4Not). */
constexpr V64
v64Not(V64 a)
{
    V64 r;
    r.k = a.k;
    r.v = ~a.v & a.k;
    return r;
}

/** Lane-wise 2:1 mux (64 x v4Mux): sel 0 -> a, 1 -> b; an X select
 *  resolves only where the data lanes are known and agree. */
constexpr V64
v64Mux(V64 sel, V64 a, V64 b)
{
    uint64_t sel0 = sel.k & ~sel.v;
    uint64_t sel1 = sel.v;
    uint64_t selx = ~sel.k;
    uint64_t agree = a.k & b.k & ~(a.v ^ b.v);
    V64 r;
    r.k = (sel0 & a.k) | (sel1 & b.k) | (selx & agree);
    r.v = ((sel0 & a.v) | (sel1 & b.v) | (selx & agree & a.v));
    return r;
}

} // namespace ulpeak

#endif // ULPEAK_LOGIC_V64_HH
