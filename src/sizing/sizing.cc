#include "sizing/sizing.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ulpeak {
namespace sizing {

const std::vector<BatteryType> &
batteryTypes()
{
    // Table 1.1.
    static const std::vector<BatteryType> types = {
        {"Li-ion", 460.0, 1.152},   {"Alkaline", 400.0, 0.331},
        {"Carbon-zinc", 130.0, 1.080}, {"Ni-MH", 340.0, 0.504},
        {"Ni-cad", 140.0, 0.828},   {"Lead-acid", 146.0, 0.360},
    };
    return types;
}

const std::vector<HarvesterType> &
harvesterTypes()
{
    // Table 1.2.
    static const std::vector<HarvesterType> types = {
        {"Photovoltaic (sun)", 100e-3},
        {"Photovoltaic (indoor)", 100e-6},
        {"Thermoelectric", 60e-6},
        {"Ambient airflow", 1e-3},
    };
    return types;
}

double
harvesterAreaCm2(double peak_power_w, const HarvesterType &harvester)
{
    return peak_power_w / harvester.powerDensityWPerCm2;
}

double
batteryVolumeL(double energy_j, const BatteryType &battery)
{
    return energy_j / (battery.energyDensityMJPerL * 1e6);
}

double
batteryMassG(double energy_j, const BatteryType &battery)
{
    return energy_j / battery.specificEnergyJPerG;
}

double
harvesterAreaReductionPct(double baseline_w, double xbased_w,
                          double processor_fraction)
{
    if (baseline_w <= 0.0)
        return 0.0;
    double rel = 1.0 - xbased_w / baseline_w;
    if (rel < 0.0)
        rel = 0.0;
    return processor_fraction * rel * 100.0;
}

double
batteryVolumeReductionPct(double baseline_npe, double xbased_npe,
                          double processor_fraction)
{
    if (baseline_npe <= 0.0)
        return 0.0;
    double rel = 1.0 - xbased_npe / baseline_npe;
    if (rel < 0.0)
        rel = 0.0;
    return processor_fraction * rel * 100.0;
}

double
decapFarads(double window_energy_j, double vdd, double vmin)
{
    double dv2 = vdd * vdd - vmin * vmin;
    if (dv2 <= 0.0)
        // Returning 0.0 F here used to pass silently -- a "no decap
        // needed" answer for a rail with *no* discharge headroom,
        // exactly the case a low-voltage DVFS mode near
        // kDecapVminRatio * vdd produces. No finite capacitor
        // satisfies vmin >= vdd, so fail loudly.
        throw std::invalid_argument(
            "decapFarads: vmin must be below vdd (no discharge "
            "headroom: vdd=" +
            std::to_string(vdd) + " vmin=" + std::to_string(vmin) +
            ")");
    return 2.0 * window_energy_j / dv2;
}

EnvelopeSupply
sizeEnvelopeSupply(const std::vector<unsigned> &windows,
                   const std::vector<double> &peak_window_energy_j,
                   double peak_power_w, double tclk_s, double vdd)
{
    EnvelopeSupply s;
    s.peakPowerW = peak_power_w;
    s.windows = windows;
    s.peakWindowEnergyJ = peak_window_energy_j;

    double vmin = kDecapVminRatio * vdd;
    unsigned longest = 0;
    size_t n = std::min(windows.size(), peak_window_energy_j.size());
    for (size_t w = 0; w < n; ++w) {
        s.decapF.push_back(
            decapFarads(peak_window_energy_j[w], vdd, vmin));
        if (windows[w] > longest) {
            longest = windows[w];
            s.sustainedPowerW =
                tclk_s > 0.0 ? peak_window_energy_j[w] /
                                   (double(windows[w]) * tclk_s)
                             : 0.0;
        }
    }
    if (longest == 0)
        s.sustainedPowerW = peak_power_w;
    for (const HarvesterType &h : harvesterTypes())
        s.harvesters.push_back(
            {h.name, harvesterAreaCm2(s.sustainedPowerW, h)});
    return s;
}

SuiteSupply
sizeSuiteSupply(double peak_power_w, double peak_energy_j)
{
    SuiteSupply s;
    s.peakPowerW = peak_power_w;
    s.peakEnergyJ = peak_energy_j;
    for (const HarvesterType &h : harvesterTypes())
        s.harvesters.push_back(
            {h.name, harvesterAreaCm2(peak_power_w, h)});
    for (const BatteryType &b : batteryTypes())
        s.batteries.push_back({b.name, batteryVolumeL(peak_energy_j, b),
                               batteryMassG(peak_energy_j, b)});
    return s;
}

} // namespace sizing
} // namespace ulpeak
