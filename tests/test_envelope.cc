/**
 * @file
 * Tests of the peak-envelope subsystem: ExecTree::envelopePowerW
 * (offset-aware max over all walks, merged-edge continuations,
 * bounded back-edges), the windowed peak-energy curves, determinism
 * of the envelope under thread counts and EvalModes, suite-level
 * max-composition in analyzeBatch, envelope-driven sizing, the
 * envelope-bounding fuzz property (including an injected-bug
 * sensitivity check), and activeGatesPerModule coverage.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "bench430/benchmarks.hh"
#include "cli/driver.hh"
#include "fuzz/program_gen.hh"
#include "fuzz/properties.hh"
#include "peak/batch.hh"
#include "peak/peak_analysis.hh"
#include "peak/validation.hh"
#include "power/analysis.hh"
#include "sizing/sizing.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

/** Two port-dependent branches: a 4-leaf execution tree with paths
 *  of different lengths, exercising offset-shifted merges. */
const char *kForkyBody = R"(
        mov &0x0020, r4
        mov &0x0020, r6
        mov #0, r5
        and #1, r4
        jz fb_a
        mov #3, r5
        add #2, r5
fb_a:
        and #2, r6
        jnz fb_b
        add #7, r5
fb_b:
        add #1, r5
)";

TEST(EnvelopeTree, LinearChainIsTheTraceItself)
{
    sym::ExecTree t;
    uint32_t root = t.newNode(sym::kNoNode);
    t.node(root).powerW = {1.0f, 2.0f, 3.0f};
    std::vector<float> env = t.envelopePowerW();
    EXPECT_EQ(env, (std::vector<float>{1.0f, 2.0f, 3.0f}));
}

TEST(EnvelopeTree, SiblingsMaxMergeCycleAligned)
{
    sym::ExecTree t;
    uint32_t root = t.newNode(sym::kNoNode);
    t.node(root).powerW = {1.0f};
    uint32_t a = t.newNode(root);
    t.node(a).powerW = {5.0f, 1.0f};
    uint32_t b = t.newNode(root);
    t.node(b).powerW = {2.0f, 4.0f, 3.0f};
    t.node(root).edges = {{0x100, a, false}, {0x102, b, false}};
    // env[1] = max(5,2), env[2] = max(1,4), env[3] = 3 (only b).
    EXPECT_EQ(t.envelopePowerW(),
              (std::vector<float>{1.0f, 5.0f, 4.0f, 3.0f}));
}

TEST(EnvelopeTree, MergedEdgeReplaysAtShiftedOffset)
{
    // root{1} -> a{2,2} -> join{10}; root -> b{4} -> join (merged).
    // The walk through b reaches join one cycle earlier than the walk
    // through a, so join's trace must appear at BOTH offsets -- this
    // is exactly the continuation exploration never re-simulated.
    sym::ExecTree t;
    uint32_t root = t.newNode(sym::kNoNode);
    t.node(root).powerW = {1.0f};
    uint32_t a = t.newNode(root);
    t.node(a).powerW = {2.0f, 2.0f};
    uint32_t b = t.newNode(root);
    t.node(b).powerW = {4.0f};
    uint32_t join = t.newNode(a);
    t.node(join).powerW = {10.0f};
    t.node(root).edges = {{0, a, false}, {0, b, false}};
    t.node(a).edges = {{0, join, false}};
    t.node(b).edges = {{0, join, true}};
    // offsets: root 0; a 1-2; b 1; join at 2 (via b) and 3 (via a).
    EXPECT_EQ(t.envelopePowerW(),
              (std::vector<float>{1.0f, 4.0f, 10.0f, 10.0f}));
}

TEST(EnvelopeTree, BackEdgeRequiresBoundAndRepeats)
{
    sym::ExecTree t;
    uint32_t root = t.newNode(sym::kNoNode);
    t.node(root).powerW = {1.0f};
    uint32_t loop = t.newNode(root);
    t.node(loop).powerW = {2.0f, 3.0f};
    t.node(root).edges = {{0, loop, false}};
    t.node(loop).edges = {{0, loop, true}}; // self back-edge
    EXPECT_THROW(t.envelopePowerW(0), std::runtime_error);
    std::vector<float> env = t.envelopePowerW(2);
    // Cap is totalCycles()*bound = 6: root + two loop iterations,
    // truncated at offset >= 6.
    ASSERT_GE(env.size(), 5u);
    EXPECT_EQ(env[0], 1.0f);
    EXPECT_EQ(env[1], 2.0f);
    EXPECT_EQ(env[2], 3.0f);
    EXPECT_EQ(env[3], 2.0f);
    EXPECT_EQ(env[4], 3.0f);
}

// Regression: the back-edge cap must account for *nested* bounded
// loops -- with B back-edges a legal walk visits a node up to
// loop_bound^B times, so a cap of totalCycles * loop_bound (the
// original formula) silently truncated legal walks.
TEST(EnvelopeTree, NestedBackEdgesExtendTheCap)
{
    sym::ExecTree t;
    uint32_t root = t.newNode(sym::kNoNode);
    t.node(root).powerW = {1.0f};
    uint32_t outer = t.newNode(root);
    t.node(outer).powerW = {2.0f};
    uint32_t inner = t.newNode(outer);
    t.node(inner).powerW = {3.0f};
    t.node(root).edges = {{0, outer, false}};
    t.node(outer).edges = {{0, inner, false}};
    t.node(inner).edges = {{0, inner, true},   // inner self-loop
                           {0, outer, true}};  // back to the outer
    // bound 3: a legal walk reaches offset 1 + 3*(1+3) = 13, past
    // the old cap of totalCycles*bound = 9.
    std::vector<float> env = t.envelopePowerW(3);
    EXPECT_GT(env.size(), 9u);
    // New cap: totalCycles * bound^2 = 27.
    EXPECT_LE(env.size(), 27u);
    EXPECT_EQ(env[13], 3.0f); // the deep iteration is covered
}

TEST(EnvelopeTree, PairBudgetGuard)
{
    sym::ExecTree t;
    uint32_t root = t.newNode(sym::kNoNode);
    t.node(root).powerW = {1.0f};
    uint32_t a = t.newNode(root);
    t.node(a).powerW = {2.0f};
    uint32_t b = t.newNode(root);
    t.node(b).powerW = {2.0f, 2.0f};
    t.node(root).edges = {{0, a, false}, {0, b, false}};
    uint32_t join = t.newNode(a);
    t.node(join).powerW = {3.0f};
    t.node(a).edges = {{0, join, false}};
    t.node(b).edges = {{0, join, true}};
    // 6 reachable (node, offset) pairs; a budget of 2 must trip.
    EXPECT_THROW(t.envelopePowerW(0, 2), std::runtime_error);
    EXPECT_NO_THROW(t.envelopePowerW(0, 64));
}

TEST(EnvelopeCurves, WindowedEnergyMath)
{
    peak::Envelope env;
    env.present = true;
    env.powerW = {1.0f, 3.0f, 2.0f, 5.0f};
    env.windows = {1, 2, 100};
    peak::buildWindowCurves(env, 2.0); // tclk = 2 s/cycle
    ASSERT_EQ(env.windowEnergyJ.size(), 3u);
    // W=1: the per-cycle energies themselves.
    EXPECT_EQ(env.windowEnergyJ[0],
              (std::vector<float>{2.0f, 6.0f, 4.0f, 10.0f}));
    EXPECT_DOUBLE_EQ(env.peakWindowEnergyJ[0], 10.0);
    // W=2: truncated at the front.
    EXPECT_EQ(env.windowEnergyJ[1],
              (std::vector<float>{2.0f, 8.0f, 10.0f, 14.0f}));
    EXPECT_DOUBLE_EQ(env.peakWindowEnergyJ[1], 14.0);
    // W larger than the trace: running total.
    EXPECT_EQ(env.windowEnergyJ[2],
              (std::vector<float>{2.0f, 8.0f, 12.0f, 22.0f}));
    EXPECT_DOUBLE_EQ(env.peakWindowEnergyJ[2], 22.0);
}

TEST(EnvelopeCurves, MaxComposeIsElementwiseMax)
{
    peak::Envelope a, b;
    a.present = b.present = true;
    a.windows = b.windows = {1, 2};
    a.powerW = {1.0f, 5.0f};
    b.powerW = {2.0f, 3.0f, 4.0f};
    peak::Envelope acc;
    acc.windows = {1, 2};
    peak::maxComposeEnvelope(acc, a);
    peak::maxComposeEnvelope(acc, b);
    EXPECT_TRUE(acc.present);
    EXPECT_EQ(acc.powerW, (std::vector<float>{2.0f, 5.0f, 4.0f}));
    // Curves are built once, over the final composed trace.
    peak::buildWindowCurves(acc, 1.0);
    EXPECT_EQ(acc.windowEnergyJ[1],
              (std::vector<float>{2.0f, 7.0f, 9.0f}));
}

TEST(Envelope, ConsistentWithScalarPeakAndPathBound)
{
    msp::System &sys = test::sharedSystem();
    peak::Options opts;
    opts.recordEnvelope = true;
    peak::Report r = peak::analyze(
        sys, isa::assemble(test::wrapProgram(kForkyBody)), opts);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(r.envelope.present);
    ASSERT_FALSE(r.envelope.powerW.empty());
    // The envelope's max is the scalar peak bound (stored as float).
    EXPECT_EQ(float(r.envelope.peakPowerW()), float(r.peakPowerW));
    // It covers at least the max-energy path.
    EXPECT_GE(r.envelope.cycles(), r.maxPathCycles);
    // Windowed curves exist per window and the W=1 peak matches the
    // power peak times tclk.
    ASSERT_EQ(r.envelope.windows, peak::defaultEnvelopeWindows());
    ASSERT_EQ(r.envelope.windowEnergyJ.size(), 3u);
    double tclk = 1.0 / opts.freqHz;
    EXPECT_NEAR(r.envelope.peakWindowEnergyJ[0],
                r.envelope.peakPowerW() * tclk,
                1e-6 * r.envelope.peakWindowEnergyJ[0]);
    // Longer windows bound at least as much energy.
    EXPECT_GE(r.envelope.peakWindowEnergyJ[1],
              r.envelope.peakWindowEnergyJ[0]);
    EXPECT_GE(r.envelope.peakWindowEnergyJ[2],
              r.envelope.peakWindowEnergyJ[1]);
}

TEST(Envelope, ByteIdenticalAcrossThreadsAndKernels)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(test::wrapProgram(kForkyBody));
    peak::Options base;
    base.recordEnvelope = true;
    peak::Report serial = peak::analyze(sys, img, base);
    ASSERT_TRUE(serial.ok) << serial.error;

    peak::Options threads = base;
    threads.numThreads = 4;
    peak::Report parallel = peak::analyze(sys, img, threads);
    ASSERT_TRUE(parallel.ok) << parallel.error;
    EXPECT_EQ(serial.envelope.powerW, parallel.envelope.powerW);
    EXPECT_EQ(serial.envelope.windowEnergyJ,
              parallel.envelope.windowEnergyJ);
    EXPECT_EQ(serial.envelope.peakWindowEnergyJ,
              parallel.envelope.peakWindowEnergyJ);

    peak::Options full = base;
    full.evalMode = EvalMode::FullSweep;
    peak::Report sweep = peak::analyze(sys, img, full);
    ASSERT_TRUE(sweep.ok) << sweep.error;
    EXPECT_EQ(serial.envelope.powerW, sweep.envelope.powerW);
    EXPECT_EQ(serial.envelope.windowEnergyJ,
              sweep.envelope.windowEnergyJ);
}

TEST(Envelope, SuiteEnvelopeIsElementwiseMaxOfPrograms)
{
    auto suite = cli::resolvePrograms({"mult", "intAVG"});
    peak::BatchOptions opts;
    opts.analysis.recordEnvelope = true;
    peak::BatchReport rep = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(rep.ok);
    ASSERT_TRUE(rep.suiteEnvelope.present);

    size_t maxLen = 0;
    for (const auto &r : rep.programs) {
        ASSERT_TRUE(r.envelope.present) << r.name;
        maxLen = std::max(maxLen, r.envelope.powerW.size());
    }
    ASSERT_EQ(rep.suiteEnvelope.powerW.size(), maxLen);
    for (size_t c = 0; c < maxLen; ++c) {
        float expect = 0.0f;
        for (const auto &r : rep.programs)
            if (c < r.envelope.powerW.size())
                expect = std::max(expect, r.envelope.powerW[c]);
        EXPECT_EQ(rep.suiteEnvelope.powerW[c], expect) << c;
    }

    // Envelope-driven sizing rides the composed envelope.
    EXPECT_DOUBLE_EQ(rep.envelopeSupply.peakPowerW,
                     rep.suiteEnvelope.peakPowerW());
    EXPECT_GT(rep.envelopeSupply.sustainedPowerW, 0.0);
    EXPECT_LE(rep.envelopeSupply.sustainedPowerW,
              rep.envelopeSupply.peakPowerW * (1.0 + 1e-12));
    ASSERT_EQ(rep.envelopeSupply.decapF.size(),
              rep.suiteEnvelope.windows.size());
}

TEST(Envelope, ConcreteBench430RunsLieUnderTheEnvelope)
{
    msp::System &sys = test::sharedSystem();
    const auto &b = bench430::benchmarkByName("mult");
    isa::Image img = b.assembleImage();
    peak::Options opts;
    opts.recordEnvelope = true;
    peak::Report x = peak::analyze(sys, img, opts);
    ASSERT_TRUE(x.ok) << x.error;

    power::PowerContext ctx(sys.netlist(), opts.freqHz);
    fuzz::Rng rng(99);
    for (const auto &in : b.makeInputs(4, rng.word())) {
        power::ConcreteRunOptions copts;
        copts.portIn = in.portIn;
        copts.maxCycles = x.envelope.powerW.size() + 256;
        auto run = power::runConcrete(sys, img, ctx, copts, in.ram);
        ASSERT_TRUE(run.halted);
        auto v = peak::validateTraceBound(x.envelope.powerW,
                                          run.traceW);
        EXPECT_TRUE(v.bounds)
            << v.violations << " violations, first at cycle "
            << v.firstViolationCycle;
        EXPECT_LE(run.traceW.size(), x.envelope.powerW.size());
    }
}

TEST(Envelope, FuzzPropertyOnSeededPrograms)
{
    msp::System &sys = test::sharedSystem();
    fuzz::ProgramGenOptions gen;
    gen.instructions = 10;
    for (unsigned i = 0; i < 6; ++i) {
        fuzz::Rng rng(fuzz::Rng::deriveStream(7, i));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, gen);
        fuzz::PropertyResult r = fuzz::envelopeBoundCheck(
            sys, isa::assemble(prog.source), rng);
        EXPECT_TRUE(r.ok) << "item " << i << ":\n"
                          << r.detail << prog.source;
    }
}

/** The property must actually bite: a corrupted envelope (scaled
 *  down / truncated) must be flagged, the way an injected bug would
 *  be. */
TEST(Envelope, ValidationCatchesCorruptedEnvelope)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(test::wrapProgram(kForkyBody));
    peak::Options opts;
    opts.recordEnvelope = true;
    peak::Report x = peak::analyze(sys, img, opts);
    ASSERT_TRUE(x.ok) << x.error;

    power::PowerContext ctx(sys.netlist(), opts.freqHz);
    power::ConcreteRunOptions copts;
    copts.portIn = 0x0003;
    copts.maxCycles = x.envelope.powerW.size() + 64;
    auto run = power::runConcrete(sys, img, ctx, copts);
    ASSERT_TRUE(run.halted);
    ASSERT_TRUE(
        peak::validateTraceBound(x.envelope.powerW, run.traceW)
            .bounds);

    // Halve the envelope: violations must appear.
    std::vector<float> halved = x.envelope.powerW;
    for (float &w : halved)
        w *= 0.5f;
    auto v = peak::validateTraceBound(halved, run.traceW);
    EXPECT_FALSE(v.bounds);
    EXPECT_GT(v.violations, 0u);
    EXPECT_NE(v.firstViolationCycle, UINT64_MAX);

    // Truncate the envelope below the concrete run length: the tail
    // must count as violations (the satellite bugfix).
    std::vector<float> truncated(
        x.envelope.powerW.begin(),
        x.envelope.powerW.begin() + run.traceW.size() / 2);
    v = peak::validateTraceBound(truncated, run.traceW);
    EXPECT_FALSE(v.bounds);
    EXPECT_TRUE(v.lengthMismatch);
    EXPECT_GE(v.violations,
              uint64_t(run.traceW.size() - run.traceW.size() / 2));
}

TEST(EnvelopeSizing, DecapFormulaAndSupply)
{
    // C = 2E / (vdd^2 - vmin^2).
    EXPECT_DOUBLE_EQ(sizing::decapFarads(1e-9, 1.0, 0.0), 2e-9);
    EXPECT_DOUBLE_EQ(
        sizing::decapFarads(1e-9, 1.2, 1.2 * sizing::kDecapVminRatio),
        2e-9 / (1.2 * 1.2 * (1.0 - sizing::kDecapVminRatio *
                                       sizing::kDecapVminRatio)));
    // Zero (or negative) discharge headroom has no finite answer;
    // it used to return a silently wrong 0.0 F.
    EXPECT_THROW(sizing::decapFarads(1e-9, 1.0, 1.0),
                 std::invalid_argument);

    std::vector<unsigned> windows = {1, 10};
    std::vector<double> peakE = {1e-11, 8e-11};
    sizing::EnvelopeSupply s = sizing::sizeEnvelopeSupply(
        windows, peakE, /*peak_power_w=*/1e-3, /*tclk_s=*/1e-8,
        /*vdd=*/1.2);
    EXPECT_DOUBLE_EQ(s.peakPowerW, 1e-3);
    // Sustained = longest-window energy / window duration: 8e-11 J
    // over 10 * 1e-8 s = 0.8 mW < 1 mW point peak.
    EXPECT_DOUBLE_EQ(s.sustainedPowerW, 8e-4);
    ASSERT_EQ(s.decapF.size(), 2u);
    EXPECT_GT(s.decapF[1], s.decapF[0]); // more energy, more decap
    ASSERT_EQ(s.harvesters.size(), sizing::harvesterTypes().size());
    // Harvesters sized by the sustained rate, not the point peak.
    EXPECT_DOUBLE_EQ(s.harvesters[0].areaCm2,
                     sizing::harvesterAreaCm2(
                         8e-4, sizing::harvesterTypes()[0]));
}

TEST(ActiveGatesPerModule, CountsPartitionTheGateList)
{
    msp::System &sys = test::sharedSystem();
    peak::Options opts;
    opts.recordActiveSets = true;
    peak::Report r = peak::analyze(
        sys, isa::assemble(test::wrapProgram(kForkyBody)), opts);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_FALSE(r.peakActive.empty());

    auto perModule =
        peak::activeGatesPerModule(sys.netlist(), r.peakActive);
    ASSERT_FALSE(perModule.empty());
    size_t total = 0;
    for (const auto &[name, count] : perModule) {
        EXPECT_FALSE(name.empty());
        EXPECT_GT(count, 0u);
        total += count;
    }
    // Every gate lands in exactly one top-level module bucket.
    EXPECT_EQ(total, r.peakActive.size());
    // Sorted by name, no duplicates (map-backed contract).
    for (size_t i = 1; i < perModule.size(); ++i)
        EXPECT_LT(perModule[i - 1].first, perModule[i].first);
}

TEST(ActiveGatesPerModule, EmptyListIsEmptyReport)
{
    msp::System &sys = test::sharedSystem();
    EXPECT_TRUE(
        peak::activeGatesPerModule(sys.netlist(), {}).empty());
}

/** Nightly tier: a deeper envelope-bound sweep (the quick tier runs
 *  6 programs; CI's ulfuzz smoke covers more end-to-end). */
TEST(EnvelopeLong, FuzzSweep)
{
    msp::System &sys = test::sharedSystem();
    fuzz::ProgramGenOptions gen;
    gen.instructions = 13;
    for (unsigned i = 0; i < 40; ++i) {
        fuzz::Rng rng(fuzz::Rng::deriveStream(11, i));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, gen);
        fuzz::PropertyResult r = fuzz::envelopeBoundCheck(
            sys, isa::assemble(prog.source), rng);
        EXPECT_TRUE(r.ok) << "item " << i << ":\n"
                          << r.detail << prog.source;
    }
}

} // namespace
} // namespace ulpeak
