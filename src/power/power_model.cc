#include "power/power_model.hh"

namespace ulpeak {
namespace power {

PowerContext::PowerContext(const Netlist &nl, double freq)
    : nl_(&nl), freq_(freq)
{
    double tclk = 1.0 / freq_;
    staticPerCycle_ =
        nl.clockEnergyPerCycleJ() + nl.totalLeakageW() * tclk;

    moduleStatic_.assign(nl.numModules(), 0.0);
    const CellLibrary &lib = nl.library();
    for (GateId g = 0; g < nl.numGates(); ++g) {
        const CellParams &p = lib.params(nl.gate(g).kind);
        ModuleId top = nl.topLevelModuleOf(nl.gate(g).module);
        moduleStatic_[top] += p.clkPinEnergyJ + p.leakageW * tclk;
    }
}

std::vector<double>
PowerContext::cycleModulePowerW(const Simulator &sim) const
{
    return cycleModulePowerW(sim.moduleBoundEnergyJ());
}

std::vector<double>
PowerContext::cycleModulePowerW(
    const std::vector<double> &switching_j) const
{
    std::vector<double> out(switching_j.size(), 0.0);
    for (size_t m = 0; m < switching_j.size(); ++m)
        out[m] = (switching_j[m] + moduleStatic_[m]) * freq_;
    return out;
}

} // namespace power
} // namespace ulpeak
