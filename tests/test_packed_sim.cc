/**
 * @file
 * Tests of the bit-parallel 64-pattern kernel: lane identity of
 * PackedSimulator against independent scalar Simulator runs (both
 * EvalModes) on fuzz-generated netlists, the packed property the
 * ulfuzz driver runs, and batched concrete program runs
 * (power::runConcretePacked) against the scalar runConcrete path.
 */

#include <gtest/gtest.h>

#include <array>

#include "fuzz/netlist_gen.hh"
#include "fuzz/properties.hh"
#include "fuzz/rng.hh"
#include "power/analysis.hh"
#include "power/packed_run.hh"
#include "sim/packed_simulator.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

constexpr unsigned kLanes = PackedSimulator::kLanes;

/** Every lane of a packed run vs an independent scalar run in mode
 *  @p mode: values, activity, energies and full-state hash, every
 *  cycle. */
void
expectLaneIdentity(uint64_t seed, EvalMode mode, unsigned cycles)
{
    fuzz::Rng rng(seed);
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    fuzz::NetlistGenOptions opts;
    fuzz::RandomNetlist rn = fuzz::buildRandomNetlist(nl, rng, opts);
    unsigned nin = unsigned(rn.inputs.size());

    std::array<std::vector<std::vector<V4>>, kLanes> sched;
    for (unsigned l = 0; l < kLanes; ++l) {
        fuzz::Rng lrng(fuzz::Rng::deriveStream(seed, l));
        sched[l] = fuzz::makeInputSchedule(lrng, nin, cycles,
                                           opts.inputXPercent);
    }

    PackedSimulator psim(nl);
    std::vector<Simulator> sims;
    sims.reserve(kLanes);
    for (unsigned l = 0; l < kLanes; ++l)
        sims.emplace_back(nl, mode);

    for (unsigned c = 0; c < cycles; ++c) {
        psim.step([&](PackedSimulator &s) {
            for (unsigned i = 0; i < nin; ++i) {
                V64 v;
                for (unsigned l = 0; l < kLanes; ++l)
                    v.setLane(l, sched[l][c][i]);
                s.setInput(rn.inputs[i], v);
            }
        });
        for (unsigned l = 0; l < kLanes; ++l) {
            sims[l].step([&](Simulator &s) {
                for (unsigned i = 0; i < nin; ++i)
                    s.setInput(rn.inputs[i], sched[l][c][i]);
            });
            for (GateId g = 0; g < GateId(nl.numGates()); ++g) {
                ASSERT_EQ(psim.valueLane(g, l), sims[l].value(g))
                    << "cycle " << c << " lane " << l << " gate " << g;
                ASSERT_EQ(bool((psim.activeMask(g) >> l) & 1),
                          sims[l].isActive(g))
                    << "cycle " << c << " lane " << l << " gate " << g;
            }
            ASSERT_EQ(psim.actualEnergyJ(l), sims[l].actualEnergyJ())
                << "cycle " << c << " lane " << l;
            ASSERT_EQ(psim.boundEnergyJ(l), sims[l].boundEnergyJ())
                << "cycle " << c << " lane " << l;
            ASSERT_EQ(psim.moduleBoundEnergyLaneJ(l),
                      sims[l].moduleBoundEnergyJ())
                << "cycle " << c << " lane " << l;
            ASSERT_EQ(psim.hashLaneState(l), sims[l].hashFullState())
                << "cycle " << c << " lane " << l;
        }
    }
}

TEST(PackedSim, LaneIdentityEventDriven)
{
    expectLaneIdentity(0x11u, EvalMode::EventDriven, 48);
}

TEST(PackedSim, LaneIdentityFullSweep)
{
    expectLaneIdentity(0x22u, EvalMode::FullSweep, 48);
}

TEST(PackedSim, FuzzPropertyHolds)
{
    // The exact check ulfuzz --mode packed runs (lanes alternate
    // EvalMode inside the property).
    fuzz::NetlistGenOptions opts;
    for (uint64_t seed : {3u, 4u, 5u}) {
        fuzz::PropertyResult r =
            fuzz::packedKernelEquivalenceCheck(seed, opts, 40);
        EXPECT_TRUE(r.ok) << r.detail;
    }
}

TEST(PackedSim, ProgramBatchMatchesScalarRuns)
{
    // A port-dependent program: different lanes take different
    // branches, so the batch genuinely diverges across lanes.
    const char *body = R"(
        mov &0x0020, r4
        mov #0, r5
        and #3, r4
        jz pk_skip
        add #5, r5
        add r4, r5
pk_skip:
        add #1, r5
)";
    msp::System &sys = test::sharedSystem();
    isa::Image image = isa::assemble(test::wrapProgram(body));
    power::PowerContext ctx(sys.netlist(), 100e6);

    fuzz::Rng rng(0xbeefu);
    power::PackedRunOptions popts;
    popts.maxCycles = 4000;
    for (unsigned l = 0; l < kLanes; ++l) {
        popts.portSchedules[l].resize(16);
        for (uint16_t &w : popts.portSchedules[l])
            w = rng.word();
    }
    power::PackedRunResult pr =
        power::runConcretePacked(sys, image, ctx, popts);

    for (unsigned l = 0; l < kLanes; ++l)
        EXPECT_TRUE(pr.lanes[l].halted) << "lane " << l;

    // Spot-check a spread of lanes float-for-float against the scalar
    // path (running all 64 scalar programs would dominate suite time).
    for (unsigned l : {0u, 7u, 13u, 31u, 42u, 63u}) {
        power::ConcreteRunOptions copts;
        copts.maxCycles = popts.maxCycles;
        copts.portSchedule = popts.portSchedules[l];
        power::ConcreteRunResult c =
            power::runConcrete(sys, image, ctx, copts);
        EXPECT_EQ(c.halted, pr.lanes[l].halted) << "lane " << l;
        EXPECT_EQ(c.traceW, pr.lanes[l].traceW) << "lane " << l;
        EXPECT_EQ(c.totalEnergyJ, pr.lanes[l].totalEnergyJ)
            << "lane " << l;
        EXPECT_EQ(c.stats.peakW, pr.lanes[l].stats.peakW)
            << "lane " << l;
        EXPECT_EQ(sys.xStoreFault(), pr.lanes[l].xStoreFault)
            << "lane " << l;
    }

    // Sanity: the lanes were not all the same run.
    bool diverged = false;
    for (unsigned l = 1; l < kLanes; ++l)
        if (pr.lanes[l].traceW != pr.lanes[0].traceW)
            diverged = true;
    EXPECT_TRUE(diverged);
}

TEST(PackedSim, EnvelopeBatchPropertyHolds)
{
    const char *body = R"(
        mov &0x0020, r4
        and #1, r4
        jz pe_a
        add #2, r5
pe_a:
        add #1, r5
)";
    msp::System &sys = test::sharedSystem();
    isa::Image image = isa::assemble(test::wrapProgram(body));
    fuzz::Rng rng(0x777u);
    fuzz::PropertyResult r =
        fuzz::packedEnvelopeBatchCheck(sys, image, rng);
    EXPECT_TRUE(r.ok) << r.detail;
}

} // namespace
} // namespace ulpeak
