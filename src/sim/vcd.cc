#include "sim/vcd.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ulpeak {

std::string
VcdWriter::idCode(size_t index)
{
    // Printable identifier codes '!'..'~', multi-character base-94.
    std::string code;
    do {
        code.push_back(char('!' + index % 94));
        index /= 94;
    } while (index > 0);
    return code;
}

VcdWriter::VcdWriter(std::ostream &os,
                     const std::vector<std::string> &signals,
                     const std::string &timescale)
    : os_(&os), numSignals_(signals.size())
{
    codes_.reserve(signals.size());
    last_.assign(signals.size(), V4::X);

    *os_ << "$date ulpeak $end\n";
    *os_ << "$version ulpeak VcdWriter $end\n";
    *os_ << "$timescale " << timescale << " $end\n";
    *os_ << "$scope module top $end\n";
    for (size_t i = 0; i < signals.size(); ++i) {
        codes_.push_back(idCode(i));
        *os_ << "$var wire 1 " << codes_[i] << " " << signals[i]
             << " $end\n";
    }
    *os_ << "$upscope $end\n";
    *os_ << "$enddefinitions $end\n";
}

void
VcdWriter::writeCycle(const std::vector<V4> &values)
{
    if (values.size() != numSignals_)
        throw std::invalid_argument("VcdWriter: value count mismatch");
    *os_ << '#' << cycles_ << '\n';
    if (first_)
        *os_ << "$dumpvars\n";
    for (size_t i = 0; i < values.size(); ++i) {
        if (!first_ && values[i] == last_[i])
            continue;
        *os_ << v4Char(values[i]) << codes_[i] << '\n';
        last_[i] = values[i];
    }
    if (first_) {
        *os_ << "$end\n";
        first_ = false;
    }
    ++cycles_;
}

int
VcdData::signalIndex(const std::string &name) const
{
    for (size_t i = 0; i < signals.size(); ++i)
        if (signals[i] == name)
            return int(i);
    return -1;
}

VcdData
readVcd(std::istream &is)
{
    VcdData data;
    std::unordered_map<std::string, size_t> byCode;
    std::vector<V4> current;
    bool haveCycle = false;

    std::string tok;
    while (is >> tok) {
        if (tok == "$var") {
            std::string type, width, code, name, end;
            is >> type >> width >> code >> name >> end;
            // Signal names may contain a trailing index like sig[3];
            // VcdWriter never emits spaces inside names.
            while (end != "$end" && is >> end) {
                name += "";
            }
            byCode[code] = data.signals.size();
            data.signals.push_back(name);
        } else if (tok[0] == '$') {
            // Skip other declaration keywords up to $end (single-token
            // keywords like $dumpvars have their own $end later, which
            // is harmless to treat as a no-op token).
            if (tok == "$end" || tok == "$dumpvars")
                continue;
            std::string skip;
            while (is >> skip && skip != "$end") {
            }
        } else if (tok[0] == '#') {
            if (haveCycle)
                data.values.push_back(current);
            if (current.empty())
                current.assign(data.signals.size(), V4::X);
            haveCycle = true;
        } else if (tok[0] == '0' || tok[0] == '1' || tok[0] == 'x' ||
                   tok[0] == 'X') {
            std::string code = tok.substr(1);
            auto it = byCode.find(code);
            if (it == byCode.end())
                throw std::runtime_error("VCD: unknown id code " + code);
            current[it->second] = v4FromChar(tok[0]);
        }
    }
    if (haveCycle)
        data.values.push_back(current);
    return data;
}

} // namespace ulpeak
