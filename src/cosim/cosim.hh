/**
 * @file
 * Lockstep differential co-simulation of the gate-level core against
 * the golden ISS.
 *
 * The gate-level System (src/msp + src/sim) and the ISS (src/isa/iss)
 * execute the same image cycle for cycle; at every instruction
 * boundary (the FSM's FETCH state) the checker compares the retired
 * architectural state -- program counter, register file, status
 * flags (SR), and the exact stream of memory writes the previous
 * instruction performed -- and at halt it compares cycle counts and
 * the final RAM contents. The first disagreement stops the run and
 * produces a structured divergence report: the gate cycle and retired
 * instruction index, the state diff, and a disassembled instruction
 * window around the divergence (src/isa/disassembler).
 *
 * The gate and ISS sides can be given *different* images: that is how
 * the checker checks itself (inject a bug into one side, assert the
 * divergence is caught and located -- tests/test_cosim.cc).
 */

#ifndef ULPEAK_COSIM_COSIM_HH
#define ULPEAK_COSIM_COSIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/iss.hh"
#include "msp/cpu.hh"
#include "power/power_model.hh"

namespace ulpeak {
namespace cosim {

struct Options {
    uint64_t maxCycles = 60000;
    uint16_t portIn = 0;
    /** Simulation kernel for the gate side. */
    EvalMode evalMode = EvalMode::EventDriven;
    /** Instructions of context disassembled after the divergence PC. */
    unsigned disasmAfter = 2;
    /**
     * Called inside every gate-side cycle driver -- reset cycles
     * included -- after the inputs are set, i.e. after the sequential
     * update and before the combinational sweep. This is the
     * injection point of the fault layer (src/fault): a
     * Simulator::injectSeuFlip here is what that cycle's
     * combinational logic observes. May be null.
     */
    std::function<void(Simulator &)> preCycle;
    /**
     * When non-null, record the gate side's per-cycle *bound* power
     * into Result::powerTraceW -- same accounting and same post-reset
     * cycle indexing as power::runConcrete, so the trace is directly
     * comparable against a peak::Envelope.
     */
    const power::PowerContext *powerCtx = nullptr;
};

/** One observed memory write (word address, value). */
struct MemWrite {
    uint32_t addr = 0;
    uint16_t value = 0;
    bool operator==(const MemWrite &o) const
    {
        return addr == o.addr && value == o.value;
    }
};

struct Divergence {
    enum class Kind {
        None,
        Pc,          ///< fetch address differs
        Register,    ///< register-file mismatch (includes SR flags)
        MemWrite,    ///< store streams differ
        FinalMemory, ///< RAM contents differ after halt
        Cycles,      ///< cycle counts differ after halt
        GateX,       ///< gate state unexpectedly unknown
        GateTimeout, ///< gate core never halted
        IssTrap,     ///< ISS stopped on an error the gate didn't hit
        Halt,        ///< one side halted, the other kept running
    };

    Kind kind = Kind::None;
    uint64_t cycle = 0;      ///< gate cycle of first divergence
    uint64_t instrIndex = 0; ///< retired instructions before it
    uint32_t pc = 0;         ///< PC of the instruction at fault
    std::string detail;      ///< state diff, one item per line
    std::string disasm;      ///< instruction window around @ref pc
};

const char *divergenceKindName(Divergence::Kind k);

struct Result {
    bool ok = false;
    uint64_t instructionsRetired = 0;
    uint64_t gateCycles = 0;
    uint64_t issCycles = 0;
    Divergence divergence;
    /**
     * Per-cycle gate-side bound power [W], recorded only when
     * Options::powerCtx is set. Index 0 is the first post-reset cycle
     * (runConcrete's indexing); the trace ends with the last cycle the
     * run simulated -- the halting step, the divergent cycle, or the
     * budget limit.
     */
    std::vector<float> powerTraceW;

    /** Multi-line human-readable divergence report ("" when ok). */
    std::string report() const;
};

/**
 * Run @p gate_image on the gate-level core and @p iss_image on the
 * ISS in lockstep. The System's behavioral memory is reloaded, so
 * calls are independent (the netlist itself is immutable and shared).
 */
Result run(msp::System &sys, const isa::Image &gate_image,
           const isa::Image &iss_image, const Options &opts);

/** Common case: both sides execute the same image. */
inline Result
run(msp::System &sys, const isa::Image &image, const Options &opts)
{
    return run(sys, image, image, opts);
}

} // namespace cosim
} // namespace ulpeak

#endif // ULPEAK_COSIM_COSIM_HH
