#include "sim/memory.hh"

#include <cassert>

namespace ulpeak {

Memory::Memory(uint32_t ram_base, uint32_t ram_size, uint32_t rom_base)
    : ramBase_(ram_base), ramSize_(ram_size), romBase_(rom_base)
{
    assert(ram_base % 2 == 0 && ram_size % 2 == 0 && rom_base % 2 == 0);
    ramVal_.assign(ram_size / 2, 0);
    ramX_.assign(ram_size / 2, 0xffff);
    rom_.assign((0x10000 - rom_base) / 2, 0xffff);
}

void
Memory::reset()
{
    ramVal_.assign(ramVal_.size(), 0);
    ramX_.assign(ramX_.size(), 0xffff);
}

void
Memory::loadRom(uint32_t addr, const std::vector<uint16_t> &words)
{
    for (size_t i = 0; i < words.size(); ++i) {
        uint32_t a = addr + uint32_t(i) * 2;
        assert(inRom(a));
        rom_[(a - romBase_) / 2] = words[i];
    }
}

void
Memory::loadRam(uint32_t addr, const std::vector<uint16_t> &words)
{
    for (size_t i = 0; i < words.size(); ++i) {
        uint32_t a = addr + uint32_t(i) * 2;
        assert(inRam(a));
        ramVal_[(a - ramBase_) / 2] = words[i];
        ramX_[(a - ramBase_) / 2] = 0;
    }
}

Word16
Memory::read(uint32_t addr) const
{
    addr &= 0xfffe;
    if (inRam(addr)) {
        size_t i = (addr - ramBase_) / 2;
        return Word16(ramVal_[i], ramX_[i]);
    }
    if (inRom(addr))
        return Word16::known(rom_[(addr - romBase_) / 2]);
    return Word16::allX();
}

void
Memory::write(uint32_t addr, Word16 w)
{
    addr &= 0xfffe;
    if (!inRam(addr))
        return;
    size_t i = (addr - ramBase_) / 2;
    ramVal_[i] = w.value;
    ramX_[i] = w.xmask;
}

void
Memory::poisonRam(uint32_t addr, uint32_t words)
{
    for (uint32_t i = 0; i < words; ++i) {
        uint32_t a = (addr & 0xfffe) + i * 2;
        assert(inRam(a));
        ramVal_[(a - ramBase_) / 2] = 0;
        ramX_[(a - ramBase_) / 2] = 0xffff;
    }
}

bool
Memory::flipBit(uint32_t addr, unsigned bit)
{
    addr &= 0xfffe;
    if (!inRam(addr) || bit >= 16)
        return false;
    size_t i = (addr - ramBase_) / 2;
    uint16_t m = uint16_t(1u << bit);
    if (ramX_[i] & m)
        return false;
    ramVal_[i] ^= m;
    return true;
}

void
Memory::hashInto(uint64_t &h) const
{
    auto mix = [&h](uint16_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    for (size_t i = 0; i < ramVal_.size(); ++i) {
        mix(ramVal_[i]);
        mix(ramX_[i]);
    }
}

Memory::Snapshot
Memory::snapshot() const
{
    return Snapshot{ramVal_, ramX_};
}

void
Memory::restore(const Snapshot &s)
{
    ramVal_ = s.ramVal;
    ramX_ = s.ramX;
}

} // namespace ulpeak
