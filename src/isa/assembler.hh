/**
 * @file
 * Two-pass MSP430 assembler.
 *
 * The paper's benchmarks are compiled binaries; ours are assembled from
 * MSP430 assembly source by this assembler, producing the ROM image the
 * gate-level core and the ISS both execute. Supported syntax:
 *
 *   ; comment                      .org 0xf800
 *   label:                        .word 1, 2, 0x1f
 *       mov   #0x5a80, &0x0120    .equ  WDTCTL, 0x0120
 *       mov   @r4+, r5
 *       add   2(r4), r6
 *       jnz   label
 *
 * Operands: #imm, Rn (r0-r15 / pc / sp / sr / cg), @Rn, @Rn+, x(Rn),
 * &addr, and bare symbols for jump/call targets. `#sym` and `&sym` are
 * resolved against labels and .equ definitions. Emulated mnemonics
 * (Table: MSP430 family guide) are expanded exactly like TI's
 * assembler: nop, ret, pop, br, clr, inc, incd, dec, decd, tst, clrc,
 * setc, clrz, setz, rla, rlc, dint, eint.
 */

#ifndef ULPEAK_ISA_ASSEMBLER_HH
#define ULPEAK_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/encoding.hh"

namespace ulpeak {
namespace isa {

/** One contiguous chunk of assembled words. */
struct Segment {
    uint32_t base = 0;
    std::vector<uint16_t> words;
};

/** Assembled program image. */
struct Image {
    std::vector<Segment> segments;
    std::map<std::string, uint32_t> symbols;

    /** Address of a symbol; throws if undefined. */
    uint32_t symbol(const std::string &name) const;
    /** Flattened (address, word) list. */
    std::vector<std::pair<uint32_t, uint16_t>> flatten() const;
};

/** Error with line information. */
struct AsmError : std::runtime_error {
    AsmError(unsigned line, const std::string &msg)
        : std::runtime_error("asm line " + std::to_string(line) + ": " +
                             msg),
          line(line)
    {
    }
    unsigned line;
};

/** Assemble @p source; throws AsmError on malformed input. */
Image assemble(const std::string &source);

/**
 * Parse a single already-tokenized instruction line (mnemonic +
 * operands) against a symbol table; exposed for the optimizer, which
 * rewrites instruction lists textually.
 */
Instr parseInstrLine(const std::string &line,
                     const std::map<std::string, uint32_t> &symbols,
                     uint32_t pc_of_next_word);

} // namespace isa
} // namespace ulpeak

#endif // ULPEAK_ISA_ASSEMBLER_HH
