/**
 * @file
 * Shared plumbing for the experiment-regeneration binaries: one
 * binary per table/figure of the paper (see DESIGN.md experiment
 * index). Binaries print the same rows/series the paper reports and
 * drop plot-ready CSVs under bench_out/.
 */

#ifndef ULPEAK_BENCH_BENCH_UTIL_HH
#define ULPEAK_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench430/benchmarks.hh"
#include "msp/cpu.hh"

namespace ulpeak {
namespace bench_util {

constexpr double kFreq65 = 100e6; ///< openMSP430-like operating point
constexpr double kFreq1610 = 8e6; ///< MSP430F1610 measurement setup

inline std::string
outDir()
{
    std::filesystem::create_directories("bench_out");
    return "bench_out/";
}

inline void
printHeader(const std::string &title)
{
    std::printf("==== %s ====\n", title.c_str());
}

/** Geometric-mean style average of ratios, reported as "% lower". */
inline double
avgPctLower(const std::vector<double> &ours,
            const std::vector<double> &baseline)
{
    double sum = 0.0;
    for (size_t i = 0; i < ours.size(); ++i)
        sum += 1.0 - ours[i] / baseline[i];
    return 100.0 * sum / double(ours.size());
}

} // namespace bench_util
} // namespace ulpeak

#endif // ULPEAK_BENCH_BENCH_UTIL_HH
