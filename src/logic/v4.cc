#include "logic/v4.hh"

namespace ulpeak {

V4
v4And(V4 a, V4 b)
{
    if (a == V4::Zero || b == V4::Zero)
        return V4::Zero;
    if (a == V4::One && b == V4::One)
        return V4::One;
    return V4::X;
}

V4
v4Or(V4 a, V4 b)
{
    if (a == V4::One || b == V4::One)
        return V4::One;
    if (a == V4::Zero && b == V4::Zero)
        return V4::Zero;
    return V4::X;
}

V4
v4Xor(V4 a, V4 b)
{
    if (a == V4::X || b == V4::X)
        return V4::X;
    return fromBool(a != b);
}

V4
v4Not(V4 a)
{
    if (a == V4::X)
        return V4::X;
    return a == V4::One ? V4::Zero : V4::One;
}

V4
v4Mux(V4 sel, V4 a, V4 b)
{
    if (sel == V4::Zero)
        return a;
    if (sel == V4::One)
        return b;
    if (a == b && isKnown(a))
        return a;
    return V4::X;
}

char
v4Char(V4 v)
{
    switch (v) {
      case V4::Zero: return '0';
      case V4::One: return '1';
      default: return 'x';
    }
}

V4
v4FromChar(char c)
{
    if (c == '0')
        return V4::Zero;
    if (c == '1')
        return V4::One;
    return V4::X;
}

std::string
Word16::toString() const
{
    std::string s;
    s.reserve(16);
    for (int i = 15; i >= 0; --i)
        s.push_back(v4Char(bit(unsigned(i))));
    return s;
}

} // namespace ulpeak
