#include "cli/lint_driver.hh"

int
main(int argc, char **argv)
{
    return ulpeak::cli::runLintCli(argc, argv);
}
