/**
 * @file
 * Tests of the OPT1-3 source rewrites and the peak-guided optimizer
 * (Sections 3.5 / 5.1).
 */

#include <gtest/gtest.h>

#include "isa/iss.hh"
#include "opt/optimizer.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

TEST(Transforms, Opt2SplitsPop)
{
    opt::TransformConfig cfg;
    cfg.opt1 = cfg.opt3 = false;
    opt::TransformStats stats;
    std::string out = opt::applyTransforms("        pop r7\n", cfg,
                                           &stats);
    EXPECT_EQ(stats.opt2Applied, 1u);
    EXPECT_NE(out.find("mov @sp, r7"), std::string::npos);
    EXPECT_NE(out.find("add #2, sp"), std::string::npos);
}

TEST(Transforms, Opt2SplitsAutoincrementLoads)
{
    opt::TransformConfig cfg;
    cfg.opt1 = cfg.opt3 = false;
    opt::TransformStats stats;
    std::string out =
        opt::applyTransforms("        mov @r4+, r8\n", cfg, &stats);
    EXPECT_EQ(stats.opt2Applied, 1u);
    EXPECT_NE(out.find("mov @r4, r8"), std::string::npos);
    EXPECT_NE(out.find("add #2, r4"), std::string::npos);
    // Same-register form must not be split (mov @r4+, r4).
    stats = {};
    out = opt::applyTransforms("        mov @r4+, r4\n", cfg, &stats);
    EXPECT_EQ(stats.opt2Applied, 0u);
}

TEST(Transforms, Opt1SplitsIndexedLoads)
{
    opt::TransformConfig cfg;
    cfg.opt2 = cfg.opt3 = false;
    cfg.scratchReg = "r7";
    opt::TransformStats stats;
    std::string out = opt::applyTransforms(
        "        mov 6(r4), r5\n", cfg, &stats);
    EXPECT_EQ(stats.opt1Applied, 1u);
    EXPECT_NE(out.find("mov r4, r7"), std::string::npos);
    EXPECT_NE(out.find("add #6, r7"), std::string::npos);
    EXPECT_NE(out.find("mov @r7, r5"), std::string::npos);

    // No scratch register -> no rewrite.
    cfg.scratchReg = "";
    stats = {};
    opt::applyTransforms("        mov 6(r4), r5\n", cfg, &stats);
    EXPECT_EQ(stats.opt1Applied, 0u);
    // Offset 0 is already register-indirect-equivalent: skip.
    cfg.scratchReg = "r7";
    stats = {};
    opt::applyTransforms("        mov 0(r4), r5\n", cfg, &stats);
    EXPECT_EQ(stats.opt1Applied, 0u);
}

TEST(Transforms, Opt3NopsAfterMultiplierWrite)
{
    opt::TransformConfig cfg;
    cfg.opt1 = cfg.opt2 = false;
    opt::TransformStats stats;
    std::string out = opt::applyTransforms(
        "        mov r4, &0x0138\n        mov &0x013a, r5\n", cfg,
        &stats);
    EXPECT_EQ(stats.opt3Applied, 1u);
    size_t op2 = out.find("&0x0138");
    size_t nop = out.find("nop");
    size_t read = out.find("&0x013a");
    EXPECT_LT(op2, nop);
    EXPECT_LT(nop, read);
    // Already padded: no duplicate NOP.
    stats = {};
    opt::applyTransforms(
        "        mov r4, &0x0138\n        nop\n", cfg, &stats);
    EXPECT_EQ(stats.opt3Applied, 0u);
}

TEST(Transforms, PreservesFunctionality)
{
    // A program with all three rewrite targets: the transformed code
    // must compute the same results on the ISS.
    std::string source = test::wrapProgram(R"(
        mov #0x0300, r4
        mov #21, 0(r4)
        mov #2, 2(r4)
        push #7
        pop r8
        mov 2(r4), r9       ; OPT1 site
        mov @r4+, r10       ; OPT2 site
        mov r9, &0x0130
        mov r10, &0x0138    ; OPT3 site
        mov &0x013a, r11
        add r8, r11
    )");
    opt::TransformConfig cfg;
    cfg.scratchReg = "r14";
    opt::TransformStats stats;
    std::string optimized = opt::applyTransforms(source, cfg, &stats);
    EXPECT_GE(stats.total(), 3u);

    auto run = [](const std::string &src) {
        isa::Iss iss;
        iss.loadImage(isa::assemble(src));
        iss.reset();
        EXPECT_TRUE(iss.run(5000));
        return iss;
    };
    isa::Iss a = run(source);
    isa::Iss b = run(optimized);
    for (unsigned r : {4u, 8u, 9u, 10u, 11u})
        EXPECT_EQ(a.reg(r), b.reg(r)) << "r" << r;
    EXPECT_EQ(b.reg(11), uint16_t(2 * 21 + 7));
}

TEST(Optimizer, NeverIncreasesPeak)
{
    msp::System &sys = test::sharedSystem();
    opt::TransformConfig cfg;
    peak::Options opts;
    for (const char *name : {"mult", "tHold", "binSearch"}) {
        auto rep = opt::evaluateOptimizations(
            sys, bench430::benchmarkByName(name), cfg, opts);
        ASSERT_TRUE(rep.ok) << name << ": " << rep.error;
        EXPECT_LE(rep.peakAfterW, rep.peakBeforeW) << name;
        EXPECT_GE(rep.peakReductionPct, -1e-9) << name;
        if (rep.transforms.total() == 0) {
            // Empty subset chosen: everything must be unchanged.
            EXPECT_DOUBLE_EQ(rep.peakAfterW, rep.peakBeforeW);
            EXPECT_EQ(rep.cyclesAfter, rep.cyclesBefore);
        }
    }
}

TEST(Optimizer, OptimizedBenchmarkStillCorrect)
{
    // Apply all transforms to tHold and verify the kernel still
    // counts correctly on the ISS.
    const auto &b = bench430::benchmarkByName("tHold");
    opt::TransformConfig cfg;
    cfg.scratchReg = b.scratchReg;
    std::string optimized = opt::applyTransforms(b.source, cfg);
    isa::Iss iss;
    iss.loadImage(isa::assemble(optimized));
    std::vector<uint16_t> samples = {0x500, 0x100, 0x400, 0x3ff,
                                     0x700, 0,     0x7ff, 0x3fe};
    for (size_t i = 0; i < samples.size(); ++i)
        iss.writeMem(bench430::kInputAddr + uint32_t(i) * 2,
                     samples[i]);
    iss.reset();
    ASSERT_TRUE(iss.run(100000)) << iss.haltReason();
    EXPECT_EQ(iss.readMem(bench430::kOutputAddr), 4);
}

} // namespace
} // namespace ulpeak
