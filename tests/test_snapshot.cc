/**
 * @file
 * Delta-vs-full snapshot equivalence: the sparse fork snapshots the
 * exploration core uses (Simulator::DeltaSnapshot) must be
 * indistinguishable from full state copies under every randomized
 * dirty pattern -- materialize() reproduces the full snapshot bit
 * for bit, restore(delta) into any simulator (the original or a
 * fresh clone, either kernel) continues exactly like
 * restore(full), and the empty delta (no cycles between base and
 * capture) round-trips.
 */

#include <gtest/gtest.h>

#include "fuzz/netlist_gen.hh"
#include "fuzz/rng.hh"
#include "sim/simulator.hh"

namespace ulpeak {
namespace {

/** Drive @p sim for @p cycles cycles from @p sched starting at
 *  @p from (all simulators in these tests share one schedule so
 *  their states are comparable). */
void
runCycles(Simulator &sim, const std::vector<GateId> &inputs,
          const std::vector<std::vector<V4>> &sched, unsigned from,
          unsigned cycles)
{
    for (unsigned c = from; c < from + cycles; ++c) {
        sim.step([&](Simulator &s) {
            for (size_t i = 0; i < inputs.size(); ++i)
                s.setInput(inputs[i], sched[c][i]);
        });
    }
}

struct Rig {
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl{lib};
    fuzz::RandomNetlist rn;
    std::vector<std::vector<V4>> sched;

    Rig(uint64_t seed, unsigned cycles)
    {
        fuzz::Rng rng(seed);
        fuzz::NetlistGenOptions opts;
        rn = fuzz::buildRandomNetlist(nl, rng, opts);
        sched = fuzz::makeInputSchedule(
            rng, unsigned(rn.inputs.size()), cycles,
            opts.inputXPercent);
    }
};

bool
snapshotsEqual(const Simulator::Snapshot &a,
               const Simulator::Snapshot &b)
{
    return a.val == b.val && a.activeLast == b.activeLast &&
           a.loadedPrevEdge == b.loadedPrevEdge && a.cycle == b.cycle;
}

// materialize(delta-vs-base) must equal the full snapshot captured
// at the same instant, across randomized dirty distances and seeds.
TEST(SnapshotDelta, MaterializeEqualsFullSnapshot)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Rig rig(seed, 128);
        Simulator sim(rig.nl);
        fuzz::Rng rng(seed * 977);

        unsigned at = 0;
        runCycles(sim, rig.rn.inputs, rig.sched, at, 8);
        at += 8;
        auto base = std::make_shared<const Simulator::Snapshot>(
            sim.snapshot());
        while (at < 110) {
            unsigned gap = 1 + rng.below(12); // randomized dirtying
            runCycles(sim, rig.rn.inputs, rig.sched, at, gap);
            at += gap;
            Simulator::Snapshot full = sim.snapshot();
            Simulator::DeltaSnapshot delta = sim.snapshotDelta(base);
            EXPECT_TRUE(
                snapshotsEqual(Simulator::materialize(delta), full))
                << "seed " << seed << " cycle " << at;
        }
    }
}

// The empty delta: capturing immediately after the base stores
// nothing and still restores the full state.
TEST(SnapshotDelta, EmptyDeltaRoundTrips)
{
    Rig rig(3, 16);
    Simulator sim(rig.nl);
    runCycles(sim, rig.rn.inputs, rig.sched, 0, 10);
    auto base = std::make_shared<const Simulator::Snapshot>(
        sim.snapshot());
    Simulator::DeltaSnapshot delta = sim.snapshotDelta(base);
    EXPECT_EQ(delta.deltaBytes(), 0u);
    EXPECT_TRUE(snapshotsEqual(Simulator::materialize(delta), *base));

    Simulator clone(rig.nl);
    clone.restore(delta);
    EXPECT_EQ(clone.hashFullState(), sim.hashFullState());
    EXPECT_EQ(clone.cycle(), sim.cycle());
}

// restore(delta) and restore(full) are interchangeable: restoring
// either form into a fresh clone (and into a simulator of the
// *other* kernel) must produce identical continuations, cycle by
// cycle, to the straight-line run.
TEST(SnapshotDelta, RestoreIntoCloneMatchesFullRestore)
{
    for (uint64_t seed = 11; seed <= 14; ++seed) {
        Rig rig(seed, 64);
        Simulator sim(rig.nl);
        runCycles(sim, rig.rn.inputs, rig.sched, 0, 12);
        auto base = std::make_shared<const Simulator::Snapshot>(
            sim.snapshot());
        runCycles(sim, rig.rn.inputs, rig.sched, 12, 9);
        Simulator::Snapshot full = sim.snapshot();
        Simulator::DeltaSnapshot delta = sim.snapshotDelta(base);

        // Continue the original to the end of the schedule.
        runCycles(sim, rig.rn.inputs, rig.sched, 21, 43);

        Simulator viaFull(rig.nl);
        viaFull.restore(full);
        Simulator viaDelta(rig.nl);
        viaDelta.restore(delta);
        Simulator viaDeltaFullSweep(rig.nl, EvalMode::FullSweep);
        viaDeltaFullSweep.restore(delta);
        EXPECT_EQ(viaFull.hashFullState(), viaDelta.hashFullState());
        EXPECT_EQ(viaFull.activeGates(), viaDelta.activeGates());

        for (unsigned c = 21; c < 64; ++c) {
            auto drive = [&](Simulator &s) {
                for (size_t i = 0; i < rig.rn.inputs.size(); ++i)
                    s.setInput(rig.rn.inputs[i], rig.sched[c][i]);
            };
            viaFull.step(drive);
            viaDelta.step(drive);
            viaDeltaFullSweep.step(drive);
            ASSERT_EQ(viaFull.hashFullState(),
                      viaDelta.hashFullState())
                << "seed " << seed << " cycle " << c;
            ASSERT_EQ(viaFull.boundEnergyJ(), viaDelta.boundEnergyJ());
            ASSERT_EQ(viaFull.hashFullState(),
                      viaDeltaFullSweep.hashFullState())
                << "seed " << seed << " cycle " << c
                << " (FullSweep clone)";
        }
        EXPECT_EQ(viaDelta.hashFullState(), sim.hashFullState())
            << "restored continuation diverged from the "
               "straight-line run";
    }
}

// A delta against a base from a different netlist must be rejected
// loudly, not silently mis-applied.
TEST(SnapshotDelta, MismatchedBaseThrows)
{
    Rig rigA(21, 8);
    fuzz::NetlistGenOptions bigger;
    bigger.numCombGates = 40;
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nlB(lib);
    fuzz::Rng rng(22);
    fuzz::buildRandomNetlist(nlB, rng, bigger);

    Simulator simA(rigA.nl);
    runCycles(simA, rigA.rn.inputs, rigA.sched, 0, 4);
    Simulator simB(nlB);
    auto baseB = std::make_shared<const Simulator::Snapshot>(
        simB.snapshot());
    EXPECT_THROW(simA.snapshotDelta(baseB), std::logic_error);
}

} // namespace
} // namespace ulpeak
