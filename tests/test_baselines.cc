/**
 * @file
 * Tests for the three conventional baselines (Section 4.2): the
 * design-tool rating, input-based profiling with guardband, and the
 * GA stressmark.
 */

#include <gtest/gtest.h>

#include "baseline/baselines.hh"
#include "bench430/benchmarks.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

TEST(DesignTool, RatingAboveApplicationFloor)
{
    msp::System &sys = test::sharedSystem();
    auto dt = baseline::designToolRating(sys.netlist(), 100e6);
    power::PowerContext ctx(sys.netlist(), 100e6);
    EXPECT_GT(dt.peakPowerW, ctx.cyclePowerW(0.0))
        << "rating must exceed the static floor";
    EXPECT_DOUBLE_EQ(dt.npeJPerCycle, dt.peakPowerW / 100e6)
        << "design-spec energy is flat at rated power";
}

TEST(Profiling, GuardbandAndExtremes)
{
    msp::System &sys = test::sharedSystem();
    const auto &b = bench430::benchmarkByName("tHold");
    auto prof = baseline::profile(sys, b.assembleImage(),
                                  b.makeInputs(5, 77), 100e6);
    EXPECT_EQ(prof.peaksW.size(), 5u);
    EXPECT_LE(prof.minPeakPowerW, prof.peakPowerW);
    EXPECT_NEAR(prof.gbPeakPowerW,
                prof.peakPowerW * baseline::kGuardband, 1e-12);
    EXPECT_NEAR(prof.gbNpeJPerCycle,
                prof.npeJPerCycle * baseline::kGuardband, 1e-24);
    for (double p : prof.peaksW) {
        EXPECT_GE(p, prof.minPeakPowerW);
        EXPECT_LE(p, prof.peakPowerW);
    }
}

TEST(Profiling, RequiresInputs)
{
    msp::System &sys = test::sharedSystem();
    const auto &b = bench430::benchmarkByName("tHold");
    EXPECT_THROW(
        baseline::profile(sys, b.assembleImage(), {}, 100e6),
        std::invalid_argument);
}

TEST(Stressmark, ProducesRunnableHighPowerProgram)
{
    msp::System &sys = test::sharedSystem();
    baseline::StressmarkConfig cfg;
    cfg.population = 6;
    cfg.generations = 3;
    cfg.evalCycles = 300;
    cfg.seed = 5;
    auto r = baseline::generateStressmark(sys, 100e6, cfg);

    power::PowerContext ctx(sys.netlist(), 100e6);
    EXPECT_GT(r.peakPowerW, ctx.cyclePowerW(0.0) * 1.2)
        << "a stressmark must beat idle power comfortably";
    EXPECT_GT(r.peakPowerW, r.avgPowerW);
    EXPECT_NEAR(r.gbPeakPowerW, r.peakPowerW * baseline::kGuardband,
                1e-12);
    EXPECT_EQ(r.generationBestW.size(), cfg.generations);
    // Elitism: per-generation best never regresses.
    for (size_t g = 1; g < r.generationBestW.size(); ++g)
        EXPECT_GE(r.generationBestW[g] + 1e-12,
                  r.generationBestW[g - 1]);
    // The winning genome is real assembly.
    EXPECT_NO_THROW(isa::assemble(r.bestSource));
}

TEST(Stressmark, AveragePowerObjective)
{
    msp::System &sys = test::sharedSystem();
    baseline::StressmarkConfig cfg;
    cfg.population = 6;
    cfg.generations = 2;
    cfg.evalCycles = 300;
    cfg.objective = baseline::StressObjective::AveragePower;
    auto r = baseline::generateStressmark(sys, 100e6, cfg);
    EXPECT_GT(r.avgPowerW, 0.0);
    EXPECT_NEAR(r.npeJPerCycle, r.avgPowerW / 100e6, 1e-20);
}

TEST(Stressmark, DeterministicForSeed)
{
    msp::System &sys = test::sharedSystem();
    baseline::StressmarkConfig cfg;
    cfg.population = 4;
    cfg.generations = 2;
    cfg.evalCycles = 200;
    auto a = baseline::generateStressmark(sys, 100e6, cfg);
    auto b = baseline::generateStressmark(sys, 100e6, cfg);
    EXPECT_DOUBLE_EQ(a.peakPowerW, b.peakPowerW);
    EXPECT_EQ(a.bestSource, b.bestSource);
}

} // namespace
} // namespace ulpeak
