#include <algorithm>
#include <map>
#include <sstream>

#include "netlist/netlist.hh"

namespace ulpeak {

NetlistStats
computeStats(const Netlist &nl)
{
    NetlistStats s;
    s.totalGates = nl.numGates();

    std::map<std::string, size_t> perModule;
    std::map<std::string, size_t> perKind;
    for (GateId g = 0; g < nl.numGates(); ++g) {
        const Gate &gate = nl.gate(g);
        if (isSequential(gate.kind))
            ++s.seqGates;
        s.areaUm2 += nl.library().params(gate.kind).areaUm2;
        s.leakageW += nl.library().params(gate.kind).leakageW;
        ModuleId top = nl.topLevelModuleOf(gate.module);
        ++perModule[nl.moduleName(top)];
        ++perKind[cellName(gate.kind)];
    }
    s.combGates = s.totalGates - s.seqGates;
    s.gatesPerTopModule.assign(perModule.begin(), perModule.end());
    s.gatesPerKind.assign(perKind.begin(), perKind.end());
    std::sort(s.gatesPerTopModule.begin(), s.gatesPerTopModule.end(),
              [](auto &a, auto &b) { return a.second > b.second; });
    return s;
}

std::string
formatStats(const NetlistStats &s)
{
    std::ostringstream os;
    os << "gates: " << s.totalGates << " (" << s.seqGates
       << " sequential, " << s.combGates << " combinational)\n";
    os << "area: " << s.areaUm2 << " um^2, leakage: " << s.leakageW * 1e6
       << " uW\n";
    os << "per-module gate counts:\n";
    for (auto &[name, count] : s.gatesPerTopModule)
        os << "  " << name << ": " << count << "\n";
    return os.str();
}

std::string
toDot(const Netlist &nl, size_t max_gates)
{
    std::ostringstream os;
    os << "digraph netlist {\n  rankdir=LR;\n  node [shape=box];\n";
    size_t n = std::min(nl.numGates(), max_gates);
    for (GateId g = 0; g < n; ++g) {
        const Gate &gate = nl.gate(g);
        std::string name = nl.gateName(g);
        os << "  g" << g << " [label=\"" << cellName(gate.kind);
        if (!name.empty())
            os << "\\n" << name;
        os << "\"";
        if (isSequential(gate.kind))
            os << " style=filled fillcolor=lightblue";
        os << "];\n";
        for (unsigned i = 0; i < gate.nin; ++i)
            if (gate.in[i] < n)
                os << "  g" << gate.in[i] << " -> g" << g << ";\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace ulpeak
