/**
 * @file
 * Validation utilities of Section 3.4: the X-based analysis must (a)
 * mark a superset of the gates any input-based run toggles
 * (Figure 3.4) and (b) produce a per-cycle power trace that upper-
 * bounds every input-based power trace (Figure 3.5).
 */

#ifndef ULPEAK_PEAK_VALIDATION_HH
#define ULPEAK_PEAK_VALIDATION_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ulpeak {
namespace peak {

struct ActivityValidation {
    /** inputOnlyGates == 0 *and* the concrete vector introduces no
     *  gates the X-based vector has no entry for. A length mismatch
     *  can never be silently absorbed into a true superset claim. */
    bool isSuperset = false;
    /** The two vectors describe different gate counts -- almost
     *  always a caller bug (different netlists). The uncompared tail
     *  is still tallied into the one-sided buckets below. */
    bool lengthMismatch = false;
    size_t commonGates = 0;     ///< toggled in both analyses
    size_t xOnlyGates = 0;      ///< potentially-toggled only (blue
                                ///< triangles in Figure 3.4)
    size_t inputOnlyGates = 0;  ///< would be a soundness bug
    size_t uncomparedGates = 0; ///< |size difference|
};

/** Compare the X-based potentially-toggled set against a concrete
 *  run's toggled set. */
ActivityValidation
validateActivity(const std::vector<uint8_t> &x_based,
                 const std::vector<uint8_t> &input_based);

struct TraceValidation {
    /** violations == 0. A concrete trace longer than the bound trace
     *  can never be bounded: its tail cycles have no bound and each
     *  counts as a violation. */
    bool bounds = false;
    /** Trace lengths differ. An x-trace longer than the concrete
     *  trace is legitimate (the bound covers the longest path, the
     *  concrete run halted earlier) and leaves bounds intact; the
     *  flag still reports it so callers expecting aligned traces
     *  notice. */
    bool lengthMismatch = false;
    uint64_t violations = 0;
    uint64_t comparedCycles = 0;        ///< min of the two lengths
    uint64_t uncomparedTailCycles = 0;  ///< |length difference|
    /** First violating cycle (UINT64_MAX when bounds holds). */
    uint64_t firstViolationCycle = UINT64_MAX;
    double maxViolationW = 0.0;
    /** Mean (x - concrete) over compared cycles: how tight the bound
     *  is (Figure 3.5 shows the traces close together). */
    double meanSlackW = 0.0;
};

/**
 * Check that the X-based per-cycle trace upper-bounds the concrete
 * trace, cycle-aligned (valid for matching execution paths; for
 * forked programs compare along the concrete path's prefix, and for
 * the envelope flow compare the whole concrete trace -- the envelope
 * covers every path, so a concrete tail beyond it is a violation).
 */
TraceValidation validateTraceBound(const std::vector<float> &x_trace,
                                   const std::vector<float> &c_trace,
                                   double tolerance_w = 1e-9);

} // namespace peak
} // namespace ulpeak

#endif // ULPEAK_PEAK_VALIDATION_HH
