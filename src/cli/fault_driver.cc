#include "cli/fault_driver.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bench430/benchmarks.hh"
#include "cli/driver.hh"
#include "cli/parse_util.hh"

namespace ulpeak {
namespace cli {

namespace {

/**
 * Fold one deterministic concrete input set into @p image when
 * @p name is a bench430 registry benchmark: their inputs live in an
 * uninitialized RAM window, which reads X on the gate side and would
 * (rightly) diverge the golden lockstep. The set derives from the
 * campaign seed, so the whole campaign -- cache key included, via the
 * image contents -- is reproducible from (program, seed) alone. When
 * the benchmark reads the input port and no --port was given, the
 * generated port word is adopted too.
 */
void
foldBenchmarkInputs(const std::string &name, uint64_t seed,
                    isa::Image &image, uint16_t &port, bool port_set)
{
    for (const bench430::Benchmark &b : bench430::allBenchmarks()) {
        if (b.name != name)
            continue;
        fuzz::Rng rng(fuzz::Rng::deriveStream(seed, 3ull << 40));
        baseline::InputSet in = b.makeInput(rng);
        for (auto &[addr, words] : in.ram)
            image.segments.push_back({addr, words});
        if (b.usesPort && !port_set)
            port = in.portIn;
        return;
    }
}

/** Shortest round-trip double formatting (the `ulpeak` JSON idiom). */
std::string
fmtDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

/** Shared whole-token integer parsing (cli/parse_util.hh): rejects
 *  trailing garbage and "-1"-style wraparound like the other CLIs. */
bool
parseU64(const std::string &s, uint64_t &out)
{
    return parseUnsignedInt(s.c_str(), out);
}

const char *
siteKindName(fault::SiteKind k)
{
    return k == fault::SiteKind::Flop ? "flop" : "ram";
}

/** Vulnerability rank of a site: everything that is not masked. */
uint64_t
badness(const fault::SiteSummary &s)
{
    return s.sdc + s.crash + s.hang + s.escapes;
}

int
runReplay(const FaultCliOptions &cli)
{
    std::vector<peak::BatchProgram> progs =
        resolvePrograms({cli.programSpec});
    isa::Image image = progs.front().image;
    CellLibrary lib = CellLibrary::tsmc65Like();
    fault::CampaignOptions copts = toCampaignOptions(cli);
    foldBenchmarkInputs(progs.front().name, cli.seed, image,
                        copts.portIn, cli.portSet);

    msp::System sys(lib);
    std::vector<fault::Site> sites =
        fault::campaignSites(sys.netlist(), sys, copts);
    if (cli.replaySite >= sites.size()) {
        std::fprintf(stderr,
                     "ulfault: --replay site %u out of range "
                     "(%zu sites)\n",
                     cli.replaySite, sites.size());
        return 1;
    }
    const fault::Site &site = sites[cli.replaySite];

    cosim::Options gopts;
    gopts.maxCycles = copts.goldenMaxCycles;
    gopts.portIn = copts.portIn;
    gopts.evalMode = copts.evalMode;
    cosim::Result golden = cosim::run(sys, image, gopts);
    if (!golden.ok) {
        std::fprintf(stderr, "ulfault: golden run diverges:\n%s",
                     golden.report().c_str());
        return 1;
    }

    power::PowerContext ctx(sys.netlist(), copts.freqHz);
    fault::RunOptions ropts;
    ropts.maxCycles = copts.hangCycles ? copts.hangCycles
                                       : 4 * golden.gateCycles + 64;
    ropts.portIn = copts.portIn;
    ropts.evalMode = copts.evalMode;
    ropts.powerCtx = &ctx;

    peak::Envelope env;
    if (copts.withEnvelope) {
        peak::Options aopts = copts.analysis;
        aopts.freqHz = copts.freqHz;
        aopts.recordEnvelope = true;
        peak::Report rep = peak::analyze(sys, image, aopts);
        if (rep.ok && rep.envelope.present) {
            env = std::move(rep.envelope);
            ropts.envelope = &env;
        } else {
            std::fprintf(stderr,
                         "ulfault: envelope analysis failed (%s); "
                         "replaying without escape check\n",
                         rep.error.c_str());
        }
    }

    std::vector<fault::Injection> faults{{site, cli.replayCycle}};
    fault::FaultResult r =
        fault::runFaulted(sys, image, faults, ropts);

    std::printf("replay: site %u (%s, %s) flipped at cycle %" PRIu64
                "\n",
                cli.replaySite,
                fault::siteName(sys.netlist(), site).c_str(),
                siteKindName(site.kind), cli.replayCycle);
    std::printf("outcome: %s%s\n", fault::outcomeName(r.outcome),
                r.applied ? "" : " (flip hit X state; not applied)");
    std::printf("gate cycles %" PRIu64 ", retired %" PRIu64
                ", peak %s W at cycle %" PRIu64 "\n",
                r.gateCycles, r.instructionsRetired,
                fmtDouble(r.peakPowerW).c_str(), r.peakCycle);
    if (r.envelopeEscape)
        std::printf("ENVELOPE ESCAPE at cycle %" PRIu64 "\n",
                    r.escapeCycle);
    if (!r.report.empty())
        std::printf("%s", r.report.c_str());
    return 0;
}

} // namespace

std::string
faultUsage()
{
    return "usage: ulfault [options] PROGRAM\n"
           "\n"
           "SEU fault-injection campaign on one program (a bench430\n"
           "name or an MSP430 assembly file). Flips flop / RAM bits\n"
           "at random cycles of the golden execution and classifies\n"
           "each faulted run against the golden ISS.\n"
           "\n"
           "options:\n"
           "  --seed N            campaign seed (default 1)\n"
           "  --jobs N            worker threads (default 1)\n"
           "  --scalar            use the scalar runner (default:\n"
           "                      64-lane packed; bit-identical)\n"
           "  --cycles-per-site N injections per site (default 1)\n"
           "  --max-sites N       cap flop sites, 0 = all (default)\n"
           "  --ram-sites N       extra random RAM-bit sites\n"
           "  --hang-cycles N     hang budget, 0 = 4*golden+64\n"
           "  --port VALUE        input port word (default 0)\n"
           "  --freq HZ           clock frequency (default 100e6)\n"
           "  --envelope          analyze the X-based envelope and\n"
           "                      report faulted-run escapes\n"
           "  --top N             vulnerability table rows "
           "(default 20)\n"
           "  --json FILE         write the JSON report\n"
           "  --csv FILE          write per-injection CSV rows\n"
           "  --cache-dir DIR     campaign cache (default "
           ".ulpeak-cache)\n"
           "  --no-cache          disable the disk cache\n"
           "  --no-timings        omit wall-time/cache fields from\n"
           "                      --json (byte-identical across\n"
           "                      --jobs / --scalar / cache state)\n"
           "  --replay S@C        re-run site S's flip at cycle C\n"
           "                      through the scalar runner and print\n"
           "                      the full divergence report\n"
           "  --quiet             suppress the stdout table\n"
           "  --help              this text\n";
}

bool
parseFaultArgs(int argc, const char *const *argv, FaultCliOptions &out,
               std::string &err)
{
    auto need = [&](int i) -> const char * {
        if (i + 1 >= argc)
            return nullptr;
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        const char *v = nullptr;
        if (a == "--help" || a == "-h") {
            out.help = true;
            return true;
        } else if (a == "--scalar") {
            out.scalar = true;
        } else if (a == "--envelope") {
            out.envelope = true;
        } else if (a == "--no-cache") {
            out.noCache = true;
        } else if (a == "--no-timings") {
            out.noTimings = true;
        } else if (a == "--quiet") {
            out.quiet = true;
        } else if (a == "--seed") {
            if (!(v = need(i)) || !parseU64(v, out.seed)) {
                err = "--seed needs an integer";
                return false;
            }
            ++i;
        } else if (a == "--jobs") {
            if (!(v = need(i)) || !parsePositiveInt(v, out.jobs)) {
                err = "--jobs needs a positive integer";
                return false;
            }
            ++i;
        } else if (a == "--cycles-per-site") {
            if (!(v = need(i)) ||
                !parsePositiveInt(v, out.cyclesPerSite)) {
                err = "--cycles-per-site needs a positive integer";
                return false;
            }
            ++i;
        } else if (a == "--max-sites") {
            uint64_t n;
            if (!(v = need(i)) || !parseU64(v, n)) {
                err = "--max-sites needs an integer";
                return false;
            }
            out.maxSites = size_t(n);
            ++i;
        } else if (a == "--ram-sites") {
            uint64_t n;
            if (!(v = need(i)) || !parseU64(v, n)) {
                err = "--ram-sites needs an integer";
                return false;
            }
            out.ramSites = size_t(n);
            ++i;
        } else if (a == "--hang-cycles") {
            if (!(v = need(i)) || !parseU64(v, out.hangCycles)) {
                err = "--hang-cycles needs an integer";
                return false;
            }
            ++i;
        } else if (a == "--port") {
            uint64_t n;
            if (!(v = need(i)) || !parseU64(v, n) || n > 0xffff) {
                err = "--port needs a 16-bit integer";
                return false;
            }
            out.port = uint16_t(n);
            out.portSet = true;
            ++i;
        } else if (a == "--freq") {
            // parsePositiveDouble, not atof: atof("8e6x") silently
            // returned 8e6, so a typo ran the whole campaign at the
            // wrong idea of what was checked.
            if (!(v = need(i)) ||
                !parsePositiveDouble(v, out.freqHz)) {
                err = "--freq needs a positive frequency";
                return false;
            }
            ++i;
        } else if (a == "--top") {
            uint64_t n;
            if (!(v = need(i)) || !parseU64(v, n)) {
                err = "--top needs an integer";
                return false;
            }
            out.top = unsigned(n);
            ++i;
        } else if (a == "--json") {
            if (!(v = need(i))) {
                err = "--json needs a file path";
                return false;
            }
            out.jsonPath = v;
            ++i;
        } else if (a == "--csv") {
            if (!(v = need(i))) {
                err = "--csv needs a file path";
                return false;
            }
            out.csvPath = v;
            ++i;
        } else if (a == "--cache-dir") {
            if (!(v = need(i))) {
                err = "--cache-dir needs a directory";
                return false;
            }
            out.cacheDir = v;
            ++i;
        } else if (a == "--replay") {
            if (!(v = need(i))) {
                err = "--replay needs SITE@CYCLE";
                return false;
            }
            std::string spec = v;
            size_t at = spec.find('@');
            uint64_t s = 0, c = 0;
            if (at == std::string::npos ||
                !parseU64(spec.substr(0, at), s) ||
                !parseU64(spec.substr(at + 1), c)) {
                err = "--replay needs SITE@CYCLE (two integers)";
                return false;
            }
            out.replay = true;
            out.replaySite = uint32_t(s);
            out.replayCycle = c;
            ++i;
        } else if (!a.empty() && a[0] == '-') {
            err = "unknown option: " + a;
            return false;
        } else {
            if (!out.programSpec.empty()) {
                err = "exactly one PROGRAM expected";
                return false;
            }
            out.programSpec = a;
        }
    }
    if (out.programSpec.empty()) {
        err = "PROGRAM argument required";
        return false;
    }
    return true;
}

fault::CampaignOptions
toCampaignOptions(const FaultCliOptions &cli)
{
    fault::CampaignOptions o;
    o.seed = cli.seed;
    o.jobs = cli.jobs;
    o.packed = !cli.scalar;
    o.cyclesPerSite = cli.cyclesPerSite;
    o.maxFlopSites = cli.maxSites;
    o.ramSites = cli.ramSites;
    o.portIn = cli.port;
    o.hangCycles = cli.hangCycles;
    o.freqHz = cli.freqHz;
    o.withEnvelope = cli.envelope;
    o.cacheDir = cli.noCache ? "" : cli.cacheDir;
    return o;
}

std::string
toFaultJson(const fault::CampaignResult &res,
            const fault::CampaignOptions &opts,
            const std::string &program, bool include_timings)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"program\": \"" << jsonEscape(program) << "\",\n";
    os << "  \"ok\": " << (res.ok ? "true" : "false") << ",\n";
    if (!res.error.empty())
        os << "  \"error\": \"" << jsonEscape(res.error) << "\",\n";
    os << "  \"seed\": " << opts.seed << ",\n"
       << "  \"cycles_per_site\": " << opts.cyclesPerSite << ",\n"
       << "  \"golden_cycles\": " << res.goldenCycles << ",\n"
       << "  \"golden_instructions\": " << res.goldenInstructions
       << ",\n"
       << "  \"hang_cycles\": " << res.hangCycles << ",\n";
    os << "  \"envelope\": {\n"
       << "    \"present\": "
       << (res.envelopePresent ? "true" : "false") << ",\n";
    if (!res.envelopeError.empty())
        os << "    \"error\": \"" << jsonEscape(res.envelopeError)
           << "\",\n";
    os << "    \"cycles\": " << res.envelopeCycles << ",\n"
       << "    \"peak_w\": " << fmtDouble(res.envelopePeakW) << "\n"
       << "  },\n";
    os << "  \"totals\": {\n"
       << "    \"injections\": " << res.injections.size() << ",\n"
       << "    \"masked\": " << res.masked << ",\n"
       << "    \"sdc\": " << res.sdc << ",\n"
       << "    \"crash\": " << res.crash << ",\n"
       << "    \"hang\": " << res.hang << ",\n"
       << "    \"not_applied\": " << res.notApplied << ",\n"
       << "    \"escapes\": " << res.escapes << "\n"
       << "  },\n";
    os << "  \"sites\": [\n";
    for (size_t s = 0; s < res.sites.size(); ++s) {
        const fault::SiteSummary &sum = res.summaries[s];
        os << "    {\"index\": " << s << ", \"name\": \""
           << jsonEscape(res.siteNames[s]) << "\", \"kind\": \""
           << siteKindName(res.sites[s].kind)
           << "\", \"masked\": " << sum.masked
           << ", \"sdc\": " << sum.sdc << ", \"crash\": " << sum.crash
           << ", \"hang\": " << sum.hang
           << ", \"escapes\": " << sum.escapes
           << ", \"max_peak_w\": " << fmtDouble(sum.maxPeakPowerW)
           << "}" << (s + 1 < res.sites.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"injections\": [\n";
    for (size_t i = 0; i < res.injections.size(); ++i) {
        const fault::InjectionResult &ir = res.injections[i];
        const fault::FaultResult &r = ir.r;
        os << "    {\"site\": " << ir.siteIndex
           << ", \"cycle\": " << ir.cycle << ", \"outcome\": \""
           << fault::outcomeName(r.outcome) << "\", \"applied\": "
           << (r.applied ? "true" : "false") << ", \"kind\": \""
           << cosim::divergenceKindName(r.kind)
           << "\", \"div_cycle\": " << r.divergenceCycle
           << ", \"instr_index\": " << r.instrIndex
           << ", \"pc\": " << r.pc
           << ", \"gate_cycles\": " << r.gateCycles
           << ", \"retired\": " << r.instructionsRetired
           << ", \"peak_w\": " << fmtDouble(r.peakPowerW)
           << ", \"peak_cycle\": " << r.peakCycle
           << ", \"trace_cycles\": " << r.traceCycles
           << ", \"escape\": " << (r.envelopeEscape ? "true" : "false")
           << ", \"escape_cycle\": " << r.escapeCycle << "}"
           << (i + 1 < res.injections.size() ? "," : "") << "\n";
    }
    os << "  ]";
    if (include_timings) {
        os << ",\n  \"run\": {\n"
           << "    \"cache_hit\": "
           << (res.cacheHit ? "true" : "false") << ",\n"
           << "    \"wall_seconds\": " << fmtDouble(res.wallSeconds)
           << "\n  }";
    }
    os << "\n}\n";
    return os.str();
}

std::string
toFaultCsv(const fault::CampaignResult &res)
{
    std::ostringstream os;
    os << "site,site_name,kind,cycle,outcome,applied,divergence,"
          "div_cycle,instr_index,pc,gate_cycles,retired,peak_w,"
          "peak_cycle,escape,escape_cycle\n";
    for (const fault::InjectionResult &ir : res.injections) {
        const fault::FaultResult &r = ir.r;
        os << ir.siteIndex << "," << res.siteNames[ir.siteIndex] << ","
           << siteKindName(res.sites[ir.siteIndex].kind) << ","
           << ir.cycle << "," << fault::outcomeName(r.outcome) << ","
           << (r.applied ? 1 : 0) << ","
           << cosim::divergenceKindName(r.kind) << ","
           << r.divergenceCycle << "," << r.instrIndex << "," << r.pc
           << "," << r.gateCycles << "," << r.instructionsRetired
           << "," << fmtDouble(r.peakPowerW) << "," << r.peakCycle
           << "," << (r.envelopeEscape ? 1 : 0) << ","
           << r.escapeCycle << "\n";
    }
    return os.str();
}

int
runFaultCli(int argc, const char *const *argv)
{
    FaultCliOptions cli;
    std::string err;
    if (!parseFaultArgs(argc, argv, cli, err)) {
        std::fprintf(stderr, "ulfault: %s\n%s", err.c_str(),
                     faultUsage().c_str());
        return 2;
    }
    if (cli.help) {
        std::printf("%s", faultUsage().c_str());
        return 0;
    }

    try {
        if (cli.replay)
            return runReplay(cli);

        std::vector<peak::BatchProgram> progs =
            resolvePrograms({cli.programSpec});
        const peak::BatchProgram &prog = progs.front();
        fault::CampaignOptions copts = toCampaignOptions(cli);
        isa::Image image = prog.image;
        foldBenchmarkInputs(prog.name, cli.seed, image, copts.portIn,
                            cli.portSet);
        fault::CampaignResult res = fault::runCampaign(
            CellLibrary::tsmc65Like(), image, copts);

        if (!res.ok) {
            std::fprintf(stderr, "ulfault: %s\n", res.error.c_str());
            return 1;
        }

        if (!cli.quiet) {
            std::printf("campaign: %s, %zu sites x %u cycles = %zu "
                        "injections%s\n",
                        prog.name.c_str(), res.sites.size(),
                        copts.cyclesPerSite, res.injections.size(),
                        res.cacheHit ? " (cached)" : "");
            std::printf("golden: %" PRIu64 " cycles, %" PRIu64
                        " instructions; hang budget %" PRIu64 "\n",
                        res.goldenCycles, res.goldenInstructions,
                        res.hangCycles);
            if (res.envelopePresent)
                std::printf("envelope: %" PRIu64
                            " cycles, peak %s W\n",
                            res.envelopeCycles,
                            fmtDouble(res.envelopePeakW).c_str());
            else if (!res.envelopeError.empty())
                std::printf("envelope: unavailable (%s)\n",
                            res.envelopeError.c_str());
            std::printf("totals: %" PRIu64 " masked, %" PRIu64
                        " sdc, %" PRIu64 " crash, %" PRIu64
                        " hang (%" PRIu64 " not applied, %" PRIu64
                        " escapes)\n",
                        res.masked, res.sdc, res.crash, res.hang,
                        res.notApplied, res.escapes);

            // Vulnerability table: most-unmasked sites first.
            std::vector<size_t> order(res.summaries.size());
            for (size_t i = 0; i < order.size(); ++i)
                order[i] = i;
            std::sort(order.begin(), order.end(),
                      [&](size_t a, size_t b) {
                          uint64_t ba = badness(res.summaries[a]);
                          uint64_t bb = badness(res.summaries[b]);
                          if (ba != bb)
                              return ba > bb;
                          return a < b;
                      });
            size_t rows = std::min<size_t>(cli.top, order.size());
            if (rows) {
                std::printf("%-28s %6s %6s %6s %6s %7s %12s\n",
                            "site", "masked", "sdc", "crash", "hang",
                            "escapes", "max peak W");
                for (size_t i = 0; i < rows; ++i) {
                    const fault::SiteSummary &s =
                        res.summaries[order[i]];
                    std::printf(
                        "%-28s %6" PRIu64 " %6" PRIu64 " %6" PRIu64
                        " %6" PRIu64 " %7" PRIu64 " %12g\n",
                        res.siteNames[order[i]].c_str(), s.masked,
                        s.sdc, s.crash, s.hang, s.escapes,
                        double(s.maxPeakPowerW));
                }
            }
        }

        if (!cli.jsonPath.empty()) {
            std::ofstream out(cli.jsonPath);
            if (!out)
                throw std::runtime_error("cannot write " +
                                         cli.jsonPath);
            out << toFaultJson(res, copts, prog.name,
                               !cli.noTimings);
        }
        if (!cli.csvPath.empty()) {
            std::ofstream out(cli.csvPath);
            if (!out)
                throw std::runtime_error("cannot write " +
                                         cli.csvPath);
            out << toFaultCsv(res);
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ulfault: %s\n", e.what());
        return 1;
    }
}

} // namespace cli
} // namespace ulpeak
