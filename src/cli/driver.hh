/**
 * @file
 * The `ulpeak` command-line driver: batch peak-power/energy analysis
 * of application suites from the shell, built on peak::analyzeBatch.
 *
 * Programs are resolved from three spellings, freely mixed:
 *  - `all` -- every program of the bench430 registry
 *    (bench430::allBenchmarkNames());
 *  - a registry name (`mult`, `FFT`, ...), comma-separated lists
 *    allowed;
 *  - a path to an MSP430 assembly file (anything containing a '/' or
 *    ending in .s/.asm), assembled with isa::assemble.
 *
 * With --scenario the suite is swept across deployment scenarios
 * (preset names or scenario .json files; src/scenario): every
 * program is analyzed once per scenario and the reports carry the
 * matrix plus per-scenario suite maxima and tightening ratios.
 *
 * Output: a human-readable table on stdout plus machine-readable
 * JSON (--json) and CSV (--csv) suite reports. The JSON carries
 * per-(program, scenario) requirements, suite aggregates (the
 * supply-sizing maxima) and the sizing::sizeSuiteSupply component
 * table. Timing and
 * cache-provenance fields are isolated so that reports from runs with
 * different worker counts or cache states are comparable: serializing
 * with @p include_timings = false must produce byte-identical JSON
 * for any (jobs, numThreads, cache) combination
 * (tests/test_batch.cc pins this).
 *
 * Usage summary: see usage(), or run `ulpeak --help`.
 */

#ifndef ULPEAK_CLI_DRIVER_HH
#define ULPEAK_CLI_DRIVER_HH

#include <string>
#include <vector>

#include "peak/batch.hh"
#include "peak/modes.hh"

namespace ulpeak {
namespace cli {

/** Parsed command line of the `ulpeak` tool. */
struct CliOptions {
    std::vector<std::string> programSpecs; ///< names / "all" / paths
    unsigned jobs = 1;          ///< program-level workers (--jobs)
    unsigned threads = 1;       ///< per-analysis workers (--threads)
    double freqHz = 100e6;      ///< operating frequency (--freq)
    EvalMode evalMode = EvalMode::EventDriven; ///< --eval-mode
    unsigned loopBound = 0;     ///< --loop-bound
    uint64_t maxTotalCycles = 3000000; ///< --max-cycles
    /** --static-prune: skip gates lint::analyzeConstants proves
     *  constant under each scenario (peak::Options::staticPrune).
     *  Never changes a reported number (fuzz property 9), so like
     *  --eval-mode it is excluded from the result cache key. */
    bool staticPrune = false;
    /** --packed-explore: drain the exploration frontier through the
     *  bit-parallel 64-lane kernel (peak::Options::packedExplore).
     *  Never changes a reported number (fuzz --mode packed-sym), so
     *  like --eval-mode it is excluded from the result cache key. */
    bool packedExplore = false;
    std::string jsonPath;       ///< --json FILE ("" = no JSON output)
    std::string csvPath;        ///< --csv FILE ("" = no CSV output)
    /** --envelope[=json|csv]: record per-cycle peak power envelopes
     *  and windowed peak-energy curves. json embeds them in the
     *  --json report (plus a table summary); csv additionally
     *  streams per-cycle rows to stdout (cli::toEnvelopeCsv). */
    bool envelope = false;
    std::string envelopeFormat = "json"; ///< json | csv
    /** --modes[=table|json|csv]: per-operating-mode report of
     *  mode-scheduled scenarios (peak::buildModeReport): per-mode
     *  envelope slices, schedule transitions with settling-window
     *  peaks, assertion verdicts and sizing findings. Implies
     *  envelope recording. table appends sections to the stdout
     *  table; json/csv print a standalone report to stdout
     *  (toModesJson / toModesCsv). Assertion failures are findings,
     *  never a nonzero exit. */
    bool modes = false;
    std::string modesFormat = "table"; ///< table | json | csv
    /** --no-timings: omit wall-time / cache-provenance fields from
     *  the --json report (toJson's include_timings = false), so
     *  reports from different --jobs/--threads/cache runs are
     *  byte-identical. */
    bool noTimings = false;
    /** --windows: window lengths [cycles] of the peak-energy curves. */
    std::vector<unsigned> windows;
    /** --scenario SPEC[,SPEC...]: deployment scenarios to sweep the
     *  suite across. Each spec is a preset name
     *  (scenario::Scenario::presetNames()) or a path to a scenario
     *  JSON file (anything containing '/' or ending in .json).
     *  Empty = unconstrained only. */
    std::vector<std::string> scenarioSpecs;
    std::string cacheDir = ".ulpeak-cache"; ///< --cache-dir
    bool noCache = false;       ///< --no-cache
    bool failFast = false;      ///< --fail-fast
    bool quiet = false;         ///< --quiet: suppress the table
    bool help = false;          ///< --help
};

/** The --help text. */
std::string usage();

/** Parse @p argv into @p out; on bad usage returns false and sets
 *  @p err (no exit/abort so tests can drive it). */
bool parseArgs(int argc, const char *const *argv, CliOptions &out,
               std::string &err);

/** Resolve program specs into assembled suite entries; throws
 *  std::runtime_error on unknown names, unreadable files or assembly
 *  errors (message names the offending spec). */
std::vector<peak::BatchProgram>
resolvePrograms(const std::vector<std::string> &specs);

/** Map a parsed command line onto batch-analysis options; resolves
 *  --scenario specs (throws std::runtime_error on unknown presets or
 *  unreadable/malformed scenario files, naming the offending spec). */
peak::BatchOptions toBatchOptions(const CliOptions &cli);

/** Serialize a suite report as JSON. With @p include_timings = false
 *  all wall-time and cache-provenance fields are omitted, making the
 *  output deterministic across worker counts and cache states. */
std::string toJson(const peak::BatchReport &rep,
                   const peak::BatchOptions &opts,
                   bool include_timings = true);

/** One-row-per-program CSV (header included). */
std::string toCsv(const peak::BatchReport &rep);

/** Per-cycle envelope rows: program name (or "__suite__" for a
 *  composed per-scenario suite envelope), scenario, cycle, envelope
 *  power, and one windowed peak-energy column per window.
 *  Deterministic: byte-identical across --jobs / --threads / cache
 *  states. */
std::string toEnvelopeCsv(const peak::BatchReport &rep);

/** Per-(program, scenario) operating-mode reports
 *  (peak::buildModeReport over each row's envelope), parallel to
 *  rep.programs; rows without a mode schedule or envelope get a
 *  non-present report. @p scens must be the scenario list the batch
 *  ran (BatchOptions::scenarios, or the single analysis scenario);
 *  @p lib_vdd the analysis library's nominal rail. */
std::vector<peak::ModeReport>
buildModeReports(const peak::BatchReport &rep,
                 const std::vector<scenario::Scenario> &scens,
                 double lib_vdd);

/** Standalone JSON document of the --modes report. Deterministic:
 *  carries no timing or cache-provenance fields, so it is
 *  byte-identical across --jobs / --threads / kernels / snapshot
 *  modes / cache states. */
std::string toModesJson(const peak::BatchReport &rep,
                        const std::vector<peak::ModeReport> &reports);

/** CSV form of the --modes report: one row per mode slice,
 *  transition, assertion verdict and finding (kind column).
 *  Deterministic like toModesJson. */
std::string toModesCsv(const peak::BatchReport &rep,
                       const std::vector<peak::ModeReport> &reports);

/** The complete driver behind tools/ulpeak_main.cc: parse, resolve,
 *  analyze, emit. Returns the process exit code (0 = whole suite
 *  analyzed successfully, 1 = any failure, 2 = usage error). */
int runCli(int argc, const char *const *argv);

} // namespace cli
} // namespace ulpeak

#endif // ULPEAK_CLI_DRIVER_HH
