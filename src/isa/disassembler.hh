/**
 * @file
 * Disassembler used by the COI (cycle-of-interest) reports of
 * Section 3.5: the peak analysis prints the instructions occupying the
 * pipeline at a power peak.
 */

#ifndef ULPEAK_ISA_DISASSEMBLER_HH
#define ULPEAK_ISA_DISASSEMBLER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "isa/encoding.hh"

namespace ulpeak {
namespace isa {

/** Word-fetch callback: returns the ROM word at an address. */
using FetchFn = std::function<uint16_t(uint32_t)>;

/**
 * Disassemble the instruction at @p addr. Jump targets are rendered as
 * absolute addresses. Returns e.g. "mov @r4+, r5" or "jne 0xf83a".
 */
std::string disassemble(uint32_t addr, const FetchFn &fetch);

/** Decode the full instruction at @p addr (fetching ext words). */
Decoded decodeAt(uint32_t addr, const FetchFn &fetch);

} // namespace isa
} // namespace ulpeak

#endif // ULPEAK_ISA_DISASSEMBLER_HH
