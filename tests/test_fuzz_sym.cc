/**
 * @file
 * Symbolic-engine differential fuzzing: on random generated programs
 * (with X port inputs forcing execution-tree forks), peak::analyze
 * must report bit-identical results for 1 vs K worker threads and for
 * the two simulation kernels. These are the scheduling-independence
 * guarantees every consumer (batch driver, cache keys, CLI reports)
 * builds on, extended from two hand-picked programs to generated
 * scenarios.
 */

#include <gtest/gtest.h>

#include "fuzz/program_gen.hh"
#include "fuzz/properties.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

isa::Image
imageForSeed(uint64_t seed, unsigned instructions)
{
    fuzz::Rng rng(fuzz::Rng::deriveStream(21, seed));
    fuzz::ProgramGenOptions gen;
    gen.instructions = instructions;
    fuzz::GeneratedProgram p = fuzz::generateProgram(rng, gen);
    return isa::assemble(p.source);
}

class SymFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SymFuzz, OneVsFourThreadsBitIdentical)
{
    isa::Image img = imageForSeed(GetParam(), 10);
    fuzz::PropertyResult r =
        fuzz::symDeterminismCheck(test::sharedSystem(), img, 4);
    EXPECT_TRUE(r.ok) << r.detail;
}

TEST_P(SymFuzz, EvalModesBitIdenticalEndToEnd)
{
    isa::Image img = imageForSeed(GetParam(), 10);
    fuzz::PropertyResult r =
        fuzz::evalModeReportCheck(test::sharedSystem(), img);
    EXPECT_TRUE(r.ok) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymFuzz, ::testing::Range(uint64_t(0), uint64_t(3)));

TEST(SymFuzzLong, ManyProgramsManyThreadCounts)
{
    for (uint64_t seed = 100; seed < 110; ++seed) {
        isa::Image img = imageForSeed(seed, 14);
        for (unsigned threads : {2u, 4u, 8u}) {
            fuzz::PropertyResult r = fuzz::symDeterminismCheck(
                test::sharedSystem(), img, threads);
            EXPECT_TRUE(r.ok)
                << "seed " << seed << " threads " << threads << ": "
                << r.detail;
        }
        fuzz::PropertyResult m =
            fuzz::evalModeReportCheck(test::sharedSystem(), img);
        EXPECT_TRUE(m.ok) << "seed " << seed << ": " << m.detail;
    }
}

} // namespace
} // namespace ulpeak
