/**
 * @file
 * Sizing an energy-harvesting sensor node (Chapter 1, Figure 1.3):
 * turn an application's guaranteed peak power/energy requirements
 * into harvester area and battery volume for Type 1/2/3 systems, and
 * show what the tighter X-based bound saves over a guardbanded
 * profiling-based design.
 *
 *   $ ./examples/system_sizing [benchmark-name]
 */

#include <cstdio>

#include "bench430/benchmarks.hh"
#include "peak/peak_analysis.hh"
#include "sizing/sizing.hh"

using namespace ulpeak;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "PI";
    msp::System sys(CellLibrary::tsmc65Like());
    const bench430::Benchmark &b = bench430::benchmarkByName(name);
    isa::Image img = b.assembleImage();
    double freq = 100e6;

    // Requirements: guaranteed (X-based) vs guardbanded profiling.
    peak::Options opts;
    peak::Report x = peak::analyze(sys, img, opts);
    auto prof = baseline::profile(sys, img, b.makeInputs(8, 1), freq);
    if (!x.ok) {
        std::printf("analysis failed: %s\n", x.error.c_str());
        return 1;
    }

    std::printf("application %s at %.0f MHz:\n", name.c_str(),
                freq / 1e6);
    std::printf("  X-based : peak %.3f mW, NPE %.2f pJ/cycle\n",
                x.peakPowerW * 1e3, x.npeJPerCycle * 1e12);
    std::printf("  GB-input: peak %.3f mW, NPE %.2f pJ/cycle\n\n",
                prof.gbPeakPowerW * 1e3, prof.gbNpeJPerCycle * 1e12);

    // Type 1: harvester sized by peak power (duty-cycled 1%).
    std::printf("Type 1 (direct harvesting), harvester sized by peak "
                "power:\n");
    for (const auto &h : sizing::harvesterTypes()) {
        std::printf("  %-24s X-based %8.3f cm^2 | GB-input %8.3f "
                    "cm^2\n",
                    h.name.c_str(),
                    sizing::harvesterAreaCm2(x.peakPowerW, h),
                    sizing::harvesterAreaCm2(prof.gbPeakPowerW, h));
    }

    // Type 3: battery sized for one year of 1%-duty operation.
    double dutyCycle = 0.01;
    double seconds = 365.0 * 24 * 3600;
    double avgPowerX = x.npeJPerCycle * freq;
    double avgPowerGb = prof.gbNpeJPerCycle * freq;
    double energyX = avgPowerX * dutyCycle * seconds;
    double energyGb = avgPowerGb * dutyCycle * seconds;
    std::printf("\nType 3 (battery), 1 year at 1%% duty cycle "
                "(%.0f J vs %.0f J):\n",
                energyX, energyGb);
    for (const auto &bt : sizing::batteryTypes()) {
        std::printf("  %-12s X-based %7.2f mL / %6.1f g | GB-input "
                    "%7.2f mL / %6.1f g\n",
                    bt.name.c_str(),
                    sizing::batteryVolumeL(energyX, bt) * 1e3,
                    sizing::batteryMassG(energyX, bt),
                    sizing::batteryVolumeL(energyGb, bt) * 1e3,
                    sizing::batteryMassG(energyGb, bt));
    }

    std::printf("\nsavings from the guaranteed bound: %.1f%% harvester "
                "area, %.1f%% battery volume\n",
                sizing::harvesterAreaReductionPct(prof.gbPeakPowerW,
                                                  x.peakPowerW, 1.0),
                sizing::batteryVolumeReductionPct(prof.gbNpeJPerCycle,
                                                  x.npeJPerCycle, 1.0));
    return 0;
}
