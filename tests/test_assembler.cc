/**
 * @file
 * Assembler tests: syntax, directives, labels, emulated mnemonics,
 * relaxation (constant-generator sizing) and error reporting.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/disassembler.hh"

namespace ulpeak {
namespace isa {
namespace {

uint16_t
wordAt(const Image &img, uint32_t addr)
{
    for (auto &[a, w] : img.flatten())
        if (a == addr)
            return w;
    ADD_FAILURE() << "no word at " << std::hex << addr;
    return 0;
}

TEST(Assembler, MinimalProgram)
{
    Image img = assemble(R"(
        .org 0xf800
start:
        mov #0x5a80, &0x0120   ; hold watchdog
        mov #1, r5
        mov r5, &0x01f0        ; DONE
        .org 0xfffe
        .word start
    )");
    EXPECT_EQ(img.symbol("start"), 0xf800u);
    EXPECT_EQ(wordAt(img, 0xfffe), 0xf800);
    // First instruction: mov #imm, &abs -> 3 words.
    Decoded d = decode(wordAt(img, 0xf800), wordAt(img, 0xf802),
                       wordAt(img, 0xf804));
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.instr.op, Op::Mov);
    EXPECT_EQ(d.instr.src.mode, Mode::Immediate);
    EXPECT_EQ(d.instr.src.imm, 0x5a80);
    EXPECT_EQ(d.instr.dst.mode, Mode::Absolute);
    EXPECT_EQ(d.instr.dst.imm, 0x0120);
}

TEST(Assembler, JumpTargets)
{
    Image img = assemble(R"(
        .org 0xf800
loop:
        dec r5
        jnz loop
        jmp done
        .word 0xdead
done:
        mov #1, &0x01f0
    )");
    // dec r5 = sub #1, r5 (CG) -> 1 word at f800; jnz at f802.
    Decoded d = decode(wordAt(img, 0xf802), 0, 0);
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.instr.op, Op::Jne);
    // target f800 = f802 + 2 + 2*off -> off = -2.
    EXPECT_EQ(d.instr.jumpOffsetWords, -2);
    d = decode(wordAt(img, 0xf804), 0, 0);
    EXPECT_EQ(d.instr.op, Op::Jmp);
    EXPECT_EQ(d.instr.jumpOffsetWords, 1); // skip the .word
}

TEST(Assembler, EquAndExpressions)
{
    Image img = assemble(R"(
        .equ WDTCTL, 0x0120
        .equ WDTPW_HOLD, 0x5a80
        .org 0xf800
        mov #WDTPW_HOLD, &WDTCTL
        mov #WDTCTL+2, r4
        .word WDTCTL-0x20, 3+4
    )");
    EXPECT_EQ(wordAt(img, 0xf802), 0x5a80);
    EXPECT_EQ(wordAt(img, 0xf804), 0x0120);
    Decoded d = decode(wordAt(img, 0xf806), wordAt(img, 0xf808), 0);
    EXPECT_EQ(d.instr.src.imm, 0x0122);
    EXPECT_EQ(wordAt(img, 0xf80a), 0x0100);
    EXPECT_EQ(wordAt(img, 0xf80c), 7);
}

TEST(Assembler, EmulatedMnemonics)
{
    Image img = assemble(R"(
        .org 0xf800
        nop
        pop r7
        ret
        clr r4
        inc r4
        tst r4
        rla r4
    )");
    // nop = mov r3, r3
    Decoded d = decode(wordAt(img, 0xf800), 0, 0);
    EXPECT_EQ(d.instr.op, Op::Mov);
    EXPECT_EQ(d.instr.src.mode, Mode::Const);
    EXPECT_EQ(d.instr.src.imm, 0);
    EXPECT_EQ(d.instr.dst.reg, 3);
    // pop r7 = mov @sp+, r7
    d = decode(wordAt(img, 0xf802), 0, 0);
    EXPECT_EQ(d.instr.op, Op::Mov);
    EXPECT_EQ(d.instr.src.mode, Mode::IndirectInc);
    EXPECT_EQ(d.instr.src.reg, kSp);
    EXPECT_EQ(d.instr.dst.reg, 7);
    // ret = mov @sp+, pc
    d = decode(wordAt(img, 0xf804), 0, 0);
    EXPECT_EQ(d.instr.dst.reg, kPc);
    // rla r4 = add r4, r4
    d = decode(wordAt(img, 0xf80c), 0, 0);
    EXPECT_EQ(d.instr.op, Op::Add);
    EXPECT_EQ(d.instr.src.reg, 4);
    EXPECT_EQ(d.instr.dst.reg, 4);
}

TEST(Assembler, AddressingModeSyntax)
{
    Image img = assemble(R"(
        .org 0xf800
        mov @r4, r5
        mov @r4+, r5
        mov 6(r4), r5
        mov r5, 8(r4)
        add -2(r4), r6
    )");
    Decoded d = decode(wordAt(img, 0xf800), 0, 0);
    EXPECT_EQ(d.instr.src.mode, Mode::Indirect);
    d = decode(wordAt(img, 0xf802), 0, 0);
    EXPECT_EQ(d.instr.src.mode, Mode::IndirectInc);
    d = decode(wordAt(img, 0xf804), wordAt(img, 0xf806), 0);
    EXPECT_EQ(d.instr.src.mode, Mode::Indexed);
    EXPECT_EQ(d.instr.src.imm, 6);
    d = decode(wordAt(img, 0xf808), wordAt(img, 0xf80a), 0);
    EXPECT_EQ(d.instr.dst.mode, Mode::Indexed);
    EXPECT_EQ(d.instr.dst.imm, 8);
    d = decode(wordAt(img, 0xf80c), wordAt(img, 0xf80e), 0);
    EXPECT_EQ(int16_t(d.instr.src.imm), -2);
}

TEST(Assembler, ForwardEquRelaxes)
{
    // TWO is defined after use and is CG-expressible; relaxation must
    // converge to the 1-word encoding.
    Image img = assemble(R"(
        .org 0xf800
        add #TWO, r4
        jmp target
target:
        .equ TWO, 2
    )");
    Decoded d = decode(wordAt(img, 0xf800), 0, 0);
    EXPECT_EQ(d.instr.src.mode, Mode::Const);
    EXPECT_EQ(d.instr.src.imm, 2);
    // jmp lands at f802; target is f804.
    d = decode(wordAt(img, 0xf802), 0, 0);
    EXPECT_EQ(d.instr.jumpOffsetWords, 0);
    EXPECT_EQ(img.symbol("target"), 0xf804u);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble(".org 0xf800\n bogus r1, r2\n"), AsmError);
    EXPECT_THROW(assemble(".org 0xf800\n mov r1\n"), AsmError);
    EXPECT_THROW(assemble(".org 0xf800\n jmp nowhere\n"), AsmError);
    EXPECT_THROW(assemble(".orgn 0xf800\n"), AsmError);
    try {
        assemble(".org 0xf800\n\n mov r1\n");
        FAIL();
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line, 3u);
    }
}

TEST(Assembler, DisassemblerRoundTrip)
{
    Image img = assemble(R"(
        .org 0xf800
        mov &0x013a, r15
        pop r2
        add #2, r1
        jne 0xf800
    )");
    auto flat = img.flatten();
    auto fetch = [&](uint32_t a) -> uint16_t {
        for (auto &[addr, w] : flat)
            if (addr == a)
                return w;
        return 0xffff;
    };
    EXPECT_EQ(disassemble(0xf800, fetch), "mov &0x13a, r15");
    EXPECT_EQ(disassemble(0xf804, fetch), "mov @r1+, r2");
    EXPECT_EQ(disassemble(0xf806, fetch), "add #2, r1");
    EXPECT_EQ(disassemble(0xf808, fetch), "jne 0xf800");
}

} // namespace
} // namespace isa
} // namespace ulpeak
