#include "sym/symbolic_engine.hh"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "isa/disassembler.hh"
#include "isa/encoding.hh"

namespace ulpeak {
namespace sym {

namespace {

constexpr uint32_t kNoForcedPc = UINT32_MAX;

/** Structural identity of a netlist (kinds + CSR fanins): snapshots
 * transfer between Systems only when this matches. */
uint64_t
netlistStructureHash(const Netlist &nl)
{
    const FlatNetlist &f = nl.flat();
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t x) {
        h ^= x;
        h *= 0x100000001b3ull;
    };
    for (CellKind k : f.kind)
        mix(uint64_t(k));
    for (GateId g : f.fanin)
        mix(g);
    return h;
}

/** One un-processed execution path (Algorithm 1's stack U entry).
 * Snapshots are shared between sibling entries (immutable). */
struct Pending {
    std::shared_ptr<const Simulator::Snapshot> simSnap;
    std::shared_ptr<const msp::System::Snapshot> sysSnap;
    uint32_t node;
    uint64_t nodeKey;      ///< dedup key that created the node (0: root)
    uint32_t forcedPc;     ///< PC constraint applied on the next step
    uint32_t lastKnownPc;  ///< last concrete PC value on this path
    uint32_t curInstrAddr; ///< instruction in execute/mem (COI)
    uint64_t pathCycles;
};

/** State shared by all exploration workers, guarded by @c mu except
 * for the lock-free fast-path flags. */
struct SharedState {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Pending> stack; ///< LIFO work stack (Algorithm 1's U)
    std::unordered_map<uint64_t, uint32_t> visited;
    ExecTree *tree = nullptr;
    uint32_t pathsExplored = 0;
    uint32_t dedupMerges = 0;
    unsigned working = 0; ///< workers currently simulating a path
    std::string error;

    std::atomic<uint64_t> totalCycles{0};
    std::atomic<bool> failed{false};

    /** Record a failure; caller must already hold @c mu. */
    void
    failLocked(const std::string &msg)
    {
        if (!failed.exchange(true))
            error = msg;
        cv.notify_all();
    }

    void
    fail(const std::string &msg)
    {
        std::lock_guard<std::mutex> lock(mu);
        failLocked(msg);
    }
};

/**
 * One exploration worker: a simulator (plus, for workers beyond the
 * first, a private System clone) that pops pending paths, simulates
 * them to the next fork or leaf, and commits traces to the shared
 * tree. Peak candidates and activity sets are tracked locally and
 * merged after the pool drains.
 */
class Worker {
  public:
    Worker(msp::System &base, const SymbolicConfig &cfg,
           const isa::Image &image, bool owns_clone)
        : cfg_(cfg)
    {
        if (owns_clone) {
            owned_ = std::make_unique<msp::System>(
                base.netlist().library());
            sys_ = owned_.get();
            if (netlistStructureHash(sys_->netlist()) !=
                netlistStructureHash(base.netlist()))
                throw std::logic_error(
                    "nondeterministic netlist elaboration: worker "
                    "clone differs structurally from the base "
                    "system");
        } else {
            sys_ = &base;
        }
        sys_->memory().reset();
        sys_->loadImage(image);
        sys_->clearHalted();
        sim_ = std::make_unique<Simulator>(sys_->netlist(),
                                           cfg.evalMode);
        sys_->attach(*sim_);
        ctx_ = std::make_unique<power::PowerContext>(sys_->netlist(),
                                                     cfg_.freqHz);
        if (cfg_.recordActiveSets)
            everActive_.assign(sys_->netlist().numGates(), 0);
    }

    msp::System &sys() { return *sys_; }
    Simulator &sim() { return *sim_; }

    /** Pop-simulate-commit until the stack drains or a worker fails. */
    void
    explore(SharedState &sh)
    {
        std::unique_lock<std::mutex> lock(sh.mu);
        while (true) {
            if (sh.failed.load())
                break;
            if (!sh.stack.empty()) {
                Pending p = std::move(sh.stack.back());
                sh.stack.pop_back();
                ++sh.pathsExplored;
                ++sh.working;
                lock.unlock();
                // Exceptions must not escape a worker thread (that
                // would terminate the process); convert them into the
                // engine's normal failure reporting.
                try {
                    runPath(sh, std::move(p));
                } catch (const std::exception &e) {
                    sh.fail(std::string("worker exception: ") +
                            e.what());
                }
                lock.lock();
                --sh.working;
                if (sh.stack.empty() && sh.working == 0)
                    sh.cv.notify_all();
            } else if (sh.working == 0) {
                break;
            } else {
                sh.cv.wait(lock);
            }
        }
        sh.cv.notify_all();
    }

    /// @name Locally-merged results
    /// @{
    double peakPowerW = 0.0;
    uint32_t peakNode = 0;
    uint32_t peakCycleInNode = 0;
    /** Canonical identity of the peak candidate for tie-breaking:
     * (node dedup key, cycle index). Node keys are
     * partition-independent, unlike node ids, so exact power ties
     * resolve to the same logical cycle under any scheduling. */
    uint64_t peakNodeKey = 0;
    std::vector<uint32_t> peakActive;
    std::vector<uint8_t> everActive_;

    /** Strict-weak "better candidate" order used both within a worker
     * and for the final cross-worker merge. */
    bool
    betterCandidate(double w, uint64_t node_key, uint32_t cycle) const
    {
        if (w != peakPowerW)
            return w > peakPowerW;
        if (peakPowerW == 0.0)
            return false; // no candidate yet is only beaten by w > 0
        if (node_key != peakNodeKey)
            return node_key < peakNodeKey;
        return cycle < peakCycleInNode;
    }
    /// @}

  private:
    // Dedup keys are full-simulator-state + memory + fork-target
    // hashes (built inline at the fork): hashing the complete state,
    // not just the architectural state, guarantees that when two
    // racing paths map to one key their continuations are identical
    // -- so the merged node's trace, and every number derived from
    // it, is independent of which path claimed the key.
    void
    runPath(SharedState &sh, Pending p)
    {
        msp::System &sys = *sys_;
        Simulator &sim = *sim_;
        const msp::CpuHandles &h = sys.handles();
        power::PowerContext &ctx = *ctx_;

        sim.restore(*p.simSnap);
        sys.restore(*p.sysSnap);

        uint32_t nodeId = p.node;
        uint64_t nodeKey = p.nodeKey;
        uint32_t forcedPc = p.forcedPc;
        uint32_t lastPc = p.lastKnownPc;
        uint32_t curInstr = p.curInstrAddr;
        uint64_t pathCycles = p.pathCycles;

        // Per-cycle data is buffered locally and committed to the
        // shared tree at the fork/leaf boundary.
        std::vector<float> powerW;
        std::vector<std::vector<float>> modulePowerW;
        std::vector<CycleInfo> cycleInfo;

        auto commitNode = [&](bool ends_halted) {
            std::lock_guard<std::mutex> lock(sh.mu);
            TreeNode &node = sh.tree->node(nodeId);
            node.powerW = std::move(powerW);
            node.modulePowerW = std::move(modulePowerW);
            node.cycleInfo = std::move(cycleInfo);
            node.endsHalted = ends_halted;
        };

        while (true) {
            if (sh.failed.load())
                return;
            if (sh.totalCycles.load(std::memory_order_relaxed) >=
                cfg_.maxTotalCycles) {
                sh.fail("symbolic cycle budget exhausted");
                return;
            }
            if (pathCycles >= cfg_.maxPathCycles) {
                sh.fail("path exceeded maxPathCycles (missing "
                        "halt or unbounded loop?)");
                return;
            }

            uint32_t applyPc = forcedPc;
            forcedPc = kNoForcedPc;
            sim.step([&](Simulator &s) {
                sys.driveCycle(s, Word16::allX());
                if (applyPc != kNoForcedPc) {
                    // Algorithm 1's update_PC_next: constrain only the
                    // PC flops, right after the edge, before fetch
                    // logic evaluates.
                    s.forceBus(h.pc, Word16::known(uint16_t(applyPc)));
                }
            });
            sh.totalCycles.fetch_add(1, std::memory_order_relaxed);
            ++pathCycles;

            Word16 pcNow = sys.readPc(sim);
            if (pcNow.isFullyKnown()) {
                lastPc = pcNow.value;
            } else {
                sh.fail("PC became X without fork interception");
                return;
            }
            int fsm = sys.fsmState(sim);
            if (fsm == msp::kStFetch)
                curInstr = lastPc; // the word under fetch

            // ---- Per-cycle Algorithm 2 assignment ----
            double w = ctx.cycleBoundPowerW(sim);
            powerW.push_back(float(w));
            if (cfg_.recordModuleTrace) {
                std::vector<double> mod = ctx.cycleModulePowerW(sim);
                modulePowerW.emplace_back(mod.begin(), mod.end());
                CycleInfo info;
                info.instrPc = curInstr;
                info.fsmState = uint8_t(fsm < 0 ? 255 : fsm);
                cycleInfo.push_back(info);
            }
            if (cfg_.recordActiveSets) {
                for (GateId g : sim.activeGates())
                    everActive_[g] = 1;
            }
            uint32_t cyc = uint32_t(powerW.size() - 1);
            if (betterCandidate(w, nodeKey, cyc)) {
                peakPowerW = w;
                peakNode = nodeId;
                peakCycleInNode = cyc;
                peakNodeKey = nodeKey;
                if (cfg_.recordActiveSets)
                    peakActive.assign(sim.activeGates().begin(),
                                      sim.activeGates().end());
            }

            if (sys.xStoreFault()) {
                sh.fail("store with unknown address or enable "
                        "(X-store); see DESIGN.md section 5");
                return;
            }

            if (sys.halted()) {
                commitNode(true); // leaf: end of this execution path
                return;
            }
            if (fsm == msp::kStHalt) {
                sh.fail("core trapped (invalid instruction) at "
                        "pc~0x" + std::to_string(lastPc));
                return;
            }

            // ---- Algorithm 1 line 17: will PC_next be X? ----
            bool pcNextX = false;
            for (GateId g : h.pc) {
                if (sim.predictSeqValue(g) == V4::X) {
                    pcNextX = true;
                    break;
                }
            }
            if (!pcNextX)
                continue;

            // Resolve feasible targets from the (concrete) IR.
            Word16 ir = sys.readIr(sim);
            if (!ir.isFullyKnown()) {
                sh.fail("X program counter with unknown IR");
                return;
            }
            isa::Decoded dec = isa::decode(ir.value, 0, 0);
            if (!dec.valid || !isa::isJump(dec.instr.op)) {
                sh.fail("unresolvable X program counter (op " +
                        std::string(isa::opName(dec.instr.op)) +
                        "): indirect jump through unknown data");
                return;
            }

            // At EXEC of a jump the PC holds the fall-through address.
            uint32_t fallThrough = lastPc;
            uint32_t taken =
                (lastPc +
                 uint32_t(int32_t(dec.instr.jumpOffsetWords) * 2)) &
                0xffff;
            uint32_t targets[2] = {taken, fallThrough};
            unsigned numTargets = taken == fallThrough ? 1 : 2;

            // Hash keys and capture the fork state before taking the
            // global lock: both read only worker-local state, and
            // they are the heavy part of a fork. The state is hashed
            // once (the target only enters via the final mix) and the
            // snapshots are shared by both child Pendings.
            uint64_t base = sim.hashFullState();
            sys.memory().hashInto(base);
            uint64_t keys[2];
            for (unsigned t = 0; t < numTargets; ++t)
                keys[t] = base ^ 0x9e3779b97f4a7c15ull *
                                     (uint64_t(targets[t]) + 1);
            auto simSnap =
                std::make_shared<const Simulator::Snapshot>(
                    sim.snapshot());
            auto sysSnap =
                std::make_shared<const msp::System::Snapshot>(
                    sys.snapshot());

            std::lock_guard<std::mutex> lock(sh.mu);
            TreeNode &forkNode = sh.tree->node(nodeId);
            forkNode.branchPc = (lastPc - 2) & 0xffff;
            forkNode.powerW = std::move(powerW);
            forkNode.modulePowerW = std::move(modulePowerW);
            forkNode.cycleInfo = std::move(cycleInfo);
            for (unsigned t = 0; t < numTargets; ++t) {
                uint64_t key = keys[t];
                auto it = sh.visited.find(key);
                if (it != sh.visited.end()) {
                    // Algorithm 1 line 19: already simulated; merge.
                    sh.tree->node(nodeId).edges.push_back(
                        TreeEdge{targets[t], it->second, true});
                    ++sh.dedupMerges;
                    continue;
                }
                if (sh.tree->numNodes() >= cfg_.maxNodes) {
                    sh.failLocked(
                        "execution tree node budget exhausted");
                    return;
                }
                uint32_t child = sh.tree->newNode(nodeId);
                sh.visited.emplace(key, child);
                sh.tree->node(nodeId).edges.push_back(
                    TreeEdge{targets[t], child, false});
                sh.stack.push_back(Pending{simSnap, sysSnap, child,
                                           keys[t], targets[t],
                                           lastPc, curInstr,
                                           pathCycles});
            }
            sh.cv.notify_all();
            return; // continuations live on the shared stack
        }
    }

    SymbolicConfig cfg_;
    std::unique_ptr<msp::System> owned_;
    msp::System *sys_ = nullptr;
    std::unique_ptr<Simulator> sim_;
    std::unique_ptr<power::PowerContext> ctx_;
};

} // namespace

SymbolicEngine::SymbolicEngine(msp::System &sys,
                               const SymbolicConfig &cfg)
    : sys_(&sys), cfg_(cfg)
{
}

SymbolicResult
SymbolicEngine::run(const isa::Image &image)
{
    SymbolicResult res;
    const Netlist &nl = sys_->netlist();

    unsigned numWorkers = cfg_.numThreads > 1 ? cfg_.numThreads : 1;

    // Algorithm 1 lines 2-5: everything X, load binary, reset. Worker
    // 0 wraps the caller's System; extra workers elaborate clones.
    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(numWorkers);
    try {
        for (unsigned i = 0; i < numWorkers; ++i)
            workers.push_back(std::make_unique<Worker>(
                *sys_, cfg_, image, /*owns_clone=*/i > 0));
    } catch (const std::exception &e) {
        res.ok = false;
        res.error = std::string("worker setup failed: ") + e.what();
        return res;
    }
    sys_->reset(workers[0]->sim());

    SharedState sh;
    sh.tree = &res.tree;

    uint32_t root = res.tree.newNode(kNoNode);
    sh.stack.push_back(
        Pending{std::make_shared<const Simulator::Snapshot>(
                    workers[0]->sim().snapshot()),
                std::make_shared<const msp::System::Snapshot>(
                    sys_->snapshot()),
                root, 0, kNoForcedPc, 0, 0, 0});

    if (numWorkers == 1) {
        workers[0]->explore(sh);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(numWorkers);
        for (auto &w : workers)
            pool.emplace_back([&sh, &w] { w->explore(sh); });
        for (auto &t : pool)
            t.join();
    }

    res.totalCycles = sh.totalCycles.load();
    res.pathsExplored = sh.pathsExplored;
    res.dedupMerges = sh.dedupMerges;

    if (sh.failed.load()) {
        res.ok = false;
        res.error = sh.error;
        return res;
    }

    // Deterministic merge: candidates are ordered by (power, then
    // canonical node key / cycle on exact ties), so the winning cycle
    // -- including its recorded active set -- is the same logical
    // cycle under any work partition or thread scheduling.
    if (cfg_.recordActiveSets)
        res.everActive.assign(nl.numGates(), 0);
    const Worker *best = nullptr;
    for (auto &w : workers) {
        if (w->peakPowerW > 0.0 &&
            (!best || best->betterCandidate(w->peakPowerW,
                                            w->peakNodeKey,
                                            w->peakCycleInNode)))
            best = w.get();
        if (cfg_.recordActiveSets)
            for (size_t g = 0; g < w->everActive_.size(); ++g)
                res.everActive[g] |= w->everActive_[g];
    }
    if (best) {
        res.peakPowerW = best->peakPowerW;
        res.peakNode = best->peakNode;
        res.peakCycleInNode = best->peakCycleInNode;
        res.peakActive = best->peakActive;
    }

    // ---- Section 3.3: peak energy over the tree ----
    power::PowerContext ctx(nl, cfg_.freqHz);
    try {
        PathEnergy pe = res.tree.maxPathEnergy(
            ctx.tclkS(), cfg_.inputDependentLoopBound);
        res.peakEnergyJ = pe.energyJ;
        res.maxPathCycles = pe.cycles;
        res.npeJPerCycle =
            pe.cycles ? pe.energyJ / double(pe.cycles) : 0.0;
        // ---- Per-cycle peak power envelope over the tree ----
        // Computed from the tree rather than max-merged inside the
        // workers: a dedup race can hang the same logical node under
        // either racing parent, and only the tree walk sees both
        // resulting offsets -- worker-local merges would be
        // scheduling-dependent exactly there.
        if (cfg_.recordEnvelope)
            res.envelopeW = res.tree.envelopePowerW(
                cfg_.inputDependentLoopBound);
    } catch (const std::exception &e) {
        res.ok = false;
        res.error = e.what();
        return res;
    }

    res.ok = true;
    return res;
}

} // namespace sym
} // namespace ulpeak
