/**
 * @file
 * SEU fault injection on the cosim bedrock: flip chosen flop / RAM
 * bits at chosen cycles of the gate-level model, run the faulted
 * execution in lockstep against the *unfaulted* golden ISS, and
 * classify the outcome from the structured cosim divergence:
 *
 *   masked -- the run still locksteps and halts cleanly: the upset
 *             was logically masked (or overwritten before use);
 *   SDC    -- silent data corruption: the run completed or kept
 *             retiring, but architectural state diverged (Pc /
 *             Register / MemWrite / FinalMemory / Cycles / Halt);
 *   crash  -- the core reached a detectably-broken state: an X-valued
 *             store or program counter (Divergence::Kind::GateX);
 *   hang   -- the core never halted within the cycle budget
 *             (Divergence::Kind::GateTimeout), e.g. a corrupted FSM
 *             one-hot that never reaches FETCH again.
 *
 * Injection semantics: "flip at cycle c" mutates the state in the
 * cycle driver of the step whose cycle() == c -- after the sequential
 * update, before the combinational sweep -- so the flip is what cycle
 * c's combinational logic observes, and what the next edge reloads if
 * the flop holds (Simulator::injectSeuFlip). Reset cycles
 * (0 .. msp::System::kResetCycles-1) are injectable like any other
 * cycle. Flips of X-valued bits are no-ops (`applied` stays false for
 * the run if no flip landed): the three-valued X already subsumes
 * both values.
 *
 * The packed runner evaluates 64 faulted runs per sweep on
 * PackedSimulator and is bit-identical, lane for lane, to 64 scalar
 * runFaulted calls in every classification field and every recorded
 * power float (the packed lane-identity invariant extended to faulted
 * runs; enforced by tests/test_fault.cc and `ulfuzz --mode fault`).
 */

#ifndef ULPEAK_FAULT_FAULT_HH
#define ULPEAK_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cosim/cosim.hh"
#include "peak/envelope.hh"
#include "sim/packed_simulator.hh"

namespace ulpeak {
namespace fault {

/** What kind of sequential state an injection site addresses. */
enum class SiteKind : uint8_t {
    Flop, ///< a sequential gate's stored output bit
    Ram,  ///< one bit of one word of the behavioral RAM macro
};

/** One injection site: a bit of the gate-level model's state. */
struct Site {
    SiteKind kind = SiteKind::Flop;
    GateId gate = 0;   ///< Flop: the sequential gate
    uint32_t addr = 0; ///< Ram: word address
    uint8_t bit = 0;   ///< Ram: bit index 0..15

    bool
    operator==(const Site &o) const
    {
        return kind == o.kind && gate == o.gate && addr == o.addr &&
               bit == o.bit;
    }
};

/** One fault: flip @ref site at gate cycle @ref cycle. */
struct Injection {
    Site site;
    uint64_t cycle = 0;
};

/** Outcome classes of one faulted run (see the file comment). */
enum class Outcome : uint8_t { Masked, Sdc, Crash, Hang };

const char *outcomeName(Outcome o);

/**
 * Map a cosim result onto an outcome class. ok -> Masked,
 * GateTimeout -> Hang, GateX -> Crash, every architectural divergence
 * -> Sdc. IssTrap also maps to Sdc for totality, but cannot occur in
 * a campaign: the golden (unfaulted) run is checked first, and the
 * ISS side of a faulted run executes the same unfaulted program.
 */
Outcome classify(const cosim::Result &r);

/** Options of one faulted run (scalar or packed). */
struct RunOptions {
    /** Cycle budget; runs not halting within it classify as Hang. */
    uint64_t maxCycles = 60000;
    uint16_t portIn = 0;
    /** Kernel of the scalar path (the packed path is oblivious). */
    EvalMode evalMode = EvalMode::EventDriven;
    /** Record the per-cycle bound power trace (may be null). */
    const power::PowerContext *powerCtx = nullptr;
    /** When set (with powerCtx), compare the faulted trace against
     *  this envelope; an escape is a reported finding. */
    const peak::Envelope *envelope = nullptr;
};

/** Classification of one faulted run. Every field except @ref report
 *  is bit-identical between the scalar and packed runners. */
struct FaultResult {
    Outcome outcome = Outcome::Masked;
    /** At least one flip changed a bit (X-bit and post-halt flips
     *  don't; a double flip of the same bit applies twice). */
    bool applied = false;
    cosim::Divergence::Kind kind = cosim::Divergence::Kind::None;
    uint64_t divergenceCycle = 0; ///< 0 when masked
    uint64_t instrIndex = 0;      ///< retired before the divergence
    uint32_t pc = 0;              ///< PC of the instruction at fault
    uint64_t gateCycles = 0;
    uint64_t instructionsRetired = 0;
    /// @name Power under fault (zero when RunOptions::powerCtx null)
    /// @{
    float peakPowerW = 0.0f;
    uint64_t peakCycle = 0;   ///< post-reset index of the peak
    uint64_t traceCycles = 0; ///< recorded trace length
    bool envelopeEscape = false;
    uint64_t escapeCycle = 0; ///< first violating cycle when escaped
    /// @}
    /** Full human-readable divergence report. Scalar runner only --
     *  the packed runner leaves it empty (use the scalar path /
     *  `ulfault --replay` to reproduce one lane with the report). */
    std::string report;

    /** Equality over every deterministic field (excludes report). */
    bool sameClassification(const FaultResult &o) const;
};

/**
 * Scalar reference runner: execute @p image with @p faults injected,
 * in lockstep against the golden ISS. The System's behavioral memory
 * is reloaded, so calls are independent.
 */
FaultResult runFaulted(msp::System &sys, const isa::Image &image,
                       const std::vector<Injection> &faults,
                       const RunOptions &opts);

/**
 * Packed runner: 64 faulted runs of @p image in one PackedSimulator
 * sweep, lane l injecting @p faults[l]. Bit-identical per lane to
 * runFaulted (reports excepted). Lanes with an empty fault list run
 * the golden execution (cheap tail filler for partial groups).
 */
std::array<FaultResult, PackedSimulator::kLanes>
runFaultedPacked(msp::System &sys, const isa::Image &image,
                 const std::array<std::vector<Injection>,
                                  PackedSimulator::kLanes> &faults,
                 const RunOptions &opts);

/** Fill the power/escape fields of @p r from a recorded trace (shared
 *  by the two runners; exposed for tests). */
void applyPowerTrace(FaultResult &r, const std::vector<float> &trace_w,
                     const peak::Envelope *envelope);

/** Every sequential gate of @p nl as a flop site, in
 *  Netlist::seqGates() order (the campaign's site index space). */
std::vector<Site> flopSites(const Netlist &nl);

/** Human-readable site label: the netlist gate name (or "g<id>") for
 *  flops, "ram[0x..].bit" for RAM bits. */
std::string siteName(const Netlist &nl, const Site &s);

} // namespace fault
} // namespace ulpeak

#endif // ULPEAK_FAULT_FAULT_HH
