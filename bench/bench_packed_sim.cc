/**
 * @file
 * Microbenchmark of the bit-parallel 64-pattern kernel: per-pattern
 * cycles/second of power::runConcretePacked (one PackedSimulator sweep
 * carrying 64 port schedules) against the scalar power::runConcrete
 * path run schedule-by-schedule, on the GA stressmark. Asserts that
 * the timed packed lanes are float-identical to the timed scalar runs
 * before trusting the numbers, prints the throughput row, and drops
 * machine-readable results in bench_out/BENCH_packed_sim.json (the
 * checked-in BENCH_packed_sim.json at the repository root is a copy).
 *
 * `bench_packed_sim --min-ratio R` additionally exits 1 if the
 * packed/scalar per-pattern throughput ratio falls below R; CI runs it
 * with `--min-ratio 8`.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/baselines.hh"
#include "bench/bench_util.hh"
#include "power/packed_run.hh"

namespace ulpeak {
namespace {

constexpr unsigned kLanes = PackedSimulator::kLanes;
constexpr uint64_t kMaxCycles = 3000;
constexpr unsigned kScalarLanes = 8; ///< scalar reference subset
constexpr unsigned kScheduleLen = 16;

struct Measurement {
    double sec = 0.0;
    uint64_t patternCycles = 0;
    double perPatternCyclesPerSec() const
    {
        return sec > 0 ? double(patternCycles) / sec : 0.0;
    }
};

} // namespace
} // namespace ulpeak

int
main(int argc, char **argv)
{
    using namespace ulpeak;

    double min_ratio = 0.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--min-ratio" && i + 1 < argc) {
            min_ratio = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: bench_packed_sim [--min-ratio R]\n");
            return 2;
        }
    }

    bench_util::printHeader(
        "packed sim: 64-lane batch vs scalar per-pattern cycles/sec");

    msp::System sys(CellLibrary::tsmc65Like());
    baseline::StressmarkConfig scfg;
    scfg.population = 8;
    scfg.generations = 3;
    scfg.evalCycles = 400;
    baseline::StressmarkResult sm =
        baseline::generateStressmark(sys, bench_util::kFreq65, scfg);
    isa::Image image = isa::assemble(sm.bestSource);
    power::PowerContext ctx(sys.netlist(), bench_util::kFreq65);

    fuzz::Rng rng(7);
    power::PackedRunOptions popts;
    popts.maxCycles = kMaxCycles;
    for (unsigned l = 0; l < kLanes; ++l) {
        popts.portSchedules[l].resize(kScheduleLen);
        for (uint16_t &w : popts.portSchedules[l])
            w = rng.word();
    }

    // Warmup both paths (page in the netlist, stabilize the clock).
    {
        power::ConcreteRunOptions copts;
        copts.maxCycles = 500;
        copts.portSchedule = popts.portSchedules[0];
        power::runConcrete(sys, image, ctx, copts);
        power::PackedRunOptions wopts = popts;
        wopts.maxCycles = 500;
        power::runConcretePacked(sys, image, ctx, wopts);
    }

    // Scalar reference: the first kScalarLanes schedules, one run
    // each. These results double as the lane-identity check below.
    Measurement scalar;
    std::vector<power::ConcreteRunResult> refs(kScalarLanes);
    {
        auto t0 = std::chrono::steady_clock::now();
        for (unsigned l = 0; l < kScalarLanes; ++l) {
            power::ConcreteRunOptions copts;
            copts.maxCycles = kMaxCycles;
            copts.portSchedule = popts.portSchedules[l];
            refs[l] = power::runConcrete(sys, image, ctx, copts);
            scalar.patternCycles += refs[l].traceW.size();
        }
        auto t1 = std::chrono::steady_clock::now();
        scalar.sec = std::chrono::duration<double>(t1 - t0).count();
    }

    // Packed batch: all 64 schedules in one sweep.
    Measurement packed;
    power::PackedRunResult pr;
    {
        auto t0 = std::chrono::steady_clock::now();
        pr = power::runConcretePacked(sys, image, ctx, popts);
        auto t1 = std::chrono::steady_clock::now();
        packed.sec = std::chrono::duration<double>(t1 - t0).count();
        for (unsigned l = 0; l < kLanes; ++l)
            packed.patternCycles += pr.lanes[l].traceW.size();
    }

    // Trust the timing only if the timed lanes are float-identical to
    // the timed scalar runs.
    for (unsigned l = 0; l < kScalarLanes; ++l) {
        if (refs[l].halted != pr.lanes[l].halted ||
            refs[l].traceW != pr.lanes[l].traceW ||
            refs[l].totalEnergyJ != pr.lanes[l].totalEnergyJ) {
            std::fprintf(stderr,
                         "FATAL: packed lane %u diverges from the "
                         "scalar run of the same schedule\n",
                         l);
            return 1;
        }
    }

    double ratio = scalar.perPatternCyclesPerSec() > 0
                       ? packed.perPatternCyclesPerSec() /
                             scalar.perPatternCyclesPerSec()
                       : 0.0;
    std::printf("%-16s %10s %16s %16s %9s\n", "workload", "lanes",
                "scalar pat-c/s", "packed pat-c/s", "ratio");
    std::printf("%-16s %7u/%2u %16.0f %16.0f %8.2fx\n", "stressmark",
                kScalarLanes, kLanes,
                scalar.perPatternCyclesPerSec(),
                packed.perPatternCyclesPerSec(), ratio);

    char json[2048];
    std::snprintf(
        json, sizeof(json),
        "{\n"
        "  \"bench\": \"packed_sim\",\n"
        "  \"workload\": {\n"
        "    \"description\": \"GA stressmark (population 8, "
        "generations 3, evalCycles 400) run concretely under %u-word "
        "random port schedules, max %llu cycles per pattern\",\n"
        "    \"scalar_reference_patterns\": %u,\n"
        "    \"packed_lanes\": %u\n"
        "  },\n"
        "  \"host_cpus\": %u,\n"
        "  \"methodology\": \"scalar = power::runConcrete once per "
        "schedule, sequentially; packed = one "
        "power::runConcretePacked sweep carrying all 64 schedules; "
        "per-pattern cycles/sec = sum of recorded per-lane trace "
        "cycles / wall seconds; the timed packed lanes are checked "
        "float-identical to the timed scalar runs before the ratio "
        "is reported\",\n"
        "  \"scalar\": {\"pattern_cycles\": %llu, \"wall_s\": %.4f, "
        "\"pattern_cycles_per_sec\": %.0f},\n"
        "  \"packed\": {\"pattern_cycles\": %llu, \"wall_s\": %.4f, "
        "\"pattern_cycles_per_sec\": %.0f},\n"
        "  \"per_pattern_throughput_ratio\": %.2f\n"
        "}\n",
        kScheduleLen, (unsigned long long)kMaxCycles, kScalarLanes,
        kLanes, std::thread::hardware_concurrency(),
        (unsigned long long)scalar.patternCycles, scalar.sec,
        scalar.perPatternCyclesPerSec(),
        (unsigned long long)packed.patternCycles, packed.sec,
        packed.perPatternCyclesPerSec(), ratio);

    std::ofstream out(bench_util::outDir() + "BENCH_packed_sim.json");
    out << json;
    std::printf("wrote %sBENCH_packed_sim.json\n",
                bench_util::outDir().c_str());

    if (min_ratio > 0.0 && ratio < min_ratio) {
        std::fprintf(stderr,
                     "FATAL: per-pattern throughput ratio %.2fx is "
                     "below the required %.2fx\n",
                     ratio, min_ratio);
        return 1;
    }
    return 0;
}
