/**
 * @file
 * Chapter 6 generality mechanisms and additional property sweeps:
 *
 *  - the interrupt-pin treatment (IRQ forced low during analysis; an
 *    X IRQ must not corrupt the program counter because the pending
 *    signal deliberately does not steer it);
 *  - multi-programmed requirement = union/max over applications;
 *  - a parameterized ALU sweep cross-checking the gate-level core
 *    against the ISS per opcode over many operand pairs;
 *  - DOT export for netlist inspection.
 */


#include <functional>

#include <gtest/gtest.h>

#include "fuzz/rng.hh"
#include "peak/peak_analysis.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

TEST(Generality, XInterruptPinDoesNotDisturbExecution)
{
    // Chapter 6: "the effect of an asynchronous interrupt can be
    // characterized by forcing the interrupt pin to always read an X
    // ... we can force the PC update logic to ignore the interrupt
    // handling logic's output." In this core the masked irq_pending
    // net is observable but never steers the PC, so an X IRQ changes
    // nothing architecturally.
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(test::wrapProgram(R"(
        mov #11, r4
        add #31, r4
    )"));
    sys.memory().reset();
    sys.loadImage(img);
    sys.clearHalted();
    Simulator sim(sys.netlist());
    sys.attach(sim);
    sys.reset(sim);
    GateId pending = sys.netlist().findGate("irq_pending");
    ASSERT_NE(pending, kNoGate);
    bool sawPendingX = false;
    while (!sys.halted() && sim.cycle() < 2000) {
        sim.step([&](Simulator &s) {
            sys.driveCycle(s, Word16::known(0));
            s.setInput(sys.handles().irq, V4::X); // X interrupt pin
        });
        sawPendingX |= sim.value(pending) == V4::X;
        Word16 pc = sys.readPc(sim);
        ASSERT_TRUE(pc.isFullyKnown()) << "X irq must not reach PC";
    }
    ASSERT_TRUE(sys.halted());
    EXPECT_EQ(sys.readReg(sim, 4).value, 42);
    // GIE is clear, so the masked request stays 0 or X-free of
    // consequence; the observability hook itself exists.
    (void)sawPendingX;
}

TEST(Generality, MultiProgrammedRequirementIsMaxOverApps)
{
    // Chapter 6: in a multi-programmed setting the processor's
    // requirement is the union of the applications' -- for peak power
    // the max. Verify the API supports this composition.
    msp::System &sys = test::sharedSystem();
    peak::Options opts;
    peak::Report a = peak::analyze(
        sys, isa::assemble(test::wrapProgram("        mov #1, r4\n")),
        opts);
    peak::Report b = peak::analyze(
        sys, isa::assemble(test::wrapProgram(R"(
        mov &0x0020, r4
        mov r4, &0x0130
        mov r4, &0x0138
        mov &0x013a, r5
    )")),
        opts);
    ASSERT_TRUE(a.ok && b.ok);
    double combined = std::max(a.peakPowerW, b.peakPowerW);
    EXPECT_DOUBLE_EQ(combined, b.peakPowerW)
        << "the multiplier app dominates";
}

TEST(Netlist, DotExport)
{
    msp::System &sys = test::sharedSystem();
    std::string dot = toDot(sys.netlist(), 100);
    EXPECT_NE(dot.find("digraph netlist"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_NE(dot.find("lightblue"), std::string::npos)
        << "sequential cells highlighted";
}

/** Per-opcode randomized sweep: gate core vs ISS on ALU results and
 *  flags, 8 operand pairs per opcode. */
class AluSweep : public ::testing::TestWithParam<const char *> {};

TEST_P(AluSweep, MatchesIssOverOperands)
{
    const char *op = GetParam();
    fuzz::Rng rng(std::hash<std::string>{}(op));
    msp::System &sys = test::sharedSystem();
    for (int trial = 0; trial < 8; ++trial) {
        uint16_t a = rng.word();
        uint16_t d = rng.word();
        std::string body = "        mov #0, sr\n        mov #" +
                           std::to_string(a) + ", r4\n        mov #" +
                           std::to_string(d) + ", r5\n        " + op +
                           " r4, r5\n        mov sr, r6\n";
        std::string src = test::wrapProgram(body);
        isa::Image img = isa::assemble(src);

        isa::Iss iss;
        iss.loadImage(img);
        iss.reset();
        ASSERT_TRUE(iss.run(1000));

        test::GateRun run = test::runGate(sys, img, 0);
        ASSERT_TRUE(run.halted);
        EXPECT_EQ(run.regs[5], iss.reg(5))
            << op << " " << a << "," << d;
        EXPECT_EQ(run.regs[6], iss.reg(6))
            << op << " flags " << a << "," << d;
    }
}

INSTANTIATE_TEST_SUITE_P(Opcodes, AluSweep,
                         ::testing::Values("mov", "add", "addc", "sub",
                                           "subc", "cmp", "bit", "bic",
                                           "bis", "xor", "and"));

} // namespace
} // namespace ulpeak
