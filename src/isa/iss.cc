#include "isa/iss.hh"

#include <stdexcept>

namespace ulpeak {
namespace isa {

using SM = SystemMap;

Iss::Iss()
{
    rom_.fill(0xffff);
}

void
Iss::loadImage(const Image &image)
{
    for (auto &[addr, word] : image.flatten()) {
        if (addr >= SM::kRomBase) {
            rom_[(addr - SM::kRomBase) / 2] = word;
        } else if (addr >= SM::kRamBase &&
                   addr < SM::kRamBase + SM::kRamSize) {
            ram_[(addr - SM::kRamBase) / 2] = word;
        } else {
            throw std::out_of_range("image word outside RAM/ROM");
        }
    }
}

void
Iss::reset()
{
    regs_.fill(0);
    halted_ = false;
    haltReason_.clear();
    cycles_ = 0;
    instrs_ = 0;
    wdtCtl_ = 0;
    regs_[kPc] = readMem(SM::kResetVector);
    // Cycle parity with the gate-level core, counted to the point the
    // halt is observable there: msp::System::kResetCycles externally-
    // driven reset cycles, one RESETV vector-fetch cycle, and the
    // edge that commits the final DONE store.
    cycles_ = 8;
}

uint16_t
Iss::readMem(uint32_t addr)
{
    addr &= 0xfffe;
    if (addr >= SM::kRomBase)
        return rom_[(addr - SM::kRomBase) / 2];
    if (addr >= SM::kRamBase && addr < SM::kRamBase + SM::kRamSize)
        return ram_[(addr - SM::kRamBase) / 2];
    switch (addr) {
      case SM::kSfrIe: return sfrIe_;
      case SM::kSfrIfg: return sfrIfg_;
      case SM::kPortIn: return portIn_;
      case SM::kPortOut: return portOut_;
      case SM::kWdtCtl: return uint16_t(0x6900 | (wdtCtl_ & 0x00ff));
      case SM::kMpy: return mpy_;
      case SM::kMpys: return mpy_;
      case SM::kOp2: return op2_;
      case SM::kResLo: return resLo_;
      case SM::kResHi: return resHi_;
      case SM::kDbgCtl: return dbg0_;
      case SM::kDbgData: return dbg1_;
      default: return 0xffff;
    }
}

void
Iss::writeMem(uint32_t addr, uint16_t v)
{
    addr &= 0xfffe;
    if (writeObs_)
        writeObs_(addr, v);
    if (addr >= SM::kRomBase)
        return; // ROM writes dropped, as in the gate-level backbone
    if (addr >= SM::kRamBase && addr < SM::kRamBase + SM::kRamSize) {
        ram_[(addr - SM::kRamBase) / 2] = v;
        return;
    }
    switch (addr) {
      case SM::kSfrIe:
        sfrIe_ = v;
        break;
      case SM::kSfrIfg:
        sfrIfg_ = v;
        break;
      case SM::kPortOut:
        portOut_ = v;
        break;
      case SM::kWdtCtl:
        // Password-protected: accepted only with 0x5a in the top byte.
        if ((v & 0xff00) == SM::kWdtPassword)
            wdtCtl_ = uint16_t(v & 0x00ff);
        break;
      case SM::kMpy:
        mpy_ = v;
        mpySigned_ = false;
        break;
      case SM::kMpys:
        mpy_ = v;
        mpySigned_ = true;
        break;
      case SM::kOp2: {
        op2_ = v;
        uint32_t product;
        if (mpySigned_) {
            product = uint32_t(int32_t(int16_t(mpy_)) *
                               int32_t(int16_t(v)));
        } else {
            product = uint32_t(mpy_) * uint32_t(v);
        }
        resLo_ = uint16_t(product);
        resHi_ = uint16_t(product >> 16);
        break;
      }
      case SM::kResLo:
        resLo_ = v;
        break;
      case SM::kResHi:
        resHi_ = v;
        break;
      case SM::kDbgCtl:
        dbg0_ = v;
        break;
      case SM::kDbgData:
        dbg1_ = v;
        break;
      case SM::kDone:
        halted_ = true;
        haltReason_ = "done";
        break;
      default:
        break; // unmapped writes dropped
    }
}

uint16_t
Iss::fetchWord()
{
    uint16_t w = readMem(regs_[kPc]);
    regs_[kPc] = uint16_t(regs_[kPc] + 2);
    return w;
}

uint16_t
Iss::readOperand(const Operand &o, uint32_t &addr_out)
{
    addr_out = 0;
    switch (o.mode) {
      case Mode::Reg:
        return regs_[o.reg];
      case Mode::Const:
      case Mode::Immediate:
        return uint16_t(o.imm);
      case Mode::Absolute:
        addr_out = uint32_t(o.imm) & 0xffff;
        return readMem(addr_out);
      case Mode::Indexed:
      case Mode::Symbolic:
        addr_out = uint32_t(regs_[o.reg] + uint16_t(o.imm)) & 0xffff;
        return readMem(addr_out);
      case Mode::Indirect:
        addr_out = regs_[o.reg];
        return readMem(addr_out);
      case Mode::IndirectInc: {
        addr_out = regs_[o.reg];
        uint16_t v = readMem(addr_out);
        regs_[o.reg] = uint16_t(regs_[o.reg] + 2);
        return v;
      }
    }
    return 0;
}

void
Iss::writeFlags(bool c, bool z, bool n, bool v)
{
    uint16_t sr = regs_[kSr];
    sr = uint16_t(sr & ~((1u << kFlagC) | (1u << kFlagZ) |
                         (1u << kFlagN) | (1u << kFlagV)));
    if (c)
        sr |= 1u << kFlagC;
    if (z)
        sr |= 1u << kFlagZ;
    if (n)
        sr |= 1u << kFlagN;
    if (v)
        sr |= 1u << kFlagV;
    regs_[kSr] = sr;
}

bool
Iss::step()
{
    // A clean DONE halt sets halted_; decode/execution errors leave
    // halted_ false but record a reason, so callers can tell a normal
    // termination from a trap.
    if (halted_ || !haltReason_.empty())
        return false;

    uint32_t instrAddr = regs_[kPc];
    uint16_t w0 = fetchWord();
    uint16_t w1 = readMem(regs_[kPc]);
    uint16_t w2 = readMem(uint32_t(regs_[kPc]) + 2);
    Decoded d = decode(w0, w1, w2);
    if (!d.valid) {
        haltReason_ = "invalid instruction at 0x" +
                      std::to_string(instrAddr);
        return false;
    }
    const Instr &in = d.instr;
    MicroPlan plan = planOf(in);
    cycles_ += plan.cycles();
    ++instrs_;

    // Consume extension words in program order (src first).
    if (plan.srcExt)
        fetchWord();
    if (plan.dstExt)
        fetchWord();

    if (isJump(in.op)) {
        if (jumpTaken(in.op, flagC(), flagZ(), flagN(), flagV())) {
            regs_[kPc] = uint16_t(instrAddr + 2 +
                                  uint16_t(in.jumpOffsetWords) * 2);
        }
        return !halted_;
    }

    uint32_t srcAddr = 0;
    uint16_t s = readOperand(in.src, srcAddr);

    if (isFormatII(in.op)) {
        switch (in.op) {
          case Op::Rrc: {
            uint16_t r = uint16_t((s >> 1) | (flagC() ? 0x8000 : 0));
            writeFlags(s & 1, r == 0, r & 0x8000, false);
            if (in.src.mode == Mode::Reg)
                regs_[in.src.reg] = r;
            else
                writeMem(srcAddr, r);
            break;
          }
          case Op::Rra: {
            uint16_t r = uint16_t((s >> 1) | (s & 0x8000));
            writeFlags(s & 1, r == 0, r & 0x8000, false);
            if (in.src.mode == Mode::Reg)
                regs_[in.src.reg] = r;
            else
                writeMem(srcAddr, r);
            break;
          }
          case Op::Swpb: {
            uint16_t r = uint16_t((s << 8) | (s >> 8));
            if (in.src.mode == Mode::Reg)
                regs_[in.src.reg] = r;
            else
                writeMem(srcAddr, r);
            break;
          }
          case Op::Sxt: {
            uint16_t r = uint16_t(int16_t(int8_t(s & 0xff)));
            writeFlags(r != 0, r == 0, r & 0x8000, false);
            if (in.src.mode == Mode::Reg)
                regs_[in.src.reg] = r;
            else
                writeMem(srcAddr, r);
            break;
          }
          case Op::Push: {
            regs_[kSp] = uint16_t(regs_[kSp] - 2);
            writeMem(regs_[kSp], s);
            break;
          }
          case Op::Call: {
            regs_[kSp] = uint16_t(regs_[kSp] - 2);
            writeMem(regs_[kSp], regs_[kPc]);
            regs_[kPc] = s;
            break;
          }
          default:
            haltReason_ = "unsupported format-II op";
            return false;
        }
        return !halted_;
    }

    // Format I.
    uint32_t dstAddr = 0;
    uint16_t dv = 0;
    if (readsDst(in.op)) {
        dv = readOperand(in.dst, dstAddr);
    } else if (in.dst.mode != Mode::Reg) {
        // MOV still needs the destination address (no read).
        if (in.dst.mode == Mode::Absolute)
            dstAddr = uint32_t(in.dst.imm) & 0xffff;
        else
            dstAddr =
                uint32_t(regs_[in.dst.reg] + uint16_t(in.dst.imm)) &
                0xffff;
    }

    uint32_t wide = 0;
    uint16_t r = 0;
    bool c = flagC(), z = flagZ(), n = flagN(), v = flagV();
    auto addFlags = [&](uint16_t a, uint16_t b, bool cin) {
        wide = uint32_t(a) + uint32_t(b) + (cin ? 1 : 0);
        r = uint16_t(wide);
        c = wide > 0xffff;
        z = r == 0;
        n = r & 0x8000;
        v = ((~(a ^ b) & (a ^ r)) & 0x8000) != 0;
    };

    bool write = writesDst(in.op);
    bool flags = setsFlags(in.op);
    switch (in.op) {
      case Op::Mov:
        r = s;
        break;
      case Op::Add:
        addFlags(s, dv, false);
        break;
      case Op::Addc:
        addFlags(s, dv, flagC());
        break;
      case Op::Sub:
        addFlags(uint16_t(~s), dv, true);
        break;
      case Op::Subc:
        addFlags(uint16_t(~s), dv, flagC());
        break;
      case Op::Cmp:
        addFlags(uint16_t(~s), dv, true);
        break;
      case Op::Bit:
      case Op::And:
        r = s & dv;
        c = r != 0;
        z = r == 0;
        n = r & 0x8000;
        v = false;
        break;
      case Op::Bic:
        r = uint16_t(~s & dv);
        break;
      case Op::Bis:
        r = uint16_t(s | dv);
        break;
      case Op::Xor:
        r = s ^ dv;
        c = r != 0;
        z = r == 0;
        n = r & 0x8000;
        v = (s & 0x8000) && (dv & 0x8000);
        break;
      default:
        haltReason_ = "unsupported format-I op";
        return false;
    }

    if (write) {
        if (in.dst.mode == Mode::Reg) {
            regs_[in.dst.reg] = r;
            // Explicit writes to SR win over ALU flag updates.
            if (in.dst.reg == kSr)
                flags = false;
        } else {
            writeMem(dstAddr, r);
        }
    }
    if (flags)
        writeFlags(c, z, n, v);

    return !halted_;
}

bool
Iss::run(uint64_t max_instrs)
{
    for (uint64_t i = 0; i < max_instrs; ++i)
        if (!step())
            return halted_;
    return halted_;
}

} // namespace isa
} // namespace ulpeak
