#include "isa/assembler.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace ulpeak {
namespace isa {

uint32_t
Image::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        throw std::out_of_range("undefined symbol: " + name);
    return it->second;
}

std::vector<std::pair<uint32_t, uint16_t>>
Image::flatten() const
{
    std::vector<std::pair<uint32_t, uint16_t>> out;
    for (const Segment &s : segments)
        for (size_t i = 0; i < s.words.size(); ++i)
            out.emplace_back(s.base + uint32_t(i) * 2, s.words[i]);
    return out;
}

namespace {

std::string
trim(const std::string &s)
{
    size_t a = s.find_first_not_of(" \t\r\n");
    if (a == std::string::npos)
        return "";
    size_t b = s.find_last_not_of(" \t\r\n");
    return s.substr(a, b - a + 1);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

bool
parseRegister(const std::string &tok, unsigned &reg)
{
    std::string t = lower(tok);
    if (t == "pc") { reg = kPc; return true; }
    if (t == "sp") { reg = kSp; return true; }
    if (t == "sr") { reg = kSr; return true; }
    if (t == "cg") { reg = kCg; return true; }
    if (t.size() >= 2 && t[0] == 'r') {
        char *end = nullptr;
        long v = std::strtol(t.c_str() + 1, &end, 10);
        if (end && *end == '\0' && v >= 0 && v <= 15) {
            reg = unsigned(v);
            return true;
        }
    }
    return false;
}

/** Context shared across a single assembly pass. */
struct Pass {
    const std::map<std::string, uint32_t> *symbols;
    bool permissive; ///< sizing pass: unresolved symbols become 0x1234
    unsigned line = 0;

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw AsmError(line, msg);
    }

    int64_t
    atom(const std::string &tok) const
    {
        std::string t = trim(tok);
        if (t.empty())
            fail("empty expression");
        bool neg = false;
        if (t[0] == '-') {
            neg = true;
            t = trim(t.substr(1));
        }
        int64_t v;
        if (std::isdigit(static_cast<unsigned char>(t[0]))) {
            v = std::strtoll(t.c_str(), nullptr, 0);
        } else {
            auto it = symbols->find(t);
            if (it == symbols->end()) {
                if (!permissive)
                    fail("undefined symbol: " + t);
                v = 0x1234; // forces non-CG encoding while sizing
            } else {
                v = it->second;
            }
        }
        return neg ? -v : v;
    }

    /** expr := atom (('+'|'-') atom)*  -- evaluated left to right. */
    int64_t
    expr(const std::string &s) const
    {
        int64_t acc = 0;
        size_t pos = 0;
        char pending = '+';
        std::string cur;
        auto flush = [&]() {
            if (trim(cur).empty())
                fail("malformed expression: " + s);
            int64_t v = atom(cur);
            acc = pending == '+' ? acc + v : acc - v;
            cur.clear();
        };
        // A leading '-' belongs to the first atom.
        bool atAtomStart = true;
        while (pos < s.size()) {
            char c = s[pos];
            if ((c == '+' || c == '-') && !atAtomStart) {
                flush();
                pending = c;
                atAtomStart = true;
            } else {
                if (!std::isspace(static_cast<unsigned char>(c)))
                    atAtomStart = false;
                cur.push_back(c);
            }
            ++pos;
        }
        flush();
        return acc;
    }

    Operand
    operand(const std::string &raw) const
    {
        std::string t = trim(raw);
        if (t.empty())
            fail("empty operand");
        Operand o;
        unsigned reg;

        if (t[0] == '#') {
            o.mode = Mode::Immediate;
            o.imm = int32_t(expr(t.substr(1)));
            return o;
        }
        if (t[0] == '&') {
            o.mode = Mode::Absolute;
            o.imm = int32_t(expr(t.substr(1)) & 0xffff);
            return o;
        }
        if (t[0] == '@') {
            std::string r = t.substr(1);
            bool inc = !r.empty() && r.back() == '+';
            if (inc)
                r.pop_back();
            if (!parseRegister(trim(r), reg))
                fail("bad indirect register: " + t);
            o.mode = inc ? Mode::IndirectInc : Mode::Indirect;
            o.reg = uint8_t(reg);
            return o;
        }
        size_t lp = t.find('(');
        if (lp != std::string::npos && t.back() == ')') {
            std::string idx = t.substr(0, lp);
            std::string r = t.substr(lp + 1, t.size() - lp - 2);
            if (!parseRegister(trim(r), reg))
                fail("bad indexed register: " + t);
            o.reg = uint8_t(reg);
            o.imm = int32_t(expr(idx));
            o.mode = reg == kPc ? Mode::Symbolic : Mode::Indexed;
            return o;
        }
        if (parseRegister(t, reg)) {
            o.mode = Mode::Reg;
            o.reg = uint8_t(reg);
            return o;
        }
        fail("cannot parse operand: " + t);
    }
};

struct OpInfo {
    Op op;
    unsigned operands;
};

const std::map<std::string, OpInfo> &
mnemonics()
{
    static const std::map<std::string, OpInfo> table = {
        {"mov", {Op::Mov, 2}},   {"add", {Op::Add, 2}},
        {"addc", {Op::Addc, 2}}, {"subc", {Op::Subc, 2}},
        {"sub", {Op::Sub, 2}},   {"cmp", {Op::Cmp, 2}},
        {"bit", {Op::Bit, 2}},   {"bic", {Op::Bic, 2}},
        {"bis", {Op::Bis, 2}},   {"xor", {Op::Xor, 2}},
        {"and", {Op::And, 2}},   {"rrc", {Op::Rrc, 1}},
        {"swpb", {Op::Swpb, 1}}, {"rra", {Op::Rra, 1}},
        {"sxt", {Op::Sxt, 1}},   {"push", {Op::Push, 1}},
        {"call", {Op::Call, 1}}, {"reti", {Op::Reti, 0}},
        {"jne", {Op::Jne, 1}},   {"jnz", {Op::Jne, 1}},
        {"jeq", {Op::Jeq, 1}},   {"jz", {Op::Jeq, 1}},
        {"jnc", {Op::Jnc, 1}},   {"jlo", {Op::Jnc, 1}},
        {"jc", {Op::Jc, 1}},     {"jhs", {Op::Jc, 1}},
        {"jn", {Op::Jn, 1}},     {"jge", {Op::Jge, 1}},
        {"jl", {Op::Jl, 1}},     {"jmp", {Op::Jmp, 1}},
    };
    return table;
}

/** Expand emulated mnemonics to core instructions (textually). */
std::string
expandEmulated(const std::string &mn, const std::string &rest)
{
    std::string m = lower(mn);
    if (m == "nop") return "mov r3, r3";
    if (m == "ret") return "mov @sp+, pc";
    if (m == "pop") return "mov @sp+, " + rest;
    if (m == "br") return "mov " + rest + ", pc";
    if (m == "clr") return "mov #0, " + rest;
    if (m == "inc") return "add #1, " + rest;
    if (m == "incd") return "add #2, " + rest;
    if (m == "dec") return "sub #1, " + rest;
    if (m == "decd") return "sub #2, " + rest;
    if (m == "tst") return "cmp #0, " + rest;
    if (m == "rla") return "add " + rest + ", " + rest;
    if (m == "rlc") return "addc " + rest + ", " + rest;
    if (m == "clrc") return "bic #1, sr";
    if (m == "setc") return "bis #1, sr";
    if (m == "clrz") return "bic #2, sr";
    if (m == "setz") return "bis #2, sr";
    if (m == "dint") return "bic #8, sr";
    if (m == "eint") return "bis #8, sr";
    return "";
}

/** Split operands at top-level commas (parentheses aware). */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (char c : s) {
        if (c == '(')
            ++depth;
        if (c == ')')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!trim(cur).empty())
        out.push_back(trim(cur));
    return out;
}

struct Statement {
    enum class Kind { Instr, Org, Word, Equ } kind;
    unsigned line;
    std::string mnemonic; ///< lower-case, post-expansion handled later
    std::string rest;     ///< operand text
    std::vector<std::string> labels;
};

Instr
buildInstr(const Statement &st, const Pass &pass, uint32_t addr)
{
    std::string mn = lower(st.mnemonic);
    std::string text = mn + " " + st.rest;
    std::string expanded = expandEmulated(mn, st.rest);
    if (!expanded.empty()) {
        size_t sp = expanded.find(' ');
        mn = expanded.substr(0, sp);
        text = expanded;
    }
    auto it = mnemonics().find(mn);
    if (it == mnemonics().end())
        pass.fail("unknown mnemonic: " + st.mnemonic);
    const OpInfo &info = it->second;

    std::string restText;
    size_t sp = text.find(' ');
    if (sp != std::string::npos)
        restText = trim(text.substr(sp + 1));
    std::vector<std::string> ops = splitOperands(restText);
    if (ops.size() != info.operands)
        pass.fail("expected " + std::to_string(info.operands) +
                  " operand(s) for " + mn);

    Instr in;
    in.op = info.op;
    if (isJump(info.op)) {
        int64_t target = pass.expr(ops[0]);
        int64_t off = (target - int64_t(addr) - 2) / 2;
        if ((target - int64_t(addr) - 2) % 2 != 0)
            pass.fail("odd jump distance");
        if (!pass.permissive && (off < -512 || off > 511))
            pass.fail("jump target out of range");
        in.jumpOffsetWords = int16_t(std::clamp<int64_t>(off, -512, 511));
        return in;
    }
    if (info.operands >= 1)
        in.src = pass.operand(ops[0]);
    if (info.operands == 2)
        in.dst = pass.operand(ops[1]);
    // CALL's operand is encoded like a source operand; `call #f` is the
    // common form.
    return in;
}

} // namespace

Instr
parseInstrLine(const std::string &line,
               const std::map<std::string, uint32_t> &symbols,
               uint32_t pc_of_next_word)
{
    Pass pass{&symbols, false, 0};
    Statement st;
    std::string t = trim(line);
    size_t sp = t.find_first_of(" \t");
    st.mnemonic = sp == std::string::npos ? t : t.substr(0, sp);
    st.rest = sp == std::string::npos ? "" : trim(t.substr(sp + 1));
    st.line = 0;
    return buildInstr(st, pass, pc_of_next_word - 2);
}

Image
assemble(const std::string &source)
{
    // Tokenize into statements once.
    std::vector<Statement> stmts;
    {
        std::istringstream is(source);
        std::string lineText;
        unsigned lineNo = 0;
        std::vector<std::string> pendingLabels;
        while (std::getline(is, lineText)) {
            ++lineNo;
            size_t semi = lineText.find(';');
            if (semi != std::string::npos)
                lineText = lineText.substr(0, semi);
            std::string t = trim(lineText);
            // Peel off any leading labels.
            while (true) {
                size_t colon = t.find(':');
                if (colon == std::string::npos)
                    break;
                std::string lbl = trim(t.substr(0, colon));
                bool ident = !lbl.empty();
                for (char c : lbl)
                    if (!std::isalnum(static_cast<unsigned char>(c)) &&
                        c != '_')
                        ident = false;
                if (!ident)
                    break;
                pendingLabels.push_back(lbl);
                t = trim(t.substr(colon + 1));
            }
            if (t.empty())
                continue;

            Statement st;
            st.line = lineNo;
            st.labels = pendingLabels;
            pendingLabels.clear();
            size_t sp = t.find_first_of(" \t");
            std::string head =
                sp == std::string::npos ? t : t.substr(0, sp);
            st.rest = sp == std::string::npos ? "" : trim(t.substr(sp + 1));
            std::string headLower = lower(head);
            if (headLower == ".org") {
                st.kind = Statement::Kind::Org;
            } else if (headLower == ".word") {
                st.kind = Statement::Kind::Word;
            } else if (headLower == ".equ") {
                st.kind = Statement::Kind::Equ;
            } else if (headLower[0] == '.') {
                throw AsmError(lineNo, "unknown directive: " + head);
            } else {
                st.kind = Statement::Kind::Instr;
                st.mnemonic = head;
            }
            stmts.push_back(st);
        }
        if (!pendingLabels.empty()) {
            Statement st;
            st.line = lineNo;
            st.labels = pendingLabels;
            st.kind = Statement::Kind::Word;
            st.rest = ""; // trailing label with no content
            stmts.push_back(st);
        }
    }

    // Relaxation loop: sizes depend on symbol values (constant
    // generator vs extension word), symbol values depend on sizes.
    // Iterate to a fixpoint; permissive resolution seeds unknown
    // symbols with a non-CG value.
    std::map<std::string, uint32_t> symbols;
    Image image;
    for (int iteration = 0; iteration < 8; ++iteration) {
        Image img;
        std::map<std::string, uint32_t> newSymbols;
        uint32_t addr = 0;
        bool segmentOpen = false;
        auto emit = [&](uint16_t w) {
            if (!segmentOpen) {
                img.segments.push_back(Segment{addr, {}});
                segmentOpen = true;
            }
            img.segments.back().words.push_back(w);
            addr += 2;
        };

        Pass pass{&symbols, true, 0};
        for (const Statement &st : stmts) {
            pass.line = st.line;
            for (const std::string &lbl : st.labels)
                newSymbols[lbl] = addr;
            switch (st.kind) {
              case Statement::Kind::Org:
                addr = uint32_t(pass.expr(st.rest)) & 0xfffe;
                segmentOpen = false;
                break;
              case Statement::Kind::Equ: {
                auto parts = splitOperands(st.rest);
                if (parts.size() != 2)
                    pass.fail(".equ needs name, value");
                newSymbols[parts[0]] = uint32_t(pass.expr(parts[1]));
                break;
              }
              case Statement::Kind::Word: {
                for (auto &p : splitOperands(st.rest))
                    emit(uint16_t(pass.expr(p) & 0xffff));
                break;
              }
              case Statement::Kind::Instr: {
                Instr in = buildInstr(st, pass, addr);
                for (uint16_t w : encode(in))
                    emit(w);
                break;
              }
            }
        }
        img.symbols = newSymbols;
        bool stable = (newSymbols == symbols);
        symbols = std::move(newSymbols);
        image = std::move(img);
        if (stable)
            break;
    }

    // Final strict pass to surface undefined symbols / range errors.
    {
        uint32_t addr = 0;
        Pass pass{&symbols, false, 0};
        for (const Statement &st : stmts) {
            pass.line = st.line;
            switch (st.kind) {
              case Statement::Kind::Org:
                addr = uint32_t(pass.expr(st.rest)) & 0xfffe;
                break;
              case Statement::Kind::Equ:
                break;
              case Statement::Kind::Word:
                for (auto &p : splitOperands(st.rest)) {
                    pass.expr(p);
                    addr += 2;
                }
                break;
              case Statement::Kind::Instr: {
                Instr in = buildInstr(st, pass, addr);
                addr += uint32_t(encode(in).size()) * 2;
                break;
              }
            }
        }
    }
    return image;
}

} // namespace isa
} // namespace ulpeak
