/**
 * @file
 * Tests of the cycle-based simulator: value propagation, X handling,
 * the paper's activity definition (Section 3.1), per-cycle energies
 * and snapshot/restore.
 */

#include <gtest/gtest.h>

#include "hw/builder.hh"
#include "sim/simulator.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

using hw::Builder;
using hw::Bus;

TEST(Simulator, CombPropagation)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    hw::Sig c = b.input("c");
    hw::Sig o = b.and2(b.inv(a), c);
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) {
        s.setInput(a, V4::Zero);
        s.setInput(c, V4::One);
    });
    EXPECT_EQ(sim.value(o), V4::One);
    sim.step([&](Simulator &s) {
        s.setInput(a, V4::One);
        s.setInput(c, V4::One);
    });
    EXPECT_EQ(sim.value(o), V4::Zero);
}

TEST(Simulator, SequentialDelaysOneCycle)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    Bus q = b.reg(Bus{a}, "q");
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    EXPECT_EQ(sim.value(q[0]), V4::One) << "captured previous cycle";
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    EXPECT_EQ(sim.value(q[0]), V4::Zero);
}

TEST(Simulator, ActivityChangedGateIsActive)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    hw::Sig o = b.inv(a);
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    EXPECT_TRUE(sim.isActive(o));
    EXPECT_GT(sim.actualEnergyJ(), 0.0);
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    EXPECT_FALSE(sim.isActive(o));
    EXPECT_DOUBLE_EQ(sim.actualEnergyJ(), 0.0);
}

TEST(Simulator, StableXIsInactive)
{
    // Paper 3.1: a gate is active if it toggles OR is X and driven by
    // an active gate. A gate whose X fanins are stable must be idle.
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig x = b.input("x");
    hw::Sig gate1 = b.inv(x);
    hw::Sig toggler = b.input("t");
    hw::Sig mixed = b.and2(gate1, toggler);
    nl.finalize();

    Simulator sim(nl);
    auto drive = [&](V4 t) {
        return [&, t](Simulator &s) {
            s.setInput(x, V4::X);
            s.setInput(toggler, t);
        };
    };
    sim.step(drive(V4::One));
    sim.step(drive(V4::One));
    sim.step(drive(V4::One));
    // x held X: the primary input itself stays conservative-active,
    // but gate1 (X, no changing fanin... except the input rule) --
    // inputs count as potentially toggling, so check the deeper gate
    // under a concrete blocker instead:
    sim.step(drive(V4::Zero));
    sim.step(drive(V4::Zero));
    EXPECT_EQ(sim.value(mixed), V4::Zero);
    EXPECT_FALSE(sim.isActive(mixed)) << "0-blocked gate is idle";
}

TEST(Simulator, BoundEnergyCoversXToggles)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    hw::Sig o = b.inv(a);
    (void)o;
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::X); });
    // X assignment assumes the max-power consistent transition.
    EXPECT_GT(sim.boundEnergyJ(), 0.0);
    EXPECT_DOUBLE_EQ(sim.actualEnergyJ(), 0.0)
        << "no concrete toggle happened";
}

TEST(Simulator, BoundEqualsActualWhenConcrete)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    Bus a = b.busInput(8, "a");
    Bus n = b.busNot(a);
    Bus q = b.reg(n, "q");
    (void)q;
    nl.finalize();

    Simulator sim(nl);
    uint32_t pattern = 0x5a;
    for (int i = 0; i < 8; ++i) {
        sim.step([&](Simulator &s) {
            for (unsigned j = 0; j < 8; ++j)
                s.setInput(a[j], fromBool((pattern >> j) & 1));
        });
        // The first cycles resolve the power-on X state (registers
        // start unknown, Algorithm 1 line 2); once concrete, the
        // bound must equal the actual energy exactly.
        if (i >= 2)
            EXPECT_DOUBLE_EQ(sim.actualEnergyJ(), sim.boundEnergyJ());
        pattern = (pattern * 37 + 11) & 0xff;
    }
}

TEST(Simulator, ModuleEnergySplit)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    b.pushModule("m1");
    hw::Sig o1 = b.inv(a);
    b.popModule();
    b.pushModule("m2");
    hw::Sig o2 = b.inv(a);
    hw::Sig o3 = b.inv(o2);
    b.popModule();
    (void)o1;
    (void)o3;
    ModuleId m1 = nl.findModule("m1");
    ModuleId m2 = nl.findModule("m2");
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    const auto &split = sim.moduleBoundEnergyJ();
    EXPECT_GT(split[m1], 0.0);
    EXPECT_GT(split[m2], split[m1]) << "m2 has two toggling gates";
    double total = 0.0;
    for (double e : split)
        total += e;
    EXPECT_NEAR(total, sim.boundEnergyJ(), 1e-21);
}

TEST(Simulator, SnapshotRestoreRoundTrip)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    Bus cnt = b.busWireDecl(4, "cnt");
    Bus q = b.reg(hw::addConst(b, cnt, 1), "q");
    b.busWireConnect(cnt, q);
    (void)a;
    nl.finalize();

    Simulator sim(nl);
    auto drv = [&](Simulator &s) { s.setInput(a, V4::Zero); };
    // Counter starts X; force it by snapshot surgery: run a few
    // cycles, grab the state, keep running, then restore and check
    // deterministic continuation.
    for (int i = 0; i < 3; ++i)
        sim.step(drv);
    Simulator::Snapshot snap = sim.snapshot();
    uint64_t h0 = sim.hashSeqState();
    sim.step(drv);
    sim.step(drv);
    EXPECT_NE(sim.cycle(), snap.cycle);
    sim.restore(snap);
    EXPECT_EQ(sim.cycle(), snap.cycle);
    EXPECT_EQ(sim.hashSeqState(), h0);
}

// Step both kernels with the same driver and require bit-identical
// per-cycle observables.
void
expectLockstepCycle(Simulator &ev, Simulator &fs, const char *what,
                    uint64_t c)
{
    ASSERT_EQ(ev.actualEnergyJ(), fs.actualEnergyJ())
        << what << " cycle " << c;
    ASSERT_EQ(ev.boundEnergyJ(), fs.boundEnergyJ())
        << what << " cycle " << c;
    ASSERT_EQ(ev.behavioralEnergyJ(), fs.behavioralEnergyJ())
        << what << " cycle " << c;
    ASSERT_EQ(ev.activeGates(), fs.activeGates())
        << what << " cycle " << c;
    ASSERT_EQ(ev.moduleBoundEnergyJ(), fs.moduleBoundEnergyJ())
        << what << " cycle " << c;
    ASSERT_EQ(ev.hashSeqState(), fs.hashSeqState())
        << what << " cycle " << c;
}

TEST(SimulatorKernel, EventDrivenMatchesFullSweepSmallNetlist)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    Bus a = b.busInput(4, "a");
    hw::Sig x = b.input("x");
    Bus n = b.busNot(a);
    Bus q = b.reg(n, "q");
    hw::Sig mixed = b.and2(b.inv(x), q[0]);
    hw::Sig deep = b.xor2(mixed, b.or2(q[1], q[2]));
    (void)deep;
    nl.finalize();

    Simulator ev(nl, EvalMode::EventDriven);
    Simulator fs(nl, EvalMode::FullSweep);
    uint32_t pattern = 0x9;
    for (int i = 0; i < 40; ++i) {
        auto drv = [&](Simulator &s) {
            for (unsigned j = 0; j < 4; ++j)
                s.setInput(a[j], fromBool((pattern >> j) & 1));
            // Exercise X phases and stable phases.
            s.setInput(x, (i % 7 < 3) ? V4::X : V4::Zero);
        };
        ev.step(drv);
        fs.step(drv);
        expectLockstepCycle(ev, fs, "small", uint64_t(i));
        for (GateId g = 0; g < nl.numGates(); ++g) {
            ASSERT_EQ(ev.value(g), fs.value(g)) << "gate " << g;
            ASSERT_EQ(ev.isActive(g), fs.isActive(g)) << "gate " << g;
        }
        if (i % 3 == 0)
            pattern = (pattern * 37 + 11) & 0xf;
    }
}

TEST(SimulatorKernel, EventDrivenMatchesFullSweepCpuXRun)
{
    // Symbolic-style single-path prefix on the full CPU: port all-X,
    // uninitialized memory -- the X-heavy regime of Algorithm 1.
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(test::wrapProgram(R"(
        mov &0x0020, r4
        mov r4, &0x0130
        mov &0x0020, r5
        xor r4, r5
        mov r5, &0x0500
    )"));

    msp::System sysFs(CellLibrary::tsmc65Like());
    ASSERT_EQ(sys.netlist().numGates(), sysFs.netlist().numGates())
        << "System elaboration must be deterministic";

    for (msp::System *s : {&sys, &sysFs}) {
        s->memory().reset();
        s->loadImage(img);
        s->clearHalted();
    }
    Simulator ev(sys.netlist(), EvalMode::EventDriven);
    Simulator fs(sysFs.netlist(), EvalMode::FullSweep);
    sys.attach(ev);
    sysFs.attach(fs);
    sys.reset(ev);
    sysFs.reset(fs);
    ASSERT_EQ(ev.cycle(), fs.cycle());

    for (int c = 0; c < 220; ++c) {
        ev.step([&](Simulator &s) {
            sys.driveCycle(s, Word16::allX());
        });
        fs.step([&](Simulator &s) {
            sysFs.driveCycle(s, Word16::allX());
        });
        expectLockstepCycle(ev, fs, "cpu-x", ev.cycle());
    }
}

TEST(SimulatorKernel, SetInputBetweenStepsPropagates)
{
    // setInput is legal between steps (not just inside a driver);
    // both kernels must see the edit: the prologue copies val_ into
    // prev_, so the input itself reads as unchanged, but consumers
    // still re-evaluate against their stale outputs.
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig in = b.input("in");
    hw::Sig n = b.inv(in);
    Bus q = b.reg(Bus{in}, "q");
    nl.finalize();

    for (EvalMode mode : {EvalMode::EventDriven, EvalMode::FullSweep}) {
        Simulator sim(nl, mode);
        sim.step([&](Simulator &s) { s.setInput(in, V4::Zero); });
        sim.step();
        EXPECT_EQ(sim.value(n), V4::One);

        sim.setInput(in, V4::One); // between steps, no driver
        sim.step();
        EXPECT_EQ(sim.value(n), V4::Zero) << "comb consumer stale";
        EXPECT_TRUE(sim.isActive(n));
        EXPECT_GT(sim.actualEnergyJ(), 0.0);
        sim.step();
        EXPECT_EQ(sim.value(q[0]), V4::One) << "flop consumer stale";
    }
}

TEST(SimulatorKernel, SnapshotForkDivergesIndependently)
{
    // Fork a mid-program state, diverge the two continuations through
    // different port inputs, and verify (a) the divergence is real,
    // (b) replaying a continuation after the other ran reproduces it
    // exactly, (c) a fresh run matches the forked continuation.
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(test::wrapProgram(R"(
        mov #8, r6
fk_loop:
        mov &0x0020, r4     ; sample the port
        add r4, r5
        dec r6
        jnz fk_loop
        mov r5, &0x0500
    )"));

    auto drive = [&](uint16_t port) {
        return [&sys, port](Simulator &s) {
            sys.driveCycle(s, Word16::known(port));
        };
    };
    auto freshTo = [&](unsigned cycles, uint16_t port) {
        sys.memory().reset();
        sys.loadImage(img);
        sys.clearHalted();
        auto sim = std::make_unique<Simulator>(sys.netlist());
        sys.attach(*sim);
        sys.reset(*sim);
        for (unsigned i = 0; i < cycles; ++i)
            sim->step(drive(port));
        return sim;
    };

    constexpr unsigned kForkAt = 50, kTail = 80;
    auto sim = freshTo(kForkAt, 0x00ff);
    Simulator::Snapshot simSnap = sim->snapshot();
    msp::System::Snapshot sysSnap = sys.snapshot();

    auto runTail = [&](uint16_t port) {
        std::vector<double> bound;
        for (unsigned i = 0; i < kTail; ++i) {
            sim->step(drive(port));
            bound.push_back(sim->boundEnergyJ());
        }
        return bound;
    };

    std::vector<double> tailA = runTail(0x00ff);
    uint64_t hashA = sim->hashSeqState();

    sim->restore(simSnap);
    sys.restore(sysSnap);
    std::vector<double> tailB = runTail(0xff00);
    uint64_t hashB = sim->hashSeqState();
    EXPECT_NE(hashA, hashB) << "different ports must diverge";
    EXPECT_NE(tailA, tailB);

    // Replay A after B ran: bit-identical (B left no residue).
    sim->restore(simSnap);
    sys.restore(sysSnap);
    std::vector<double> tailA2 = runTail(0x00ff);
    EXPECT_EQ(tailA, tailA2);
    EXPECT_EQ(sim->hashSeqState(), hashA);

    // A fresh, snapshot-free run reaches the same states/energies.
    auto fresh = freshTo(kForkAt, 0x00ff);
    std::vector<double> freshTail;
    for (unsigned i = 0; i < kTail; ++i) {
        fresh->step(drive(0x00ff));
        freshTail.push_back(fresh->boundEnergyJ());
    }
    EXPECT_EQ(tailA, freshTail);
    EXPECT_EQ(fresh->hashSeqState(), hashA);
}

TEST(Simulator, HashDiffersForDifferentState)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    Builder b(nl);
    hw::Sig a = b.input("a");
    Bus q = b.reg(Bus{a, a}, "q");
    (void)q;
    nl.finalize();

    Simulator sim(nl);
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::Zero); });
    uint64_t h0 = sim.hashSeqState();
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    sim.step([&](Simulator &s) { s.setInput(a, V4::One); });
    EXPECT_NE(sim.hashSeqState(), h0);
}

} // namespace
} // namespace ulpeak
