/**
 * @file
 * Unit tests of the static netlist analysis layer (src/lint) and the
 * `ullint` CLI driver: structural lint on hand-built pathological
 * netlists (combinational loops, floating fanins, multi-driven nets,
 * dead cones, fanout hotspots), the scenario-aware constant fixpoint
 * (const cells, pinned ports, driven constants, settle depths through
 * flops, hook-driven exclusions), the energy split bookkeeping, and
 * the CLI contract (parse errors, JSON byte-identity across --jobs).
 *
 * The dynamic half of the prune-soundness story -- pruned vs unpruned
 * report bit-identity and concrete validation of every proven
 * constant -- lives in fuzz::staticPruneCheck (tests/test_fuzz_sym.cc
 * and `ulfuzz --mode lint`).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "cli/lint_driver.hh"
#include "lint/lint.hh"
#include "msp/cpu.hh"

namespace ulpeak {
namespace {

namespace fs = std::filesystem;

class LintTest : public ::testing::Test {
  protected:
    LintTest() : lib(CellLibrary::tsmc65Like()), nl(lib) {}
    CellLibrary lib;
    Netlist nl;
};

size_t
countKind(const lint::StructuralReport &r, lint::IssueKind k)
{
    return r.count(k);
}

TEST_F(LintTest, CombLoopDetected)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId g1 = nl.addGate(CellKind::And2, {a, kNoGate}, m);
    GateId g2 = nl.addGate(CellKind::Inv, {g1}, m);
    nl.setFanin(g1, 1, g2); // g1 -> g2 -> g1
    nl.setName(g2, "observed");

    lint::StructuralReport r = lint::structuralLint(nl);
    EXPECT_EQ(countKind(r, lint::IssueKind::CombLoop), 1u);
    EXPECT_GE(r.errors(), 1u);
    for (const lint::Issue &is : r.issues) {
        if (is.kind != lint::IssueKind::CombLoop)
            continue;
        EXPECT_EQ(is.severity, lint::Severity::Error);
        EXPECT_NE(std::find(is.gates.begin(), is.gates.end(), g1),
                  is.gates.end());
        EXPECT_NE(std::find(is.gates.begin(), is.gates.end(), g2),
                  is.gates.end());
    }
}

TEST_F(LintTest, SelfLoopDetected)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId s = nl.addGate(CellKind::Or2, {a, kNoGate}, m);
    nl.setFanin(s, 1, s); // s feeds itself
    nl.setName(s, "observed");

    lint::StructuralReport r = lint::structuralLint(nl);
    EXPECT_EQ(countKind(r, lint::IssueKind::CombLoop), 1u);
}

TEST_F(LintTest, FlopBreaksCombLoop)
{
    // A cycle through a Dff is a registered feedback path, not a
    // combinational loop.
    ModuleId m = nl.addModule("m");
    GateId q = nl.addGate(CellKind::Dff, {kNoGate}, m);
    GateId inv = nl.addGate(CellKind::Inv, {q}, m);
    nl.setFanin(q, 0, inv);
    nl.setName(inv, "observed");

    lint::StructuralReport r = lint::structuralLint(nl);
    EXPECT_EQ(countKind(r, lint::IssueKind::CombLoop), 0u);
    EXPECT_EQ(r.errors(), 0u);
}

TEST_F(LintTest, FloatingInputDetected)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId f = nl.addGate(CellKind::And2, {a, kNoGate}, m);
    nl.setName(f, "observed");

    lint::StructuralReport r = lint::structuralLint(nl);
    EXPECT_EQ(countKind(r, lint::IssueKind::FloatingInput), 1u);
    EXPECT_GE(r.errors(), 1u);
}

TEST_F(LintTest, MultiDriverHookOverlapDetected)
{
    ModuleId m = nl.addModule("m");
    GateId d = nl.addGate(CellKind::Input, {}, m);
    nl.addHook({"ram", {}, {d}});
    nl.addHook({"rom", {}, {d}}); // same net claimed twice
    nl.setName(d, "observed");

    lint::StructuralReport r = lint::structuralLint(nl);
    EXPECT_EQ(countKind(r, lint::IssueKind::MultiDriver), 1u);
    EXPECT_GE(r.errors(), 1u);
}

TEST_F(LintTest, HookOnComputedGateRejectedAtConstruction)
{
    // A hook writing a gate that also computes its own value would
    // double-drive the net; Netlist::addHook refuses it outright
    // (the lint multi-driver pass remains a backstop for netlists
    // built without that check).
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId g = nl.addGate(CellKind::Inv, {a}, m);
    nl.setName(g, "observed");
    EXPECT_THROW(nl.addHook({"ram", {}, {g}}), std::exception);
}

TEST_F(LintTest, DeadConeDetected)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId obs = nl.addGate(CellKind::Inv, {a}, m);
    nl.setName(obs, "out");
    GateId d1 = nl.addGate(CellKind::Inv, {a}, m);
    GateId d2 = nl.addGate(CellKind::Inv, {d1}, m);
    (void)d2;

    lint::StructuralReport r = lint::structuralLint(nl);
    EXPECT_EQ(r.deadGates, 2u);
    EXPECT_EQ(countKind(r, lint::IssueKind::DeadGate), 1u);
    EXPECT_EQ(r.errors(), 0u); // dead gates warn, they don't fail
}

TEST_F(LintTest, HookDependsCountAsObservation)
{
    // A gate read by a behavioral hook is observed even if unnamed.
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId g = nl.addGate(CellKind::Inv, {a}, m);
    nl.addHook({"ram", {g}, {}});

    lint::StructuralReport r = lint::structuralLint(nl);
    EXPECT_EQ(r.deadGates, 0u);
}

TEST_F(LintTest, FanoutHotspotReported)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId sink = kNoGate;
    for (int i = 0; i < 4; ++i)
        sink = nl.addGate(CellKind::Inv, {a}, m);
    nl.setName(sink, "out");

    lint::StructuralOptions o;
    o.fanoutHotspotThreshold = 3;
    lint::StructuralReport r = lint::structuralLint(nl, o);
    EXPECT_EQ(r.fanoutHotspotThreshold, 3u);
    ASSERT_EQ(countKind(r, lint::IssueKind::FanoutHotspot), 1u);
    for (const lint::Issue &is : r.issues)
        if (is.kind == lint::IssueKind::FanoutHotspot) {
            EXPECT_EQ(is.severity, lint::Severity::Info);
            ASSERT_EQ(is.gates.size(), 1u);
            EXPECT_EQ(is.gates[0], a);
        }
}

TEST_F(LintTest, ConstCellConesProven)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId c0 = nl.addGate(CellKind::Const0, {}, m);
    GateId c1 = nl.addGate(CellKind::Const1, {}, m);
    GateId x = nl.addGate(CellKind::And2, {c0, a}, m); // 0 & X = 0
    GateId y = nl.addGate(CellKind::Or2, {c1, a}, m);  // 1 | X = 1
    GateId z = nl.addGate(CellKind::Xor2, {a, x}, m);  // X ^ 0 = X
    nl.setName(z, "out");
    nl.setName(y, "out2");
    nl.finalize();

    lint::ConstAnalysis ca = lint::analyzeConstants(nl, {});
    EXPECT_EQ(ca.value[x], V4::Zero);
    EXPECT_EQ(ca.value[y], V4::One);
    EXPECT_EQ(ca.value[z], V4::X);
    EXPECT_EQ(ca.value[a], V4::X); // unconstrained port stays free
    EXPECT_TRUE(ca.pruneMask[x]);
    EXPECT_TRUE(ca.pruneMask[y]);
    EXPECT_FALSE(ca.pruneMask[z]);
    EXPECT_FALSE(ca.pruneMask[a]);
    EXPECT_EQ(ca.settleDepth[x], 0u);
    EXPECT_GE(ca.provenConst, 4u); // c0, c1, x, y
}

TEST_F(LintTest, SettleDepthThroughFlops)
{
    // c1 -> inv (0) -> dff q (depth 1) -> inv w (depth 1, prunable);
    // w's proof must pass through the flop, so its settle depth
    // inherits the +1 of the sequential stage.
    ModuleId m = nl.addModule("m");
    GateId c1 = nl.addGate(CellKind::Const1, {}, m);
    GateId inv = nl.addGate(CellKind::Inv, {c1}, m);
    GateId q = nl.addGate(CellKind::Dff, {inv}, m);
    GateId w = nl.addGate(CellKind::Inv, {q}, m);
    nl.setName(w, "out");
    nl.finalize();

    lint::ConstAnalysis ca = lint::analyzeConstants(nl, {});
    EXPECT_EQ(ca.value[inv], V4::Zero);
    EXPECT_EQ(ca.value[q], V4::Zero);
    EXPECT_EQ(ca.value[w], V4::One);
    EXPECT_GE(ca.settleDepth[q], 1u); // one edge to load the flop
    EXPECT_GE(ca.provenSeq, 1u);
    EXPECT_FALSE(ca.pruneMask[q]); // sequential gates never join
    EXPECT_TRUE(ca.pruneMask[w]);
    EXPECT_GE(ca.maxPruneDepth, 1u); // w settles after q loads
}

TEST_F(LintTest, PinnedPortBitsSeedTheFixpoint)
{
    ModuleId m = nl.addModule("m");
    GateId p0 = nl.addGate(CellKind::Input, {}, m);
    GateId p1 = nl.addGate(CellKind::Input, {}, m);
    GateId i0 = nl.addGate(CellKind::Inv, {p0}, m);
    GateId i1 = nl.addGate(CellKind::Inv, {p1}, m);
    nl.setName(i0, "o0");
    nl.setName(i1, "o1");
    nl.finalize();

    lint::ConstAnalysisOptions o;
    o.portBits = {p0, p1};
    o.scenario.port.pinned = 0x0001; // bit 0 pinned to 1, bit 1 free
    o.scenario.port.value = 0x0001;
    lint::ConstAnalysis ca = lint::analyzeConstants(nl, o);
    EXPECT_EQ(ca.value[p0], V4::One);
    EXPECT_EQ(ca.value[i0], V4::Zero);
    EXPECT_EQ(ca.value[p1], V4::X);
    EXPECT_EQ(ca.value[i1], V4::X);
    EXPECT_TRUE(ca.pruneMask[p0]);
    EXPECT_TRUE(ca.pruneMask[i0]);
}

TEST_F(LintTest, ScheduledPortBitOnlyProvenWhenPhaseInvariant)
{
    ModuleId m = nl.addModule("m");
    GateId p0 = nl.addGate(CellKind::Input, {}, m);
    GateId p1 = nl.addGate(CellKind::Input, {}, m);
    GateId s = nl.addGate(CellKind::And2, {p0, p1}, m);
    nl.setName(s, "out");
    nl.finalize();

    // Two-phase schedule: bit 0 pinned to 0 in both phases (schedule
    // invariant), bit 1 pinned to 0 then 1 (varies -> not constant).
    lint::ConstAnalysisOptions o;
    o.portBits = {p0, p1};
    scenario::PortPattern ph0, ph1;
    ph0.pinned = 0x0003;
    ph0.value = 0x0000;
    ph1.pinned = 0x0003;
    ph1.value = 0x0002;
    o.scenario.portSchedule = {ph0, ph1};
    lint::ConstAnalysis ca = lint::analyzeConstants(nl, o);
    EXPECT_EQ(ca.value[p0], V4::Zero);
    EXPECT_EQ(ca.value[p1], V4::X);
    EXPECT_EQ(ca.value[s], V4::Zero); // 0 & X = 0 either way
}

TEST_F(LintTest, DrivenConstantsSeedTheFixpoint)
{
    ModuleId m = nl.addModule("m");
    GateId rstn = nl.addGate(CellKind::Input, {}, m);
    GateId g = nl.addGate(CellKind::Inv, {rstn}, m);
    nl.setName(g, "out");
    nl.finalize();

    lint::ConstAnalysisOptions o;
    o.drivenConstants = {{rstn, V4::One}};
    lint::ConstAnalysis ca = lint::analyzeConstants(nl, o);
    EXPECT_EQ(ca.value[rstn], V4::One);
    EXPECT_EQ(ca.value[g], V4::Zero);
    EXPECT_TRUE(ca.pruneMask[g]);
}

TEST_F(LintTest, HookDrivenGatesNeverProven)
{
    ModuleId m = nl.addModule("m");
    GateId hd = nl.addGate(CellKind::Input, {}, m);
    GateId g = nl.addGate(CellKind::Inv, {hd}, m);
    nl.addHook({"ram", {}, {hd}});
    nl.setName(g, "out");
    nl.finalize();

    // Even an (erroneous) driven-constant claim on a hook-driven net
    // is refused: the hook owns the value.
    lint::ConstAnalysisOptions o;
    o.drivenConstants = {{hd, V4::One}};
    lint::ConstAnalysis ca = lint::analyzeConstants(nl, o);
    EXPECT_EQ(ca.value[hd], V4::X);
    EXPECT_EQ(ca.value[g], V4::X);
    EXPECT_FALSE(ca.pruneMask[hd]);
}

TEST_F(LintTest, EnergySplitMatchesMask)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId c0 = nl.addGate(CellKind::Const0, {}, m);
    GateId x = nl.addGate(CellKind::And2, {c0, a}, m);
    GateId z = nl.addGate(CellKind::Xor2, {a, x}, m);
    nl.setName(z, "out");
    nl.finalize();

    lint::ConstAnalysis ca = lint::analyzeConstants(nl, {});
    const FlatNetlist &f = nl.flat();
    double quiescent = 0.0, switching = 0.0;
    for (GateId g = 0; g < GateId(nl.numGates()); ++g) {
        if (ca.pruneMask[g])
            quiescent += f.maxE[g];
        if (ca.value[g] == V4::X)
            switching += f.maxE[g];
    }
    EXPECT_NEAR(ca.quiescentEnergyJ, quiescent, 1e-18);
    EXPECT_NEAR(ca.switchingBoundJ,
                switching + nl.clockEnergyPerCycleJ(), 1e-18);
    // The split is a partition plus the clock tree: nothing counted
    // twice, nothing both quiescent and still switching.
    EXPECT_GT(ca.quiescentEnergyJ, 0.0);
    EXPECT_GT(ca.switchingBoundJ, 0.0);
}

TEST_F(LintTest, QuiescentConesGroupByTopModule)
{
    ModuleId ma = nl.addModule("alpha");
    ModuleId mb = nl.addModule("beta");
    GateId c0 = nl.addGate(CellKind::Const0, {}, ma);
    GateId a = nl.addGate(CellKind::Input, {}, mb);
    GateId x = nl.addGate(CellKind::And2, {c0, a}, ma);
    GateId y = nl.addGate(CellKind::Xor2, {a, x}, mb);
    nl.setName(y, "out");
    nl.finalize();

    lint::ConstAnalysis ca = lint::analyzeConstants(nl, {});
    std::vector<lint::QuiescentCone> cones =
        lint::quiescentCones(nl, ca);
    ASSERT_EQ(cones.size(), 2u);
    EXPECT_EQ(cones[0].module, "alpha"); // deterministic order
    EXPECT_EQ(cones[1].module, "beta");
    EXPECT_EQ(cones[0].gates, 2u);
    EXPECT_EQ(cones[0].constGates, 2u); // c0 and x
    EXPECT_EQ(cones[0].pruned, 2u);
    EXPECT_EQ(cones[1].constGates, 0u);
}

TEST(LintCore, RealCoreIsStructurallyCleanAndPrunable)
{
    msp::System sys(CellLibrary::tsmc65Like());
    lint::StructuralReport sr = lint::structuralLint(sys.netlist());
    EXPECT_EQ(sr.errors(), 0u);

    lint::ConstAnalysisOptions o;
    const msp::CpuHandles &h = sys.handles();
    o.portBits.assign(h.portIn.begin(), h.portIn.end());
    o.drivenConstants = {{h.rstn, V4::One}, {h.irq, V4::Zero}};
    lint::ConstAnalysis ca =
        lint::analyzeConstants(sys.netlist(), o);
    // The reset/irq cone alone proves a nontrivial prune set; a
    // pinned-port scenario can only grow it.
    EXPECT_GT(ca.prunable, 50u);

    scenario::Scenario grounded;
    grounded.port.pinned = 0xffff;
    grounded.port.value = 0;
    lint::ConstAnalysisOptions og = o;
    og.scenario = grounded;
    lint::ConstAnalysis cg =
        lint::analyzeConstants(sys.netlist(), og);
    EXPECT_GT(cg.prunable, ca.prunable);
}

// ---------------------------------------------------------------
// CLI driver
// ---------------------------------------------------------------

TEST(LintCli, ParseDefaultsAndErrors)
{
    cli::LintCliOptions o;
    std::string err;
    const char *ok[] = {"ullint", "--scenario",
                        "unconstrained,ports-grounded", "--jobs", "2",
                        "--json", "-", "--no-timings", "--quiet"};
    ASSERT_TRUE(cli::parseLintArgs(9, ok, o, err)) << err;
    EXPECT_EQ(o.scenarioSpecs.size(), 2u);
    EXPECT_EQ(o.jobs, 2u);
    EXPECT_EQ(o.jsonPath, "-");
    EXPECT_TRUE(o.noTimings);
    EXPECT_TRUE(o.quiet);

    cli::LintCliOptions bad;
    const char *badJobs[] = {"ullint", "--jobs", "2x"};
    EXPECT_FALSE(cli::parseLintArgs(3, badJobs, bad, err));
    const char *zeroJobs[] = {"ullint", "--jobs", "0"};
    EXPECT_FALSE(cli::parseLintArgs(3, zeroJobs, bad, err));
    const char *unknown[] = {"ullint", "--bogus"};
    EXPECT_FALSE(cli::parseLintArgs(2, unknown, bad, err));
}

TEST(LintCli, JsonByteIdenticalAcrossJobs)
{
    fs::path dir = fs::temp_directory_path() /
                   ("ullint_test_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    std::string j1 = (dir / "j1.json").string();
    std::string j2 = (dir / "j2.json").string();

    const char *argv1[] = {"ullint", "--scenario",
                           "unconstrained,ports-grounded,sensor-4bit",
                           "--jobs", "1", "--json", j1.c_str(),
                           "--no-timings", "--quiet"};
    const char *argv2[] = {"ullint", "--scenario",
                           "unconstrained,ports-grounded,sensor-4bit",
                           "--jobs", "3", "--json", j2.c_str(),
                           "--no-timings", "--quiet"};
    EXPECT_EQ(cli::runLintCli(9, argv1), 0);
    EXPECT_EQ(cli::runLintCli(9, argv2), 0);

    auto slurp = [](const std::string &p) {
        std::ifstream in(p);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    };
    std::string a = slurp(j1), b = slurp(j2);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    // A constrained scenario proves at least as much as the
    // unconstrained one (spot-check the report content).
    EXPECT_NE(a.find("\"ports-grounded\""), std::string::npos);
    fs::remove_all(dir);
}

TEST(LintCli, UsageErrorExitsTwo)
{
    const char *argv[] = {"ullint", "--jobs"};
    EXPECT_EQ(cli::runLintCli(2, argv), 2);
}

} // namespace
} // namespace ulpeak
