/**
 * @file
 * Experiments E1/E2 -- Chapter 2's measured motivation (Figures 2.2a,
 * 2.2b, 2.3), reproduced on the 130 nm "F1610" calibration at 8 MHz
 * with concrete-input gate-level runs standing in for oscilloscope
 * sampling (DESIGN.md section 2).
 *
 * Reproduced claims: peak power and NPE are application-specific AND
 * input-dependent (>25% input-induced variation motivates the 4/3
 * profiling guardband); instantaneous power is far below peak most of
 * the time.
 */

#include "bench/bench_util.hh"
#include "power/analysis.hh"

using namespace ulpeak;
using namespace ulpeak::bench_util;

int
main()
{
    msp::System sys(CellLibrary::f1610Like());
    power::PowerContext ctx(sys.netlist(), kFreq1610);

    printHeader("Fig 2.2a/2.2b: measured peak power and NPE "
                "(F1610-like, 8 MHz), 8 input sets");
    std::printf("%-10s %12s %12s %12s %12s %8s\n", "benchmark",
                "minPeak[mW]", "maxPeak[mW]", "minNPE[pJ]",
                "maxNPE[pJ]", "var[%]");

    double worstVar = 0.0;
    for (const auto &b : bench430::allBenchmarks()) {
        isa::Image img = b.assembleImage();
        double minP = 1e9, maxP = 0, minE = 1e9, maxE = 0;
        for (const auto &in : b.makeInputs(8, 2026)) {
            power::ConcreteRunOptions opts;
            opts.recordTrace = false;
            opts.portIn = in.portIn;
            auto run = power::runConcrete(sys, img, ctx, opts, in.ram);
            minP = std::min(minP, run.stats.peakW);
            maxP = std::max(maxP, run.stats.peakW);
            minE = std::min(minE, run.npeJPerCycle());
            maxE = std::max(maxE, run.npeJPerCycle());
        }
        double var = 100.0 * (maxP / minP - 1.0);
        worstVar = std::max(worstVar, var);
        std::printf("%-10s %12.3f %12.3f %12.2f %12.2f %8.1f\n",
                    b.name.c_str(), minP * 1e3, maxP * 1e3, minE * 1e12,
                    maxE * 1e12, var);
    }
    std::printf("max input-induced peak-power variation: %.1f%% "
                "(paper: >25%% across inputs motivates the 4/3 "
                "guardband)\n\n",
                worstVar);

    printHeader("Fig 2.3: instantaneous power of mult vs its peak");
    {
        const auto &b = bench430::benchmarkByName("mult");
        auto in = b.makeInputs(1, 7)[0];
        power::ConcreteRunOptions opts;
        opts.portIn = in.portIn;
        auto run = power::runConcrete(sys, b.assembleImage(), ctx, opts,
                                      in.ram);
        std::printf("peak %.3f mW, average %.3f mW (avg/peak = %.2f; "
                    "paper: instantaneous power is significantly "
                    "lower than peak on average)\n",
                    run.stats.peakW * 1e3, run.stats.avgW() * 1e3,
                    run.stats.avgW() / run.stats.peakW);
        power::writePowerCsv(outDir() + "fig2_3_mult_trace.csv",
                             run.traceW);
        std::printf("trace -> %sfig2_3_mult_trace.csv (%zu cycles)\n",
                    outDir().c_str(), run.traceW.size());
    }
    return 0;
}
