/**
 * @file
 * Top-level assembly of the ULP system: declares the cross-module
 * wires, invokes the module builders, finalizes the netlist and
 * implements the behavioral RAM/ROM macro hook plus halt detection.
 */

#include "msp/cpu.hh"

#include <stdexcept>

#include "msp/internal.hh"

namespace ulpeak {
namespace msp {

System::System(const CellLibrary &lib)
    : lib_(lib), nl_(lib_),
      mem_(SystemMap::kRamBase, SystemMap::kRamSize, SystemMap::kRomBase)
{
    hw::Builder b(nl_);
    CpuBuild c;
    c.b = &b;
    c.h = &h_;

    // Primary inputs.
    c.rstn = b.input("rstn");
    c.irq = b.input("irq");
    h_.rstn = c.rstn;
    h_.irq = c.irq;
    h_.portIn = b.busInput(16, "port_in");

    // RAM/ROM macro read-data port, produced by the behavioral hook.
    h_.memData = b.busInput(16, "mem_rdata");

    // Cross-module wires (drivers connected by mem_backbone).
    c.mab = b.busWireDecl(16, "mab");
    c.mbEn = b.wireDecl("mb_en");
    c.mbWr = b.wireDecl("mb_wr");
    c.mdbOut = b.busWireDecl(16, "mdb_out");
    c.mdbIn = b.busWireDecl(16, "mdb_in");
    h_.mab = c.mab;
    h_.mbEn = c.mbEn;
    h_.mbWr = c.mbWr;
    h_.mdbOut = c.mdbOut;

    buildFrontend(b, c);
    buildExecUnit(b, c);
    buildMultiplier(b, c);
    buildPeripherals(b, c);
    buildMemBackbone(b, c);

    // The RAM/ROM macro behaves as an asynchronous-read array: its
    // read data depends combinationally on the address/enable nets
    // (not on mb_wr/mdb_out -- writes commit at the clock edge, which
    // keeps the macro free of combinational feedback).
    BehavioralHook hook;
    hook.name = "ram_rom_macro";
    hook.depends = c.mab;
    hook.depends.push_back(c.mbEn);
    hook.outputs = h_.memData;
    h_.memHookId = nl_.addHook(std::move(hook));

    nl_.finalize();
}

void
System::loadImage(const isa::Image &image)
{
    for (auto &[addr, word] : image.flatten()) {
        if (mem_.inRom(addr))
            mem_.loadRom(addr, {word});
        else if (mem_.inRam(addr))
            mem_.loadRam(addr, {word});
        else
            throw std::out_of_range("image word outside RAM/ROM");
    }
}

void
System::attach(Simulator &sim)
{
    sim.setHookFn(h_.memHookId,
                  [this](Simulator &s) { memHook(s); });
    sim.addEdgeFn([this](Simulator &s) { memEdge(s); });
}

void
System::reset(Simulator &sim,
              const std::function<void(Simulator &)> &pre_cycle)
{
    halted_ = false;
    xStoreFault_ = false;
    for (unsigned i = 0; i < kResetCycles; ++i) {
        sim.step([&](Simulator &s) {
            s.setInput(h_.rstn, V4::Zero);
            s.setInput(h_.irq, V4::Zero);
            s.setInputBus(h_.portIn, Word16::allX());
            if (pre_cycle)
                pre_cycle(s);
        });
    }
}

void
System::driveCycle(Simulator &sim, Word16 port_in)
{
    sim.setInput(h_.rstn, V4::One);
    sim.setInput(h_.irq, V4::Zero);
    sim.setInputBus(h_.portIn, port_in);
}

void
System::memHook(Simulator &sim)
{
    V4 en = sim.value(h_.mbEn);
    if (en == V4::Zero) {
        sim.setInputBus(h_.memData, Word16::known(0));
        return;
    }
    Word16 addr = sim.readBus(h_.mab);
    if (en == V4::X || !addr.isFullyKnown()) {
        sim.setInputBus(h_.memData, Word16::allX());
        return;
    }
    uint32_t a = addr.value;
    if (mem_.inRam(a) || mem_.inRom(a)) {
        sim.setInputBus(h_.memData, mem_.read(a));
        // Every presented RAM/ROM access (read or write cycle) is
        // billed once here; the edge function only commits the data.
        sim.addBehavioralEnergyJ(kMemAccessEnergyJ,
                                 h_.modMemBackbone);
    } else if (a < 0x0200) {
        // Peripheral space: the backbone routes in-netlist data.
        sim.setInputBus(h_.memData, Word16::known(0));
    } else {
        // Unmapped: pulled-up bus.
        sim.setInputBus(h_.memData, Word16::known(0xffff));
    }
}

void
System::memEdge(Simulator &sim)
{
    // Values read here are the stable values of the cycle that just
    // completed. While reset is asserted the core's control nets may
    // still be X; external reset inhibits writes.
    if (sim.value(h_.rstn) != V4::One)
        return;
    V4 wr = sim.value(h_.mbWr);
    if (wr == V4::Zero)
        return;
    if (wr == V4::X) {
        xStoreFault_ = true;
        return;
    }
    Word16 addr = sim.readBus(h_.mab);
    if (!addr.isFullyKnown()) {
        xStoreFault_ = true;
        return;
    }
    uint32_t a = addr.value;
    Word16 data = sim.readBus(h_.mdbOut);
    if (mem_.inRam(a)) {
        mem_.write(a, data);
    } else if (a == SystemMap::kDone) {
        halted_ = true;
    }
    // ROM / peripheral / unmapped writes: peripherals latch from the
    // netlist themselves; everything else is dropped.
}

Word16
System::readPc(const Simulator &sim) const
{
    return sim.readBus(h_.pc);
}

Word16
System::readReg(const Simulator &sim, unsigned r) const
{
    return sim.readBus(h_.regs[r]);
}

Word16
System::readIr(const Simulator &sim) const
{
    return sim.readBus(h_.ir);
}

int
System::fsmState(const Simulator &sim) const
{
    int found = -1;
    for (unsigned s = 0; s < kNumStates; ++s) {
        V4 v = sim.value(h_.state[s]);
        if (v == V4::X)
            return -1;
        if (v == V4::One) {
            if (found >= 0)
                return -1;
            found = int(s);
        }
    }
    return found;
}

System::Snapshot
System::snapshot() const
{
    return Snapshot{mem_.snapshot(), halted_, xStoreFault_};
}

void
System::restore(const Snapshot &s)
{
    mem_.restore(s.mem);
    halted_ = s.halted;
    xStoreFault_ = s.xStoreFault;
}

} // namespace msp
} // namespace ulpeak
