#include "bench430/benchmarks.hh"

#include <stdexcept>

namespace ulpeak {
namespace bench430 {

std::string
wrapBenchmarkBody(const std::string &body)
{
    return R"(
        .equ WDTCTL, 0x0120
        .equ PIN, 0x0020
        .equ POUT, 0x0022
        .equ MPY, 0x0130
        .equ MPYS, 0x0132
        .equ OP2, 0x0138
        .equ RESLO, 0x013a
        .equ RESHI, 0x013c
        .equ DONE, 0x01f0
        .equ INPUT, 0x0380
        .equ ARR, 0x0440
        .equ OUT, 0x0500
        .org 0xf800
start:
        mov #0x0a00, sp
        mov #0x5a80, &WDTCTL    ; hold the watchdog
        mov #0, sr
        mov #0, r3
)" + body + R"(
__done:
        mov #1, &DONE
__forever:
        jmp __forever
        .org 0xfffe
        .word start
)";
}

baseline::InputSet
Benchmark::makeInput(fuzz::Rng &rng) const
{
    baseline::InputSet in;
    if (inputWords > 0) {
        std::vector<uint16_t> words(inputWords);
        for (uint16_t &w : words)
            w = rng.word() & inputMask;
        in.ram.emplace_back(inputAddr, std::move(words));
    }
    if (usesPort)
        in.portIn = rng.word() & portMask;
    return in;
}

std::vector<baseline::InputSet>
Benchmark::makeInputs(unsigned n, uint32_t seed) const
{
    fuzz::Rng rng(seed);
    std::vector<baseline::InputSet> sets;
    sets.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        sets.push_back(makeInput(rng));
    return sets;
}

isa::Image
Benchmark::assembleImage() const
{
    return isa::assemble(source);
}

const std::vector<Benchmark> &
allBenchmarks()
{
    static const std::vector<Benchmark> list = [] {
        std::vector<Benchmark> v;
        auto add = [&](const std::string &name, const std::string &body,
                       unsigned input_words, uint16_t mask,
                       bool uses_port, const std::string &scratch) {
            Benchmark b;
            b.name = name;
            b.source = wrapBenchmarkBody(body);
            b.inputWords = input_words;
            b.inputMask = mask;
            b.usesPort = uses_port;
            b.scratchReg = scratch;
            v.push_back(std::move(b));
        };
        // Figure 5.1 order.
        add("autoCorr", autoCorrBody(), 8, 0x00ff, false, "r7");
        add("binSearch", binSearchBody(), 1, 0x00ff, false, "");
        add("FFT", fftBody(), 8, 0xffff, false, "");
        add("intFilt", intFiltBody(), 8, 0x03ff, false, "r7");
        add("mult", multBody(), 16, 0xffff, false, "r11");
        add("PI", piBody(), 0, 0, true, "");
        add("tea8", tea8Body(), 6, 0xffff, false, "r14");
        add("tHold", tHoldBody(), 8, 0x07ff, false, "r7");
        add("div", divBody(), 1, 0xffff, false, "");
        add("inSort", inSortBody(), 6, 0x00ff, false, "r11");
        add("rle", rleBody(), 8, 0x0003, false, "r11");
        add("intAVG", intAvgBody(), 8, 0x0fff, false, "r7");
        add("ConvEn", convEnBody(), 1, 0xffff, false, "r11");
        add("Viterbi", viterbiBody(), 6, 0x0003, false, "");
        return v;
    }();
    return list;
}

const Benchmark &
benchmarkByName(const std::string &name)
{
    for (const Benchmark &b : allBenchmarks())
        if (b.name == name)
            return b;
    throw std::out_of_range("unknown benchmark: " + name);
}

const std::vector<std::string> &
allBenchmarkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Benchmark &b : allBenchmarks())
            v.push_back(b.name);
        return v;
    }();
    return names;
}

} // namespace bench430
} // namespace ulpeak
