/**
 * @file
 * Deterministic pseudo-random number generator shared by the fuzzing
 * subsystem (src/fuzz, src/cosim, tools/ulfuzz) and the test suite.
 *
 * Every random choice in a fuzz run flows through this one generator so
 * that a printed seed reproduces a failure exactly, on any platform:
 * the core is SplitMix64 (fixed-width integer arithmetic only), and the
 * helpers below avoid the standard <random> distributions, whose output
 * is implementation-defined and therefore differs across standard
 * libraries. Tests that previously used ad-hoc std::mt19937 draws use
 * this class instead for the same reason.
 */

#ifndef ULPEAK_FUZZ_RNG_HH
#define ULPEAK_FUZZ_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ulpeak {
namespace fuzz {

class Rng {
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    /** Next 64 random bits (SplitMix64). */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, n); n must be nonzero. Uses the high bits via
     *  128-bit-free fixed-point scaling so small moduli stay unbiased
     *  enough for fuzzing and identical everywhere. */
    uint32_t
    below(uint32_t n)
    {
        return uint32_t((next() >> 32) * uint64_t(n) >> 32);
    }

    /** Uniform 16-bit value. */
    uint16_t
    word()
    {
        return uint16_t(next() >> 48);
    }

    /** True with probability @p percent / 100. */
    bool
    chance(unsigned percent)
    {
        return below(100) < percent;
    }

    /** Index drawn proportionally to @p weights (sum must be > 0). */
    size_t
    pickWeighted(const std::vector<unsigned> &weights)
    {
        unsigned total = 0;
        for (unsigned w : weights)
            total += w;
        unsigned roll = below(total);
        for (size_t i = 0; i < weights.size(); ++i) {
            if (roll < weights[i])
                return i;
            roll -= weights[i];
        }
        return weights.size() - 1;
    }

    /**
     * Derive an independent stream for work item @p index: ulfuzz seeds
     * one Rng per generated program as deriveStream(cli_seed, i), so
     * any single failing program reproduces without replaying the run.
     */
    static uint64_t
    deriveStream(uint64_t seed, uint64_t index)
    {
        // One SplitMix64 scramble over a seed/index mix; consecutive
        // indices land in unrelated regions of the state space.
        Rng r(seed ^ (0xd1b54a32d192ed03ull * (index + 1)));
        return r.next();
    }

  private:
    uint64_t state_;
};

} // namespace fuzz
} // namespace ulpeak

#endif // ULPEAK_FUZZ_RNG_HH
