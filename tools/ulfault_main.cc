#include "cli/fault_driver.hh"

int
main(int argc, char **argv)
{
    return ulpeak::cli::runFaultCli(argc, argv);
}
