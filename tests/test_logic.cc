/**
 * @file
 * Unit tests for the three-valued logic primitives.
 */

#include <gtest/gtest.h>

#include "logic/v4.hh"

namespace ulpeak {
namespace {

TEST(V4, AndTruthTable)
{
    EXPECT_EQ(v4And(V4::Zero, V4::Zero), V4::Zero);
    EXPECT_EQ(v4And(V4::Zero, V4::One), V4::Zero);
    EXPECT_EQ(v4And(V4::One, V4::One), V4::One);
    EXPECT_EQ(v4And(V4::Zero, V4::X), V4::Zero);
    EXPECT_EQ(v4And(V4::X, V4::Zero), V4::Zero);
    EXPECT_EQ(v4And(V4::One, V4::X), V4::X);
    EXPECT_EQ(v4And(V4::X, V4::X), V4::X);
}

TEST(V4, OrTruthTable)
{
    EXPECT_EQ(v4Or(V4::Zero, V4::Zero), V4::Zero);
    EXPECT_EQ(v4Or(V4::One, V4::Zero), V4::One);
    EXPECT_EQ(v4Or(V4::One, V4::X), V4::One);
    EXPECT_EQ(v4Or(V4::X, V4::One), V4::One);
    EXPECT_EQ(v4Or(V4::Zero, V4::X), V4::X);
    EXPECT_EQ(v4Or(V4::X, V4::X), V4::X);
}

TEST(V4, XorAndNot)
{
    EXPECT_EQ(v4Xor(V4::Zero, V4::One), V4::One);
    EXPECT_EQ(v4Xor(V4::One, V4::One), V4::Zero);
    EXPECT_EQ(v4Xor(V4::X, V4::One), V4::X);
    EXPECT_EQ(v4Xor(V4::Zero, V4::X), V4::X);
    EXPECT_EQ(v4Not(V4::Zero), V4::One);
    EXPECT_EQ(v4Not(V4::One), V4::Zero);
    EXPECT_EQ(v4Not(V4::X), V4::X);
}

TEST(V4, MuxSelectsExactly)
{
    EXPECT_EQ(v4Mux(V4::Zero, V4::X, V4::One), V4::X);
    EXPECT_EQ(v4Mux(V4::One, V4::X, V4::One), V4::One);
    // X select: known-equal inputs resolve, anything else is X.
    EXPECT_EQ(v4Mux(V4::X, V4::One, V4::One), V4::One);
    EXPECT_EQ(v4Mux(V4::X, V4::Zero, V4::One), V4::X);
    EXPECT_EQ(v4Mux(V4::X, V4::X, V4::X), V4::X);
}

TEST(V4, CharRoundTrip)
{
    EXPECT_EQ(v4Char(V4::Zero), '0');
    EXPECT_EQ(v4Char(V4::One), '1');
    EXPECT_EQ(v4Char(V4::X), 'x');
    EXPECT_EQ(v4FromChar('0'), V4::Zero);
    EXPECT_EQ(v4FromChar('1'), V4::One);
    EXPECT_EQ(v4FromChar('x'), V4::X);
    EXPECT_EQ(v4FromChar('X'), V4::X);
}

TEST(Word16, BitAccess)
{
    Word16 w = Word16::known(0xa5c3);
    EXPECT_TRUE(w.isFullyKnown());
    EXPECT_EQ(w.bit(0), V4::One);
    EXPECT_EQ(w.bit(1), V4::One);
    EXPECT_EQ(w.bit(2), V4::Zero);
    EXPECT_EQ(w.bit(15), V4::One);

    w.setBit(3, V4::X);
    EXPECT_FALSE(w.isFullyKnown());
    EXPECT_EQ(w.bit(3), V4::X);
    w.setBit(3, V4::One);
    EXPECT_EQ(w.bit(3), V4::One);
    EXPECT_TRUE(w.isFullyKnown());
}

TEST(Word16, XBitsMaskValue)
{
    // X bits must read back as zero in `value` so equal words compare
    // equal bitwise.
    Word16 a(0xffff, 0x00ff);
    EXPECT_EQ(a.value, 0xff00);
    Word16 b(0xff00, 0x00ff);
    EXPECT_TRUE(a == b);
}

TEST(Word16, AllXAndToString)
{
    Word16 x = Word16::allX();
    EXPECT_FALSE(x.isFullyKnown());
    EXPECT_EQ(x.toString(), std::string(16, 'x'));
    Word16 k = Word16::known(0x8001);
    EXPECT_EQ(k.toString(), "1000000000000001");
}

} // namespace
} // namespace ulpeak
