#include "logic/v64.hh"

namespace ulpeak {

// The packed ops are constexpr in v64.hh for the same reason the
// scalar ones are in v4.hh; only the string rendering lives here.

std::string
V64::toString() const
{
    std::string s;
    s.reserve(64);
    for (int i = 63; i >= 0; --i)
        s.push_back(v4Char(lane(unsigned(i))));
    return s;
}

} // namespace ulpeak
