/**
 * @file
 * The three conventional techniques the paper compares against
 * (Section 4.2 / Figure 1.4):
 *
 *  - design_tool: power/energy rating from the design tools' default
 *    input toggle rate (no application knowledge);
 *  - input-based profiling: measure several input sets, report the
 *    max; GB-input adds the 4/3 guardband of prior work;
 *  - stressmark: a genetic algorithm (after Kim et al., MICRO'12)
 *    searches instruction sequences that maximize peak (or average)
 *    power on the processor; GB-stress applies the same guardband.
 */

#ifndef ULPEAK_BASELINE_BASELINES_HH
#define ULPEAK_BASELINE_BASELINES_HH

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "msp/cpu.hh"
#include "power/analysis.hh"

namespace ulpeak {
namespace baseline {

/** The 4/3 guardband of prior studies (Section 4.2). */
constexpr double kGuardband = 4.0 / 3.0;

/// @name Design-tool rating
/// @{
struct DesignToolRating {
    double peakPowerW = 0.0;
    double npeJPerCycle = 0.0; ///< flat: rated power x clock period
};

/**
 * Default input toggle rate for the design-tool rating. Vendor
 * ratings carry margin over any real workload (the MSP430F1610
 * datasheet rates 4.8 mW against 1.5-2.3 mW measured, Chapter 2);
 * 0.55 transitions/cycle puts the rating above every application's
 * guaranteed bound, as in the paper's Figure 5.1.
 */
constexpr double kDesignToolToggleRate = 0.55;

DesignToolRating
designToolRating(const Netlist &nl, double freq_hz,
                 double default_toggle_rate = kDesignToolToggleRate);
/// @}

/// @name Input-based profiling
/// @{

/** One input set: RAM preload plus the port value. */
struct InputSet {
    power::RamInit ram;
    uint16_t portIn = 0;
};

struct ProfilingResult {
    /** Max observed over all profiled input sets. */
    double peakPowerW = 0.0;
    double npeJPerCycle = 0.0;
    /** Min observed (the error-bar bottoms of Figures 2.2/4.1). */
    double minPeakPowerW = 0.0;
    double minNpeJPerCycle = 0.0;
    /** Guardbanded requirements (GB-input). */
    double gbPeakPowerW = 0.0;
    double gbNpeJPerCycle = 0.0;
    /** Per-input-set observations. */
    std::vector<double> peaksW;
    std::vector<double> npesJPerCycle;
    uint64_t cyclesLastRun = 0;
};

/** Profile @p image over @p inputs and apply the guardband. */
ProfilingResult profile(msp::System &sys, const isa::Image &image,
                        const std::vector<InputSet> &inputs,
                        double freq_hz);
/// @}

/// @name GA stressmark
/// @{
enum class StressObjective {
    PeakPower,    ///< maximize instantaneous power
    AveragePower, ///< maximize energy rate (peak-energy stressmark)
};

struct StressmarkConfig {
    unsigned population = 12;
    unsigned generations = 8;
    unsigned genomeLength = 10;
    unsigned tournament = 3;
    double mutationRate = 0.15;
    uint64_t evalCycles = 700;
    uint32_t seed = 1;
    StressObjective objective = StressObjective::PeakPower;
};

struct StressmarkResult {
    double peakPowerW = 0.0;    ///< peak power of the best stressmark
    double avgPowerW = 0.0;     ///< its average power
    double npeJPerCycle = 0.0;  ///< avg power x Tclk (J per cycle)
    double gbPeakPowerW = 0.0;  ///< guardbanded (GB-stress)
    double gbNpeJPerCycle = 0.0;
    std::string bestSource;     ///< assembly of the winner
    std::vector<double> generationBestW; ///< GA convergence curve
};

StressmarkResult generateStressmark(msp::System &sys, double freq_hz,
                                    const StressmarkConfig &cfg);
/// @}

} // namespace baseline
} // namespace ulpeak

#endif // ULPEAK_BASELINE_BASELINES_HH
