/**
 * @file
 * Tests of the packed-frontier exploration mode
 * (SymbolicConfig::packedExplore): pending execution-tree paths
 * drained through the 64-lane bit-parallel kernel must be invisible
 * in every reported number. Covers the batch scheduler's edge cases
 * -- frontiers smaller than 64 lanes, lanes halting mid-batch, dedup
 * merges landing inside a batch, per-lane scenario/mode schedule
 * phases -- plus the scalar<->packed state transpose round-trip and
 * the interplay with delta snapshots, static pruning and
 * multi-threaded workers.
 */

#include <gtest/gtest.h>

#include "peak/peak_analysis.hh"
#include "sim/packed_simulator.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

/** Bit-identity over every scheduling-independent report field: the
 *  packed frontier's contract. */
void
expectIdenticalReports(const peak::Report &a, const peak::Report &b)
{
    ASSERT_EQ(a.ok, b.ok) << a.error << " vs " << b.error;
    EXPECT_EQ(a.error, b.error);
    if (!a.ok)
        return;
    EXPECT_EQ(a.peakPowerW, b.peakPowerW);
    EXPECT_EQ(a.peakEnergyJ, b.peakEnergyJ);
    EXPECT_EQ(a.npeJPerCycle, b.npeJPerCycle);
    EXPECT_EQ(a.maxPathCycles, b.maxPathCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.pathsExplored, b.pathsExplored);
    EXPECT_EQ(a.dedupMerges, b.dedupMerges);
    EXPECT_EQ(a.flatTraceW, b.flatTraceW);
    EXPECT_EQ(a.envelope.present, b.envelope.present);
    EXPECT_EQ(a.envelope.powerW, b.envelope.powerW);
    EXPECT_EQ(a.envelope.windowEnergyJ, b.envelope.windowEnergyJ);
    EXPECT_EQ(a.everActive, b.everActive);
    EXPECT_EQ(a.peakActive, b.peakActive);
}

peak::Options
baseOptions()
{
    peak::Options o;
    o.recordEnvelope = true;
    o.recordActiveSets = true;
    return o;
}

/** A straight-line program: the frontier never exceeds one pending
 *  path, so every packed batch runs almost empty. */
std::string
straightLineSource()
{
    return test::wrapProgram(R"(
        mov &0x0020, r4
        add r4, r4
        mov r4, &0x0130
        xor #0x5a5a, r4
        mov r4, &0x0132
    )");
}

/** Port-dependent branches over a live accumulator: forks, paths of
 *  different lengths (lanes halt mid-batch), and states that
 *  re-converge (dedup merges land inside a batch). */
std::string
forkySource(unsigned rounds)
{
    std::string body;
    for (unsigned i = 0; i < rounds; ++i) {
        std::string skip = "sp_skip_" + std::to_string(i);
        body += "        mov &0x0020, r5\n"
                "        and #1, r5\n"
                "        jz " + skip + "\n"
                "        add #1, r4\n" +
                skip + ":\n";
    }
    body += "        mov r4, &0x0130\n";
    return test::wrapProgram(body);
}

TEST(SymPacked, SmallFrontierMatchesScalar)
{
    // Frontier stays below 64 lanes the whole run (a handful of
    // paths): partial batches must still be bit-identical.
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(straightLineSource());

    peak::Options scalar = baseOptions();
    peak::Report rs = peak::analyze(sys, img, scalar);
    ASSERT_TRUE(rs.ok) << rs.error;

    peak::Options packed = scalar;
    packed.packedExplore = true;
    peak::Report rp = peak::analyze(sys, img, packed);
    expectIdenticalReports(rs, rp);

    // The packed run actually went through the batched path, and its
    // occupancy stats are sane: live-lane cycles can never exceed
    // 64 x sweeps.
    EXPECT_GT(rp.packedBatches, 0u);
    EXPECT_GT(rp.packedSweeps, 0u);
    EXPECT_LE(rp.packedLaneCycles, 64 * rp.packedSweeps);
    EXPECT_EQ(rs.packedSweeps, 0u); // scalar runs report zero
}

TEST(SymPacked, ForkHeavyTreeWithMidBatchHaltsAndDedup)
{
    // Wide tree: lanes fork, halt at different cycles inside one
    // batch, and re-converged states dedup-merge while other lanes
    // are still running.
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(forkySource(12));

    peak::Report rs = peak::analyze(sys, img, baseOptions());
    ASSERT_TRUE(rs.ok) << rs.error;
    ASSERT_GT(rs.pathsExplored, 10u);
    ASSERT_GT(rs.dedupMerges, 0u);

    peak::Options packed = baseOptions();
    packed.packedExplore = true;
    peak::Report rp = peak::analyze(sys, img, packed);
    expectIdenticalReports(rs, rp);
    // With dozens of pending paths, batches must actually pack
    // multiple lanes: mean occupancy strictly above one lane.
    EXPECT_GT(rp.packedLaneCycles, rp.packedSweeps);
}

TEST(SymPacked, ScenarioAndModeSchedulePhasesPerLane)
{
    // Lanes at different absolute cycles sit in different phases of
    // the scenario's port schedule and DVFS mode schedule; per-lane
    // phase bookkeeping must reproduce the scalar engine exactly.
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(forkySource(8));

    for (const char *name :
         {"periodic-sensor", "duty-cycled-dvfs", "sensor-4bit"}) {
        peak::Options scalar = baseOptions();
        scalar.scenario = scenario::Scenario::preset(name);
        peak::Report rs = peak::analyze(sys, img, scalar);

        peak::Options packed = scalar;
        packed.packedExplore = true;
        peak::Report rp = peak::analyze(sys, img, packed);
        SCOPED_TRACE(name);
        expectIdenticalReports(rs, rp);
    }
}

TEST(SymPacked, SnapshotModesAndStaticPruneInterplay)
{
    // The packed frontier loads lanes from delta-materialized and
    // full snapshots alike, and static pruning changes the dedup
    // hash basis but not the numbers -- all four combinations must
    // agree with the scalar delta baseline.
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(forkySource(10));

    peak::Options ref = baseOptions();
    ref.scenario = scenario::Scenario::preset("ports-grounded");
    peak::Report rs = peak::analyze(sys, img, ref);
    ASSERT_TRUE(rs.ok) << rs.error;

    for (bool fullSnap : {false, true}) {
        for (bool prune : {false, true}) {
            peak::Options packed = ref;
            packed.packedExplore = true;
            packed.snapshotMode = fullSnap ? sym::SnapshotMode::Full
                                           : sym::SnapshotMode::Delta;
            packed.staticPrune = prune;
            peak::Report rp = peak::analyze(sys, img, packed);
            SCOPED_TRACE((fullSnap ? "full" : "delta") +
                         std::string(prune ? "+prune" : ""));
            expectIdenticalReports(rs, rp);
        }
    }
}

TEST(SymPacked, MultiThreadPackedDeterminism)
{
    // Workers race to refill lanes from their own deques and steal
    // from others; the reports must not notice.
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(forkySource(10));

    peak::Options packed = baseOptions();
    packed.packedExplore = true;
    peak::Report r1 = peak::analyze(sys, img, packed);
    ASSERT_TRUE(r1.ok) << r1.error;

    packed.numThreads = 3;
    peak::Report rk = peak::analyze(sys, img, packed);
    expectIdenticalReports(r1, rk);
}

TEST(SymPacked, LaneStateTransposeRoundTrip)
{
    // Scalar snapshot -> loadLaneState -> extractLaneState must be
    // the identity, from a mid-run state with real activity flags and
    // clocked sequential history on several distinct lanes.
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(straightLineSource());
    sys.memory().reset();
    sys.loadImage(img);
    sys.clearHalted();

    Simulator sim(sys.netlist());
    sys.attach(sim);
    sys.reset(sim);
    std::vector<Simulator::Snapshot> snaps;
    for (int burst = 0; burst < 3; ++burst) {
        for (int c = 0; c < 7; ++c)
            sim.step([&](Simulator &s) {
                sys.driveCycle(s, Word16::allX());
            });
        snaps.push_back(sim.snapshot());
    }

    PackedSimulator ps(sys.netlist());
    ps.step(); // packed edge functions arm only after one cycle
    for (unsigned lane : {0u, 17u, 63u})
        ps.loadLaneState(lane, snaps[lane % snaps.size()]);

    for (unsigned lane : {0u, 17u, 63u}) {
        const Simulator::Snapshot &in = snaps[lane % snaps.size()];
        Simulator::Snapshot out = ps.extractLaneState(lane, in.cycle);
        SCOPED_TRACE(lane);
        EXPECT_EQ(in.val, out.val);
        EXPECT_EQ(in.activeLast, out.activeLast);
        EXPECT_EQ(in.loadedPrevEdge, out.loadedPrevEdge);
        EXPECT_EQ(in.cycle, out.cycle);
    }
}

} // namespace
} // namespace ulpeak
