#include "fault/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "fuzz/rng.hh"

namespace ulpeak {
namespace fault {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// @name FNV-1a hashing (the batch layer's idiom)
/// @{
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void
hashBytes(uint64_t &h, const void *data, size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
hashU64(uint64_t &h, uint64_t v)
{
    hashBytes(h, &v, sizeof v);
}

void
hashDouble(uint64_t &h, double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    hashU64(h, bits);
}

void
hashString(uint64_t &h, const std::string &s)
{
    hashU64(h, s.size());
    hashBytes(h, s.data(), s.size());
}
/// @}

/// @name Disk cache: one text file per campaign key
/// @{
constexpr const char *kCacheMagic = "ulfault-cache-v1";

std::string
doubleBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, bits);
    return buf;
}

std::string
floatBits(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof bits);
    char buf[12];
    std::snprintf(buf, sizeof buf, "%08x", bits);
    return buf;
}

fs::path
cachePath(const std::string &dir, uint64_t key)
{
    char name[40];
    std::snprintf(name, sizeof name, "fault-%016" PRIx64 ".txt", key);
    return fs::path(dir) / name;
}

/** One row per injection, fixed field order; every numeric field is
 *  decimal except the hex-bit-pattern peak power (exact float
 *  round-trip, so a warm run reproduces the cold run bit for bit). */
void
storeCached(const fs::path &path, const CampaignResult &res)
{
    std::ostringstream tmpname;
    tmpname << path.filename().string() << ".tmp."
            << std::hash<std::thread::id>{}(std::this_thread::get_id());
    fs::path tmp = path.parent_path() / tmpname.str();
    {
        std::ofstream out(tmp);
        if (!out)
            return; // cache is best-effort
        out << kCacheMagic << "\n"
            << "golden_cycles " << res.goldenCycles << "\n"
            << "golden_instructions " << res.goldenInstructions << "\n"
            << "hang_cycles " << res.hangCycles << "\n"
            << "envelope_present " << (res.envelopePresent ? 1 : 0)
            << "\n"
            << "envelope_cycles " << res.envelopeCycles << "\n"
            << "envelope_peak_w_bits " << doubleBits(res.envelopePeakW)
            << "\n"
            << "rows " << res.injections.size() << "\n";
        for (const InjectionResult &ir : res.injections) {
            const FaultResult &r = ir.r;
            out << "row " << ir.siteIndex << " " << ir.cycle << " "
                << unsigned(r.outcome) << " " << (r.applied ? 1 : 0)
                << " " << unsigned(r.kind) << " " << r.divergenceCycle
                << " " << r.instrIndex << " " << r.pc << " "
                << r.gateCycles << " " << r.instructionsRetired << " "
                << floatBits(r.peakPowerW) << " " << r.peakCycle << " "
                << r.traceCycles << " " << (r.envelopeEscape ? 1 : 0)
                << " " << r.escapeCycle << "\n";
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        fs::remove(tmp, ec);
}

/** Load the campaign body; false on miss/corruption (re-run). The
 *  row (site, cycle) pairs must match the freshly derived task list
 *  -- a key collision can never smuggle in rows of a different
 *  campaign shape. */
bool
loadCached(const fs::path &path, CampaignResult &res)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string magic;
    if (!std::getline(in, magic) || magic != kCacheMagic)
        return false;
    std::string k;
    uint64_t rows = UINT64_MAX;
    unsigned envPresent = 0;
    std::string peakBits;
    while (in >> k) {
        if (k == "golden_cycles") {
            if (!(in >> res.goldenCycles))
                return false;
        } else if (k == "golden_instructions") {
            if (!(in >> res.goldenInstructions))
                return false;
        } else if (k == "hang_cycles") {
            if (!(in >> res.hangCycles))
                return false;
        } else if (k == "envelope_present") {
            if (!(in >> envPresent))
                return false;
        } else if (k == "envelope_cycles") {
            if (!(in >> res.envelopeCycles))
                return false;
        } else if (k == "envelope_peak_w_bits") {
            if (!(in >> peakBits))
                return false;
            uint64_t bits = 0;
            if (std::sscanf(peakBits.c_str(), "%" SCNx64, &bits) != 1)
                return false;
            std::memcpy(&res.envelopePeakW, &bits,
                        sizeof res.envelopePeakW);
        } else if (k == "rows") {
            if (!(in >> rows))
                return false;
            break;
        } else {
            return false;
        }
    }
    if (rows != res.injections.size())
        return false;
    res.envelopePresent = envPresent != 0;
    for (InjectionResult &ir : res.injections) {
        uint32_t site;
        uint64_t cycle;
        unsigned outcome, applied, kind, escape;
        std::string pBits;
        FaultResult &r = ir.r;
        if (!(in >> k >> site >> cycle >> outcome >> applied >> kind >>
              r.divergenceCycle >> r.instrIndex >> r.pc >>
              r.gateCycles >> r.instructionsRetired >> pBits >>
              r.peakCycle >> r.traceCycles >> escape >> r.escapeCycle))
            return false;
        if (k != "row" || site != ir.siteIndex || cycle != ir.cycle)
            return false;
        if (outcome > unsigned(Outcome::Hang) ||
            kind > unsigned(cosim::Divergence::Kind::Halt))
            return false;
        r.outcome = Outcome(outcome);
        r.applied = applied != 0;
        r.kind = cosim::Divergence::Kind(kind);
        r.envelopeEscape = escape != 0;
        uint32_t bits = 0;
        if (std::sscanf(pBits.c_str(), "%" SCNx32, &bits) != 1)
            return false;
        std::memcpy(&r.peakPowerW, &bits, sizeof r.peakPowerW);
    }
    return true;
}
/// @}

void
aggregate(CampaignResult &res)
{
    res.summaries.assign(res.sites.size(), SiteSummary{});
    for (size_t s = 0; s < res.sites.size(); ++s)
        res.summaries[s].siteIndex = uint32_t(s);
    for (const InjectionResult &ir : res.injections) {
        SiteSummary &sum = res.summaries[ir.siteIndex];
        switch (ir.r.outcome) {
          case Outcome::Masked: ++sum.masked; ++res.masked; break;
          case Outcome::Sdc: ++sum.sdc; ++res.sdc; break;
          case Outcome::Crash: ++sum.crash; ++res.crash; break;
          case Outcome::Hang: ++sum.hang; ++res.hang; break;
        }
        if (!ir.r.applied) {
            ++sum.notApplied;
            ++res.notApplied;
        }
        if (ir.r.envelopeEscape) {
            ++sum.escapes;
            ++res.escapes;
        }
        if (ir.r.peakPowerW > sum.maxPeakPowerW)
            sum.maxPeakPowerW = ir.r.peakPowerW;
    }
}

} // namespace

std::vector<Site>
campaignSites(const Netlist &nl, const msp::System &sys,
              const CampaignOptions &opts)
{
    std::vector<Site> sites = flopSites(nl);
    if (opts.maxFlopSites && sites.size() > opts.maxFlopSites) {
        // Even subsample of the seqGates order: stable under the cap,
        // spread across the whole flop population (every module).
        std::vector<Site> picked;
        picked.reserve(opts.maxFlopSites);
        for (size_t j = 0; j < opts.maxFlopSites; ++j)
            picked.push_back(sites[j * sites.size() /
                                   opts.maxFlopSites]);
        sites.swap(picked);
    }
    const Memory &mem = sys.memory();
    fuzz::Rng rng(fuzz::Rng::deriveStream(opts.seed, 2ull << 40));
    for (size_t j = 0; j < opts.ramSites; ++j) {
        Site s;
        s.kind = SiteKind::Ram;
        s.addr = mem.ramBase() +
                 2 * rng.below(uint32_t(mem.ramSize() / 2));
        s.bit = uint8_t(rng.below(16));
        sites.push_back(s);
    }
    return sites;
}

std::vector<uint64_t>
siteInjectionCycles(uint64_t seed, uint32_t site_index,
                    unsigned cycles_per_site, uint64_t golden_cycles)
{
    fuzz::Rng rng(
        fuzz::Rng::deriveStream(seed, (1ull << 40) + site_index));
    std::vector<uint64_t> cycles(cycles_per_site);
    for (uint64_t &c : cycles)
        c = rng.below(uint32_t(golden_cycles));
    return cycles;
}

uint64_t
campaignCacheKey(const CellLibrary &lib, const isa::Image &image,
                 const CampaignOptions &opts)
{
    uint64_t h = kFnvOffset;
    hashString(h, kCacheMagic);
    // Library by content (the batch layer's rule: a calibration edit
    // must invalidate everything).
    hashString(h, lib.name());
    hashDouble(h, lib.vdd());
    hashDouble(h, lib.wireCapPerFanoutF());
    for (size_t k = 0; k < kNumCellKinds; ++k) {
        const CellParams &p = lib.params(CellKind(k));
        hashDouble(h, p.inputCapF);
        hashDouble(h, p.riseEnergyJ);
        hashDouble(h, p.fallEnergyJ);
        hashDouble(h, p.leakageW);
        hashDouble(h, p.areaUm2);
        hashDouble(h, p.clkPinEnergyJ);
    }
    // Result-affecting campaign options. jobs, packed and evalMode
    // are excluded: the determinism contract makes them
    // classification-invariant (and the tests lockstep them).
    hashU64(h, opts.seed);
    hashU64(h, opts.cyclesPerSite);
    hashU64(h, opts.maxFlopSites);
    hashU64(h, opts.ramSites);
    hashU64(h, opts.portIn);
    hashU64(h, opts.goldenMaxCycles);
    hashU64(h, opts.hangCycles);
    hashDouble(h, opts.freqHz);
    hashU64(h, opts.withEnvelope ? 1 : 0);
    if (opts.withEnvelope) {
        hashDouble(h, opts.analysis.freqHz);
        hashU64(h, opts.analysis.maxTotalCycles);
        hashU64(h, opts.analysis.inputDependentLoopBound);
        opts.analysis.scenario.hashInto(h);
    }
    auto words = image.flatten();
    hashU64(h, words.size());
    for (const auto &[addr, word] : words) {
        hashU64(h, addr);
        hashU64(h, word);
    }
    return h;
}

CampaignResult
runCampaign(const CellLibrary &lib, const isa::Image &image,
            const CampaignOptions &opts)
{
    Clock::time_point t0 = Clock::now();
    CampaignResult res;
    if (opts.cyclesPerSite == 0) {
        res.error = "cyclesPerSite must be nonzero";
        return res;
    }

    msp::System sys(lib);
    res.sites = campaignSites(sys.netlist(), sys, opts);
    res.siteNames.reserve(res.sites.size());
    for (const Site &s : res.sites)
        res.siteNames.push_back(siteName(sys.netlist(), s));
    if (res.sites.empty()) {
        res.error = "no injection sites";
        return res;
    }

    const bool useCache = !opts.cacheDir.empty();
    fs::path entry;
    if (useCache) {
        fs::create_directories(opts.cacheDir);
        entry = cachePath(opts.cacheDir,
                          campaignCacheKey(lib, image, opts));
    }

    // Golden (unfaulted) lockstep run: defines the injection-cycle
    // space and the hang budget, and gates the whole campaign.
    cosim::Options gopts;
    gopts.maxCycles = opts.goldenMaxCycles;
    gopts.portIn = opts.portIn;
    gopts.evalMode = opts.evalMode;
    cosim::Result golden = cosim::run(sys, image, gopts);
    if (!golden.ok) {
        res.error = "golden run diverges (" +
                    std::string(cosim::divergenceKindName(
                        golden.divergence.kind)) +
                    "); campaign refused";
        return res;
    }
    res.goldenCycles = golden.gateCycles;
    res.goldenInstructions = golden.instructionsRetired;
    res.hangCycles = opts.hangCycles ? opts.hangCycles
                                     : 4 * res.goldenCycles + 64;

    // Task list: site-major (site, cycle) rows, derived from the seed
    // alone -- identical for every jobs/packed/evalMode combination.
    res.injections.resize(res.sites.size() * opts.cyclesPerSite);
    for (size_t s = 0; s < res.sites.size(); ++s) {
        std::vector<uint64_t> cycles = siteInjectionCycles(
            opts.seed, uint32_t(s), opts.cyclesPerSite,
            res.goldenCycles);
        for (unsigned c = 0; c < opts.cyclesPerSite; ++c) {
            InjectionResult &ir =
                res.injections[s * opts.cyclesPerSite + c];
            ir.siteIndex = uint32_t(s);
            ir.cycle = cycles[c];
        }
    }

    if (useCache && loadCached(entry, res)) {
        res.cacheHit = true;
        res.ok = true;
        aggregate(res);
        res.wallSeconds = secondsSince(t0);
        return res;
    }

    // Optional X-based envelope for escape detection (failure is a
    // note, not a campaign error: classification proceeds without).
    peak::Envelope envelope;
    if (opts.withEnvelope) {
        peak::Options aopts = opts.analysis;
        aopts.freqHz = opts.freqHz;
        aopts.evalMode = opts.evalMode;
        aopts.recordEnvelope = true;
        peak::Report rep = peak::analyze(sys, image, aopts);
        if (rep.ok && rep.envelope.present) {
            envelope = std::move(rep.envelope);
            res.envelopePresent = true;
            res.envelopeCycles = envelope.cycles();
            res.envelopePeakW = envelope.peakPowerW();
        } else {
            res.envelopeError =
                rep.error.empty() ? "envelope not recorded"
                                  : rep.error;
        }
    }

    RunOptions ropts;
    ropts.maxCycles = res.hangCycles;
    ropts.portIn = opts.portIn;
    ropts.evalMode = opts.evalMode;
    ropts.envelope = res.envelopePresent ? &envelope : nullptr;

    const size_t nTasks = res.injections.size();
    const size_t groupSize = opts.packed ? PackedSimulator::kLanes : 1;
    const size_t nGroups = (nTasks + groupSize - 1) / groupSize;
    std::atomic<size_t> nextGroup{0};

    auto workerFn = [&]() {
        std::unique_ptr<msp::System> wsys;
        std::unique_ptr<power::PowerContext> wctx;
        for (;;) {
            size_t g = nextGroup.fetch_add(1);
            if (g >= nGroups)
                break;
            if (!wsys) {
                wsys = std::make_unique<msp::System>(lib);
                wctx = std::make_unique<power::PowerContext>(
                    wsys->netlist(), opts.freqHz);
            }
            RunOptions wopts = ropts;
            wopts.powerCtx = wctx.get();
            size_t base = g * groupSize;
            size_t count = std::min(groupSize, nTasks - base);
            if (opts.packed) {
                std::array<std::vector<Injection>,
                           PackedSimulator::kLanes>
                    faults;
                for (size_t i = 0; i < count; ++i) {
                    const InjectionResult &ir =
                        res.injections[base + i];
                    faults[i].push_back(
                        {res.sites[ir.siteIndex], ir.cycle});
                }
                std::array<FaultResult, PackedSimulator::kLanes> out =
                    runFaultedPacked(*wsys, image, faults, wopts);
                for (size_t i = 0; i < count; ++i)
                    res.injections[base + i].r = std::move(out[i]);
            } else {
                for (size_t i = 0; i < count; ++i) {
                    InjectionResult &ir = res.injections[base + i];
                    std::vector<Injection> faults{
                        {res.sites[ir.siteIndex], ir.cycle}};
                    ir.r = runFaulted(*wsys, image, faults, wopts);
                    ir.r.report.clear(); // campaign rows carry none
                }
            }
        }
    };

    unsigned jobs = opts.jobs < 1 ? 1 : opts.jobs;
    if (jobs > nGroups)
        jobs = unsigned(nGroups ? nGroups : 1);
    if (jobs <= 1) {
        workerFn();
    } else {
        std::vector<std::thread> pool;
        for (unsigned t = 0; t + 1 < jobs; ++t)
            pool.emplace_back(workerFn);
        workerFn();
        for (std::thread &t : pool)
            t.join();
    }

    res.ok = true;
    aggregate(res);
    if (useCache && res.envelopeError.empty())
        storeCached(entry, res);
    res.wallSeconds = secondsSince(t0);
    return res;
}

} // namespace fault
} // namespace ulpeak
