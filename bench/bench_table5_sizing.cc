/**
 * @file
 * Experiments E10/E11 -- Tables 5.1 and 5.2: percentage reduction in
 * harvester area and battery volume vs each baseline technique, per
 * processor contribution fraction, averaged over all benchmarks --
 * plus the paper's worked real-system example (the eZ430-RF2500-SEH
 * node: 32.6 cm^2 harvester, 6.95 mm^3 battery).
 */

#include "bench/bench_util.hh"
#include "peak/peak_analysis.hh"
#include "sizing/sizing.hh"

using namespace ulpeak;
using namespace ulpeak::bench_util;

int
main()
{
    msp::System sys(CellLibrary::tsmc65Like());

    auto dt = baseline::designToolRating(sys.netlist(), kFreq65);
    baseline::StressmarkConfig pcfg;
    auto stressP = baseline::generateStressmark(sys, kFreq65, pcfg);
    baseline::StressmarkConfig ecfg;
    ecfg.objective = baseline::StressObjective::AveragePower;
    auto stressE = baseline::generateStressmark(sys, kFreq65, ecfg);

    // Per-benchmark requirements.
    std::vector<double> xP, xE, gbP, gbE;
    for (const auto &b : bench430::allBenchmarks()) {
        isa::Image img = b.assembleImage();
        auto prof = baseline::profile(sys, img, b.makeInputs(8, 99),
                                      kFreq65);
        peak::Options opts;
        peak::Report x = peak::analyze(sys, img, opts);
        xP.push_back(x.peakPowerW);
        xE.push_back(x.npeJPerCycle);
        gbP.push_back(prof.gbPeakPowerW);
        gbE.push_back(prof.gbNpeJPerCycle);
    }

    const double fractions[] = {0.10, 0.25, 0.50, 0.75, 0.90, 1.00};

    auto table = [&](const char *title,
                     const std::vector<double> &ours,
                     const std::vector<double> &gb, double stress,
                     double design,
                     double (*reduce)(double, double, double)) {
        printHeader(title);
        std::printf("%-12s", "baseline");
        for (double f : fractions)
            std::printf(" %6.0f%%", f * 100);
        std::printf("\n");
        const char *names[3] = {"GB-Input", "GB-Stress", "Design Tool"};
        for (int row = 0; row < 3; ++row) {
            std::printf("%-12s", names[row]);
            for (double f : fractions) {
                double sum = 0.0;
                for (size_t i = 0; i < ours.size(); ++i) {
                    double base = row == 0
                                      ? gb[i]
                                      : (row == 1 ? stress : design);
                    sum += reduce(base, ours[i], f);
                }
                std::printf(" %6.2f", sum / double(ours.size()));
            }
            std::printf("\n");
        }
    };

    table("Table 5.1: % harvester-area reduction vs processor "
          "peak-power fraction",
          xP, gbP, stressP.gbPeakPowerW, dt.peakPowerW,
          sizing::harvesterAreaReductionPct);
    table("Table 5.2: % battery-volume reduction vs processor "
          "energy fraction",
          xE, gbE, stressE.gbNpeJPerCycle, dt.npeJPerCycle,
          sizing::batteryVolumeReductionPct);

    printHeader("worked example: eZ430-RF2500-SEH-class node "
                "(harvester 32.6 cm^2, battery 6.95 mm^3)");
    {
        double f = 1.0;
        double harvester = 32.6, battery = 6.95;
        const char *names[3] = {"GB-Input", "GB-Stress", "Design Tool"};
        for (int row = 0; row < 3; ++row) {
            double sumA = 0.0, sumV = 0.0;
            for (size_t i = 0; i < xP.size(); ++i) {
                double baseP = row == 0 ? gbP[i]
                               : (row == 1 ? stressP.gbPeakPowerW
                                           : dt.peakPowerW);
                double baseE = row == 0 ? gbE[i]
                               : (row == 1 ? stressE.gbNpeJPerCycle
                                           : dt.npeJPerCycle);
                sumA += sizing::harvesterAreaReductionPct(baseP, xP[i],
                                                          f);
                sumV += sizing::batteryVolumeReductionPct(baseE, xE[i],
                                                          f);
            }
            sumA /= double(xP.size());
            sumV /= double(xP.size());
            std::printf("designed with %-12s: harvester area saved "
                        "%.2f cm^2, battery volume saved %.2f mm^3\n",
                        names[row], harvester * sumA / 100.0,
                        battery * sumV / 100.0);
        }
    }

    printHeader("Tables 1.1/1.2 data (sizing library)");
    for (const auto &bt : sizing::batteryTypes())
        std::printf("battery %-12s %6.0f J/g  %5.3f MJ/L\n",
                    bt.name.c_str(), bt.specificEnergyJPerG,
                    bt.energyDensityMJPerL);
    for (const auto &ht : sizing::harvesterTypes())
        std::printf("harvester %-22s %.3g W/cm^2\n", ht.name.c_str(),
                    ht.powerDensityWPerCm2);
    return 0;
}
