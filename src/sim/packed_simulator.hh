/**
 * @file
 * Bit-parallel 64-pattern gate-level simulator.
 *
 * PackedSimulator evaluates the same netlist, cycle semantics and
 * Algorithm-2 energy assignment as the scalar Simulator, but over 64
 * independent input patterns at once: every gate's value is a V64
 * (a 64-bit value plane + a 64-bit known plane), every activity flag
 * a 64-bit lane mask, and one and/or/xor/not/mux costs a handful of
 * word ops for all 64 patterns (src/logic/v64.hh).
 *
 * Lane-identity invariant: lane i of a PackedSimulator run is
 * bit-identical -- per-cycle gate values, activity flags, actual /
 * bound / behavioral / per-module energies, and the full-state hash --
 * to an independent scalar Simulator run driven with lane i's inputs
 * (either EvalMode; the two scalar kernels are themselves bit-identical
 * by contract). This holds by construction:
 *
 *  - the V64 ops are lane-exact to the scalar v4 ops, so any cell
 *    composition evaluates lane-exactly;
 *  - activity masks compute the scalar activity rule per lane
 *    (value-changed, X-propagation through active fanins, and the
 *    sequential provable-hold analysis);
 *  - per-lane energy accumulators sum the same floating-point terms
 *    in the same ascending-gate-id order as the scalar kernel's
 *    canonicalized active list, so even float rounding matches.
 *
 * tests/test_packed_sim.cc and the ulfuzz packed property enforce the
 * invariant on fuzz-generated netlists and programs.
 *
 * The kernel is an oblivious full sweep of the level-bucketed schedule
 * (the packed analogue of EvalMode::FullSweep): event-driven worklists
 * pay off when few gates change, but across 64 patterns the union of
 * changed gates approaches the whole cone, so the oblivious sweep wins
 * and stays branch-free. Beyond the embarrassingly multi-pattern
 * consumers (ulfuzz lane sweeps, batched concrete trace validation,
 * fault campaigns), the symbolic engine's packed frontier mode
 * (SymbolicConfig::packedExplore) drives independent pending
 * execution paths through the lanes: loadLaneState / extractLaneState
 * transpose scalar Simulator::Snapshots into and out of a lane, and
 * forceLane / predictSeqValueLane give the engine its per-lane fork
 * machinery -- each backed by the lane-identity invariant above, so a
 * lane's continuation is bit-identical to the scalar restore-and-run.
 */

#ifndef ULPEAK_SIM_PACKED_SIMULATOR_HH
#define ULPEAK_SIM_PACKED_SIMULATOR_HH

#include <array>
#include <functional>
#include <vector>

#include "logic/v64.hh"
#include "netlist/netlist.hh"
#include "sim/simulator.hh"

namespace ulpeak {

class PackedSimulator {
  public:
    static constexpr unsigned kLanes = 64;

    explicit PackedSimulator(const Netlist &nl);

    const Netlist &netlist() const { return *nl_; }

    /// @name Hook registration (packed behavioral blocks)
    /// @{
    using HookFn = std::function<void(PackedSimulator &)>;
    using EdgeFn = std::function<void(PackedSimulator &)>;
    void setHookFn(uint32_t hook_id, HookFn fn);
    void addEdgeFn(EdgeFn fn);
    /// @}

    /// @name Driving inputs (legal during a hook or before step())
    /// @{
    void setInput(GateId g, V64 v);
    void setInputLane(GateId g, unsigned lane, V4 v);
    /** The same scalar value on every lane of every bus bit. */
    void setInputBusAll(const std::vector<GateId> &bus, Word16 w);
    /** Per-lane words: bus bit b of lane l takes lanes[l].bit(b). */
    void setInputBusLanes(const std::vector<GateId> &bus,
                          const std::array<Word16, kLanes> &lanes);
    /// @}

    /// @name Reading values
    /// @{
    V64 value(GateId g) const { return V64(valV_[g], valK_[g]); }
    V4
    valueLane(GateId g, unsigned lane) const
    {
        return value(g).lane(lane);
    }
    /** Lanes in which @p g is active this cycle. */
    uint64_t activeMask(GateId g) const { return act_[g]; }
    Word16 readBusLane(const std::vector<GateId> &bus,
                       unsigned lane) const;
    /// @}

    /**
     * Per-lane single-event upsets: invert sequential gate @p g's
     * stored value in every *known* lane of @p lane_mask and mark
     * those lanes active (X lanes are untouched). Legal from the
     * cycle driver, mirroring Simulator::injectSeuFlip lane for lane
     * -- the lane-identity invariant extends to faulted runs. Returns
     * the mask of lanes actually flipped.
     */
    uint64_t injectSeuFlip(GateId g, uint64_t lane_mask);

    /** Simulate one clock cycle on all 64 lanes; the driver sets
     *  primary inputs (same position in the cycle as Simulator). */
    void step(const std::function<void(PackedSimulator &)> &driver =
                  nullptr);

    uint64_t cycle() const { return cycle_; }

    /// @name Per-lane per-cycle energy (valid after step())
    /// @{
    double actualEnergyJ(unsigned lane) const { return actual_[lane]; }
    double boundEnergyJ(unsigned lane) const { return bound_[lane]; }
    double
    behavioralEnergyJ(unsigned lane) const
    {
        return behavioral_[lane];
    }
    double
    moduleBoundEnergyJ(unsigned lane, ModuleId m) const
    {
        return moduleEnergy_[size_t(m) * kLanes + lane];
    }
    /** Lane @p lane's per-module split, shaped like the scalar
     *  Simulator::moduleBoundEnergyJ() vector. */
    std::vector<double> moduleBoundEnergyLaneJ(unsigned lane) const;
    /** Add behavioral energy @p j to every lane in @p lane_mask. */
    void addBehavioralEnergyJ(double j, ModuleId top_module,
                              uint64_t lane_mask);
    /// @}

    /** Per-lane FNV-1a over the complete inter-step state, identical
     *  to the scalar Simulator::hashFullState() of that lane's run. */
    uint64_t hashLaneState(unsigned lane) const;

    /// @name Lane <-> scalar snapshot transpose (symbolic frontier)
    /// @{
    /**
     * Install a scalar Simulator::Snapshot into lane @p lane: gate
     * values, activity flags and sequential load history, exactly the
     * state Simulator::restore reinstates (previous-cycle planes are
     * dead across a load for the same reason they are absent from
     * Snapshot: step() rebuilds them before any read). Legal between
     * steps. The next step()'s edge functions run against the loaded
     * values, mirroring the scalar restore-then-step sequence, so the
     * caller must have pre-stepped the simulator once (cycle() > 0)
     * and must inhibit the edge effects of lanes it has not loaded.
     */
    void loadLaneState(unsigned lane, const Simulator::Snapshot &s);
    /**
     * Transpose lane @p lane back into a scalar snapshot stamped with
     * @p cycle (the lane's own cycle count -- the packed simulator's
     * global cycle() says how many sweeps ran, not how old any lane
     * is). For a lane loaded from a snapshot and stepped N times the
     * result is byte-identical to the scalar restore-and-step-N
     * Simulator::snapshot(): values per lane(), activity as 0/1 bytes
     * zero-padded to the scalar active_ array's 8-byte-aligned size,
     * load history as 0/1 bytes.
     */
    Simulator::Snapshot extractLaneState(unsigned lane,
                                         uint64_t cycle) const;
    /// @}

    /**
     * Per-lane Simulator::forceValue: overwrite gate @p g's value in
     * lane @p lane only. Same contract -- sound only for narrowing an
     * X to a feasible value, on sequential outputs or Input-kind
     * gates (the oblivious sweep recomputes anything scheduled). Like
     * the scalar force, the gate's activity flag is left as the
     * sequential update computed it.
     */
    void forceLane(GateId g, unsigned lane, V4 v);
    void forceBusLane(const std::vector<GateId> &bus, unsigned lane,
                      Word16 w);

    /** Per-lane Simulator::predictSeqValue: the value sequential gate
     *  @p g will take at the next edge in lane @p lane, from the
     *  lane's current stable values. */
    V4 predictSeqValueLane(GateId g, unsigned lane) const;

  private:
    void evalSeqGate(size_t i);
    void evalNode(uint32_t node);
    void accumulateEnergy();

    const Netlist *nl_;
    const FlatNetlist *flat_;
    /// @name Per-gate planes and lane masks
    /// @{
    std::vector<uint64_t> valV_, valK_;
    std::vector<uint64_t> prevV_, prevK_;
    std::vector<uint64_t> act_, actPrev_;
    /// @}
    /** Per seq gate: lanes whose previous edge actually loaded. */
    std::vector<uint64_t> loadedPrevEdge_;
    std::vector<ModuleId> topModuleOf_;

    std::vector<HookFn> hookFns_;
    std::vector<EdgeFn> edgeFns_;

    std::array<double, kLanes> actual_{};
    std::array<double, kLanes> bound_{};
    std::array<double, kLanes> behavioral_{};
    std::vector<double> moduleEnergy_; ///< [module * kLanes + lane]
    uint64_t cycle_ = 0;
};

} // namespace ulpeak

#endif // ULPEAK_SIM_PACKED_SIMULATOR_HH
