/**
 * @file
 * The differential properties the fuzzing subsystem checks
 * end-to-end, packaged so the `ulfuzz` tool and the ctest harnesses
 * exercise the exact same code paths:
 *
 *  1. ISS <-> gate-level lockstep equivalence on random programs
 *     (src/cosim -- invoked directly via cosim::run);
 *  2. EvalMode::FullSweep <-> EvalMode::EventDriven bit-identity on
 *     random netlists: per-cycle gate values, activity lists, and all
 *     energy accumulators must be exactly equal every cycle;
 *  3. symbolic exploration determinism: peak::analyze with 1 worker
 *     thread and with K worker threads must report bit-identical
 *     peak power / peak energy / NPE / cycle counts (scheduling
 *     independence), as must the two EvalMode kernels end-to-end.
 *
 * Each check returns a PropertyResult whose detail names the first
 * mismatch precisely enough to debug from the printed seed alone.
 */

#ifndef ULPEAK_FUZZ_PROPERTIES_HH
#define ULPEAK_FUZZ_PROPERTIES_HH

#include <string>

#include "fuzz/netlist_gen.hh"
#include "fuzz/rng.hh"
#include "isa/assembler.hh"
#include "msp/cpu.hh"
#include "scenario/scenario.hh"
#include "sim/simulator.hh"

namespace ulpeak {
namespace fuzz {

struct PropertyResult {
    bool ok = true;
    std::string detail; ///< first mismatch, human-readable
};

/**
 * Property 2: generate a random netlist and input schedule from
 * @p seed, run FullSweep and EventDriven simulators in lockstep for
 * @p cycles, compare values / activity / energies after every cycle.
 * Also locksteps a third simulator restored from a mid-run snapshot
 * to pin snapshot/restore transparency in both kernels.
 */
PropertyResult kernelEquivalenceCheck(uint64_t seed,
                                      const NetlistGenOptions &opts,
                                      unsigned cycles);

/**
 * Property 3a: peak::analyze on @p image with 1 thread vs
 * @p threads threads; every scheduling-independent report field must
 * be bit-identical.
 */
PropertyResult symDeterminismCheck(msp::System &sys,
                                   const isa::Image &image,
                                   unsigned threads);

/**
 * Property 3b: peak::analyze on @p image under EvalMode::EventDriven
 * vs EvalMode::FullSweep; reports must be bit-identical including the
 * flattened per-cycle trace.
 *
 * Both 3a and 3b run with envelope recording on and compare the
 * envelope power trace and windowed peak-energy curves byte for byte.
 */
PropertyResult evalModeReportCheck(msp::System &sys,
                                   const isa::Image &image);

/**
 * Property 4: the per-cycle peak power envelope bounds every concrete
 * execution. Analyze @p image with envelope recording, then run it
 * concretely @p concrete_runs times with seeded random per-cycle port
 * schedules and check each concrete power trace lies under the
 * envelope at every cycle (validateTraceBound's length-aware
 * semantics: a concrete run outliving the envelope is a violation,
 * a concrete run halting earlier is not). Programs the symbolic
 * engine rejects (unbounded loops, indirect X jumps) pass vacuously.
 */
PropertyResult envelopeBoundCheck(msp::System &sys,
                                  const isa::Image &image, Rng &rng,
                                  unsigned concrete_runs = 3);

/**
 * Property 6: packed-kernel lane identity. Generate a random netlist
 * from @p seed and 64 independent input schedules (one per lane,
 * derived streams), run one PackedSimulator against 64 scalar
 * Simulators in lockstep for @p cycles, and require every lane to be
 * bit-identical to its scalar run after every cycle: gate values,
 * activity, actual / bound / per-module energies, and the full-state
 * hash. Scalar lanes alternate EvalMode so both kernels anchor the
 * comparison.
 */
PropertyResult packedKernelEquivalenceCheck(uint64_t seed,
                                            const NetlistGenOptions &opts,
                                            unsigned cycles);

/**
 * Property 7: packed envelope batching. Analyze @p image with envelope
 * recording, then run one 64-lane packed batch of seeded random port
 * schedules: every lane must halt within the envelope length + slack
 * and lie under the envelope at every cycle (validateTraceBound), and
 * @p verify_lanes of the lanes are re-run on the scalar runConcrete
 * path and must match float-for-float (trace, halt flag, total
 * energy). Programs the symbolic engine rejects pass vacuously.
 */
PropertyResult packedEnvelopeBatchCheck(msp::System &sys,
                                        const isa::Image &image,
                                        Rng &rng,
                                        unsigned verify_lanes = 2);

/**
 * Property 8a: faulted packed-kernel lane identity. The property-6
 * lockstep (one PackedSimulator vs 64 scalar Simulators on a random
 * netlist, 64 derived input schedules, scalar lanes alternating
 * EvalMode) with per-lane random SEU bit-flips injected into random
 * sequential gates at random cycles through the in-driver injection
 * API (Simulator::injectSeuFlip vs PackedSimulator::injectSeuFlip).
 * Requires bit-identical per-lane state after every cycle *and*
 * identical applied/not-applied (X-bit no-op) decisions per flip.
 * Netlists without sequential gates degrade to the fault-free check.
 */
PropertyResult faultedPackedEquivalenceCheck(
    uint64_t seed, const NetlistGenOptions &opts, unsigned cycles);

/**
 * Property 8b: fault-campaign determinism. One small campaign over
 * @p image run three ways -- scalar 1 job, packed 1 job, packed
 * @p threads jobs -- must agree on every classification row
 * (FaultResult::sameClassification), every aggregate, and the golden
 * run metadata. Programs whose golden run the campaign refuses
 * (cosim divergence) pass vacuously, but the refusal must be
 * identical across all three configurations.
 */
PropertyResult faultCampaignDeterminismCheck(const isa::Image &image,
                                             uint64_t seed,
                                             unsigned threads);

/** A random port-constraint scenario (static pattern or repeating
 *  schedule) drawn from @p rng -- the input generator of
 *  scenarioDominanceCheck, exposed for tests. */
scenario::Scenario randomScenario(Rng &rng);

/**
 * Property 5: scenario dominance. A constrained scenario admits a
 * subset of the unconstrained executions, so every bound it produces
 * must lie at or under the unconstrained one: peak power, peak
 * energy, and the envelope pointwise (the envelope may also only get
 * shorter). Additionally every concrete run *obeying* the scenario
 * (port words drawn per-cycle inside the scenario's constraint) must
 * lie under the scenario's own envelope, and the constrained
 * analysis must stay 1-vs-K-thread deterministic (this exercises the
 * schedule-phase dedup keys under the sharded/stealing exploration
 * core). Programs either analysis rejects pass vacuously.
 * Comparisons allow a ~1e-9 relative slack: per-cycle bound sums are
 * floating-point and the constrained tree sums fewer, smaller terms.
 */
PropertyResult scenarioDominanceCheck(msp::System &sys,
                                      const isa::Image &image,
                                      Rng &rng, unsigned threads = 4,
                                      unsigned concrete_runs = 2);

/** A random operating-mode (DVFS) scenario drawn from @p rng: 2-3
 *  named modes with random (vdd, freq), a repeating mode schedule,
 *  and (30% of the time) a port constraint riding along so the
 *  mixed-radix dedup phases get exercised -- the input generator of
 *  modeDominanceCheck, exposed for tests. */
scenario::Scenario randomModeScenario(Rng &rng);

/**
 * Property 8: operating-mode (DVFS) dominance. From a random mode
 * scenario, derive a "lowered" twin whose every mode has (vdd, freq)
 * scaled by factors <= 1 (mode 0 strictly). Lowering an operating
 * point changes only how cycles are *priced*, never which executions
 * exist, so the two analyses explore identical trees and the lowered
 * report must only tighten: peak power / peak energy at or under the
 * base (1e-6 relative slack: per-cycle powers are float-narrowed
 * before the path-energy sum crosses a freq * 1/freq round-trip, and
 * the two analyses round independently), and the envelope pointwise
 * at or under with NO
 * slack and identical length (per-cycle powers scale by exact IEEE
 * multiplications, which are monotone). The lowered analysis must
 * also stay bit-identical across 1-vs-K threads, both EvalModes and
 * both snapshot modes (mode phases join the dedup keys), and
 * mode-obeying concrete runs (ConcreteRunOptions::modeSchedule built
 * from the scenario) must stay under the mode-priced envelope.
 * Programs either analysis rejects pass vacuously.
 */
PropertyResult modeDominanceCheck(msp::System &sys,
                                  const isa::Image &image, Rng &rng,
                                  unsigned threads = 4,
                                  unsigned concrete_runs = 2);

/**
 * Property 9: static-prune soundness (`ulfuzz --mode lint`). Under a
 * random port scenario (or, 1 in 4, the unconstrained default) the
 * analysis with Options::staticPrune on must report bit-identical
 * peak power, peak energy, NPE, max path length, envelope and
 * ever-active set to the unpruned run. Tree-shape statistics
 * (totalCycles / pathsExplored / dedupMerges) are deliberately NOT
 * compared against the unpruned run: when the prune cone needs
 * settle cycles (maxPruneDepth > 0) forks before the engage cycle
 * hash with the full basis while later identical states hash with
 * the pruned basis, so a cross-boundary dedup merge the unpruned run
 * finds can be legitimately missed. The pruned runs *among
 * themselves* (1 vs @p threads threads, EventDriven vs FullSweep,
 * Delta vs Full snapshots) share one basis and must be bit-identical
 * in every scheduling-independent field, statistics included.
 *
 * Independently, the static claims themselves are validated: the
 * core netlist must pass structural lint with zero errors, and a
 * concrete scenario-obeying run (port words drawn inside the
 * scenario constraint each cycle, like scenarioDominanceCheck) must
 * find every gate in lint::ConstAnalysis::pruneMask holding exactly
 * its proven value at every cycle >= the engage cycle the engine
 * would use (reset end + 1 + maxPruneDepth), and inactive on every
 * later cycle. Programs the symbolic engine rejects skip the report
 * comparison (the rejection must still be identical pruned vs
 * unpruned) but never the concrete validation.
 */
PropertyResult staticPruneCheck(msp::System &sys,
                                const isa::Image &image, Rng &rng,
                                unsigned threads = 4);

/**
 * Property 10: packed-frontier exploration identity (`ulfuzz --mode
 * packed-sym`). The analysis with Options::packedExplore -- pending
 * paths drained through the 64-lane bit-parallel kernel -- must
 * report bit-identical peak power, peak energy, NPE, cycle counts,
 * tree statistics, flattened trace, envelope, ever-active and
 * peak-active sets to the scalar exploration, under a random
 * configuration drawn from @p rng: unconstrained / random port
 * scenario / random DVFS mode schedule, Delta or Full snapshots, and
 * (1 in 4) staticPrune riding along. The packed runs among
 * themselves must additionally stay 1-vs-@p threads-thread
 * deterministic. Programs both engines reject pass vacuously, but
 * the rejection must be identical.
 */
PropertyResult packedExploreCheck(msp::System &sys,
                                  const isa::Image &image, Rng &rng,
                                  unsigned threads = 4);

} // namespace fuzz
} // namespace ulpeak

#endif // ULPEAK_FUZZ_PROPERTIES_HH
