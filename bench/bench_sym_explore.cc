/**
 * @file
 * Microbenchmark of the execution-tree exploration core: a
 * fork-heavy program (every round reads the X port and conditionally
 * bumps an accumulator, so path states stay distinct and the tree
 * grows quadratically in rounds) analyzed at 1..K worker threads.
 * Reports exploration wall time, forks (paths) per second and
 * simulated cycles per second per thread count, after checking that
 * every thread count reproduces the 1-thread peak numbers
 * bit-identically (the determinism contract timing must not skew).
 * Drops bench_out/BENCH_sym_explore.json (the checked-in
 * BENCH_sym_explore.json at the repository root additionally keeps
 * the pre-refactor shared-mutex baseline for the speedup claim).
 *
 * A packed-frontier section times the same exploration with
 * Options::packedExplore (the 64-lane batched sweep) against the
 * scalar engine at the same thread counts, after the same
 * bit-identity check, and reports the forks/sec ratio. Two optional
 * CI gates turn measurements into pass/fail exit codes:
 *  --min-ratio X    fail unless packed/scalar forks/sec at 1 thread
 *                   reaches X;
 *  --min-scaling X  fail unless the largest measured thread count
 *                   scales at least Xx over 1 thread -- auto-skipped
 *                   (with a note) when the host has fewer than 4
 *                   CPUs, where scaling numbers are noise.
 *
 * Usage: bench_sym_explore [branch_rounds] [reps] [max_threads]
 *                          [--min-ratio X] [--min-scaling X]
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "peak/peak_analysis.hh"

namespace ulpeak {
namespace {

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** A program whose exploration tree is wide and whose per-node runs
 *  are short: rounds of port-dependent branches over a live
 *  accumulator, the worst case for fork (snapshot + dedup)
 *  throughput. After round i the accumulator holds one of i+1
 *  values, so states neither explode exponentially nor collapse into
 *  one: the tree has ~rounds^2/2 nodes, each a few cycles long. */
std::string
forkStressSource(unsigned rounds)
{
    std::string body = "        mov #0, r4\n";
    for (unsigned i = 0; i < rounds; ++i) {
        std::string skip = "fs_skip_" + std::to_string(i);
        body += "        mov &PIN, r5\n"
                "        and #1, r5\n"
                "        jz " + skip + "\n"
                "        add #1, r4\n" +
                skip + ":\n";
    }
    body += "        mov r4, &OUT\n";
    return bench430::wrapBenchmarkBody(body);
}

} // namespace
} // namespace ulpeak

int
main(int argc, char **argv)
{
    using namespace ulpeak;
    unsigned positional[3] = {32, 3, 8};
    int npos = 0;
    double minRatio = 0.0, minScaling = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--min-ratio") && i + 1 < argc) {
            minRatio = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--min-scaling") &&
                   i + 1 < argc) {
            minScaling = std::atof(argv[++i]);
        } else if (npos < 3) {
            positional[npos++] = unsigned(std::atoi(argv[i]));
        }
    }
    unsigned rounds = positional[0];
    int reps = int(positional[1]);
    unsigned maxThreads = positional[2];
    unsigned hostCpus = std::thread::hardware_concurrency();

    bench_util::printHeader(
        "sym exploration core: fork throughput and thread scaling");

    msp::System sys(CellLibrary::tsmc65Like());
    isa::Image img = isa::assemble(forkStressSource(rounds));

    std::vector<unsigned> threadCounts;
    for (unsigned t = 1; t <= maxThreads; t *= 2)
        threadCounts.push_back(t);

    // Reference run: every other thread count must reproduce these
    // numbers bit for bit before its timing means anything.
    peak::Options ref;
    peak::Report refRep = peak::analyze(sys, img, ref);
    if (!refRep.ok) {
        std::fprintf(stderr, "reference analysis failed: %s\n",
                     refRep.error.c_str());
        return 1;
    }
    std::printf("fork stress: %u rounds, %u paths, %" PRIu64
                " cycles, %u dedup merges\n",
                rounds, refRep.pathsExplored, refRep.totalCycles,
                refRep.dedupMerges);

    // Fork memory traffic: bytes the delta snapshots actually stored
    // vs what full copies at every fork would have stored.
    peak::Options fullSnap;
    fullSnap.snapshotMode = sym::SnapshotMode::Full;
    peak::Report fullRep = peak::analyze(sys, img, fullSnap);
    double deltaRatio =
        refRep.snapshotBytesCopied
            ? double(refRep.snapshotBytesFull) /
                  double(refRep.snapshotBytesCopied)
            : 0.0;
    if (fullRep.peakPowerW != refRep.peakPowerW) {
        std::fprintf(stderr, "snapshot modes diverged\n");
        return 1;
    }
    std::printf("fork snapshots: delta %.2f MB vs full-copy %.2f MB "
                "(%.1fx less copied)\n\n",
                double(refRep.snapshotBytesCopied) / 1e6,
                double(refRep.snapshotBytesFull) / 1e6, deltaRatio);

    std::printf("%-8s %10s %12s %12s %8s\n", "threads", "wall [s]",
                "forks/sec", "cycles/sec", "scaling");

    std::string json =
        "{\n  \"bench\": \"sym_explore\",\n"
        "  \"branch_rounds\": " + std::to_string(rounds) +
        ",\n  \"host_cpus\": " + std::to_string(hostCpus) +
        ",\n  \"paths\": " + std::to_string(refRep.pathsExplored) +
        ",\n  \"total_cycles\": " +
        std::to_string(refRep.totalCycles) +
        ",\n  \"reps\": " + std::to_string(reps) +
        ",\n  \"snapshot_bytes_delta\": " +
        std::to_string(refRep.snapshotBytesCopied) +
        ",\n  \"snapshot_bytes_full\": " +
        std::to_string(refRep.snapshotBytesFull) +
        ",\n  \"runs\": [\n";

    double wall1 = 0.0;
    bool first = true;
    std::vector<std::pair<unsigned, double>> scalarWalls;
    for (unsigned t : threadCounts) {
        peak::Options opts;
        opts.numThreads = t;
        double best = 1e9;
        peak::Report rep;
        for (int rep_i = 0; rep_i < reps; ++rep_i) {
            auto t0 = std::chrono::steady_clock::now();
            rep = peak::analyze(sys, img, opts);
            best = std::min(best, seconds(t0));
        }
        if (!rep.ok || rep.peakPowerW != refRep.peakPowerW ||
            rep.peakEnergyJ != refRep.peakEnergyJ ||
            rep.npeJPerCycle != refRep.npeJPerCycle ||
            rep.pathsExplored != refRep.pathsExplored) {
            std::fprintf(stderr,
                         "threads=%u diverged from the 1-thread "
                         "reference -- timing aborted\n", t);
            return 1;
        }
        if (t == 1)
            wall1 = best;
        scalarWalls.emplace_back(t, best);
        double forksPerSec = double(rep.pathsExplored) / best;
        double cyclesPerSec = double(rep.totalCycles) / best;
        std::printf("%-8u %10.3f %12.0f %12.0f %7.2fx\n", t, best,
                    forksPerSec, cyclesPerSec, wall1 / best);
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"threads\": %u, \"wall_s\": %.4f, "
                      "\"forks_per_sec\": %.0f, \"cycles_per_sec\": "
                      "%.0f, \"scaling_vs_1t\": %.3f}",
                      t, best, forksPerSec, cyclesPerSec,
                      wall1 / best);
        json += std::string(first ? "" : ",\n") + buf;
        first = false;
    }
    json += "\n  ],\n";

    // Packed-frontier section: the same exploration drained through
    // the 64-lane batched sweep, same bit-identity bar, reported as a
    // forks/sec ratio against the scalar engine at the same thread
    // count.
    std::printf("\npacked frontier (64-lane batched sweeps):\n");
    std::printf("%-8s %10s %12s %10s %10s\n", "threads", "wall [s]",
                "forks/sec", "occupancy", "vs scalar");
    json += "  \"packed\": [\n";
    first = true;
    double packedRatio1t = 0.0;
    for (unsigned t : threadCounts) {
        if (t > 2 && t != threadCounts.back())
            continue; // 1, 2 and the widest point tell the story
        peak::Options opts;
        opts.numThreads = t;
        opts.packedExplore = true;
        double best = 1e9;
        peak::Report rep;
        for (int rep_i = 0; rep_i < reps; ++rep_i) {
            auto t0 = std::chrono::steady_clock::now();
            rep = peak::analyze(sys, img, opts);
            best = std::min(best, seconds(t0));
        }
        if (!rep.ok || rep.peakPowerW != refRep.peakPowerW ||
            rep.peakEnergyJ != refRep.peakEnergyJ ||
            rep.npeJPerCycle != refRep.npeJPerCycle ||
            rep.pathsExplored != refRep.pathsExplored) {
            std::fprintf(stderr,
                         "packed threads=%u diverged from the scalar "
                         "reference -- timing aborted\n", t);
            return 1;
        }
        double scalarBest = 0.0;
        for (auto &sw : scalarWalls)
            if (sw.first == t)
                scalarBest = sw.second;
        double forksPerSec = double(rep.pathsExplored) / best;
        double ratio = scalarBest / best;
        double occupancy =
            rep.packedSweeps
                ? double(rep.packedLaneCycles) /
                      (64.0 * double(rep.packedSweeps))
                : 0.0;
        if (t == 1)
            packedRatio1t = ratio;
        std::printf("%-8u %10.3f %12.0f %9.1f%% %9.2fx\n", t, best,
                    forksPerSec, 100.0 * occupancy, ratio);
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"threads\": %u, \"wall_s\": %.4f, "
                      "\"forks_per_sec\": %.0f, \"lane_occupancy\": "
                      "%.3f, \"ratio_vs_scalar\": %.3f}",
                      t, best, forksPerSec, occupancy, ratio);
        json += std::string(first ? "" : ",\n") + buf;
        first = false;
    }
    json += "\n  ]\n}\n";

    std::ofstream(bench_util::outDir() + "BENCH_sym_explore.json")
        << json;
    std::printf("\nwrote %sBENCH_sym_explore.json\n",
                bench_util::outDir().c_str());

    if (minRatio > 0.0 && packedRatio1t < minRatio) {
        std::fprintf(stderr,
                     "FAIL: packed/scalar forks/sec ratio %.2fx at 1 "
                     "thread below the --min-ratio gate %.2fx\n",
                     packedRatio1t, minRatio);
        return 1;
    }
    if (minScaling > 0.0) {
        if (hostCpus < 4) {
            std::printf("--min-scaling gate skipped: host has %u "
                        "CPUs (< 4), scaling numbers are noise\n",
                        hostCpus);
        } else {
            unsigned gateT = 1;
            double gateWall = wall1;
            for (auto &sw : scalarWalls)
                if (sw.first <= hostCpus && sw.first > gateT) {
                    gateT = sw.first;
                    gateWall = sw.second;
                }
            double scaling = gateWall > 0.0 ? wall1 / gateWall : 0.0;
            if (scaling < minScaling) {
                std::fprintf(stderr,
                             "FAIL: %u-thread scaling %.2fx below "
                             "the --min-scaling gate %.2fx\n",
                             gateT, scaling, minScaling);
                return 1;
            }
            std::printf("--min-scaling gate: %.2fx at %u threads "
                        ">= %.2fx\n", scaling, gateT, minScaling);
        }
    }
    return 0;
}
