#include "peak/validation.hh"

#include <algorithm>

namespace ulpeak {
namespace peak {

ActivityValidation
validateActivity(const std::vector<uint8_t> &x_based,
                 const std::vector<uint8_t> &input_based)
{
    ActivityValidation v;
    size_t n = std::min(x_based.size(), input_based.size());
    for (size_t g = 0; g < n; ++g) {
        bool x = x_based[g] != 0;
        bool c = input_based[g] != 0;
        if (x && c)
            ++v.commonGates;
        else if (x)
            ++v.xOnlyGates;
        else if (c)
            ++v.inputOnlyGates;
    }
    // The uncompared tail used to be dropped silently, which let a
    // truncated X-based vector still claim isSuperset: tally tail
    // entries into the one-sided buckets instead.
    v.lengthMismatch = x_based.size() != input_based.size();
    v.uncomparedGates =
        std::max(x_based.size(), input_based.size()) - n;
    for (size_t g = n; g < x_based.size(); ++g)
        if (x_based[g])
            ++v.xOnlyGates;
    for (size_t g = n; g < input_based.size(); ++g)
        if (input_based[g])
            ++v.inputOnlyGates;
    // Gates the X-based analysis has no entry for cannot be claimed
    // covered, toggled or not.
    v.isSuperset = v.inputOnlyGates == 0 &&
                   input_based.size() <= x_based.size();
    return v;
}

TraceValidation
validateTraceBound(const std::vector<float> &x_trace,
                   const std::vector<float> &c_trace,
                   double tolerance_w)
{
    TraceValidation v;
    size_t n = std::min(x_trace.size(), c_trace.size());
    double slackSum = 0.0;
    for (size_t c = 0; c < n; ++c) {
        double slack = double(x_trace[c]) - double(c_trace[c]);
        slackSum += slack;
        if (slack < -tolerance_w) {
            ++v.violations;
            if (v.firstViolationCycle == UINT64_MAX)
                v.firstViolationCycle = c;
            v.maxViolationW = std::max(v.maxViolationW, -slack);
        }
    }
    v.comparedCycles = n;
    v.lengthMismatch = x_trace.size() != c_trace.size();
    v.uncomparedTailCycles =
        std::max(x_trace.size(), c_trace.size()) - n;
    // A concrete tail beyond the bound trace has no bound at all:
    // every tail cycle is a violation (this used to be silently
    // truncated, masking real bound violations). The opposite tail
    // (bound longer than the concrete run) is sound.
    if (c_trace.size() > x_trace.size()) {
        for (size_t c = n; c < c_trace.size(); ++c) {
            ++v.violations;
            if (v.firstViolationCycle == UINT64_MAX)
                v.firstViolationCycle = c;
            v.maxViolationW =
                std::max(v.maxViolationW, double(c_trace[c]));
        }
    }
    v.meanSlackW = n ? slackSum / double(n) : 0.0;
    v.bounds = v.violations == 0;
    return v;
}

} // namespace peak
} // namespace ulpeak
