/**
 * @file
 * Deployment scenarios: first-class descriptions of the environment
 * an application is analyzed under.
 *
 * The paper's central observation is that peak power/energy
 * requirements are application-specific; its Section 5 goes one step
 * further and shows the bounds tighten again when the analyst knows
 * something about the deployment -- e.g. that a peripheral port is
 * strapped to ground, or that a sensor drives only 4 of 16 pins. A
 * Scenario captures exactly that knowledge:
 *
 *  - per-port input constraints: each port bit is either pinned to a
 *    concrete value or left unconstrained (X), optionally as a
 *    per-cycle schedule that repeats with a fixed period
 *    (generalizing power::ConcreteRunOptions::portSchedule from
 *    concrete words to three-valued patterns);
 *  - initial-memory constraints: RAM words with known contents at
 *    boot (calibration tables, pinned input buffers) instead of
 *    Algorithm 1's all-X initialization;
 *  - initial-register constraints: architectural registers with
 *    known boot values;
 *  - operating-mode (DVFS) schedules: named (vdd, freq) operating
 *    points on a repeating per-cycle schedule ("sleep at 0.6 V /
 *    8 MHz, burst at 1.0 V / 100 MHz"), so the analysis bounds the
 *    whole duty-cycled schedule instead of one fixed operating
 *    point. Cell energies scale as (vdd/vdd_lib)^2
 *    (CellLibrary::energyScale) and per-cycle power uses the mode's
 *    clock; the schedule phase joins the dedup keys exactly like the
 *    port-schedule phase does. Optional assertions ("power never
 *    exceeds X W while in mode M, after a W-cycle settling window
 *    following each switch into M") are evaluated against the
 *    envelope and reported by `ulpeak --modes` -- failures are
 *    findings, never analysis errors.
 *
 * The symbolic engine drives port bits from the scenario instead of
 * all-X (sym::SymbolicConfig::scenario), so every reported number --
 * peak power, peak energy, NPE, the envelope -- is a guaranteed bound
 * over exactly the executions the scenario admits. Constraining a
 * scenario can only shrink that execution set, so every bound is <=
 * the unconstrained one (the dominance property
 * fuzz::scenarioDominanceCheck pins end-to-end).
 *
 * Scenarios come from named presets (presetNames()) or JSON files
 * (fromJsonFile; `ulpeak --scenario NAME|file.json`), participate in
 * the batch result cache by content hash (hashInto), and one
 * analyzeBatch call can sweep a whole scenario x program matrix.
 */

#ifndef ULPEAK_SCENARIO_SCENARIO_HH
#define ULPEAK_SCENARIO_SCENARIO_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "logic/v4.hh"

namespace ulpeak {
namespace scenario {

/** One cycle's three-valued port constraint: bit i of @ref pinned
 *  set means the port bit is held at bit i of @ref value; clear
 *  means the bit is unconstrained (X under symbolic analysis). */
struct PortPattern {
    uint16_t pinned = 0;
    uint16_t value = 0;

    /** The Word16 the simulator is driven with (free bits X). */
    Word16
    word() const
    {
        return Word16(value, uint16_t(~pinned));
    }

    bool
    operator==(const PortPattern &o) const
    {
        return pinned == o.pinned && value == o.value;
    }

    /** Render as 16 chars, MSB first: '0'/'1' pinned, 'x' free. */
    std::string toString() const;
    /** Parse the toString() form; throws std::runtime_error. */
    static PortPattern parse(const std::string &s);
};

/** A named operating point: supply voltage and clock frequency.
 *  Switching energies scale with (vdd / vdd_lib)^2 and per-cycle
 *  power is computed with this mode's clock while the mode is in
 *  force (see power::PowerContext and CellLibrary::energyScale). */
struct OperatingMode {
    std::string name;    ///< report label; never hashes
    double vdd = 0.0;    ///< supply voltage [V], > 0
    double freqHz = 0.0; ///< clock frequency [Hz], > 0

    bool
    operator==(const OperatingMode &o) const
    {
        return name == o.name && vdd == o.vdd && freqHz == o.freqHz;
    }
};

/** An assertion checked against the analyzed envelope (post-analysis,
 *  never part of the bound itself): while the schedule is in mode
 *  @ref mode, the envelope must stay at or under @ref maxPowerW --
 *  except during the first @ref settleCycles cycles after each
 *  switch into the mode (the settling window of "a mode switch
 *  settles within W cycles"). Violations are reported as findings by
 *  `ulpeak --modes`, not as analysis failures. */
struct ModeAssertion {
    std::string mode;          ///< mode name the limit applies to
    double maxPowerW = 0.0;    ///< power ceiling [W], > 0
    uint64_t settleCycles = 0; ///< cycles exempt after each switch
};

struct Scenario {
    std::string name = "unconstrained";

    /** Static port constraint, used when @ref portSchedule is empty. */
    PortPattern port;
    /** Per-cycle port constraints, repeating with period size();
     *  cycle c (counted from the end of reset, like every trace and
     *  envelope) uses entry c % size(). Overrides @ref port. */
    std::vector<PortPattern> portSchedule;

    /** Concrete RAM words loaded before analysis begins (addr,
     *  words), narrowing Algorithm 1's all-X initial memory. */
    std::vector<std::pair<uint32_t, std::vector<uint16_t>>> ramInit;
    /** Concrete boot values of architectural registers (reg index
     *  4..15, value); applied once at the first post-reset cycle. */
    std::vector<std::pair<unsigned, uint16_t>> regInit;

    /** Named operating points. Empty means the analysis runs at the
     *  library vdd and the configured clock (the classic flow). */
    std::vector<OperatingMode> modes;
    /** Per-cycle mode indices into @ref modes, repeating with period
     *  size(); cycle c (post-reset, like @ref portSchedule) runs in
     *  modes[modeSchedule[c % size()]]. Empty with non-empty
     *  @ref modes means mode 0 is in force every cycle. */
    std::vector<uint32_t> modeSchedule;
    /** Envelope assertions evaluated by `ulpeak --modes`. Not part
     *  of the content hash: they are post-processing, never inputs
     *  to the analysis. */
    std::vector<ModeAssertion> assertions;

    /** True when the scenario admits every execution at the default
     *  operating point (all port bits X every cycle, no
     *  memory/register constraints, no modes) -- analysis results
     *  equal the classic all-X flow exactly. */
    bool isUnconstrained() const;

    /** The constraint in force at post-reset cycle @p cycle. */
    const PortPattern &patternAt(uint64_t cycle) const;
    /** The port word driven at post-reset cycle @p cycle. */
    Word16
    portWordAt(uint64_t cycle) const
    {
        return patternAt(cycle).word();
    }

    /// @name Operating modes
    /// @{
    bool
    hasModes() const
    {
        return !modes.empty();
    }
    /** The repeating mode-schedule period (1 when static). */
    uint64_t
    modePeriod() const
    {
        return modeSchedule.empty() ? 1 : modeSchedule.size();
    }
    /** Index into @ref modes in force at post-reset cycle @p cycle
     *  (0 when the schedule is empty). */
    uint32_t
    modeIndexAt(uint64_t cycle) const
    {
        return modeSchedule.empty()
                   ? 0
                   : modeSchedule[size_t(cycle % modeSchedule.size())];
    }
    /** The mode in force at post-reset cycle @p cycle; only valid
     *  when hasModes(). */
    const OperatingMode &
    modeAt(uint64_t cycle) const
    {
        return modes[modeIndexAt(cycle)];
    }
    /** Clock period [s] per mode-schedule phase, size modePeriod()
     *  -- the per-phase tclk vector ExecTree::maxPathEnergy and the
     *  windowed energy curves consume. Only valid when hasModes(). */
    std::vector<double> phaseTclkS() const;
    /** Throw std::runtime_error on structural inconsistencies:
     *  schedule without modes or with out-of-range indices,
     *  non-positive vdd/freq, duplicate mode names, assertions
     *  naming unknown modes or non-positive ceilings. The JSON
     *  parser and the symbolic engine both call this, so a broken
     *  scenario fails loudly wherever it was built. */
    void validate() const;
    /// @}

    /** Schedule phase at @p cycle -- 0 for unscheduled scenarios.
     *  Two simulator states are interchangeable only at equal
     *  phases, so the engine mixes this into its dedup keys. The
     *  port and mode schedule phases combine mixed-radix (injective
     *  in the pair), so equal dedupPhase implies the cycle is
     *  congruent mod *both* periods. */
    uint64_t
    dedupPhase(uint64_t cycle) const
    {
        uint64_t port_phase =
            portSchedule.empty() ? 0 : cycle % portSchedule.size();
        uint64_t port_period =
            portSchedule.empty() ? 1 : portSchedule.size();
        uint64_t mode_phase =
            modeSchedule.empty() ? 0 : cycle % modeSchedule.size();
        return port_phase + port_period * mode_phase;
    }

    /** Mix the full scenario content into @p h (FNV-1a order): the
     *  batch cache key uses this, so two scenarios hash equal iff
     *  they constrain identically (the name does not participate). */
    void hashInto(uint64_t &h) const;

    /** Human one-liner ("port 0000xxxxxxxxxxxx, 2 RAM ranges"). */
    std::string summary() const;

    /// @name Construction
    /// @{
    static const std::vector<std::string> &presetNames();
    /** A named preset; throws std::runtime_error on unknown names
     *  (message lists the known ones). */
    static Scenario preset(const std::string &name);
    /** Parse the JSON form (see docs/architecture.md):
     *  {"name": ..., "port": "16-char pattern" | {"pinned","value"},
     *   "port_schedule": [pattern, ...],
     *   "ram_init": [{"addr": A, "words": [...]}, ...],
     *   "reg_init": [{"reg": R, "value": V}, ...],
     *   "modes": [{"name": N, "vdd": V, "freq_hz": F}, ...],
     *   "mode_schedule": [mode name or index, ...],
     *   "assert": [{"mode": N, "max_power_w": W,
     *               "settle_cycles": C}, ...]}
     *  Numbers may be JSON integers or "0x.." strings; duplicate
     *  object keys are rejected. Throws std::runtime_error with a
     *  position-bearing message. */
    static Scenario fromJson(const std::string &text);
    static Scenario fromJsonFile(const std::string &path);
    /** A preset name, or a path to a JSON file (anything containing
     *  a '/' or ending in ".json"). */
    static Scenario resolve(const std::string &spec);
    /// @}
};

} // namespace scenario
} // namespace ulpeak

#endif // ULPEAK_SCENARIO_SCENARIO_HH
