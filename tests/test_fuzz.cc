/**
 * @file
 * Tests of the fuzzing building blocks (src/fuzz): the shared
 * deterministic PRNG, the random program generator, and the random
 * netlist generator. Determinism is the load-bearing property -- a
 * printed seed must reproduce a failure bit-for-bit on any platform.
 */

#include <set>

#include <gtest/gtest.h>

#include "fuzz/netlist_gen.hh"
#include "fuzz/program_gen.hh"
#include "fuzz/rng.hh"
#include "isa/assembler.hh"
#include "isa/iss.hh"

namespace ulpeak {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    fuzz::Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, GoldenValuesPinnedCrossPlatform)
{
    // SplitMix64 reference outputs: the generator must never change
    // silently, or archived failure seeds stop reproducing.
    fuzz::Rng r(1);
    EXPECT_EQ(r.next(), 0x910a2dec89025cc1ull);
    EXPECT_EQ(r.next(), 0xbeeb8da1658eec67ull);
    EXPECT_EQ(r.next(), 0xf893a2eefb32555eull);
}

TEST(Rng, BelowStaysInRange)
{
    fuzz::Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        uint32_t v = r.below(13);
        ASSERT_LT(v, 13u);
    }
    // All residues reachable.
    fuzz::Rng r2(8);
    std::set<uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r2.below(6));
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, PickWeightedRespectsZeroWeights)
{
    fuzz::Rng r(9);
    for (int i = 0; i < 200; ++i) {
        size_t k = r.pickWeighted({0, 5, 0, 3});
        ASSERT_TRUE(k == 1 || k == 3) << k;
    }
}

TEST(Rng, DeriveStreamSeparatesIndices)
{
    std::set<uint64_t> streams;
    for (uint64_t i = 0; i < 100; ++i)
        streams.insert(fuzz::Rng::deriveStream(1, i));
    EXPECT_EQ(streams.size(), 100u) << "stream collision";
    EXPECT_NE(fuzz::Rng::deriveStream(1, 0),
              fuzz::Rng::deriveStream(2, 0));
}

TEST(ProgramGen, DeterministicSource)
{
    fuzz::ProgramGenOptions opts;
    fuzz::Rng a(123), b(123);
    fuzz::GeneratedProgram pa = fuzz::generateProgram(a, opts);
    fuzz::GeneratedProgram pb = fuzz::generateProgram(b, opts);
    EXPECT_EQ(pa.source, pb.source);
    EXPECT_FALSE(pa.body.empty());
    EXPECT_NE(pa.source.find(pa.body), std::string::npos);
}

TEST(ProgramGen, DifferentSeedsDifferentPrograms)
{
    fuzz::ProgramGenOptions opts;
    fuzz::Rng a(1), b(2);
    EXPECT_NE(fuzz::generateProgram(a, opts).source,
              fuzz::generateProgram(b, opts).source);
}

TEST(ProgramGen, ProgramsAssembleAndHaltOnIss)
{
    fuzz::ProgramGenOptions opts;
    for (uint64_t seed = 0; seed < 20; ++seed) {
        fuzz::Rng rng(fuzz::Rng::deriveStream(77, seed));
        fuzz::GeneratedProgram p = fuzz::generateProgram(rng, opts);
        SCOPED_TRACE(p.source);
        isa::Image img;
        ASSERT_NO_THROW(img = isa::assemble(p.source));
        isa::Iss iss;
        iss.loadImage(img);
        iss.setPortIn(0x1234);
        iss.reset();
        EXPECT_TRUE(iss.run(100000)) << iss.haltReason();
    }
}

TEST(ProgramGen, OptionsGateFeatures)
{
    fuzz::ProgramGenOptions opts;
    opts.allowPortInput = false;
    opts.allowMultiplier = false;
    opts.allowLoops = false;
    opts.instructions = 60;
    fuzz::Rng rng(5);
    fuzz::GeneratedProgram p = fuzz::generateProgram(rng, opts);
    EXPECT_EQ(p.body.find("&0x0020"), std::string::npos);
    EXPECT_EQ(p.body.find("&0x0130"), std::string::npos);
    EXPECT_EQ(p.body.find("loop"), std::string::npos);
}

TEST(NetlistGen, DeterministicStructure)
{
    fuzz::NetlistGenOptions opts;
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist na(lib), nb(lib);
    fuzz::Rng a(99), b(99);
    fuzz::RandomNetlist ra = fuzz::buildRandomNetlist(na, a, opts);
    fuzz::RandomNetlist rb = fuzz::buildRandomNetlist(nb, b, opts);
    ASSERT_EQ(na.numGates(), nb.numGates());
    EXPECT_EQ(ra.inputs, rb.inputs);
    for (GateId g = 0; g < GateId(na.numGates()); ++g) {
        ASSERT_EQ(na.gate(g).kind, nb.gate(g).kind) << g;
        ASSERT_EQ(na.gate(g).in, nb.gate(g).in) << g;
    }
}

TEST(NetlistGen, FinalizesWithRequestedShape)
{
    fuzz::NetlistGenOptions opts;
    opts.numInputs = 4;
    opts.numRegBanks = 3;
    opts.numCombGates = 50;
    CellLibrary lib = CellLibrary::tsmc65Like();
    for (uint64_t seed = 0; seed < 10; ++seed) {
        Netlist nl(lib);
        fuzz::Rng rng(fuzz::Rng::deriveStream(31, seed));
        fuzz::RandomNetlist rn = fuzz::buildRandomNetlist(nl, rng, opts);
        EXPECT_TRUE(nl.finalized());
        EXPECT_EQ(rn.inputs.size(), 4u);
        EXPECT_GE(nl.numGates(), size_t(4 + 2 + 3 + 50));
        EXPECT_GE(nl.seqGates().size(), 3u);
    }
}

TEST(NetlistGen, InputScheduleDeterministicAndXBounded)
{
    fuzz::Rng a(3), b(3);
    auto sa = fuzz::makeInputSchedule(a, 5, 40, 20);
    auto sb = fuzz::makeInputSchedule(b, 5, 40, 20);
    EXPECT_EQ(sa, sb);
    ASSERT_EQ(sa.size(), 40u);
    for (auto &cyc : sa)
        ASSERT_EQ(cyc.size(), 5u);
    fuzz::Rng c(4);
    auto sc = fuzz::makeInputSchedule(c, 8, 100, 0);
    for (auto &cyc : sc)
        for (V4 v : cyc)
            ASSERT_NE(v, V4::X) << "x_percent=0 must yield no X";
}

} // namespace
} // namespace ulpeak
