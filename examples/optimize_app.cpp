/**
 * @file
 * Peak-power optimization workflow (Sections 3.5 / 5.1): analyze an
 * application, locate the cycles of interest (COIs) with their
 * culprit instructions and module breakdown, apply the OPT1-3
 * rewrites, and re-analyze to confirm the reduction.
 *
 *   $ ./examples/optimize_app [benchmark-name]
 */

#include <cstdio>

#include "bench430/benchmarks.hh"
#include "opt/optimizer.hh"
#include "peak/coi.hh"

using namespace ulpeak;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "mult";
    msp::System sys(CellLibrary::tsmc65Like());
    const bench430::Benchmark &b = bench430::benchmarkByName(name);

    // Step 1: where are the peaks, and who causes them?
    {
        sym::SymbolicConfig cfg;
        cfg.recordModuleTrace = true;
        sym::SymbolicEngine engine(sys, cfg);
        sym::SymbolicResult sr = engine.run(b.assembleImage());
        if (!sr.ok) {
            std::printf("analysis failed: %s\n", sr.error.c_str());
            return 1;
        }
        peak::CoiReport coi =
            peak::analyzeCoi(sys.netlist(), sr, b.assembleImage(), 3);
        std::printf("--- cycles of interest for %s ---\n%s\n",
                    name.c_str(), coi.toString().c_str());
    }

    // Step 2: rewrite and re-analyze. The optimizer evaluates every
    // combination of OPT1 (split register-indexed loads), OPT2 (split
    // autoincrement/POP) and OPT3 (NOP after multiplier writes) and
    // keeps the subset with the lowest guaranteed peak.
    opt::TransformConfig cfg;
    peak::Options opts;
    opt::OptimizationReport rep =
        opt::evaluateOptimizations(sys, b, cfg, opts);
    if (!rep.ok) {
        std::printf("optimization failed: %s\n", rep.error.c_str());
        return 1;
    }

    std::printf("--- optimization of %s ---\n", name.c_str());
    std::printf("applied rewrites: OPT1 x%u, OPT2 x%u, OPT3 x%u\n",
                rep.transforms.opt1Applied, rep.transforms.opt2Applied,
                rep.transforms.opt3Applied);
    std::printf("peak power : %.4f -> %.4f mW (%.2f%% reduction)\n",
                rep.peakBeforeW * 1e3, rep.peakAfterW * 1e3,
                rep.peakReductionPct);
    std::printf("dyn. range : %.4f -> %.4f mW (%.2f%% reduction)\n",
                rep.dynRangeBeforeW * 1e3, rep.dynRangeAfterW * 1e3,
                rep.dynRangeReductionPct);
    std::printf("runtime    : %llu -> %llu cycles (%.2f%% slower)\n",
                (unsigned long long)rep.cyclesBefore,
                (unsigned long long)rep.cyclesAfter,
                rep.perfDegradationPct);
    std::printf("peak energy: %.3f -> %.3f nJ (%.2f%% overhead)\n",
                rep.energyBeforeJ * 1e9, rep.energyAfterJ * 1e9,
                rep.energyOverheadPct);
    if (rep.transforms.total() == 0)
        std::printf("(no rewrite reduced this application's peak; the "
                    "tool applies none, as in Section 5.1)\n");
    return 0;
}
