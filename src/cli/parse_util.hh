/**
 * @file
 * Small argument-parsing helpers shared by the CLI drivers (ulpeak /
 * ulfuzz / ulfault), so every tool rejects malformed numbers the same
 * way.
 */

#ifndef ULPEAK_CLI_PARSE_UTIL_HH
#define ULPEAK_CLI_PARSE_UTIL_HH

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

namespace ulpeak {
namespace cli {

/**
 * Parse @p s as a strictly positive, finite double. Unlike
 * std::atof, trailing garbage ("8e6x", "100 MHz") is rejected, not
 * silently truncated: the whole token must be consumed. Returns
 * false (leaving @p out untouched) on empty input, trailing
 * characters, non-positive values, or inf/nan.
 */
inline bool
parsePositiveDouble(const char *s, double &out)
{
    if (!s || !*s)
        return false;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (!end || *end != '\0')
        return false;
    if (!(v > 0.0) || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

inline bool
parsePositiveDouble(const std::string &s, double &out)
{
    return parsePositiveDouble(s.c_str(), out);
}

/**
 * Parse @p s as an unsigned integer (decimal, or hex/octal via the
 * usual 0x/0 prefixes). Like parsePositiveDouble the whole token
 * must be consumed: "4x", "1e3" and "3 jobs" are rejected, not
 * truncated. Returns false (leaving @p out untouched) on empty
 * input, a leading minus sign, trailing characters, or overflow.
 */
inline bool
parseUnsignedInt(const char *s, uint64_t &out)
{
    if (!s || !*s || *s == '-')
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s, &end, 0);
    if (!end || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

/** parseUnsignedInt restricted to values >= 1 and fitting unsigned
 *  (the shape of every --jobs / --threads / item-count option). */
inline bool
parsePositiveInt(const char *s, unsigned &out)
{
    uint64_t v = 0;
    if (!parseUnsignedInt(s, v) || v == 0 ||
        v > std::numeric_limits<unsigned>::max())
        return false;
    out = unsigned(v);
    return true;
}

} // namespace cli
} // namespace ulpeak

#endif // ULPEAK_CLI_PARSE_UTIL_HH
