/**
 * @file
 * Experiments E8/E15 -- Figure 5.1: peak-power requirements from
 * every technique, per benchmark, plus the paper's headline averages.
 *
 * Reproduced claims: (safety) X-based >= max input-based peak for
 * every application; (tightness) X-based is within a few percent of
 * the best observed input-based peak; (ordering) design-tool >
 * GB-stressmark > GB-input > X-based on average; multiply-heavy
 * applications have looser X-based bounds than shift/xor kernels
 * like tea8 (Section 5's discussion).
 */

#include "bench/bench_util.hh"
#include "peak/peak_analysis.hh"

using namespace ulpeak;
using namespace ulpeak::bench_util;

int
main()
{
    msp::System sys(CellLibrary::tsmc65Like());

    auto dt = baseline::designToolRating(sys.netlist(), kFreq65);
    baseline::StressmarkConfig scfg;
    auto stress = baseline::generateStressmark(sys, kFreq65, scfg);

    printHeader("Fig 5.1: peak power requirements [mW]");
    std::printf("%-10s %11s %12s %12s %10s %7s\n", "benchmark",
                "design_tool", "input-based", "GB input", "X-based",
                "safe");

    std::vector<double> xs, gbInputs, inputs;
    bool allSafe = true;
    for (const auto &b : bench430::allBenchmarks()) {
        isa::Image img = b.assembleImage();
        auto prof = baseline::profile(sys, img, b.makeInputs(8, 99),
                                      kFreq65);
        peak::Options opts;
        peak::Report x = peak::analyze(sys, img, opts);
        if (!x.ok) {
            std::printf("%-10s ANALYSIS FAILED: %s\n", b.name.c_str(),
                        x.error.c_str());
            return 1;
        }
        bool safe = x.peakPowerW >= prof.peakPowerW;
        allSafe &= safe;
        xs.push_back(x.peakPowerW);
        gbInputs.push_back(prof.gbPeakPowerW);
        inputs.push_back(prof.peakPowerW);
        std::printf("%-10s %11.3f %12.3f %12.3f %10.3f %7s\n",
                    b.name.c_str(), dt.peakPowerW * 1e3,
                    prof.peakPowerW * 1e3, prof.gbPeakPowerW * 1e3,
                    x.peakPowerW * 1e3, safe ? "yes" : "NO");
    }
    std::printf("%-10s %11.3f  (GA stressmark peak; GB-stress = "
                "%.3f)\n",
                "stressmark", stress.peakPowerW * 1e3,
                stress.gbPeakPowerW * 1e3);

    printHeader("headline averages (paper: X-based is 15% / 26% / 27% "
                "below GB-input / GB-stress / design-tool)");
    std::vector<double> gbStress(xs.size(), stress.gbPeakPowerW);
    std::vector<double> dts(xs.size(), dt.peakPowerW);
    std::printf("X-based vs GB input-based : %5.1f%% lower\n",
                avgPctLower(xs, gbInputs));
    std::printf("X-based vs GB stressmark  : %5.1f%% lower\n",
                avgPctLower(xs, gbStress));
    std::printf("X-based vs design tool    : %5.1f%% lower\n",
                avgPctLower(xs, dts));
    std::printf("X-based vs max input-based: %5.1f%% higher "
                "(paper: ~1%%; bound tightness)\n",
                -avgPctLower(xs, inputs));
    std::printf("all X-based bounds safe   : %s\n",
                allSafe ? "yes" : "NO");
    return allSafe ? 0 : 1;
}
