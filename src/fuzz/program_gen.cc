#include "fuzz/program_gen.hh"

#include <cstdio>

namespace ulpeak {
namespace fuzz {

namespace {

/*
 * Register roles. The generator partitions the file so random data
 * flow can never corrupt an address or a loop bound:
 *   r4-r10, r14, r15  data (any value, including port-derived X under
 *                     the symbolic engine)
 *   r11               loop counter, written only by loop headers
 *   r12               base of the primary RAM window (0x0300, 16 words)
 *   r13               base of the secondary RAM window (0x0340, 8 words)
 */
constexpr uint32_t kWin1 = 0x0300;
constexpr unsigned kWin1Words = 16;
constexpr uint32_t kWin2 = 0x0340;
constexpr unsigned kWin2Words = 8;

std::string
hex(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%04x", v);
    return buf;
}

class Gen {
  public:
    Gen(Rng &rng, const ProgramGenOptions &opts)
        : rng_(rng), opts_(opts)
    {
    }

    std::string
    body()
    {
        for (unsigned i = 0; i < opts_.instructions; ++i)
            item();
        return out_;
    }

  private:
    void
    emit(const std::string &line)
    {
        out_ += "        " + line + "\n";
    }

    std::string
    dataReg()
    {
        static const char *regs[] = {"r4",  "r5",  "r6",  "r7", "r8",
                                     "r9",  "r10", "r14", "r15"};
        return regs[rng_.below(9)];
    }

    std::string
    win1Off()
    {
        return std::to_string(2 * rng_.below(kWin1Words)) + "(r12)";
    }

    std::string
    win2Off()
    {
        return std::to_string(2 * rng_.below(kWin2Words)) + "(r13)";
    }

    std::string
    absAddr()
    {
        if (rng_.chance(50))
            return "&" + hex(kWin1 + 2 * rng_.below(kWin1Words));
        return "&" + hex(kWin2 + 2 * rng_.below(kWin2Words));
    }

    /** Source operand over all addressing modes (weighted). */
    std::string
    src()
    {
        switch (rng_.pickWeighted({30, 15, 10, 15, 10, 5, 10, 5})) {
          case 0: return dataReg();
          case 1: return "#" + std::to_string(rng_.word());
          case 2: {
            // Constant-generator encodings.
            static const char *cg[] = {"#0", "#1", "#2", "#4", "#8",
                                       "#-1"};
            return cg[rng_.below(6)];
          }
          case 3: return win1Off();
          case 4: return win2Off();
          case 5: return rng_.chance(50) ? "@r12" : "@r13";
          case 6: return absAddr();
          default: return "#" + std::to_string(int16_t(rng_.word()));
        }
    }

    std::string
    dst()
    {
        switch (rng_.pickWeighted({40, 25, 15, 20})) {
          case 0: return dataReg();
          case 1: return win1Off();
          case 2: return win2Off();
          default: return absAddr();
        }
    }

    /** One straight-line instruction (no control flow, no r11-r13). */
    std::string
    simpleInstr()
    {
        static const char *fmt1[] = {"mov", "add", "addc", "sub",
                                     "subc", "cmp", "bit",  "bic",
                                     "bis",  "xor", "and"};
        switch (rng_.pickWeighted({60, 12, 8, 8, 6, 6})) {
          case 0:
            return std::string(fmt1[rng_.below(11)]) + " " + src() +
                   ", " + dst();
          case 1: {
            static const char *fmt2[] = {"rra", "rrc", "swpb", "sxt"};
            std::string op = fmt2[rng_.below(4)];
            // Format II over register or memory operands (both are
            // implemented read-modify-write in the core).
            switch (rng_.pickWeighted({60, 25, 15})) {
              case 0: return op + " " + dataReg();
              case 1: return op + " " + win1Off();
              default: return op + " " + absAddr();
            }
          }
          case 2: {
            static const char *emul[] = {"inc",  "dec", "incd",
                                         "decd", "tst", "clr",
                                         "rla",  "rlc"};
            return std::string(emul[rng_.below(8)]) + " " + dataReg();
          }
          case 3: {
            static const char *sr[] = {"clrc", "setc", "clrz", "setz"};
            return sr[rng_.below(4)];
          }
          case 4:
            if (opts_.allowPortInput)
                return "mov &0x0020, " + dataReg();
            return "mov #" + std::to_string(rng_.word()) + ", " +
                   dataReg();
          default:
            return "mov " + src() + ", &0x0022"; // output port
        }
    }

    /** Multiplier peripheral sequence: load op1/op2, read product. */
    void
    multiplierSeq()
    {
        emit("mov " + src() + ", " +
             (rng_.chance(50) ? std::string("&0x0130")    // unsigned
                              : std::string("&0x0132"))); // signed
        emit("mov " + src() + ", &0x0138");
        emit("mov &0x013a, " + dataReg());
        if (rng_.chance(50))
            emit("mov &0x013c, " + dataReg());
    }

    /** Forward conditional branch over a short block. */
    void
    skipBlock()
    {
        static const char *jmps[] = {"jne", "jeq", "jc", "jnc",
                                     "jn",  "jge", "jl", "jmp"};
        std::string label = "fwd" + std::to_string(labelId_++);
        emit(std::string(jmps[rng_.below(8)]) + " " + label);
        unsigned n = 1 + rng_.below(2);
        for (unsigned i = 0; i < n; ++i)
            emit(simpleInstr());
        out_ += label + ":\n";
    }

    /** Bounded counter loop on the reserved counter register. */
    void
    loopBlock()
    {
        unsigned iters = 1 + rng_.below(opts_.maxLoopIterations);
        std::string label = "loop" + std::to_string(labelId_++);
        emit("mov #" + std::to_string(iters) + ", r11");
        out_ += label + ":\n";
        unsigned n = 1 + rng_.below(3);
        for (unsigned i = 0; i < n; ++i)
            emit(simpleInstr());
        emit("dec r11");
        emit("jnz " + label);
    }

    void
    item()
    {
        unsigned wLoop = opts_.allowLoops ? 8 : 0;
        unsigned wMul = opts_.allowMultiplier ? 6 : 0;
        switch (rng_.pickWeighted({55, 12, wLoop, wMul, 6, 9})) {
          case 0:
            emit(simpleInstr());
            break;
          case 1:
            skipBlock();
            break;
          case 2:
            loopBlock();
            break;
          case 3:
            multiplierSeq();
            break;
          case 4:
            // Balanced stack traffic.
            emit("push " + src());
            emit("pop " + dataReg());
            break;
          default:
            // Post-increment walk, compensated to keep r12 a stable
            // window base for subsequent operands.
            emit("mov @r12+, " + dataReg());
            emit("sub #2, r12");
            break;
        }
    }

    Rng &rng_;
    const ProgramGenOptions &opts_;
    std::string out_;
    unsigned labelId_ = 0;
};

} // namespace

GeneratedProgram
generateProgram(Rng &rng, const ProgramGenOptions &opts)
{
    GeneratedProgram p;

    // Deterministic prologue: stack, watchdog hold, concrete SR/CG,
    // seeded data registers, window bases, concrete RAM windows.
    std::string pro;
    pro += "        .org 0xf800\n";
    pro += "start:\n";
    pro += "        mov #0x0a00, sp\n";
    pro += "        mov #0x5a80, &0x0120\n";
    pro += "        mov #0, sr\n";
    pro += "        mov #0, r3\n";
    for (const char *r : {"r4", "r5", "r6", "r7", "r8", "r9", "r10",
                          "r11", "r14", "r15"})
        pro += "        mov #" + std::to_string(rng.word()) + ", " +
               std::string(r) + "\n";
    pro += "        mov #0x0300, r12\n";
    pro += "        mov #0x0340, r13\n";
    for (unsigned i = 0; i < kWin1Words; ++i)
        pro += "        mov #" + std::to_string(rng.word()) + ", " +
               std::to_string(2 * i) + "(r12)\n";
    for (unsigned i = 0; i < kWin2Words; ++i)
        pro += "        mov #" + std::to_string(rng.word()) + ", " +
               std::to_string(2 * i) + "(r13)\n";

    Gen g(rng, opts);
    p.body = g.body();

    std::string epi;
    epi += "        mov #1, &0x01f0\n";
    epi += "__forever:\n";
    epi += "        jmp __forever\n";
    epi += "        .org 0xfffe\n";
    epi += "        .word start\n";

    p.source = pro + p.body + epi;
    return p;
}

} // namespace fuzz
} // namespace ulpeak
