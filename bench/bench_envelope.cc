/**
 * @file
 * Microbenchmark of the peak-envelope subsystem: for a set of
 * bench430 programs, times peak::analyze with and without envelope
 * recording (the envelope adds a post-exploration tree walk, so the
 * interesting number is its overhead on top of exploration), checks
 * envelope/scalar consistency (max of the envelope must equal the
 * scalar peak bound, envelope length must cover the max-energy path)
 * before trusting any timing, and reports the profile-vs-point sizing
 * gap (sustained/window power vs point peak -- the quantity
 * envelope-driven sizing recovers). Drops bench_out/BENCH_envelope.json
 * (the checked-in BENCH_envelope.json at the repository root is a
 * copy).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "peak/peak_analysis.hh"
#include "sizing/sizing.hh"

namespace ulpeak {
namespace {

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace
} // namespace ulpeak

int
main()
{
    using namespace ulpeak;
    bench_util::printHeader(
        "peak envelope: overhead vs plain analyze, profile-vs-point "
        "sizing gap");

    msp::System sys(CellLibrary::tsmc65Like());

    const std::vector<std::string> names = {"mult", "tHold", "intAVG",
                                            "binSearch", "tea8"};
    constexpr int kReps = 3;

    std::printf("%-10s %10s %12s %9s %10s %11s %12s\n", "program",
                "env cycles", "analyze [s]", "+env [s]", "overhead",
                "peak [mW]", "sustain [mW]");

    std::string json = "{\n  \"bench\": \"envelope\",\n"
                       "  \"reps\": " +
                       std::to_string(kReps) +
                       ",\n  \"programs\": [\n";
    bool first = true;
    for (const std::string &name : names) {
        isa::Image img =
            bench430::benchmarkByName(name).assembleImage();

        peak::Options plain;
        peak::Options withEnv;
        withEnv.recordEnvelope = true;

        // Warm up netlist/caches once, then take the best of kReps.
        peak::analyze(sys, img, plain);
        double tPlain = 1e9, tEnv = 1e9;
        peak::Report r;
        for (int rep = 0; rep < kReps; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            peak::Report a = peak::analyze(sys, img, plain);
            tPlain = std::min(tPlain, seconds(t0));
            t0 = std::chrono::steady_clock::now();
            r = peak::analyze(sys, img, withEnv);
            tEnv = std::min(tEnv, seconds(t0));
            if (!a.ok || !r.ok) {
                std::fprintf(stderr, "FATAL: analysis failed on %s\n",
                             name.c_str());
                return 1;
            }
        }

        // Consistency gates before any timing is trusted.
        double envPeak = r.envelope.peakPowerW();
        if (float(envPeak) != float(r.peakPowerW)) {
            std::fprintf(stderr,
                         "FATAL: envelope peak %.17g != scalar peak "
                         "%.17g on %s\n",
                         envPeak, r.peakPowerW, name.c_str());
            return 1;
        }
        if (r.envelope.cycles() < r.maxPathCycles) {
            std::fprintf(stderr,
                         "FATAL: envelope (%zu cycles) shorter than "
                         "the max-energy path (%llu) on %s\n",
                         r.envelope.cycles(),
                         (unsigned long long)r.maxPathCycles,
                         name.c_str());
            return 1;
        }

        double tclk = 1.0 / withEnv.freqHz;
        sizing::EnvelopeSupply es = sizing::sizeEnvelopeSupply(
            r.envelope.windows, r.envelope.peakWindowEnergyJ,
            envPeak, tclk, sys.netlist().library().vdd());
        double overheadPct =
            tPlain > 0 ? (tEnv / tPlain - 1.0) * 100.0 : 0.0;
        std::printf("%-10s %10zu %12.4f %9.4f %9.1f%% %10.3f %12.3f\n",
                    name.c_str(), r.envelope.cycles(), tPlain,
                    tEnv - tPlain, overheadPct, envPeak * 1e3,
                    es.sustainedPowerW * 1e3);

        char row[512];
        std::snprintf(
            row, sizeof(row),
            "    {\"name\": \"%s\", \"envelope_cycles\": %zu, "
            "\"analyze_sec\": %.6f, \"envelope_extra_sec\": %.6f, "
            "\"overhead_pct\": %.2f, \"peak_power_w\": %.9g, "
            "\"sustained_power_w\": %.9g}",
            name.c_str(), r.envelope.cycles(), tPlain, tEnv - tPlain,
            overheadPct, envPeak, es.sustainedPowerW);
        json += (first ? "" : ",\n");
        json += row;
        first = false;
    }
    json += "\n  ]\n}\n";

    std::ofstream out(bench_util::outDir() + "BENCH_envelope.json");
    out << json;
    std::printf("wrote %sBENCH_envelope.json\n",
                bench_util::outDir().c_str());
    return 0;
}
