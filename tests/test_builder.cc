/**
 * @file
 * Tests for the hardware-builder DSL and the arithmetic components,
 * verified by simulating the elaborated gates. Parameterized sweeps
 * check the adder/multiplier across operand ranges.
 */

#include <gtest/gtest.h>

#include "hw/builder.hh"
#include "sim/simulator.hh"

namespace ulpeak {
namespace {

using hw::Builder;
using hw::Bus;

/** Elaborate-and-simulate harness for combinational fixtures. */
struct CombFixture {
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl{lib};
    Builder b{nl};

    std::unique_ptr<Simulator> sim;

    void
    finish()
    {
        nl.finalize();
        sim = std::make_unique<Simulator>(nl);
    }

    void
    drive(const Bus &bus, uint32_t value)
    {
        for (size_t i = 0; i < bus.size(); ++i)
            sim->setInput(bus[i],
                          fromBool((value >> i) & 1));
    }

    uint32_t
    sample(const Bus &bus)
    {
        uint32_t v = 0;
        for (size_t i = 0; i < bus.size(); ++i) {
            EXPECT_NE(sim->value(bus[i]), V4::X);
            if (sim->value(bus[i]) == V4::One)
                v |= 1u << i;
        }
        return v;
    }
};

TEST(Builder, AdderMatchesReference)
{
    CombFixture f;
    Bus a = f.b.busInput(16, "a");
    Bus bb = f.b.busInput(16, "b");
    hw::AddResult r = hw::adder(f.b, a, bb, f.b.zero());
    f.finish();

    for (auto [x, y] : {std::pair<uint32_t, uint32_t>{0, 0},
                        {1, 1},
                        {0xffff, 1},
                        {0x8000, 0x8000},
                        {0x1234, 0x4321},
                        {0xa5a5, 0x5a5a}}) {
        f.sim->step([&](Simulator &) {
            f.drive(a, x);
            f.drive(bb, y);
        });
        uint32_t sum = x + y;
        EXPECT_EQ(f.sample(r.sum), sum & 0xffff) << x << "+" << y;
        EXPECT_EQ(f.sim->value(r.carryOut),
                  fromBool(sum > 0xffff));
    }
}

TEST(Builder, SubtractorCarryIsNotBorrow)
{
    CombFixture f;
    Bus a = f.b.busInput(16, "a");
    Bus bb = f.b.busInput(16, "b");
    hw::AddResult r = hw::subtractor(f.b, a, bb);
    f.finish();

    f.sim->step([&](Simulator &) {
        f.drive(a, 5);
        f.drive(bb, 3);
    });
    EXPECT_EQ(f.sample(r.sum), 2u);
    EXPECT_EQ(f.sim->value(r.carryOut), V4::One); // no borrow

    f.sim->step([&](Simulator &) {
        f.drive(a, 3);
        f.drive(bb, 5);
    });
    EXPECT_EQ(f.sample(r.sum), 0xfffeu);
    EXPECT_EQ(f.sim->value(r.carryOut), V4::Zero); // borrow
}

TEST(Builder, EqualConstAndDecoder)
{
    CombFixture f;
    Bus a = f.b.busInput(4, "a");
    hw::Sig eq = hw::equalConst(f.b, a, 0xb);
    std::vector<hw::Sig> hot = hw::decoder(f.b, a);
    f.finish();

    for (uint32_t v = 0; v < 16; ++v) {
        f.sim->step([&](Simulator &) { f.drive(a, v); });
        EXPECT_EQ(f.sim->value(eq), fromBool(v == 0xb));
        for (uint32_t i = 0; i < 16; ++i)
            EXPECT_EQ(f.sim->value(hot[i]), fromBool(i == v));
    }
}

class MultiplierParam
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {
};

TEST_P(MultiplierParam, ProductMatches)
{
    CombFixture f;
    Bus a = f.b.busInput(16, "a");
    Bus bb = f.b.busInput(16, "b");
    Bus p = hw::arrayMultiplier(f.b, a, bb);
    f.finish();

    auto [x, y] = GetParam();
    f.sim->step([&](Simulator &) {
        f.drive(a, x);
        f.drive(bb, y);
    });
    uint32_t expect = x * y;
    EXPECT_EQ(f.sample(p), expect) << x << "*" << y;
}

INSTANTIATE_TEST_SUITE_P(
    Products, MultiplierParam,
    ::testing::Values(std::pair<uint32_t, uint32_t>{0, 0},
                      std::pair<uint32_t, uint32_t>{1, 1},
                      std::pair<uint32_t, uint32_t>{0xffff, 0xffff},
                      std::pair<uint32_t, uint32_t>{0xffff, 0},
                      std::pair<uint32_t, uint32_t>{1234, 5678},
                      std::pair<uint32_t, uint32_t>{0x8000, 2},
                      std::pair<uint32_t, uint32_t>{0x00ff, 0x0101},
                      std::pair<uint32_t, uint32_t>{40503, 61441}));

TEST(Builder, MuxTreeSelects)
{
    CombFixture f;
    Bus sel = f.b.busInput(2, "sel");
    std::vector<Bus> choices;
    for (uint32_t i = 0; i < 4; ++i)
        choices.push_back(f.b.busConst(8, 0x11 * (i + 1)));
    Bus out = f.b.busMuxN(sel, choices);
    f.finish();

    for (uint32_t s = 0; s < 4; ++s) {
        f.sim->step([&](Simulator &) { f.drive(sel, s); });
        EXPECT_EQ(f.sample(out), 0x11 * (s + 1));
    }
}

TEST(Builder, OneHotMux)
{
    CombFixture f;
    Bus hot = f.b.busInput(3, "hot");
    std::vector<Bus> choices = {f.b.busConst(4, 0x3),
                                f.b.busConst(4, 0x5),
                                f.b.busConst(4, 0xc)};
    Bus out = f.b.busMuxOneHot({hot[0], hot[1], hot[2]}, choices);
    f.finish();

    const uint32_t expect[3] = {0x3, 0x5, 0xc};
    for (unsigned i = 0; i < 3; ++i) {
        f.sim->step([&](Simulator &) { f.drive(hot, 1u << i); });
        EXPECT_EQ(f.sample(out), expect[i]);
    }
}

TEST(Builder, RegisterHoldsAndLoads)
{
    CombFixture f;
    Bus d = f.b.busInput(8, "d");
    hw::Sig en = f.b.input("en");
    Bus q = f.b.reg(d, "r", en);
    f.finish();

    f.sim->step([&](Simulator &s) {
        f.drive(d, 0x42);
        s.setInput(en, V4::One);
    });
    // Register updates at the *next* edge.
    f.sim->step([&](Simulator &s) {
        f.drive(d, 0x99);
        s.setInput(en, V4::Zero);
    });
    EXPECT_EQ(f.sample(q), 0x42u);
    f.sim->step([&](Simulator &s) { s.setInput(en, V4::Zero); });
    EXPECT_EQ(f.sample(q), 0x42u) << "enable low must hold";
}

TEST(Builder, WideReductions)
{
    CombFixture f;
    Bus a = f.b.busInput(13, "a");
    hw::Sig all = f.b.andN(a);
    hw::Sig any = f.b.orN(a);
    f.finish();

    f.sim->step([&](Simulator &) { f.drive(a, 0x1fff); });
    EXPECT_EQ(f.sim->value(all), V4::One);
    EXPECT_EQ(f.sim->value(any), V4::One);
    f.sim->step([&](Simulator &) { f.drive(a, 0x1ffe); });
    EXPECT_EQ(f.sim->value(all), V4::Zero);
    EXPECT_EQ(f.sim->value(any), V4::One);
    f.sim->step([&](Simulator &) { f.drive(a, 0); });
    EXPECT_EQ(f.sim->value(any), V4::Zero);
}

TEST(Builder, WireDeclLateBinding)
{
    CombFixture f;
    hw::Sig w = f.b.wireDecl("w");
    hw::Sig o = f.b.inv(w);
    hw::Sig in = f.b.input("in");
    f.b.wireConnect(w, in);
    f.finish();
    f.sim->step([&](Simulator &s) { s.setInput(in, V4::One); });
    EXPECT_EQ(f.sim->value(o), V4::Zero);
}

TEST(Builder, DoubleRegConnectRejected)
{
    CombFixture f;
    hw::Reg r = f.b.regDecl(4, "r");
    Bus d = f.b.busInput(4, "d");
    r.connect(d);
    EXPECT_THROW(r.connect(d), std::logic_error);
}

} // namespace
} // namespace ulpeak
