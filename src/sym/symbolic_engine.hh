/**
 * @file
 * The input-independent gate activity analysis of Algorithm 1 and the
 * per-cycle peak assignment of Algorithm 2, combined into one engine.
 *
 * The engine symbolically simulates an application binary on the
 * gate-level system: all peripheral port inputs are driven X each
 * cycle (Algorithm 1 line 11), uninitialized memory and registers are
 * X (line 2), and when the next program-counter value is unknown the
 * execution forks into one path per feasible target (lines 17-24)
 * with duplicate states pruned by hashing (line 19). Every simulated
 * cycle is annotated with its maximum-power X assignment -- the
 * online equivalent of the even/odd VCD construction; see
 * peak/even_odd.hh for the literal file-based flow and the test that
 * proves the equivalence.
 *
 * Forks are O(dirtied-state): at each branch the engine captures a
 * delta snapshot (only the entries that changed since the state the
 * path restored from; Simulator::DeltaSnapshot) and restores instead
 * of re-executing the prefix, promoting to a fresh full snapshot
 * when a path has diverged too far from its base for the delta to
 * stay small. SymbolicConfig::snapshotMode forces full-copy
 * snapshots for comparison; both modes are bit-identical by
 * construction (restore(delta) == restore(materialize(delta))).
 *
 * With SymbolicConfig::numThreads > 1 independent execution-tree
 * branches are explored by a worker pool: each worker owns a private
 * work deque (newly forked children push to the owner; idle workers
 * steal from the oldest end of a victim's deque, where the largest
 * unexplored subtrees sit), and the visited-state dedup map is
 * sharded by key hash so concurrent forks only contend when they
 * collide on a shard; only tree-node allocation takes a global lock.
 * Per-cycle traces are buffered worker-locally and committed at
 * fork/leaf boundaries, and peak results merge deterministically
 * (the explored state set, every node's trace, and therefore peak
 * power, peak energy, NPE and the envelope are independent of thread
 * scheduling; only tree node numbering and the steal/per-worker
 * statistics vary).
 *
 * The inputs driven each cycle come from SymbolicConfig::scenario:
 * the default unconstrained scenario drives every port bit X
 * (Algorithm 1 line 11); a constrained scenario pins port bits
 * (statically or on a repeating per-cycle schedule, whose phase then
 * joins the dedup key) and can narrow the all-X initial memory and
 * registers, so the reported bounds cover exactly the executions the
 * deployment admits.
 */

#ifndef ULPEAK_SYM_SYMBOLIC_ENGINE_HH
#define ULPEAK_SYM_SYMBOLIC_ENGINE_HH

#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "msp/cpu.hh"
#include "power/power_model.hh"
#include "scenario/scenario.hh"
#include "sym/exec_tree.hh"

namespace ulpeak {
namespace sym {

/** Fork snapshot representation (results are identical in both). */
enum class SnapshotMode : uint8_t {
    Full,  ///< complete state copy at every fork (reference)
    Delta, ///< dirtied entries against a shared base (default)
};

struct SymbolicConfig {
    double freqHz = 100e6;
    uint64_t maxTotalCycles = 3000000;
    uint64_t maxPathCycles = 100000;
    uint32_t maxNodes = 300000;
    /** Combinational kernel used by the exploration simulators. */
    EvalMode evalMode = EvalMode::EventDriven;
    /**
     * Worker threads exploring independent execution-tree branches
     * (<= 1: sequential exploration on the calling thread). Each extra
     * worker elaborates its own System clone; snapshots transfer
     * between clones because netlist construction is deterministic.
     * Peak power/energy/NPE results are scheduling-independent; node
     * numbering inside the tree is not.
     *
     * This parallelizes *within* one application's analysis and is
     * orthogonal to the *program-level* sharding of a suite
     * (peak::BatchOptions::jobs in peak/batch.hh); the two compose,
     * and because results are scheduling-independent here and
     * programs are independent there, every (jobs, numThreads)
     * combination reports bit-identical numbers
     * (tests/test_symbolic.cc and tests/test_batch.cc pin the two
     * halves of that claim).
     */
    unsigned numThreads = 1;
    /** Record the union + peak-cycle sets of active gates
     *  (Figures 1.5 / 3.4). */
    bool recordActiveSets = false;
    /** Record per-cycle per-module power and instruction attribution
     *  (Figure 3.6 COI analysis). */
    bool recordModuleTrace = false;
    /** Compute the cycle-aligned peak power envelope over the whole
     *  execution tree (ExecTree::envelopePowerW) after exploration.
     *  Derived from the tree's logical structure, so it is
     *  byte-identical under any numThreads / EvalMode. */
    bool recordEnvelope = false;
    /** Iteration bound applied to back-edges in the execution tree
     *  (0 = reject unbounded input-dependent loops). */
    unsigned inputDependentLoopBound = 0;
    /**
     * The environment the application is analyzed under: port-input
     * constraints (static or scheduled), initial-memory and
     * initial-register constraints. The default admits every
     * execution (all ports X -- the classic Algorithm 1 flow).
     * Results are bounds over exactly the scenario's executions and
     * can only tighten as constraints are added.
     */
    scenario::Scenario scenario;
    /** Fork snapshot form; Delta is the fast default, Full the
     *  reference. Never changes any reported number. */
    SnapshotMode snapshotMode = SnapshotMode::Delta;
    /**
     * Run lint::analyzeConstants over the scenario before exploring
     * and install its prune mask in every worker simulator
     * (Simulator::setStaticPrune): gates the static analysis proves
     * constant under this scenario drop out of the event-driven
     * worklists, the full sweep, and the fork-time dedup hashing.
     * Opt-in and bit-identity-neutral: every reported number --
     * peak power, peak energy, NPE, envelope, activity sets -- is
     * identical with and without it (fuzz property 9 / `ulfuzz
     * --mode lint` enforces this across threads, kernels, and
     * snapshot modes), so like evalMode and snapshotMode it is
     * excluded from the batch result cache key.
     */
    bool staticPrune = false;
    /**
     * Drain the pending-path frontier through the 64-lane
     * PackedSimulator: each worker loads up to 64 pending execution
     * paths into lanes (stealing to fill), advances all of them with
     * one level-bucketed packed sweep per cycle, and transposes a
     * lane back to a scalar snapshot when it reaches its next fork /
     * halt / dedup boundary. Backed by the packed kernel's
     * lane-identity invariant, every reported number -- peak power,
     * peak energy, NPE, envelope, activity sets, path/merge/snapshot
     * statistics -- is bit-identical to the scalar exploration across
     * threads, kernels, snapshot modes, scenarios, operating-mode
     * schedules, and staticPrune (fuzz `--mode packed-sym` enforces
     * this), so like evalMode it is excluded from the batch result
     * cache key. Only the scheduling-dependent statistics (steals,
     * per-worker cycles, packed batch/occupancy counters) differ.
     */
    bool packedExplore = false;
};

struct SymbolicResult {
    bool ok = false;
    std::string error;

    ExecTree tree;

    /// @name Peak power (Section 3.2)
    /// @{
    double peakPowerW = 0.0;
    uint32_t peakNode = 0;
    uint32_t peakCycleInNode = 0;
    /// @}

    /// @name Peak energy (Section 3.3)
    /// @{
    double peakEnergyJ = 0.0;
    uint64_t maxPathCycles = 0;
    /** Normalized peak energy [J/cycle] -- the NPE axis of the
     *  paper's Figures 2.2b / 4.1b / 5.2. */
    double npeJPerCycle = 0.0;
    /// @}

    /// @name Activity sets (when recordActiveSets)
    /// @{
    std::vector<uint8_t> everActive;  ///< per gate: 1 if ever active
    std::vector<uint32_t> peakActive; ///< gates active at the peak
    /// @}

    /** Per-cycle upper-bound power envelope env[c] = max over all
     *  execution-tree walks of power(walk, c), when
     *  SymbolicConfig::recordEnvelope. */
    std::vector<float> envelopeW;

    /// @name Exploration statistics
    /// Scheduling-independent: totalCycles, pathsExplored,
    /// dedupMerges, snapshotBytesCopied/Full (every path captures
    /// the same snapshots whoever runs it). Scheduling-dependent
    /// (excluded from determinism comparisons, like timings):
    /// steals, perWorkerCycles, packedBatches, packedSweeps,
    /// packedLaneCycles.
    /// @{
    uint64_t totalCycles = 0;
    uint32_t pathsExplored = 0;
    uint32_t dedupMerges = 0;
    /** Work items taken from another worker's deque. */
    uint32_t steals = 0;
    /** Bytes actually stored by fork snapshots (delta or full). */
    uint64_t snapshotBytesCopied = 0;
    /** Bytes full-copy snapshots of the same forks would have
     *  stored (the delta savings denominator). */
    uint64_t snapshotBytesFull = 0;
    /** Simulated cycles per exploration worker (size numThreads). */
    std::vector<uint64_t> perWorkerCycles;
    /// @name Packed-frontier counters (zero unless packedExplore)
    /// @{
    /** Lane-refill rounds that loaded at least one pending path. */
    uint64_t packedBatches = 0;
    /** Packed step() sweeps executed. */
    uint64_t packedSweeps = 0;
    /** Live-lane cycles simulated by those sweeps; divided by
     *  64 * packedSweeps this is the mean lane occupancy. */
    uint64_t packedLaneCycles = 0;
    /// @}
    /// @}
};

class SymbolicEngine {
  public:
    SymbolicEngine(msp::System &sys, const SymbolicConfig &cfg);

    /** Run Algorithm 1 + per-cycle Algorithm 2 on @p image. */
    SymbolicResult run(const isa::Image &image);

  private:
    msp::System *sys_;
    SymbolicConfig cfg_;
};

} // namespace sym
} // namespace ulpeak

#endif // ULPEAK_SYM_SYMBOLIC_ENGINE_HH
