/**
 * @file
 * The symbolic execution tree of Algorithm 1.
 *
 * Each node is a fork-free run of cycles annotated with per-cycle
 * bound power (and optionally per-module power and instruction
 * attribution). Edges carry the constrained PC target; an edge may
 * point at an already-simulated node when Algorithm 1's dedup check
 * ("if a not-in T") merged the path (this is how input-dependent loops
 * terminate). Peak energy (Section 3.3) is the max-energy
 * root-to-leaf path; input-independent loops are unrolled naturally by
 * simulation, merge cross-edges are handled by memoization, and true
 * back-edges (unbounded input-dependent loops) require an explicit
 * iteration bound, as in the paper.
 */

#ifndef ULPEAK_SYM_EXEC_TREE_HH
#define ULPEAK_SYM_EXEC_TREE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace ulpeak {
namespace sym {

constexpr uint32_t kNoNode = UINT32_MAX;

struct TreeEdge {
    uint32_t targetPc = 0;
    uint32_t child = kNoNode;
    bool merged = false; ///< points at a previously simulated node
};

/** Per-cycle attribution data (kept only when requested). */
struct CycleInfo {
    uint32_t instrPc = 0; ///< instruction occupying execute/mem
    uint8_t fsmState = 0;
};

struct TreeNode {
    uint32_t parent = kNoNode;
    std::vector<float> powerW;
    std::vector<TreeEdge> edges;
    uint32_t branchPc = 0;   ///< address of the forking instruction
    bool endsHalted = false;
    /** Optional per-cycle per-top-module power (modulePowerW[c][m]). */
    std::vector<std::vector<float>> modulePowerW;
    std::vector<CycleInfo> cycleInfo;
};

struct PathEnergy {
    double energyJ = 0.0;
    uint64_t cycles = 0;
};

class ExecTree {
  public:
    uint32_t
    newNode(uint32_t parent)
    {
        nodes_.emplace_back();
        nodes_.back().parent = parent;
        return uint32_t(nodes_.size() - 1);
    }

    TreeNode &node(uint32_t id) { return nodes_[id]; }
    const TreeNode &node(uint32_t id) const { return nodes_[id]; }
    size_t numNodes() const { return nodes_.size(); }

    uint64_t totalCycles() const;

    /**
     * Concatenate all node traces in depth-first order -- the
     * "flattened execution trace" Algorithm 2 consumes. Merged edges
     * are not re-expanded (their target was already emitted).
     */
    std::vector<float> flatten() const;

    /** Flatten with node/offset provenance for COI reporting. */
    struct FlatRef {
        uint32_t nodeId;
        uint32_t offset;
    };
    std::vector<FlatRef> flattenRefs() const;

    /**
     * Maximum root-to-leaf path energy at @p tclk seconds/cycle
     * (Section 3.3). Merge cross-edges are followed with memoization;
     * a back-edge (cycle) multiplies the loop-body energy by
     * @p loop_bound, and is an error when loop_bound == 0.
     * @throws std::runtime_error for unbounded back-edges.
     */
    PathEnergy maxPathEnergy(double tclk,
                             unsigned loop_bound = 0) const;

    /**
     * maxPathEnergy under a repeating per-cycle clock schedule:
     * post-reset cycle c costs powerW * tclk_by_phase[c % period]
     * seconds (the operating-mode schedules of scenario::Scenario,
     * where each phase runs at its mode's clock). Node start phases
     * are reconstructed from parent pointers; the engine's dedup
     * keys include the schedule phase, so every offset a merged node
     * is reachable at is congruent mod the period and the body of a
     * back-edge loop always spans a whole number of periods --
     * making the per-phase costing well-defined and
     * scheduling-independent. With a single-entry schedule this is
     * exactly maxPathEnergy(tclk_by_phase[0], loop_bound).
     */
    PathEnergy maxPathEnergy(const std::vector<double> &tclk_by_phase,
                             unsigned loop_bound = 0) const;

    /**
     * The cycle-aligned upper-bound power envelope over *every* walk
     * of the tree: env[c] = max over all root-to-leaf walks of the
     * walk's power at cycle c. Unlike flatten() -- which emits each
     * node's trace exactly once in depth-first order -- this follows
     * merged edges too, replaying an already-simulated node's trace
     * at every cycle offset a walk can reach it at, so the envelope
     * bounds the merged continuations that exploration never
     * re-simulated. The reachable (node, offset) set is a function of
     * the tree's logical structure alone, and per-cycle float max is
     * order-independent, so the envelope is byte-identical under any
     * exploration scheduling.
     *
     * Back-edges (bounded input-dependent loops) contribute walks of
     * up to @p loop_bound iterations per back-edge, capped at
     * totalCycles() * loop_bound^B cycles for B back-edges (nested
     * loops multiply); they are an error when loop_bound == 0, as
     * in maxPathEnergy. @p pair_budget bounds the traversal on
     * pathologically merge-heavy or deeply nested trees.
     * @throws std::runtime_error for unbounded back-edges or an
     *         exhausted pair budget.
     */
    std::vector<float>
    envelopePowerW(unsigned loop_bound = 0,
                   uint64_t pair_budget = uint64_t(1) << 22) const;

  private:
    /** Deque, not vector: newNode() must never move existing nodes.
     *  The parallel exploration allocates children under the tree
     *  lock while other workers hold references to (and write the
     *  traces of) nodes they own; deque growth keeps those
     *  references valid. */
    std::deque<TreeNode> nodes_;
};

} // namespace sym
} // namespace ulpeak

#endif // ULPEAK_SYM_EXEC_TREE_HH
