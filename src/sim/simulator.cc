#include "sim/simulator.hh"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace ulpeak {

Simulator::Simulator(const Netlist &nl, EvalMode mode)
    : nl_(&nl), flat_(&nl.flat()), mode_(mode)
{
    if (!nl.finalized())
        throw std::logic_error("Simulator requires a finalized netlist");
    size_t n = nl.numGates();
    val_.assign(n, V4::X);
    prev_.assign(n, V4::X);
    // Padded to a multiple of 8 so the canonical active-list rebuild
    // can scan the flags a word at a time; pad bytes stay 0.
    active_.assign((n + 7) & ~size_t(7), 0);
    activePrev_.assign(active_.size(), 0);
    loadedPrevEdge_.assign(nl.seqGates().size(), 1);
    seqIndexOf_.assign(n, UINT32_MAX);
    for (size_t i = 0; i < nl.seqGates().size(); ++i)
        seqIndexOf_[nl.seqGates()[i]] = uint32_t(i);
    topModuleOf_.resize(n);
    for (GateId g = 0; g < n; ++g)
        topModuleOf_[g] = nl.topLevelModuleOf(nl.gate(g).module);
    for (GateId g = 0; g < n; ++g)
        if (flat_->kind[g] == CellKind::Input)
            inputGates_.push_back(g);
    dirty_.assign(flat_->numNodes(), 0);
    buckets_.resize(flat_->numLevels);
    activeList_.reserve(n / 4 + 64);
    seqMark_[0].assign(nl.seqGates().size(), 0);
    seqMark_[1].assign(nl.seqGates().size(), 0);
    markAllSeq();
    hookFns_.resize(nl.hooks().size());
    moduleEnergy_.assign(nl.numModules(), 0.0);
}

void
Simulator::setHookFn(uint32_t hook_id, HookFn fn)
{
    hookFns_.at(hook_id) = std::move(fn);
}

void
Simulator::addEdgeFn(EdgeFn fn)
{
    edgeFns_.push_back(std::move(fn));
}

void
Simulator::enqueueNode(uint32_t node)
{
    if (dirty_[node])
        return;
    dirty_[node] = 1;
    buckets_[flat_->levelOfNode[node]].push_back(node);
}

void
Simulator::enqueueSeqNext(uint32_t seq_index)
{
    if (seqMark_[0][seq_index])
        return;
    seqMark_[0][seq_index] = 1;
    seqQ_[0].push_back(seq_index);
}

void
Simulator::enqueueSeqBoth(uint32_t seq_index)
{
    enqueueSeqNext(seq_index);
    if (seqMark_[1][seq_index])
        return;
    seqMark_[1][seq_index] = 1;
    seqQ_[1].push_back(seq_index);
}

void
Simulator::markSeqConsumers(GateId g)
{
    uint32_t begin = flat_->seqFanoutOffset[g];
    uint32_t end = flat_->seqFanoutOffset[g + 1];
    for (uint32_t i = begin; i < end; ++i)
        enqueueSeqBoth(flat_->seqFanout[i]);
}

void
Simulator::markAllSeq()
{
    for (int w = 0; w < 2; ++w) {
        seqQ_[w].clear();
        std::fill(seqMark_[w].begin(), seqMark_[w].end(), 1);
        seqQ_[w].resize(seqMark_[w].size());
        for (uint32_t i = 0; i < seqQ_[w].size(); ++i)
            seqQ_[w][i] = i;
    }
}

void
Simulator::markFanoutsDirty(GateId g, bool value_changed)
{
    // A consumer must re-evaluate when a fanin's value changed. When
    // the fanin is merely X-active (value held), only X-valued
    // consumers can be affected: a known-valued consumer of unchanged
    // fanins recomputes the same known value and stays inactive
    // (Section 3.1's X rule applies to X outputs only).
    uint32_t begin = flat_->fanoutOffset[g];
    uint32_t end = flat_->fanoutOffset[g + 1];
    // An engaged prune mask drops proven-constant consumers from the
    // worklist: re-evaluating one reproduces its settled value and
    // inactivity, so skipping is value- and energy-neutral.
    const uint8_t *pm = staticPruneActive() ? pruneMask_->data()
                                            : nullptr;
    if (value_changed) {
        for (uint32_t i = begin; i < end; ++i) {
            GateId t = flat_->fanout[i];
            if (pm && pm[t])
                continue;
            enqueueNode(t);
        }
    } else {
        for (uint32_t i = begin; i < end; ++i) {
            GateId t = flat_->fanout[i];
            if (val_[t] == V4::X && !(pm && pm[t]))
                enqueueNode(t);
        }
    }
}

void
Simulator::clearEventQueues()
{
    for (auto &b : buckets_) {
        for (uint32_t node : b)
            dirty_[node] = 0;
        b.clear();
    }
}

void
Simulator::setStaticPrune(
    std::shared_ptr<const std::vector<uint8_t>> mask,
    uint64_t engage_cycle)
{
    if (mask && mask->size() != nl_->numGates())
        throw std::logic_error(
            "static prune mask size != gate count");
    pruneMask_ = std::move(mask);
    pruneEngage_ = engage_cycle;
    pruneDisabled_ = false;
    unprunedRuns_.clear();
    if (!pruneMask_)
        return;
    const std::vector<uint8_t> &m = *pruneMask_;
    for (uint32_t g = 0; g < m.size();) {
        if (m[g]) {
            ++g;
            continue;
        }
        uint32_t begin = g;
        while (g < m.size() && !m[g])
            ++g;
        unprunedRuns_.push_back({begin, g});
    }
}

void
Simulator::setInput(GateId g, V4 v)
{
    assert(nl_->gate(g).kind == CellKind::Input);
    if (pruneMask_ && !pruneDisabled_ && (*pruneMask_)[g] &&
        cycle_ >= pruneEngage_) {
        if (val_[g] == v)
            return; // settled pinned input: provably no event
        // Out-of-contract drive of a proven-constant input: fall
        // back to unpruned operation rather than go unsound.
        pruneDisabled_ = true;
    }
    if (mode_ == EvalMode::EventDriven) {
        // A changed value must wake consumers immediately: when the
        // call happens between steps (legal per the API), the next
        // prologue copies val_ into prev_, so the input itself
        // evaluates as unchanged and would never propagate the edit.
        if (val_[g] != v) {
            markFanoutsDirty(g, /*value_changed=*/true);
            markSeqConsumers(g);
        }
        enqueueNode(g);
    }
    val_[g] = v;
}

void
Simulator::setInputBus(const std::vector<GateId> &bus, Word16 w)
{
    for (size_t i = 0; i < bus.size(); ++i)
        setInput(bus[i], w.bit(unsigned(i)));
}

void
Simulator::forceValue(GateId g, V4 v)
{
    // Forcing a masked gate off its proven constant voids the static
    // analysis: disable pruning rather than go unsound (the symbolic
    // engine only ever forces PC / register flops, never masked
    // gates).
    if (pruneMask_ && !pruneDisabled_ && (*pruneMask_)[g] &&
        val_[g] != v && cycle_ >= pruneEngage_)
        pruneDisabled_ = true;
    // Forcing a scheduled combinational gate cannot work in either
    // kernel (the full sweep would recompute it from its fanins,
    // discarding the force): only sequential outputs and Input-kind
    // gates hold forced values.
    assert(seqIndexOf_[g] != UINT32_MAX ||
           flat_->kind[g] == CellKind::Input);
    if (mode_ == EvalMode::EventDriven && val_[g] != v) {
        markFanoutsDirty(g, /*value_changed=*/true);
        markSeqConsumers(g);
        // A forced flop's own next-edge evaluation reads the forced
        // q; a forced input must re-derive its activity flag like a
        // driver-set one.
        if (seqIndexOf_[g] != UINT32_MAX)
            enqueueSeqNext(seqIndexOf_[g]);
        else
            enqueueNode(g);
    }
    val_[g] = v;
}

void
Simulator::forceBus(const std::vector<GateId> &bus, Word16 w)
{
    for (size_t i = 0; i < bus.size(); ++i)
        forceValue(bus[i], w.bit(unsigned(i)));
}

bool
Simulator::injectSeuFlip(GateId g)
{
    // Sequential state only: a flipped combinational gate would be
    // recomputed from its fanins by the very next sweep, discarding
    // the flip (same reasoning as forceValue).
    uint32_t si = seqIndexOf_[g];
    assert(si != UINT32_MAX);
    (void)si;
    // An upset can ripple into a proven-constant cone (the proof
    // assumed fault-free operation), so any injection permanently
    // disables pruning for this simulator. Fault campaigns never
    // install masks; this is the defensive backstop.
    if (pruneMask_)
        pruneDisabled_ = true;
    V4 cur = val_[g];
    if (cur == V4::X)
        return false;
    val_[g] = (cur == V4::One) ? V4::Zero : V4::One;
    // The upset is a real output transition this cycle. If it flips
    // the flop back to its pre-edge value the known->known p == c rule
    // in accumulateEnergy bills no transition energy -- the flag then
    // only feeds X-propagation, exactly like a glitchless hold.
    if (!active_[g]) {
        active_[g] = 1;
        activeList_.push_back(g); // sweepEvent seeds from this list
    }
    if (mode_ == EvalMode::EventDriven) {
        markFanoutsDirty(g, /*value_changed=*/true);
        markSeqConsumers(g);
        // The flipped q feeds this flop's own next-edge evaluation.
        enqueueSeqNext(si);
    }
    return true;
}

Word16
Simulator::readBus(const std::vector<GateId> &bus) const
{
    Word16 w;
    for (size_t i = 0; i < bus.size(); ++i)
        w.setBit(unsigned(i), val_[bus[i]]);
    return w;
}

void
Simulator::addBehavioralEnergyJ(double j, ModuleId top_module)
{
    actualEnergy_ += j;
    boundEnergy_ += j;
    behavioralEnergy_ += j;
    moduleEnergy_[top_module] += j;
}

template <bool kEvent>
void
Simulator::evalSeqGate(size_t i)
{
    const FlatNetlist &f = *flat_;
    GateId g = nl_->seqGates()[i];
    uint32_t off = f.faninOffset[g];
    unsigned nin = f.nin[g];
    V4 ins[3];
    for (unsigned p = 0; p < nin; ++p)
        ins[p] = prev_[f.fanin[off + p]];
    V4 q = prev_[g];
    bool held = false;
    V4 newq = evalSeqCell(f.kind[g], q, ins, held);
    val_[g] = newq;

    bool act;
    bool x_involved = !isKnown(newq) || !isKnown(q);
    if (held) {
        act = false;
    } else if (!x_involved) {
        act = newq != q;
    } else {
        // An unknown output may have toggled at this edge unless we
        // can prove the loaded value is the same unknown as before:
        // the flop loaded at the previous edge too, its D pin was
        // inactive then, and no control pin is X.
        bool ctrl_x = false;
        for (unsigned p = 1; p < nin; ++p)
            if (!isKnown(ins[p]))
                ctrl_x = true;
        act = !loadedPrevEdge_[i] || ctrl_x ||
              activePrev_[f.fanin[off]] ||
              (isKnown(newq) != isKnown(q));
    }
    active_[g] = act;
    if (act)
        activeList_.push_back(g);
    uint8_t loaded = held ? 0 : 1;
    if (kEvent && (act || loaded != loadedPrevEdge_[i])) {
        // Changed state (q or load history) feeds this flop's own
        // next-edge evaluation.
        enqueueSeqNext(uint32_t(i));
    }
    loadedPrevEdge_[i] = loaded;
}

void
Simulator::updateSequential()
{
    if (mode_ == EvalMode::FullSweep) {
        for (size_t i = 0; i < nl_->seqGates().size(); ++i)
            evalSeqGate<false>(i);
        return;
    }
    // Rotate the wake windows: drain what was marked for this edge,
    // promote the echo window; marks generated during the drain (and
    // during the upcoming combinational phase) land on the next edge.
    seqDrain_.swap(seqQ_[0]);
    seqQ_[0].swap(seqQ_[1]);
    seqMark_[0].swap(seqMark_[1]);
    for (uint32_t i : seqDrain_) {
        seqMark_[1][i] = 0; // the drained window's bitmap (post-swap)
        evalSeqGate<true>(i);
    }
    seqDrain_.clear();
}

template <bool kEvent>
void
Simulator::evalNode(uint32_t node)
{
    const FlatNetlist &f = *flat_;
    if (node >= f.numGates) {
        // Behavioral hook at its levelized position.
        HookFn &fn = hookFns_[node - f.numGates];
        if (fn)
            fn(*this);
        return;
    }
    GateId g = node;
    switch (f.kind[g]) {
      case CellKind::Const0:
        val_[g] = V4::Zero;
        active_[g] = 0;
        return;
      case CellKind::Const1:
        val_[g] = V4::One;
        active_[g] = 0;
        return;
      case CellKind::Input: {
        // Value was set by the driver or a hook (or holds over from
        // the previous cycle). An unknown input may toggle at any
        // time, so X counts as active.
        bool act = val_[g] != prev_[g] || val_[g] == V4::X;
        active_[g] = act;
        if (act && kEvent) {
            markFanoutsDirty(g, val_[g] != prev_[g]);
            markSeqConsumers(g);
        }
        return;
      }
      default:
        break;
    }

    V4 ins[4];
    bool fanin_active = false;
    uint32_t off = f.faninOffset[g];
    unsigned nin = f.nin[g];
    for (unsigned p = 0; p < nin; ++p) {
        GateId src = f.fanin[off + p];
        ins[p] = val_[src];
        fanin_active |= active_[src] != 0;
    }
    V4 v = evalCell(f.kind[g], ins);
    val_[g] = v;
    bool act = v != prev_[g] || (v == V4::X && fanin_active);
    active_[g] = act;
    if (act && kEvent) {
        markFanoutsDirty(g, v != prev_[g]);
        markSeqConsumers(g);
    }
}

void
Simulator::sweepFull()
{
    if (!staticPruneActive()) {
        for (uint32_t node : flat_->schedule)
            evalNode<false>(node);
        return;
    }
    // A masked gate whose activity flag is clear already settled to
    // its proven constant and cannot toggle again: its re-evaluation
    // would reproduce val_ and a clear flag, so skipping it is
    // exact. A masked gate with the flag still set (its settle
    // transition, or any pre-engage activity carried in a restored
    // snapshot) is evaluated normally, which clears the flag.
    const uint8_t *pm = pruneMask_->data();
    for (uint32_t node : flat_->schedule) {
        if (node < flat_->numGates && pm[node] && !active_[node])
            continue;
        evalNode<false>(node);
    }
}

void
Simulator::sweepEvent()
{
    const FlatNetlist &f = *flat_;
    // Hooks run every cycle: behavioral state (RAM contents) can
    // change between cycles without a netlist-visible event, and hooks
    // bill per-access energy, so skipping them would diverge from the
    // full sweep.
    for (uint32_t hid = 0; hid < f.numHooks; ++hid)
        enqueueNode(f.numGates + hid);
    // Unknown inputs count as active every cycle (Section 3.1) even
    // when untouched; driver-touched inputs were enqueued by
    // setInput().
    for (GateId g : inputGates_)
        if (val_[g] == V4::X)
            enqueueNode(g);
    // Active sequential outputs wake their fanout cones (an inactive
    // sequential gate provably kept its value) and their sequential
    // consumers. activeList_ holds exactly the active sequential
    // gates at this point.
    for (GateId g : activeList_) {
        markFanoutsDirty(g, val_[g] != prev_[g]);
        markSeqConsumers(g);
    }

    // Drain by ascending level; within a level no node depends on
    // another, so insertion order is fine -- the activity list is
    // canonicalized (sorted) before the energy accumulation.
    for (uint32_t l = 0; l < f.numLevels; ++l) {
        std::vector<uint32_t> &b = buckets_[l];
        for (size_t i = 0; i < b.size(); ++i) {
            uint32_t node = b[i];
            dirty_[node] = 0;
            evalNode<true>(node);
        }
        b.clear();
    }
}

void
Simulator::rebuildActiveList()
{
    // Canonicalize the activity list: the evaluation order of the
    // event-driven kernel differs from the full sweep's within a
    // level, and floating-point sums are order-sensitive. Rebuilding
    // the list in ascending gate-id order from the flag bitmap (a
    // word at a time; the tail is zero-padded) makes per-cycle
    // energies and the activeGates() view bit-identical across
    // kernels, cheaper than sorting the list.
    activeList_.clear();
    const uint8_t *flags = active_.data();
    for (size_t base = 0; base < active_.size(); base += 8) {
        uint64_t w;
        std::memcpy(&w, flags + base, 8);
        while (w) {
            unsigned byte = unsigned(__builtin_ctzll(w)) >> 3;
            activeList_.push_back(GateId(base + byte));
            w &= ~(uint64_t(0xff) << (byte * 8));
        }
    }
}

void
Simulator::accumulateEnergy()
{
    rebuildActiveList();

    // Per-cycle energy: concrete transitions (actual) and the
    // Algorithm-2 per-cycle peak assignment (bound).
    const FlatNetlist &f = *flat_;
    for (GateId g : activeList_) {
        V4 p = prev_[g];
        V4 c = val_[g];
        double e;
        if (isKnown(p) && isKnown(c)) {
            if (p == c)
                continue; // active-X propagation flag only, no toggle
            e = (c == V4::One) ? nl_->riseEnergyJ(g)
                               : nl_->fallEnergyJ(g);
            actualEnergy_ += e;
        } else if (isKnown(p)) {
            // Assign the X to !p: the transition p -> !p happened.
            e = (p == V4::Zero) ? nl_->riseEnergyJ(g)
                                : nl_->fallEnergyJ(g);
        } else if (isKnown(c)) {
            // Assign the previous X to !c.
            e = (c == V4::One) ? nl_->riseEnergyJ(g)
                               : nl_->fallEnergyJ(g);
        } else {
            // Both unknown: the cell's maximum-power transition
            // (Algorithm 2, maxTransition lookup).
            e = f.maxE[g];
        }
        boundEnergy_ += e;
        moduleEnergy_[topModuleOf_[g]] += e;
    }
}

void
Simulator::step(const std::function<void(Simulator &)> &driver)
{
    // Commit edge effects (memory writes) of the previous cycle.
    if (cycle_ > 0)
        for (auto &fn : edgeFns_)
            fn(*this);

    activePrev_ = active_;
    if (mode_ == EvalMode::EventDriven) {
        // Skipped gates must read as inactive: clear the flags of last
        // cycle's active set (the only set flags) instead of sweeping
        // the whole array.
        for (GateId g : activeList_)
            active_[g] = 0;
    }
    prev_ = val_;
    activeList_.clear();
    actualEnergy_ = 0.0;
    boundEnergy_ = 0.0;
    behavioralEnergy_ = 0.0;
    std::fill(moduleEnergy_.begin(), moduleEnergy_.end(), 0.0);

    updateSequential();
    if (driver)
        driver(*this);
    if (mode_ == EvalMode::FullSweep) {
        sweepFull();
    } else if (cycle_ == 0) {
        // The first cycle resolves the power-on state (constants leave
        // X, everything is potentially stale): evaluate everything
        // once, then start event-driven from a consistent state. The
        // oblivious sweep records no wake marks, so re-arm every flop
        // for the next two edges.
        sweepFull();
        clearEventQueues();
        markAllSeq();
    } else {
        sweepEvent();
    }

    accumulateEnergy();
    ++cycle_;
}

Simulator::Snapshot
Simulator::snapshot() const
{
    // Captured between steps: active_ holds the last stepped cycle's
    // activity, which the next step() moves into activePrev_.
    return Snapshot{val_, active_, loadedPrevEdge_, cycle_};
}

void
Simulator::restore(const Snapshot &s)
{
    // prev_ is deliberately left alone: the next step() rebuilds it
    // from val_ before any read.
    val_ = s.val;
    active_ = s.activeLast;
    loadedPrevEdge_ = s.loadedPrevEdge;
    cycle_ = s.cycle;
    // Rebuild the active list so the next step's flag-clearing pass
    // (event mode) sees every set flag; consumers observing
    // activeGates() after a restore get the restored cycle's set.
    rebuildActiveList();
    // The restored state carries no wake marks: re-arm every flop.
    // (Stale combinational queue entries are harmless -- evaluating a
    // clean gate reproduces its full-sweep value and activity.)
    if (mode_ == EvalMode::EventDriven)
        markAllSeq();
}

namespace {

/** Append (index, new) pairs where @p cur differs from @p base.
 *  Hot path of every delta fork: forks are temporally close to their
 *  base, so almost every byte compares equal -- scan a word at a time
 *  (same idiom as rebuildActiveList) and only touch bytes of words
 *  that differ, instead of a branch per element. */
template <typename T>
void
diffInto(const std::vector<T> &cur, const std::vector<T> &base,
         std::vector<uint32_t> &idx, std::vector<T> &out)
{
    static_assert(sizeof(T) == 1,
                  "word-at-a-time diff assumes byte elements");
    if (cur.size() != base.size())
        throw std::logic_error(
            "delta snapshot against a base from a different netlist");
    const auto *a = reinterpret_cast<const uint8_t *>(cur.data());
    const auto *b = reinterpret_cast<const uint8_t *>(base.data());
    size_t n = cur.size();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        uint64_t wa, wb;
        std::memcpy(&wa, a + i, 8);
        std::memcpy(&wb, b + i, 8);
        uint64_t d = wa ^ wb;
        while (d) {
            unsigned byte = unsigned(__builtin_ctzll(d)) >> 3;
            idx.push_back(uint32_t(i + byte));
            out.push_back(cur[i + byte]);
            d &= ~(uint64_t(0xff) << (byte * 8));
        }
    }
    for (; i < n; ++i) {
        if (a[i] != b[i]) {
            idx.push_back(uint32_t(i));
            out.push_back(cur[i]);
        }
    }
}

template <typename T>
void
applyDelta(std::vector<T> &dst, const std::vector<T> &base,
           const std::vector<uint32_t> &idx, const std::vector<T> &v)
{
    dst = base; // capacity reuse: no allocation on repeated restores
    for (size_t i = 0; i < idx.size(); ++i)
        dst[idx[i]] = v[i];
}

} // namespace

size_t
Simulator::DeltaSnapshot::deltaBytes() const
{
    return valIdx.size() * (sizeof(uint32_t) + sizeof(V4)) +
           actIdx.size() * (sizeof(uint32_t) + sizeof(uint8_t)) +
           seqIdx.size() * (sizeof(uint32_t) + sizeof(uint8_t));
}

size_t
Simulator::bytesOf(const Snapshot &s)
{
    return s.val.size() * sizeof(V4) + s.activeLast.size() +
           s.loadedPrevEdge.size();
}

Simulator::DeltaSnapshot
Simulator::snapshotDelta(std::shared_ptr<const Snapshot> base) const
{
    DeltaSnapshot d;
    diffInto(val_, base->val, d.valIdx, d.valNew);
    diffInto(active_, base->activeLast, d.actIdx, d.actNew);
    diffInto(loadedPrevEdge_, base->loadedPrevEdge, d.seqIdx,
             d.seqNew);
    d.cycle = cycle_;
    d.base = std::move(base);
    return d;
}

Simulator::DeltaSnapshot
Simulator::deltaBetween(const Snapshot &cur,
                        std::shared_ptr<const Snapshot> base)
{
    DeltaSnapshot d;
    diffInto(cur.val, base->val, d.valIdx, d.valNew);
    diffInto(cur.activeLast, base->activeLast, d.actIdx, d.actNew);
    diffInto(cur.loadedPrevEdge, base->loadedPrevEdge, d.seqIdx,
             d.seqNew);
    d.cycle = cur.cycle;
    d.base = std::move(base);
    return d;
}

void
Simulator::restore(const DeltaSnapshot &s)
{
    applyDelta(val_, s.base->val, s.valIdx, s.valNew);
    applyDelta(active_, s.base->activeLast, s.actIdx, s.actNew);
    applyDelta(loadedPrevEdge_, s.base->loadedPrevEdge, s.seqIdx,
               s.seqNew);
    cycle_ = s.cycle;
    // Same tail as restore(Snapshot): see there for why.
    rebuildActiveList();
    if (mode_ == EvalMode::EventDriven)
        markAllSeq();
}

Simulator::Snapshot
Simulator::materialize(const DeltaSnapshot &s)
{
    Snapshot full;
    applyDelta(full.val, s.base->val, s.valIdx, s.valNew);
    applyDelta(full.activeLast, s.base->activeLast, s.actIdx,
               s.actNew);
    applyDelta(full.loadedPrevEdge, s.base->loadedPrevEdge, s.seqIdx,
               s.seqNew);
    full.cycle = s.cycle;
    return full;
}

V4
Simulator::predictSeqValue(GateId g) const
{
    const FlatNetlist &f = *flat_;
    uint32_t off = f.faninOffset[g];
    V4 ins[3];
    for (unsigned p = 0; p < f.nin[g]; ++p)
        ins[p] = val_[f.fanin[off + p]];
    bool held = false;
    return evalSeqCell(f.kind[g], val_[g], ins, held);
}

uint64_t
Simulator::hashSeqState() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (GateId g : nl_->seqGates()) {
        h ^= uint8_t(val_[g]);
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace {

/** The shared body of hashFullState / hashSnapshotState: FNV-1a over
 *  (values, activity, load history), restricted to the unmasked runs
 *  when @p runs is non-null. */
uint64_t
hashStateBytes(const uint8_t *vals, size_t nval, const uint8_t *act,
               size_t nact, const uint8_t *lpe, size_t nlpe,
               const std::vector<std::pair<uint32_t, uint32_t>> *runs)
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](const uint8_t *p, size_t len) {
        for (size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    };
    if (runs) {
        // Masked gates hold their proven constant and stay inactive
        // in every reachable state, so their bytes carry no
        // information: hash only the unmasked runs. The basis is a
        // pure function of (mask, engage, cycle), identical across
        // workers, kernels, and snapshot modes, so dedup keys stay
        // scheduling-independent.
        for (const auto &r : *runs)
            mix(vals + r.first, r.second - r.first);
        for (const auto &r : *runs)
            mix(act + r.first, r.second - r.first);
        mix(lpe, nlpe);
        return h;
    }
    mix(vals, nval);
    mix(act, nact);
    mix(lpe, nlpe);
    return h;
}

} // namespace

uint64_t
Simulator::hashFullState() const
{
    // FNV-1a over everything snapshot() captures (except the cycle
    // counter): two simulators with equal full-state hashes produce
    // identical continuations under identical drivers.
    return hashStateBytes(
        reinterpret_cast<const uint8_t *>(val_.data()), val_.size(),
        active_.data(), active_.size(), loadedPrevEdge_.data(),
        loadedPrevEdge_.size(),
        staticPruneActive() ? &unprunedRuns_ : nullptr);
}

uint64_t
Simulator::hashSnapshotState(const Snapshot &s) const
{
    // Same basis rule as hashFullState, with the engage test applied
    // to the snapshot's cycle (the state's own age, not this
    // simulator's).
    bool pruned = pruneMask_ && !pruneDisabled_ &&
                  s.cycle >= pruneEngage_;
    return hashStateBytes(
        reinterpret_cast<const uint8_t *>(s.val.data()), s.val.size(),
        s.activeLast.data(), s.activeLast.size(),
        s.loadedPrevEdge.data(), s.loadedPrevEdge.size(),
        pruned ? &unprunedRuns_ : nullptr);
}

} // namespace ulpeak
