/**
 * @file
 * Small peripherals: watchdog (WDTCTL + free-running counter until
 * held), SFR block (interrupt enable/flag registers, I/O port), debug
 * unit (two host-accessible registers, idle during normal runs) and
 * clk_module (reset synchronizer / clock gating stub). These mirror
 * the modules of openMSP430 that appear in the paper's per-module
 * power breakdown (Figure 3.6).
 */

#include "msp/internal.hh"

namespace ulpeak {
namespace msp {

using hw::Builder;

namespace {

/** Local peripheral write-select decode against the declared buses. */
struct BusDecode {
    Bus addrWord;
    Sig isPeriph;
    Builder *b;
    CpuBuild *c;

    BusDecode(Builder &bb, CpuBuild &cc) : b(&bb), c(&cc)
    {
        addrWord.resize(8);
        for (unsigned i = 0; i < 8; ++i)
            addrWord[i] = cc.mab[i + 1];
        isPeriph = bb.inv(bb.orN({cc.mab[9], cc.mab[10], cc.mab[11],
                                  cc.mab[12], cc.mab[13], cc.mab[14],
                                  cc.mab[15]}));
    }

    Sig
    wr(uint32_t addr) const
    {
        return b->andN({c->mbWr, isPeriph,
                        hw::equalConst(*b, addrWord,
                                       (addr >> 1) & 0xff)});
    }
};

} // namespace

void
buildPeripherals(Builder &b, CpuBuild &c)
{
    // ---- watchdog ---------------------------------------------------
    {
        hw::ModuleScope scope(b, "watchdog");
        c.h->modWatchdog = b.currentModule();
        BusDecode dec(b, c);

        // WDTCTL low byte, guarded by the 0x5a password in the write
        // data's high byte.
        Bus hi(8);
        for (unsigned i = 0; i < 8; ++i)
            hi[i] = c.mdbOut[i + 8];
        Sig password = hw::equalConst(b, hi, 0x5a);
        Sig ctlWr = b.and2(dec.wr(SystemMap::kWdtCtl), password);
        // POR-reset control/counter, like the real peripheral: the
        // counter runs from a known zero, so its background activity
        // is the realistic one-or-two bits per cycle rather than an
        // all-X storm.
        hw::Reg ctl = b.regDecl(8, "wdtctl", ctlWr, c.rstn);
        Bus ctlD(8);
        for (unsigned i = 0; i < 8; ++i)
            ctlD[i] = c.mdbOut[i];
        ctl.connect(ctlD);

        // Free-running interval counter until WDTHOLD (bit 7) is set.
        Sig hold = ctl.q(7);
        hw::Reg counter =
            b.regDecl(16, "wdt_counter", b.inv(hold), c.rstn);
        counter.connect(hw::addConst(b, counter.q(), 1));

        // Read-back: 0x69 in the high byte, control bits low.
        c.wdtReadData.resize(16);
        Bus hiConst = b.busConst(8, 0x69);
        for (unsigned i = 0; i < 8; ++i) {
            c.wdtReadData[i] = ctl.q(i);
            c.wdtReadData[i + 8] = hiConst[i];
        }
    }

    // ---- sfr (interrupt regs + I/O port) ----------------------------
    {
        hw::ModuleScope scope(b, "sfr");
        c.h->modSfr = b.currentModule();
        BusDecode dec(b, c);

        hw::Reg ie = b.regDecl(16, "sfr_ie",
                               dec.wr(SystemMap::kSfrIe), c.rstn);
        ie.connect(c.mdbOut);
        c.sfrIeQ = ie.q();

        hw::Reg ifg = b.regDecl(16, "sfr_ifg",
                                dec.wr(SystemMap::kSfrIfg), c.rstn);
        ifg.connect(c.mdbOut);
        c.sfrIfgQ = ifg.q();

        hw::Reg pout = b.regDecl(16, "port_out",
                                 dec.wr(SystemMap::kPortOut), c.rstn);
        pout.connect(c.mdbOut);
        c.poutQ = pout.q();

        // Interrupt-request masking per Chapter 6: the IRQ pin is
        // normally forced to 0 by the analysis harness; the masked
        // request is exposed for the interrupt-analysis experiment but
        // deliberately does not steer the PC.
        Sig gie = c.regQ[2][isa::kFlagGie];
        Sig masked = b.andN({c.irq, ie.q(0), gie});
        Sig pending = b.buf(masked);
        b.netlist().setName(pending, "irq_pending");
    }

    // ---- dbg ---------------------------------------------------------
    {
        hw::ModuleScope scope(b, "dbg");
        c.h->modDbg = b.currentModule();
        BusDecode dec(b, c);

        hw::Reg d0 = b.regDecl(16, "dbg_ctl",
                               dec.wr(SystemMap::kDbgCtl), c.rstn);
        d0.connect(c.mdbOut);
        c.dbg0Q = d0.q();

        hw::Reg d1 = b.regDecl(16, "dbg_data",
                               dec.wr(SystemMap::kDbgData), c.rstn);
        d1.connect(c.mdbOut);
        c.dbg1Q = d1.q();
    }

    // ---- clk_module ---------------------------------------------------
    {
        hw::ModuleScope scope(b, "clk_module");
        c.h->modClk = b.currentModule();

        // Two-stage reset synchronizer; downstream logic consumes the
        // raw pin (cycle-based model), the synchronizer mirrors the
        // structure of a real clock/reset module.
        hw::Reg sync0 = b.regDecl(1, "rst_sync0", kNoGate, c.rstn);
        sync0.connect({b.one()});
        hw::Reg sync1 = b.regDecl(1, "rst_sync1", kNoGate, c.rstn);
        sync1.connect({sync0.q(0)});
        Sig resetDone = b.buf(sync1.q(0));
        b.netlist().setName(resetDone, "reset_done");
    }
}

} // namespace msp
} // namespace ulpeak
