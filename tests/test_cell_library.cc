/**
 * @file
 * Unit tests for the synthetic standard-cell library: functional
 * evaluation (including X semantics), sequential cell behaviour and
 * the power-model lookups used by Algorithm 2.
 */

#include <gtest/gtest.h>

#include "cell/cell_library.hh"

namespace ulpeak {
namespace {

V4 Z = V4::Zero, O = V4::One, X = V4::X;

TEST(CellEval, BasicGates)
{
    V4 in2[2] = {O, Z};
    EXPECT_EQ(evalCell(CellKind::Nand2, in2), O);
    in2[1] = O;
    EXPECT_EQ(evalCell(CellKind::Nand2, in2), Z);
    EXPECT_EQ(evalCell(CellKind::And2, in2), O);
    EXPECT_EQ(evalCell(CellKind::Xor2, in2), Z);
    EXPECT_EQ(evalCell(CellKind::Xnor2, in2), O);
}

TEST(CellEval, XPropagation)
{
    V4 in2[2] = {Z, X};
    // Controlling values block X.
    EXPECT_EQ(evalCell(CellKind::And2, in2), Z);
    EXPECT_EQ(evalCell(CellKind::Nand2, in2), O);
    in2[0] = O;
    EXPECT_EQ(evalCell(CellKind::Or2, in2), O);
    EXPECT_EQ(evalCell(CellKind::Nor2, in2), Z);
    // Non-controlling values propagate X.
    EXPECT_EQ(evalCell(CellKind::And2, in2), X);
    EXPECT_EQ(evalCell(CellKind::Xor2, in2), X);
}

TEST(CellEval, ComplexCells)
{
    // AOI21: !((a & b) | c)
    V4 in3[3] = {O, O, Z};
    EXPECT_EQ(evalCell(CellKind::Aoi21, in3), Z);
    in3[0] = Z;
    EXPECT_EQ(evalCell(CellKind::Aoi21, in3), O);
    in3[2] = O;
    EXPECT_EQ(evalCell(CellKind::Aoi21, in3), Z);
    // OAI22: !((a | b) & (c | d))
    V4 in4[4] = {Z, Z, O, O};
    EXPECT_EQ(evalCell(CellKind::Oai22, in4), O);
    in4[0] = O;
    EXPECT_EQ(evalCell(CellKind::Oai22, in4), Z);
}

TEST(CellEval, Mux2SelectsByThirdPin)
{
    V4 in3[3] = {Z, O, Z};
    EXPECT_EQ(evalCell(CellKind::Mux2, in3), Z);
    in3[2] = O;
    EXPECT_EQ(evalCell(CellKind::Mux2, in3), O);
}

TEST(SeqCell, DffLoads)
{
    bool held = false;
    V4 in[1] = {O};
    EXPECT_EQ(evalSeqCell(CellKind::Dff, Z, in, held), O);
    EXPECT_FALSE(held);
}

TEST(SeqCell, DffeHoldIsProvable)
{
    bool held = false;
    V4 in[2] = {O, Z}; // d=1, en=0
    EXPECT_EQ(evalSeqCell(CellKind::Dffe, X, in, held), X);
    EXPECT_TRUE(held) << "enable low must prove the hold";
    in[1] = O;
    EXPECT_EQ(evalSeqCell(CellKind::Dffe, Z, in, held), O);
    EXPECT_FALSE(held);
}

TEST(SeqCell, DffeXEnable)
{
    bool held = false;
    // en=X with q==d known: value certain either way.
    V4 in[2] = {O, X};
    EXPECT_EQ(evalSeqCell(CellKind::Dffe, O, in, held), O);
    // en=X with q!=d: unknown.
    EXPECT_EQ(evalSeqCell(CellKind::Dffe, Z, in, held), X);
}

TEST(SeqCell, DffrReset)
{
    bool held = false;
    V4 in[2] = {O, Z}; // d=1, rstn=0
    EXPECT_EQ(evalSeqCell(CellKind::Dffr, X, in, held), Z);
    in[1] = O;
    EXPECT_EQ(evalSeqCell(CellKind::Dffr, Z, in, held), O);
    // X reset: 0 only if the loaded value is also 0.
    in[1] = X;
    in[0] = Z;
    EXPECT_EQ(evalSeqCell(CellKind::Dffr, Z, in, held), Z);
    in[0] = O;
    EXPECT_EQ(evalSeqCell(CellKind::Dffr, Z, in, held), X);
}

TEST(Library, RiseCostsMoreThanFall)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    for (CellKind k : {CellKind::Inv, CellKind::Nand2, CellKind::Xor2,
                       CellKind::Dff}) {
        EXPECT_GT(lib.transitionEnergyJ(k, true, 2),
                  lib.transitionEnergyJ(k, false, 2))
            << cellName(k);
    }
}

TEST(Library, FanoutIncreasesRiseEnergy)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    EXPECT_GT(lib.transitionEnergyJ(CellKind::Nand2, true, 8),
              lib.transitionEnergyJ(CellKind::Nand2, true, 1));
    // Falling edges do not charge the load.
    EXPECT_DOUBLE_EQ(lib.transitionEnergyJ(CellKind::Nand2, false, 8),
                     lib.transitionEnergyJ(CellKind::Nand2, false, 1));
}

TEST(Library, MaxTransitionMatchesAlgorithm2Lookup)
{
    CellLibrary lib = CellLibrary::tsmc65Like();
    EXPECT_DOUBLE_EQ(lib.maxTransitionEnergyJ(CellKind::Xor2, 3),
                     lib.transitionEnergyJ(CellKind::Xor2, true, 3));
    // maxTransition(g,1)=0 then maxTransition(g,2)=1: a rising edge.
    EXPECT_EQ(lib.maxTransitionValue(CellKind::Xor2, 1), V4::Zero);
    EXPECT_EQ(lib.maxTransitionValue(CellKind::Xor2, 2), V4::One);
}

TEST(Library, F1610ProfileIsHigherEnergy)
{
    CellLibrary a = CellLibrary::tsmc65Like();
    CellLibrary b = CellLibrary::f1610Like();
    EXPECT_GT(b.transitionEnergyJ(CellKind::Nand2, true, 2),
              a.transitionEnergyJ(CellKind::Nand2, true, 2));
    EXPECT_GT(b.vdd(), a.vdd());
}

TEST(Library, FaninCounts)
{
    EXPECT_EQ(cellFaninCount(CellKind::Inv), 1u);
    EXPECT_EQ(cellFaninCount(CellKind::Mux2), 3u);
    EXPECT_EQ(cellFaninCount(CellKind::Aoi22), 4u);
    EXPECT_EQ(cellFaninCount(CellKind::Dffre), 3u);
    EXPECT_EQ(cellFaninCount(CellKind::Input), 0u);
}

TEST(Library, SequentialClassification)
{
    EXPECT_TRUE(isSequential(CellKind::Dff));
    EXPECT_TRUE(isSequential(CellKind::Dffre));
    EXPECT_FALSE(isSequential(CellKind::Mux2));
    EXPECT_FALSE(isSequential(CellKind::Input));
}

} // namespace
} // namespace ulpeak
