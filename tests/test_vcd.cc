/**
 * @file
 * VCD writer/reader round-trip tests.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/vcd.hh"

namespace ulpeak {
namespace {

TEST(Vcd, RoundTripValues)
{
    std::ostringstream os;
    VcdWriter w(os, {"a", "b", "c"});
    w.writeCycle({V4::Zero, V4::One, V4::X});
    w.writeCycle({V4::Zero, V4::Zero, V4::X});
    w.writeCycle({V4::One, V4::Zero, V4::One});
    EXPECT_EQ(w.cyclesWritten(), 3u);

    std::istringstream is(os.str());
    VcdData d = readVcd(is);
    ASSERT_EQ(d.signals.size(), 3u);
    ASSERT_EQ(d.values.size(), 3u);
    EXPECT_EQ(d.values[0][0], V4::Zero);
    EXPECT_EQ(d.values[0][1], V4::One);
    EXPECT_EQ(d.values[0][2], V4::X);
    EXPECT_EQ(d.values[1][1], V4::Zero);
    EXPECT_EQ(d.values[1][2], V4::X);
    EXPECT_EQ(d.values[2][0], V4::One);
    EXPECT_EQ(d.values[2][2], V4::One);
}

TEST(Vcd, OnlyChangesEmitted)
{
    std::ostringstream os;
    VcdWriter w(os, {"s"});
    w.writeCycle({V4::One});
    w.writeCycle({V4::One});
    w.writeCycle({V4::One});
    std::string text = os.str();
    // One initial dump, no further change records.
    size_t count = 0;
    for (size_t pos = 0; (pos = text.find("1!", pos)) != std::string::npos;
         ++pos)
        ++count;
    EXPECT_EQ(count, 1u);
}

TEST(Vcd, SignalIndexLookup)
{
    std::ostringstream os;
    VcdWriter w(os, {"alpha", "beta"});
    w.writeCycle({V4::Zero, V4::One});
    std::istringstream is(os.str());
    VcdData d = readVcd(is);
    EXPECT_EQ(d.signalIndex("beta"), 1);
    EXPECT_EQ(d.signalIndex("gamma"), -1);
}

TEST(Vcd, ManySignalsUseMultiCharCodes)
{
    std::vector<std::string> names;
    for (int i = 0; i < 200; ++i)
        names.push_back("s" + std::to_string(i));
    std::ostringstream os;
    VcdWriter w(os, names);
    std::vector<V4> vals(200, V4::Zero);
    vals[150] = V4::One;
    w.writeCycle(vals);
    vals[199] = V4::X;
    w.writeCycle(vals);

    std::istringstream is(os.str());
    VcdData d = readVcd(is);
    ASSERT_EQ(d.signals.size(), 200u);
    EXPECT_EQ(d.values[0][150], V4::One);
    EXPECT_EQ(d.values[1][199], V4::X);
    EXPECT_EQ(d.values[1][0], V4::Zero);
}

TEST(Vcd, MismatchedWidthThrows)
{
    std::ostringstream os;
    VcdWriter w(os, {"a"});
    EXPECT_THROW(w.writeCycle({V4::Zero, V4::One}),
                 std::invalid_argument);
}

TEST(Vcd, EmptyStreamYieldsNoData)
{
    std::istringstream is("");
    VcdData d = readVcd(is);
    EXPECT_TRUE(d.signals.empty());
    EXPECT_TRUE(d.values.empty());
    EXPECT_EQ(d.signalIndex("anything"), -1);
}

TEST(Vcd, ZeroCycleWriterRoundTrips)
{
    // A writer that never dumps a cycle still emits a valid header;
    // the reader recovers the declarations and an empty trace.
    std::ostringstream os;
    VcdWriter w(os, {"a", "b"});
    EXPECT_EQ(w.cyclesWritten(), 0u);
    std::istringstream is(os.str());
    VcdData d = readVcd(is);
    ASSERT_EQ(d.signals.size(), 2u);
    EXPECT_TRUE(d.values.empty());
}

TEST(Vcd, SingleCycleAllXRoundTrips)
{
    std::ostringstream os;
    VcdWriter w(os, {"p", "q", "r"});
    w.writeCycle({V4::X, V4::X, V4::X});
    std::istringstream is(os.str());
    VcdData d = readVcd(is);
    ASSERT_EQ(d.values.size(), 1u);
    for (V4 v : d.values[0])
        EXPECT_EQ(v, V4::X);
}

} // namespace
} // namespace ulpeak
