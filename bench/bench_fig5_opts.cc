/**
 * @file
 * Experiments E6/E12/E13/E14 -- the optimization study:
 *
 *  - Figure 3.6: COI report sample (instructions + per-module power
 *    at the peak cycles of mult);
 *  - Figure 5.4: peak-power and dynamic-range reduction per benchmark
 *    from the OPT1-3 rewrites (best peak-reducing subset, as in
 *    Section 5.1);
 *  - Figure 5.5: mult's per-cycle trace before/after optimization;
 *  - Figure 5.6: performance degradation and energy overhead.
 *
 * Substrate note (EXPERIMENTS.md): our multi-cycle core serializes
 * the activity that openMSP430's two-stage pipeline overlaps, so the
 * absolute reductions are smaller than the paper's up-to-10%; the
 * directions (peaks reduced, small perf/energy cost, selective
 * application) reproduce.
 */

#include "bench/bench_util.hh"
#include "opt/optimizer.hh"
#include "peak/coi.hh"
#include "power/analysis.hh"

using namespace ulpeak;
using namespace ulpeak::bench_util;

int
main()
{
    msp::System sys(CellLibrary::tsmc65Like());

    printHeader("Fig 3.6: COI analysis of mult (top peak cycles)");
    {
        const auto &b = bench430::benchmarkByName("mult");
        isa::Image img = b.assembleImage();
        sym::SymbolicConfig cfg;
        cfg.recordModuleTrace = true;
        sym::SymbolicEngine eng(sys, cfg);
        auto sr = eng.run(img);
        if (sr.ok) {
            auto coi = peak::analyzeCoi(sys.netlist(), sr, img, 2);
            std::printf("%s", coi.toString().c_str());
        }
    }

    printHeader("Fig 5.4 + 5.6: optimization results per benchmark");
    std::printf("%-10s %6s %18s %14s %10s %10s\n", "benchmark",
                "opts", "peak[mW] pre->post", "peak red[%]",
                "perf[%]", "energy[%]");
    double sumRed = 0.0, maxRed = 0.0, sumPerf = 0.0, sumEnergy = 0.0;
    unsigned n = 0;
    for (const auto &b : bench430::allBenchmarks()) {
        opt::TransformConfig tc;
        peak::Options opts;
        auto r = opt::evaluateOptimizations(sys, b, tc, opts);
        if (!r.ok) {
            std::printf("%-10s FAILED: %s\n", b.name.c_str(),
                        r.error.c_str());
            continue;
        }
        std::printf("%-10s %2u/%u/%u  %8.3f -> %7.3f %14.2f %10.2f "
                    "%10.2f\n",
                    b.name.c_str(), r.transforms.opt1Applied,
                    r.transforms.opt2Applied, r.transforms.opt3Applied,
                    r.peakBeforeW * 1e3, r.peakAfterW * 1e3,
                    r.peakReductionPct, r.perfDegradationPct,
                    r.energyOverheadPct);
        sumRed += r.peakReductionPct;
        maxRed = std::max(maxRed, r.peakReductionPct);
        sumPerf += r.perfDegradationPct;
        sumEnergy += r.energyOverheadPct;
        ++n;
        if (b.name == "mult") {
            power::writePowerCsv(outDir() + "fig5_5_mult_before.csv",
                                 r.traceBeforeW);
            power::writePowerCsv(outDir() + "fig5_5_mult_after.csv",
                                 r.traceAfterW);
        }
    }
    std::printf("average peak reduction %.2f%% (max %.2f%%), average "
                "perf cost %.2f%%, average energy overhead %.2f%%\n",
                sumRed / n, maxRed, sumPerf / n, sumEnergy / n);
    std::printf("Fig 5.5 traces -> %sfig5_5_mult_{before,after}.csv\n",
                outDir().c_str());
    return 0;
}
