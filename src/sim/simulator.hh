/**
 * @file
 * Cycle-based three-valued gate-level simulator with activity tracking
 * and two interchangeable evaluation kernels.
 *
 * Each step() evaluates one clock cycle: sequential outputs update from
 * the previous cycle's stable values, the cycle driver sets primary
 * inputs, behavioral hooks (RAM) run at their levelized position, and
 * combinational gates are evaluated over the netlist's flat
 * structure-of-arrays view (Netlist::flat()). Two kernels implement
 * the combinational phase:
 *
 *  - EvalMode::FullSweep evaluates every scheduled node once per
 *    cycle, walking the level-bucketed schedule front to back -- the
 *    straightforward oblivious kernel, kept as the reference;
 *  - EvalMode::EventDriven (the default) evaluates only gates whose
 *    fanins changed value or activity this cycle: per-level dirty
 *    worklists are seeded by changed/active sequential outputs,
 *    driver-touched and unknown primary inputs, and behavioral-hook
 *    outputs, then drained level by level in schedule order. Hooks
 *    always run (behavioral state such as RAM contents can change
 *    between cycles without any netlist-visible event, and hooks bill
 *    per-access energy). Skipped gates are exactly the gates a full
 *    sweep would have re-evaluated to an identical (value, activity)
 *    pair; within a level no gate depends on another, so evaluation
 *    order differences cannot change values. The per-cycle activity
 *    list is canonicalized (sorted by gate id) in both modes before
 *    the order-sensitive floating-point energy accumulation, so both
 *    kernels produce bit-identical values, activity lists, and
 *    energies every cycle -- the test suite locksteps the two kernels
 *    across the bench430 programs to enforce this.
 *
 * Activity follows the paper's definition (Section 3.1): a gate is
 * active in a cycle if its value changed, or if it is X and is driven by
 * an active gate. Sequential gates additionally use provable-hold
 * information (enable low) to rule out toggles of unknown values. Per
 * cycle the simulator produces two energies:
 *
 *  - actualEnergy: energy of the concrete transitions that occurred
 *    (meaningful for concrete, X-free runs -- this is ordinary
 *    VCD-style power analysis);
 *  - boundEnergy: the Algorithm-2 per-cycle peak assignment, where every
 *    active gate involving X is assigned its maximum-power transition
 *    consistent with the known values of cycles c-1 and c.
 *
 * For X-free runs the two coincide. boundEnergy is what Section 3.2's
 * even/odd VCD construction computes per cycle; see
 * peak/even_odd.cc for the literal file-based construction and the
 * equivalence test in tests/test_peak_power.cc.
 *
 * snapshot()/restore() capture and reinstate the complete simulation
 * state between steps, giving the symbolic engine O(state-copy) forks
 * instead of path re-execution; snapshots are interchangeable between
 * Simulators built over structurally identical netlists (the parallel
 * symbolic workers rely on this).
 */

#ifndef ULPEAK_SIM_SIMULATOR_HH
#define ULPEAK_SIM_SIMULATOR_HH

#include <functional>
#include <memory>
#include <vector>

#include "netlist/netlist.hh"

namespace ulpeak {

class Simulator;

/**
 * Combinational-phase kernel selection.
 *
 * The two kernels are interchangeable by contract, not by accident:
 * for any netlist and any driver they produce bit-identical gate
 * values, activity lists, and per-cycle energies (see the file
 * comment for why, and tests/test_simulator.cc /
 * tests/test_benchmarks.cc for the locksteps that enforce it). Every
 * consumer -- peak::analyze, the symbolic engine, the batch driver's
 * result cache -- relies on this: switching kernels can change wall
 * time but never a reported number. FullSweep is the oblivious
 * reference kernel; EventDriven is the default and is >= 2x faster
 * on high-activity workloads (BENCH_sim_kernel.json tracks this).
 */
enum class EvalMode : uint8_t {
    FullSweep,   ///< oblivious: every scheduled node, every cycle
    EventDriven, ///< dirty worklists: only gates with changed fanins
};

/** Callback evaluating a behavioral hook during the combinational
 * sweep. It may read gate values and must set the hook's outputs. */
using HookFn = std::function<void(Simulator &)>;
/** Callback run at the clock edge (e.g. committing memory writes). */
using EdgeFn = std::function<void(Simulator &)>;

class Simulator {
  public:
    explicit Simulator(const Netlist &nl,
                       EvalMode mode = EvalMode::EventDriven);

    const Netlist &netlist() const { return *nl_; }
    EvalMode evalMode() const { return mode_; }

    /// @name Hook registration
    /// @{
    void setHookFn(uint32_t hook_id, HookFn fn);
    void addEdgeFn(EdgeFn fn);
    /// @}

    /// @name Driving inputs (legal during a hook or before step())
    /// @{
    void setInput(GateId g, V4 v);
    void setInputBus(const std::vector<GateId> &bus, Word16 w);
    /// @}

    /**
     * Overwrite a gate's current value directly. Used by the symbolic
     * engine to constrain an X program counter to one concrete branch
     * target (Algorithm 1, update_PC_next). Sound only for narrowing
     * an X to one of its feasible values. The event-driven kernel
     * re-evaluates the forced gate's fanout cone.
     */
    void forceValue(GateId g, V4 v);
    void forceBus(const std::vector<GateId> &bus, Word16 w);

    /**
     * Single-event upset: invert the stored output of sequential gate
     * @p g. Legal from the cycle driver (the position after the
     * sequential update and before the combinational sweep), so a flip
     * at cycle c is what cycle c's combinational logic observes and,
     * if the flop holds, what the next edge reloads -- real SEU
     * semantics, not a transient glitch. The upset is a genuine output
     * transition, so the gate is marked active for this cycle's
     * Section-3.1 activity accounting (a flip back to the pre-edge
     * value contributes no transition energy, matching
     * accumulateEnergy's known->known rule). Returns false (no-op)
     * when the stored value is X: an upset of an undefined bit has no
     * defined effect, and the X already subsumes both values.
     */
    bool injectSeuFlip(GateId g);

    /// @name Reading values
    /// @{
    V4 value(GateId g) const { return val_[g]; }
    bool isActive(GateId g) const { return active_[g] != 0; }
    Word16 readBus(const std::vector<GateId> &bus) const;
    /** Gates active in the cycle most recently stepped. */
    const std::vector<GateId> &activeGates() const { return activeList_; }
    /// @}

    /**
     * Simulate one clock cycle. The driver (may be null) is called after
     * sequential update, before the combinational sweep, to set primary
     * inputs for this cycle.
     */
    void step(const std::function<void(Simulator &)> &driver = nullptr);

    uint64_t cycle() const { return cycle_; }

    /// @name Per-cycle energy (valid after step())
    /// @{
    double actualEnergyJ() const { return actualEnergy_; }
    double boundEnergyJ() const { return boundEnergy_; }
    /** Per top-level-module split of boundEnergyJ (index = ModuleId of a
     *  direct child of top; index 0 = top itself). */
    const std::vector<double> &moduleBoundEnergyJ() const
    {
        return moduleEnergy_;
    }
    /** Extra per-cycle energy contributed by behavioral blocks. */
    void addBehavioralEnergyJ(double j, ModuleId top_module);
    /** The behavioral-block share of this cycle's energy (included in
     *  both actualEnergyJ and boundEnergyJ). */
    double behavioralEnergyJ() const { return behavioralEnergy_; }
    /// @}

    /// @name Snapshot / restore (for symbolic forking)
    /// @{
    /** Complete inter-step state. Previous-cycle values are absent on
     * purpose: step() overwrites them from the current values before
     * anything reads them, so they are dead across a restore.
     * Contract: capture the snapshot *before* applying between-step
     * edits (setInput/forceValue) -- the wake marks such edits create
     * live only in the originating simulator, so a snapshot taken
     * after an edit restores the new value without its propagation. */
    struct Snapshot {
        std::vector<V4> val;
        std::vector<uint8_t> activeLast;
        std::vector<uint8_t> loadedPrevEdge;
        uint64_t cycle;
    };
    Snapshot snapshot() const;
    void restore(const Snapshot &s);

    /**
     * Sparse snapshot: the same complete inter-step state as
     * Snapshot, stored as a shared base plus the entries that differ
     * from it. The symbolic engine's forks are temporally close to
     * the snapshot they restored from, so typically only a few
     * percent of the state changed -- a delta captures (and a
     * restore rewrites) little more than that, while the base is
     * shared read-only between all sibling forks. restore(delta) and
     * restore(materialize(delta)) are interchangeable by contract
     * (tests/test_snapshot.cc locksteps the two across randomized
     * dirty patterns), so switching snapshot forms can never change
     * a simulated value.
     */
    struct DeltaSnapshot {
        std::shared_ptr<const Snapshot> base;
        /// @name Entries differing from *base (parallel arrays)
        /// @{
        std::vector<uint32_t> valIdx;
        std::vector<V4> valNew;
        std::vector<uint32_t> actIdx;
        std::vector<uint8_t> actNew;
        std::vector<uint32_t> seqIdx;
        std::vector<uint8_t> seqNew;
        /// @}
        uint64_t cycle = 0;

        /** Heap bytes this delta stores (the "bytes copied" of a
         *  delta fork, vs bytesOf(full) for a full one). */
        size_t deltaBytes() const;
    };
    /** Capture the current state as a delta against @p base, which
     *  must describe the same netlist (sizes are checked). Same
     *  between-steps contract as snapshot(). */
    DeltaSnapshot
    snapshotDelta(std::shared_ptr<const Snapshot> base) const;
    void restore(const DeltaSnapshot &s);
    /** Expand a delta into the equivalent full Snapshot (the
     *  equivalence-test helper). */
    static Snapshot materialize(const DeltaSnapshot &s);
    /** Heap bytes of a full snapshot of this simulator's netlist. */
    static size_t bytesOf(const Snapshot &s);
    /** Capture @p cur as a delta against @p base -- snapshotDelta for
     *  a state that lives in a Snapshot instead of in a Simulator.
     *  For identical states the produced delta is byte-identical to
     *  snapshotDelta's (same diff, same base), so the packed
     *  exploration's fork captures match the scalar engine's exactly. */
    static DeltaSnapshot
    deltaBetween(const Snapshot &cur,
                 std::shared_ptr<const Snapshot> base);
    /// @}

    /**
     * Install a static prune mask (lint::analyzeConstants's
     * pruneMask): gates proven to hold one constant value in every
     * execution the driving scenario admits, from @p engage_cycle on
     * (the analysis' settle bound: reset cycles + 1 + maxPruneDepth).
     * Once cycle() reaches @p engage_cycle, the full sweep skips
     * masked gates whose activity flag is clear (their value and
     * inactivity are invariants), the event kernel stops enqueueing
     * them, and hashFullState() drops their (constant) bytes --
     * identical states keep identical hashes, so dedup merges stay
     * sound. The mask covers gates only (size numGates); sequential
     * gates and hook-driven nets must not be masked.
     *
     * Soundness contract: the cycle driver keeps driving every
     * masked input to its proven constant, and no out-of-band state
     * mutation touches a masked cone. The simulator enforces the
     * contract defensively: an SEU injection, or a setInput /
     * forceValue that moves a masked gate off its constant at or
     * after @p engage_cycle, permanently disables pruning for this
     * simulator instead of going unsound. Reported values, activity,
     * and energies are bit-identical with and without a valid mask
     * (fuzz property 9 enforces this end-to-end).
     */
    void
    setStaticPrune(std::shared_ptr<const std::vector<uint8_t>> mask,
                   uint64_t engage_cycle);
    /** True when a mask is installed, not defensively disabled, and
     *  the engage cycle has been reached. */
    bool
    staticPruneActive() const
    {
        return pruneMask_ && !pruneDisabled_ &&
               cycle_ >= pruneEngage_;
    }

    /** FNV-1a hash over all sequential gate outputs. */
    uint64_t hashSeqState() const;
    /** FNV-1a hash over the complete snapshot state (values,
     *  activity, load history). Equal hashes mean identical
     *  continuations; the symbolic engine's dedup keys use this so a
     *  merge target's trace never depends on which racing path
     *  claimed it. */
    uint64_t hashFullState() const;
    /** hashFullState over a captured Snapshot instead of the live
     *  state, with this simulator's prune configuration applied
     *  against @p s.cycle (the snapshot's own engage test). For a
     *  snapshot of this simulator's current state the result equals
     *  hashFullState() bit for bit -- the packed exploration hashes
     *  extracted lane snapshots through this so its dedup keys match
     *  the scalar engine's. */
    uint64_t hashSnapshotState(const Snapshot &s) const;

    /**
     * Predict the value a sequential gate will take at the next clock
     * edge, from the current cycle's stable values. The symbolic
     * engine uses this on the PC flops to detect an imminent
     * X-valued program counter one cycle before the fetch would
     * consume it (Algorithm 1: "if e.PC_next == X").
     */
    V4 predictSeqValue(GateId g) const;

  private:
    void updateSequential();
    template <bool kEvent> void evalSeqGate(size_t i);
    template <bool kEvent> void evalNode(uint32_t node);
    void sweepFull();
    void sweepEvent();
    void enqueueNode(uint32_t node);
    void markFanoutsDirty(GateId g, bool value_changed);
    void clearEventQueues();
    void rebuildActiveList();
    void accumulateEnergy();
    /// @name Sequential wake marking (event mode)
    /// @{
    void enqueueSeqNext(uint32_t seq_index);
    void enqueueSeqBoth(uint32_t seq_index);
    void markSeqConsumers(GateId g);
    void markAllSeq();
    /// @}

    const Netlist *nl_;
    const FlatNetlist *flat_;
    EvalMode mode_;
    std::vector<V4> val_;
    std::vector<V4> prev_;
    std::vector<uint8_t> active_;
    std::vector<uint8_t> activePrev_;
    /** Per seq gate (indexed by position in seqGates()): last edge
     * actually loaded (enable high). */
    std::vector<uint8_t> loadedPrevEdge_;
    std::vector<uint32_t> seqIndexOf_; ///< gate id -> seq index
    std::vector<ModuleId> topModuleOf_;
    std::vector<GateId> inputGates_; ///< all Input-kind gates

    /// @name Event-driven worklist state (transient within a step)
    /// @{
    std::vector<uint8_t> dirty_; ///< per node: enqueued, not processed
    std::vector<std::vector<uint32_t>> buckets_; ///< node ids per level
    /**
     * Flop wake-up windows. A flop's edge-c inputs are all cycle-(c-1)
     * quantities (fanin values, D-pin activity, own state), so any
     * gate activity in cycle c marks its sequential consumers for the
     * next two edges: the first sees the rise, the second the fall of
     * the activity term. Index 0 = next edge, 1 = the edge after;
     * rotated at each edge. Entries are seq indices.
     */
    std::vector<uint32_t> seqQ_[2];
    std::vector<uint8_t> seqMark_[2];
    std::vector<uint32_t> seqDrain_; ///< scratch: edge being processed
    /// @}

    std::vector<HookFn> hookFns_;
    std::vector<EdgeFn> edgeFns_;

    /// @name Static pruning (see setStaticPrune)
    /// @{
    std::shared_ptr<const std::vector<uint8_t>> pruneMask_;
    uint64_t pruneEngage_ = 0;
    bool pruneDisabled_ = false;
    /** Maximal [begin, end) runs of unmasked gate ids -- the hash
     *  basis while pruning is engaged. */
    std::vector<std::pair<uint32_t, uint32_t>> unprunedRuns_;
    /// @}

    std::vector<GateId> activeList_;
    double actualEnergy_ = 0.0;
    double boundEnergy_ = 0.0;
    double behavioralEnergy_ = 0.0;
    std::vector<double> moduleEnergy_;
    uint64_t cycle_ = 0;
};

} // namespace ulpeak

#endif // ULPEAK_SIM_SIMULATOR_HH
