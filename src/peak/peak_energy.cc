#include "peak/validation.hh"

#include <algorithm>

namespace ulpeak {
namespace peak {

ActivityValidation
validateActivity(const std::vector<uint8_t> &x_based,
                 const std::vector<uint8_t> &input_based)
{
    ActivityValidation v;
    size_t n = std::min(x_based.size(), input_based.size());
    for (size_t g = 0; g < n; ++g) {
        bool x = x_based[g] != 0;
        bool c = input_based[g] != 0;
        if (x && c)
            ++v.commonGates;
        else if (x)
            ++v.xOnlyGates;
        else if (c)
            ++v.inputOnlyGates;
    }
    v.isSuperset = v.inputOnlyGates == 0;
    return v;
}

TraceValidation
validateTraceBound(const std::vector<float> &x_trace,
                   const std::vector<float> &c_trace,
                   double tolerance_w)
{
    TraceValidation v;
    size_t n = std::min(x_trace.size(), c_trace.size());
    double slackSum = 0.0;
    for (size_t c = 0; c < n; ++c) {
        double slack = double(x_trace[c]) - double(c_trace[c]);
        slackSum += slack;
        if (slack < -tolerance_w) {
            ++v.violations;
            v.maxViolationW = std::max(v.maxViolationW, -slack);
        }
    }
    v.comparedCycles = n;
    v.meanSlackW = n ? slackSum / double(n) : 0.0;
    v.bounds = v.violations == 0;
    return v;
}

} // namespace peak
} // namespace ulpeak
