/**
 * @file
 * Experiment E7 -- Figure 4.1a/4.1b: peak power and NPE of the
 * openMSP430-like 65 nm system at 100 MHz across benchmarks and input
 * sets (input-based, concrete runs). Reproduced claim: requirements
 * remain application- and input-specific on this implementation too.
 */

#include "bench/bench_util.hh"
#include "baseline/baselines.hh"

using namespace ulpeak;
using namespace ulpeak::bench_util;

int
main()
{
    msp::System sys(CellLibrary::tsmc65Like());

    printHeader("Fig 4.1a/4.1b: openMSP430-like peak power and NPE, "
                "8 input sets");
    std::printf("%-10s %12s %12s %12s %12s\n", "benchmark",
                "minPeak[mW]", "maxPeak[mW]", "minNPE[pJ]",
                "maxNPE[pJ]");
    for (const auto &b : bench430::allBenchmarks()) {
        auto prof = baseline::profile(sys, b.assembleImage(),
                                      b.makeInputs(8, 4242), kFreq65);
        double minE = 1e9, maxE = 0;
        for (double e : prof.npesJPerCycle) {
            minE = std::min(minE, e);
            maxE = std::max(maxE, e);
        }
        std::printf("%-10s %12.3f %12.3f %12.2f %12.2f\n",
                    b.name.c_str(), prof.minPeakPowerW * 1e3,
                    prof.peakPowerW * 1e3, minE * 1e12, maxE * 1e12);
    }
    return 0;
}
