/**
 * @file
 * Microbenchmark of the SEU campaign engines: faulted-run
 * injections/sec of fault::runFaultedPacked (64 faulted lockstep runs
 * per PackedSimulator sweep) against the scalar fault::runFaulted
 * path run injection-by-injection, on the bench430 `mult` benchmark
 * with its campaign-style folded input set. Asserts that the timed
 * packed lanes classify bit-identically to the timed scalar runs
 * before trusting the numbers, prints the throughput row, and drops
 * machine-readable results in bench_out/BENCH_fault_campaign.json
 * (the checked-in BENCH_fault_campaign.json at the repository root
 * is a copy).
 *
 * `bench_fault_campaign --min-ratio R` additionally exits 1 if the
 * packed/scalar per-injection throughput ratio falls below R; CI runs
 * it with a conservative floor.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "bench430/benchmarks.hh"
#include "fault/fault.hh"
#include "fuzz/rng.hh"

namespace ulpeak {
namespace {

constexpr unsigned kLanes = PackedSimulator::kLanes;
constexpr unsigned kScalarRuns = 8; ///< scalar reference subset

struct Measurement {
    double sec = 0.0;
    uint64_t injections = 0;
    uint64_t gateCycles = 0;
    double injectionsPerSec() const
    {
        return sec > 0 ? double(injections) / sec : 0.0;
    }
};

/** The `mult` image with one deterministic concrete input set folded
 *  in (its inputs live in uninitialized RAM, which would diverge the
 *  golden lockstep) -- the same folding `ulfault` performs. */
isa::Image
multImage(uint16_t &port)
{
    for (const bench430::Benchmark &b : bench430::allBenchmarks()) {
        if (std::string(b.name) != "mult")
            continue;
        fuzz::Rng rng(fuzz::Rng::deriveStream(7, 3ull << 40));
        baseline::InputSet in = b.makeInput(rng);
        isa::Image image = isa::assemble(b.source);
        for (auto &[addr, words] : in.ram)
            image.segments.push_back({addr, words});
        if (b.usesPort)
            port = in.portIn;
        return image;
    }
    std::fprintf(stderr, "FATAL: no bench430 benchmark named mult\n");
    std::exit(1);
}

} // namespace
} // namespace ulpeak

int
main(int argc, char **argv)
{
    using namespace ulpeak;

    double min_ratio = 0.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--min-ratio" && i + 1 < argc) {
            min_ratio = std::atof(argv[++i]);
        } else {
            std::fprintf(
                stderr,
                "usage: bench_fault_campaign [--min-ratio R]\n");
            return 2;
        }
    }

    bench_util::printHeader("fault campaign: 64-lane packed vs "
                            "scalar faulted injections/sec");

    msp::System sys(CellLibrary::tsmc65Like());
    uint16_t port = 0;
    isa::Image image = multImage(port);
    power::PowerContext ctx(sys.netlist(), bench_util::kFreq65);

    cosim::Options gopts;
    gopts.portIn = port;
    cosim::Result golden = cosim::run(sys, image, gopts);
    if (!golden.ok) {
        std::fprintf(stderr, "FATAL: golden run diverges:\n%s",
                     golden.report().c_str());
        return 1;
    }

    fault::RunOptions ropts;
    ropts.maxCycles = 4 * golden.gateCycles + 64;
    ropts.portIn = port;
    ropts.powerCtx = &ctx;

    // 64 distinct injections: random flop sites, random cycles of the
    // golden execution (the campaign's workload shape).
    std::vector<fault::Site> sites = fault::flopSites(sys.netlist());
    fuzz::Rng rng(7);
    std::array<std::vector<fault::Injection>, kLanes> lanes;
    for (unsigned l = 0; l < kLanes; ++l) {
        fault::Injection inj;
        inj.site = sites[rng.below(unsigned(sites.size()))];
        inj.cycle = rng.below(unsigned(golden.gateCycles));
        lanes[l].push_back(inj);
    }

    // Warmup both paths (page in the netlist, stabilize the clock).
    {
        fault::RunOptions wopts = ropts;
        wopts.maxCycles = golden.gateCycles / 2;
        fault::runFaulted(sys, image, lanes[0], wopts);
        std::array<std::vector<fault::Injection>, kLanes> wl = lanes;
        fault::runFaultedPacked(sys, image, wl, wopts);
    }

    // Scalar reference: the first kScalarRuns injections, one faulted
    // lockstep run each. These double as the identity check below.
    Measurement scalar;
    std::vector<fault::FaultResult> refs(kScalarRuns);
    {
        auto t0 = std::chrono::steady_clock::now();
        for (unsigned l = 0; l < kScalarRuns; ++l) {
            refs[l] = fault::runFaulted(sys, image, lanes[l], ropts);
            scalar.gateCycles += refs[l].gateCycles;
        }
        auto t1 = std::chrono::steady_clock::now();
        scalar.sec = std::chrono::duration<double>(t1 - t0).count();
        scalar.injections = kScalarRuns;
    }

    // Packed batch: all 64 faulted runs in one sweep.
    Measurement packed;
    std::array<fault::FaultResult, kLanes> pr;
    {
        auto t0 = std::chrono::steady_clock::now();
        pr = fault::runFaultedPacked(sys, image, lanes, ropts);
        auto t1 = std::chrono::steady_clock::now();
        packed.sec = std::chrono::duration<double>(t1 - t0).count();
        packed.injections = kLanes;
        for (unsigned l = 0; l < kLanes; ++l)
            packed.gateCycles += pr[l].gateCycles;
    }

    // Trust the timing only if the timed lanes classify identically
    // to the timed scalar runs (outcome, divergence anatomy, power).
    for (unsigned l = 0; l < kScalarRuns; ++l) {
        if (!refs[l].sameClassification(pr[l])) {
            std::fprintf(stderr,
                         "FATAL: packed lane %u classifies "
                         "differently from the scalar run of the "
                         "same injection (%s vs %s)\n",
                         l, fault::outcomeName(pr[l].outcome),
                         fault::outcomeName(refs[l].outcome));
            return 1;
        }
    }

    double ratio = scalar.injectionsPerSec() > 0
                       ? packed.injectionsPerSec() /
                             scalar.injectionsPerSec()
                       : 0.0;
    std::printf("%-16s %10s %16s %16s %9s\n", "workload", "inj",
                "scalar inj/s", "packed inj/s", "ratio");
    std::printf("%-16s %7u/%2u %16.1f %16.1f %8.2fx\n", "mult",
                kScalarRuns, kLanes, scalar.injectionsPerSec(),
                packed.injectionsPerSec(), ratio);

    char json[2048];
    std::snprintf(
        json, sizeof(json),
        "{\n"
        "  \"bench\": \"fault_campaign\",\n"
        "  \"workload\": {\n"
        "    \"description\": \"bench430 mult with a seed-derived "
        "folded input set; one random flop SEU per run at a random "
        "cycle of the %llu-cycle golden execution, power recording "
        "on\",\n"
        "    \"scalar_reference_injections\": %u,\n"
        "    \"packed_lanes\": %u\n"
        "  },\n"
        "  \"host_cpus\": %u,\n"
        "  \"methodology\": \"scalar = fault::runFaulted once per "
        "injection, sequentially; packed = one "
        "fault::runFaultedPacked sweep carrying all 64 injections; "
        "injections/sec = faulted lockstep runs / wall seconds; the "
        "timed packed lanes are checked classification-identical "
        "(outcome, divergence cycle, instruction index, peak power "
        "float) to the timed scalar runs before the ratio is "
        "reported\",\n"
        "  \"scalar\": {\"injections\": %llu, \"gate_cycles\": %llu, "
        "\"wall_s\": %.4f, \"injections_per_sec\": %.1f},\n"
        "  \"packed\": {\"injections\": %llu, \"gate_cycles\": %llu, "
        "\"wall_s\": %.4f, \"injections_per_sec\": %.1f},\n"
        "  \"per_injection_throughput_ratio\": %.2f\n"
        "}\n",
        (unsigned long long)golden.gateCycles, kScalarRuns, kLanes,
        std::thread::hardware_concurrency(),
        (unsigned long long)scalar.injections,
        (unsigned long long)scalar.gateCycles, scalar.sec,
        scalar.injectionsPerSec(),
        (unsigned long long)packed.injections,
        (unsigned long long)packed.gateCycles, packed.sec,
        packed.injectionsPerSec(), ratio);

    std::ofstream out(bench_util::outDir() +
                      "BENCH_fault_campaign.json");
    out << json;
    std::printf("wrote %sBENCH_fault_campaign.json\n",
                bench_util::outDir().c_str());

    if (min_ratio > 0.0 && ratio < min_ratio) {
        std::fprintf(stderr,
                     "FATAL: per-injection throughput ratio %.2fx is "
                     "below the required %.2fx\n",
                     ratio, min_ratio);
        return 1;
    }
    return 0;
}
