#include "netlist/netlist.hh"

#include <cassert>
#include <stdexcept>

namespace ulpeak {

Netlist::Netlist(const CellLibrary &lib) : lib_(&lib)
{
    moduleNames_.push_back("top");
    moduleParents_.push_back(kTopModule);
}

ModuleId
Netlist::addModule(const std::string &name, ModuleId parent)
{
    assert(parent < moduleNames_.size());
    moduleNames_.push_back(name);
    moduleParents_.push_back(parent);
    return ModuleId(moduleNames_.size() - 1);
}

GateId
Netlist::addGate(CellKind kind, std::initializer_list<GateId> fanins,
                 ModuleId module)
{
    return addGate(kind, std::vector<GateId>(fanins), module);
}

GateId
Netlist::addGate(CellKind kind, const std::vector<GateId> &fanins,
                 ModuleId module)
{
    if (finalized_)
        throw std::logic_error("addGate after finalize");
    if (fanins.size() != cellFaninCount(kind))
        throw std::invalid_argument(
            std::string("wrong fanin count for ") + cellName(kind));
    Gate g;
    g.kind = kind;
    g.module = module;
    g.nin = uint8_t(fanins.size());
    for (size_t i = 0; i < fanins.size(); ++i) {
        // kNoGate placeholders are allowed during construction (register
        // feedback); finalize() rejects any left unconnected.
        if (fanins[i] != kNoGate && fanins[i] >= gates_.size())
            throw std::invalid_argument("fanin references unknown gate");
        g.in[i] = fanins[i];
    }
    gates_.push_back(g);
    return GateId(gates_.size() - 1);
}

void
Netlist::setFanin(GateId g, unsigned pin, GateId src)
{
    if (finalized_)
        throw std::logic_error("setFanin after finalize");
    if (g >= gates_.size() || pin >= gates_[g].nin ||
        src >= gates_.size()) {
        throw std::invalid_argument("setFanin out of range");
    }
    gates_[g].in[pin] = src;
}

uint32_t
Netlist::addHook(BehavioralHook hook)
{
    if (finalized_)
        throw std::logic_error("addHook after finalize");
    for (GateId g : hook.outputs) {
        if (g >= gates_.size() || gates_[g].kind != CellKind::Input)
            throw std::invalid_argument(
                "hook outputs must be Input-kind gates");
    }
    hooks_.push_back(std::move(hook));
    return uint32_t(hooks_.size() - 1);
}

void
Netlist::setName(GateId g, const std::string &name)
{
    assert(g < gates_.size());
    names_[name] = g;
    reverseNames_[g] = name;
}

ModuleId
Netlist::topLevelModuleOf(ModuleId m) const
{
    if (m == kTopModule)
        return kTopModule;
    while (moduleParents_[m] != kTopModule)
        m = moduleParents_[m];
    return m;
}

ModuleId
Netlist::findModule(const std::string &name) const
{
    for (size_t i = 0; i < moduleNames_.size(); ++i)
        if (moduleNames_[i] == name)
            return ModuleId(i);
    return kTopModule;
}

GateId
Netlist::findGate(const std::string &name) const
{
    auto it = names_.find(name);
    return it == names_.end() ? kNoGate : it->second;
}

std::string
Netlist::gateName(GateId g) const
{
    auto it = reverseNames_.find(g);
    return it == reverseNames_.end() ? std::string() : it->second;
}

} // namespace ulpeak
