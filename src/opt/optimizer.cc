#include "opt/optimizer.hh"

namespace ulpeak {
namespace opt {

OptimizationReport
evaluateOptimizations(msp::System &sys, const bench430::Benchmark &b,
                      const TransformConfig &cfg_in,
                      const peak::Options &opts)
{
    OptimizationReport rep;

    peak::Report before = peak::analyze(sys, isa::assemble(b.source),
                                        opts);
    if (!before.ok) {
        rep.error = "baseline analysis failed: " + before.error;
        return rep;
    }

    // Section 5.1: "we can choose to apply only the optimizations
    // that are guaranteed to reduce peak power" -- evaluate every
    // combination of the enabled transforms and keep the one with the
    // lowest X-based peak (ties go to fewer rewrites). The empty
    // subset is a valid outcome: some applications have no
    // peak-reducing rewrite.
    std::string scratch =
        cfg_in.scratchReg.empty() ? b.scratchReg : cfg_in.scratchReg;

    peak::Report best = before;
    TransformStats bestStats;
    for (unsigned mask = 1; mask < 8; ++mask) {
        TransformConfig cfg;
        cfg.opt1 = cfg_in.opt1 && (mask & 1);
        cfg.opt2 = cfg_in.opt2 && (mask & 2);
        cfg.opt3 = cfg_in.opt3 && (mask & 4);
        cfg.scratchReg = scratch;
        if (!cfg.opt1 && !cfg.opt2 && !cfg.opt3)
            continue;
        TransformStats stats;
        std::string optimized =
            applyTransforms(b.source, cfg, &stats);
        if (stats.total() == 0)
            continue;
        peak::Report r =
            peak::analyze(sys, isa::assemble(optimized), opts);
        if (!r.ok)
            continue;
        if (r.peakPowerW < best.peakPowerW) {
            best = std::move(r);
            bestStats = stats;
        }
    }

    rep.transforms = bestStats;
    rep.peakBeforeW = before.peakPowerW;
    rep.peakAfterW = best.peakPowerW;
    rep.peakReductionPct =
        100.0 * (1.0 - best.peakPowerW / before.peakPowerW);

    // Dynamic range: peak minus the worst-case average power (NPE x
    // frequency), both input-independent quantities.
    double avgBefore = before.npeJPerCycle * opts.freqHz;
    double avgAfter = best.npeJPerCycle * opts.freqHz;
    rep.dynRangeBeforeW = before.peakPowerW - avgBefore;
    rep.dynRangeAfterW = best.peakPowerW - avgAfter;
    if (rep.dynRangeBeforeW > 0.0)
        rep.dynRangeReductionPct =
            100.0 * (1.0 - rep.dynRangeAfterW / rep.dynRangeBeforeW);

    rep.cyclesBefore = before.maxPathCycles;
    rep.cyclesAfter = best.maxPathCycles;
    rep.perfDegradationPct =
        100.0 * (double(best.maxPathCycles) /
                     double(before.maxPathCycles) -
                 1.0);

    rep.energyBeforeJ = before.peakEnergyJ;
    rep.energyAfterJ = best.peakEnergyJ;
    rep.energyOverheadPct =
        100.0 * (best.peakEnergyJ / before.peakEnergyJ - 1.0);

    rep.traceBeforeW = std::move(before.flatTraceW);
    rep.traceAfterW = std::move(best.flatTraceW);
    rep.ok = true;
    return rep;
}

} // namespace opt
} // namespace ulpeak
