#include "peak/envelope.hh"

#include <algorithm>
#include <stdexcept>

namespace ulpeak {
namespace peak {

double
Envelope::peakPowerW() const
{
    double peak = 0.0;
    for (float w : powerW)
        if (double(w) > peak)
            peak = w;
    return peak;
}

const std::vector<unsigned> &
defaultEnvelopeWindows()
{
    static const std::vector<unsigned> windows = {1, 10, 100};
    return windows;
}

void
buildWindowCurves(Envelope &env, double tclk_s)
{
    env.windowEnergyJ.assign(env.windows.size(), {});
    env.peakWindowEnergyJ.assign(env.windows.size(), 0.0);
    if (env.powerW.empty())
        return;

    // prefix[i] = sum of powerW[0..i) in double; one sequential pass
    // keeps the float->double accumulation order fixed.
    std::vector<double> prefix(env.powerW.size() + 1, 0.0);
    for (size_t c = 0; c < env.powerW.size(); ++c)
        prefix[c + 1] = prefix[c] + double(env.powerW[c]);

    for (size_t w = 0; w < env.windows.size(); ++w) {
        uint64_t win = env.windows[w] ? env.windows[w] : 1;
        std::vector<float> &curve = env.windowEnergyJ[w];
        curve.resize(env.powerW.size());
        double peak = 0.0;
        for (size_t c = 0; c < env.powerW.size(); ++c) {
            size_t lo = c + 1 > win ? c + 1 - win : 0;
            double e = (prefix[c + 1] - prefix[lo]) * tclk_s;
            curve[c] = float(e);
            if (e > peak)
                peak = e;
        }
        env.peakWindowEnergyJ[w] = peak;
    }
}

void
buildWindowCurves(Envelope &env,
                  const std::vector<double> &tclk_by_phase)
{
    if (tclk_by_phase.empty())
        throw std::invalid_argument(
            "buildWindowCurves: tclk_by_phase must be non-empty");
    env.windowEnergyJ.assign(env.windows.size(), {});
    env.peakWindowEnergyJ.assign(env.windows.size(), 0.0);
    if (env.powerW.empty())
        return;

    // prefix[i] = energy of cycles [0, i) in double, each cycle
    // weighted by its phase's clock period; one sequential pass
    // keeps the accumulation order fixed.
    const size_t period = tclk_by_phase.size();
    std::vector<double> prefix(env.powerW.size() + 1, 0.0);
    for (size_t c = 0; c < env.powerW.size(); ++c)
        prefix[c + 1] = prefix[c] + double(env.powerW[c]) *
                                        tclk_by_phase[c % period];

    for (size_t w = 0; w < env.windows.size(); ++w) {
        uint64_t win = env.windows[w] ? env.windows[w] : 1;
        std::vector<float> &curve = env.windowEnergyJ[w];
        curve.resize(env.powerW.size());
        double peak = 0.0;
        for (size_t c = 0; c < env.powerW.size(); ++c) {
            size_t lo = c + 1 > win ? c + 1 - win : 0;
            double e = prefix[c + 1] - prefix[lo];
            curve[c] = float(e);
            if (e > peak)
                peak = e;
        }
        env.peakWindowEnergyJ[w] = peak;
    }
}

void
maxComposeEnvelope(Envelope &acc, const Envelope &other)
{
    if (!other.present)
        return;
    if (!acc.present) {
        acc.present = true;
        if (acc.windows.empty())
            acc.windows = other.windows;
    }
    if (acc.powerW.size() < other.powerW.size())
        acc.powerW.resize(other.powerW.size(), 0.0f);
    for (size_t c = 0; c < other.powerW.size(); ++c)
        acc.powerW[c] = std::max(acc.powerW[c], other.powerW[c]);
}

} // namespace peak
} // namespace ulpeak
