/**
 * @file
 * Quickstart: determine the guaranteed, input-independent peak power
 * and energy requirements of an application binary on the ULP core.
 *
 * This is the tool the paper describes: inputs are the application
 * (here assembled from source; any loader producing an isa::Image
 * works) and the processor netlist (built by msp::System); the output
 * is a peak power / peak energy requirement valid for *all* inputs.
 *
 * This file is the compiled version of README.md's "Library
 * quickstart" section; keep the two in sync. For whole suites, see
 * the `ulpeak` CLI (README.md) and peak/batch.hh.
 *
 *   $ ./build/quickstart
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "msp/cpu.hh"
#include "peak/peak_analysis.hh"

using namespace ulpeak;

int
main()
{
    // A small sensor-style application: read the input port, scale on
    // the hardware multiplier, threshold, emit to the output port.
    // The port reads are unknown (X) under analysis, so the reported
    // requirements cover every possible sensor value.
    const char *source = R"(
        .equ WDTCTL, 0x0120
        .equ PIN, 0x0020
        .equ POUT, 0x0022
        .equ MPY, 0x0130
        .equ OP2, 0x0138
        .equ RESLO, 0x013a
        .equ DONE, 0x01f0
        .org 0xf800
start:
        mov #0x0a00, sp
        mov #0x5a80, &WDTCTL
        mov #0, sr
        mov #8, r5              ; 8 samples
loop:
        mov &PIN, r4            ; sensor sample (unknown)
        mov r4, &MPY
        mov #3, &OP2            ; x3 gain
        mov &RESLO, r6
        cmp #0x0600, r6
        jlo below
        mov #1, &POUT           ; alarm
        jmp next
below:
        mov r6, &POUT
next:
        dec r5
        jnz loop
        mov #1, &DONE
end:    jmp end
        .org 0xfffe
        .word start
    )";

    // 1. Build the processor (gate-level netlist + behavioral RAM).
    msp::System sys(CellLibrary::tsmc65Like());
    NetlistStats stats = computeStats(sys.netlist());
    std::printf("processor: %zu gates (%zu flops)\n", stats.totalGates,
                stats.seqGates);

    // 2. Assemble the application.
    isa::Image app = isa::assemble(source);

    // 3. Analyze: symbolic simulation over all inputs (Algorithm 1)
    //    with per-cycle worst-case X assignment (Algorithm 2).
    peak::Options opts;
    opts.freqHz = 100e6;
    // Kernel and thread count never change the numbers (bit-identical
    // kernels, scheduling-independent exploration) -- these are the
    // defaults, spelled out:
    opts.evalMode = EvalMode::EventDriven;
    opts.numThreads = 1;
    peak::Report r = peak::analyze(sys, app, opts);
    if (!r.ok) {
        std::printf("analysis failed: %s\n", r.error.c_str());
        return 1;
    }

    std::printf("peak power requirement : %.3f mW (any input)\n",
                r.peakPowerW * 1e3);
    std::printf("peak energy requirement: %.3f nJ over at most %llu "
                "cycles\n",
                r.peakEnergyJ * 1e9,
                (unsigned long long)r.maxPathCycles);
    std::printf("max energy rate (NPE)  : %.2f pJ/cycle\n",
                r.npeJPerCycle * 1e12);
    std::printf("explored %u execution paths (%u merged by state "
                "dedup), %llu simulated cycles\n",
                r.pathsExplored, r.dedupMerges,
                (unsigned long long)r.totalCycles);
    return 0;
}
