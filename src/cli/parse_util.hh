/**
 * @file
 * Small argument-parsing helpers shared by the CLI drivers (ulpeak /
 * ulfuzz / ulfault), so every tool rejects malformed numbers the same
 * way.
 */

#ifndef ULPEAK_CLI_PARSE_UTIL_HH
#define ULPEAK_CLI_PARSE_UTIL_HH

#include <cmath>
#include <cstdlib>
#include <string>

namespace ulpeak {
namespace cli {

/**
 * Parse @p s as a strictly positive, finite double. Unlike
 * std::atof, trailing garbage ("8e6x", "100 MHz") is rejected, not
 * silently truncated: the whole token must be consumed. Returns
 * false (leaving @p out untouched) on empty input, trailing
 * characters, non-positive values, or inf/nan.
 */
inline bool
parsePositiveDouble(const char *s, double &out)
{
    if (!s || !*s)
        return false;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (!end || *end != '\0')
        return false;
    if (!(v > 0.0) || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

inline bool
parsePositiveDouble(const std::string &s, double &out)
{
    return parsePositiveDouble(s.c_str(), out);
}

} // namespace cli
} // namespace ulpeak

#endif // ULPEAK_CLI_PARSE_UTIL_HH
