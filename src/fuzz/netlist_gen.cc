#include "fuzz/netlist_gen.hh"

#include "hw/builder.hh"

namespace ulpeak {
namespace fuzz {

RandomNetlist
buildRandomNetlist(Netlist &nl, Rng &rng,
                   const NetlistGenOptions &opts)
{
    hw::Builder b(nl);
    RandomNetlist out;

    std::vector<hw::Sig> pool;
    for (unsigned i = 0; i < opts.numInputs; ++i) {
        hw::Sig in = b.input("in" + std::to_string(i));
        out.inputs.push_back(in);
        pool.push_back(in);
    }
    pool.push_back(b.zero());
    pool.push_back(b.one());

    auto pick = [&]() { return pool[rng.below(uint32_t(pool.size()))]; };

    // Register banks are declared up front so their outputs join the
    // signal pool (feedback through flops is legal and exercises the
    // event kernel's sequential wake-up windows); enables and resets
    // are randomly tied to inputs, constants, or nothing.
    std::vector<hw::Reg> regs;
    for (unsigned i = 0; i < opts.numRegBanks; ++i) {
        unsigned width = 1 + rng.below(opts.maxRegWidth);
        hw::Sig en = rng.chance(50) ? pick() : kNoGate;
        hw::Sig rstn = rng.chance(30) ? pick() : kNoGate;
        regs.push_back(
            b.regDecl(width, "rb" + std::to_string(i), en, rstn));
        for (hw::Sig q : regs.back().q())
            pool.push_back(q);
    }

    for (unsigned i = 0; i < opts.numCombGates; ++i) {
        hw::Sig s;
        switch (rng.pickWeighted(
            {6, 10, 12, 12, 8, 8, 12, 8, 10, 5, 5, 4})) {
          case 0: s = b.buf(pick()); break;
          case 1: s = b.inv(pick()); break;
          case 2: s = b.and2(pick(), pick()); break;
          case 3: s = b.or2(pick(), pick()); break;
          case 4: s = b.nand2(pick(), pick()); break;
          case 5: s = b.nor2(pick(), pick()); break;
          case 6: s = b.xor2(pick(), pick()); break;
          case 7: s = b.xnor2(pick(), pick()); break;
          case 8: s = b.mux(pick(), pick(), pick()); break;
          case 9: s = b.aoi21(pick(), pick(), pick()); break;
          case 10: s = b.oai21(pick(), pick(), pick()); break;
          default: {
            hw::Bus xs;
            unsigned n = 2 + rng.below(4);
            for (unsigned k = 0; k < n; ++k)
                xs.push_back(pick());
            s = rng.chance(50) ? b.andN(xs) : b.orN(xs);
            break;
          }
        }
        pool.push_back(s);
    }

    for (hw::Reg &r : regs) {
        hw::Bus d;
        for (unsigned i = 0; i < r.width(); ++i)
            d.push_back(pick());
        r.connect(d);
    }

    nl.finalize();
    return out;
}

std::vector<std::vector<V4>>
makeInputSchedule(Rng &rng, unsigned num_inputs, unsigned cycles,
                  unsigned x_percent)
{
    std::vector<std::vector<V4>> sched(cycles);
    for (auto &cyc : sched) {
        cyc.reserve(num_inputs);
        for (unsigned i = 0; i < num_inputs; ++i) {
            if (rng.chance(x_percent))
                cyc.push_back(V4::X);
            else
                cyc.push_back(rng.chance(50) ? V4::One : V4::Zero);
        }
    }
    return sched;
}

} // namespace fuzz
} // namespace ulpeak
