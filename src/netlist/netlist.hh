/**
 * @file
 * Gate-level netlist representation.
 *
 * A Netlist is a flat vector of gates (one output net per gate, so gate
 * id == net id), each mapped to a standard cell kind from the
 * CellLibrary and to a module in a hierarchy of named modules. The
 * module hierarchy mirrors the microarchitectural units the paper
 * reports power for (frontend, exec_unit, mem_backbone, multiplier, sfr,
 * watchdog, clk_module, dbg).
 *
 * Behavioral blocks: RAM macros are not standard cells (neither in the
 * paper's placed-and-routed openMSP430 nor here). A behavioral hook
 * declares a set of Input-kind gates whose values are produced by a
 * simulator callback that combinationally depends on a declared set of
 * other gates (the address/enable pins). Levelization schedules the hook
 * at the right point of the topological order.
 */

#ifndef ULPEAK_NETLIST_NETLIST_HH
#define ULPEAK_NETLIST_NETLIST_HH

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "cell/cell_library.hh"

namespace ulpeak {

using GateId = uint32_t;
using ModuleId = uint16_t;

constexpr GateId kNoGate = std::numeric_limits<GateId>::max();
constexpr ModuleId kTopModule = 0;

/** One standard-cell instance. The gate's output is net @c id. */
struct Gate {
    CellKind kind = CellKind::Const0;
    ModuleId module = kTopModule;
    uint8_t nin = 0;
    std::array<GateId, 4> in = {kNoGate, kNoGate, kNoGate, kNoGate};
};

/** An evaluation step produced by levelization. */
struct EvalItem {
    enum class Type : uint8_t { Gate, Hook };
    Type type = Type::Gate;
    uint32_t index = 0; ///< gate id, or hook id
};

/** Declaration of a behavioral block (e.g. a RAM macro). */
struct BehavioralHook {
    std::string name;
    std::vector<GateId> depends; ///< gates read by the callback
    std::vector<GateId> outputs; ///< Input-kind gates written by it
};

constexpr uint32_t kNoLevel = std::numeric_limits<uint32_t>::max();

/**
 * Structure-of-arrays view of a finalized netlist -- the data the
 * simulation kernel actually iterates. Built once by finalize().
 *
 * Nodes: ids [0, numGates) are gates; [numGates, numGates + numHooks)
 * are behavioral hooks. The combinational schedule covers every node
 * except sequential gates (those update at the clock edge, outside the
 * combinational phase): constants, primary inputs, hook-driven inputs,
 * hooks, and combinational gates.
 *
 * Levels: sources (constants, non-hook inputs; sequential outputs are
 * treated as level-0 sources) are level 0; a hook is one level above
 * its deepest dependency; a hook-driven input one level above its
 * hook; a combinational gate one level above its deepest fanin. Within
 * a level no node depends on another, so any within-level order is a
 * valid topological order; @ref schedule stores levels contiguously,
 * ascending node id within each level. The full-sweep kernel walks
 * @ref schedule front to back; the event-driven kernel drains dirty
 * nodes level by level in arbitrary within-level order (the simulator
 * canonicalizes its activity list afterwards).
 */
struct FlatNetlist {
    uint32_t numGates = 0;
    uint32_t numHooks = 0;
    uint32_t numLevels = 0;

    /// @name Per-gate SoA mirrors of the Gate fields
    /// @{
    std::vector<CellKind> kind;
    std::vector<uint8_t> nin;
    std::vector<uint32_t> faninOffset; ///< [numGates + 1] into fanin
    std::vector<GateId> fanin;         ///< CSR fanin lists
    /// @}

    /**
     * CSR fanout adjacency: for each gate, the *combinational* gates it
     * feeds (sequential consumers sample at the edge and hooks always
     * run, so neither appears). May contain duplicates when a gate
     * feeds several pins of one consumer; the kernel's dirty marks
     * dedup.
     */
    std::vector<uint32_t> fanoutOffset; ///< [numGates + 1] into fanout
    std::vector<GateId> fanout;

    /**
     * CSR adjacency of *sequential* consumers: for each gate, the
     * positions (indices into Netlist::seqGates()) of the flops that
     * read it on any pin. The event-driven kernel uses this to wake
     * only flops whose edge inputs may have changed.
     */
    std::vector<uint32_t> seqFanoutOffset; ///< [numGates + 1]
    std::vector<uint32_t> seqFanout;       ///< seq indices

    /// @name Level-bucketed combinational schedule
    /// @{
    std::vector<uint32_t> levelOffset; ///< [numLevels + 1] into schedule
    std::vector<uint32_t> schedule;    ///< node ids, by level
    std::vector<uint32_t> levelOfNode; ///< [nodes]; kNoLevel for seq
    std::vector<uint32_t> posOfNode;   ///< index into schedule; kNoLevel
                                       ///< for seq
    /// @}

    /** max(riseE, fallE) per gate [J] (Algorithm 2's maxTransition). */
    std::vector<double> maxE;

    uint32_t numNodes() const { return numGates + numHooks; }
};

class Netlist {
  public:
    explicit Netlist(const CellLibrary &lib);

    /// @name Construction
    /// @{
    ModuleId addModule(const std::string &name,
                       ModuleId parent = kTopModule);
    GateId addGate(CellKind kind, std::initializer_list<GateId> fanins,
                   ModuleId module);
    GateId addGate(CellKind kind, const std::vector<GateId> &fanins,
                   ModuleId module);
    /** Re-point fanin @p pin of @p g; only legal before finalize(). */
    void setFanin(GateId g, unsigned pin, GateId src);
    uint32_t addHook(BehavioralHook hook);
    void setName(GateId g, const std::string &name);

    /**
     * Freeze the netlist: compute fanout counts, the topological
     * evaluation order (combinational loops are fatal), per-gate
     * transition energies, and the sequential-gate list.
     */
    void finalize();
    /// @}

    /// @name Inspection
    /// @{
    size_t numGates() const { return gates_.size(); }
    const Gate &gate(GateId g) const { return gates_[g]; }
    const CellLibrary &library() const { return *lib_; }
    bool finalized() const { return finalized_; }

    const std::vector<EvalItem> &evalOrder() const { return order_; }
    const std::vector<GateId> &seqGates() const { return seqGates_; }
    const std::vector<BehavioralHook> &hooks() const { return hooks_; }
    /**
     * The flat structure-of-arrays kernel view (see FlatNetlist for
     * the layout). Built exactly once by finalize() and immutable
     * afterwards: the returned reference stays valid and unchanged
     * for the lifetime of the Netlist, so any number of Simulators
     * (including the parallel symbolic workers and the batch
     * driver's per-worker systems) may iterate it concurrently
     * without synchronization. Calling this before finalize()
     * returns the empty view (numGates == 0); construction-phase
     * code should use gate()/evalOrder() instead.
     */
    const FlatNetlist &flat() const { return flat_; }

    uint32_t fanoutCount(GateId g) const { return fanoutCount_[g]; }
    /** Energy of a 0->1 / 1->0 output transition of gate @p g [J]. */
    double riseEnergyJ(GateId g) const { return riseE_[g]; }
    double fallEnergyJ(GateId g) const { return fallE_[g]; }
    double maxEnergyJ(GateId g) const
    {
        return riseE_[g] > fallE_[g] ? riseE_[g] : fallE_[g];
    }
    /** Total leakage of the netlist [W]. */
    double totalLeakageW() const { return totalLeakage_; }
    /** Per-cycle clock-tree/clock-pin energy (all flops) [J]. */
    double clockEnergyPerCycleJ() const { return clockEnergy_; }

    const std::string &moduleName(ModuleId m) const
    {
        return moduleNames_[m];
    }
    ModuleId moduleParent(ModuleId m) const { return moduleParents_[m]; }
    size_t numModules() const { return moduleNames_.size(); }
    /**
     * The ancestor of @p m that is a direct child of the top module --
     * the granularity at which the paper reports per-module power.
     */
    ModuleId topLevelModuleOf(ModuleId m) const;
    /** Find a direct-or-deep module by name; kTopModule if absent. */
    ModuleId findModule(const std::string &name) const;

    GateId findGate(const std::string &name) const;
    /** Name of @p g, or "" when unnamed. */
    std::string gateName(GateId g) const;
    const std::unordered_map<std::string, GateId> &namedGates() const
    {
        return names_;
    }
    /// @}

  private:
    friend class Levelizer;

    const CellLibrary *lib_;
    bool finalized_ = false;

    std::vector<Gate> gates_;
    std::vector<BehavioralHook> hooks_;
    std::vector<std::string> moduleNames_;
    std::vector<ModuleId> moduleParents_;
    std::unordered_map<std::string, GateId> names_;
    std::unordered_map<GateId, std::string> reverseNames_;

    std::vector<EvalItem> order_;
    FlatNetlist flat_;
    std::vector<GateId> seqGates_;
    std::vector<uint32_t> fanoutCount_;
    std::vector<double> riseE_;
    std::vector<double> fallE_;
    double totalLeakage_ = 0.0;
    double clockEnergy_ = 0.0;
};

/** Aggregate statistics used by tests, README tables and DOT export. */
struct NetlistStats {
    size_t totalGates = 0;
    size_t seqGates = 0;
    size_t combGates = 0;
    double areaUm2 = 0.0;
    double leakageW = 0.0;
    std::vector<std::pair<std::string, size_t>> gatesPerTopModule;
    std::vector<std::pair<std::string, size_t>> gatesPerKind;
};

NetlistStats computeStats(const Netlist &nl);

/** Human-readable multi-line summary of @p stats. */
std::string formatStats(const NetlistStats &stats);

/**
 * Graphviz DOT rendering of (a prefix of) the netlist, for inspecting
 * small designs and documentation diagrams. Sequential cells are
 * highlighted; edges into gates beyond @p max_gates are elided.
 */
std::string toDot(const Netlist &nl, size_t max_gates = 400);

} // namespace ulpeak

#endif // ULPEAK_NETLIST_NETLIST_HH
