/**
 * @file
 * Encoding/decoding tests for the MSP430 ISA layer, including the
 * constant generator, the addressing-mode matrix and the MicroPlan
 * cycle schedule. Round-trip properties are checked with a
 * parameterized sweep over all format-I opcodes.
 */

#include <gtest/gtest.h>

#include "isa/encoding.hh"

namespace ulpeak {
namespace isa {
namespace {

Instr
makeFmtI(Op op, Operand src, Operand dst)
{
    Instr in;
    in.op = op;
    in.src = src;
    in.dst = dst;
    return in;
}

Operand
regOp(unsigned r)
{
    Operand o;
    o.mode = Mode::Reg;
    o.reg = uint8_t(r);
    return o;
}

Operand
immOp(int32_t v)
{
    Operand o;
    o.mode = Mode::Immediate;
    o.imm = v;
    return o;
}

Operand
absOp(uint32_t a)
{
    Operand o;
    o.mode = Mode::Absolute;
    o.imm = int32_t(a);
    return o;
}

Operand
idxOp(unsigned r, int32_t off)
{
    Operand o;
    o.mode = Mode::Indexed;
    o.reg = uint8_t(r);
    o.imm = off;
    return o;
}

TEST(Encoding, MovRegReg)
{
    auto words = encode(makeFmtI(Op::Mov, regOp(4), regOp(5)));
    ASSERT_EQ(words.size(), 1u);
    EXPECT_EQ(words[0], 0x4405); // mov r4, r5

    Decoded d = decode(words[0], 0, 0);
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.instr.op, Op::Mov);
    EXPECT_EQ(d.instr.src.mode, Mode::Reg);
    EXPECT_EQ(d.instr.src.reg, 4);
    EXPECT_EQ(d.instr.dst.reg, 5);
}

TEST(Encoding, ConstantGeneratorValues)
{
    // #0/#1/#2/#4/#8/#-1 must encode without an extension word.
    for (int32_t v : {0, 1, 2, 4, 8, -1}) {
        auto words = encode(makeFmtI(Op::Mov, immOp(v), regOp(9)));
        EXPECT_EQ(words.size(), 1u) << "CG value " << v;
        Decoded d = decode(words[0], 0, 0);
        ASSERT_TRUE(d.valid);
        EXPECT_EQ(d.instr.src.mode, Mode::Const);
        EXPECT_EQ(int16_t(d.instr.src.imm), int16_t(v));
    }
    // Anything else needs @PC+.
    auto words = encode(makeFmtI(Op::Mov, immOp(5), regOp(9)));
    EXPECT_EQ(words.size(), 2u);
    Decoded d = decode(words[0], words[1], 0);
    EXPECT_EQ(d.instr.src.mode, Mode::Immediate);
    EXPECT_EQ(d.instr.src.imm, 5);
}

TEST(Encoding, PaperOpt2AddTwoSp)
{
    // The paper's OPT2 rewrites POP into MOV @SP+,dst + ADD #2,SP; the
    // ADD must use the constant generator (single word).
    auto words = encode(makeFmtI(Op::Add, immOp(2), regOp(kSp)));
    ASSERT_EQ(words.size(), 1u);
    Decoded d = decode(words[0], 0, 0);
    EXPECT_EQ(d.instr.op, Op::Add);
    EXPECT_EQ(d.instr.src.mode, Mode::Const);
    EXPECT_EQ(d.instr.src.imm, 2);
    EXPECT_EQ(d.instr.dst.reg, kSp);
}

TEST(Encoding, AbsoluteUsesR2)
{
    auto words =
        encode(makeFmtI(Op::Mov, absOp(0x013a), regOp(15)));
    ASSERT_EQ(words.size(), 2u);
    EXPECT_EQ(words[1], 0x013a);
    Decoded d = decode(words[0], words[1], 0);
    EXPECT_EQ(d.instr.src.mode, Mode::Absolute);
    EXPECT_EQ(d.instr.src.imm, 0x013a);
}

TEST(Encoding, IndexedBothSides)
{
    auto words = encode(
        makeFmtI(Op::Add, idxOp(4, 6), idxOp(5, -2)));
    ASSERT_EQ(words.size(), 3u);
    Decoded d = decode(words[0], words[1], words[2]);
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.words, 3u);
    EXPECT_EQ(d.instr.src.mode, Mode::Indexed);
    EXPECT_EQ(d.instr.src.imm, 6);
    EXPECT_EQ(d.instr.dst.mode, Mode::Indexed);
    EXPECT_EQ(int16_t(d.instr.dst.imm), -2);
}

TEST(Encoding, JumpOffsets)
{
    Instr j;
    j.op = Op::Jne;
    j.jumpOffsetWords = -3;
    auto words = encode(j);
    ASSERT_EQ(words.size(), 1u);
    Decoded d = decode(words[0], 0, 0);
    EXPECT_EQ(d.instr.op, Op::Jne);
    EXPECT_EQ(d.instr.jumpOffsetWords, -3);

    j.jumpOffsetWords = 511;
    EXPECT_NO_THROW(encode(j));
    j.jumpOffsetWords = 512;
    EXPECT_THROW(encode(j), std::out_of_range);
}

TEST(Encoding, FormatII)
{
    Instr p;
    p.op = Op::Push;
    p.src = regOp(10);
    auto words = encode(p);
    ASSERT_EQ(words.size(), 1u);
    Decoded d = decode(words[0], 0, 0);
    EXPECT_EQ(d.instr.op, Op::Push);
    EXPECT_EQ(d.instr.src.reg, 10);

    Instr call;
    call.op = Op::Call;
    call.src = immOp(0xf866);
    words = encode(call);
    ASSERT_EQ(words.size(), 2u);
    d = decode(words[0], words[1], 0);
    EXPECT_EQ(d.instr.op, Op::Call);
    EXPECT_EQ(d.instr.src.mode, Mode::Immediate);
    EXPECT_EQ(d.instr.src.imm, 0xf866);
}

TEST(Encoding, ByteModeAndDaddRejected)
{
    // mov.b r4, r5 (B/W bit set)
    Decoded d = decode(0x4445, 0, 0);
    EXPECT_FALSE(d.valid);
    // dadd r4, r5
    d = decode(0xa405, 0, 0);
    EXPECT_FALSE(d.valid);
    // reti
    d = decode(0x1300, 0, 0);
    EXPECT_TRUE(d.valid);
    EXPECT_EQ(d.instr.op, Op::Reti);
}

TEST(MicroPlan, CycleCounts)
{
    // reg->reg: fetch + exec.
    EXPECT_EQ(planOf(makeFmtI(Op::Add, regOp(4), regOp(5))).cycles(),
              2u);
    // #imm -> reg: + srcExt.
    EXPECT_EQ(planOf(makeFmtI(Op::Mov, immOp(100), regOp(5))).cycles(),
              3u);
    // CG #imm -> reg: no ext.
    Instr cg = makeFmtI(Op::Mov, immOp(100), regOp(5));
    cg.src.mode = Mode::Const;
    EXPECT_EQ(planOf(cg).cycles(), 2u);
    // &abs -> reg: srcExt + srcRd.
    EXPECT_EQ(planOf(makeFmtI(Op::Mov, absOp(0x200), regOp(5))).cycles(),
              4u);
    // add x(r4), x(r5): srcExt+srcRd+dstExt+dstRd+dstWr.
    EXPECT_EQ(
        planOf(makeFmtI(Op::Add, idxOp(4, 2), idxOp(5, 4))).cycles(),
        7u);
    // mov r4, x(r5): dstExt + dstWr, no dstRd for MOV.
    EXPECT_EQ(
        planOf(makeFmtI(Op::Mov, regOp(4), idxOp(5, 4))).cycles(), 4u);
    // cmp r4, x(r5): reads dst but never writes it.
    MicroPlan cmp = planOf(makeFmtI(Op::Cmp, regOp(4), idxOp(5, 4)));
    EXPECT_TRUE(cmp.dstRd);
    EXPECT_FALSE(cmp.dstWr);
    // push r4: fetch + exec + pushwr.
    Instr push;
    push.op = Op::Push;
    push.src = regOp(4);
    EXPECT_EQ(planOf(push).cycles(), 3u);
    // jumps: 2 cycles.
    Instr j;
    j.op = Op::Jmp;
    EXPECT_EQ(planOf(j).cycles(), 2u);
}

TEST(JumpConditions, Table)
{
    // (c, z, n, v)
    EXPECT_TRUE(jumpTaken(Op::Jne, false, false, false, false));
    EXPECT_FALSE(jumpTaken(Op::Jne, false, true, false, false));
    EXPECT_TRUE(jumpTaken(Op::Jeq, false, true, false, false));
    EXPECT_TRUE(jumpTaken(Op::Jc, true, false, false, false));
    EXPECT_TRUE(jumpTaken(Op::Jnc, false, false, false, false));
    EXPECT_TRUE(jumpTaken(Op::Jn, false, false, true, false));
    EXPECT_TRUE(jumpTaken(Op::Jge, false, false, true, true));
    EXPECT_FALSE(jumpTaken(Op::Jge, false, false, true, false));
    EXPECT_TRUE(jumpTaken(Op::Jl, false, false, false, true));
    EXPECT_TRUE(jumpTaken(Op::Jmp, false, false, false, false));
}

class FmtIRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FmtIRoundTrip, EncodeDecode)
{
    Op op = Op(GetParam());
    for (auto src : {regOp(7), immOp(0x1234), absOp(0x210),
                     idxOp(9, 4)}) {
        Operand ind;
        ind.mode = Mode::IndirectInc;
        ind.reg = 6;
        for (auto s : {src, ind}) {
            for (auto dst : {regOp(12), absOp(0x0212), idxOp(8, 2)}) {
                Instr in = makeFmtI(op, s, dst);
                auto words = encode(in);
                uint16_t w1 = words.size() > 1 ? words[1] : 0;
                uint16_t w2 = words.size() > 2 ? words[2] : 0;
                Decoded d = decode(words[0], w1, w2);
                ASSERT_TRUE(d.valid);
                EXPECT_EQ(d.words, words.size());
                EXPECT_EQ(d.instr.op, op);
                EXPECT_EQ(d.instr.src.mode, s.mode);
                EXPECT_EQ(d.instr.dst.mode, dst.mode);
                EXPECT_EQ(uint16_t(d.instr.src.imm),
                          uint16_t(s.imm));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllFmtIOps, FmtIRoundTrip,
                         ::testing::Range(int(Op::Mov),
                                          int(Op::And) + 1));

} // namespace
} // namespace isa
} // namespace ulpeak
