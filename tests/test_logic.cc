/**
 * @file
 * Unit tests for the three-valued logic primitives.
 */

#include <gtest/gtest.h>

#include "fuzz/rng.hh"
#include "logic/v4.hh"
#include "logic/v64.hh"

namespace ulpeak {
namespace {

TEST(V4, AndTruthTable)
{
    EXPECT_EQ(v4And(V4::Zero, V4::Zero), V4::Zero);
    EXPECT_EQ(v4And(V4::Zero, V4::One), V4::Zero);
    EXPECT_EQ(v4And(V4::One, V4::One), V4::One);
    EXPECT_EQ(v4And(V4::Zero, V4::X), V4::Zero);
    EXPECT_EQ(v4And(V4::X, V4::Zero), V4::Zero);
    EXPECT_EQ(v4And(V4::One, V4::X), V4::X);
    EXPECT_EQ(v4And(V4::X, V4::X), V4::X);
}

TEST(V4, OrTruthTable)
{
    EXPECT_EQ(v4Or(V4::Zero, V4::Zero), V4::Zero);
    EXPECT_EQ(v4Or(V4::One, V4::Zero), V4::One);
    EXPECT_EQ(v4Or(V4::One, V4::X), V4::One);
    EXPECT_EQ(v4Or(V4::X, V4::One), V4::One);
    EXPECT_EQ(v4Or(V4::Zero, V4::X), V4::X);
    EXPECT_EQ(v4Or(V4::X, V4::X), V4::X);
}

TEST(V4, XorAndNot)
{
    EXPECT_EQ(v4Xor(V4::Zero, V4::One), V4::One);
    EXPECT_EQ(v4Xor(V4::One, V4::One), V4::Zero);
    EXPECT_EQ(v4Xor(V4::X, V4::One), V4::X);
    EXPECT_EQ(v4Xor(V4::Zero, V4::X), V4::X);
    EXPECT_EQ(v4Not(V4::Zero), V4::One);
    EXPECT_EQ(v4Not(V4::One), V4::Zero);
    EXPECT_EQ(v4Not(V4::X), V4::X);
}

TEST(V4, MuxSelectsExactly)
{
    EXPECT_EQ(v4Mux(V4::Zero, V4::X, V4::One), V4::X);
    EXPECT_EQ(v4Mux(V4::One, V4::X, V4::One), V4::One);
    // X select: known-equal inputs resolve, anything else is X.
    EXPECT_EQ(v4Mux(V4::X, V4::One, V4::One), V4::One);
    EXPECT_EQ(v4Mux(V4::X, V4::Zero, V4::One), V4::X);
    EXPECT_EQ(v4Mux(V4::X, V4::X, V4::X), V4::X);
}

TEST(V4, CharRoundTrip)
{
    EXPECT_EQ(v4Char(V4::Zero), '0');
    EXPECT_EQ(v4Char(V4::One), '1');
    EXPECT_EQ(v4Char(V4::X), 'x');
    EXPECT_EQ(v4FromChar('0'), V4::Zero);
    EXPECT_EQ(v4FromChar('1'), V4::One);
    EXPECT_EQ(v4FromChar('x'), V4::X);
    EXPECT_EQ(v4FromChar('X'), V4::X);
}

TEST(Word16, BitAccess)
{
    Word16 w = Word16::known(0xa5c3);
    EXPECT_TRUE(w.isFullyKnown());
    EXPECT_EQ(w.bit(0), V4::One);
    EXPECT_EQ(w.bit(1), V4::One);
    EXPECT_EQ(w.bit(2), V4::Zero);
    EXPECT_EQ(w.bit(15), V4::One);

    w.setBit(3, V4::X);
    EXPECT_FALSE(w.isFullyKnown());
    EXPECT_EQ(w.bit(3), V4::X);
    w.setBit(3, V4::One);
    EXPECT_EQ(w.bit(3), V4::One);
    EXPECT_TRUE(w.isFullyKnown());
}

TEST(Word16, XBitsMaskValue)
{
    // X bits must read back as zero in `value` so equal words compare
    // equal bitwise.
    Word16 a(0xffff, 0x00ff);
    EXPECT_EQ(a.value, 0xff00);
    Word16 b(0xff00, 0x00ff);
    EXPECT_TRUE(a == b);
}

TEST(Word16, AllXAndToString)
{
    Word16 x = Word16::allX();
    EXPECT_FALSE(x.isFullyKnown());
    EXPECT_EQ(x.toString(), std::string(16, 'x'));
    Word16 k = Word16::known(0x8001);
    EXPECT_EQ(k.toString(), "1000000000000001");
}

// --- V64: 64 packed three-valued lanes -------------------------------

constexpr V4 kVals[3] = {V4::Zero, V4::One, V4::X};

/** Pack operand pairs so all 9 (a,b) combinations occupy distinct
 *  lanes, plus pseudo-random fill in the upper lanes. */
void
fillOperands(V64 &a, V64 &b)
{
    unsigned l = 0;
    for (V4 va : kVals)
        for (V4 vb : kVals) {
            a.setLane(l, va);
            b.setLane(l, vb);
            ++l;
        }
    for (; l < 64; ++l) {
        a.setLane(l, kVals[(l * 7 + 1) % 3]);
        b.setLane(l, kVals[(l * 5 + 2) % 3]);
    }
}

TEST(V64, LaneAccessAndCanonicalForm)
{
    V64 v;
    EXPECT_EQ(v, V64::allX());
    for (unsigned l = 0; l < 64; ++l)
        EXPECT_EQ(v.lane(l), V4::X);
    v.setLane(0, V4::One);
    v.setLane(63, V4::Zero);
    EXPECT_EQ(v.lane(0), V4::One);
    EXPECT_EQ(v.lane(63), V4::Zero);
    EXPECT_EQ(v.lane(17), V4::X);
    v.setLane(0, V4::X);
    EXPECT_EQ(v.lane(0), V4::X);
    // Canonical: X lanes keep their value-plane bit at 0, so plane
    // equality is lane equality.
    EXPECT_EQ(v.v & ~v.k, 0u);
    V64 noncanon(~uint64_t(0), 0x5aa5);
    EXPECT_EQ(noncanon.v, uint64_t(0x5aa5));
}

TEST(V64, SplatAndToString)
{
    EXPECT_EQ(V64::splat(V4::X), V64::allX());
    V64 ones = V64::splat(V4::One);
    V64 zeros = V64::splat(V4::Zero);
    for (unsigned l = 0; l < 64; ++l) {
        EXPECT_EQ(ones.lane(l), V4::One);
        EXPECT_EQ(zeros.lane(l), V4::Zero);
    }
    EXPECT_EQ(V64::allX().toString(), std::string(64, 'x'));
    V64 v;
    v.setLane(0, V4::One);
    EXPECT_EQ(v.toString().back(), '1');
}

TEST(V64, DiffMask)
{
    V64 a, b;
    fillOperands(a, b);
    uint64_t d = a.diffMask(b);
    for (unsigned l = 0; l < 64; ++l)
        EXPECT_EQ((d >> l) & 1, a.lane(l) != b.lane(l) ? 1u : 0u)
            << "lane " << l;
}

TEST(V64, OpsMatchScalarTruthTables)
{
    V64 a, b;
    fillOperands(a, b);
    V64 rAnd = v64And(a, b);
    V64 rOr = v64Or(a, b);
    V64 rXor = v64Xor(a, b);
    V64 rNot = v64Not(a);
    for (unsigned l = 0; l < 64; ++l) {
        V4 va = a.lane(l), vb = b.lane(l);
        EXPECT_EQ(rAnd.lane(l), v4And(va, vb)) << "lane " << l;
        EXPECT_EQ(rOr.lane(l), v4Or(va, vb)) << "lane " << l;
        EXPECT_EQ(rXor.lane(l), v4Xor(va, vb)) << "lane " << l;
        EXPECT_EQ(rNot.lane(l), v4Not(va)) << "lane " << l;
    }
    // Results stay canonical (X lanes read 0 on the value plane).
    for (const V64 &r : {rAnd, rOr, rXor, rNot})
        EXPECT_EQ(r.v & ~r.k, 0u);
}

TEST(V64, MuxMatchesScalarAllCombinations)
{
    // All 27 (sel, a, b) combinations, exhaustively.
    for (V4 sel : kVals)
        for (V4 va : kVals)
            for (V4 vb : kVals) {
                V64 r = v64Mux(V64::splat(sel), V64::splat(va),
                               V64::splat(vb));
                V4 expect = v4Mux(sel, va, vb);
                for (unsigned l = 0; l < 64; ++l)
                    EXPECT_EQ(r.lane(l), expect)
                        << v4Char(sel) << v4Char(va) << v4Char(vb)
                        << " lane " << l;
                EXPECT_EQ(r.v & ~r.k, 0u);
            }
}

TEST(V64, RandomizedLaneExactness)
{
    fuzz::Rng rng(0x5eedu);
    auto randomV64 = [&rng]() {
        V64 v;
        for (unsigned l = 0; l < 64; ++l)
            v.setLane(l, kVals[rng.below(3)]);
        return v;
    };
    for (unsigned iter = 0; iter < 200; ++iter) {
        V64 sel = randomV64(), a = randomV64(), b = randomV64();
        V64 rAnd = v64And(a, b);
        V64 rOr = v64Or(a, b);
        V64 rXor = v64Xor(a, b);
        V64 rNot = v64Not(a);
        V64 rMux = v64Mux(sel, a, b);
        for (unsigned l = 0; l < 64; ++l) {
            ASSERT_EQ(rAnd.lane(l), v4And(a.lane(l), b.lane(l)));
            ASSERT_EQ(rOr.lane(l), v4Or(a.lane(l), b.lane(l)));
            ASSERT_EQ(rXor.lane(l), v4Xor(a.lane(l), b.lane(l)));
            ASSERT_EQ(rNot.lane(l), v4Not(a.lane(l)));
            ASSERT_EQ(rMux.lane(l),
                      v4Mux(sel.lane(l), a.lane(l), b.lane(l)));
        }
    }
}

} // namespace
} // namespace ulpeak
