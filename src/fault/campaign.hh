/**
 * @file
 * Deterministic SEU fault-injection campaigns: sweep injection sites
 * (every flop of the netlist, plus optional random RAM bits) times
 * injection cycles over one application, classify every faulted run
 * against the golden ISS, and aggregate a per-site vulnerability
 * table.
 *
 * Determinism contract (the campaign analogue of the batch layer's):
 * the per-injection classification rows are bit-identical across
 * CampaignOptions::jobs (atomic-claim worker pool over a pre-sized
 * result vector), across packed vs scalar execution (the fault
 * runners' lane-identity invariant), and across EvalMode -- so none
 * of the three participates in the disk-cache key, and `ulfault`'s
 * JSON/CSV output (timings excluded) is byte-identical across all of
 * them. Site lists and injection cycles derive from fuzz::Rng streams
 * of the campaign seed, never from iteration order or scheduling.
 *
 * The campaign first runs the *unfaulted* golden execution: it must
 * lockstep cleanly (otherwise the campaign refuses to run -- fault
 * classification atop a diverging bedrock would be meaningless), and
 * its cycle count defines both the injection-cycle space and the
 * default hang budget. With CampaignOptions::withEnvelope the X-based
 * per-cycle envelope is analyzed once and every faulted run's power
 * trace is compared against it: a faulted run exceeding the envelope
 * is an *escape* -- a reported finding, not an error (the envelope's
 * guarantee quantifies over inputs, not over particle strikes).
 */

#ifndef ULPEAK_FAULT_CAMPAIGN_HH
#define ULPEAK_FAULT_CAMPAIGN_HH

#include <string>
#include <vector>

#include "fault/fault.hh"
#include "peak/peak_analysis.hh"

namespace ulpeak {
namespace fault {

struct CampaignOptions {
    uint64_t seed = 1;
    /** Worker threads (<= 1: serial on the calling thread). */
    unsigned jobs = 1;
    /** Use the 64-lane packed runner (bit-identical to scalar). */
    bool packed = true;
    /** Injection cycles drawn per site. */
    unsigned cyclesPerSite = 1;
    /** Cap on flop sites (0 = every flop); capped lists subsample the
     *  seqGates order evenly, so the selection is size-stable. */
    size_t maxFlopSites = 0;
    /** Random RAM-bit sites appended after the flop sites. */
    size_t ramSites = 0;
    uint16_t portIn = 0;
    /** Scalar-path kernel (classification-invariant by contract). */
    EvalMode evalMode = EvalMode::EventDriven;
    /** Budget of the golden (unfaulted) run. */
    uint64_t goldenMaxCycles = 60000;
    /** Hang budget of faulted runs; 0 = 4 * golden cycles + 64. */
    uint64_t hangCycles = 0;
    double freqHz = 100e6;
    /** Analyze the X-based envelope and flag escapes. */
    bool withEnvelope = false;
    /** Envelope analysis options (only freqHz-consistent,
     *  result-affecting fields participate in the cache key). */
    peak::Options analysis;
    /** Disk cache directory; "" disables caching. */
    std::string cacheDir;
};

/** One classified injection: row of the campaign table. */
struct InjectionResult {
    uint32_t siteIndex = 0; ///< into CampaignResult::sites
    uint64_t cycle = 0;     ///< injection cycle
    FaultResult r;          ///< report field always empty here
};

/** Per-site aggregate over its injections. */
struct SiteSummary {
    uint32_t siteIndex = 0;
    uint64_t masked = 0, sdc = 0, crash = 0, hang = 0;
    uint64_t notApplied = 0; ///< flips that hit X state (no-ops)
    uint64_t escapes = 0;    ///< envelope escapes (withEnvelope)
    float maxPeakPowerW = 0.0f;
};

struct CampaignResult {
    bool ok = false;
    std::string error; ///< golden-run divergence, bad options, ...

    uint64_t goldenCycles = 0;
    uint64_t goldenInstructions = 0;
    uint64_t hangCycles = 0; ///< resolved faulted-run budget

    bool envelopePresent = false;
    std::string envelopeError; ///< analysis failed; escapes skipped
    uint64_t envelopeCycles = 0;
    double envelopePeakW = 0.0;

    std::vector<Site> sites;
    std::vector<std::string> siteNames;
    /** Site-major: row s * cyclesPerSite + c is site s's c-th cycle. */
    std::vector<InjectionResult> injections;
    std::vector<SiteSummary> summaries;

    /// @name Totals over every injection
    /// @{
    uint64_t masked = 0, sdc = 0, crash = 0, hang = 0;
    uint64_t notApplied = 0;
    uint64_t escapes = 0;
    /// @}

    bool cacheHit = false;
    double wallSeconds = 0.0;
};

/**
 * The campaign's site list and per-site injection cycles for
 * @p golden_cycles total golden cycles -- exposed so tests and replay
 * can re-derive any row's (site, cycle) from the seed alone.
 */
std::vector<Site> campaignSites(const Netlist &nl,
                                const msp::System &sys,
                                const CampaignOptions &opts);
std::vector<uint64_t> siteInjectionCycles(uint64_t seed,
                                          uint32_t site_index,
                                          unsigned cycles_per_site,
                                          uint64_t golden_cycles);

/** Cache key over (library, image, result-affecting options);
 *  jobs / packed / evalMode are excluded by the determinism
 *  contract. Exposed so tests can pin the exclusion rules. */
uint64_t campaignCacheKey(const CellLibrary &lib,
                          const isa::Image &image,
                          const CampaignOptions &opts);

/** Run the campaign of @p opts for @p image on @p lib's system. */
CampaignResult runCampaign(const CellLibrary &lib,
                           const isa::Image &image,
                           const CampaignOptions &opts);

} // namespace fault
} // namespace ulpeak

#endif // ULPEAK_FAULT_CAMPAIGN_HH
