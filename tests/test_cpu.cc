/**
 * @file
 * Gate-level CPU tests: netlist structure, reset, directed programs
 * covering the ISA, memory-mapped peripherals and halt behaviour.
 */

#include <gtest/gtest.h>

#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

using test::GateRun;
using test::runGate;
using test::sharedSystem;
using test::wrapProgram;

TEST(CpuNetlist, StructureLooksLikeAProcessor)
{
    msp::System &sys = sharedSystem();
    NetlistStats s = computeStats(sys.netlist());
    EXPECT_GT(s.totalGates, 4000u) << "should be a real netlist";
    EXPECT_GT(s.seqGates, 300u);
    // All eight paper modules exist and are populated.
    for (const char *name :
         {"frontend", "exec_unit", "mem_backbone", "multiplier", "sfr",
          "watchdog", "clk_module", "dbg"}) {
        ModuleId m = sys.netlist().findModule(name);
        EXPECT_NE(m, kTopModule) << name;
        bool found = false;
        for (auto &[mod, count] : s.gatesPerTopModule)
            if (mod == name && count > 0)
                found = true;
        EXPECT_TRUE(found) << name;
    }
}

TEST(CpuNetlist, MultiplierIsTheBiggestBlock)
{
    // The paper's power story depends on the multiplier being the
    // dominant combinational block (Section 5, OPT3).
    msp::System &sys = sharedSystem();
    NetlistStats s = computeStats(sys.netlist());
    size_t mult = 0, others = 0;
    for (auto &[mod, count] : s.gatesPerTopModule) {
        if (mod == "multiplier")
            mult = count;
        else if (mod == "dbg" || mod == "sfr" || mod == "clk_module" ||
                 mod == "watchdog")
            others = std::max(others, count);
    }
    EXPECT_GT(mult, 1500u);
    EXPECT_GT(mult, others * 3);
}

TEST(CpuRun, MinimalHaltProgram)
{
    msp::System &sys = sharedSystem();
    GateRun r = runGate(sys, isa::assemble(wrapProgram("")), 0);
    EXPECT_TRUE(r.halted);
    EXPECT_FALSE(r.xStoreFault);
}

TEST(CpuRun, ArithmeticAndFlags)
{
    msp::System &sys = sharedSystem();
    GateRun r = runGate(sys, isa::assemble(wrapProgram(R"(
        mov #100, r4
        mov #23, r5
        add r5, r4
        sub #3, r5
        mov #0xffff, r6
        add #1, r6
        mov sr, r7
    )")),
                        0);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.regs[4], 123);
    EXPECT_EQ(r.regs[5], 20);
    EXPECT_EQ(r.regs[6], 0);
    EXPECT_TRUE(r.regs[7] & (1 << isa::kFlagC));
    EXPECT_TRUE(r.regs[7] & (1 << isa::kFlagZ));
}

TEST(CpuRun, LoopsAndBranches)
{
    msp::System &sys = sharedSystem();
    GateRun r = runGate(sys, isa::assemble(wrapProgram(R"(
        mov #5, r4
        mov #0, r5
loop:
        add r4, r5
        dec r4
        jnz loop
    )")),
                        0);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.regs[5], 15);
}

TEST(CpuRun, MemoryReadWrite)
{
    msp::System &sys = sharedSystem();
    GateRun r = runGate(sys, isa::assemble(wrapProgram(R"(
        mov #0x0300, r4
        mov #0x1111, 0(r4)
        mov #0x2222, 2(r4)
        mov @r4+, r5
        add @r4, r5
        mov r5, &0x0320
        mov &0x0320, r6
    )")),
                        0);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.regs[5], 0x3333);
    EXPECT_EQ(r.regs[6], 0x3333);
    EXPECT_EQ(r.regs[4], 0x0302);
}

TEST(CpuRun, StackAndCalls)
{
    msp::System &sys = sharedSystem();
    GateRun r = runGate(sys, isa::assemble(wrapProgram(R"(
        mov #0x0a00, sp
        mov #0x1234, r4
        push r4
        clr r4
        pop r5
        call #leaf
        mov sp, r7
        jmp end
leaf:
        mov #77, r6
        ret
end:
    )")),
                        0);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.regs[5], 0x1234);
    EXPECT_EQ(r.regs[6], 77);
    EXPECT_EQ(r.regs[7], 0x0a00);
}

TEST(CpuRun, HardwareMultiplier)
{
    msp::System &sys = sharedSystem();
    GateRun r = runGate(sys, isa::assemble(wrapProgram(R"(
        mov #1234, &0x0130
        mov #5678, &0x0138
        mov &0x013a, r4
        mov &0x013c, r5
    )")),
                        0);
    ASSERT_TRUE(r.halted);
    uint32_t p = 1234u * 5678u;
    EXPECT_EQ(r.regs[4], uint16_t(p));
    EXPECT_EQ(r.regs[5], uint16_t(p >> 16));
}

TEST(CpuRun, PortInput)
{
    msp::System &sys = sharedSystem();
    GateRun r = runGate(sys, isa::assemble(wrapProgram(R"(
        mov &0x0020, r4
        xor #0xffff, r4
    )")),
                        0xbeef);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.regs[4], uint16_t(~0xbeef));
}

TEST(CpuRun, WatchdogHoldAndReadback)
{
    msp::System &sys = sharedSystem();
    GateRun r = runGate(sys, isa::assemble(wrapProgram(R"(
        mov #0x5a80, &0x0120
        mov &0x0120, r4
        mov #0x1111, &0x0120  ; wrong password
        mov &0x0120, r5
    )")),
                        0);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.regs[4], 0x6980);
    EXPECT_EQ(r.regs[5], 0x6980);
}

TEST(CpuRun, ShiftUnit)
{
    msp::System &sys = sharedSystem();
    GateRun r = runGate(sys, isa::assemble(wrapProgram(R"(
        mov #0x8003, r4
        rra r4
        mov #1, r5
        setc
        rrc r5
        mov #0x1234, r6
        swpb r6
        mov #0x0080, r7
        sxt r7
    )")),
                        0);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.regs[4], 0xc001);
    EXPECT_EQ(r.regs[5], 0x8000);
    EXPECT_EQ(r.regs[6], 0x3412);
    EXPECT_EQ(r.regs[7], 0xff80);
}

TEST(CpuRun, RmwOnMemoryOperand)
{
    msp::System &sys = sharedSystem();
    GateRun r = runGate(sys, isa::assemble(wrapProgram(R"(
        mov #0x00f0, &0x0300
        rra &0x0300
        mov &0x0300, r4
        add #1, &0x0300
        mov &0x0300, r5
    )")),
                        0);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.regs[4], 0x0078);
    EXPECT_EQ(r.regs[5], 0x0079);
}

TEST(CpuRun, UninitializedRegisterStaysX)
{
    // Algorithm 1 line 2: anything not explicitly initialized is X.
    msp::System &sys = sharedSystem();
    GateRun r = runGate(sys, isa::assemble(wrapProgram(R"(
        mov #7, r4
    )")),
                        0);
    ASSERT_TRUE(r.halted);
    EXPECT_TRUE(r.regKnown[4]);
    EXPECT_FALSE(r.regKnown[11]) << "r11 was never written";
}

} // namespace
} // namespace ulpeak
