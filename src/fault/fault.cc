/**
 * @file
 * Scalar fault runner and the classification helpers shared with the
 * packed runner. The scalar path is a thin wrapper over cosim::run:
 * the injections ride in through Options::preCycle, so the checking
 * loop, divergence anatomy and power recording are the *same code*
 * the bedrock tests already pin down.
 */

#include "fault/fault.hh"

#include <cstdio>

#include "peak/validation.hh"

namespace ulpeak {
namespace fault {

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked: return "masked";
      case Outcome::Sdc: return "sdc";
      case Outcome::Crash: return "crash";
      case Outcome::Hang: return "hang";
    }
    return "?";
}

Outcome
classify(const cosim::Result &r)
{
    if (r.ok)
        return Outcome::Masked;
    switch (r.divergence.kind) {
      case cosim::Divergence::Kind::GateTimeout:
        return Outcome::Hang;
      case cosim::Divergence::Kind::GateX:
        return Outcome::Crash;
      default:
        return Outcome::Sdc;
    }
}

bool
FaultResult::sameClassification(const FaultResult &o) const
{
    return outcome == o.outcome && applied == o.applied &&
           kind == o.kind && divergenceCycle == o.divergenceCycle &&
           instrIndex == o.instrIndex && pc == o.pc &&
           gateCycles == o.gateCycles &&
           instructionsRetired == o.instructionsRetired &&
           peakPowerW == o.peakPowerW && peakCycle == o.peakCycle &&
           traceCycles == o.traceCycles &&
           envelopeEscape == o.envelopeEscape &&
           escapeCycle == o.escapeCycle;
}

void
applyPowerTrace(FaultResult &r, const std::vector<float> &trace_w,
                const peak::Envelope *envelope)
{
    r.traceCycles = trace_w.size();
    r.peakPowerW = 0.0f;
    r.peakCycle = 0;
    for (size_t c = 0; c < trace_w.size(); ++c) {
        if (trace_w[c] > r.peakPowerW) { // first argmax wins
            r.peakPowerW = trace_w[c];
            r.peakCycle = c;
        }
    }
    r.envelopeEscape = false;
    r.escapeCycle = 0;
    if (envelope && envelope->present && !trace_w.empty()) {
        peak::TraceValidation v =
            peak::validateTraceBound(envelope->powerW, trace_w);
        if (!v.bounds) {
            r.envelopeEscape = true;
            r.escapeCycle = v.firstViolationCycle;
        }
    }
}

std::vector<Site>
flopSites(const Netlist &nl)
{
    std::vector<Site> sites;
    sites.reserve(nl.seqGates().size());
    for (GateId g : nl.seqGates()) {
        Site s;
        s.kind = SiteKind::Flop;
        s.gate = g;
        sites.push_back(s);
    }
    return sites;
}

std::string
siteName(const Netlist &nl, const Site &s)
{
    char buf[48];
    if (s.kind == SiteKind::Ram) {
        std::snprintf(buf, sizeof buf, "ram[0x%04x].%u", s.addr,
                      unsigned(s.bit));
        return buf;
    }
    std::string n = nl.gateName(s.gate);
    if (!n.empty())
        return n;
    std::snprintf(buf, sizeof buf, "g%u", unsigned(s.gate));
    return buf;
}

FaultResult
runFaulted(msp::System &sys, const isa::Image &image,
           const std::vector<Injection> &faults, const RunOptions &opts)
{
    bool applied = false;
    cosim::Options co;
    co.maxCycles = opts.maxCycles;
    co.portIn = opts.portIn;
    co.evalMode = opts.evalMode;
    co.powerCtx = opts.powerCtx;
    co.preCycle = [&](Simulator &s) {
        for (const Injection &inj : faults) {
            if (inj.cycle != s.cycle())
                continue;
            if (inj.site.kind == SiteKind::Flop)
                applied |= s.injectSeuFlip(inj.site.gate);
            else
                applied |= sys.memory().flipBit(inj.site.addr,
                                                inj.site.bit);
        }
    };

    cosim::Result cr = cosim::run(sys, image, co);

    FaultResult r;
    r.outcome = classify(cr);
    r.applied = applied;
    r.gateCycles = cr.gateCycles;
    r.instructionsRetired = cr.instructionsRetired;
    if (!cr.ok) {
        r.kind = cr.divergence.kind;
        r.divergenceCycle = cr.divergence.cycle;
        r.instrIndex = cr.divergence.instrIndex;
        r.pc = cr.divergence.pc;
        r.report = cr.report();
    }
    if (opts.powerCtx)
        applyPowerTrace(r, cr.powerTraceW, opts.envelope);
    return r;
}

} // namespace fault
} // namespace ulpeak
