/**
 * @file
 * Unit tests for the netlist graph, levelization and stats.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/netlist.hh"

namespace ulpeak {
namespace {

class NetlistTest : public ::testing::Test {
  protected:
    NetlistTest() : lib(CellLibrary::tsmc65Like()), nl(lib) {}
    CellLibrary lib;
    Netlist nl;
};

TEST_F(NetlistTest, AddGatesAndModules)
{
    ModuleId m = nl.addModule("alu");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId b = nl.addGate(CellKind::Input, {}, m);
    GateId c = nl.addGate(CellKind::And2, {a, b}, m);
    EXPECT_EQ(nl.numGates(), 3u);
    EXPECT_EQ(nl.gate(c).kind, CellKind::And2);
    EXPECT_EQ(nl.gate(c).in[0], a);
    EXPECT_EQ(nl.moduleName(m), "alu");
}

TEST_F(NetlistTest, WrongFaninCountRejected)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    EXPECT_THROW(nl.addGate(CellKind::And2, {a}, m),
                 std::invalid_argument);
    EXPECT_THROW(nl.addGate(CellKind::Inv, {a, a}, m),
                 std::invalid_argument);
}

TEST_F(NetlistTest, LevelizeOrdersFanins)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId b = nl.addGate(CellKind::Inv, {a}, m);
    GateId c = nl.addGate(CellKind::And2, {a, b}, m);
    GateId d = nl.addGate(CellKind::Inv, {c}, m);
    nl.finalize();

    std::vector<int> pos(nl.numGates(), -1);
    int i = 0;
    for (const EvalItem &item : nl.evalOrder())
        if (item.type == EvalItem::Type::Gate)
            pos[item.index] = i++;
    EXPECT_LT(pos[a], pos[b]);
    EXPECT_LT(pos[b], pos[c]);
    EXPECT_LT(pos[c], pos[d]);
}

TEST_F(NetlistTest, FlatViewMirrorsGates)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId b = nl.addGate(CellKind::Inv, {a}, m);
    GateId c = nl.addGate(CellKind::And2, {a, b}, m);
    GateId q = nl.addGate(CellKind::Dff, {c}, m);
    GateId d = nl.addGate(CellKind::Xor2, {q, b}, m);
    nl.finalize();

    const FlatNetlist &f = nl.flat();
    ASSERT_EQ(f.numGates, nl.numGates());
    for (GateId g = 0; g < nl.numGates(); ++g) {
        const Gate &gate = nl.gate(g);
        EXPECT_EQ(f.kind[g], gate.kind);
        EXPECT_EQ(f.nin[g], gate.nin);
        ASSERT_EQ(f.faninOffset[g + 1] - f.faninOffset[g], gate.nin);
        for (unsigned p = 0; p < gate.nin; ++p)
            EXPECT_EQ(f.fanin[f.faninOffset[g] + p], gate.in[p]);
        EXPECT_EQ(f.maxE[g],
                  std::max(nl.riseEnergyJ(g), nl.fallEnergyJ(g)));
    }

    // Fanout CSR: exactly the combinational consumers. The Dff q
    // consumes c at the edge, so c's fanout list is empty; q feeds d.
    auto fanoutsOf = [&](GateId g) {
        return std::vector<GateId>(f.fanout.begin() + f.fanoutOffset[g],
                                   f.fanout.begin() +
                                       f.fanoutOffset[g + 1]);
    };
    EXPECT_EQ(fanoutsOf(a), (std::vector<GateId>{b, c}));
    EXPECT_EQ(fanoutsOf(b), (std::vector<GateId>{c, d}));
    EXPECT_EQ(fanoutsOf(c), std::vector<GateId>{});
    EXPECT_EQ(fanoutsOf(q), std::vector<GateId>{d});
    (void)d;
}

TEST_F(NetlistTest, FlatScheduleIsLevelizedTopologicalOrder)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId b = nl.addGate(CellKind::Inv, {a}, m);
    GateId c = nl.addGate(CellKind::And2, {a, b}, m);
    GateId q = nl.addGate(CellKind::Dff, {c}, m);
    GateId hookOut = nl.addGate(CellKind::Input, {}, m);
    nl.addHook(BehavioralHook{"h", {c}, {hookOut}});
    GateId d = nl.addGate(CellKind::Xor2, {hookOut, q}, m);
    nl.finalize();

    const FlatNetlist &f = nl.flat();
    uint32_t n = f.numGates;
    ASSERT_EQ(f.numHooks, 1u);

    // Every non-sequential node is scheduled exactly once, level
    // buckets are contiguous, and posOfNode inverts the schedule.
    std::vector<unsigned> seen(f.numNodes(), 0);
    for (uint32_t l = 0; l < f.numLevels; ++l) {
        for (uint32_t i = f.levelOffset[l]; i < f.levelOffset[l + 1];
             ++i) {
            uint32_t node = f.schedule[i];
            ++seen[node];
            EXPECT_EQ(f.levelOfNode[node], l);
            EXPECT_EQ(f.posOfNode[node], i);
        }
    }
    for (uint32_t node = 0; node < f.numNodes(); ++node) {
        bool seq = node < n && isSequential(nl.gate(node).kind);
        EXPECT_EQ(seen[node], seq ? 0u : 1u) << "node " << node;
        if (seq)
            EXPECT_EQ(f.levelOfNode[node], kNoLevel);
    }

    // Dependencies strictly precede consumers: combinational fanins,
    // hook dependencies, and hook outputs all sit at lower levels.
    EXPECT_LT(f.levelOfNode[a], f.levelOfNode[b]);
    EXPECT_LT(f.levelOfNode[b], f.levelOfNode[c]);
    uint32_t hookNode = n + 0;
    EXPECT_LT(f.levelOfNode[c], f.levelOfNode[hookNode]);
    EXPECT_LT(f.levelOfNode[hookNode], f.levelOfNode[hookOut]);
    EXPECT_LT(f.levelOfNode[hookOut], f.levelOfNode[d]);
}

TEST_F(NetlistTest, CombinationalLoopDetected)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Inv, {kNoGate}, m);
    GateId b = nl.addGate(CellKind::Inv, {a}, m);
    nl.setFanin(a, 0, b);
    EXPECT_THROW(nl.finalize(), std::logic_error);
}

TEST_F(NetlistTest, SequentialBreaksLoops)
{
    ModuleId m = nl.addModule("m");
    GateId ff = nl.addGate(CellKind::Dff, {kNoGate}, m);
    GateId inv = nl.addGate(CellKind::Inv, {ff}, m);
    nl.setFanin(ff, 0, inv); // classic toggle flop
    EXPECT_NO_THROW(nl.finalize());
    EXPECT_EQ(nl.seqGates().size(), 1u);
    EXPECT_EQ(nl.seqGates()[0], ff);
}

TEST_F(NetlistTest, UnconnectedFaninFatal)
{
    ModuleId m = nl.addModule("m");
    nl.addGate(CellKind::Inv, {kNoGate}, m);
    EXPECT_THROW(nl.finalize(), std::logic_error);
}

TEST_F(NetlistTest, FanoutCountsAndEnergies)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    GateId g1 = nl.addGate(CellKind::Inv, {a}, m);
    GateId g2 = nl.addGate(CellKind::Inv, {a}, m);
    GateId g3 = nl.addGate(CellKind::And2, {g1, g2}, m);
    (void)g3;
    nl.finalize();
    EXPECT_EQ(nl.fanoutCount(a), 2u);
    EXPECT_EQ(nl.fanoutCount(g1), 1u);
    EXPECT_EQ(nl.fanoutCount(g3), 0u);
    EXPECT_GT(nl.riseEnergyJ(a), 0.0);
    EXPECT_GT(nl.maxEnergyJ(g3), 0.0);
    EXPECT_GT(nl.totalLeakageW(), 0.0);
}

TEST_F(NetlistTest, HookSchedulingBetweenDependsAndOutputs)
{
    ModuleId m = nl.addModule("m");
    GateId addr = nl.addGate(CellKind::Input, {}, m);
    GateId addrInv = nl.addGate(CellKind::Inv, {addr}, m);
    GateId data = nl.addGate(CellKind::Input, {}, m);
    GateId user = nl.addGate(CellKind::Inv, {data}, m);

    BehavioralHook hook;
    hook.name = "mem";
    hook.depends = {addrInv};
    hook.outputs = {data};
    nl.addHook(hook);
    nl.finalize();

    int posAddrInv = -1, posHook = -1, posData = -1, posUser = -1;
    int i = 0;
    for (const EvalItem &item : nl.evalOrder()) {
        if (item.type == EvalItem::Type::Hook)
            posHook = i;
        else if (item.index == addrInv)
            posAddrInv = i;
        else if (item.index == data)
            posData = i;
        else if (item.index == user)
            posUser = i;
        ++i;
    }
    EXPECT_LT(posAddrInv, posHook);
    EXPECT_LT(posHook, posData);
    EXPECT_LT(posData, posUser);
}

TEST_F(NetlistTest, TopLevelModuleResolution)
{
    ModuleId cpu = nl.addModule("cpu");
    ModuleId alu = nl.addModule("alu", cpu);
    ModuleId adder = nl.addModule("adder", alu);
    EXPECT_EQ(nl.topLevelModuleOf(adder), cpu);
    EXPECT_EQ(nl.topLevelModuleOf(alu), cpu);
    EXPECT_EQ(nl.topLevelModuleOf(cpu), cpu);
    EXPECT_EQ(nl.findModule("adder"), adder);
}

TEST_F(NetlistTest, NamesRoundTrip)
{
    ModuleId m = nl.addModule("m");
    GateId a = nl.addGate(CellKind::Input, {}, m);
    nl.setName(a, "port_a");
    EXPECT_EQ(nl.findGate("port_a"), a);
    EXPECT_EQ(nl.gateName(a), "port_a");
    EXPECT_EQ(nl.findGate("nope"), kNoGate);
}

TEST_F(NetlistTest, StatsCountModulesAndKinds)
{
    ModuleId m1 = nl.addModule("alu");
    ModuleId m2 = nl.addModule("regs");
    GateId a = nl.addGate(CellKind::Input, {}, m1);
    nl.addGate(CellKind::Inv, {a}, m1);
    nl.addGate(CellKind::Dff, {a}, m2);
    nl.finalize();
    NetlistStats s = computeStats(nl);
    EXPECT_EQ(s.totalGates, 3u);
    EXPECT_EQ(s.seqGates, 1u);
    EXPECT_EQ(s.combGates, 2u);
    EXPECT_GT(s.areaUm2, 0.0);
    std::string text = formatStats(s);
    EXPECT_NE(text.find("alu"), std::string::npos);
}

} // namespace
} // namespace ulpeak
