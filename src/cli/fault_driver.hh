/**
 * @file
 * The `ulfault` command-line driver: deterministic SEU fault-injection
 * campaigns from the shell, built on fault::runCampaign.
 *
 * A campaign takes one program (same spellings as `ulpeak`: a
 * bench430 registry name or an assembly-file path), sweeps bit-flips
 * over the netlist's flops (plus optional random RAM bits) times
 * random injection cycles of the golden execution, and classifies
 * every faulted run against the golden ISS as masked / SDC / crash /
 * hang. Registry benchmarks keep their inputs in uninitialized RAM
 * (X on the gate side, which the lockstep would flag), so the driver
 * folds one deterministic concrete input set -- derived from the
 * campaign seed via Benchmark::makeInput -- into the image before the
 * campaign; the input thereby participates in the cache key through
 * the image contents. With --envelope the X-based per-cycle peak-power envelope is
 * analyzed first and faulted runs exceeding it are flagged as
 * *escapes* -- reported findings (the envelope guarantee quantifies
 * over inputs, not particle strikes), never exit-code failures.
 *
 * Output: a per-site vulnerability table on stdout plus
 * machine-readable JSON (--json) and CSV (--csv). Timing and
 * cache-provenance fields are isolated exactly like `ulpeak`'s:
 * serializing with @p include_timings = false produces byte-identical
 * JSON for any (--jobs, --scalar/packed, cache state) combination --
 * the campaign determinism contract, pinned by tests/test_fault.cc
 * and the CI smoke.
 *
 * `--replay SITE@CYCLE` re-runs a single injection through the scalar
 * runner and prints the full divergence report (first divergent
 * cycle, state diff, disassembled window) -- the reproduction recipe
 * for any row of a campaign report.
 */

#ifndef ULPEAK_CLI_FAULT_DRIVER_HH
#define ULPEAK_CLI_FAULT_DRIVER_HH

#include <string>

#include "fault/campaign.hh"

namespace ulpeak {
namespace cli {

/** Parsed command line of the `ulfault` tool. */
struct FaultCliOptions {
    std::string programSpec;   ///< registry name or .s path
    uint64_t seed = 1;         ///< --seed
    unsigned jobs = 1;         ///< --jobs: campaign workers
    bool scalar = false;       ///< --scalar: disable the packed runner
    unsigned cyclesPerSite = 1; ///< --cycles-per-site
    size_t maxSites = 0;       ///< --max-sites (0 = every flop)
    size_t ramSites = 0;       ///< --ram-sites
    uint64_t hangCycles = 0;   ///< --hang-cycles (0 = auto)
    uint16_t port = 0;         ///< --port
    bool portSet = false;      ///< --port was given explicitly
    double freqHz = 100e6;     ///< --freq
    bool envelope = false;     ///< --envelope: escape detection
    unsigned top = 20;         ///< --top N: table rows
    std::string jsonPath;      ///< --json FILE
    std::string csvPath;       ///< --csv FILE
    bool noTimings = false;    ///< --no-timings: deterministic JSON
    std::string cacheDir = ".ulpeak-cache"; ///< --cache-dir
    bool noCache = false;      ///< --no-cache
    bool replay = false;       ///< --replay SITE@CYCLE given
    uint32_t replaySite = 0;
    uint64_t replayCycle = 0;
    bool quiet = false;        ///< --quiet: suppress the table
    bool help = false;         ///< --help
};

std::string faultUsage();

/** Parse @p argv; on bad usage returns false and sets @p err. */
bool parseFaultArgs(int argc, const char *const *argv,
                    FaultCliOptions &out, std::string &err);

/** Map a parsed command line onto campaign options. */
fault::CampaignOptions toCampaignOptions(const FaultCliOptions &cli);

/** Serialize a campaign report as JSON. With @p include_timings =
 *  false the wall-time and cache-provenance fields are omitted: the
 *  output is byte-identical across --jobs, --scalar vs packed, and
 *  cache states. */
std::string toFaultJson(const fault::CampaignResult &res,
                        const fault::CampaignOptions &opts,
                        const std::string &program,
                        bool include_timings = true);

/** One-row-per-injection CSV (header included; deterministic). */
std::string toFaultCsv(const fault::CampaignResult &res);

/** The complete driver behind tools/ulfault_main.cc. Exit codes:
 *  0 = campaign ran (escapes are findings, not failures),
 *  1 = campaign error (golden divergence, bad program),
 *  2 = usage error. */
int runFaultCli(int argc, const char *const *argv);

} // namespace cli
} // namespace ulpeak

#endif // ULPEAK_CLI_FAULT_DRIVER_HH
