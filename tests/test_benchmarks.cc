/**
 * @file
 * Benchmark-suite tests, including the repository's central safety
 * property: for every benchmark and random input set, the X-based
 * peak power and NPE bounds dominate the concrete observation
 * (parameterized across the full suite -- the Section 3.4 validation
 * as a regression test).
 *
 * Functional correctness of the kernels is checked against C++
 * reference models on the ISS.
 */

#include <gtest/gtest.h>

#include "bench430/benchmarks.hh"
#include "isa/iss.hh"
#include "peak/peak_analysis.hh"
#include "power/analysis.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

using bench430::Benchmark;
using bench430::kInputAddr;
using bench430::kOutputAddr;

isa::Iss
runIss(const Benchmark &b, const baseline::InputSet &in)
{
    isa::Iss iss;
    iss.loadImage(b.assembleImage());
    for (auto &[addr, words] : in.ram)
        for (size_t i = 0; i < words.size(); ++i)
            iss.writeMem(addr + uint32_t(i) * 2, words[i]);
    iss.setPortIn(in.portIn);
    iss.reset();
    EXPECT_TRUE(iss.run(200000)) << b.name << ": " << iss.haltReason();
    return iss;
}

std::vector<uint16_t>
inputWords(const baseline::InputSet &in)
{
    return in.ram.empty() ? std::vector<uint16_t>{} : in.ram[0].second;
}

TEST(BenchmarkSuite, FourteenBenchmarksInPaperOrder)
{
    const auto &all = bench430::allBenchmarks();
    ASSERT_EQ(all.size(), 14u);
    EXPECT_EQ(all[0].name, "autoCorr");
    EXPECT_EQ(all[13].name, "Viterbi");
    EXPECT_THROW(bench430::benchmarkByName("nope"), std::out_of_range);
}

TEST(BenchmarkSuite, AllAssembleAndHaltOnIss)
{
    fuzz::Rng rng(3);
    for (const auto &b : bench430::allBenchmarks()) {
        isa::Iss iss = runIss(b, b.makeInput(rng));
        EXPECT_TRUE(iss.halted()) << b.name;
        EXPECT_GT(iss.cycles(), 20u) << b.name;
    }
}

TEST(BenchmarkReference, MultAccumulatesProducts)
{
    const auto &b = bench430::benchmarkByName("mult");
    fuzz::Rng rng(17);
    auto in = b.makeInput(rng);
    isa::Iss iss = runIss(b, in);
    auto w = inputWords(in);
    uint32_t lo32 = 0;
    uint64_t sum = 0;
    for (int i = 0; i < 8; ++i)
        sum += uint32_t(w[2 * i]) * uint32_t(w[2 * i + 1]);
    lo32 = uint32_t(sum); // 32-bit accumulate with carry
    EXPECT_EQ(iss.readMem(kOutputAddr), uint16_t(lo32));
    EXPECT_EQ(iss.readMem(kOutputAddr + 2), uint16_t(lo32 >> 16));
}

TEST(BenchmarkReference, BinSearchFindsAndMisses)
{
    const auto &b = bench430::benchmarkByName("binSearch");
    static const uint16_t table[16] = {3,   17,  29,  44,  58,  71,
                                       89,  104, 120, 137, 155, 170,
                                       188, 203, 221, 240};
    for (uint16_t key : {uint16_t(89), uint16_t(3), uint16_t(240),
                         uint16_t(90), uint16_t(0)}) {
        baseline::InputSet in;
        in.ram.emplace_back(kInputAddr, std::vector<uint16_t>{key});
        isa::Iss iss = runIss(b, in);
        int expect = -1;
        for (int i = 0; i < 16; ++i)
            if (table[i] == key)
                expect = i;
        if (expect >= 0)
            EXPECT_EQ(iss.readMem(kOutputAddr), uint16_t(expect))
                << key;
        else
            EXPECT_EQ(iss.readMem(kOutputAddr), 0xffff) << key;
    }
}

TEST(BenchmarkReference, THoldCountsAboveThreshold)
{
    const auto &b = bench430::benchmarkByName("tHold");
    fuzz::Rng rng(23);
    auto in = b.makeInput(rng);
    isa::Iss iss = runIss(b, in);
    unsigned expect = 0;
    for (uint16_t w : inputWords(in))
        expect += w >= 0x0400;
    EXPECT_EQ(iss.readMem(kOutputAddr), expect);
}

TEST(BenchmarkReference, DivQuotientRemainder)
{
    const auto &b = bench430::benchmarkByName("div");
    for (uint16_t raw : {uint16_t(0), uint16_t(10), uint16_t(0xabcd),
                         uint16_t(255)}) {
        baseline::InputSet in;
        in.ram.emplace_back(kInputAddr, std::vector<uint16_t>{raw});
        isa::Iss iss = runIss(b, in);
        uint16_t dividend = raw & 0x00ff;
        EXPECT_EQ(iss.readMem(kOutputAddr), dividend / 11) << raw;
        EXPECT_EQ(iss.readMem(kOutputAddr + 2), dividend % 11) << raw;
    }
}

TEST(BenchmarkReference, InSortSorts)
{
    const auto &b = bench430::benchmarkByName("inSort");
    fuzz::Rng rng(31);
    auto in = b.makeInput(rng);
    isa::Iss iss = runIss(b, in);
    auto w = inputWords(in);
    std::sort(w.begin(), w.end());
    for (size_t i = 0; i < w.size(); ++i)
        EXPECT_EQ(iss.readMem(kInputAddr + uint32_t(i) * 2), w[i])
            << i;
}

TEST(BenchmarkReference, IntAvgMean)
{
    const auto &b = bench430::benchmarkByName("intAVG");
    fuzz::Rng rng(37);
    auto in = b.makeInput(rng);
    isa::Iss iss = runIss(b, in);
    uint16_t sum = 0;
    for (uint16_t w : inputWords(in))
        sum = uint16_t(sum + w);
    // Three arithmetic right shifts.
    int16_t s = int16_t(sum);
    s = int16_t(s >> 3);
    EXPECT_EQ(iss.readMem(kOutputAddr), uint16_t(s));
}

TEST(BenchmarkReference, RleRoundTrips)
{
    const auto &b = bench430::benchmarkByName("rle");
    baseline::InputSet in;
    in.ram.emplace_back(kInputAddr,
                        std::vector<uint16_t>{2, 2, 2, 1, 1, 3, 3, 3});
    isa::Iss iss = runIss(b, in);
    // Expect (2,3), (1,2), (3,3).
    EXPECT_EQ(iss.readMem(kOutputAddr + 0), 2);
    EXPECT_EQ(iss.readMem(kOutputAddr + 2), 3);
    EXPECT_EQ(iss.readMem(kOutputAddr + 4), 1);
    EXPECT_EQ(iss.readMem(kOutputAddr + 6), 2);
    EXPECT_EQ(iss.readMem(kOutputAddr + 8), 3);
    EXPECT_EQ(iss.readMem(kOutputAddr + 10), 3);
}

TEST(BenchmarkReference, AutoCorrLagZeroIsEnergy)
{
    const auto &b = bench430::benchmarkByName("autoCorr");
    fuzz::Rng rng(41);
    auto in = b.makeInput(rng);
    isa::Iss iss = runIss(b, in);
    auto w = inputWords(in);
    for (int k = 0; k < 4; ++k) {
        uint16_t expect = 0;
        for (int i = 0; i + k < 8; ++i)
            expect = uint16_t(expect + uint16_t(w[i] * w[i + k]));
        EXPECT_EQ(iss.readMem(kOutputAddr + uint32_t(k) * 2), expect)
            << "lag " << k;
    }
}

TEST(BenchmarkReference, ConvEnKnownVector)
{
    // All-zero data bits -> all-zero parities.
    const auto &b = bench430::benchmarkByName("ConvEn");
    baseline::InputSet zero;
    zero.ram.emplace_back(kInputAddr, std::vector<uint16_t>{0});
    isa::Iss iss = runIss(b, zero);
    EXPECT_EQ(iss.readMem(kOutputAddr), 0);
    // A one-bit input produces a nonzero, deterministic code word.
    baseline::InputSet one;
    one.ram.emplace_back(kInputAddr, std::vector<uint16_t>{1});
    isa::Iss iss2 = runIss(b, one);
    EXPECT_NE(iss2.readMem(kOutputAddr), 0);
}

TEST(BenchmarkReference, FftDcInput)
{
    // DC input c: X[0] = 8c (output slot 0), all other bins zero --
    // exact in Q8 because every butterfly multiplies zeros or uses
    // W^0 (DESIGN.md: DIF without output reordering).
    const auto &b = bench430::benchmarkByName("FFT");
    baseline::InputSet in;
    in.ram.emplace_back(
        kInputAddr, std::vector<uint16_t>{7, 7, 7, 7, 7, 7, 7, 7});
    isa::Iss iss = runIss(b, in);
    EXPECT_EQ(iss.readMem(kOutputAddr), 56);
    for (uint32_t i = 1; i < 8; ++i)
        EXPECT_EQ(iss.readMem(kOutputAddr + i * 2), 0) << i;
}

TEST(BenchmarkReference, PiSteadyStateZeroOutput)
{
    // sensor == setpoint -> zero error, zero actuation.
    const auto &b = bench430::benchmarkByName("PI");
    baseline::InputSet in;
    in.portIn = 0x0200;
    isa::Iss iss = runIss(b, in);
    EXPECT_EQ(iss.portOut(), 0);
}

TEST(BenchmarkReference, ViterbiAllZeroSymbolsDeterministic)
{
    const auto &b = bench430::benchmarkByName("Viterbi");
    baseline::InputSet in;
    in.ram.emplace_back(kInputAddr,
                        std::vector<uint16_t>{0, 0, 0, 0, 0, 0});
    isa::Iss a = runIss(b, in);
    isa::Iss c = runIss(b, in);
    // Deterministic metrics; state-0 metric stays the minimum on an
    // all-zero (uncorrupted) sequence.
    uint16_t m0 = a.readMem(kOutputAddr + 12);
    EXPECT_EQ(m0, c.readMem(kOutputAddr + 12));
    for (uint32_t s = 1; s < 4; ++s)
        EXPECT_LE(m0, a.readMem(kOutputAddr + 12 + s * 2)) << s;
}

TEST(BenchmarkReference, Tea8DeterministicAndKeyed)
{
    const auto &b = bench430::benchmarkByName("tea8");
    baseline::InputSet in;
    in.ram.emplace_back(kInputAddr, std::vector<uint16_t>{
                                        0x1234, 0x5678, 1, 2, 3, 4});
    isa::Iss a = runIss(b, in);
    isa::Iss c = runIss(b, in);
    EXPECT_EQ(a.readMem(kOutputAddr), c.readMem(kOutputAddr));
    // Changing the key changes the ciphertext.
    baseline::InputSet in2 = in;
    in2.ram[0].second[2] = 9;
    isa::Iss d = runIss(b, in2);
    EXPECT_NE(a.readMem(kOutputAddr), d.readMem(kOutputAddr));
    // Ciphertext differs from plaintext.
    EXPECT_NE(a.readMem(kOutputAddr), 0x1234);
}

TEST(BenchmarkReference, IntFiltFir)
{
    const auto &b = bench430::benchmarkByName("intFilt");
    fuzz::Rng rng(43);
    auto in = b.makeInput(rng);
    isa::Iss iss = runIss(b, in);
    auto w = inputWords(in);
    static const uint16_t coef[4] = {3, 11, 11, 3};
    for (int n = 0; n < 5; ++n) {
        uint16_t expect = 0;
        for (int j = 0; j < 4; ++j)
            expect = uint16_t(expect + uint16_t(w[n + j] * coef[j]));
        EXPECT_EQ(iss.readMem(kOutputAddr + uint32_t(n) * 2), expect)
            << "tap " << n;
    }
}

/**
 * The central property test (Section 3.4 validation as a regression):
 * for every benchmark, the X-based requirements dominate concrete
 * observations from random inputs, and the gate-level run agrees with
 * the ISS on the output region.
 */
class BenchmarkProperty : public ::testing::TestWithParam<int> {};

TEST_P(BenchmarkProperty, XBoundDominatesConcreteRuns)
{
    const Benchmark &b =
        bench430::allBenchmarks()[size_t(GetParam())];
    isa::Image img = b.assembleImage();
    msp::System &sys = test::sharedSystem();

    peak::Options opts;
    peak::Report x = peak::analyze(sys, img, opts);
    ASSERT_TRUE(x.ok) << b.name << ": " << x.error;

    power::PowerContext ctx(sys.netlist(), opts.freqHz);
    for (const auto &in : b.makeInputs(3, 1234)) {
        power::ConcreteRunOptions copts;
        copts.recordTrace = false;
        copts.recordActivity = true;
        copts.portIn = in.portIn;
        auto run = power::runConcrete(sys, img, ctx, copts, in.ram);
        ASSERT_TRUE(run.halted) << b.name;
        EXPECT_GE(x.peakPowerW, run.stats.peakW) << b.name;
        EXPECT_GE(x.npeJPerCycle, run.npeJPerCycle() * 0.999)
            << b.name;
        // Concrete cycles never exceed the max-path bound.
        EXPECT_LE(run.stats.cycles, x.maxPathCycles + 2) << b.name;

        // Gate-level run matches the ISS architecturally.
        isa::Iss iss = runIss(b, in);
        for (uint32_t a = kOutputAddr; a < kOutputAddr + 0x20; a += 2) {
            Word16 w = sys.memory().read(a);
            if (w.isFullyKnown())
                EXPECT_EQ(w.value, iss.readMem(a))
                    << b.name << " @" << std::hex << a;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkProperty,
                         ::testing::Range(0, 14));

/** Full-sweep-mode System shared across the equivalence tests (the
 * event-mode one is test::sharedSystem()). */
msp::System &
fullSweepSystem()
{
    static msp::System system(CellLibrary::tsmc65Like());
    return system;
}

class KernelEquivalence : public ::testing::TestWithParam<int> {};

/**
 * Acceptance property of the flat-kernel refactor: the event-driven
 * kernel reproduces the full sweep bit for bit -- peak power, peak
 * energy and NPE on every bench430 program...
 */
TEST_P(KernelEquivalence, AnalyzeReportsBitIdentical)
{
    const Benchmark &b =
        bench430::allBenchmarks()[size_t(GetParam())];
    isa::Image img = b.assembleImage();
    msp::System &sys = test::sharedSystem();

    peak::Options ev;
    ev.evalMode = EvalMode::EventDriven;
    peak::Options fs;
    fs.evalMode = EvalMode::FullSweep;
    peak::Report re = peak::analyze(sys, img, ev);
    peak::Report rf = peak::analyze(sys, img, fs);
    ASSERT_TRUE(re.ok) << b.name << ": " << re.error;
    ASSERT_TRUE(rf.ok) << b.name << ": " << rf.error;
    EXPECT_EQ(re.peakPowerW, rf.peakPowerW) << b.name;
    EXPECT_EQ(re.peakEnergyJ, rf.peakEnergyJ) << b.name;
    EXPECT_EQ(re.npeJPerCycle, rf.npeJPerCycle) << b.name;
    EXPECT_EQ(re.maxPathCycles, rf.maxPathCycles) << b.name;
    EXPECT_EQ(re.totalCycles, rf.totalCycles) << b.name;
    EXPECT_EQ(re.pathsExplored, rf.pathsExplored) << b.name;
    EXPECT_EQ(re.dedupMerges, rf.dedupMerges) << b.name;
    EXPECT_EQ(re.flatTraceW, rf.flatTraceW) << b.name;
}

/**
 * ...and, cycle for cycle, identical actual energy, bound energy and
 * activity sets along the symbolic (all-X input) path prefix.
 */
TEST_P(KernelEquivalence, PerCycleLockstepIdentical)
{
    const Benchmark &b =
        bench430::allBenchmarks()[size_t(GetParam())];
    isa::Image img = b.assembleImage();
    msp::System &sysEv = test::sharedSystem();
    msp::System &sysFs = fullSweepSystem();
    ASSERT_EQ(sysEv.netlist().numGates(), sysFs.netlist().numGates());

    for (msp::System *s : {&sysEv, &sysFs}) {
        s->memory().reset();
        s->loadImage(img);
        s->clearHalted();
    }
    Simulator ev(sysEv.netlist(), EvalMode::EventDriven);
    Simulator fs(sysFs.netlist(), EvalMode::FullSweep);
    sysEv.attach(ev);
    sysFs.attach(fs);
    sysEv.reset(ev);
    sysFs.reset(fs);

    for (int c = 0; c < 250 && !sysEv.halted(); ++c) {
        ev.step([&](Simulator &s) {
            sysEv.driveCycle(s, Word16::allX());
        });
        fs.step([&](Simulator &s) {
            sysFs.driveCycle(s, Word16::allX());
        });
        ASSERT_EQ(ev.actualEnergyJ(), fs.actualEnergyJ())
            << b.name << " cycle " << c;
        ASSERT_EQ(ev.boundEnergyJ(), fs.boundEnergyJ())
            << b.name << " cycle " << c;
        ASSERT_EQ(ev.activeGates(), fs.activeGates())
            << b.name << " cycle " << c;
        ASSERT_EQ(sysEv.halted(), sysFs.halted()) << b.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, KernelEquivalence,
                         ::testing::Range(0, 14));

} // namespace
} // namespace ulpeak
