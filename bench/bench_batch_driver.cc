/**
 * @file
 * Microbenchmark of the batch driver (peak::analyzeBatch): whole-suite
 * wall time over all 14 bench430 programs, serial vs program-level
 * parallel vs warm-cache, asserting first that every configuration
 * produces identical suite results (the determinism the driver
 * promises). Prints one row per configuration and drops
 * machine-readable results in bench_out/BENCH_batch_driver.json (the
 * checked-in BENCH_batch_driver.json at the repository root is a
 * copy). The warm-cache row is the acceptance number: a re-run of an
 * unchanged suite must be >= 10x faster than the cold run.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "bench/bench_util.hh"
#include "cli/driver.hh"
#include "peak/batch.hh"

int
main()
{
    using namespace ulpeak;
    bench_util::printHeader(
        "batch driver: suite wall time, serial vs parallel vs cache");

    std::vector<peak::BatchProgram> suite =
        cli::resolvePrograms({"all"});

    const std::string cacheDir = "bench_out/ulpeak-cache-bench";
    std::filesystem::remove_all(cacheDir);

    // At least 2 jobs so the worker pool is exercised even on a
    // single-core machine (where it cannot win wall time, but must
    // still produce identical results).
    unsigned hw = std::thread::hardware_concurrency();
    unsigned par = hw < 2 ? 2 : (hw < 8 ? hw : 8);

    struct Config {
        const char *name;
        unsigned jobs;
        bool cache;
    };
    const Config configs[] = {
        {"serial-cold", 1, false},
        {"parallel-cold", par, false},
        {"parallel-fillcache", par, true},
        {"parallel-warm", par, true},
    };

    std::string baselineJson;
    double coldSec = 0.0, warmSec = 0.0, parallelSec = 0.0;
    std::printf("%-20s %5s %6s %10s %9s\n", "config", "jobs", "cache",
                "wall [s]", "speedup");
    std::string json = "{\n  \"bench\": \"batch_driver\",\n"
                       "  \"programs\": " +
                       std::to_string(suite.size()) +
                       ",\n  \"configs\": [\n";
    bool first = true;
    for (const Config &c : configs) {
        peak::BatchOptions opts;
        opts.jobs = c.jobs;
        opts.cacheDir = c.cache ? cacheDir : "";
        peak::BatchReport rep = peak::analyzeBatch(
            CellLibrary::tsmc65Like(), suite, opts);
        if (!rep.ok) {
            std::fprintf(stderr, "FATAL: suite failed under %s\n",
                         c.name);
            return 1;
        }
        // Every configuration must report the same suite, bit for
        // bit, before any timing is trusted.
        std::string j = cli::toJson(rep, opts,
                                    /*include_timings=*/false);
        if (baselineJson.empty())
            baselineJson = j;
        else if (j != baselineJson) {
            std::fprintf(stderr,
                         "FATAL: %s changed the suite results\n",
                         c.name);
            return 1;
        }

        if (std::string(c.name) == "serial-cold")
            coldSec = rep.wallSeconds;
        if (std::string(c.name) == "parallel-cold")
            parallelSec = rep.wallSeconds;
        if (std::string(c.name) == "parallel-warm")
            warmSec = rep.wallSeconds;
        double speedup =
            coldSec > 0 ? coldSec / rep.wallSeconds : 0.0;
        std::printf("%-20s %5u %6s %10.3f %8.1fx\n", c.name, c.jobs,
                    c.cache ? "yes" : "no", rep.wallSeconds, speedup);
        if (!first)
            json += ",\n";
        first = false;
        char row[256];
        std::snprintf(row, sizeof(row),
                      "    {\"name\": \"%s\", \"jobs\": %u, "
                      "\"cache\": %s, \"wall_seconds\": %.4f, "
                      "\"speedup_vs_serial_cold\": %.1f}",
                      c.name, c.jobs, c.cache ? "true" : "false",
                      rep.wallSeconds, speedup);
        json += row;
    }
    double warmSpeedup = warmSec > 0 ? coldSec / warmSec : 0.0;
    double parSpeedup = parallelSec > 0 ? coldSec / parallelSec : 0.0;
    json += ",\n    {\"name\": \"summary\", "
            "\"warm_speedup_vs_cold\": " +
            std::to_string(warmSpeedup) +
            ", \"parallel_speedup_vs_serial\": " +
            std::to_string(parSpeedup) + "}\n  ]\n}\n";

    std::filesystem::remove_all(cacheDir);
    std::ofstream out(bench_util::outDir() +
                      "BENCH_batch_driver.json");
    out << json;
    std::printf("warm-cache speedup vs cold: %.0fx (acceptance: >= "
                "10x)\n",
                warmSpeedup);
    std::printf("wrote %sBENCH_batch_driver.json\n",
                bench_util::outDir().c_str());
    return warmSpeedup >= 10.0 ? 0 : 1;
}
