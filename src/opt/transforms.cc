#include "opt/optimizer.hh"

#include <cctype>
#include <sstream>

namespace ulpeak {
namespace opt {

namespace {

std::string
trim(const std::string &s)
{
    size_t a = s.find_first_not_of(" \t\r\n");
    if (a == std::string::npos)
        return "";
    size_t b = s.find_last_not_of(" \t\r\n");
    return s.substr(a, b - a + 1);
}

std::string
lower(std::string s)
{
    for (char &c : s)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Strip comment and leading labels; returns "mnemonic rest". */
std::string
codeOf(const std::string &line)
{
    std::string t = line;
    size_t semi = t.find(';');
    if (semi != std::string::npos)
        t = t.substr(0, semi);
    t = trim(t);
    while (true) {
        size_t colon = t.find(':');
        if (colon == std::string::npos)
            break;
        std::string lbl = t.substr(0, colon);
        bool ident = !lbl.empty();
        for (char c : lbl)
            if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
                ident = false;
        if (!ident)
            break;
        t = trim(t.substr(colon + 1));
    }
    return t;
}

/** Split "mov a, b" into mnemonic and operand strings. */
bool
splitInstr(const std::string &code, std::string &mn, std::string &op1,
           std::string &op2)
{
    size_t sp = code.find_first_of(" \t");
    mn = lower(sp == std::string::npos ? code : code.substr(0, sp));
    op1.clear();
    op2.clear();
    if (sp == std::string::npos)
        return !mn.empty();
    std::string rest = trim(code.substr(sp + 1));
    size_t comma = rest.find(',');
    if (comma == std::string::npos) {
        op1 = trim(rest);
    } else {
        op1 = trim(rest.substr(0, comma));
        op2 = trim(rest.substr(comma + 1));
    }
    return true;
}

bool
isPlainRegister(const std::string &s)
{
    std::string t = lower(s);
    if (t == "sp" || t == "sr" || t == "pc")
        return true;
    if (t.size() < 2 || t[0] != 'r')
        return false;
    for (size_t i = 1; i < t.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(t[i])))
            return false;
    return true;
}

/** Match "off(rN)" with nonzero textual offset; extract parts. */
bool
matchIndexed(const std::string &s, std::string &off, std::string &base)
{
    size_t lp = s.find('(');
    if (lp == std::string::npos || s.empty() || s.back() != ')')
        return false;
    off = trim(s.substr(0, lp));
    base = trim(s.substr(lp + 1, s.size() - lp - 2));
    if (off.empty() || off == "0")
        return false;
    return isPlainRegister(base);
}

bool
readsMultResult(const std::string &code)
{
    std::string c = lower(code);
    return c.find("&0x013a") != std::string::npos ||
           c.find("&0x013c") != std::string::npos ||
           c.find("&reslo") != std::string::npos ||
           c.find("&reshi") != std::string::npos;
}

bool
writesOp2(const std::string &code)
{
    std::string mn, op1, op2;
    if (!splitInstr(code, mn, op1, op2))
        return false;
    std::string dst = lower(op2);
    return dst == "&0x0138" || dst == "&op2";
}

} // namespace

std::string
applyTransforms(const std::string &source, const TransformConfig &cfg,
                TransformStats *stats)
{
    TransformStats local;
    std::vector<std::string> lines;
    {
        std::istringstream is(source);
        std::string l;
        while (std::getline(is, l))
            lines.push_back(l);
    }

    std::vector<std::string> out;
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        std::string code = codeOf(line);
        std::string mn, op1, op2;
        bool isInstr =
            !code.empty() && code[0] != '.' &&
            splitInstr(code, mn, op1, op2);

        // Keep any label prefix attached to the original line.
        std::string prefix;
        {
            size_t codePos = line.find(code);
            if (!code.empty() && codePos != std::string::npos)
                prefix = line.substr(0, codePos);
        }

        // OPT2: split the data move from the pointer increment. POP
        // (mov @sp+, dst) is the paper's example; the same
        // micro-operation pair exists in every autoincrement load.
        if (cfg.opt2 && isInstr && mn == "pop" &&
            isPlainRegister(op1) && lower(op1) != "sp") {
            out.push_back(prefix + "mov @sp, " + op1 + " ; OPT2");
            out.push_back("        add #2, sp ; OPT2");
            ++local.opt2Applied;
            continue;
        }
        if (cfg.opt2 && isInstr && mn == "mov" && op1.size() > 2 &&
            op1[0] == '@' && op1.back() == '+' &&
            isPlainRegister(op2)) {
            std::string base = op1.substr(1, op1.size() - 2);
            if (isPlainRegister(base) && lower(base) != lower(op2)) {
                out.push_back(prefix + "mov @" + base + ", " + op2 +
                              " ; OPT2");
                out.push_back("        add #2, " + base + " ; OPT2");
                ++local.opt2Applied;
                continue;
            }
        }

        // OPT1: mov off(rN), rM -> compute address into the scratch
        // register, then load register-indirect.
        std::string off, base;
        if (cfg.opt1 && !cfg.scratchReg.empty() && isInstr &&
            mn == "mov" && matchIndexed(op1, off, base) &&
            isPlainRegister(op2) && lower(op2) != lower(base) &&
            lower(op2) != lower(cfg.scratchReg) &&
            lower(base) != lower(cfg.scratchReg)) {
            const std::string &s = cfg.scratchReg;
            out.push_back(prefix + "mov " + base + ", " + s +
                          " ; OPT1");
            out.push_back("        add #" + off + ", " + s + " ; OPT1");
            out.push_back("        mov @" + s + ", " + op2 + " ; OPT1");
            ++local.opt1Applied;
            continue;
        }

        out.push_back(line);

        // OPT3: NOP right after the OP2 write -- the multiplier array
        // switches in the following cycles, so the NOP keeps the core
        // quiet while the peripheral draws its peak (Section 5.1:
        // "adding a NOP between writing to and reading from the
        // multiplier").
        if (cfg.opt3 && isInstr && writesOp2(code)) {
            bool nextIsNop = false;
            for (size_t j = i + 1; j < lines.size(); ++j) {
                std::string nextCode = codeOf(lines[j]);
                if (nextCode.empty())
                    continue;
                std::string nmn, n1, n2;
                splitInstr(nextCode, nmn, n1, n2);
                nextIsNop = nmn == "nop";
                break;
            }
            if (!nextIsNop) {
                out.push_back("        nop ; OPT3");
                ++local.opt3Applied;
            }
        }
    }

    if (stats)
        *stats = local;
    std::string result;
    for (const std::string &l : out)
        result += l + "\n";
    return result;
}

} // namespace opt
} // namespace ulpeak
