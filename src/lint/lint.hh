/**
 * @file
 * Static netlist analysis: structural lint passes and scenario-aware
 * ternary constant propagation (the `ullint` layer, PR 9).
 *
 * Two independent passes over a Netlist:
 *
 *  1. structuralLint() -- connectivity sanity checks that need no
 *     scenario: combinational loops (latch-free cycles through gate
 *     fanins), floating fanin slots, multi-driven nets (an Input gate
 *     claimed by more than one behavioral hook, or a hook claiming a
 *     gate that computes its own value), dead gates (no fanin path
 *     from any observation point -- named gates and hook reads --
 *     back to the gate), and fanout hotspots. Runs on finalized and
 *     unfinalized netlists alike (a netlist with a combinational
 *     loop can never finalize, so the loop detector builds its own
 *     CSR fanin adjacency from the construction-phase gate records;
 *     on finalized netlists it is the same adjacency flat() holds).
 *
 *  2. analyzeConstants() -- a forward three-valued dataflow fixpoint
 *     proving gates constant under a deployment Scenario. The value
 *     lattice per gate is {X} < {0, 1} ("not proven" below "proven
 *     constant"); seeds are Const cells, port bits the scenario pins
 *     to the same value in every phase of its port schedule, and
 *     inputs the system driver holds at a fixed level every
 *     post-reset cycle (rstn = 1, irq = 0 for msp::System). Transfer
 *     functions are the simulator's own evalCell/evalSeqCell, so the
 *     proof obligations and the kernels can never disagree about a
 *     cell's semantics. The monotone worklist iteration computes the
 *     least fixpoint: a gate is reported constant only when every
 *     scenario-obeying execution holds it at that value from its
 *     settle cycle on.
 *
 * The analysis also derives the *prune set*: proven-constant
 * combinational gates, constants, and pinned inputs -- never
 * sequential gates or hook-driven nets -- that the simulator may
 * skip entirely once settled (Simulator::setStaticPrune,
 * SymbolicConfig::staticPrune). Each pruned gate carries a settle
 * depth: the number of clock edges after reset before its value is
 * guaranteed to have reached the proven constant (0 for purely
 * combinational cones over the seeds, +1 per sequential stage the
 * proof passes through). Soundness of the whole chain is enforced
 * dynamically by fuzz property 9 (`ulfuzz --mode lint`): pruned and
 * unpruned analyses must be bit-identical, and every constant claim
 * is checked against concrete scenario-obeying runs.
 */

#ifndef ULPEAK_LINT_LINT_HH
#define ULPEAK_LINT_LINT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.hh"
#include "scenario/scenario.hh"

namespace ulpeak {
namespace lint {

enum class Severity : uint8_t { Error, Warning, Info };
enum class IssueKind : uint8_t {
    CombLoop,      ///< latch-free cycle through gate fanins
    FloatingInput, ///< fanin slot unset or out of range
    MultiDriver,   ///< net claimed by >1 driver (hook overlap)
    DeadGate,      ///< no path to any observation point
    FanoutHotspot, ///< fanout count above threshold
};

const char *severityName(Severity s);
const char *issueKindName(IssueKind k);

/** One finding. Deterministic: gates are sorted ascending and the
 *  report orders issues by (kind, first gate id). */
struct Issue {
    IssueKind kind = IssueKind::CombLoop;
    Severity severity = Severity::Error;
    std::vector<GateId> gates; ///< involved gates (cycle members,
                               ///< the floating gate, ...)
    std::string message;       ///< human-readable, includes names
};

struct StructuralOptions {
    /** Fanout count at or above which a gate is reported as a
     *  hotspot; 0 picks max(64, numGates / 16). */
    uint32_t fanoutHotspotThreshold = 0;
    /** Cap on reported hotspot issues (highest fanout first). */
    uint32_t maxHotspots = 8;
    /** Cap on gate ids listed per dead-cone issue. */
    uint32_t maxListedDeadGates = 16;
};

struct StructuralReport {
    std::vector<Issue> issues;
    uint32_t fanoutHotspotThreshold = 0; ///< resolved threshold
    size_t deadGates = 0; ///< total dead gates (issues list a sample)

    size_t count(IssueKind k) const;
    /** Number of Severity::Error issues (CI gates on zero). */
    size_t errors() const;
};

/** Run every structural pass on @p nl (finalized or not). */
StructuralReport structuralLint(const Netlist &nl,
                                const StructuralOptions &opts = {});

struct ConstAnalysisOptions {
    /** The deployment scenario; port bits pinned to one value across
     *  every phase of the port schedule seed the fixpoint. */
    scenario::Scenario scenario;
    /** Gate ids of the port input bus, bit i at index i (empty
     *  entries kNoGate). For msp::System: handles().portIn. */
    std::vector<GateId> portBits;
    /** Inputs the system driver holds at a fixed value every
     *  post-reset cycle (msp::System: rstn = 1, irq = 0). */
    std::vector<std::pair<GateId, V4>> drivenConstants;
    /** Input gates written by behavioral hooks are never seeds or
     *  prune members; set automatically from Netlist::hooks(). */
};

/** Result of the constant-propagation fixpoint over one scenario. */
struct ConstAnalysis {
    /** Per-gate proven value; X means "not proven constant". */
    std::vector<V4> value;
    /** Per-gate settle depth (clock edges after the first post-reset
     *  cycle before the proven value is guaranteed); only meaningful
     *  where value != X. */
    std::vector<uint32_t> settleDepth;
    /** 1 = gate may be skipped by a settled simulator: proven-known
     *  combinational gates, Const cells, pinned port bits and
     *  driver-constant inputs. Sequential gates and hook-driven nets
     *  never join. */
    std::vector<uint8_t> pruneMask;
    uint32_t maxPruneDepth = 0; ///< max settleDepth over the mask

    size_t provenConst = 0;   ///< gates with a proven value
    size_t provenSeq = 0;     ///< ... of which sequential (reported,
                              ///< never pruned)
    size_t prunable = 0;      ///< mask population
    /** Per-cycle switching energy the proven-quiescent gates can no
     *  longer contribute: sum of maxE over the mask [J]. */
    double quiescentEnergyJ = 0.0;
    /** Static upper bound on any cycle's netlist switching energy
     *  once settled: sum of maxE over gates NOT proven constant,
     *  plus the clock tree [J]. Behavioral (hook) energies are
     *  outside the netlist and excluded. */
    double switchingBoundJ = 0.0;

    /** switchingBoundJ priced at @p freq_hz plus leakage [W] -- the
     *  static analogue of a per-cycle envelope bound. */
    double staticPeakPowerW(double freq_hz, double leakage_w) const
    {
        return switchingBoundJ * freq_hz + leakage_w;
    }
};

/** Run the scenario-aware constant fixpoint on @p nl. */
ConstAnalysis analyzeConstants(const Netlist &nl,
                               const ConstAnalysisOptions &opts);

/** Per-top-module quiescent-cone row of the `ullint` report. */
struct QuiescentCone {
    std::string module;
    size_t gates = 0;        ///< gates in the module
    size_t constGates = 0;   ///< ... proven constant
    size_t pruned = 0;       ///< ... in the prune mask
    double quiescentEnergyJ = 0.0; ///< maxE no longer contributable
};

/** Group @p a's proven-constant gates per top-level module,
 *  alphabetical by module name (deterministic). */
std::vector<QuiescentCone> quiescentCones(const Netlist &nl,
                                          const ConstAnalysis &a);

} // namespace lint
} // namespace ulpeak

#endif // ULPEAK_LINT_LINT_HH
