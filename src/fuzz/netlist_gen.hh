/**
 * @file
 * Seeded random netlist generator for kernel-level differential
 * testing.
 *
 * The two simulation kernels (EvalMode::FullSweep and
 * EvalMode::EventDriven) are bit-identical by contract for *any*
 * netlist and *any* driver, not just the CPU. This generator produces
 * small random netlists -- primary inputs, register banks with random
 * enable/reset wiring, and a soup of combinational cells over every
 * Builder primitive -- so the contract is checked far outside the
 * structural idioms the CPU happens to use. Construction only ever
 * feeds already-emitted signals into new gates, so the result is
 * acyclic by construction and always passes Netlist::finalize().
 */

#ifndef ULPEAK_FUZZ_NETLIST_GEN_HH
#define ULPEAK_FUZZ_NETLIST_GEN_HH

#include <vector>

#include "fuzz/rng.hh"
#include "netlist/netlist.hh"

namespace ulpeak {
namespace fuzz {

struct NetlistGenOptions {
    unsigned numInputs = 6;
    unsigned numCombGates = 120;
    unsigned numRegBanks = 4;
    unsigned maxRegWidth = 4;
    /** Percent chance a cycle drives a given input to X (the rest
     *  split evenly between 0 and 1). Applies to the generated input
     *  schedule, not the netlist itself. */
    unsigned inputXPercent = 20;
};

/** Handles into a generated netlist. */
struct RandomNetlist {
    std::vector<GateId> inputs;
};

/**
 * Populate @p nl (fresh, unfinalized) with a random design and
 * finalize it. Deterministic in @p rng.
 */
RandomNetlist buildRandomNetlist(Netlist &nl, Rng &rng,
                                 const NetlistGenOptions &opts);

/**
 * Random per-cycle values for every primary input: schedule[c][i] is
 * the value input i takes in cycle c. Deterministic in @p rng, so the
 * same schedule can drive any number of simulators in lockstep.
 */
std::vector<std::vector<V4>>
makeInputSchedule(Rng &rng, unsigned num_inputs, unsigned cycles,
                  unsigned x_percent);

} // namespace fuzz
} // namespace ulpeak

#endif // ULPEAK_FUZZ_NETLIST_GEN_HH
