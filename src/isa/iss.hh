/**
 * @file
 * Golden instruction-set simulator (ISS).
 *
 * A concrete-valued architectural model of the ULP system in src/msp:
 * same ISA subset, same memory map, same peripheral semantics, and the
 * same cycle schedule (MicroPlan). The gate-level core is verified
 * against this model by randomized co-simulation
 * (tests/test_cpu_equivalence.cc), mirroring how the paper trusts a
 * silicon-proven openMSP430 RTL. It is also used for fast functional
 * checks of benchmarks and for the optimizer's performance accounting.
 */

#ifndef ULPEAK_ISA_ISS_HH
#define ULPEAK_ISA_ISS_HH

#include <array>
#include <cstdint>
#include <functional>

#include "isa/assembler.hh"
#include "isa/encoding.hh"

namespace ulpeak {
namespace isa {

/** Memory map constants shared with the gate-level system (msp/). */
struct SystemMap {
    static constexpr uint32_t kSfrIe = 0x0000;    ///< interrupt enable
    static constexpr uint32_t kSfrIfg = 0x0002;   ///< interrupt flags
    static constexpr uint32_t kPortIn = 0x0020;   ///< 16-bit input port
    static constexpr uint32_t kPortOut = 0x0022;  ///< 16-bit output port
    static constexpr uint32_t kWdtCtl = 0x0120;   ///< watchdog control
    static constexpr uint32_t kMpy = 0x0130;      ///< op1, unsigned
    static constexpr uint32_t kMpys = 0x0132;     ///< op1, signed
    static constexpr uint32_t kOp2 = 0x0138;      ///< op2 (triggers)
    static constexpr uint32_t kResLo = 0x013a;    ///< product low
    static constexpr uint32_t kResHi = 0x013c;    ///< product high
    static constexpr uint32_t kDbgCtl = 0x01e0;   ///< debug-unit reg 0
    static constexpr uint32_t kDbgData = 0x01e2;  ///< debug-unit reg 1
    static constexpr uint32_t kDone = 0x01f0;     ///< write-to-halt
    static constexpr uint32_t kRamBase = 0x0200;
    static constexpr uint32_t kRamSize = 0x0800;  ///< 2 KiB
    static constexpr uint32_t kRomBase = 0xf000;  ///< 4 KiB
    static constexpr uint32_t kResetVector = 0xfffe;
    static constexpr uint16_t kWdtPassword = 0x5a00;
    static constexpr uint16_t kWdtHold = 0x0080;
};

class Iss {
  public:
    Iss();

    /** Load an assembled image (ROM and/or RAM segments). */
    void loadImage(const Image &image);
    /** Clear registers, fetch the reset vector, un-halt. */
    void reset();

    /// @name Architectural state
    /// @{
    uint16_t reg(unsigned r) const { return regs_[r]; }
    void setReg(unsigned r, uint16_t v) { regs_[r] = v; }
    uint16_t pc() const { return regs_[kPc]; }
    bool halted() const { return halted_; }
    uint64_t cycles() const { return cycles_; }
    uint64_t instructions() const { return instrs_; }
    /// @}

    /** Value returned by reads of the input port. */
    void setPortIn(uint16_t v) { portIn_ = v; }
    uint16_t portOut() const { return portOut_; }

    /**
     * Architectural memory access (RAM, ROM, peripherals). Unmapped
     * addresses read 0xffff; writes to ROM/unmapped are dropped --
     * matching the gate-level mem_backbone.
     */
    uint16_t readMem(uint32_t addr);
    void writeMem(uint32_t addr, uint16_t v);

    /**
     * Observer invoked on every architectural memory write (word
     * address, raw value), before the write is applied or filtered.
     * The co-simulation checker (src/cosim) uses this to compare the
     * ISS's store stream against the gate-level core's memory bus,
     * write for write.
     */
    using WriteObserver = std::function<void(uint32_t, uint16_t)>;
    void setWriteObserver(WriteObserver fn) { writeObs_ = std::move(fn); }

    /** Execute one instruction; returns false once halted or on an
     *  unsupported opcode (haltReason() tells which). */
    bool step();
    /** Run until halt or @p max_instrs; returns true if halted. */
    bool run(uint64_t max_instrs);

    const std::string &haltReason() const { return haltReason_; }

  private:
    uint16_t fetchWord();
    uint16_t readOperand(const Operand &o, uint32_t &addr_out);
    void writeFlags(bool c, bool z, bool n, bool v);
    bool flagC() const { return regs_[kSr] & (1u << kFlagC); }
    bool flagZ() const { return regs_[kSr] & (1u << kFlagZ); }
    bool flagN() const { return regs_[kSr] & (1u << kFlagN); }
    bool flagV() const { return regs_[kSr] & (1u << kFlagV); }

    std::array<uint16_t, 16> regs_{};
    std::array<uint16_t, SystemMap::kRamSize / 2> ram_{};
    std::array<uint16_t, (0x10000 - SystemMap::kRomBase) / 2> rom_{};

    uint16_t portIn_ = 0;
    uint16_t portOut_ = 0;
    uint16_t wdtCtl_ = 0;
    uint16_t sfrIe_ = 0;
    uint16_t sfrIfg_ = 0;
    uint16_t mpy_ = 0;
    bool mpySigned_ = false;
    uint16_t op2_ = 0;
    uint16_t resLo_ = 0;
    uint16_t resHi_ = 0;
    uint16_t dbg0_ = 0;
    uint16_t dbg1_ = 0;

    WriteObserver writeObs_;
    bool halted_ = false;
    std::string haltReason_;
    uint64_t cycles_ = 0;
    uint64_t instrs_ = 0;
};

} // namespace isa
} // namespace ulpeak

#endif // ULPEAK_ISA_ISS_HH
