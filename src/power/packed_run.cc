#include "power/packed_run.hh"

namespace ulpeak {
namespace power {

namespace {
constexpr unsigned kLanes = PackedSimulator::kLanes;
} // namespace

void
packedMemHook(PackedSimulator &s, const msp::CpuHandles &h,
              std::vector<Memory> &mem)
{
    std::array<Word16, kLanes> data;
    uint64_t access_mask = 0;
    V64 en = s.value(h.mbEn);
    for (unsigned l = 0; l < kLanes; ++l) {
        V4 e = en.lane(l);
        if (e == V4::Zero) {
            data[l] = Word16::known(0);
            continue;
        }
        Word16 addr = s.readBusLane(h.mab, l);
        if (e == V4::X || !addr.isFullyKnown()) {
            data[l] = Word16::allX();
            continue;
        }
        uint32_t a = addr.value;
        if (mem[l].inRam(a) || mem[l].inRom(a)) {
            data[l] = mem[l].read(a);
            access_mask |= uint64_t(1) << l;
        } else if (a < 0x0200) {
            data[l] = Word16::known(0);
        } else {
            data[l] = Word16::known(0xffff);
        }
    }
    s.setInputBusLanes(h.memData, data);
    if (access_mask)
        s.addBehavioralEnergyJ(msp::System::kMemAccessEnergyJ,
                               h.modMemBackbone, access_mask);
}

/** Halted lanes are skipped: the scalar run stops stepping one cycle
 *  after the halting store, so no later edge of that lane ever commits
 *  there. */
void
packedMemEdge(PackedSimulator &s, const msp::CpuHandles &h,
              std::vector<Memory> &mem, uint64_t &halted_mask,
              uint64_t &fault_mask, uint64_t skip_mask)
{
    V64 rstn = s.value(h.rstn);
    V64 wr = s.value(h.mbWr);
    for (unsigned l = 0; l < kLanes; ++l) {
        uint64_t bit = uint64_t(1) << l;
        if ((halted_mask | skip_mask) & bit)
            continue;
        if (rstn.lane(l) != V4::One)
            continue;
        V4 w = wr.lane(l);
        if (w == V4::Zero)
            continue;
        if (w == V4::X) {
            fault_mask |= bit;
            continue;
        }
        Word16 addr = s.readBusLane(h.mab, l);
        if (!addr.isFullyKnown()) {
            fault_mask |= bit;
            continue;
        }
        uint32_t a = addr.value;
        Word16 d = s.readBusLane(h.mdbOut, l);
        if (mem[l].inRam(a))
            mem[l].write(a, d);
        else if (a == msp::SystemMap::kDone)
            halted_mask |= bit;
    }
}

PackedRunResult
runConcretePacked(msp::System &sys, const isa::Image &image,
                  const PowerContext &ctx, const PackedRunOptions &opts,
                  const RamInit &ram_init)
{
    sys.memory().reset();
    sys.loadImage(image);
    for (auto &[addr, words] : ram_init)
        sys.memory().loadRam(addr, words);

    const msp::CpuHandles &h = sys.handles();
    std::vector<Memory> mem(kLanes, sys.memory());
    uint64_t halted_mask = 0;
    uint64_t fault_mask = 0;

    PackedSimulator psim(sys.netlist());
    psim.setHookFn(h.memHookId, [&](PackedSimulator &s) {
        packedMemHook(s, h, mem);
    });
    psim.addEdgeFn([&](PackedSimulator &s) {
        packedMemEdge(s, h, mem, halted_mask, fault_mask,
                      /*skip_mask=*/0);
    });

    // Reset sequence (System::reset, all lanes in lockstep).
    for (unsigned i = 0; i < msp::System::kResetCycles; ++i) {
        psim.step([&](PackedSimulator &s) {
            s.setInput(h.rstn, V64::splat(V4::Zero));
            s.setInput(h.irq, V64::splat(V4::Zero));
            s.setInputBusAll(h.portIn, Word16::allX());
        });
    }

    PackedRunResult r;
    std::array<Word16, kLanes> ports;
    while (halted_mask != ~uint64_t(0) &&
           psim.cycle() < opts.maxCycles) {
        // Lanes recording this step: exactly those whose scalar run
        // would still be in its step loop (halt is checked before the
        // step there, so the step whose edge sets halt still records).
        uint64_t record_mask = ~halted_mask;
        for (unsigned l = 0; l < kLanes; ++l) {
            const std::vector<uint16_t> &sched = opts.portSchedules[l];
            uint16_t p = sched.empty()
                             ? opts.portIn
                             : sched[size_t(psim.cycle()) %
                                     sched.size()];
            ports[l] = Word16::known(p);
        }
        psim.step([&](PackedSimulator &s) {
            s.setInput(h.rstn, V64::splat(V4::One));
            s.setInput(h.irq, V64::splat(V4::Zero));
            s.setInputBusLanes(h.portIn, ports);
        });
        while (record_mask) {
            unsigned l = unsigned(__builtin_ctzll(record_mask));
            record_mask &= record_mask - 1;
            double w = ctx.cyclePowerW(psim.boundEnergyJ(l));
            r.lanes[l].stats.add(w);
            if (opts.recordTrace)
                r.lanes[l].traceW.push_back(float(w));
        }
    }

    for (unsigned l = 0; l < kLanes; ++l) {
        r.lanes[l].halted = (halted_mask >> l) & 1;
        r.lanes[l].xStoreFault = (fault_mask >> l) & 1;
        r.lanes[l].totalEnergyJ = r.lanes[l].stats.energyJ(ctx.tclkS());
    }
    return r;
}

} // namespace power
} // namespace ulpeak
