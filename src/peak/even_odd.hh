/**
 * @file
 * Literal implementation of Algorithm 2's even/odd VCD construction.
 *
 * The paper records the flattened execution trace in a VCD, then
 * derives two VCDs: one whose X assignments maximize transitions in
 * every even cycle, one for every odd cycle. Power analysis over each
 * file plus interleaving yields the per-cycle peak power trace. The
 * engine computes the same per-cycle bound online; the test suite
 * proves the two agree cycle-for-cycle (the constructions are
 * equivalent because even pairs (c-1, c) are disjoint, so the local
 * max-transition assignment is globally consistent within one file).
 */

#ifndef ULPEAK_PEAK_EVEN_ODD_HH
#define ULPEAK_PEAK_EVEN_ODD_HH

#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "msp/cpu.hh"

namespace ulpeak {
namespace peak {

/** A recorded per-cycle, per-gate value/activity trace. */
struct GateTrace {
    /** values[c][g] = value of gate g during cycle c. */
    std::vector<std::vector<V4>> values;
    /** active[c][g] != 0 iff gate g is active in cycle c
     *  (Section 3.1's definition). */
    std::vector<std::vector<uint8_t>> active;
    /** Per-cycle switching bound computed online, for comparison. */
    std::vector<double> onlineBoundJ;
};

/**
 * Run @p image for @p cycles with all port inputs X (single-path
 * prefix of the symbolic simulation) and record every gate's value.
 * @p mode selects the simulation kernel; the recorded trace is
 * identical either way.
 */
GateTrace recordGateTrace(msp::System &sys, const isa::Image &image,
                          uint64_t cycles,
                          EvalMode mode = EvalMode::EventDriven);

/**
 * Algorithm 2 lines 2-17: derive the VCD whose X assignments maximize
 * transitions in cycles with parity @p even (true: even cycles).
 * Signals are named g0..gN-1 in gate order.
 */
std::string buildMaxVcd(const Netlist &nl, const GateTrace &trace,
                        bool even);

/**
 * Activity-based power analysis over a VCD (the PrimeTime role):
 * per-cycle switching energy from the value changes. [J per cycle]
 */
std::vector<double> switchingEnergyFromVcd(const Netlist &nl,
                                           const std::string &vcd_text);

/** Algorithm 2 line 19: interleave even/odd traces. */
std::vector<double> interleave(const std::vector<double> &even_trace,
                               const std::vector<double> &odd_trace);

} // namespace peak
} // namespace ulpeak

#endif // ULPEAK_PEAK_EVEN_ODD_HH
