/**
 * @file
 * Benchmark bodies, part 2: rle, intAVG, the EEMBC kernels
 * (autoCorr, FFT, ConvEn, Viterbi) and the PI controller.
 */

#include "bench430/benchmarks.hh"

namespace ulpeak {
namespace bench430 {

std::string
rleBody()
{
    // Run-length encode 8 samples into (value, length) pairs. The
    // equality test forks per sample; the output cursor is concrete
    // per path, so all stores have known addresses.
    return R"(
        mov #INPUT, r4
        mov #OUT, r5
        mov @r4+, r7        ; current run value
        mov #1, r8          ; run length
        mov #7, r9
rl_loop:
        mov @r4+, r10
        cmp r7, r10         ; same as current run? (X: fork)
        jne rl_flush
        inc r8
        jmp rl_next
rl_flush:
        mov r7, 0(r5)
        mov r8, 2(r5)
        add #4, r5
        mov r10, r7
        mov #1, r8
rl_next:
        dec r9
        jnz rl_loop
        mov r7, 0(r5)       ; final run
        mov r8, 2(r5)
)";
}

std::string
intAvgBody()
{
    // Mean of 8 samples (sum, then arithmetic shift by 3). Straight
    // line: one symbolic path.
    return R"(
        mov #INPUT, r4
        mov #8, r5
        mov #0, r6
ia_loop:
        add @r4+, r6
        dec r5
        jnz ia_loop
        rra r6
        rra r6
        rra r6
        mov r6, &OUT
)";
}

std::string
autoCorrBody()
{
    // Autocorrelation r[k] = sum x[i]*x[i+k], k = 0..3, N = 8 --
    // multiplier-bound like the EEMBC original.
    return R"(
        mov #0, r4          ; k
ac_outer:
        mov #0, r8          ; acc
        mov #0, r5          ; i
        mov #8, r6
        sub r4, r6          ; limit = 8 - k
ac_inner:
        mov r5, r10
        rla r10
        mov INPUT(r10), r11
        mov r11, &MPY
        mov r5, r11
        add r4, r11
        rla r11
        mov INPUT(r11), r11
        mov r11, &OP2
        add &RESLO, r8
        inc r5
        cmp r6, r5
        jlo ac_inner
        mov r4, r10
        rla r10
        mov r8, OUT(r10)
        inc r4
        cmp #4, r4
        jne ac_outer
        jmp __done
)";
}

std::string
fftBody()
{
    // 8-point decimation-in-frequency FFT, Q8 twiddles on the signed
    // hardware multiplier (MPYS), driven by a butterfly table of
    // (addr_i, addr_j, W_re, W_im). Real part at ARR, imaginary at
    // ARR+16. Single symbolic path; 48 signed multiplications make
    // this (with mult/autoCorr/intFilt) one of the high-variation
    // kernels of Section 5.
    return R"(
        mov #0, r4
ff_copy:
        mov r4, r10
        rla r10
        mov INPUT(r10), r11
        and #0x00ff, r11
        mov r11, ARR(r10)
        mov #0, ARR+16(r10)
        inc r4
        cmp #8, r4
        jne ff_copy
        mov #ff_btab, r4
        mov #12, r5
ff_loop:
        mov @r4+, r6        ; &re[i]
        mov @r4+, r7        ; &re[j]
        mov @r4+, r8        ; W_re (Q8)
        mov @r4+, r9        ; W_im (Q8)
        call #ff_btfly
        dec r5
        jnz ff_loop
        mov #0, r4
ff_out:
        mov r4, r10
        rla r10
        mov ARR(r10), r11
        mov r11, OUT(r10)
        inc r4
        cmp #8, r4
        jne ff_out
        jmp __done

        ; DIF butterfly: a' = a + b; b' = (a - b) * W, Q8.
ff_btfly:
        push r8
        push r9
        mov @r6, r10        ; re[i]
        mov @r7, r11        ; re[j]
        mov r10, r12
        sub r11, r12        ; t_re
        add r11, 0(r6)      ; re[i] += re[j]
        mov 16(r6), r13
        mov 16(r7), r14
        sub r14, r13        ; t_im
        add r14, 16(r6)     ; im[i] += im[j]
        ; re[j] = (t_re*Wre)>>8 - (t_im*Wim)>>8
        mov r12, &MPYS
        mov r8, &OP2
        mov &RESLO, r15
        mov &RESHI, r14
        swpb r15
        and #0x00ff, r15
        swpb r14
        and #0xff00, r14
        bis r14, r15
        mov r13, &MPYS
        mov r9, &OP2
        mov &RESLO, r14
        mov &RESHI, r11
        swpb r14
        and #0x00ff, r14
        swpb r11
        and #0xff00, r11
        bis r11, r14
        sub r14, r15
        mov r15, 0(r7)
        ; im[j] = (t_re*Wim)>>8 + (t_im*Wre)>>8
        mov r12, &MPYS
        mov r9, &OP2
        mov &RESLO, r15
        mov &RESHI, r14
        swpb r15
        and #0x00ff, r15
        swpb r14
        and #0xff00, r14
        bis r14, r15
        mov r13, &MPYS
        mov r8, &OP2
        mov &RESLO, r14
        mov &RESHI, r11
        swpb r14
        and #0x00ff, r14
        swpb r11
        and #0xff00, r11
        bis r11, r14
        add r14, r15
        mov r15, 16(r7)
        pop r9
        pop r8
        ret

ff_btab:
        .word ARR+0,  ARR+8,  256, 0
        .word ARR+2,  ARR+10, 181, -181
        .word ARR+4,  ARR+12, 0, -256
        .word ARR+6,  ARR+14, -181, -181
        .word ARR+0,  ARR+4,  256, 0
        .word ARR+2,  ARR+6,  0, -256
        .word ARR+8,  ARR+12, 256, 0
        .word ARR+10, ARR+14, 0, -256
        .word ARR+0,  ARR+2,  256, 0
        .word ARR+4,  ARR+6,  256, 0
        .word ARR+8,  ARR+10, 256, 0
        .word ARR+12, ARR+14, 256, 0
)";
}

std::string
convEnBody()
{
    // Convolutional encoder, K=3, rate 1/2, generators (7, 5): 8 data
    // bits from one input word, parities computed bitwise (X data,
    // concrete control: single path).
    return R"(
        mov &INPUT, r4      ; data word (bits 0..7 used)
        mov #0, r5          ; encoder state
        mov #8, r6
        mov #0, r7          ; packed output
ce_loop:
        mov r4, r8
        and #1, r8          ; next data bit (X)
        rra r4
        rla r5
        bis r8, r5
        and #7, r5          ; state = ((state<<1)|bit) & 7
        ; g7 parity: b0^b1^b2 of state
        mov r5, r9
        mov r5, r10
        rra r9
        xor r9, r10
        rra r9
        xor r9, r10
        and #1, r10         ; out0
        ; g5 parity: b0^b2
        mov r5, r9
        rra r9
        rra r9
        xor r5, r9
        and #1, r9          ; out1
        rla r7
        rla r7
        rla r10
        bis r10, r7
        bis r9, r7          ; out word <<= 2 | (out0<<1) | out1
        dec r6
        jnz ce_loop
        mov r7, &OUT
)";
}

std::string
viterbiBody()
{
    // 4-state Viterbi add-compare-select over 6 received symbols.
    // The compare-select is branchless (SUBC carry-mask idiom), so
    // unknown path metrics never fork control flow -- the survivor
    // bits are X data written to concrete addresses.
    //
    // Trellis (K=3, G=(7,5)): next state n has predecessors n>>1 and
    // (n>>1)+2 with input bit n&1; expected symbols are hardcoded per
    // edge. Branch metrics for the four expected symbols are staged
    // at ARR+0..6; old metrics m0..m3 live in r8..r11, new metrics
    // are staged at ARR+8..14.
    std::string body = R"(
        mov #INPUT, r4
        mov #6, r5
        mov #0, r8
        mov #32, r9
        mov #32, r10
        mov #32, r11
        mov #OUT, r15
vt_symbol:
        push r5
        ; received bits r0 (low), r1 -> distances for expected 00,01,10,11
        mov @r4+, r6
        mov r6, r7
        and #1, r6          ; r0 (X)
        rra r7
        and #1, r7          ; r1 (X)
        mov r6, r12
        add r7, r12
        mov r12, &ARR+0     ; d(00) = r0 + r1
        mov #1, r12
        sub r6, r12
        add r7, r12
        mov r12, &ARR+2     ; d(01) = (1-r0) + r1
        mov #1, r12
        sub r7, r12
        add r6, r12
        mov r12, &ARR+4     ; d(10) = r0 + (1-r1)
        mov #2, r12
        sub r6, r12
        sub r7, r12
        mov r12, &ARR+6     ; d(11) = (1-r0) + (1-r1)
        mov #0, r14         ; survivor bits for this symbol
)";
    // Unrolled ACS for next states 0..3. Expected symbol for edge
    // (prev p, bit b): out0 = b ^ p1 ^ p0 (G=7), out1 = b ^ p0 (G=5);
    // index into ARR as 2*(out0*2 + out1).
    for (unsigned n = 0; n < 4; ++n) {
        unsigned p0 = n >> 1;          // predecessor A
        unsigned p1 = (n >> 1) + 2;    // predecessor B
        unsigned b = n & 1;
        auto expIdx = [&](unsigned p) {
            unsigned s1 = (p >> 1) & 1, s0 = p & 1;
            unsigned o0 = b ^ s1 ^ s0;
            unsigned o1 = b ^ s0;
            return 2 * (o0 * 2 + o1);
        };
        std::string mA = "r" + std::to_string(8 + p0);
        std::string mB = "r" + std::to_string(8 + p1);
        body += "        ; ACS for next state " + std::to_string(n) +
                "\n";
        body += "        mov " + mA + ", r12\n";
        body += "        add &ARR+" + std::to_string(expIdx(p0)) +
                ", r12\n";
        body += "        mov " + mB + ", r13\n";
        body += "        add &ARR+" + std::to_string(expIdx(p1)) +
                ", r13\n";
        // mask r6 = 0xffff when candA < candB (pick A), else 0.
        body += "        cmp r13, r12\n";  // candA - candB
        body += "        subc r6, r6\n";   // C=1 (A>=B) -> 0
        body += "        and r6, r12\n";   // A term
        body += "        xor #0xffff, r6\n";
        body += "        and r6, r13\n";   // B term
        body += "        bis r13, r12\n";  // min
        body += "        mov r12, &ARR+" + std::to_string(8 + 2 * n) +
                "\n";
        // survivor bit: 1 when predecessor B chosen.
        body += "        and #1, r6\n";
        body += "        rla r14\n";
        body += "        bis r6, r14\n";
    }
    body += R"(
        mov r14, 0(r15)     ; survivors for this symbol (X data)
        add #2, r15
        mov &ARR+8, r8
        mov &ARR+10, r9
        mov &ARR+12, r10
        mov &ARR+14, r11
        pop r5
        dec r5
        jnz vt_symbol
        ; emit final metrics
        mov r8, &OUT+12
        mov r9, &OUT+14
        mov r10, &OUT+16
        mov r11, &OUT+18
)";
    return body;
}

std::string
piBody()
{
    // Proportional-integral controller, 6 steps: the sensor reading
    // comes from the input port (X every cycle under symbolic
    // analysis -- the paper's PI exercises the largest gate set at
    // its peak, Figure 1.5b). Saturation branches fork; clamped
    // paths carry concrete outputs and re-converge.
    return R"(
        mov #0, r9          ; integrator
        mov #6, r8
pi_loop:
        push r8
        mov &PIN, r5        ; sensor (X)
        and #0x03ff, r5
        mov #0x0200, r6
        sub r5, r6          ; err = setpoint - sensor
        add r6, r9          ; integ += err
        ; out = (KP*err + KI*integ) >> 8, Q8 gains
        mov r6, &MPYS
        mov #230, &OP2      ; KP = 0.90
        mov &RESLO, r10
        mov &RESHI, r11
        swpb r10
        and #0x00ff, r10
        swpb r11
        and #0xff00, r11
        bis r11, r10        ; P term
        mov r9, &MPYS
        mov #20, &OP2       ; KI = 0.08
        mov &RESLO, r12
        mov &RESHI, r11
        swpb r12
        and #0x00ff, r12
        swpb r11
        and #0xff00, r11
        bis r11, r12        ; I term
        add r12, r10
        ; saturate to [0, 0x03ff]
        tst r10
        jn pi_clamp0        ; X flags: fork
        cmp #0x0400, r10
        jl pi_emit          ; X flags: fork
        mov #0x03ff, r10
        jmp pi_emit
pi_clamp0:
        mov #0, r10
pi_emit:
        mov r10, &POUT      ; actuate
        pop r8
        dec r8
        jnz pi_loop
)";
}

} // namespace bench430
} // namespace ulpeak
