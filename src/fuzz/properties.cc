#include "fuzz/properties.hh"

#include <array>
#include <sstream>

#include "fault/campaign.hh"
#include "lint/lint.hh"
#include "peak/peak_analysis.hh"
#include "peak/validation.hh"
#include "power/analysis.hh"
#include "power/packed_run.hh"
#include "sim/packed_simulator.hh"

namespace ulpeak {
namespace fuzz {

namespace {

/** Compare complete simulator state after one lockstep cycle. */
bool
compareCycle(const Netlist &nl, const Simulator &a, const Simulator &b,
             const char *label_b, std::ostringstream &os)
{
    for (GateId g = 0; g < GateId(nl.numGates()); ++g) {
        if (a.value(g) != b.value(g)) {
            os << "cycle " << a.cycle() << " gate " << g
               << ": value FullSweep=" << v4Char(a.value(g)) << " "
               << label_b << "=" << v4Char(b.value(g)) << "\n";
            return false;
        }
        if (a.isActive(g) != b.isActive(g)) {
            os << "cycle " << a.cycle() << " gate " << g
               << ": activity FullSweep=" << a.isActive(g) << " "
               << label_b << "=" << b.isActive(g) << "\n";
            return false;
        }
    }
    if (a.activeGates() != b.activeGates()) {
        os << "cycle " << a.cycle() << ": active-gate lists differ ("
           << a.activeGates().size() << " vs "
           << b.activeGates().size() << " entries)\n";
        return false;
    }
    if (a.actualEnergyJ() != b.actualEnergyJ() ||
        a.boundEnergyJ() != b.boundEnergyJ()) {
        os << "cycle " << a.cycle()
           << ": energy FullSweep=(" << a.actualEnergyJ() << ", "
           << a.boundEnergyJ() << ") " << label_b << "=("
           << b.actualEnergyJ() << ", " << b.boundEnergyJ() << ")\n";
        return false;
    }
    if (a.moduleBoundEnergyJ() != b.moduleBoundEnergyJ()) {
        os << "cycle " << a.cycle()
           << ": per-module energies differ\n";
        return false;
    }
    if (a.hashFullState() != b.hashFullState()) {
        os << "cycle " << a.cycle() << ": full-state hashes differ\n";
        return false;
    }
    return true;
}

} // namespace

PropertyResult
kernelEquivalenceCheck(uint64_t seed, const NetlistGenOptions &opts,
                       unsigned cycles)
{
    PropertyResult res;
    Rng rng(seed);
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    RandomNetlist rn = buildRandomNetlist(nl, rng, opts);
    auto sched = makeInputSchedule(rng, unsigned(rn.inputs.size()),
                                   cycles, opts.inputXPercent);

    Simulator full(nl, EvalMode::FullSweep);
    Simulator event(nl, EvalMode::EventDriven);
    Simulator forked(nl, EvalMode::EventDriven);

    // Fork point for the snapshot/restore transparency check.
    unsigned forkAt = cycles / 2;
    Simulator::Snapshot snap;

    std::ostringstream os;
    for (unsigned c = 0; c < cycles; ++c) {
        auto drive = [&](Simulator &s) {
            for (size_t i = 0; i < rn.inputs.size(); ++i)
                s.setInput(rn.inputs[i], sched[c][i]);
        };
        full.step(drive);
        event.step(drive);
        if (!compareCycle(nl, full, event, "EventDriven", os)) {
            res.ok = false;
            res.detail = "seed " + std::to_string(seed) + ": " +
                         os.str();
            return res;
        }
        if (c == forkAt)
            snap = event.snapshot();
    }

    // Replay the suffix from the snapshot on a third simulator: the
    // continuation must be indistinguishable from the original run.
    forked.restore(snap);
    for (unsigned c = forkAt + 1; c < cycles; ++c) {
        forked.step([&](Simulator &s) {
            for (size_t i = 0; i < rn.inputs.size(); ++i)
                s.setInput(rn.inputs[i], sched[c][i]);
        });
    }
    if (cycles > forkAt + 1 &&
        forked.hashFullState() != event.hashFullState()) {
        res.ok = false;
        res.detail = "seed " + std::to_string(seed) +
                     ": snapshot/restore replay diverged from the "
                     "straight-line run\n";
    }
    return res;
}

namespace {

std::string
compareReports(const peak::Report &a, const peak::Report &b,
               const char *what_a, const char *what_b)
{
    std::ostringstream os;
    if (!a.ok && !b.ok) {
        // Both analyses rejected the program the same way: the
        // determinism property holds trivially. Different errors mean
        // the outcome itself was scheduling/kernel-dependent.
        if (a.error != b.error)
            os << "errors differ: " << what_a << "=\"" << a.error
               << "\" " << what_b << "=\"" << b.error << "\"\n";
        return os.str();
    }
    if (!a.ok || !b.ok) {
        os << what_a << " ok=" << a.ok << " (" << a.error << "), "
           << what_b << " ok=" << b.ok << " (" << b.error << ")\n";
        return os.str();
    }
    auto field = [&](const char *name, double va, double vb) {
        if (va != vb)
            os << name << ": " << what_a << "=" << va << " " << what_b
               << "=" << vb << "\n";
    };
    field("peakPowerW", a.peakPowerW, b.peakPowerW);
    field("peakEnergyJ", a.peakEnergyJ, b.peakEnergyJ);
    field("npeJPerCycle", a.npeJPerCycle, b.npeJPerCycle);
    field("maxPathCycles", double(a.maxPathCycles),
          double(b.maxPathCycles));
    field("totalCycles", double(a.totalCycles), double(b.totalCycles));
    field("pathsExplored", double(a.pathsExplored),
          double(b.pathsExplored));
    field("dedupMerges", double(a.dedupMerges), double(b.dedupMerges));
    if (a.envelope.present != b.envelope.present) {
        os << "envelope.present: " << what_a << "="
           << a.envelope.present << " " << what_b << "="
           << b.envelope.present << "\n";
    } else if (a.envelope.present) {
        if (a.envelope.powerW != b.envelope.powerW)
            os << "envelope.powerW: traces differ (" << what_a << " "
               << a.envelope.powerW.size() << " cycles, " << what_b
               << " " << b.envelope.powerW.size() << " cycles)\n";
        if (a.envelope.windowEnergyJ != b.envelope.windowEnergyJ)
            os << "envelope.windowEnergyJ: curves differ\n";
        if (a.envelope.peakWindowEnergyJ !=
            b.envelope.peakWindowEnergyJ)
            os << "envelope.peakWindowEnergyJ: peaks differ\n";
    }
    return os.str();
}

} // namespace

PropertyResult
symDeterminismCheck(msp::System &sys, const isa::Image &image,
                    unsigned threads)
{
    PropertyResult res;
    peak::Options opts;
    opts.recordEnvelope = true;
    opts.numThreads = 1;
    peak::Report serial = peak::analyze(sys, image, opts);
    opts.numThreads = threads;
    peak::Report parallel = peak::analyze(sys, image, opts);
    std::string diff = compareReports(serial, parallel, "1-thread",
                                      "K-thread");
    if (!diff.empty()) {
        res.ok = false;
        res.detail = diff;
    }
    return res;
}

PropertyResult
evalModeReportCheck(msp::System &sys, const isa::Image &image)
{
    PropertyResult res;
    peak::Options opts;
    opts.recordEnvelope = true;
    opts.evalMode = EvalMode::EventDriven;
    peak::Report event = peak::analyze(sys, image, opts);
    opts.evalMode = EvalMode::FullSweep;
    peak::Report full = peak::analyze(sys, image, opts);
    std::string diff = compareReports(event, full, "EventDriven",
                                      "FullSweep");
    if (diff.empty() && event.ok && full.ok &&
        event.flatTraceW != full.flatTraceW)
        diff = "flatTraceW: per-cycle traces differ\n";
    if (!diff.empty()) {
        res.ok = false;
        res.detail = diff;
    }
    return res;
}

PropertyResult
envelopeBoundCheck(msp::System &sys, const isa::Image &image,
                   Rng &rng, unsigned concrete_runs)
{
    PropertyResult res;
    peak::Options opts;
    opts.recordEnvelope = true;
    peak::Report x = peak::analyze(sys, image, opts);
    if (!x.ok)
        return res; // rejected programs have nothing to bound
    const peak::Envelope &env = x.envelope;

    power::PowerContext ctx(sys.netlist(), opts.freqHz);
    for (unsigned run = 0; run < concrete_runs; ++run) {
        power::ConcreteRunOptions copts;
        // Fresh random port word every cycle: each concrete run is
        // one input assignment of the all-X symbolic port.
        copts.portSchedule.resize(64);
        for (uint16_t &w : copts.portSchedule)
            w = rng.word();
        // Enough room to *detect* a run outliving the envelope
        // rather than truncating at exactly its length.
        copts.maxCycles = env.powerW.size() + 256;
        power::ConcreteRunResult c =
            power::runConcrete(sys, image, ctx, copts);

        std::ostringstream os;
        if (!c.halted) {
            os << "concrete run " << run << " still live after "
               << copts.maxCycles << " cycles (envelope covers "
               << env.powerW.size() << ")\n";
            res.ok = false;
            res.detail = os.str();
            return res;
        }
        peak::TraceValidation v =
            peak::validateTraceBound(env.powerW, c.traceW);
        if (!v.bounds) {
            os << "concrete run " << run << ": envelope violated at "
               << v.violations << " of " << c.traceW.size()
               << " cycles, first at cycle " << v.firstViolationCycle
               << " (";
            if (v.firstViolationCycle < env.powerW.size())
                os << "env="
                   << env.powerW[size_t(v.firstViolationCycle)]
                   << " W, ";
            else
                os << "beyond the " << env.powerW.size()
                   << "-cycle envelope, ";
            os << "concrete="
               << c.traceW[size_t(v.firstViolationCycle)]
               << " W, max excess " << v.maxViolationW << " W)\n";
            res.ok = false;
            res.detail = os.str();
            return res;
        }
    }
    return res;
}

PropertyResult
packedKernelEquivalenceCheck(uint64_t seed,
                             const NetlistGenOptions &opts,
                             unsigned cycles)
{
    constexpr unsigned kLanes = PackedSimulator::kLanes;
    PropertyResult res;
    Rng rng(seed);
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    RandomNetlist rn = buildRandomNetlist(nl, rng, opts);
    unsigned nin = unsigned(rn.inputs.size());

    // One independent input schedule per lane, derived so any single
    // lane reproduces from (seed, lane) alone.
    std::array<std::vector<std::vector<V4>>, kLanes> sched;
    for (unsigned l = 0; l < kLanes; ++l) {
        Rng lrng(Rng::deriveStream(seed, l));
        sched[l] =
            makeInputSchedule(lrng, nin, cycles, opts.inputXPercent);
    }

    PackedSimulator psim(nl);
    std::vector<Simulator> sims;
    sims.reserve(kLanes);
    for (unsigned l = 0; l < kLanes; ++l)
        sims.emplace_back(nl, (l % 2) ? EvalMode::FullSweep
                                      : EvalMode::EventDriven);

    std::ostringstream os;
    auto fail = [&]() {
        res.ok = false;
        res.detail = "seed " + std::to_string(seed) + ": " + os.str();
        return res;
    };

    for (unsigned c = 0; c < cycles; ++c) {
        psim.step([&](PackedSimulator &s) {
            for (unsigned i = 0; i < nin; ++i) {
                V64 v;
                for (unsigned l = 0; l < kLanes; ++l)
                    v.setLane(l, sched[l][c][i]);
                s.setInput(rn.inputs[i], v);
            }
        });
        for (unsigned l = 0; l < kLanes; ++l) {
            Simulator &sim = sims[l];
            sim.step([&](Simulator &s) {
                for (unsigned i = 0; i < nin; ++i)
                    s.setInput(rn.inputs[i], sched[l][c][i]);
            });
            for (GateId g = 0; g < GateId(nl.numGates()); ++g) {
                if (psim.valueLane(g, l) != sim.value(g)) {
                    os << "cycle " << c << " lane " << l << " gate "
                       << g << ": value packed="
                       << v4Char(psim.valueLane(g, l)) << " scalar="
                       << v4Char(sim.value(g)) << "\n";
                    return fail();
                }
                bool pact = (psim.activeMask(g) >> l) & 1;
                if (pact != sim.isActive(g)) {
                    os << "cycle " << c << " lane " << l << " gate "
                       << g << ": activity packed=" << pact
                       << " scalar=" << sim.isActive(g) << "\n";
                    return fail();
                }
            }
            if (psim.actualEnergyJ(l) != sim.actualEnergyJ() ||
                psim.boundEnergyJ(l) != sim.boundEnergyJ()) {
                os << "cycle " << c << " lane " << l
                   << ": energy packed=(" << psim.actualEnergyJ(l)
                   << ", " << psim.boundEnergyJ(l) << ") scalar=("
                   << sim.actualEnergyJ() << ", "
                   << sim.boundEnergyJ() << ")\n";
                return fail();
            }
            if (psim.moduleBoundEnergyLaneJ(l) !=
                sim.moduleBoundEnergyJ()) {
                os << "cycle " << c << " lane " << l
                   << ": per-module energies differ\n";
                return fail();
            }
            if (psim.hashLaneState(l) != sim.hashFullState()) {
                os << "cycle " << c << " lane " << l
                   << ": full-state hashes differ\n";
                return fail();
            }
        }
    }
    return res;
}

PropertyResult
packedEnvelopeBatchCheck(msp::System &sys, const isa::Image &image,
                         Rng &rng, unsigned verify_lanes)
{
    constexpr unsigned kLanes = PackedSimulator::kLanes;
    PropertyResult res;
    peak::Options opts;
    opts.recordEnvelope = true;
    peak::Report x = peak::analyze(sys, image, opts);
    if (!x.ok)
        return res; // rejected programs have nothing to bound
    const peak::Envelope &env = x.envelope;

    power::PowerContext ctx(sys.netlist(), opts.freqHz);
    power::PackedRunOptions popts;
    popts.maxCycles = env.powerW.size() + 256;
    for (unsigned l = 0; l < kLanes; ++l) {
        popts.portSchedules[l].resize(64);
        for (uint16_t &w : popts.portSchedules[l])
            w = rng.word();
    }
    power::PackedRunResult pr =
        power::runConcretePacked(sys, image, ctx, popts);

    std::ostringstream os;
    for (unsigned l = 0; l < kLanes; ++l) {
        const power::PackedLaneResult &lane = pr.lanes[l];
        if (!lane.halted) {
            os << "packed lane " << l << " still live after "
               << popts.maxCycles << " cycles (envelope covers "
               << env.powerW.size() << ")\n";
            res.ok = false;
            res.detail = os.str();
            return res;
        }
        peak::TraceValidation v =
            peak::validateTraceBound(env.powerW, lane.traceW);
        if (!v.bounds) {
            os << "packed lane " << l << ": envelope violated at "
               << v.violations << " of " << lane.traceW.size()
               << " cycles, first at cycle " << v.firstViolationCycle
               << " (max excess " << v.maxViolationW << " W)\n";
            res.ok = false;
            res.detail = os.str();
            return res;
        }
    }

    // Lane-identity spot check: re-run a few lanes on the scalar
    // path; trace floats must match exactly, not approximately.
    for (unsigned i = 0; i < verify_lanes; ++i) {
        unsigned l = (i * kLanes) / (verify_lanes ? verify_lanes : 1);
        power::ConcreteRunOptions copts;
        copts.maxCycles = popts.maxCycles;
        copts.portSchedule = popts.portSchedules[l];
        power::ConcreteRunResult c =
            power::runConcrete(sys, image, ctx, copts);
        const power::PackedLaneResult &lane = pr.lanes[l];
        if (c.halted != lane.halted || c.traceW != lane.traceW ||
            c.totalEnergyJ != lane.totalEnergyJ) {
            os << "lane " << l
               << " diverges from its scalar run (halted "
               << lane.halted << " vs " << c.halted << ", "
               << lane.traceW.size() << " vs " << c.traceW.size()
               << " trace cycles)\n";
            res.ok = false;
            res.detail = os.str();
            return res;
        }
    }
    return res;
}

PropertyResult
faultedPackedEquivalenceCheck(uint64_t seed,
                              const NetlistGenOptions &opts,
                              unsigned cycles)
{
    constexpr unsigned kLanes = PackedSimulator::kLanes;
    PropertyResult res;
    Rng rng(seed);
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    RandomNetlist rn = buildRandomNetlist(nl, rng, opts);
    unsigned nin = unsigned(rn.inputs.size());
    const std::vector<GateId> &seq = nl.seqGates();

    // Per-lane input schedules and per-lane SEU flips, both derived
    // so any lane reproduces from (seed, lane) alone. Lane 0 stays
    // fault-free as the in-item control.
    struct Flip {
        GateId gate;
        unsigned cycle;
    };
    std::array<std::vector<std::vector<V4>>, kLanes> sched;
    std::array<std::vector<Flip>, kLanes> flips;
    for (unsigned l = 0; l < kLanes; ++l) {
        Rng lrng(Rng::deriveStream(seed, l));
        sched[l] =
            makeInputSchedule(lrng, nin, cycles, opts.inputXPercent);
        if (l == 0 || seq.empty())
            continue;
        unsigned n = 1 + lrng.below(3);
        for (unsigned f = 0; f < n; ++f)
            flips[l].push_back({seq[lrng.below(unsigned(seq.size()))],
                                lrng.below(cycles)});
    }

    PackedSimulator psim(nl);
    std::vector<Simulator> sims;
    sims.reserve(kLanes);
    for (unsigned l = 0; l < kLanes; ++l)
        sims.emplace_back(nl, (l % 2) ? EvalMode::FullSweep
                                      : EvalMode::EventDriven);

    std::ostringstream os;
    auto fail = [&]() {
        res.ok = false;
        res.detail = "seed " + std::to_string(seed) + ": " + os.str();
        return res;
    };

    for (unsigned c = 0; c < cycles; ++c) {
        // applied decisions (X-bit flips are no-ops) must agree
        // flip-for-flip between the two injection APIs.
        std::array<std::vector<bool>, kLanes> appP, appS;
        psim.step([&](PackedSimulator &s) {
            for (unsigned i = 0; i < nin; ++i) {
                V64 v;
                for (unsigned l = 0; l < kLanes; ++l)
                    v.setLane(l, sched[l][c][i]);
                s.setInput(rn.inputs[i], v);
            }
            for (unsigned l = 0; l < kLanes; ++l)
                for (const Flip &f : flips[l])
                    if (f.cycle == c)
                        appP[l].push_back(
                            s.injectSeuFlip(f.gate, 1ull << l) != 0);
        });
        for (unsigned l = 0; l < kLanes; ++l) {
            Simulator &sim = sims[l];
            sim.step([&](Simulator &s) {
                for (unsigned i = 0; i < nin; ++i)
                    s.setInput(rn.inputs[i], sched[l][c][i]);
                for (const Flip &f : flips[l])
                    if (f.cycle == c)
                        appS[l].push_back(s.injectSeuFlip(f.gate));
            });
            if (appP[l] != appS[l]) {
                os << "cycle " << c << " lane " << l
                   << ": applied-flip decisions differ\n";
                return fail();
            }
            for (GateId g = 0; g < GateId(nl.numGates()); ++g) {
                if (psim.valueLane(g, l) != sim.value(g)) {
                    os << "cycle " << c << " lane " << l << " gate "
                       << g << ": value packed="
                       << v4Char(psim.valueLane(g, l)) << " scalar="
                       << v4Char(sim.value(g)) << "\n";
                    return fail();
                }
                bool pact = (psim.activeMask(g) >> l) & 1;
                if (pact != sim.isActive(g)) {
                    os << "cycle " << c << " lane " << l << " gate "
                       << g << ": activity packed=" << pact
                       << " scalar=" << sim.isActive(g) << "\n";
                    return fail();
                }
            }
            if (psim.actualEnergyJ(l) != sim.actualEnergyJ() ||
                psim.boundEnergyJ(l) != sim.boundEnergyJ()) {
                os << "cycle " << c << " lane " << l
                   << ": energy packed=(" << psim.actualEnergyJ(l)
                   << ", " << psim.boundEnergyJ(l) << ") scalar=("
                   << sim.actualEnergyJ() << ", "
                   << sim.boundEnergyJ() << ")\n";
                return fail();
            }
            if (psim.hashLaneState(l) != sim.hashFullState()) {
                os << "cycle " << c << " lane " << l
                   << ": full-state hashes differ\n";
                return fail();
            }
        }
    }
    return res;
}

namespace {

std::string
compareCampaigns(const fault::CampaignResult &a,
                 const fault::CampaignResult &b, const char *what_a,
                 const char *what_b)
{
    std::ostringstream os;
    if (a.ok != b.ok || (!a.ok && a.error != b.error)) {
        os << what_a << " ok=" << a.ok << " (" << a.error << "), "
           << what_b << " ok=" << b.ok << " (" << b.error << ")\n";
        return os.str();
    }
    if (!a.ok)
        return os.str(); // identical refusal: vacuously deterministic
    auto field = [&](const char *name, uint64_t va, uint64_t vb) {
        if (va != vb)
            os << name << ": " << what_a << "=" << va << " "
               << what_b << "=" << vb << "\n";
    };
    field("goldenCycles", a.goldenCycles, b.goldenCycles);
    field("goldenInstructions", a.goldenInstructions,
          b.goldenInstructions);
    field("hangCycles", a.hangCycles, b.hangCycles);
    field("sites", a.sites.size(), b.sites.size());
    field("injections", a.injections.size(), b.injections.size());
    field("masked", a.masked, b.masked);
    field("sdc", a.sdc, b.sdc);
    field("crash", a.crash, b.crash);
    field("hang", a.hang, b.hang);
    field("notApplied", a.notApplied, b.notApplied);
    field("escapes", a.escapes, b.escapes);
    if (!os.str().empty())
        return os.str();
    for (size_t i = 0; i < a.injections.size(); ++i) {
        const fault::InjectionResult &ra = a.injections[i];
        const fault::InjectionResult &rb = b.injections[i];
        if (ra.siteIndex != rb.siteIndex || ra.cycle != rb.cycle ||
            !ra.r.sameClassification(rb.r)) {
            os << "injection row " << i << " (site " << ra.siteIndex
               << " cycle " << ra.cycle << "): classification "
               << what_a << "=" << fault::outcomeName(ra.r.outcome)
               << "/" << ra.r.divergenceCycle << " " << what_b << "="
               << fault::outcomeName(rb.r.outcome) << "/"
               << rb.r.divergenceCycle << " differ\n";
            return os.str();
        }
    }
    return os.str();
}

} // namespace

PropertyResult
faultCampaignDeterminismCheck(const isa::Image &image, uint64_t seed,
                              unsigned threads)
{
    PropertyResult res;
    CellLibrary lib = CellLibrary::tsmc65Like();
    fault::CampaignOptions opts;
    opts.seed = seed;
    opts.cyclesPerSite = 1;
    opts.maxFlopSites = 24;
    opts.ramSites = 2;
    opts.goldenMaxCycles = 20000;
    // No cacheDir: the disk cache would trivialize the comparison.

    opts.packed = false;
    opts.jobs = 1;
    fault::CampaignResult scalar1 = runCampaign(lib, image, opts);
    opts.packed = true;
    fault::CampaignResult packed1 = runCampaign(lib, image, opts);
    opts.jobs = threads;
    fault::CampaignResult packedK = runCampaign(lib, image, opts);

    std::string diff = compareCampaigns(scalar1, packed1,
                                        "scalar-1job", "packed-1job");
    if (diff.empty())
        diff = compareCampaigns(packed1, packedK, "packed-1job",
                                "packed-Kjobs");
    if (!diff.empty()) {
        res.ok = false;
        res.detail = diff;
    }
    return res;
}

scenario::Scenario
randomScenario(Rng &rng)
{
    scenario::Scenario s;
    s.name = "fuzz-scenario";
    auto pattern = [&rng]() {
        scenario::PortPattern p;
        p.pinned = rng.word();
        p.value = uint16_t(rng.word() & p.pinned);
        return p;
    };
    if (rng.chance(40)) {
        // A repeating schedule: exercises the schedule-phase dedup
        // keys (the same simulator state is NOT interchangeable at
        // two different points of the period).
        unsigned period = 2 + rng.below(6);
        for (unsigned i = 0; i < period; ++i)
            s.portSchedule.push_back(pattern());
    } else {
        s.port = pattern();
    }
    return s;
}

PropertyResult
scenarioDominanceCheck(msp::System &sys, const isa::Image &image,
                       Rng &rng, unsigned threads,
                       unsigned concrete_runs)
{
    PropertyResult res;
    peak::Options uopts;
    uopts.recordEnvelope = true;
    peak::Report unc = peak::analyze(sys, image, uopts);
    if (!unc.ok)
        return res; // rejected programs have nothing to dominate

    scenario::Scenario scn = randomScenario(rng);
    peak::Options copts = uopts;
    copts.scenario = scn;
    peak::Report con = peak::analyze(sys, image, copts);
    if (!con.ok) {
        // A scheduled scenario multiplies distinct states (phase
        // joins the dedup key), so budget exhaustion is a legitimate
        // outcome, not a dominance violation.
        return res;
    }

    std::ostringstream os;

    // The constrained analysis must stay scheduling-independent.
    copts.numThreads = threads;
    peak::Report par = peak::analyze(sys, image, copts);
    std::string diff =
        compareReports(con, par, "1-thread", "K-thread");
    if (!diff.empty()) {
        res.ok = false;
        res.detail = "scenario " + scn.summary() +
                     ": determinism broke under constraints:\n" +
                     diff;
        return res;
    }

    // Bound dominance. Exact arithmetic guarantees <=; the analyses
    // sum different (nested) active sets in floating point, so allow
    // a relative whisker far below any real violation.
    const double slack = 1.0 + 1e-9;
    auto dominated = [&](const char *what, double c, double u) {
        if (c <= u * slack)
            return true;
        os << what << ": constrained " << c << " > unconstrained "
           << u << " (scenario " << scn.summary() << ")\n";
        return false;
    };
    if (!dominated("peakPowerW", con.peakPowerW, unc.peakPowerW) ||
        !dominated("peakEnergyJ", con.peakEnergyJ,
                   unc.peakEnergyJ)) {
        res.ok = false;
        res.detail = os.str();
        return res;
    }
    const std::vector<float> &envC = con.envelope.powerW;
    const std::vector<float> &envU = unc.envelope.powerW;
    if (envC.size() > envU.size()) {
        res.ok = false;
        res.detail = "constrained envelope outlives the "
                     "unconstrained one (" +
                     std::to_string(envC.size()) + " vs " +
                     std::to_string(envU.size()) + " cycles)\n";
        return res;
    }
    for (size_t c = 0; c < envC.size(); ++c) {
        if (double(envC[c]) > double(envU[c]) * slack) {
            os << "envelope cycle " << c << ": constrained "
               << envC[c] << " > unconstrained " << envU[c]
               << " (scenario " << scn.summary() << ")\n";
            res.ok = false;
            res.detail = os.str();
            return res;
        }
    }

    // Concrete runs obeying the scenario lie under *its* envelope.
    // runConcrete indexes its schedule by absolute simulator cycle,
    // so the first kResetCycles entries cover reset (values free:
    // the engine drives reset cycles itself) and entry
    // kResetCycles + c realizes the scenario pattern of cycle c.
    power::PowerContext ctx(sys.netlist(), copts.freqHz);
    for (unsigned run = 0; run < concrete_runs; ++run) {
        power::ConcreteRunOptions ropts;
        ropts.maxCycles =
            envC.size() + msp::System::kResetCycles + 256;
        ropts.portSchedule.resize(size_t(ropts.maxCycles));
        for (size_t a = 0; a < ropts.portSchedule.size(); ++a) {
            uint16_t w = rng.word();
            if (a >= msp::System::kResetCycles) {
                const scenario::PortPattern &p = scn.patternAt(
                    uint64_t(a) - msp::System::kResetCycles);
                w = uint16_t((w & ~p.pinned) | p.value);
            }
            ropts.portSchedule[a] = w;
        }
        power::ConcreteRunResult c = power::runConcrete(
            sys, image, ctx, ropts, scn.ramInit);
        if (!c.halted) {
            os << "scenario-obeying concrete run " << run
               << " still live after " << ropts.maxCycles
               << " cycles (envelope covers " << envC.size()
               << ")\n";
            res.ok = false;
            res.detail = os.str();
            return res;
        }
        peak::TraceValidation v =
            peak::validateTraceBound(envC, c.traceW);
        if (!v.bounds) {
            os << "scenario-obeying concrete run " << run
               << ": envelope violated at " << v.violations << " of "
               << c.traceW.size() << " cycles, first at cycle "
               << v.firstViolationCycle << " (max excess "
               << v.maxViolationW << " W, scenario " << scn.summary()
               << ")\n";
            res.ok = false;
            res.detail = os.str();
            return res;
        }
    }
    return res;
}

scenario::Scenario
randomModeScenario(Rng &rng)
{
    scenario::Scenario s;
    if (rng.chance(30))
        // A port constraint rides along so the mixed-radix
        // (portPhase, modePhase) dedup keys get exercised too.
        s = randomScenario(rng);
    s.name = "fuzz-dvfs";
    unsigned n_modes = 2 + rng.below(2);
    for (unsigned m = 0; m < n_modes; ++m) {
        scenario::OperatingMode om;
        om.name = "m" + std::to_string(m);
        om.vdd = 0.5 + 0.1 * double(rng.below(8));    // 0.5..1.2 V
        om.freqHz = 1e6 * double(1 + rng.below(100)); // 1..100 MHz
        s.modes.push_back(om);
    }
    unsigned period = 2 + rng.below(7);
    for (unsigned i = 0; i < period; ++i)
        s.modeSchedule.push_back(rng.below(n_modes));
    return s;
}

PropertyResult
modeDominanceCheck(msp::System &sys, const isa::Image &image,
                   Rng &rng, unsigned threads, unsigned concrete_runs)
{
    PropertyResult res;
    scenario::Scenario base = randomModeScenario(rng);

    // The lowered twin: every mode's (vdd, freq) scaled by a factor
    // <= 1 -- mode 0 strictly below 1 -- with the schedule (and any
    // port constraint) untouched.
    scenario::Scenario low = base;
    low.name = "fuzz-dvfs-low";
    for (size_t m = 0; m < low.modes.size(); ++m) {
        uint32_t span = m == 0 ? 5 : 6; // 0.5..0.9 vs 0.5..1.0
        low.modes[m].vdd *=
            double(5 + rng.below(span)) / 10.0;
        low.modes[m].freqHz *=
            double(5 + rng.below(span)) / 10.0;
    }

    peak::Options bopts;
    bopts.recordEnvelope = true;
    bopts.scenario = base;
    peak::Report rb = peak::analyze(sys, image, bopts);
    if (!rb.ok)
        return res; // rejected / budget-exhausted: vacuous

    peak::Options lopts = bopts;
    lopts.scenario = low;
    peak::Report rl = peak::analyze(sys, image, lopts);
    std::ostringstream os;
    if (!rl.ok) {
        // Operating modes only re-price cycles; the explored tree --
        // and therefore the cycle budget spent -- is identical, so a
        // lowered analysis can never fail where the base succeeded.
        res.ok = false;
        res.detail = "lowered-mode analysis failed (" + rl.error +
                     ") though the base mode analysis succeeded "
                     "(scenario " + base.summary() + ")";
        return res;
    }

    // The mode-scheduled analysis must stay bit-identical across
    // thread counts, kernels, and snapshot representations (mode
    // phases join the dedup keys; pricing must not disturb any of
    // the scheduling-independence machinery).
    {
        peak::Options o = lopts;
        o.numThreads = threads;
        std::string diff = compareReports(
            rl, peak::analyze(sys, image, o), "1-thread", "K-thread");
        if (diff.empty()) {
            o = lopts;
            o.evalMode = EvalMode::FullSweep;
            diff = compareReports(rl, peak::analyze(sys, image, o),
                                  "event", "full-sweep");
        }
        if (diff.empty()) {
            o = lopts;
            o.snapshotMode = sym::SnapshotMode::Full;
            diff = compareReports(rl, peak::analyze(sys, image, o),
                                  "delta-snap", "full-snap");
        }
        if (!diff.empty()) {
            res.ok = false;
            res.detail = "mode scenario " + low.summary() +
                         ": determinism broke:\n" + diff;
            return res;
        }
    }

    // Scalar dominance. Per-cycle powers are stored as float in the
    // tree nodes, and maxPathEnergy multiplies them back by 1/freq,
    // so the base and lowered path sums carry *independent* ~1e-7
    // relative float-narrowing noise on top of the freq * 1/freq
    // round-trip -- 1e-6 slack sits above that noise while still
    // catching any real mispricing (the smallest mode-factor step is
    // 10%). The per-cycle envelope powers themselves are monotone
    // rounding chains of the same bound, so they must dominate with
    // NO slack and equal length.
    const double slack = 1.0 + 1e-6;
    auto dominated = [&](const char *what, double l, double b) {
        if (l <= b * slack)
            return true;
        os << what << ": lowered " << l << " > base " << b
           << " (scenario " << base.summary() << ")\n";
        return false;
    };
    if (!dominated("peakPowerW", rl.peakPowerW, rb.peakPowerW) ||
        !dominated("peakEnergyJ", rl.peakEnergyJ, rb.peakEnergyJ)) {
        res.ok = false;
        res.detail = os.str();
        return res;
    }
    const std::vector<float> &envL = rl.envelope.powerW;
    const std::vector<float> &envB = rb.envelope.powerW;
    if (envL.size() != envB.size()) {
        res.ok = false;
        res.detail = "lowered envelope length " +
                     std::to_string(envL.size()) +
                     " != base length " + std::to_string(envB.size()) +
                     " (identical trees expected)\n";
        return res;
    }
    for (size_t c = 0; c < envL.size(); ++c) {
        if (envL[c] > envB[c]) {
            os << "envelope cycle " << c << ": lowered " << envL[c]
               << " > base " << envB[c] << " (scenario "
               << base.summary() << ")\n";
            res.ok = false;
            res.detail = os.str();
            return res;
        }
    }

    // Mode-obeying concrete runs lie under the mode-priced envelope:
    // the concrete side prices each cycle with the same (energy
    // scale, mode clock) schedule the symbolic side used.
    const CellLibrary &lib = sys.lib();
    std::vector<std::pair<double, double>> mf;
    for (uint64_t ph = 0; ph < low.modePeriod(); ++ph) {
        const scenario::OperatingMode &m = low.modeAt(ph);
        mf.emplace_back(lib.energyScale(m.vdd), m.freqHz);
    }
    power::PowerContext ctx(sys.netlist(), lopts.freqHz);
    for (unsigned run = 0; run < concrete_runs; ++run) {
        power::ConcreteRunOptions ropts;
        ropts.maxCycles =
            envL.size() + msp::System::kResetCycles + 256;
        ropts.modeSchedule = mf;
        ropts.portSchedule.resize(size_t(ropts.maxCycles));
        for (size_t a = 0; a < ropts.portSchedule.size(); ++a) {
            uint16_t w = rng.word();
            if (a >= msp::System::kResetCycles) {
                const scenario::PortPattern &p = low.patternAt(
                    uint64_t(a) - msp::System::kResetCycles);
                w = uint16_t((w & ~p.pinned) | p.value);
            }
            ropts.portSchedule[a] = w;
        }
        power::ConcreteRunResult c = power::runConcrete(
            sys, image, ctx, ropts, low.ramInit);
        if (!c.halted) {
            os << "mode-obeying concrete run " << run
               << " still live after " << ropts.maxCycles
               << " cycles (envelope covers " << envL.size()
               << ")\n";
            res.ok = false;
            res.detail = os.str();
            return res;
        }
        peak::TraceValidation v =
            peak::validateTraceBound(envL, c.traceW);
        if (!v.bounds) {
            os << "mode-obeying concrete run " << run
               << ": mode envelope violated at " << v.violations
               << " of " << c.traceW.size()
               << " cycles, first at cycle " << v.firstViolationCycle
               << " (max excess " << v.maxViolationW
               << " W, scenario " << low.summary() << ")\n";
            res.ok = false;
            res.detail = os.str();
            return res;
        }
    }
    return res;
}

namespace {

/**
 * compareReports minus the tree-shape statistics: with
 * maxPruneDepth > 0 the pruned run hashes pre-engage forks with the
 * full basis and post-engage forks with the pruned one, so a dedup
 * merge between a pre- and a post-engage state can be missed and the
 * exploration re-walks a (bound-identical) duplicate subtree.
 * totalCycles / pathsExplored / dedupMerges may therefore differ
 * from the unpruned run; every reported *bound* may not.
 */
std::string
comparePrunedBounds(const peak::Report &a, const peak::Report &b,
                    const char *what_a, const char *what_b)
{
    std::ostringstream os;
    if (!a.ok && !b.ok) {
        if (a.error != b.error)
            os << "errors differ: " << what_a << "=\"" << a.error
               << "\" " << what_b << "=\"" << b.error << "\"\n";
        return os.str();
    }
    if (!a.ok || !b.ok) {
        os << what_a << " ok=" << a.ok << " (" << a.error << "), "
           << what_b << " ok=" << b.ok << " (" << b.error << ")\n";
        return os.str();
    }
    auto field = [&](const char *name, double va, double vb) {
        if (va != vb)
            os << name << ": " << what_a << "=" << va << " "
               << what_b << "=" << vb << "\n";
    };
    field("peakPowerW", a.peakPowerW, b.peakPowerW);
    field("peakEnergyJ", a.peakEnergyJ, b.peakEnergyJ);
    field("npeJPerCycle", a.npeJPerCycle, b.npeJPerCycle);
    field("maxPathCycles", double(a.maxPathCycles),
          double(b.maxPathCycles));
    if (a.envelope.present != b.envelope.present) {
        os << "envelope.present: " << what_a << "="
           << a.envelope.present << " " << what_b << "="
           << b.envelope.present << "\n";
    } else if (a.envelope.present) {
        if (a.envelope.powerW != b.envelope.powerW)
            os << "envelope.powerW: traces differ (" << what_a << " "
               << a.envelope.powerW.size() << " cycles, " << what_b
               << " " << b.envelope.powerW.size() << " cycles)\n";
        if (a.envelope.windowEnergyJ != b.envelope.windowEnergyJ)
            os << "envelope.windowEnergyJ: curves differ\n";
        if (a.envelope.peakWindowEnergyJ !=
            b.envelope.peakWindowEnergyJ)
            os << "envelope.peakWindowEnergyJ: peaks differ\n";
    }
    if (a.everActive != b.everActive)
        os << "everActive: sets differ\n";
    return os.str();
}

} // namespace

PropertyResult
staticPruneCheck(msp::System &sys, const isa::Image &image, Rng &rng,
                 unsigned threads)
{
    PropertyResult res;
    std::ostringstream os;

    // 1 in 4 unconstrained (the ullint / `ulpeak --static-prune`
    // default, where only reset/irq/Const seeds prune), else a random
    // port scenario so pinned-bit cones join the mask.
    scenario::Scenario scn;
    if (!rng.chance(25))
        scn = randomScenario(rng);

    // --- Static claims validated against a concrete run -----------
    // The real core must be structurally clean: pruning (and the
    // lint CLI's exit status) assume no comb loops, no floating
    // inputs, no overlapping hook drivers.
    const Netlist &nl = sys.netlist();
    lint::StructuralReport sr = lint::structuralLint(nl);
    if (sr.errors() != 0) {
        os << "structural lint found " << sr.errors()
           << " errors on the core netlist";
        for (const lint::Issue &is : sr.issues)
            if (is.severity == lint::Severity::Error)
                os << "\n  " << is.message;
        res.ok = false;
        res.detail = os.str();
        return res;
    }

    // The same analysis the engine runs for SymbolicConfig::
    // staticPrune (see SymbolicEngine::run).
    lint::ConstAnalysisOptions lo;
    lo.scenario = scn;
    const msp::CpuHandles &h = sys.handles();
    lo.portBits.assign(h.portIn.begin(), h.portIn.end());
    lo.drivenConstants = {{h.rstn, V4::One}, {h.irq, V4::Zero}};
    lint::ConstAnalysis ca = lint::analyzeConstants(nl, lo);

    // Drive one concrete scenario-obeying run and check every masked
    // gate holds exactly its proven value from the engage cycle on.
    // cycle_ increments at the end of step(), and the first step the
    // engine would skip runs with cycle_ == engage, so the invariant
    // it relies on is: after every step with sim.cycle() >= engage
    // the masked values equal the proven constants (and from the
    // next step on the gates never even toggle).
    sys.memory().reset();
    sys.loadImage(image);
    for (const auto &[addr, words] : scn.ramInit)
        sys.memory().loadRam(addr, words);
    sys.clearHalted();
    Simulator sim(nl);
    sys.attach(sim);
    sys.reset(sim);
    const uint64_t engage = sim.cycle() + 1 + ca.maxPruneDepth;
    const uint64_t maxCycles = sim.cycle() + 400;
    while (!sys.halted() && sim.cycle() < maxCycles) {
        const scenario::PortPattern &p =
            scn.patternAt(sim.cycle() - msp::System::kResetCycles);
        uint16_t w = uint16_t((rng.word() & ~p.pinned) | p.value);
        sim.step([&](Simulator &s) {
            sys.driveCycle(s, Word16::known(w));
        });
        if (sim.cycle() < engage)
            continue;
        for (GateId g = 0; g < GateId(nl.numGates()); ++g) {
            if (!ca.pruneMask[g])
                continue;
            if (sim.value(g) != ca.value[g]) {
                os << "cycle " << (sim.cycle() - 1) << " gate " << g
                   << " (" << nl.gateName(g) << "): proven "
                   << v4Char(ca.value[g]) << " but concrete run has "
                   << v4Char(sim.value(g)) << " (engage " << engage
                   << ", scenario " << scn.summary() << ")\n";
                res.ok = false;
                res.detail = os.str();
                return res;
            }
            if (sim.cycle() > engage && sim.isActive(g)) {
                os << "cycle " << (sim.cycle() - 1) << " gate " << g
                   << " (" << nl.gateName(g)
                   << "): proven constant but toggled after the "
                      "engage cycle "
                   << engage << " (scenario " << scn.summary()
                   << ")\n";
                res.ok = false;
                res.detail = os.str();
                return res;
            }
        }
    }

    // --- Pruned vs unpruned report identity ------------------------
    peak::Options base;
    base.recordEnvelope = true;
    base.recordActiveSets = true;
    base.scenario = scn;
    peak::Report unp = peak::analyze(sys, image, base);

    peak::Options popts = base;
    popts.staticPrune = true;
    peak::Report pru = peak::analyze(sys, image, popts);

    std::string diff =
        comparePrunedBounds(unp, pru, "unpruned", "pruned");
    if (!diff.empty()) {
        res.ok = false;
        res.detail = "scenario " + scn.summary() + ":\n" + diff;
        return res;
    }
    if (!unp.ok)
        return res; // identically rejected: nothing more to compare

    // The pruned runs among themselves share one hash basis and one
    // engage cycle, so like symDeterminismCheck they must agree on
    // every scheduling-independent field, statistics included.
    peak::Options o = popts;
    o.numThreads = threads;
    diff = compareReports(pru, peak::analyze(sys, image, o),
                          "pruned-1-thread", "pruned-K-thread");
    if (diff.empty()) {
        o = popts;
        o.evalMode = EvalMode::FullSweep;
        diff = compareReports(pru, peak::analyze(sys, image, o),
                              "pruned-event", "pruned-sweep");
    }
    if (diff.empty()) {
        o = popts;
        o.snapshotMode = sym::SnapshotMode::Full;
        diff = compareReports(pru, peak::analyze(sys, image, o),
                              "pruned-delta", "pruned-full-snap");
    }
    if (!diff.empty()) {
        res.ok = false;
        res.detail = "scenario " + scn.summary() +
                     ": pruned determinism broke:\n" + diff;
    }
    return res;
}

namespace {

/** The report fields compareReports skips because only some callers
 *  record them: the flattened trace and the activity sets. Both are
 *  part of the packed-frontier bit-identity contract. */
std::string
compareTraces(const peak::Report &a, const peak::Report &b,
              const char *what_a, const char *what_b)
{
    std::ostringstream os;
    if (!a.ok || !b.ok)
        return os.str();
    if (a.flatTraceW != b.flatTraceW)
        os << "flatTraceW: per-cycle traces differ (" << what_a << " "
           << a.flatTraceW.size() << " cycles, " << what_b << " "
           << b.flatTraceW.size() << " cycles)\n";
    if (a.everActive != b.everActive)
        os << "everActive: ever-toggled sets differ\n";
    if (a.peakActive != b.peakActive)
        os << "peakActive: peak-cycle activity sets differ\n";
    return os.str();
}

} // namespace

PropertyResult
packedExploreCheck(msp::System &sys, const isa::Image &image,
                   Rng &rng, unsigned threads)
{
    PropertyResult res;
    // A random analysis configuration: the packed frontier must be
    // invisible under every combination the scalar engine supports.
    peak::Options opts;
    opts.recordEnvelope = true;
    opts.recordActiveSets = true;
    unsigned kind = rng.below(3);
    if (kind == 1)
        opts.scenario = randomScenario(rng);
    else if (kind == 2)
        opts.scenario = randomModeScenario(rng);
    if (rng.chance(50))
        opts.snapshotMode = sym::SnapshotMode::Full;
    if (rng.chance(25))
        opts.staticPrune = true;

    peak::Report scalar = peak::analyze(sys, image, opts);
    peak::Options popts = opts;
    popts.packedExplore = true;
    peak::Report packed = peak::analyze(sys, image, popts);
    std::string diff =
        compareReports(scalar, packed, "scalar", "packed");
    diff += compareTraces(scalar, packed, "scalar", "packed");
    if (!diff.empty()) {
        res.ok = false;
        res.detail = "scenario " + opts.scenario.summary() +
                     ": scalar vs packed diverged:\n" + diff;
        return res;
    }
    if (!scalar.ok)
        return res; // identically rejected: nothing more to compare

    // The packed runs among themselves: 1-vs-K-thread determinism of
    // the batched frontier (lane refills race across workers, the
    // reports must not notice).
    popts.numThreads = threads;
    peak::Report packedK = peak::analyze(sys, image, popts);
    diff = compareReports(packed, packedK, "packed-1-thread",
                          "packed-K-thread");
    diff += compareTraces(packed, packedK, "packed-1-thread",
                          "packed-K-thread");
    if (!diff.empty()) {
        res.ok = false;
        res.detail = "scenario " + opts.scenario.summary() +
                     ": packed determinism broke:\n" + diff;
    }
    return res;
}

} // namespace fuzz
} // namespace ulpeak
