/**
 * @file
 * The `ulfuzz` command-line driver: seeded differential fuzzing of
 * the whole stack, built on src/fuzz and src/cosim.
 *
 * One run checks ten properties end-to-end (docs/testing.md):
 *
 *  1. cosim  -- ISS <-> gate-level lockstep equivalence on
 *               --programs random programs;
 *  2. kernel -- FullSweep <-> EventDriven bit-identity on
 *               --netlists random netlists;
 *  3. sym    -- 1-vs-K-thread peak-analysis determinism plus
 *               EventDriven-vs-FullSweep report identity (including
 *               the peak power envelope and windowed peak-energy
 *               curves) on --sym-programs random programs;
 *  4. envelope -- the per-cycle peak power envelope bounds every
 *               concrete execution: random programs analyzed with
 *               envelope recording, then re-run concretely with
 *               random per-cycle port schedules, on --env-programs
 *               random programs;
 *  5. scenario -- scenario dominance: random port-constraint
 *               scenarios must only tighten peak power / energy /
 *               envelope vs the unconstrained analysis, stay
 *               1-vs-K-thread deterministic, and bound every
 *               scenario-obeying concrete run, on --scn-programs
 *               random programs;
 *  6. packed -- bit-parallel kernel lane identity: one 64-lane
 *               PackedSimulator run vs 64 independent scalar runs on
 *               --packed-netlists random netlists (64 derived input
 *               schedules per item), and 64-lane batched concrete
 *               envelope validation on --packed-programs random
 *               programs;
 *  7. fault  -- SEU-injection identity and determinism: the packed
 *               lane-identity lockstep with per-lane random bit-flips
 *               injected through the fault API on --fault-netlists
 *               random netlists, and one small fault campaign run
 *               scalar-1-job vs packed-1-job vs packed-K-jobs with
 *               row-for-row classification identity required, on
 *               --fault-programs random programs;
 *  8. dvfs   -- operating-mode dominance: a random DVFS mode
 *               schedule vs a twin whose every (vdd, freq) is only
 *               lowered must only tighten peak power / energy /
 *               envelope, stay bit-identical across 1-vs-K threads,
 *               both kernels and both snapshot modes, and bound
 *               every mode-obeying concrete run, on --dvfs-programs
 *               random programs (`--mode dvfs` honors a bare
 *               --programs N as the item count too);
 *  9. lint   -- static-prune soundness: the netlist passes
 *               structural lint, every constant the scenario-aware
 *               const analysis proves is held by a concrete
 *               scenario-obeying run from the engage cycle on, and
 *               the analysis with Options::staticPrune reports
 *               bit-identical peak power / energy / NPE / envelope /
 *               ever-active set to the unpruned run, with the pruned
 *               runs themselves bit-identical across 1-vs-K threads,
 *               both kernels and both snapshot modes, on
 *               --lint-programs random programs (`--mode lint`
 *               honors a bare --programs N as the item count too);
 * 10. packed-sym -- packed-frontier exploration identity: the
 *               analysis with Options::packedExplore (pending paths
 *               drained through the 64-lane kernel) reports
 *               bit-identical numbers, traces, envelopes and
 *               activity sets to the scalar exploration under random
 *               scenarios / DVFS schedules / snapshot modes /
 *               staticPrune, and stays 1-vs-K-thread deterministic,
 *               on --psym-programs random programs
 *               (`--mode packed-sym` honors a bare --programs N as
 *               the item count too).
 *
 * Every work item derives its own PRNG stream from (--seed, index),
 * and each failure prints the item index, so
 * `ulfuzz --seed S --programs N --only I` replays one failing item
 * exactly. Exit code 0 = all properties hold, 1 = any divergence or
 * mismatch (the report is printed), 2 = usage error.
 */

#ifndef ULPEAK_CLI_FUZZ_DRIVER_HH
#define ULPEAK_CLI_FUZZ_DRIVER_HH

#include <cstdint>
#include <string>

namespace ulpeak {
namespace cli {

/** Parsed command line of the `ulfuzz` tool. */
struct FuzzCliOptions {
    uint64_t seed = 1;         ///< --seed
    unsigned programs = 50;    ///< --programs: cosim runs
    unsigned netlists = 50;    ///< --netlists: kernel-equivalence runs
    unsigned symPrograms = 8;  ///< --sym-programs: determinism runs
    unsigned envPrograms = 8;  ///< --env-programs: envelope-bound runs
    unsigned scnPrograms = 8;  ///< --scn-programs: scenario-dominance
                               ///< runs
    unsigned packedNetlists = 6; ///< --packed-netlists: packed
                                 ///< lane-identity netlists
    unsigned packedPrograms = 4; ///< --packed-programs: packed
                                 ///< envelope-batch programs
    unsigned faultNetlists = 4; ///< --fault-netlists: faulted
                                ///< lane-identity netlists
    unsigned faultPrograms = 3; ///< --fault-programs: campaign
                                ///< determinism programs
    unsigned dvfsPrograms = 8;  ///< --dvfs-programs: mode-dominance
                                ///< runs
    unsigned lintPrograms = 6;  ///< --lint-programs: static-prune
                                ///< soundness runs
    unsigned psymPrograms = 6;  ///< --psym-programs: packed-frontier
                                ///< exploration identity runs
    unsigned instructions = 24; ///< --instr: body items per program
    unsigned threads = 4;      ///< --threads: K of the 1-vs-K check
    unsigned kernelCycles = 64; ///< --kernel-cycles per netlist
    long only = -1;            ///< --only INDEX: replay one item
    std::string mode = "all";  ///< --mode
                               ///< all|cosim|kernel|sym|envelope|
                               ///< scenario|packed|fault|dvfs|lint|
                               ///< packed-sym
    bool programsGiven = false; ///< --programs was on the command line
                                ///< (`--mode dvfs` / `--mode lint` /
                                ///< `--mode packed-sym` reuse it as
                                ///< their item count)
    bool dumpPrograms = false; ///< --dump-programs: print sources
    bool quiet = false;        ///< --quiet: only the summary line
    bool help = false;         ///< --help
};

std::string fuzzUsage();

/** Parse @p argv; on bad usage returns false and sets @p err. */
bool parseFuzzArgs(int argc, const char *const *argv,
                   FuzzCliOptions &out, std::string &err);

/** The complete driver behind tools/ulfuzz_main.cc. */
int runFuzzCli(int argc, const char *const *argv);

} // namespace cli
} // namespace ulpeak

#endif // ULPEAK_CLI_FUZZ_DRIVER_HH
