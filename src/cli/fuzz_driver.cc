#include "cli/fuzz_driver.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cli/parse_util.hh"
#include "cosim/cosim.hh"
#include "fuzz/program_gen.hh"
#include "fuzz/properties.hh"
#include "fuzz/rng.hh"

namespace ulpeak {
namespace cli {

namespace {

/** Disjoint PRNG stream namespaces per property, so adding programs
 *  to one property never reshuffles another's inputs. */
constexpr uint64_t kCosimStream = 0;
constexpr uint64_t kKernelStream = 1ull << 32;
constexpr uint64_t kSymStream = 2ull << 32;
constexpr uint64_t kEnvelopeStream = 3ull << 32;
constexpr uint64_t kScenarioStream = 4ull << 32;
constexpr uint64_t kPackedStream = 5ull << 32;
constexpr uint64_t kFaultStream = 6ull << 32;
constexpr uint64_t kDvfsStream = 7ull << 32;
constexpr uint64_t kLintStream = 8ull << 32;
constexpr uint64_t kPackedSymStream = 9ull << 32;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct Counters {
    unsigned run = 0;
    unsigned failed = 0;
};

} // namespace

std::string
fuzzUsage()
{
    return
        "usage: ulfuzz [options]\n"
        "\n"
        "Differential fuzzing of the ulpeak stack: random MSP430\n"
        "programs run in lockstep on the golden ISS and the\n"
        "gate-level core (cosim), random netlists lockstep the two\n"
        "simulation kernels (kernel), and random programs check\n"
        "parallel/kernel determinism of the peak analysis (sym).\n"
        "\n"
        "options:\n"
        "  --seed N          master seed (default 1)\n"
        "  --programs N      cosim programs (default 50)\n"
        "  --netlists N      kernel-equivalence netlists (default 50)\n"
        "  --sym-programs N  determinism programs (default 8)\n"
        "  --env-programs N  envelope-bound programs (default 8)\n"
        "  --scn-programs N  scenario-dominance programs (default 8)\n"
        "  --packed-netlists N  packed lane-identity netlists\n"
        "                    (default 6)\n"
        "  --packed-programs N  packed envelope-batch programs\n"
        "                    (default 4)\n"
        "  --fault-netlists N  faulted lane-identity netlists\n"
        "                    (default 4)\n"
        "  --fault-programs N  fault-campaign determinism programs\n"
        "                    (default 3)\n"
        "  --dvfs-programs N  operating-mode dominance programs\n"
        "                    (default 8; `--mode dvfs` also honors a\n"
        "                    bare --programs N as the item count)\n"
        "  --lint-programs N  static-prune soundness programs\n"
        "                    (default 6; `--mode lint` also honors a\n"
        "                    bare --programs N as the item count)\n"
        "  --psym-programs N  packed-frontier exploration identity\n"
        "                    programs (default 6; `--mode packed-sym`\n"
        "                    also honors a bare --programs N as the\n"
        "                    item count)\n"
        "  --instr N         body items per program (default 24)\n"
        "  --threads K       K of the 1-vs-K thread check (default 4)\n"
        "  --kernel-cycles N cycles per netlist run (default 64)\n"
        "  --mode M          all|cosim|kernel|sym|envelope|scenario\n"
        "                    |packed|fault|dvfs|lint|packed-sym\n"
        "                    (default all)\n"
        "  --only I          run only item index I of the selected\n"
        "                    mode (replay a reported failure)\n"
        "  --dump-programs   print every generated program\n"
        "  --quiet           only the final summary\n"
        "  --help            this text\n"
        "\n"
        "Reproducing a failure: every report names the mode, item\n"
        "index and seed; rerun with the same --seed plus\n"
        "--mode M --only I (see docs/testing.md).\n";
}

bool
parseFuzzArgs(int argc, const char *const *argv, FuzzCliOptions &out,
              std::string &err)
{
    auto value = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            err = std::string(flag) + " expects a value";
            return nullptr;
        }
        return argv[++i];
    };
    // Item counts and cycle budgets: whole unsigned token required
    // (trailing garbage rejected), zero allowed -- `--netlists 0`
    // legitimately skips a property.
    auto countArg = [&](int &i, const char *flag,
                        unsigned &dst) -> bool {
        const char *v = value(i, flag);
        if (!v)
            return false;
        uint64_t n = 0;
        if (!parseUnsignedInt(v, n) ||
            n > std::numeric_limits<unsigned>::max()) {
            err = std::string(flag) + " expects an unsigned count, "
                  "got \"" + v + "\"";
            return false;
        }
        dst = unsigned(n);
        return true;
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        const char *v = nullptr;
        if (a == "--help" || a == "-h") {
            out.help = true;
        } else if (a == "--seed") {
            if (!(v = value(i, "--seed")))
                return false;
            if (!parseUnsignedInt(v, out.seed)) {
                err = std::string("--seed expects an unsigned "
                                  "integer, got \"") + v + "\"";
                return false;
            }
        } else if (a == "--programs") {
            if (!countArg(i, "--programs", out.programs))
                return false;
            out.programsGiven = true;
        } else if (a == "--netlists") {
            if (!countArg(i, "--netlists", out.netlists))
                return false;
        } else if (a == "--sym-programs") {
            if (!countArg(i, "--sym-programs", out.symPrograms))
                return false;
        } else if (a == "--env-programs") {
            if (!countArg(i, "--env-programs", out.envPrograms))
                return false;
        } else if (a == "--scn-programs") {
            if (!countArg(i, "--scn-programs", out.scnPrograms))
                return false;
        } else if (a == "--packed-netlists") {
            if (!countArg(i, "--packed-netlists", out.packedNetlists))
                return false;
        } else if (a == "--packed-programs") {
            if (!countArg(i, "--packed-programs", out.packedPrograms))
                return false;
        } else if (a == "--fault-netlists") {
            if (!countArg(i, "--fault-netlists", out.faultNetlists))
                return false;
        } else if (a == "--fault-programs") {
            if (!countArg(i, "--fault-programs", out.faultPrograms))
                return false;
        } else if (a == "--dvfs-programs") {
            if (!countArg(i, "--dvfs-programs", out.dvfsPrograms))
                return false;
        } else if (a == "--lint-programs") {
            if (!countArg(i, "--lint-programs", out.lintPrograms))
                return false;
        } else if (a == "--psym-programs") {
            if (!countArg(i, "--psym-programs", out.psymPrograms))
                return false;
        } else if (a == "--instr") {
            if (!countArg(i, "--instr", out.instructions))
                return false;
        } else if (a == "--threads") {
            if (!(v = value(i, "--threads")))
                return false;
            if (!parsePositiveInt(v, out.threads) ||
                out.threads < 2) {
                err = "--threads must be an integer >= 2 (it is the "
                      "K of the 1-vs-K comparison)";
                return false;
            }
        } else if (a == "--kernel-cycles") {
            if (!countArg(i, "--kernel-cycles", out.kernelCycles))
                return false;
        } else if (a == "--only") {
            if (!(v = value(i, "--only")))
                return false;
            uint64_t idx = 0;
            if (!parseUnsignedInt(v, idx) ||
                idx > uint64_t(std::numeric_limits<long>::max())) {
                err = std::string("--only expects an item index, "
                                  "got \"") + v + "\"";
                return false;
            }
            out.only = long(idx);
        } else if (a == "--mode") {
            if (!(v = value(i, "--mode")))
                return false;
            out.mode = v;
            if (out.mode != "all" && out.mode != "cosim" &&
                out.mode != "kernel" && out.mode != "sym" &&
                out.mode != "envelope" && out.mode != "scenario" &&
                out.mode != "packed" && out.mode != "fault" &&
                out.mode != "dvfs" && out.mode != "lint" &&
                out.mode != "packed-sym") {
                err = "--mode must be all, cosim, kernel, sym, "
                      "envelope, scenario, packed, fault, dvfs, "
                      "lint or packed-sym";
                return false;
            }
        } else if (a == "--dump-programs") {
            out.dumpPrograms = true;
        } else if (a == "--quiet") {
            out.quiet = true;
        } else {
            err = "unknown argument: " + a;
            return false;
        }
    }
    return true;
}

namespace {

/** Skip logic for --only. */
bool
selected(const FuzzCliOptions &cli, unsigned index)
{
    return cli.only < 0 || unsigned(cli.only) == index;
}

void
runCosim(const FuzzCliOptions &cli, msp::System &sys, Counters &c)
{
    fuzz::ProgramGenOptions gen;
    gen.instructions = cli.instructions;
    for (unsigned i = 0; i < cli.programs; ++i) {
        if (!selected(cli, i))
            continue;
        fuzz::Rng rng(
            fuzz::Rng::deriveStream(cli.seed, kCosimStream + i));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, gen);
        if (cli.dumpPrograms)
            std::printf("--- cosim item %u ---\n%s\n", i,
                        prog.source.c_str());
        ++c.run;
        cosim::Options opts;
        opts.portIn = rng.word();
        try {
            isa::Image image = isa::assemble(prog.source);
            cosim::Result r = cosim::run(sys, image, opts);
            if (!r.ok) {
                ++c.failed;
                std::printf("cosim item %u (seed %llu) DIVERGED:\n%s",
                            i, (unsigned long long)cli.seed,
                            r.report().c_str());
                std::printf("program:\n%s\n", prog.source.c_str());
            }
        } catch (const std::exception &e) {
            ++c.failed;
            std::printf("cosim item %u (seed %llu) generator/assembler "
                        "error: %s\nprogram:\n%s\n",
                        i, (unsigned long long)cli.seed, e.what(),
                        prog.source.c_str());
        }
    }
}

void
runKernel(const FuzzCliOptions &cli, Counters &c)
{
    fuzz::NetlistGenOptions gen;
    for (unsigned i = 0; i < cli.netlists; ++i) {
        if (!selected(cli, i))
            continue;
        ++c.run;
        uint64_t seed =
            fuzz::Rng::deriveStream(cli.seed, kKernelStream + i);
        fuzz::PropertyResult r =
            fuzz::kernelEquivalenceCheck(seed, gen, cli.kernelCycles);
        if (!r.ok) {
            ++c.failed;
            std::printf("kernel item %u (seed %llu) MISMATCH:\n%s", i,
                        (unsigned long long)cli.seed,
                        r.detail.c_str());
        }
    }
}

void
runSym(const FuzzCliOptions &cli, msp::System &sys, Counters &c)
{
    fuzz::ProgramGenOptions gen;
    // Symbolic exploration forks at every X-dependent branch; keep the
    // bodies shorter than the cosim ones so trees stay small.
    gen.instructions = cli.instructions / 2 + 1;
    for (unsigned i = 0; i < cli.symPrograms; ++i) {
        if (!selected(cli, i))
            continue;
        fuzz::Rng rng(
            fuzz::Rng::deriveStream(cli.seed, kSymStream + i));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, gen);
        if (cli.dumpPrograms)
            std::printf("--- sym item %u ---\n%s\n", i,
                        prog.source.c_str());
        ++c.run;
        try {
            isa::Image image = isa::assemble(prog.source);
            fuzz::PropertyResult det =
                fuzz::symDeterminismCheck(sys, image, cli.threads);
            fuzz::PropertyResult mode =
                fuzz::evalModeReportCheck(sys, image);
            if (!det.ok || !mode.ok) {
                ++c.failed;
                std::printf("sym item %u (seed %llu) MISMATCH:\n%s%s"
                            "program:\n%s\n",
                            i, (unsigned long long)cli.seed,
                            det.detail.c_str(), mode.detail.c_str(),
                            prog.source.c_str());
            }
        } catch (const std::exception &e) {
            ++c.failed;
            std::printf("sym item %u (seed %llu) generator/assembler "
                        "error: %s\nprogram:\n%s\n",
                        i, (unsigned long long)cli.seed, e.what(),
                        prog.source.c_str());
        }
    }
}

void
runEnvelope(const FuzzCliOptions &cli, msp::System &sys, Counters &c)
{
    fuzz::ProgramGenOptions gen;
    // Same sizing rationale as the sym mode: every X-dependent branch
    // forks the tree, so keep bodies short.
    gen.instructions = cli.instructions / 2 + 1;
    for (unsigned i = 0; i < cli.envPrograms; ++i) {
        if (!selected(cli, i))
            continue;
        fuzz::Rng rng(
            fuzz::Rng::deriveStream(cli.seed, kEnvelopeStream + i));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, gen);
        if (cli.dumpPrograms)
            std::printf("--- envelope item %u ---\n%s\n", i,
                        prog.source.c_str());
        ++c.run;
        try {
            isa::Image image = isa::assemble(prog.source);
            fuzz::PropertyResult r =
                fuzz::envelopeBoundCheck(sys, image, rng);
            if (!r.ok) {
                ++c.failed;
                std::printf("envelope item %u (seed %llu) UNBOUNDED:"
                            "\n%sprogram:\n%s\n",
                            i, (unsigned long long)cli.seed,
                            r.detail.c_str(), prog.source.c_str());
            }
        } catch (const std::exception &e) {
            ++c.failed;
            std::printf("envelope item %u (seed %llu) "
                        "generator/assembler error: %s\nprogram:\n%s\n",
                        i, (unsigned long long)cli.seed, e.what(),
                        prog.source.c_str());
        }
    }
}

void
runScenario(const FuzzCliOptions &cli, msp::System &sys, Counters &c)
{
    fuzz::ProgramGenOptions gen;
    // Same sizing rationale as the sym mode: every X-dependent branch
    // forks the tree, so keep bodies short.
    gen.instructions = cli.instructions / 2 + 1;
    for (unsigned i = 0; i < cli.scnPrograms; ++i) {
        if (!selected(cli, i))
            continue;
        fuzz::Rng rng(
            fuzz::Rng::deriveStream(cli.seed, kScenarioStream + i));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, gen);
        if (cli.dumpPrograms)
            std::printf("--- scenario item %u ---\n%s\n", i,
                        prog.source.c_str());
        ++c.run;
        try {
            isa::Image image = isa::assemble(prog.source);
            fuzz::PropertyResult r = fuzz::scenarioDominanceCheck(
                sys, image, rng, cli.threads);
            if (!r.ok) {
                ++c.failed;
                std::printf("scenario item %u (seed %llu) DOMINANCE "
                            "VIOLATION:\n%sprogram:\n%s\n",
                            i, (unsigned long long)cli.seed,
                            r.detail.c_str(), prog.source.c_str());
            }
        } catch (const std::exception &e) {
            ++c.failed;
            std::printf("scenario item %u (seed %llu) "
                        "generator/assembler error: %s\nprogram:\n%s\n",
                        i, (unsigned long long)cli.seed, e.what(),
                        prog.source.c_str());
        }
    }
}

void
runPacked(const FuzzCliOptions &cli, msp::System &sys, Counters &c)
{
    // Item index space: [0, packedNetlists) are lane-identity netlist
    // items, [packedNetlists, packedNetlists + packedPrograms) are
    // envelope-batch program items (--only addresses both).
    fuzz::NetlistGenOptions ngen;
    for (unsigned i = 0; i < cli.packedNetlists; ++i) {
        if (!selected(cli, i))
            continue;
        ++c.run;
        uint64_t seed =
            fuzz::Rng::deriveStream(cli.seed, kPackedStream + i);
        fuzz::PropertyResult r = fuzz::packedKernelEquivalenceCheck(
            seed, ngen, cli.kernelCycles);
        if (!r.ok) {
            ++c.failed;
            std::printf("packed item %u (seed %llu) LANE MISMATCH:"
                        "\n%s",
                        i, (unsigned long long)cli.seed,
                        r.detail.c_str());
        }
    }

    fuzz::ProgramGenOptions pgen;
    // Same sizing rationale as the sym mode: every X-dependent branch
    // forks the tree, so keep bodies short.
    pgen.instructions = cli.instructions / 2 + 1;
    for (unsigned p = 0; p < cli.packedPrograms; ++p) {
        unsigned i = cli.packedNetlists + p;
        if (!selected(cli, i))
            continue;
        fuzz::Rng rng(
            fuzz::Rng::deriveStream(cli.seed, kPackedStream + i));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, pgen);
        if (cli.dumpPrograms)
            std::printf("--- packed item %u ---\n%s\n", i,
                        prog.source.c_str());
        ++c.run;
        try {
            isa::Image image = isa::assemble(prog.source);
            fuzz::PropertyResult r =
                fuzz::packedEnvelopeBatchCheck(sys, image, rng);
            if (!r.ok) {
                ++c.failed;
                std::printf("packed item %u (seed %llu) BATCH "
                            "MISMATCH:\n%sprogram:\n%s\n",
                            i, (unsigned long long)cli.seed,
                            r.detail.c_str(), prog.source.c_str());
            }
        } catch (const std::exception &e) {
            ++c.failed;
            std::printf("packed item %u (seed %llu) "
                        "generator/assembler error: %s\nprogram:\n%s\n",
                        i, (unsigned long long)cli.seed, e.what(),
                        prog.source.c_str());
        }
    }
}

void
runFault(const FuzzCliOptions &cli, Counters &c)
{
    // Item index space mirrors the packed mode: [0, faultNetlists)
    // are faulted lane-identity netlist items,
    // [faultNetlists, faultNetlists + faultPrograms) are campaign
    // determinism program items (--only addresses both).
    fuzz::NetlistGenOptions ngen;
    for (unsigned i = 0; i < cli.faultNetlists; ++i) {
        if (!selected(cli, i))
            continue;
        ++c.run;
        uint64_t seed =
            fuzz::Rng::deriveStream(cli.seed, kFaultStream + i);
        fuzz::PropertyResult r = fuzz::faultedPackedEquivalenceCheck(
            seed, ngen, cli.kernelCycles);
        if (!r.ok) {
            ++c.failed;
            std::printf("fault item %u (seed %llu) FAULTED LANE "
                        "MISMATCH:\n%s",
                        i, (unsigned long long)cli.seed,
                        r.detail.c_str());
        }
    }

    fuzz::ProgramGenOptions pgen;
    pgen.instructions = cli.instructions;
    for (unsigned p = 0; p < cli.faultPrograms; ++p) {
        unsigned i = cli.faultNetlists + p;
        if (!selected(cli, i))
            continue;
        fuzz::Rng rng(
            fuzz::Rng::deriveStream(cli.seed, kFaultStream + i));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, pgen);
        if (cli.dumpPrograms)
            std::printf("--- fault item %u ---\n%s\n", i,
                        prog.source.c_str());
        ++c.run;
        try {
            isa::Image image = isa::assemble(prog.source);
            fuzz::PropertyResult r =
                fuzz::faultCampaignDeterminismCheck(
                    image, rng.next(), cli.threads);
            if (!r.ok) {
                ++c.failed;
                std::printf("fault item %u (seed %llu) CAMPAIGN "
                            "NONDETERMINISM:\n%sprogram:\n%s\n",
                            i, (unsigned long long)cli.seed,
                            r.detail.c_str(), prog.source.c_str());
            }
        } catch (const std::exception &e) {
            ++c.failed;
            std::printf("fault item %u (seed %llu) "
                        "generator/assembler error: %s\nprogram:\n%s\n",
                        i, (unsigned long long)cli.seed, e.what(),
                        prog.source.c_str());
        }
    }
}

void
runDvfs(const FuzzCliOptions &cli, msp::System &sys, Counters &c)
{
    fuzz::ProgramGenOptions gen;
    // Same sizing rationale as the sym mode: every X-dependent branch
    // forks the tree, so keep bodies short.
    gen.instructions = cli.instructions / 2 + 1;
    // `--mode dvfs --programs N` means N dvfs items: --programs is the
    // headline knob, and with dvfs selected alone there are no cosim
    // items for it to apply to.
    unsigned items = cli.dvfsPrograms;
    if (cli.mode == "dvfs" && cli.programsGiven)
        items = cli.programs;
    for (unsigned i = 0; i < items; ++i) {
        if (!selected(cli, i))
            continue;
        fuzz::Rng rng(
            fuzz::Rng::deriveStream(cli.seed, kDvfsStream + i));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, gen);
        if (cli.dumpPrograms)
            std::printf("--- dvfs item %u ---\n%s\n", i,
                        prog.source.c_str());
        ++c.run;
        try {
            isa::Image image = isa::assemble(prog.source);
            fuzz::PropertyResult r = fuzz::modeDominanceCheck(
                sys, image, rng, cli.threads);
            if (!r.ok) {
                ++c.failed;
                std::printf("dvfs item %u (seed %llu) MODE DOMINANCE "
                            "VIOLATION:\n%sprogram:\n%s\n",
                            i, (unsigned long long)cli.seed,
                            r.detail.c_str(), prog.source.c_str());
            }
        } catch (const std::exception &e) {
            ++c.failed;
            std::printf("dvfs item %u (seed %llu) "
                        "generator/assembler error: %s\nprogram:\n%s\n",
                        i, (unsigned long long)cli.seed, e.what(),
                        prog.source.c_str());
        }
    }
}

void
runLint(const FuzzCliOptions &cli, msp::System &sys, Counters &c)
{
    fuzz::ProgramGenOptions gen;
    // Same sizing rationale as the sym mode: every X-dependent branch
    // forks the tree, so keep bodies short.
    gen.instructions = cli.instructions / 2 + 1;
    // `--mode lint --programs N` means N lint items, like dvfs.
    unsigned items = cli.lintPrograms;
    if (cli.mode == "lint" && cli.programsGiven)
        items = cli.programs;
    for (unsigned i = 0; i < items; ++i) {
        if (!selected(cli, i))
            continue;
        fuzz::Rng rng(
            fuzz::Rng::deriveStream(cli.seed, kLintStream + i));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, gen);
        if (cli.dumpPrograms)
            std::printf("--- lint item %u ---\n%s\n", i,
                        prog.source.c_str());
        ++c.run;
        try {
            isa::Image image = isa::assemble(prog.source);
            fuzz::PropertyResult r = fuzz::staticPruneCheck(
                sys, image, rng, cli.threads);
            if (!r.ok) {
                ++c.failed;
                std::printf("lint item %u (seed %llu) PRUNE "
                            "UNSOUNDNESS:\n%sprogram:\n%s\n",
                            i, (unsigned long long)cli.seed,
                            r.detail.c_str(), prog.source.c_str());
            }
        } catch (const std::exception &e) {
            ++c.failed;
            std::printf("lint item %u (seed %llu) "
                        "generator/assembler error: %s\nprogram:\n%s\n",
                        i, (unsigned long long)cli.seed, e.what(),
                        prog.source.c_str());
        }
    }
}

void
runPackedSym(const FuzzCliOptions &cli, msp::System &sys, Counters &c)
{
    fuzz::ProgramGenOptions gen;
    // Same sizing rationale as the sym mode: every X-dependent branch
    // forks the tree, so keep bodies short.
    gen.instructions = cli.instructions / 2 + 1;
    // `--mode packed-sym --programs N` means N items, like dvfs/lint.
    unsigned items = cli.psymPrograms;
    if (cli.mode == "packed-sym" && cli.programsGiven)
        items = cli.programs;
    for (unsigned i = 0; i < items; ++i) {
        if (!selected(cli, i))
            continue;
        fuzz::Rng rng(
            fuzz::Rng::deriveStream(cli.seed, kPackedSymStream + i));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, gen);
        if (cli.dumpPrograms)
            std::printf("--- packed-sym item %u ---\n%s\n", i,
                        prog.source.c_str());
        ++c.run;
        try {
            isa::Image image = isa::assemble(prog.source);
            fuzz::PropertyResult r = fuzz::packedExploreCheck(
                sys, image, rng, cli.threads);
            if (!r.ok) {
                ++c.failed;
                std::printf("packed-sym item %u (seed %llu) FRONTIER "
                            "MISMATCH:\n%sprogram:\n%s\n",
                            i, (unsigned long long)cli.seed,
                            r.detail.c_str(), prog.source.c_str());
            }
        } catch (const std::exception &e) {
            ++c.failed;
            std::printf("packed-sym item %u (seed %llu) "
                        "generator/assembler error: %s\nprogram:\n%s\n",
                        i, (unsigned long long)cli.seed, e.what(),
                        prog.source.c_str());
        }
    }
}

} // namespace

int
runFuzzCli(int argc, const char *const *argv)
{
    FuzzCliOptions cli;
    std::string err;
    if (!parseFuzzArgs(argc, argv, cli, err)) {
        std::fprintf(stderr, "ulfuzz: %s\n%s", err.c_str(),
                     fuzzUsage().c_str());
        return 2;
    }
    if (cli.help) {
        std::fputs(fuzzUsage().c_str(), stdout);
        return 0;
    }

    auto t0 = std::chrono::steady_clock::now();
    Counters cosimC, kernelC, symC, envC, scnC, packedC, faultC,
        dvfsC, lintC, psymC;

    // One System serves every property: the netlist is immutable, and
    // each run reloads the behavioral memory.
    msp::System sys(CellLibrary::tsmc65Like());

    if (cli.mode == "all" || cli.mode == "cosim")
        runCosim(cli, sys, cosimC);
    if (cli.mode == "all" || cli.mode == "kernel")
        runKernel(cli, kernelC);
    if (cli.mode == "all" || cli.mode == "sym")
        runSym(cli, sys, symC);
    if (cli.mode == "all" || cli.mode == "envelope")
        runEnvelope(cli, sys, envC);
    if (cli.mode == "all" || cli.mode == "scenario")
        runScenario(cli, sys, scnC);
    if (cli.mode == "all" || cli.mode == "packed")
        runPacked(cli, sys, packedC);
    if (cli.mode == "all" || cli.mode == "fault")
        runFault(cli, faultC);
    if (cli.mode == "all" || cli.mode == "dvfs")
        runDvfs(cli, sys, dvfsC);
    if (cli.mode == "all" || cli.mode == "lint")
        runLint(cli, sys, lintC);
    if (cli.mode == "all" || cli.mode == "packed-sym")
        runPackedSym(cli, sys, psymC);

    unsigned failed = cosimC.failed + kernelC.failed + symC.failed +
                      envC.failed + scnC.failed + packedC.failed +
                      faultC.failed + dvfsC.failed + lintC.failed +
                      psymC.failed;
    if (!cli.quiet || failed) {
        std::printf("ulfuzz seed %llu: cosim %u/%u ok, kernel %u/%u "
                    "ok, sym %u/%u ok, envelope %u/%u ok, scenario "
                    "%u/%u ok, packed %u/%u ok, fault %u/%u ok, dvfs "
                    "%u/%u ok, lint %u/%u ok, packed-sym %u/%u ok "
                    "(%.1fs)\n",
                    (unsigned long long)cli.seed,
                    cosimC.run - cosimC.failed, cosimC.run,
                    kernelC.run - kernelC.failed, kernelC.run,
                    symC.run - symC.failed, symC.run,
                    envC.run - envC.failed, envC.run,
                    scnC.run - scnC.failed, scnC.run,
                    packedC.run - packedC.failed, packedC.run,
                    faultC.run - faultC.failed, faultC.run,
                    dvfsC.run - dvfsC.failed, dvfsC.run,
                    lintC.run - lintC.failed, lintC.run,
                    psymC.run - psymC.failed, psymC.run,
                    secondsSince(t0));
    }
    return failed ? 1 : 0;
}

} // namespace cli
} // namespace ulpeak
