/**
 * @file
 * Per-operating-mode views of an analyzed envelope.
 *
 * When a scenario carries an operating-mode (DVFS) schedule, the
 * envelope already prices every cycle at its mode's voltage-scaled
 * energy and clock (sym layer), so this file is pure post-processing:
 * it slices the envelope by mode, locates the schedule's mode
 * transitions and their settling-window peaks, evaluates the
 * scenario's assertions ("power never exceeds X W while in mode M,
 * outside a W-cycle settling window after each switch into M"), and
 * raises sizing findings (a low-voltage mode at or under the
 * decap-sizing floor of the nominal rail). Everything here is a
 * deterministic function of (envelope, scenario), independent of how
 * the envelope was computed -- it is never cached and never feeds
 * back into the analysis. Assertion failures are findings for
 * `ulpeak --modes` to report, not analysis errors, mirroring how
 * ulfault treats envelope escapes.
 */

#ifndef ULPEAK_PEAK_MODES_HH
#define ULPEAK_PEAK_MODES_HH

#include <string>
#include <vector>

#include "peak/envelope.hh"
#include "scenario/scenario.hh"

namespace ulpeak {
namespace peak {

/** Envelope statistics of the cycles one mode is in force. */
struct ModeSlice {
    std::string name;
    double vdd = 0.0;
    double freqHz = 0.0;
    uint64_t cycles = 0;    ///< envelope cycles run in this mode
    double peakW = 0.0;     ///< per-mode envelope peak
    uint64_t peakCycle = 0; ///< envelope cycle of that peak
    double avgW = 0.0;      ///< mean envelope power in this mode
    double energyJ = 0.0;   ///< envelope energy at this mode's clock
};

/** One distinct mode switch of the repeating schedule. */
struct ModeTransition {
    std::string from;
    std::string to;
    uint64_t phase = 0;       ///< schedule phase entering @ref to
    uint64_t occurrences = 0; ///< entry cycles inside the envelope
    double peakEntryW = 0.0;  ///< max envelope power at entry cycles
    /** Widest assertion settling window applying to @ref to (0 when
     *  no assertion names it). */
    uint64_t settleCycles = 0;
    /** Max envelope power inside [entry, entry + max(settle, 1))
     *  across all entries -- what "the switch settles within W
     *  cycles" is judged against. */
    double peakSettleW = 0.0;
};

/** Verdict of one scenario::ModeAssertion against the envelope. */
struct ModeAssertionResult {
    scenario::ModeAssertion assertion;
    bool pass = true;
    uint64_t checkedCycles = 0; ///< in-mode cycles outside settling
    uint64_t violations = 0;
    uint64_t firstViolationCycle = 0;
    double maxExcessW = 0.0; ///< max envelope power above the limit
};

struct ModeReport {
    bool present = false;
    /** Envelope peak over the whole schedule -- the composite bound
     *  across every mode and transition (the envelope itself is
     *  mode-priced, so its peak already accounts for switches). */
    double compositePeakW = 0.0;
    uint64_t envelopeCycles = 0;
    std::vector<ModeSlice> modes;
    std::vector<ModeTransition> transitions;
    std::vector<ModeAssertionResult> assertions;
    /** Human-readable sizing findings (e.g. the low-vdd decap
     *  guard); findings never fail the analysis. */
    std::vector<std::string> findings;

    bool
    allAssertionsPass() const
    {
        for (const ModeAssertionResult &a : assertions)
            if (!a.pass)
                return false;
        return true;
    }
};

/**
 * Build the per-mode report of @p env under @p scen. @p lib_vdd is
 * the library's nominal rail [V], used only for the low-voltage
 * decap-guard finding (a mode whose vdd is at or below
 * sizing::kDecapVminRatio * lib_vdd leaves the nominal-rail decap
 * with no discharge headroom). Returns a non-present report when the
 * scenario has no modes or the envelope was not recorded.
 */
ModeReport buildModeReport(const Envelope &env,
                           const scenario::Scenario &scen,
                           double lib_vdd);

} // namespace peak
} // namespace ulpeak

#endif // ULPEAK_PEAK_MODES_HH
