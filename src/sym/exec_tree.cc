#include "sym/exec_tree.hh"

#include <stdexcept>

namespace ulpeak {
namespace sym {

uint64_t
ExecTree::totalCycles() const
{
    uint64_t total = 0;
    for (const TreeNode &n : nodes_)
        total += n.powerW.size();
    return total;
}

std::vector<float>
ExecTree::flatten() const
{
    std::vector<float> out;
    for (const FlatRef &ref : flattenRefs())
        out.push_back(nodes_[ref.nodeId].powerW[ref.offset]);
    return out;
}

std::vector<ExecTree::FlatRef>
ExecTree::flattenRefs() const
{
    std::vector<FlatRef> out;
    if (nodes_.empty())
        return out;
    std::vector<uint32_t> stack{0};
    std::vector<bool> visited(nodes_.size(), false);
    while (!stack.empty()) {
        uint32_t id = stack.back();
        stack.pop_back();
        if (visited[id])
            continue;
        visited[id] = true;
        const TreeNode &n = nodes_[id];
        for (uint32_t c = 0; c < n.powerW.size(); ++c)
            out.push_back(FlatRef{id, c});
        // Depth-first order: push children reversed.
        for (auto it = n.edges.rbegin(); it != n.edges.rend(); ++it)
            if (it->child != kNoNode && !visited[it->child])
                stack.push_back(it->child);
    }
    return out;
}

namespace {

struct EnergyMemo {
    std::vector<int8_t> state; // 0 unvisited, 1 on-stack, 2 done
    std::vector<PathEnergy> best;
};

PathEnergy
visit(const ExecTree &tree, uint32_t id, double tclk,
      unsigned loop_bound, EnergyMemo &memo)
{
    if (memo.state[id] == 2)
        return memo.best[id];
    if (memo.state[id] == 1) {
        // Back-edge: an input-dependent loop survived dedup. Bound it
        // explicitly (Section 3.3: "the maximum number of iterations
        // may be determined by static analysis or user input").
        if (loop_bound == 0)
            throw std::runtime_error(
                "unbounded input-dependent loop in execution tree; "
                "provide inputDependentLoopBound");
        return PathEnergy{0.0, 0};
    }
    memo.state[id] = 1;

    const TreeNode &n = tree.node(id);
    PathEnergy self;
    for (float w : n.powerW)
        self.energyJ += double(w) * tclk;
    self.cycles = n.powerW.size();

    PathEnergy bestChild;
    bool sawBackEdge = false;
    for (const TreeEdge &e : n.edges) {
        if (e.child == kNoNode)
            continue;
        bool childOnStack =
            memo.state[e.child] == 1;
        PathEnergy pe = visit(tree, e.child, tclk, loop_bound, memo);
        if (childOnStack)
            sawBackEdge = true;
        if (pe.energyJ > bestChild.energyJ)
            bestChild = pe;
    }
    PathEnergy total{self.energyJ + bestChild.energyJ,
                     self.cycles + bestChild.cycles};
    if (sawBackEdge) {
        // Conservative bound: the whole loop body repeats loop_bound
        // times.
        total.energyJ += self.energyJ * (loop_bound > 0
                                             ? double(loop_bound - 1)
                                             : 0.0);
        total.cycles +=
            self.cycles * (loop_bound > 0 ? loop_bound - 1 : 0);
    }
    memo.state[id] = 2;
    memo.best[id] = total;
    return total;
}

} // namespace

PathEnergy
ExecTree::maxPathEnergy(double tclk, unsigned loop_bound) const
{
    if (nodes_.empty())
        return PathEnergy{};
    EnergyMemo memo;
    memo.state.assign(nodes_.size(), 0);
    memo.best.assign(nodes_.size(), PathEnergy{});
    return visit(*this, 0, tclk, loop_bound, memo);
}

} // namespace sym
} // namespace ulpeak
