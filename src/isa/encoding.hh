/**
 * @file
 * MSP430 instruction set: formats, encodings, micro-operation plans.
 *
 * We implement the word-sized MSP430 instruction set (formats I, II and
 * III with the full addressing-mode matrix and the r2/r3 constant
 * generator). Byte mode and DADD are out of scope (DESIGN.md). The same
 * Decoded/MicroPlan structures drive four consumers:
 *
 *  - the assembler and disassembler,
 *  - the golden instruction-set simulator (isa/iss.cc),
 *  - the gate-level CPU's control FSM (src/msp), which realizes exactly
 *    the micro-operation schedule MicroPlan describes, and
 *  - the symbolic engine's PC-target resolution when an X reaches the
 *    program counter (sym/symbolic_engine.cc).
 */

#ifndef ULPEAK_ISA_ENCODING_HH
#define ULPEAK_ISA_ENCODING_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ulpeak {
namespace isa {

/** Architectural register numbers. */
constexpr unsigned kPc = 0;
constexpr unsigned kSp = 1;
constexpr unsigned kSr = 2;
constexpr unsigned kCg = 3;

/** Status register flag bit positions. */
constexpr unsigned kFlagC = 0;
constexpr unsigned kFlagZ = 1;
constexpr unsigned kFlagN = 2;
constexpr unsigned kFlagGie = 3;
constexpr unsigned kFlagV = 8;

enum class Op : uint8_t {
    // Format I (two-operand)
    Mov, Add, Addc, Subc, Sub, Cmp, Bit, Bic, Bis, Xor, And,
    // Format II (one-operand)
    Rrc, Swpb, Rra, Sxt, Push, Call, Reti,
    // Format III (jumps)
    Jne, Jeq, Jnc, Jc, Jn, Jge, Jl, Jmp,
    Invalid,
};

bool isFormatI(Op op);
bool isFormatII(Op op);
bool isJump(Op op);
const char *opName(Op op);

/**
 * Resolved addressing mode of one operand. Const covers the r2/r3
 * constant generator (values 0, 1, 2, 4, 8, -1 with no extension word).
 */
enum class Mode : uint8_t {
    Reg,         ///< Rn
    Indexed,     ///< x(Rn)
    Indirect,    ///< @Rn
    IndirectInc, ///< @Rn+
    Immediate,   ///< #imm (via @PC+)
    Absolute,    ///< &addr (via x(r2))
    Symbolic,    ///< addr(PC) (via x(r0))
    Const,       ///< constant generator
};

struct Operand {
    Mode mode = Mode::Reg;
    uint8_t reg = 0;
    /** Index for Indexed/Symbolic, address for Absolute, value for
     *  Immediate/Const. */
    int32_t imm = 0;

    bool needsExtWord() const;
    /** Operands that perform a data-memory (or peripheral) read. */
    bool readsMemory() const;
};

struct Instr {
    Op op = Op::Invalid;
    Operand src; ///< format I source / format II single operand
    Operand dst; ///< format I destination
    int16_t jumpOffsetWords = 0; ///< format III: target = PC+2+2*offset

    std::string toString() const;
};

/** Decode result: the instruction plus its total length in words. */
struct Decoded {
    Instr instr;
    unsigned words = 1;
    bool valid = false;
};

/**
 * Decode an instruction whose first word is @p w0; @p w1 / @p w2 are
 * the following memory words (used only when extension words exist).
 */
Decoded decode(uint16_t w0, uint16_t w1, uint16_t w2);

/**
 * Encode to 1-3 words. Immediate operands with CG-expressible values
 * (0, 1, 2, 4, 8, -1) are automatically encoded via the constant
 * generator, matching how real MSP430 assemblers (and the paper's
 * OPT2 example `add #2, r1`) behave.
 */
std::vector<uint16_t> encode(const Instr &instr);

/**
 * Micro-operation schedule of an instruction: which of the multi-cycle
 * core's states it visits. Total cycle count = 1 (fetch) + the enabled
 * flags + 1 (exec). This is the single source of truth for instruction
 * timing in both the ISS and the gate-level FSM.
 */
struct MicroPlan {
    bool srcExt = false; ///< fetch extension word for the source
    bool srcRd = false;  ///< data-memory read of the source operand
    bool dstExt = false; ///< fetch extension word for the destination
    bool dstRd = false;  ///< data-memory read of the destination
    bool dstWr = false;  ///< data-memory write of the result
    bool push = false;   ///< PUSH-style write at SP-2 with SP update
    /** CALL: the push-write state also loads PC with the target, so it
     *  adds no cycle beyond @ref push. */
    bool call = false;

    unsigned
    cycles() const
    {
        return 2u + srcExt + srcRd + dstExt + dstRd + dstWr + push;
    }
};

MicroPlan planOf(const Instr &instr);

/** Does @p op write its destination (CMP/BIT only set flags)? */
bool writesDst(Op op);
/** Does @p op read the destination operand (MOV does not)? */
bool readsDst(Op op);
/** Does @p op update the status flags? */
bool setsFlags(Op op);

/**
 * Jump condition evaluation given SR flag bits; used by the ISS and by
 * symbolic PC-target resolution.
 */
bool jumpTaken(Op op, bool c, bool z, bool n, bool v);

} // namespace isa
} // namespace ulpeak

#endif // ULPEAK_ISA_ENCODING_HH
