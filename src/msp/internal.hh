/**
 * @file
 * Shared construction state for the CPU's module builders. Internal to
 * src/msp (an _impl-style header, not part of the public API).
 *
 * Build order (see System::System in cpu.cc):
 *   1. frontend  -- FSM, IR, decode; declares registers, leaves
 *                   mdb_in-dependent wiring for later via Reg::connect
 *   2. exec_unit -- register file, ALU, flags, operand latches
 *   3. multiplier, watchdog, sfr, dbg, clk_module peripherals
 *   4. mem_backbone -- address muxing, read-data routing
 *
 * Cross-module signals live in this struct; each builder fills in what
 * it owns. Feedback (e.g. decode needs mdb_in, mem_backbone needs the
 * FSM state) is handled with declared registers and late connection.
 */

#ifndef ULPEAK_MSP_INTERNAL_HH
#define ULPEAK_MSP_INTERNAL_HH

#include "hw/builder.hh"
#include "msp/cpu.hh"

namespace ulpeak {
namespace msp {

using hw::Bus;
using hw::Sig;

/** One-hot decoded source addressing mode. */
struct SrcModeSignals {
    Sig isReg = kNoGate;
    Sig isIndexed = kNoGate; ///< covers Indexed and Symbolic
    Sig isIndirect = kNoGate;
    Sig isIndirectInc = kNoGate;
    Sig isImmediate = kNoGate;
    Sig isAbsolute = kNoGate;
    Sig isConst = kNoGate;
};

/** Decode outputs (all combinational from the current instr word). */
struct DecodeSignals {
    Bus word;       ///< the word being decoded (IR, or mdb_in in FETCH)
    Bus sreg;       ///< 4-bit source register field
    Bus dreg;       ///< 4-bit destination register field
    Sig valid = kNoGate;

    Sig isFmtI = kNoGate;
    Sig isFmtII = kNoGate;
    Sig isJump = kNoGate;

    /** One-hot format-I op lines, indexed by isa::Op (Mov..And). */
    std::array<Sig, 11> fmtIOp{};
    /** One-hot format-II op lines: rrc, swpb, rra, sxt, push, call. */
    std::array<Sig, 6> fmtIIOp{};
    /** Jump condition select, 3 bits. */
    Bus jumpCond;
    Bus jumpOffset; ///< 10-bit raw offset field

    SrcModeSignals src;
    Sig dstIsReg = kNoGate;
    Sig dstIsMem = kNoGate;      ///< Ad=1
    Sig dstIsAbsolute = kNoGate; ///< Ad=1 with r2
    Bus cgValue;                 ///< 16-bit constant-generator value

    Sig needsSrcExt = kNoGate;
    Sig needsSrcRd = kNoGate;
    Sig needsDstExt = kNoGate;
    Sig needsDstRd = kNoGate;
    Sig needsDstWr = kNoGate;
    Sig isPush = kNoGate; ///< push or call
    Sig isCall = kNoGate;
    Sig writesDstReg = kNoGate; ///< format-I reg destination write
    Sig fmtIIWritesReg = kNoGate;
    Sig setsFlags = kNoGate;
};

struct CpuBuild {
    hw::Builder *b = nullptr;
    CpuHandles *h = nullptr;

    // frontend outputs
    std::array<Sig, kNumStates> st{}; ///< one-hot state (current)
    DecodeSignals dec;
    Bus irQ;

    // exec_unit outputs
    std::array<Bus, 16> regQ;  ///< register file outputs
    Bus srcVal;   ///< resolved source operand value (combinational)
    Bus dstVal;   ///< resolved destination operand value
    Bus aluResult;
    Bus srcAddr;  ///< source memory address (SRCRD)
    Bus dstAddr;  ///< destination memory address (DSTRD/DSTWR)
    Bus spMinus2;
    Bus jumpTarget;
    Sig jumpTaken = kNoGate;
    Bus srcvQ;    ///< SRCV latch output
    Bus extdQ;    ///< EXTD latch output
    Bus dstvQ;    ///< DSTV latch output
    Bus srcaQ;    ///< SRCA latch (source address, for fmt-II writeback)
    Bus resvQ;    ///< ALU result latched at the EXEC edge (DSTWR data;
                  ///< the flags EXEC wrote must not re-enter the ALU)

    // peripheral register outputs (consumed by mem_backbone)
    Bus sfrIeQ, sfrIfgQ, poutQ, wdtReadData, mpyQ, op2Q, resloQ,
        reshiQ, dbg0Q, dbg1Q;

    // peripheral read data (each a 16-bit bus) + address-match signals
    Bus periphRData;   ///< muxed peripheral read data (mem_backbone)
    Bus mdbIn;         ///< final read-data bus seen by the core
    Bus mdbOut;        ///< write-data bus

    Sig mbWr = kNoGate;
    Sig mbEn = kNoGate;
    Bus mab;

    Sig rstn = kNoGate;
    Sig irq = kNoGate;
};

/// Module builders (one translation unit each).
void buildFrontend(hw::Builder &b, CpuBuild &c);
void buildExecUnit(hw::Builder &b, CpuBuild &c);
void buildMultiplier(hw::Builder &b, CpuBuild &c);
void buildPeripherals(hw::Builder &b, CpuBuild &c);
void buildMemBackbone(hw::Builder &b, CpuBuild &c);

} // namespace msp
} // namespace ulpeak

#endif // ULPEAK_MSP_INTERNAL_HH
