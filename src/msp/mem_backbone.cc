/**
 * @file
 * Memory backbone: per-state address selection, write-data selection,
 * and read-data routing between the RAM/ROM macro (behavioral hook)
 * and the in-netlist peripheral registers -- the openMSP430
 * mem_backbone equivalent.
 */

#include "msp/internal.hh"

namespace ulpeak {
namespace msp {

using hw::Builder;

void
buildMemBackbone(Builder &b, CpuBuild &c)
{
    hw::ModuleScope scope(b, "mem_backbone");
    c.h->modMemBackbone = b.currentModule();

    const auto &st = c.st;
    const DecodeSignals &d = c.dec;

    // ---- Address bus -------------------------------------------------
    Sig fetchy = b.orN({st[kStFetch], st[kStSrcExt], st[kStDstExt]});
    Bus wrAddr = b.busMux(d.isFmtII, c.dstAddr, c.srcaQ);

    std::vector<Sig> sel = {st[kStResetV], fetchy,       st[kStSrcRd],
                            st[kStDstRd],  st[kStDstWr], st[kStPushWr]};
    std::vector<Bus> addr = {b.busConst(16, SystemMap::kResetVector),
                             c.regQ[0],
                             c.srcAddr,
                             c.dstAddr,
                             wrAddr,
                             c.spMinus2};
    Bus mab = b.busMuxOneHot(sel, addr);

    Sig mbEn = b.orN(sel);
    Sig mbWr = b.or2(st[kStDstWr], st[kStPushWr]);

    // ---- Write data ----------------------------------------------------
    // DSTWR stores the EXEC-latched result; PUSHWR stores the operand
    // (or the return address for CALL).
    Bus pushData = b.busMux(d.isCall, c.srcVal, c.regQ[0]);
    Bus mdbOut = b.busMux(st[kStPushWr], c.resvQ, pushData);

    // Drive the top-level declared wires.
    b.busWireConnect(c.mab, mab);
    b.wireConnect(c.mbEn, mbEn);
    b.wireConnect(c.mbWr, mbWr);
    b.busWireConnect(c.mdbOut, mdbOut);

    // ---- Peripheral read mux -------------------------------------------
    Bus addrWord(8);
    for (unsigned i = 0; i < 8; ++i)
        addrWord[i] = c.mab[i + 1];
    Sig isPeriph = b.inv(b.orN({c.mab[9], c.mab[10], c.mab[11],
                                c.mab[12], c.mab[13], c.mab[14],
                                c.mab[15]}));
    auto rdSel = [&](uint32_t a) {
        return hw::equalConst(b, addrWord, (a >> 1) & 0xff);
    };

    std::vector<Sig> psel = {
        rdSel(SystemMap::kSfrIe),  rdSel(SystemMap::kSfrIfg),
        rdSel(SystemMap::kPortIn), rdSel(SystemMap::kPortOut),
        rdSel(SystemMap::kWdtCtl), rdSel(SystemMap::kMpy),
        rdSel(SystemMap::kMpys),   rdSel(SystemMap::kOp2),
        rdSel(SystemMap::kResLo),  rdSel(SystemMap::kResHi),
        rdSel(SystemMap::kDbgCtl), rdSel(SystemMap::kDbgData)};
    std::vector<Bus> pdata = {c.sfrIeQ, c.sfrIfgQ,    c.h->portIn,
                              c.poutQ,  c.wdtReadData, c.mpyQ,
                              c.mpyQ,   c.op2Q,        c.resloQ,
                              c.reshiQ, c.dbg0Q,       c.dbg1Q};

    // Gate the selects with the access enable so idle cycles keep the
    // read network quiet.
    for (Sig &s : psel)
        s = b.and2(s, c.mbEn);
    Bus muxed = b.busMuxOneHot(psel, pdata);
    Sig anySel = b.orN(psel);
    // Unmapped peripheral addresses read 0xffff (pulled-up bus), as in
    // the ISS.
    Bus periphData = b.busMux(anySel, b.busConst(16, 0xffff), muxed);
    c.periphRData = periphData;

    // ---- Final read-data routing ----------------------------------------
    b.busWireConnect(c.mdbIn, b.busMux(isPeriph, c.h->memData,
                                       periphData));
}

} // namespace msp
} // namespace ulpeak
