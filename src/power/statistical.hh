/**
 * @file
 * Statistical activity propagation -- the "design tool" rating.
 *
 * The paper's design-specification baseline performs power analysis
 * "using the default input toggle rate used by our design tools"
 * (Section 4.2), i.e. no simulation: every primary input and register
 * output is assumed to toggle at a default rate with static
 * probability 0.5, and activity is propagated through the
 * combinational network. We implement the classic Najm-style
 * estimator: exact signal probabilities per cell (inputs assumed
 * independent) and transition densities via Boolean differences.
 */

#ifndef ULPEAK_POWER_STATISTICAL_HH
#define ULPEAK_POWER_STATISTICAL_HH

#include "netlist/netlist.hh"

namespace ulpeak {
namespace power {

struct StatisticalResult {
    double totalPowerW = 0.0;
    double switchingPowerW = 0.0;
    double clockPowerW = 0.0;
    double leakagePowerW = 0.0;
    /** Per-gate toggle density (transitions per cycle). */
    std::vector<double> density;
    /** Per-gate static probability of logic 1. */
    std::vector<double> probOne;
};

/**
 * Estimate average power with all sources toggling at
 * @p default_toggle_rate transitions/cycle and P(1)=0.5.
 *
 * The returned figure is the design-tool power *rating* of the design
 * at this operating point; the paper's design-spec peak-power
 * requirement is exactly this number (and its peak-energy requirement
 * is this number times the clock period, flat over the whole run).
 */
StatisticalResult statisticalPower(const Netlist &nl, double freq_hz,
                                   double default_toggle_rate = 0.2);

} // namespace power
} // namespace ulpeak

#endif // ULPEAK_POWER_STATISTICAL_HH
