/**
 * @file
 * Tests of the symbolic engine (Algorithm 1): path exploration,
 * forking on X program counters, state dedup for input-dependent
 * loops, the execution tree, and failure modes (X stores, indirect
 * jumps through unknowns, unbounded loops).
 */

#include <gtest/gtest.h>

#include "sym/symbolic_engine.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

sym::SymbolicResult
runSym(const std::string &body, sym::SymbolicConfig cfg = {})
{
    msp::System &sys = test::sharedSystem();
    sym::SymbolicEngine engine(sys, cfg);
    return engine.run(isa::assemble(test::wrapProgram(body)));
}

TEST(Symbolic, StraightLineIsOnePath)
{
    auto r = runSym(R"(
        mov #5, r4
        add #3, r4
    )");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.pathsExplored, 1u);
    EXPECT_EQ(r.dedupMerges, 0u);
    EXPECT_GT(r.peakPowerW, 0.0);
    EXPECT_GT(r.peakEnergyJ, 0.0);
}

TEST(Symbolic, ConcreteBranchDoesNotFork)
{
    auto r = runSym(R"(
        mov #3, r4
sl_loop:
        dec r4
        jnz sl_loop
    )");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.pathsExplored, 1u) << "concrete loops never fork";
}

TEST(Symbolic, XBranchForksBothWays)
{
    auto r = runSym(R"(
        mov &0x0020, r4     ; X from the port
        tst r4
        jz was_zero
        mov #1, r5
        jmp join
was_zero:
        mov #2, r5
join:
    )");
    ASSERT_TRUE(r.ok) << r.error;
    // Root + two branch paths.
    EXPECT_EQ(r.pathsExplored, 3u);
    EXPECT_GE(r.tree.numNodes(), 3u);
}

TEST(Symbolic, InputDependentLoopDedups)
{
    // A counting loop whose exit depends on X data, but whose state
    // converges (the counter is the only difference and it is X):
    // Algorithm 1 line 19 terminates it.
    sym::SymbolicConfig cfg;
    cfg.inputDependentLoopBound = 8; // for the surviving back-edge
    auto r = runSym(R"(
        mov &0x0020, r4
xl_loop:
        rra r4              ; X stays X
        tst r4
        jnz xl_back
        jmp xl_done
xl_back:
        jmp xl_loop
xl_done:
    )",
                    cfg);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.dedupMerges, 0u) << "loop states must merge";
}

TEST(Symbolic, PeakEnergyTakesWorseBranch)
{
    // One branch multiplies (expensive), the other is a nop; the
    // peak-energy path must include the multiplier branch.
    auto expensive = runSym(R"(
        mov &0x0020, r4
        tst r4
        jz cheap
        mov r4, &0x0130
        mov r4, &0x0138
        mov &0x013a, r5
        mov r4, &0x0130
        mov r4, &0x0138
        mov &0x013a, r6
cheap:
    )");
    ASSERT_TRUE(expensive.ok) << expensive.error;
    auto cheapOnly = runSym(R"(
        mov &0x0020, r4
        tst r4
        jz cheap2
        nop
cheap2:
    )");
    ASSERT_TRUE(cheapOnly.ok);
    EXPECT_GT(expensive.peakEnergyJ, cheapOnly.peakEnergyJ);
    EXPECT_GT(expensive.maxPathCycles, cheapOnly.maxPathCycles);
}

TEST(Symbolic, XStoreFaults)
{
    // Store through an X pointer: rejected (DESIGN.md section 5).
    auto r = runSym(R"(
        mov &0x0020, r4
        and #0x07fe, r4
        add #0x0200, r4     ; somewhere in RAM, but unknown
        mov #1, 0(r4)
    )");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("X-store"), std::string::npos) << r.error;
}

TEST(Symbolic, IndirectJumpThroughXRejected)
{
    auto r = runSym(R"(
        mov &0x0020, r4
        and #0x000e, r4
        add #0xf800, r4
        mov r4, pc          ; computed branch through X
    )");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unresolvable"), std::string::npos)
        << r.error;
}

TEST(Symbolic, UnboundedInputLoopNeedsBound)
{
    // Busy-wait on an input bit: the state repeats exactly, producing
    // a true back-edge. Without a bound the energy computation must
    // refuse; with one it must succeed (Section 3.3).
    const char *body = R"(
        mov #0, sr
bw_wait:
        mov &0x0020, r4
        and #1, r4
        jnz bw_wait
    )";
    auto r = runSym(body);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("loop"), std::string::npos) << r.error;

    sym::SymbolicConfig cfg;
    cfg.inputDependentLoopBound = 10;
    auto bounded = runSym(body, cfg);
    ASSERT_TRUE(bounded.ok) << bounded.error;
    EXPECT_GT(bounded.dedupMerges, 0u);
    // Peak power is still well-defined either way.
    EXPECT_GT(bounded.peakPowerW, 0.0);
}

TEST(Symbolic, ActiveSetsRecorded)
{
    sym::SymbolicConfig cfg;
    cfg.recordActiveSets = true;
    auto r = runSym(R"(
        mov #0x1234, r4
        mov r4, &0x0130
        mov #0x5678, &0x0138
        mov &0x013a, r5
    )",
                    cfg);
    ASSERT_TRUE(r.ok) << r.error;
    size_t ever = 0;
    for (uint8_t a : r.everActive)
        ever += a;
    EXPECT_GT(ever, 1000u);
    EXPECT_FALSE(r.peakActive.empty());
    EXPECT_LE(r.peakActive.size(), ever);
}

TEST(Symbolic, ModuleTraceRecorded)
{
    sym::SymbolicConfig cfg;
    cfg.recordModuleTrace = true;
    auto r = runSym("        mov #5, r4\n", cfg);
    ASSERT_TRUE(r.ok) << r.error;
    const sym::TreeNode &root = r.tree.node(0);
    ASSERT_EQ(root.modulePowerW.size(), root.powerW.size());
    ASSERT_EQ(root.cycleInfo.size(), root.powerW.size());
}

TEST(Symbolic, TreeFlattenCoversAllNodes)
{
    auto r = runSym(R"(
        mov &0x0020, r4
        tst r4
        jz fz
        nop
fz:
        nop
    )");
    ASSERT_TRUE(r.ok);
    auto flat = r.tree.flatten();
    EXPECT_EQ(flat.size(), r.tree.totalCycles());
}

// The two simulation kernels and the parallel explorer must agree on
// every number the engine reports; compare against the serial
// full-sweep reference on a program with forks and dedup merges.
void
expectSameResult(const sym::SymbolicResult &a,
                 const sym::SymbolicResult &b)
{
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.peakPowerW, b.peakPowerW);
    EXPECT_EQ(a.peakEnergyJ, b.peakEnergyJ);
    EXPECT_EQ(a.npeJPerCycle, b.npeJPerCycle);
    EXPECT_EQ(a.maxPathCycles, b.maxPathCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.pathsExplored, b.pathsExplored);
    EXPECT_EQ(a.dedupMerges, b.dedupMerges);
    EXPECT_EQ(a.tree.numNodes(), b.tree.numNodes());
    // The flattened trace is invariant under tree-node renumbering.
    EXPECT_EQ(a.tree.flatten(), b.tree.flatten());
}

const char *kBranchyBody = R"(
        mov &0x0020, r4
br_loop:
        rra r4
        tst r4
        jnz br_back
        jmp br_done
br_back:
        tst r5
        jz br_loop
        jmp br_loop
br_done:
        mov r4, &0x0500
)";

TEST(Symbolic, FullSweepKernelMatchesEventDriven)
{
    sym::SymbolicConfig ev;
    ev.inputDependentLoopBound = 8;
    sym::SymbolicConfig fs = ev;
    fs.evalMode = EvalMode::FullSweep;
    expectSameResult(runSym(kBranchyBody, ev),
                     runSym(kBranchyBody, fs));
}

TEST(Symbolic, ParallelExplorationMatchesSerial)
{
    sym::SymbolicConfig serial;
    serial.inputDependentLoopBound = 8;
    sym::SymbolicConfig par = serial;
    par.numThreads = 3;
    auto a = runSym(kBranchyBody, serial);
    auto b = runSym(kBranchyBody, par);
    expectSameResult(a, b);
    // And again: parallel exploration is reproducible run to run.
    expectSameResult(b, runSym(kBranchyBody, par));
}

TEST(Symbolic, ParallelActiveSetsMatchSerial)
{
    sym::SymbolicConfig serial;
    serial.inputDependentLoopBound = 8;
    serial.recordActiveSets = true;
    sym::SymbolicConfig par = serial;
    par.numThreads = 2;
    auto a = runSym(kBranchyBody, serial);
    auto b = runSym(kBranchyBody, par);
    expectSameResult(a, b);
    EXPECT_EQ(a.everActive, b.everActive);
    EXPECT_EQ(a.peakActive, b.peakActive);
}

TEST(Symbolic, CycleBudgetEnforced)
{
    sym::SymbolicConfig cfg;
    cfg.maxTotalCycles = 50;
    auto r = runSym(R"(
        mov #10000, r4
cb_loop:
        dec r4
        jnz cb_loop
    )",
                    cfg);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("budget"), std::string::npos);
}

} // namespace
} // namespace ulpeak
