/**
 * @file
 * Entry point of the `ulfuzz` differential fuzzing tool. All logic
 * lives in cli::runFuzzCli so the driver is testable without spawning
 * a process.
 */

#include "cli/fuzz_driver.hh"

int
main(int argc, char **argv)
{
    return ulpeak::cli::runFuzzCli(argc, argv);
}
