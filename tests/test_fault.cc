/**
 * @file
 * Tests of the SEU fault-injection subsystem (src/fault): outcome
 * classification, injection semantics (X-bit no-ops, double flips,
 * reset-cycle flips), divergence-report anatomy under faults, the
 * packed-vs-scalar lane-identity contract, and campaign determinism
 * (jobs / packed / cache) plus the cache-key exclusion rules.
 *
 * Suites named *Long* are excluded from the quick ctest label and run
 * under `ctest -L long` (see CMakeLists.txt and docs/testing.md).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "fault/campaign.hh"
#include "fault/fault.hh"
#include "fuzz/netlist_gen.hh"
#include "fuzz/program_gen.hh"
#include "fuzz/properties.hh"
#include "fuzz/rng.hh"
#include "power/analysis.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

/** A small deterministic program: a loop with register traffic, a
 *  store and a load, so register flips have something to corrupt. */
isa::Image
loopImage()
{
    return isa::assemble(test::wrapProgram(R"(
        mov #6, r4
        mov #0, r5
f_loop:
        add r4, r5
        dec r4
        jnz f_loop
        mov r5, &0x0300
        mov &0x0300, r7
    )"));
}

/** The flop site whose gate name is @p name (e.g. "r5[0]"). */
fault::Site
siteByName(const Netlist &nl, const std::string &name)
{
    for (const fault::Site &s : fault::flopSites(nl)) {
        if (fault::siteName(nl, s) == name)
            return s;
    }
    ADD_FAILURE() << "no flop site named " << name;
    return {};
}

TEST(FaultClassify, MapsEveryDivergenceKind)
{
    using K = cosim::Divergence::Kind;
    cosim::Result r;
    r.ok = true;
    EXPECT_EQ(fault::classify(r), fault::Outcome::Masked);
    r.ok = false;
    const std::pair<K, fault::Outcome> table[] = {
        {K::GateTimeout, fault::Outcome::Hang},
        {K::GateX, fault::Outcome::Crash},
        {K::Pc, fault::Outcome::Sdc},
        {K::Register, fault::Outcome::Sdc},
        {K::MemWrite, fault::Outcome::Sdc},
        {K::FinalMemory, fault::Outcome::Sdc},
        {K::Cycles, fault::Outcome::Sdc},
        {K::Halt, fault::Outcome::Sdc},
        {K::IssTrap, fault::Outcome::Sdc},
    };
    for (auto [kind, outcome] : table) {
        r.divergence.kind = kind;
        EXPECT_EQ(fault::classify(r), outcome);
    }
}

TEST(FaultRun, ZeroInjectionsReproduceTheGoldenRun)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img = loopImage();
    cosim::Result golden = cosim::run(sys, img, {});
    ASSERT_TRUE(golden.ok) << golden.report();

    fault::RunOptions opts;
    fault::FaultResult r = fault::runFaulted(sys, img, {}, opts);
    EXPECT_EQ(r.outcome, fault::Outcome::Masked);
    EXPECT_FALSE(r.applied);
    EXPECT_EQ(r.kind, cosim::Divergence::Kind::None);
    EXPECT_EQ(r.gateCycles, golden.gateCycles);
    EXPECT_EQ(r.instructionsRetired, golden.instructionsRetired);
    EXPECT_TRUE(r.report.empty());
}

TEST(FaultRun, DoubleFlipOfTheSameBitIsAppliedButMasked)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img = loopImage();
    cosim::Result golden = cosim::run(sys, img, {});
    ASSERT_TRUE(golden.ok) << golden.report();
    fault::Site site = siteByName(sys.netlist(), "r5[0]");
    uint64_t cycle = golden.gateCycles / 2;

    std::vector<fault::Injection> faults{{site, cycle}, {site, cycle}};
    fault::FaultResult r =
        fault::runFaulted(sys, img, faults, fault::RunOptions{});
    EXPECT_TRUE(r.applied) << "both flips landed on a known bit";
    EXPECT_EQ(r.outcome, fault::Outcome::Masked)
        << "flip twice = identity; report:\n"
        << r.report;
}

TEST(FaultRun, FlippingAnXBitIsANoOp)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img = loopImage();

    // An uninitialized RAM word is X on the gate side: the flip must
    // refuse (X already subsumes both values) and the run stay golden.
    fault::Site site;
    site.kind = fault::SiteKind::Ram;
    site.addr = 0x0700;
    site.bit = 3;
    std::vector<fault::Injection> faults{
        {site, msp::System::kResetCycles + 4}};
    fault::FaultResult r =
        fault::runFaulted(sys, img, faults, fault::RunOptions{});
    EXPECT_FALSE(r.applied);
    EXPECT_EQ(r.outcome, fault::Outcome::Masked);
}

TEST(FaultRun, ResetCycleFlipsAreInjectableAndClassified)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img = loopImage();
    fault::Site site = siteByName(sys.netlist(), "r5[0]");

    // Cycle 2 lies inside the reset sequence; the flip must land (the
    // bit is driven, hence known) and the run still classify -- reset
    // usually scrubs it back to Masked, but any outcome is legal.
    std::vector<fault::Injection> faults{{site, 2}};
    fault::FaultResult scalarR =
        fault::runFaulted(sys, img, faults, fault::RunOptions{});
    std::array<std::vector<fault::Injection>,
               PackedSimulator::kLanes>
        lanes;
    lanes[0] = faults;
    auto packedR =
        fault::runFaultedPacked(sys, img, lanes, fault::RunOptions{});
    EXPECT_TRUE(scalarR.sameClassification(packedR[0]));
    EXPECT_EQ(packedR[1].outcome, fault::Outcome::Masked)
        << "fault-free lane";
}

TEST(FaultRun, RegisterFlipReportsExactDivergenceAnatomy)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img = loopImage();
    cosim::Result golden = cosim::run(sys, img, {});
    ASSERT_TRUE(golden.ok) << golden.report();

    // Flip the live accumulator bit 0 right before the final store:
    // the sum is off by one, so the store (or the register compare at
    // the next boundary) must diverge -- silent data corruption.
    fault::Site site = siteByName(sys.netlist(), "r5[0]");
    uint64_t cycle = golden.gateCycles - 30;
    std::vector<fault::Injection> faults{{site, cycle}};
    fault::FaultResult r =
        fault::runFaulted(sys, img, faults, fault::RunOptions{});
    ASSERT_TRUE(r.applied);
    ASSERT_EQ(r.outcome, fault::Outcome::Sdc) << r.report;
    EXPECT_NE(r.kind, cosim::Divergence::Kind::None);

    // First-divergent-cycle exactness: at or after the injection,
    // within the faulted run's own length.
    EXPECT_GE(r.divergenceCycle, cycle);
    EXPECT_LE(r.divergenceCycle, r.gateCycles);
    EXPECT_LE(r.instrIndex, r.instructionsRetired);

    // Report anatomy: named kind, first-at line carrying the exact
    // cycle, and a bounded disassembly window marking the faulting
    // instruction.
    EXPECT_NE(r.report.find("first at:"), std::string::npos);
    EXPECT_NE(r.report.find("gate cycle " +
                            std::to_string(r.divergenceCycle)),
              std::string::npos);
    EXPECT_NE(r.report.find("window:"), std::string::npos);
    EXPECT_NE(r.report.find("> 0x"), std::string::npos);
    size_t window = r.report.find("window:");
    unsigned rows = 0;
    for (size_t p = r.report.find("0x", window);
         p != std::string::npos && p + 6 < r.report.size();
         p = r.report.find("0x", p + 1)) {
        if (r.report[p + 6] == ':')
            ++rows; // "0xf8..:" address column rows only
    }
    EXPECT_GE(rows, 1u);
    EXPECT_LE(rows, 7u) << "disasm window is bounded:\n" << r.report;
}

TEST(FaultRun, PackedLanesMatchScalarRuns)
{
    constexpr unsigned kLanes = PackedSimulator::kLanes;
    msp::System &sys = test::sharedSystem();
    isa::Image img = loopImage();
    cosim::Result golden = cosim::run(sys, img, {});
    ASSERT_TRUE(golden.ok) << golden.report();

    std::vector<fault::Site> sites =
        fault::flopSites(sys.netlist());
    power::PowerContext ctx(sys.netlist(), 100e6);
    fault::RunOptions opts;
    opts.powerCtx = &ctx;

    // 64 distinct injections spread over sites and cycles (including
    // a fault-free lane and a double-flip lane).
    fuzz::Rng rng(2026);
    std::array<std::vector<fault::Injection>, kLanes> lanes;
    for (unsigned l = 1; l < kLanes; ++l) {
        fault::Injection inj;
        inj.site = sites[rng.below(unsigned(sites.size()))];
        inj.cycle = rng.below(unsigned(golden.gateCycles));
        lanes[l].push_back(inj);
        if (l == 2)
            lanes[l].push_back(inj); // double flip
    }

    auto packed = fault::runFaultedPacked(sys, img, lanes, opts);
    for (unsigned l = 0; l < kLanes; ++l) {
        fault::FaultResult scalar =
            fault::runFaulted(sys, img, lanes[l], opts);
        EXPECT_TRUE(scalar.sameClassification(packed[l]))
            << "lane " << l << ": scalar "
            << fault::outcomeName(scalar.outcome) << " @"
            << scalar.divergenceCycle << " peak " << scalar.peakPowerW
            << ", packed " << fault::outcomeName(packed[l].outcome)
            << " @" << packed[l].divergenceCycle << " peak "
            << packed[l].peakPowerW;
        EXPECT_TRUE(packed[l].report.empty());
    }
}

TEST(FaultPower, ApplyPowerTraceFindsFirstPeakAndEscapes)
{
    fault::FaultResult r;
    std::vector<float> trace{1.0f, 3.0f, 2.0f, 3.0f};
    fault::applyPowerTrace(r, trace, nullptr);
    EXPECT_EQ(r.traceCycles, 4u);
    EXPECT_EQ(r.peakPowerW, 3.0f);
    EXPECT_EQ(r.peakCycle, 1u) << "first argmax wins";
    EXPECT_FALSE(r.envelopeEscape);

    peak::Envelope env;
    env.present = true;
    env.powerW = {2.0f, 2.0f, 2.0f, 2.0f};
    fault::applyPowerTrace(r, trace, &env);
    EXPECT_TRUE(r.envelopeEscape);
    EXPECT_EQ(r.escapeCycle, 1u);

    env.powerW = {4.0f, 4.0f, 4.0f, 4.0f};
    fault::applyPowerTrace(r, trace, &env);
    EXPECT_FALSE(r.envelopeEscape);
}

TEST(FaultCampaign, RowsAreIdenticalAcrossJobsPackedAndCache)
{
    isa::Image img = loopImage();
    CellLibrary lib = CellLibrary::tsmc65Like();
    fault::CampaignOptions opts;
    opts.seed = 11;
    opts.maxFlopSites = 10;
    opts.cyclesPerSite = 2;
    opts.ramSites = 2;

    fault::CampaignResult a = fault::runCampaign(lib, img, opts);
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_EQ(a.injections.size(), 24u);
    EXPECT_EQ(a.hangCycles, 4 * a.goldenCycles + 64)
        << "auto hang budget";
    EXPECT_EQ(a.masked + a.sdc + a.crash + a.hang,
              a.injections.size());

    opts.jobs = 3;
    fault::CampaignResult b = fault::runCampaign(lib, img, opts);
    opts.jobs = 1;
    opts.packed = false;
    fault::CampaignResult c = fault::runCampaign(lib, img, opts);
    ASSERT_TRUE(b.ok && c.ok);
    for (size_t i = 0; i < a.injections.size(); ++i) {
        EXPECT_TRUE(a.injections[i].r.sameClassification(
            b.injections[i].r))
            << "row " << i << " differs across --jobs";
        EXPECT_TRUE(a.injections[i].r.sameClassification(
            c.injections[i].r))
            << "row " << i << " differs packed vs scalar";
    }

    // Cache round trip: cold store, warm hit, identical rows.
    // TempDir persists across test-binary runs, so evict this key's
    // entry first to make the first run genuinely cold.
    opts.packed = true;
    opts.cacheDir = ::testing::TempDir() + "ulfault-cache";
    char stale[600];
    std::snprintf(stale, sizeof stale, "%s/fault-%016llx.txt",
                  opts.cacheDir.c_str(),
                  (unsigned long long)fault::campaignCacheKey(lib, img,
                                                              opts));
    std::remove(stale);
    fault::CampaignResult cold = fault::runCampaign(lib, img, opts);
    fault::CampaignResult warm = fault::runCampaign(lib, img, opts);
    ASSERT_TRUE(cold.ok && warm.ok);
    EXPECT_FALSE(cold.cacheHit);
    EXPECT_TRUE(warm.cacheHit);
    ASSERT_EQ(warm.injections.size(), a.injections.size());
    for (size_t i = 0; i < a.injections.size(); ++i)
        EXPECT_TRUE(a.injections[i].r.sameClassification(
            warm.injections[i].r))
            << "row " << i << " differs after the cache round trip";
}

TEST(FaultCampaign, CacheKeyExcludesExecutionStrategyOnly)
{
    isa::Image img = loopImage();
    CellLibrary lib = CellLibrary::tsmc65Like();
    fault::CampaignOptions opts;
    opts.maxFlopSites = 10;
    uint64_t base = fault::campaignCacheKey(lib, img, opts);

    // The determinism contract: jobs / packed / evalMode cannot
    // change any row, so they must not change the key.
    fault::CampaignOptions o = opts;
    o.jobs = 8;
    EXPECT_EQ(fault::campaignCacheKey(lib, img, o), base);
    o = opts;
    o.packed = false;
    EXPECT_EQ(fault::campaignCacheKey(lib, img, o), base);
    o = opts;
    o.evalMode = EvalMode::FullSweep;
    EXPECT_EQ(fault::campaignCacheKey(lib, img, o), base);

    // Everything result-affecting must.
    o = opts;
    o.seed = 2;
    EXPECT_NE(fault::campaignCacheKey(lib, img, o), base);
    o = opts;
    o.cyclesPerSite = 3;
    EXPECT_NE(fault::campaignCacheKey(lib, img, o), base);
    o = opts;
    o.maxFlopSites = 11;
    EXPECT_NE(fault::campaignCacheKey(lib, img, o), base);
    o = opts;
    o.ramSites = 1;
    EXPECT_NE(fault::campaignCacheKey(lib, img, o), base);
    o = opts;
    o.portIn = 1;
    EXPECT_NE(fault::campaignCacheKey(lib, img, o), base);
    o = opts;
    o.withEnvelope = true;
    EXPECT_NE(fault::campaignCacheKey(lib, img, o), base);

    isa::Image img2 = img;
    img2.segments.front().words.back() ^= 1;
    EXPECT_NE(fault::campaignCacheKey(lib, img2, opts), base);
}

TEST(FaultCampaign, RefusesADivergingGoldenRun)
{
    // Reading an uninitialized RAM word is X on the gate side and 0
    // in the ISS: the unfaulted run itself diverges, and classifying
    // faults on top of that would be meaningless.
    isa::Image img = isa::assemble(test::wrapProgram(R"(
        mov &0x0400, r4
        mov r4, &0x0300
    )"));
    fault::CampaignOptions opts;
    opts.maxFlopSites = 4;
    fault::CampaignResult r =
        fault::runCampaign(CellLibrary::tsmc65Like(), img, opts);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("golden run diverges"), std::string::npos)
        << r.error;
    EXPECT_TRUE(r.injections.empty());
}

TEST(FaultCampaign, SiteAndCycleDerivationIsSeedStable)
{
    msp::System &sys = test::sharedSystem();
    fault::CampaignOptions opts;
    opts.seed = 5;
    opts.maxFlopSites = 8;
    opts.ramSites = 3;
    std::vector<fault::Site> a =
        fault::campaignSites(sys.netlist(), sys, opts);
    std::vector<fault::Site> b =
        fault::campaignSites(sys.netlist(), sys, opts);
    ASSERT_EQ(a.size(), 11u);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    for (size_t i = 8; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, fault::SiteKind::Ram);
        EXPECT_GE(a[i].addr, isa::SystemMap::kRamBase);
    }

    std::vector<uint64_t> c1 =
        fault::siteInjectionCycles(opts.seed, 3, 4, 500);
    std::vector<uint64_t> c2 =
        fault::siteInjectionCycles(opts.seed, 3, 4, 500);
    ASSERT_EQ(c1.size(), 4u);
    EXPECT_EQ(c1, c2);
    for (uint64_t c : c1)
        EXPECT_LT(c, 500u);
    EXPECT_NE(c1, fault::siteInjectionCycles(opts.seed, 4, 4, 500));
}

/** Long tier: the fuzz properties at depth (docs/testing.md). */
TEST(FaultFuzzLong, FaultedPackedLaneIdentityOnRandomNetlists)
{
    fuzz::NetlistGenOptions gen;
    for (uint64_t seed = 100; seed < 112; ++seed) {
        fuzz::PropertyResult r =
            fuzz::faultedPackedEquivalenceCheck(seed, gen, 48);
        EXPECT_TRUE(r.ok) << r.detail;
    }
}

TEST(FaultFuzzLong, CampaignDeterminismOnRandomPrograms)
{
    fuzz::ProgramGenOptions gen;
    gen.instructions = 20;
    for (uint64_t seed = 0; seed < 4; ++seed) {
        fuzz::Rng rng(fuzz::Rng::deriveStream(seed, 77));
        fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, gen);
        SCOPED_TRACE(prog.source);
        fuzz::PropertyResult r = fuzz::faultCampaignDeterminismCheck(
            isa::assemble(prog.source), rng.next(), 3);
        EXPECT_TRUE(r.ok) << r.detail;
    }
}

} // namespace
} // namespace ulpeak
