/**
 * @file
 * Tests for the per-operating-mode envelope report
 * (peak::buildModeReport): mode slices, transition detection and
 * settling-window peaks, assertion verdicts, and the low-voltage
 * decap finding -- all on a hand-built envelope so every expected
 * number is checkable by eye.
 */

#include <gtest/gtest.h>

#include "peak/modes.hh"
#include "sizing/sizing.hh"

namespace ulpeak {
namespace peak {
namespace {

/** burst/sleep on a {b, b, s, s} schedule with a hand-picked
 *  8-cycle envelope. */
scenario::Scenario
dutyScenario()
{
    scenario::Scenario s;
    s.name = "duty-test";
    s.modes.push_back({"burst", 1.0, 100e6});
    s.modes.push_back({"sleep", 0.6, 8e6});
    s.modeSchedule = {0, 0, 1, 1};
    return s;
}

Envelope
dutyEnvelope()
{
    Envelope env;
    env.present = true;
    //            burst   burst   sleep   sleep   burst    burst
    env.powerW = {0.004f, 0.005f, 0.003f, 0.001f, 0.0045f, 0.002f,
                  //  sleep    sleep
                  0.0015f, 0.0012f};
    return env;
}

TEST(Modes, AbsentWithoutModesOrEnvelope)
{
    scenario::Scenario plain; // unconstrained, no modes
    EXPECT_FALSE(buildModeReport(dutyEnvelope(), plain, 1.0).present);
    Envelope missing; // analysis ran without envelope recording
    EXPECT_FALSE(buildModeReport(missing, dutyScenario(), 1.0).present);
}

TEST(Modes, SlicesSplitTheEnvelopeByMode)
{
    ModeReport rep =
        buildModeReport(dutyEnvelope(), dutyScenario(), 1.0);
    ASSERT_TRUE(rep.present);
    EXPECT_EQ(rep.envelopeCycles, 8u);
    EXPECT_NEAR(rep.compositePeakW, 0.005, 1e-9);

    ASSERT_EQ(rep.modes.size(), 2u);
    const ModeSlice &burst = rep.modes[0];
    EXPECT_EQ(burst.name, "burst");
    EXPECT_EQ(burst.cycles, 4u); // cycles 0, 1, 4, 5
    EXPECT_NEAR(burst.peakW, 0.005, 1e-9);
    EXPECT_EQ(burst.peakCycle, 1u);
    EXPECT_NEAR(burst.avgW, (0.004 + 0.005 + 0.0045 + 0.002) / 4,
                1e-9);
    EXPECT_NEAR(burst.energyJ,
                (0.004 + 0.005 + 0.0045 + 0.002) / 100e6, 1e-16);

    const ModeSlice &sleep = rep.modes[1];
    EXPECT_EQ(sleep.cycles, 4u); // cycles 2, 3, 6, 7
    EXPECT_NEAR(sleep.peakW, 0.003, 1e-9);
    EXPECT_EQ(sleep.peakCycle, 2u);
    EXPECT_NEAR(sleep.energyJ,
                (0.003 + 0.001 + 0.0015 + 0.0012) / 8e6, 1e-16);
}

TEST(Modes, TransitionsAndSettlingWindows)
{
    scenario::Scenario scen = dutyScenario();
    scen.assertions.push_back({"sleep", 2e-3, 1});
    ModeReport rep = buildModeReport(dutyEnvelope(), scen, 1.0);

    ASSERT_EQ(rep.transitions.size(), 2u);
    // Phase 0 enters burst from the cyclically-previous sleep phase,
    // but cycle 0 itself is reset exit, not a switch: the first
    // counted entry is cycle 4 (and it is the only one in 8 cycles).
    const ModeTransition &toBurst = rep.transitions[0];
    EXPECT_EQ(toBurst.from, "sleep");
    EXPECT_EQ(toBurst.to, "burst");
    EXPECT_EQ(toBurst.phase, 0u);
    EXPECT_EQ(toBurst.occurrences, 1u);
    EXPECT_NEAR(toBurst.peakEntryW, 0.0045, 1e-9);
    EXPECT_EQ(toBurst.settleCycles, 0u); // no assertion names burst
    EXPECT_NEAR(toBurst.peakSettleW, 0.0045, 1e-9);

    const ModeTransition &toSleep = rep.transitions[1];
    EXPECT_EQ(toSleep.from, "burst");
    EXPECT_EQ(toSleep.to, "sleep");
    EXPECT_EQ(toSleep.phase, 2u);
    EXPECT_EQ(toSleep.occurrences, 2u); // cycles 2 and 6
    EXPECT_NEAR(toSleep.peakEntryW, 0.003, 1e-9);
    EXPECT_EQ(toSleep.settleCycles, 1u); // widest sleep assertion
    EXPECT_NEAR(toSleep.peakSettleW, 0.003, 1e-9);
}

TEST(Modes, AssertionsRespectSettlingWindows)
{
    scenario::Scenario scen = dutyScenario();
    // Entry cycles (2 and 6) exceed 2 mW but sit inside the 1-cycle
    // settling window; the settled cycles (3 and 7) are under it.
    scen.assertions.push_back({"sleep", 2e-3, 1});
    // No settling exemption and a floor below every sleep cycle.
    scen.assertions.push_back({"sleep", 0.9e-3, 0});
    ModeReport rep = buildModeReport(dutyEnvelope(), scen, 1.0);

    ASSERT_EQ(rep.assertions.size(), 2u);
    const ModeAssertionResult &settled = rep.assertions[0];
    EXPECT_TRUE(settled.pass);
    EXPECT_EQ(settled.checkedCycles, 2u); // cycles 3 and 7
    EXPECT_EQ(settled.violations, 0u);

    const ModeAssertionResult &strict = rep.assertions[1];
    EXPECT_FALSE(strict.pass);
    EXPECT_EQ(strict.checkedCycles, 4u);
    EXPECT_EQ(strict.violations, 4u);
    EXPECT_EQ(strict.firstViolationCycle, 2u);
    EXPECT_NEAR(strict.maxExcessW, 0.003 - 0.9e-3, 1e-9);

    EXPECT_FALSE(rep.allAssertionsPass());
}

TEST(Modes, LowVoltageModeRaisesDecapFinding)
{
    // sleep at 0.6 V sits under the 0.95 V droop floor of a 1.0 V
    // rail: exactly the input sizing::decapFarads now refuses.
    ModeReport rep =
        buildModeReport(dutyEnvelope(), dutyScenario(), 1.0);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_NE(rep.findings[0].find("sleep"), std::string::npos);
    EXPECT_NE(rep.findings[0].find("0.95"), std::string::npos);

    // Every mode above the floor: nothing to report.
    scenario::Scenario safe = dutyScenario();
    safe.modes[1].vdd = 0.96;
    EXPECT_TRUE(
        buildModeReport(dutyEnvelope(), safe, 1.0).findings.empty());
}

} // namespace
} // namespace peak
} // namespace ulpeak
