/**
 * @file
 * Tests of the peak-analysis layer: the literal Algorithm 2 even/odd
 * VCD construction and its equivalence to the online per-cycle bound,
 * the execution-tree energy computation, COI reporting, and the
 * Section 3.4 validation utilities.
 */

#include <gtest/gtest.h>

#include "peak/coi.hh"
#include "peak/even_odd.hh"
#include "peak/peak_analysis.hh"
#include "peak/validation.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

TEST(EvenOdd, LiteralAlgorithm2MatchesOnlineBound)
{
    // Record a window of symbolic simulation (X port inputs), build
    // the even- and odd-maximizing VCDs, run activity-based power
    // analysis over both, interleave -- the result must equal the
    // online per-cycle bound, cycle for cycle.
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(test::wrapProgram(R"(
        mov &0x0020, r4
        mov r4, &0x0130
        mov &0x0020, r5
        mov r5, &0x0138
        mov &0x013a, r6
        add r6, r4
        xor r4, r5
    )"));
    peak::GateTrace trace = peak::recordGateTrace(sys, img, 60);
    ASSERT_GT(trace.values.size(), 30u);

    std::string evenVcd = peak::buildMaxVcd(sys.netlist(), trace, true);
    std::string oddVcd = peak::buildMaxVcd(sys.netlist(), trace, false);
    auto evenE = peak::switchingEnergyFromVcd(sys.netlist(), evenVcd);
    auto oddE = peak::switchingEnergyFromVcd(sys.netlist(), oddVcd);
    auto peakTrace = peak::interleave(evenE, oddE);

    ASSERT_EQ(peakTrace.size(), trace.onlineBoundJ.size());
    for (size_t c = 1; c < peakTrace.size(); ++c) {
        EXPECT_NEAR(peakTrace[c], trace.onlineBoundJ[c],
                    1e-6 * trace.onlineBoundJ[c] + 1e-20)
            << "cycle " << c;
    }
}

TEST(EvenOdd, AssignedVcdsContainNoXOnToggledGates)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img =
        isa::assemble(test::wrapProgram("        mov &0x0020, r4\n"));
    peak::GateTrace trace = peak::recordGateTrace(sys, img, 20);
    std::string vcd = peak::buildMaxVcd(sys.netlist(), trace, true);
    // Spot property: the even VCD has strictly more known values than
    // the raw trace (assignment resolved Xs).
    size_t rawX = 0;
    for (auto &cyc : trace.values)
        for (V4 v : cyc)
            rawX += v == V4::X;
    size_t vcdX = 0;
    for (char ch : vcd)
        vcdX += ch == 'x';
    EXPECT_LT(vcdX, rawX);
}

TEST(EvenOdd, EmptyTraceDegeneratesGracefully)
{
    // Algorithm 2 over a zero-cycle trace: valid (header-only) VCDs,
    // no per-cycle energies, empty interleave -- no special-casing
    // required anywhere in the pipeline.
    msp::System &sys = test::sharedSystem();
    peak::GateTrace trace; // empty
    std::string evenVcd = peak::buildMaxVcd(sys.netlist(), trace, true);
    std::string oddVcd = peak::buildMaxVcd(sys.netlist(), trace, false);
    EXPECT_FALSE(evenVcd.empty()) << "header must still be emitted";
    auto evenE = peak::switchingEnergyFromVcd(sys.netlist(), evenVcd);
    auto oddE = peak::switchingEnergyFromVcd(sys.netlist(), oddVcd);
    EXPECT_TRUE(evenE.empty());
    EXPECT_TRUE(oddE.empty());
    EXPECT_TRUE(peak::interleave(evenE, oddE).empty());
    EXPECT_TRUE(trace.onlineBoundJ.empty());
}

TEST(EvenOdd, SingleCycleTraceIsWellFormed)
{
    // One-cycle window: the pipeline stays well-formed end to end.
    // Cycle 0 of a VCD has no predecessor, so the file-based flow
    // reports zero switching energy there (which is why every
    // trace-equivalence comparison in this file starts at cycle 1);
    // the sizes and the construction itself must still hold.
    msp::System &sys = test::sharedSystem();
    isa::Image img =
        isa::assemble(test::wrapProgram("        mov #1, r4\n"));
    peak::GateTrace trace = peak::recordGateTrace(sys, img, 1);
    ASSERT_EQ(trace.values.size(), 1u);
    ASSERT_EQ(trace.active.size(), 1u);
    ASSERT_EQ(trace.onlineBoundJ.size(), 1u);
    std::string evenVcd = peak::buildMaxVcd(sys.netlist(), trace, true);
    std::string oddVcd = peak::buildMaxVcd(sys.netlist(), trace, false);
    auto peakTrace =
        peak::interleave(peak::switchingEnergyFromVcd(sys.netlist(),
                                                      evenVcd),
                         peak::switchingEnergyFromVcd(sys.netlist(),
                                                      oddVcd));
    ASSERT_EQ(peakTrace.size(), 1u);
    EXPECT_EQ(peakTrace[0], 0.0) << "no transition before cycle 0";
}

TEST(EvenOdd, AllUnknownInputWindowStaysEquivalent)
{
    // The cycles right after reset are the X-heaviest window the
    // flow ever sees (uninitialized registers + X ports): the literal
    // even/odd construction must still equal the online bound there.
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(test::wrapProgram(
        "        mov &0x0020, r4\n        mov &0x0020, r5\n"));
    peak::GateTrace trace = peak::recordGateTrace(sys, img, 6);
    ASSERT_EQ(trace.values.size(), 6u);
    size_t xGates = 0;
    for (V4 v : trace.values[0])
        xGates += v == V4::X;
    EXPECT_GT(xGates, 0u) << "window must actually contain Xs";
    std::string evenVcd = peak::buildMaxVcd(sys.netlist(), trace, true);
    std::string oddVcd = peak::buildMaxVcd(sys.netlist(), trace, false);
    auto peakTrace =
        peak::interleave(peak::switchingEnergyFromVcd(sys.netlist(),
                                                      evenVcd),
                         peak::switchingEnergyFromVcd(sys.netlist(),
                                                      oddVcd));
    ASSERT_EQ(peakTrace.size(), trace.onlineBoundJ.size());
    for (size_t c = 1; c < peakTrace.size(); ++c)
        EXPECT_NEAR(peakTrace[c], trace.onlineBoundJ[c],
                    1e-6 * trace.onlineBoundJ[c] + 1e-20)
            << "cycle " << c;
}

TEST(Coi, ZeroKAndOversizedKEdgeCases)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img =
        isa::assemble(test::wrapProgram("        mov #3, r4\n"));
    sym::SymbolicConfig cfg;
    cfg.recordModuleTrace = true;
    sym::SymbolicEngine eng(sys, cfg);
    auto sr = eng.run(img);
    ASSERT_TRUE(sr.ok) << sr.error;

    auto none = peak::analyzeCoi(sys.netlist(), sr, img, 0);
    EXPECT_TRUE(none.cois.empty());

    // k far beyond the number of distinct peaks: the report is capped
    // by the separation rule, never padded or duplicated.
    auto many = peak::analyzeCoi(sys.netlist(), sr, img, 10000,
                                 /*min_separation=*/8);
    EXPECT_FALSE(many.cois.empty());
    EXPECT_LE(many.cois.size(), sr.totalCycles / 8 + 1);
    for (size_t i = 1; i < many.cois.size(); ++i)
        EXPECT_NE(many.cois[i].flatCycle, many.cois[0].flatCycle);
}

TEST(Validation, EmptyVectorsAreVacuouslySound)
{
    auto v = peak::validateActivity({}, {});
    EXPECT_TRUE(v.isSuperset);
    EXPECT_EQ(v.commonGates, 0u);
    auto t = peak::validateTraceBound({}, {});
    EXPECT_TRUE(t.bounds);
    EXPECT_EQ(t.violations, 0u);
}

TEST(ExecTree, FlattenAndEnergyLinear)
{
    sym::ExecTree t;
    uint32_t root = t.newNode(sym::kNoNode);
    t.node(root).powerW = {1.0f, 2.0f, 3.0f};
    EXPECT_EQ(t.totalCycles(), 3u);
    auto pe = t.maxPathEnergy(1.0);
    EXPECT_DOUBLE_EQ(pe.energyJ, 6.0);
    EXPECT_EQ(pe.cycles, 3u);
}

TEST(ExecTree, MaxPathPicksWorseBranch)
{
    sym::ExecTree t;
    uint32_t root = t.newNode(sym::kNoNode);
    t.node(root).powerW = {1.0f};
    uint32_t a = t.newNode(root);
    t.node(a).powerW = {5.0f};
    uint32_t b = t.newNode(root);
    t.node(b).powerW = {1.0f, 1.0f, 1.0f, 1.0f};
    t.node(root).edges = {{0x100, a, false}, {0x102, b, false}};
    auto pe = t.maxPathEnergy(1.0);
    EXPECT_DOUBLE_EQ(pe.energyJ, 6.0); // root + a
    EXPECT_EQ(pe.cycles, 2u);
}

TEST(ExecTree, MergedCrossEdgeMemoized)
{
    // Diamond: root -> {a, b} -> join (merged edge from b).
    sym::ExecTree t;
    uint32_t root = t.newNode(sym::kNoNode);
    t.node(root).powerW = {1.0f};
    uint32_t a = t.newNode(root);
    t.node(a).powerW = {2.0f};
    uint32_t b = t.newNode(root);
    t.node(b).powerW = {4.0f};
    uint32_t join = t.newNode(a);
    t.node(join).powerW = {10.0f};
    t.node(root).edges = {{0, a, false}, {0, b, false}};
    t.node(a).edges = {{0, join, false}};
    t.node(b).edges = {{0, join, true}};
    auto pe = t.maxPathEnergy(1.0);
    EXPECT_DOUBLE_EQ(pe.energyJ, 1.0 + 4.0 + 10.0);
}

TEST(ExecTree, BackEdgeRequiresBound)
{
    sym::ExecTree t;
    uint32_t root = t.newNode(sym::kNoNode);
    t.node(root).powerW = {1.0f};
    uint32_t loop = t.newNode(root);
    t.node(loop).powerW = {2.0f};
    t.node(root).edges = {{0, loop, false}};
    t.node(loop).edges = {{0, loop, true}}; // self back-edge
    EXPECT_THROW(t.maxPathEnergy(1.0, 0), std::runtime_error);
    auto pe = t.maxPathEnergy(1.0, 5);
    // Loop body repeats 5 times: 1 + 2*5.
    EXPECT_DOUBLE_EQ(pe.energyJ, 11.0);
}

TEST(PeakAnalyze, ReportFieldsConsistent)
{
    msp::System &sys = test::sharedSystem();
    peak::Options opts;
    peak::Report r = peak::analyze(
        sys, isa::assemble(test::wrapProgram("        mov #5, r4\n")),
        opts);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.flatTraceW.size(), r.totalCycles);
    double maxTrace = 0.0;
    for (float w : r.flatTraceW)
        maxTrace = std::max(maxTrace, double(w));
    // The trace stores floats; the peak is tracked in double.
    EXPECT_NEAR(maxTrace, r.peakPowerW, 1e-6 * r.peakPowerW);
    EXPECT_NEAR(r.npeJPerCycle,
                r.peakEnergyJ / double(r.maxPathCycles),
                1e-18);
}

TEST(Coi, ReportsPeakWithModuleBreakdown)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(test::wrapProgram(R"(
        mov #0xffff, r4
        mov r4, &0x0130
        mov r4, &0x0138
        mov &0x013a, r5
    )"));
    sym::SymbolicConfig cfg;
    cfg.recordModuleTrace = true;
    sym::SymbolicEngine eng(sys, cfg);
    auto sr = eng.run(img);
    ASSERT_TRUE(sr.ok) << sr.error;
    auto coi = peak::analyzeCoi(sys.netlist(), sr, img, 2);
    ASSERT_FALSE(coi.cois.empty());
    EXPECT_NEAR(coi.cois[0].powerW, sr.peakPowerW,
                1e-6 * sr.peakPowerW);
    ASSERT_FALSE(coi.cois[0].modulePowerW.empty());
    EXPECT_FALSE(coi.cois[0].disasm.empty());
    // Breakdown is sorted descending.
    for (size_t i = 1; i < coi.cois[0].modulePowerW.size(); ++i)
        EXPECT_GE(coi.cois[0].modulePowerW[i - 1].second,
                  coi.cois[0].modulePowerW[i].second);
    EXPECT_NE(coi.toString().find("COI"), std::string::npos);
}

TEST(Validation, SupersetLogic)
{
    std::vector<uint8_t> x = {1, 1, 1, 0};
    std::vector<uint8_t> in = {1, 0, 1, 0};
    auto v = peak::validateActivity(x, in);
    EXPECT_TRUE(v.isSuperset);
    EXPECT_EQ(v.commonGates, 2u);
    EXPECT_EQ(v.xOnlyGates, 1u);
    in[3] = 1; // a gate only the concrete run toggled: soundness bug
    v = peak::validateActivity(x, in);
    EXPECT_FALSE(v.isSuperset);
    EXPECT_EQ(v.inputOnlyGates, 1u);
}

TEST(Validation, TraceBoundLogic)
{
    std::vector<float> x = {2.0f, 2.0f, 2.0f};
    std::vector<float> c = {1.0f, 2.0f, 1.5f};
    auto v = peak::validateTraceBound(x, c);
    EXPECT_TRUE(v.bounds);
    EXPECT_FALSE(v.lengthMismatch);
    EXPECT_EQ(v.firstViolationCycle, UINT64_MAX);
    EXPECT_NEAR(v.meanSlackW, 0.5, 1e-9);
    c[1] = 2.5f;
    v = peak::validateTraceBound(x, c);
    EXPECT_FALSE(v.bounds);
    EXPECT_EQ(v.violations, 1u);
    EXPECT_EQ(v.firstViolationCycle, 1u);
    EXPECT_NEAR(v.maxViolationW, 0.5, 1e-9);
}

// Regression (bugfix): mismatched trace lengths used to be silently
// truncated to min(n, m) and could still report bounds=true -- a
// concrete run outliving the bound trace is precisely the failure a
// validation layer exists to catch.
TEST(Validation, TraceBoundLengthMismatch)
{
    std::vector<float> x = {2.0f, 2.0f};
    std::vector<float> c = {1.0f, 1.0f, 9.0f, 3.0f};
    auto v = peak::validateTraceBound(x, c);
    EXPECT_TRUE(v.lengthMismatch);
    EXPECT_FALSE(v.bounds); // the tail has no bound at all
    EXPECT_EQ(v.comparedCycles, 2u);
    EXPECT_EQ(v.uncomparedTailCycles, 2u);
    EXPECT_EQ(v.violations, 2u);
    EXPECT_EQ(v.firstViolationCycle, 2u);
    EXPECT_NEAR(v.maxViolationW, 9.0, 1e-9); // worst unbounded cycle

    // The opposite direction is sound: the bound covers the longest
    // path, the concrete run simply halted earlier. Flagged, but
    // still bounding.
    std::vector<float> shortRun = {1.0f, 1.5f};
    std::vector<float> longBound = {2.0f, 2.0f, 2.0f, 2.0f};
    v = peak::validateTraceBound(longBound, shortRun);
    EXPECT_TRUE(v.lengthMismatch);
    EXPECT_TRUE(v.bounds);
    EXPECT_EQ(v.violations, 0u);
    EXPECT_EQ(v.uncomparedTailCycles, 2u);
}

// Regression (bugfix): an input-based vector longer than the X-based
// vector used to keep isSuperset=true even when the tail toggled.
TEST(Validation, ActivityLengthMismatch)
{
    std::vector<uint8_t> x = {1, 1};
    std::vector<uint8_t> in = {1, 0, 1};
    auto v = peak::validateActivity(x, in);
    EXPECT_TRUE(v.lengthMismatch);
    EXPECT_FALSE(v.isSuperset); // gate 2 is not covered by x at all
    EXPECT_EQ(v.inputOnlyGates, 1u);
    EXPECT_EQ(v.uncomparedGates, 1u);

    // Even an inactive tail cannot support a superset claim: the
    // X-based analysis has no entry for those gates.
    in = {1, 0, 0};
    v = peak::validateActivity(x, in);
    EXPECT_TRUE(v.lengthMismatch);
    EXPECT_FALSE(v.isSuperset);
    EXPECT_EQ(v.inputOnlyGates, 0u);

    // An x vector longer than the input vector keeps the claim (x
    // covers every measured gate); the tail counts as x-only.
    std::vector<uint8_t> xl = {1, 1, 1, 1};
    std::vector<uint8_t> ins = {1, 1};
    v = peak::validateActivity(xl, ins);
    EXPECT_TRUE(v.lengthMismatch);
    EXPECT_TRUE(v.isSuperset);
    EXPECT_EQ(v.xOnlyGates, 2u);
    EXPECT_EQ(v.uncomparedGates, 2u);
}

} // namespace
} // namespace ulpeak
