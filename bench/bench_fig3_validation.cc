/**
 * @file
 * Experiments E3/E5 -- Section 3.4's validation plus the Figure 1.5
 * activity maps:
 *
 *  - Figure 3.4: the X-based potentially-toggled gate set is a strict
 *    superset of every input-based toggled set (low- and high-
 *    activity inputs shown, like the paper's mult example);
 *  - Figure 3.5: the X-based per-cycle trace upper-bounds the
 *    input-based trace and tracks it closely;
 *  - Figure 1.5: different applications exercise different gate sets
 *    at their peak cycle (tHold vs PI, per-module counts).
 */

#include "bench/bench_util.hh"
#include "peak/peak_analysis.hh"
#include "peak/validation.hh"
#include "power/analysis.hh"

using namespace ulpeak;
using namespace ulpeak::bench_util;

int
main()
{
    msp::System sys(CellLibrary::tsmc65Like());
    power::PowerContext ctx(sys.netlist(), kFreq65);

    printHeader("Fig 3.4: X-based activity superset validation (mult)");
    {
        const auto &b = bench430::benchmarkByName("mult");
        isa::Image img = b.assembleImage();
        peak::Options opts;
        opts.recordActiveSets = true;
        peak::Report x = peak::analyze(sys, img, opts);

        // Find low- and high-activity input sets, like the paper.
        auto inputs = b.makeInputs(8, 11);
        std::vector<power::ConcreteRunResult> runs;
        size_t lo = 0, hi = 0;
        std::vector<size_t> counts;
        for (const auto &in : inputs) {
            power::ConcreteRunOptions copts;
            copts.recordTrace = false;
            copts.recordActivity = true;
            copts.portIn = in.portIn;
            runs.push_back(
                power::runConcrete(sys, img, ctx, copts, in.ram));
            size_t n = 0;
            for (uint8_t a : runs.back().everActive)
                n += a;
            counts.push_back(n);
            if (n < counts[lo])
                lo = counts.size() - 1;
            if (n > counts[hi])
                hi = counts.size() - 1;
        }
        for (auto [label, idx] : {std::pair<const char *, size_t>
                                      {"low-activity inputs", lo},
                                  {"high-activity inputs", hi}}) {
            auto v = peak::validateActivity(x.everActive,
                                            runs[idx].everActive);
            std::printf("%-22s common=%zu unique-x=%zu "
                        "input-only=%zu superset=%s\n",
                        label, v.commonGates, v.xOnlyGates,
                        v.inputOnlyGates, v.isSuperset ? "YES" : "NO");
        }
    }

    printHeader("Fig 3.5: X-based trace bounds the input-based trace "
                "(mult)");
    {
        const auto &b = bench430::benchmarkByName("mult");
        isa::Image img = b.assembleImage();
        peak::Options opts;
        peak::Report x = peak::analyze(sys, img, opts);
        auto in = b.makeInputs(1, 5)[0];
        power::ConcreteRunOptions copts;
        copts.portIn = in.portIn;
        auto run = power::runConcrete(sys, img, ctx, copts, in.ram);
        auto v = peak::validateTraceBound(x.flatTraceW, run.traceW);
        std::printf("compared %llu cycles: bound holds=%s, "
                    "violations=%llu, mean slack=%.1f uW "
                    "(tight bound: slack << peak)\n",
                    (unsigned long long)v.comparedCycles,
                    v.bounds ? "YES" : "NO",
                    (unsigned long long)v.violations,
                    v.meanSlackW * 1e6);
        power::writePowerCsv(outDir() + "fig3_5_mult_xbased.csv",
                             x.flatTraceW);
        power::writePowerCsv(outDir() + "fig3_5_mult_input.csv",
                             run.traceW);
    }

    printHeader("Fig 1.5: active gates at the peak cycle are "
                "application-specific (tHold vs PI)");
    for (const char *name : {"tHold", "PI"}) {
        peak::Options opts;
        opts.recordActiveSets = true;
        peak::Report r = peak::analyze(
            sys, bench430::benchmarkByName(name).assembleImage(), opts);
        std::printf("%-6s: %zu active gates at peak cycle:", name,
                    r.peakActive.size());
        for (auto &[mod, n] :
             peak::activeGatesPerModule(sys.netlist(), r.peakActive))
            std::printf(" %s=%zu", mod.c_str(), n);
        std::printf("\n");
    }
    std::printf("(paper: PI exercises a larger fraction of the "
                "processor than tHold at its peak)\n");
    return 0;
}
