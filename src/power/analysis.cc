#include "power/analysis.hh"

#include <fstream>
#include <stdexcept>

namespace ulpeak {
namespace power {

ConcreteRunResult
runConcrete(msp::System &sys, const isa::Image &image,
            const PowerContext &ctx, const ConcreteRunOptions &opts,
            const RamInit &ram_init)
{
    sys.memory().reset();
    sys.loadImage(image);
    for (auto &[addr, words] : ram_init)
        sys.memory().loadRam(addr, words);
    sys.clearHalted();

    Simulator sim(sys.netlist());
    sys.attach(sim);
    sys.reset(sim);

    ConcreteRunResult r;
    size_t nmod = sys.netlist().numModules();
    if (opts.recordModules)
        r.traceModulesW.resize(nmod);
    if (opts.recordActivity)
        r.everActive.assign(sys.netlist().numGates(), 0);

    // Post-reset cycle counter for the mode schedule: traces and
    // envelopes count cycles from the end of reset, and the loop
    // starts right after sys.reset(), so the executed cycle's index
    // is sim.cycle() - startCycle sampled before the step.
    uint64_t startCycle = sim.cycle();
    double modeEnergyJ = 0.0;
    while (!sys.halted() && sim.cycle() < opts.maxCycles) {
        uint64_t cycleIdx = sim.cycle() - startCycle;
        uint16_t port =
            opts.portSchedule.empty()
                ? opts.portIn
                : opts.portSchedule[size_t(sim.cycle()) %
                                    opts.portSchedule.size()];
        sim.step([&](Simulator &s) {
            sys.driveCycle(s, Word16::known(port));
        });
        double w;
        if (opts.modeSchedule.empty()) {
            w = ctx.cycleBoundPowerW(sim);
        } else {
            const std::pair<double, double> &mf =
                opts.modeSchedule[size_t(cycleIdx %
                                         opts.modeSchedule.size())];
            w = ctx.cycleBoundPowerW(sim, mf.first, mf.second);
            // energy = power / mode clock (w already carries the
            // vdd^2 scale and the mode frequency).
            modeEnergyJ += w / mf.second;
        }
        r.stats.add(w);
        if (opts.recordTrace)
            r.traceW.push_back(float(w));
        if (opts.recordModules) {
            std::vector<double> mod = ctx.cycleModulePowerW(sim);
            if (!opts.modeSchedule.empty()) {
                const std::pair<double, double> &mf =
                    opts.modeSchedule[size_t(
                        cycleIdx % opts.modeSchedule.size())];
                double ratio = mf.first * (mf.second / ctx.freqHz());
                for (double &m : mod)
                    m *= ratio;
            }
            for (size_t m = 0; m < nmod; ++m)
                r.traceModulesW[m].push_back(float(mod[m]));
        }
        if (opts.recordActivity)
            for (GateId g : sim.activeGates())
                r.everActive[g] = 1;
    }
    r.halted = sys.halted();
    r.totalEnergyJ = opts.modeSchedule.empty()
                         ? r.stats.energyJ(ctx.tclkS())
                         : modeEnergyJ;
    return r;
}

void
writePowerCsv(const std::string &path, const std::vector<float> &trace_w,
              const std::vector<std::vector<float>> *modules,
              const std::vector<std::string> *module_names)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot open " + path);
    os << "cycle,power_w";
    if (modules && module_names)
        for (const std::string &n : *module_names)
            os << "," << n;
    os << "\n";
    for (size_t c = 0; c < trace_w.size(); ++c) {
        os << c << "," << trace_w[c];
        if (modules)
            for (const auto &m : *modules)
                os << "," << (c < m.size() ? m[c] : 0.0f);
        os << "\n";
    }
}

} // namespace power
} // namespace ulpeak
