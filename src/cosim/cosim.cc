#include "cosim/cosim.hh"

#include <cstdio>
#include <deque>
#include <map>
#include <sstream>

#include "isa/disassembler.hh"

namespace ulpeak {
namespace cosim {

namespace {

std::string
hex4(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%04x", v);
    return buf;
}

const char *
regName(unsigned r)
{
    static const char *names[16] = {"pc", "sp",  "sr",  "r3", "r4",
                                    "r5", "r6",  "r7",  "r8", "r9",
                                    "r10", "r11", "r12", "r13", "r14",
                                    "r15"};
    return names[r];
}

/** Word-fetch over an assembled image (for the disassembler). */
class ImageFetch {
  public:
    explicit ImageFetch(const isa::Image &image)
    {
        for (auto &[addr, word] : image.flatten())
            words_[addr] = word;
    }

    uint16_t
    operator()(uint32_t addr) const
    {
        auto it = words_.find(addr & 0xfffeu);
        return it == words_.end() ? 0xffff : it->second;
    }

  private:
    std::map<uint32_t, uint16_t> words_;
};

/** Disassembled window: recent instructions, the divergent one
 *  (marked), and a few after it. */
std::string
disasmWindow(const std::deque<uint32_t> &recent, uint32_t pc,
             unsigned after, const ImageFetch &fetch)
{
    std::ostringstream os;
    auto fn = [&fetch](uint32_t a) { return fetch(a); };
    for (uint32_t a : recent) {
        if (a == pc)
            continue; // printed below with the marker
        os << "  " << hex4(a) << ": " << isa::disassemble(a, fn)
           << "\n";
    }
    os << "> " << hex4(pc) << ": " << isa::disassemble(pc, fn) << "\n";
    uint32_t a = pc;
    for (unsigned i = 0; i < after; ++i) {
        isa::Decoded d = isa::decodeAt(a, fn);
        if (!d.valid)
            break;
        a += 2 * d.words;
        if (a >= 0x10000)
            break;
        os << "  " << hex4(a) << ": " << isa::disassemble(a, fn)
           << "\n";
    }
    return os.str();
}

} // namespace

const char *
divergenceKindName(Divergence::Kind k)
{
    switch (k) {
      case Divergence::Kind::None: return "none";
      case Divergence::Kind::Pc: return "pc";
      case Divergence::Kind::Register: return "register";
      case Divergence::Kind::MemWrite: return "mem-write";
      case Divergence::Kind::FinalMemory: return "final-memory";
      case Divergence::Kind::Cycles: return "cycles";
      case Divergence::Kind::GateX: return "gate-x";
      case Divergence::Kind::GateTimeout: return "gate-timeout";
      case Divergence::Kind::IssTrap: return "iss-trap";
      case Divergence::Kind::Halt: return "halt";
    }
    return "?";
}

std::string
Result::report() const
{
    if (ok)
        return "";
    std::ostringstream os;
    os << "=== cosim divergence ===\n"
       << "kind:        " << divergenceKindName(divergence.kind) << "\n"
       << "first at:    gate cycle " << divergence.cycle
       << ", instruction #" << divergence.instrIndex << ", pc "
       << hex4(divergence.pc) << "\n";
    if (!divergence.detail.empty())
        os << "state diff:\n" << divergence.detail;
    if (!divergence.disasm.empty())
        os << "window:\n" << divergence.disasm;
    os << "retired " << instructionsRetired << " instructions; gate "
       << gateCycles << " cycles, iss " << issCycles << " cycles\n";
    return os.str();
}

Result
run(msp::System &sys, const isa::Image &gate_image,
    const isa::Image &iss_image, const Options &opts)
{
    Result res;
    const msp::CpuHandles &h = sys.handles();
    ImageFetch fetch(iss_image);

    sys.memory().reset();
    sys.loadImage(gate_image);
    sys.clearHalted();

    Simulator sim(sys.netlist(), opts.evalMode);
    sys.attach(sim);

    // Gate-side store stream: observe the memory bus at every clock
    // edge (the same stable values System::memEdge commits).
    std::vector<MemWrite> gateWrites;
    bool gateXWrite = false;
    sim.addEdgeFn([&](Simulator &s) {
        if (s.value(h.rstn) != V4::One)
            return;
        V4 wr = s.value(h.mbWr);
        if (wr == V4::Zero)
            return;
        Word16 addr = s.readBus(h.mab);
        Word16 data = s.readBus(h.mdbOut);
        if (wr == V4::X || !addr.isFullyKnown() ||
            !data.isFullyKnown()) {
            gateXWrite = true;
            return;
        }
        if (addr.value < isa::SystemMap::kRomBase)
            gateWrites.push_back({addr.value, data.value});
    });

    sys.reset(sim, opts.preCycle);

    isa::Iss iss;
    iss.loadImage(iss_image);
    iss.setPortIn(opts.portIn);
    std::vector<MemWrite> issWrites;
    iss.setWriteObserver([&](uint32_t a, uint16_t v) {
        if (a < isa::SystemMap::kRomBase)
            issWrites.push_back({a, uint16_t(v)});
    });
    iss.reset();

    std::deque<uint32_t> recentPcs; // last few instruction addresses
    uint32_t curPc = iss.pc();
    bool first = true;
    bool issDone = false;

    auto diverge = [&](Divergence::Kind kind, uint64_t cycle,
                       uint32_t pc, const std::string &detail) {
        res.divergence.kind = kind;
        res.divergence.cycle = cycle;
        res.divergence.instrIndex = res.instructionsRetired;
        res.divergence.pc = pc;
        res.divergence.detail = detail;
        res.divergence.disasm =
            disasmWindow(recentPcs, pc, opts.disasmAfter, fetch);
        res.gateCycles = sim.cycle();
        res.issCycles = iss.cycles();
    };

    auto compareWrites = [&](uint32_t pc) {
        if (gateWrites == issWrites && !gateXWrite)
            return true;
        std::ostringstream os;
        if (gateXWrite)
            os << "  gate store with unknown address/data/enable\n";
        size_t n = std::max(gateWrites.size(), issWrites.size());
        for (size_t i = 0; i < n; ++i) {
            std::string g = i < gateWrites.size()
                                ? "[" + hex4(gateWrites[i].addr) +
                                      "]=" + hex4(gateWrites[i].value)
                                : "(none)";
            std::string s = i < issWrites.size()
                                ? "[" + hex4(issWrites[i].addr) +
                                      "]=" + hex4(issWrites[i].value)
                                : "(none)";
            if (g != s)
                os << "  write " << i << ": gate " << g << " iss " << s
                   << "\n";
        }
        diverge(Divergence::Kind::MemWrite, sim.cycle(), pc, os.str());
        return false;
    };

    while (sim.cycle() < opts.maxCycles) {
        sim.step([&](Simulator &s) {
            sys.driveCycle(s, Word16::known(opts.portIn));
            if (opts.preCycle)
                opts.preCycle(s);
        });
        if (opts.powerCtx)
            res.powerTraceW.push_back(
                float(opts.powerCtx->cycleBoundPowerW(sim)));
        if (sys.halted())
            break;
        if (sys.xStoreFault()) {
            diverge(Divergence::Kind::GateX, sim.cycle(), curPc,
                    "  store with unknown address or enable\n");
            return res;
        }
        if (sys.fsmState(sim) != msp::kStFetch)
            continue;

        // ---- Instruction boundary ----
        // The previous instruction has fully retired: its register
        // writes are in the flops, its stores were committed at the
        // preceding edges.
        uint32_t prevPc = curPc;
        if (!first) {
            if (!compareWrites(prevPc))
                return res;
            gateWrites.clear();
            issWrites.clear();
        }

        Word16 pcw = sys.readPc(sim);
        if (!pcw.isFullyKnown()) {
            diverge(Divergence::Kind::GateX, sim.cycle(), prevPc,
                    "  pc: gate=" + pcw.toString() + " (has X bits)\n");
            return res;
        }
        if (issDone) {
            diverge(Divergence::Kind::Halt, sim.cycle(), pcw.value,
                    "  iss halted (" + iss.haltReason() +
                        ") but gate core fetched another "
                        "instruction\n");
            return res;
        }
        if (pcw.value != iss.pc()) {
            diverge(Divergence::Kind::Pc, sim.cycle(), prevPc,
                    "  next pc: gate=" + hex4(pcw.value) +
                        " iss=" + hex4(iss.pc()) + "\n");
            return res;
        }
        {
            std::ostringstream os;
            for (unsigned r = 1; r < 16; ++r) {
                Word16 w = sys.readReg(sim, r);
                if (!w.isFullyKnown())
                    continue; // not yet initialized by the prologue
                if (w.value != iss.reg(r))
                    os << "  " << regName(r)
                       << ": gate=" << hex4(w.value)
                       << " iss=" << hex4(iss.reg(r)) << "\n";
            }
            std::string diff = os.str();
            if (!diff.empty()) {
                diverge(Divergence::Kind::Register, sim.cycle(),
                        prevPc, diff);
                return res;
            }
        }

        // ---- Advance the ISS through the instruction now fetched ----
        curPc = pcw.value;
        recentPcs.push_back(curPc);
        if (recentPcs.size() > 4)
            recentPcs.pop_front();
        ++res.instructionsRetired;
        first = false;
        if (!iss.step()) {
            if (!iss.halted()) {
                diverge(Divergence::Kind::IssTrap, sim.cycle(), curPc,
                        "  iss: " + iss.haltReason() + "\n");
                return res;
            }
            issDone = true;
        }
    }

    res.gateCycles = sim.cycle();
    res.issCycles = iss.cycles();

    if (!sys.halted()) {
        diverge(Divergence::Kind::GateTimeout, sim.cycle(), curPc,
                "  gate core still running after " +
                    std::to_string(sim.cycle()) + " cycles\n");
        return res;
    }
    if (!compareWrites(curPc))
        return res;
    if (!iss.halted()) {
        diverge(Divergence::Kind::Halt, sim.cycle(), curPc,
                "  gate core halted; iss still running (pc " +
                    hex4(iss.pc()) + ")\n");
        return res;
    }
    if (sim.cycle() != iss.cycles()) {
        diverge(Divergence::Kind::Cycles, sim.cycle(), curPc,
                "  cycles: gate=" + std::to_string(sim.cycle()) +
                    " iss=" + std::to_string(iss.cycles()) + "\n");
        return res;
    }

    // Final RAM sweep: every word the gate core knows must match the
    // ISS (words neither side touched stay X on the gate side and are
    // skipped).
    {
        std::ostringstream os;
        const Memory &mem = sys.memory();
        for (uint32_t a = mem.ramBase();
             a < mem.ramBase() + mem.ramSize(); a += 2) {
            Word16 w = mem.read(a);
            if (!w.isFullyKnown())
                continue;
            uint16_t sv = iss.readMem(a);
            if (w.value != sv)
                os << "  [" << hex4(a) << "]: gate=" << hex4(w.value)
                   << " iss=" << hex4(sv) << "\n";
        }
        std::string diff = os.str();
        if (!diff.empty()) {
            diverge(Divergence::Kind::FinalMemory, sim.cycle(), curPc,
                    diff);
            return res;
        }
    }

    res.ok = true;
    return res;
}

} // namespace cosim
} // namespace ulpeak
