#include "peak/even_odd.hh"

#include <sstream>

#include "sim/vcd.hh"

namespace ulpeak {
namespace peak {

GateTrace
recordGateTrace(msp::System &sys, const isa::Image &image,
                uint64_t cycles, EvalMode mode)
{
    sys.memory().reset();
    sys.loadImage(image);
    sys.clearHalted();
    Simulator sim(sys.netlist(), mode);
    sys.attach(sim);
    sys.reset(sim);

    GateTrace t;
    size_t n = sys.netlist().numGates();
    for (uint64_t c = 0; c < cycles && !sys.halted(); ++c) {
        sim.step([&](Simulator &s) {
            sys.driveCycle(s, Word16::allX());
        });
        std::vector<V4> vals(n);
        std::vector<uint8_t> act(n, 0);
        for (GateId g = 0; g < n; ++g)
            vals[g] = sim.value(g);
        for (GateId g : sim.activeGates())
            act[g] = 1;
        t.values.push_back(std::move(vals));
        t.active.push_back(std::move(act));
        // Gate switching only: the VCD flow sees standard cells, not
        // the behavioral RAM macro's access energy.
        t.onlineBoundJ.push_back(sim.boundEnergyJ() -
                                 sim.behavioralEnergyJ());
    }
    return t;
}

std::string
buildMaxVcd(const Netlist &nl, const GateTrace &trace, bool even)
{
    // Work on a copy of the values; Algorithm 2 assigns Xs in the
    // (c-1, c) pairs whose second element has the requested parity.
    std::vector<std::vector<V4>> vals = trace.values;
    const size_t n = nl.numGates();
    const CellLibrary &lib = nl.library();

    for (size_t c = 1; c < vals.size(); ++c) {
        bool isEven = (c % 2) == 0;
        if (isEven != even)
            continue;
        for (GateId g = 0; g < n; ++g) {
            if (!trace.active[c][g])
                continue; // "for all toggled gates g in c"
            V4 &prev = vals[c - 1][g];
            V4 &cur = vals[c][g];
            if (cur == V4::X && prev == V4::X) {
                // maxTransition lookup into the cell library.
                prev = lib.maxTransitionValue(nl.gate(g).kind, 1);
                cur = lib.maxTransitionValue(nl.gate(g).kind, 2);
            } else if (cur == V4::X) {
                cur = v4Not(prev);
            } else if (prev == V4::X) {
                prev = v4Not(cur);
            }
        }
    }

    std::vector<std::string> names(n);
    for (size_t g = 0; g < n; ++g)
        names[g] = "g" + std::to_string(g);
    std::ostringstream os;
    VcdWriter writer(os, names);
    for (auto &cycle : vals)
        writer.writeCycle(cycle);
    return os.str();
}

std::vector<double>
switchingEnergyFromVcd(const Netlist &nl, const std::string &vcd_text)
{
    std::istringstream is(vcd_text);
    VcdData data = readVcd(is);

    // Map signal order back to gate ids ("g<N>").
    std::vector<GateId> gateOf(data.signals.size());
    for (size_t s = 0; s < data.signals.size(); ++s)
        gateOf[s] = GateId(std::stoul(data.signals[s].substr(1)));

    std::vector<double> energy(data.values.size(), 0.0);
    for (size_t c = 1; c < data.values.size(); ++c) {
        double e = 0.0;
        for (size_t s = 0; s < data.signals.size(); ++s) {
            V4 prev = data.values[c - 1][s];
            V4 cur = data.values[c][s];
            if (!isKnown(prev) || !isKnown(cur) || prev == cur)
                continue;
            GateId g = gateOf[s];
            e += cur == V4::One ? nl.riseEnergyJ(g)
                                : nl.fallEnergyJ(g);
        }
        energy[c] = e;
    }
    return energy;
}

std::vector<double>
interleave(const std::vector<double> &even_trace,
           const std::vector<double> &odd_trace)
{
    size_t nCycles = std::min(even_trace.size(), odd_trace.size());
    std::vector<double> out(nCycles);
    for (size_t c = 0; c < nCycles; ++c)
        out[c] = (c % 2) == 0 ? even_trace[c] : odd_trace[c];
    return out;
}

} // namespace peak
} // namespace ulpeak
