#include "sym/symbolic_engine.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "isa/disassembler.hh"
#include "isa/encoding.hh"
#include "lint/lint.hh"
#include "power/packed_run.hh"

namespace ulpeak {
namespace sym {

namespace {

constexpr uint32_t kNoForcedPc = UINT32_MAX;

/** Dedup-map shards; a power of two well above any sane worker
 * count, so concurrent forks rarely collide on a shard mutex. */
constexpr unsigned kDedupShards = 64;

/** Delta snapshots beyond this fraction of a full copy promote to a
 * fresh full base: the path has diverged so far that sparse storage
 * stops paying, and later forks on the same path restart their
 * deltas from the new, nearby base. Purely a representation choice
 * (path-state-determined, so scheduling-independent) -- restored
 * bits are identical either way. */
constexpr size_t kDeltaPromoteNum = 1;
constexpr size_t kDeltaPromoteDen = 2;

/** Structural identity of a netlist (kinds + CSR fanins): snapshots
 * transfer between Systems only when this matches. */
uint64_t
netlistStructureHash(const Netlist &nl)
{
    const FlatNetlist &f = nl.flat();
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t x) {
        h ^= x;
        h *= 0x100000001b3ull;
    };
    for (CellKind k : f.kind)
        mix(uint64_t(k));
    for (GateId g : f.fanin)
        mix(g);
    return h;
}

/** One un-processed execution path (Algorithm 1's stack U entry).
 * The simulator state is either a full snapshot or a delta against a
 * shared base (both immutable and shared between sibling entries);
 * the node pointer is pre-resolved under the tree lock so workers
 * never touch the tree container concurrently. */
struct Pending {
    std::shared_ptr<const Simulator::Snapshot> simFull;
    std::shared_ptr<const Simulator::DeltaSnapshot> simDelta;
    std::shared_ptr<const msp::System::Snapshot> sysSnap;
    uint32_t node = 0;
    TreeNode *nodePtr = nullptr;
    uint64_t nodeKey = 0;  ///< dedup key that created the node (0: root)
    uint32_t forcedPc = kNoForcedPc; ///< PC constraint on the next step
    uint32_t lastKnownPc = 0; ///< last concrete PC value on this path
    uint32_t curInstrAddr = 0; ///< instruction in execute/mem (COI)
    uint64_t pathCycles = 0;
    bool applyInit = false; ///< root only: scenario register forces
};

/**
 * State shared by all exploration workers. Three independent lock
 * domains replace the old single engine mutex:
 *
 *  - the visited-state dedup map is sharded by key hash (shards[]),
 *    so two workers forking at the same time only contend when their
 *    keys land in the same shard;
 *  - tree-node allocation takes treeMu; everything else about a node
 *    (its trace, its edges) is written lock-free through the stable
 *    TreeNode pointer by the one worker that owns the node;
 *  - each worker owns a work deque (queues[]) with a private mutex:
 *    the owner pushes/pops at the back (depth-first, cache-warm),
 *    thieves take from the front (the oldest entry, closest to the
 *    root, statistically the largest unexplored subtree).
 *
 * Idle workers sleep on idleCv; inflight counts queued + running
 * paths and reaching zero is the termination condition.
 */
struct SharedState {
    struct Shard {
        std::mutex mu;
        std::unordered_map<uint64_t, uint32_t> visited;
    };
    std::array<Shard, kDedupShards> shards;

    std::mutex treeMu; ///< node allocation (and maxNodes accounting)
    ExecTree *tree = nullptr;

    struct WorkerQueue {
        std::mutex mu;
        std::deque<Pending> q;
    };
    std::deque<WorkerQueue> queues; ///< deque: mutexes never move

    std::mutex idleMu;
    std::condition_variable idleCv;
    std::atomic<uint32_t> queued{0};   ///< entries sitting in queues
    std::atomic<uint32_t> inflight{0}; ///< queued + running paths

    /// @name Statistics (atomic: many writers)
    /// @{
    std::atomic<uint64_t> totalCycles{0};
    std::atomic<uint32_t> pathsExplored{0};
    std::atomic<uint32_t> dedupMerges{0};
    std::atomic<uint32_t> steals{0};
    std::atomic<uint64_t> snapshotBytesCopied{0};
    std::atomic<uint64_t> snapshotBytesFull{0};
    std::atomic<uint64_t> packedBatches{0};
    std::atomic<uint64_t> packedSweeps{0};
    std::atomic<uint64_t> packedLaneCycles{0};
    /// @}

    std::atomic<bool> failed{false};
    std::mutex errMu;
    std::string error;

    static unsigned
    shardOf(uint64_t key)
    {
        // High multiplicative bits: the low bits feed the map's own
        // bucket index, so reusing them would correlate the two.
        return unsigned((key * 0x9e3779b97f4a7c15ull) >> 58) &
               (kDedupShards - 1);
    }

    void
    fail(const std::string &msg)
    {
        {
            std::lock_guard<std::mutex> lock(errMu);
            if (!failed.exchange(true))
                error = msg;
        }
        std::lock_guard<std::mutex> lock(idleMu);
        idleCv.notify_all();
    }

    /** Enqueue @p p on @p worker's deque and wake one sleeper. */
    void
    push(unsigned worker, Pending &&p)
    {
        inflight.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(queues[worker].mu);
            queues[worker].q.push_back(std::move(p));
        }
        queued.fetch_add(1, std::memory_order_release);
        if (queues.size() > 1) {
            std::lock_guard<std::mutex> lock(idleMu);
            idleCv.notify_one();
        }
    }

    bool
    popOwn(unsigned worker, Pending &out)
    {
        std::lock_guard<std::mutex> lock(queues[worker].mu);
        if (queues[worker].q.empty())
            return false;
        out = std::move(queues[worker].q.back());
        queues[worker].q.pop_back();
        queued.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }

    bool
    stealFrom(unsigned thief, Pending &out)
    {
        unsigned n = unsigned(queues.size());
        for (unsigned i = 1; i < n; ++i) {
            unsigned victim = (thief + i) % n;
            std::lock_guard<std::mutex> lock(queues[victim].mu);
            if (queues[victim].q.empty())
                continue;
            out = std::move(queues[victim].q.front());
            queues[victim].q.pop_front();
            queued.fetch_sub(1, std::memory_order_relaxed);
            steals.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        return false;
    }
};

/**
 * One exploration worker: a simulator (plus, for workers beyond the
 * first, a private System clone) that pops pending paths, simulates
 * them to the next fork or leaf, and commits traces to the tree
 * through the nodes it owns. Peak candidates and activity sets are
 * tracked locally and merged after the pool drains.
 */
class Worker {
  public:
    Worker(msp::System &base, const SymbolicConfig &cfg,
           const isa::Image &image, unsigned id, bool owns_clone)
        : cfg_(cfg), id_(id)
    {
        if (owns_clone) {
            owned_ = std::make_unique<msp::System>(
                base.netlist().library());
            sys_ = owned_.get();
            if (netlistStructureHash(sys_->netlist()) !=
                netlistStructureHash(base.netlist()))
                throw std::logic_error(
                    "nondeterministic netlist elaboration: worker "
                    "clone differs structurally from the base "
                    "system");
        } else {
            sys_ = &base;
        }
        sys_->memory().reset();
        sys_->loadImage(image);
        sys_->clearHalted();
        sim_ = std::make_unique<Simulator>(sys_->netlist(),
                                           cfg.evalMode);
        sys_->attach(*sim_);
        ctx_ = std::make_unique<power::PowerContext>(sys_->netlist(),
                                                     cfg_.freqHz);
        if (cfg_.scenario.hasModes()) {
            // One (energy scale, clock) pair per schedule phase,
            // resolved once against the library the netlist was
            // built with (identical across worker clones).
            const CellLibrary &lib = sys_->netlist().library();
            const scenario::Scenario &scen = cfg_.scenario;
            for (uint64_t ph = 0; ph < scen.modePeriod(); ++ph) {
                const scenario::OperatingMode &m = scen.modeAt(ph);
                modeFactors_.emplace_back(lib.energyScale(m.vdd),
                                          m.freqHz);
            }
        }
        if (cfg_.recordActiveSets)
            everActive_.assign(sys_->netlist().numGates(), 0);
        if (cfg_.packedExplore) {
            psim_ = std::make_unique<PackedSimulator>(
                sys_->netlist());
            // Per-lane behavioral memory; contents are overwritten at
            // every lane load, but the ROM image (not part of memory
            // snapshots) must already be in the copies.
            laneMem_.assign(PackedSimulator::kLanes, sys_->memory());
            const msp::CpuHandles &h = sys_->handles();
            psim_->setHookFn(h.memHookId, [this](PackedSimulator &s) {
                power::packedMemHook(s, sys_->handles(), laneMem_);
            });
            psim_->addEdgeFn([this](PackedSimulator &s) {
                // Lanes not carrying a pending path are skipped:
                // their scalar counterparts are not stepping here, so
                // nothing may commit (the halted-lane rule of the
                // concrete packed runner, driven by liveness).
                power::packedMemEdge(s, sys_->handles(), laneMem_,
                                     haltedMask_, faultMask_,
                                     /*skip_mask=*/~liveMask_);
            });
            // Prime one sweep: edge functions only run when
            // cycle() > 0, and a loaded lane's first step must run
            // them against the loaded state exactly like the scalar
            // restore-then-step sequence. The priming sweep itself is
            // inert -- every lane is all-X (the memory hook sees an X
            // enable and returns X data without billing) and no lane
            // is live, so no edge effect can commit.
            psim_->step();
            lanes_.resize(PackedSimulator::kLanes);
        }
    }

    msp::System &sys() { return *sys_; }
    Simulator &sim() { return *sim_; }

    /** Pop/steal-simulate-commit until all work drains or fails. */
    void
    explore(SharedState &sh)
    {
        if (cfg_.packedExplore) {
            explorePacked(sh);
            return;
        }
        for (;;) {
            if (sh.failed.load())
                break;
            Pending p;
            bool got = sh.popOwn(id_, p);
            if (!got && sh.queues.size() > 1) {
                got = sh.stealFrom(id_, p);
                // Back off after a failed steal sweep: when workers
                // outnumber cores, re-spinning over the victims'
                // mutexes starves the owners mid-push.
                if (!got)
                    std::this_thread::yield();
            }
            if (got) {
                sh.pathsExplored.fetch_add(
                    1, std::memory_order_relaxed);
                // Exceptions must not escape a worker thread (that
                // would terminate the process); convert them into
                // the engine's normal failure reporting.
                try {
                    runPath(sh, std::move(p));
                } catch (const std::exception &e) {
                    sh.fail(std::string("worker exception: ") +
                            e.what());
                }
                if (sh.inflight.fetch_sub(1) == 1) {
                    std::lock_guard<std::mutex> lock(sh.idleMu);
                    sh.idleCv.notify_all();
                }
                continue;
            }
            std::unique_lock<std::mutex> lock(sh.idleMu);
            sh.idleCv.wait(lock, [&] {
                return sh.failed.load() || sh.inflight.load() == 0 ||
                       sh.queued.load(std::memory_order_acquire) > 0;
            });
            if (sh.failed.load() || sh.inflight.load() == 0)
                break;
        }
        std::lock_guard<std::mutex> lock(sh.idleMu);
        sh.idleCv.notify_all();
    }

    /// @name Locally-merged results
    /// @{
    double peakPowerW = 0.0;
    uint32_t peakNode = 0;
    uint32_t peakCycleInNode = 0;
    /** Canonical identity of the peak candidate for tie-breaking:
     * (node dedup key, cycle index). Node keys are
     * partition-independent, unlike node ids, so exact power ties
     * resolve to the same logical cycle under any scheduling. */
    uint64_t peakNodeKey = 0;
    std::vector<uint32_t> peakActive;
    std::vector<uint8_t> everActive_;
    uint64_t cyclesRun = 0; ///< cycles this worker simulated

    /** Strict-weak "better candidate" order used both within a worker
     * and for the final cross-worker merge. */
    bool
    betterCandidate(double w, uint64_t node_key, uint32_t cycle) const
    {
        if (w != peakPowerW)
            return w > peakPowerW;
        if (peakPowerW == 0.0)
            return false; // no candidate yet is only beaten by w > 0
        if (node_key != peakNodeKey)
            return node_key < peakNodeKey;
        return cycle < peakCycleInNode;
    }
    /// @}

  private:
    /** Capture the current simulator state for a fork: a delta
     * against @p base, promoted to a fresh full snapshot when the
     * path has diverged too far (or always, in Full mode). The
     * choice is a pure function of path state, so every scheduling
     * captures the same representations and the byte statistics are
     * deterministic. */
    void
    captureSim(SharedState &sh,
               const std::shared_ptr<const Simulator::Snapshot> &base,
               std::shared_ptr<const Simulator::Snapshot> &out_full,
               std::shared_ptr<const Simulator::DeltaSnapshot>
                   &out_delta) const
    {
        size_t full_bytes = Simulator::bytesOf(*base);
        sh.snapshotBytesFull.fetch_add(full_bytes,
                                       std::memory_order_relaxed);
        if (cfg_.snapshotMode == SnapshotMode::Delta) {
            Simulator::DeltaSnapshot d = sim_->snapshotDelta(base);
            if (d.deltaBytes() * kDeltaPromoteDen <=
                full_bytes * kDeltaPromoteNum) {
                sh.snapshotBytesCopied.fetch_add(
                    d.deltaBytes(), std::memory_order_relaxed);
                out_delta = std::make_shared<
                    const Simulator::DeltaSnapshot>(std::move(d));
                return;
            }
        }
        sh.snapshotBytesCopied.fetch_add(full_bytes,
                                         std::memory_order_relaxed);
        out_full = std::make_shared<const Simulator::Snapshot>(
            sim_->snapshot());
    }

    // Dedup keys are full-simulator-state + memory + schedule-phase
    // + fork-target hashes (built inline at the fork): hashing the
    // complete state, not just the architectural state, guarantees
    // that when two racing paths map to one key their continuations
    // are identical -- so the merged node's trace, and every number
    // derived from it, is independent of which path claimed the key.
    // The scenario schedule phase participates because under a
    // scheduled scenario the same state continues differently at
    // different points of the period.
    void
    runPath(SharedState &sh, Pending p)
    {
        msp::System &sys = *sys_;
        Simulator &sim = *sim_;
        const msp::CpuHandles &h = sys.handles();
        power::PowerContext &ctx = *ctx_;
        const scenario::Scenario &scen = cfg_.scenario;

        std::shared_ptr<const Simulator::Snapshot> base;
        if (p.simDelta) {
            sim.restore(*p.simDelta);
            base = p.simDelta->base;
        } else {
            sim.restore(*p.simFull);
            base = p.simFull;
        }
        sys.restore(*p.sysSnap);

        uint32_t nodeId = p.node;
        TreeNode *nodePtr = p.nodePtr;
        uint64_t nodeKey = p.nodeKey;
        uint32_t forcedPc = p.forcedPc;
        uint32_t lastPc = p.lastKnownPc;
        uint32_t curInstr = p.curInstrAddr;
        uint64_t pathCycles = p.pathCycles;
        bool applyInit = p.applyInit;

        // Per-cycle data is buffered locally and committed to the
        // owned tree node at the fork/leaf boundary.
        std::vector<float> powerW;
        std::vector<std::vector<float>> modulePowerW;
        std::vector<CycleInfo> cycleInfo;

        auto commitNode = [&](bool ends_halted) {
            nodePtr->powerW = std::move(powerW);
            nodePtr->modulePowerW = std::move(modulePowerW);
            nodePtr->cycleInfo = std::move(cycleInfo);
            nodePtr->endsHalted = ends_halted;
        };

        while (true) {
            if (sh.failed.load())
                return;
            if (sh.totalCycles.load(std::memory_order_relaxed) >=
                cfg_.maxTotalCycles) {
                sh.fail("symbolic cycle budget exhausted");
                return;
            }
            if (pathCycles >= cfg_.maxPathCycles) {
                sh.fail("path exceeded maxPathCycles (missing "
                        "halt or unbounded loop?)");
                return;
            }

            uint32_t applyPc = forcedPc;
            forcedPc = kNoForcedPc;
            bool applyRegs = applyInit;
            applyInit = false;
            // The post-reset index of the cycle this step simulates
            // (pathCycles increments right after), which selects the
            // operating mode the cycle's power is computed at.
            uint64_t cycleIdx = pathCycles;
            sim.step([&](Simulator &s) {
                // Algorithm 1 line 11, generalized: the scenario
                // says which port bits are X this cycle.
                sys.driveCycle(s, scen.portWordAt(pathCycles));
                if (applyRegs) {
                    // Scenario initial-register constraints: narrow
                    // the boot-X registers once, right after reset,
                    // the same way forks narrow the PC.
                    for (const auto &[reg, value] : scen.regInit)
                        s.forceBus(h.regs[reg],
                                   Word16::known(value));
                }
                if (applyPc != kNoForcedPc) {
                    // Algorithm 1's update_PC_next: constrain only the
                    // PC flops, right after the edge, before fetch
                    // logic evaluates.
                    s.forceBus(h.pc, Word16::known(uint16_t(applyPc)));
                }
            });
            sh.totalCycles.fetch_add(1, std::memory_order_relaxed);
            ++cyclesRun;
            ++pathCycles;

            Word16 pcNow = sys.readPc(sim);
            if (pcNow.isFullyKnown()) {
                lastPc = pcNow.value;
            } else {
                sh.fail("PC became X without fork interception");
                return;
            }
            int fsm = sys.fsmState(sim);
            if (fsm == msp::kStFetch)
                curInstr = lastPc; // the word under fetch

            // ---- Per-cycle Algorithm 2 assignment ----
            // Under an operating-mode schedule the cycle's energy is
            // scaled by its mode's (vdd/vdd_lib)^2 and its power uses
            // the mode's clock; otherwise the classic fixed-point
            // path (bit-identical: no extra arithmetic).
            double w;
            double modeScale = 1.0, modeFreq = ctx.freqHz();
            if (modeFactors_.empty()) {
                w = ctx.cycleBoundPowerW(sim);
            } else {
                const std::pair<double, double> &mf = modeFactors_
                    [size_t(cycleIdx % modeFactors_.size())];
                modeScale = mf.first;
                modeFreq = mf.second;
                w = ctx.cycleBoundPowerW(sim, modeScale, modeFreq);
            }
            powerW.push_back(float(w));
            if (cfg_.recordModuleTrace) {
                std::vector<double> mod = ctx.cycleModulePowerW(sim);
                if (!modeFactors_.empty()) {
                    // Same rescaling per module: (sw_m + static_m)
                    // * scale * f_mode, expressed as a ratio against
                    // the reference-clock value.
                    double ratio =
                        modeScale * (modeFreq / ctx.freqHz());
                    for (double &m : mod)
                        m *= ratio;
                }
                modulePowerW.emplace_back(mod.begin(), mod.end());
                CycleInfo info;
                info.instrPc = curInstr;
                info.fsmState = uint8_t(fsm < 0 ? 255 : fsm);
                cycleInfo.push_back(info);
            }
            if (cfg_.recordActiveSets) {
                for (GateId g : sim.activeGates())
                    everActive_[g] = 1;
            }
            uint32_t cyc = uint32_t(powerW.size() - 1);
            if (betterCandidate(w, nodeKey, cyc)) {
                peakPowerW = w;
                peakNode = nodeId;
                peakCycleInNode = cyc;
                peakNodeKey = nodeKey;
                if (cfg_.recordActiveSets)
                    peakActive.assign(sim.activeGates().begin(),
                                      sim.activeGates().end());
            }

            if (sys.xStoreFault()) {
                sh.fail("store with unknown address or enable "
                        "(X-store); see DESIGN.md section 5");
                return;
            }

            if (sys.halted()) {
                commitNode(true); // leaf: end of this execution path
                return;
            }
            if (fsm == msp::kStHalt) {
                sh.fail("core trapped (invalid instruction) at "
                        "pc~0x" + std::to_string(lastPc));
                return;
            }

            // ---- Algorithm 1 line 17: will PC_next be X? ----
            bool pcNextX = false;
            for (GateId g : h.pc) {
                if (sim.predictSeqValue(g) == V4::X) {
                    pcNextX = true;
                    break;
                }
            }
            if (!pcNextX)
                continue;

            // Resolve feasible targets from the (concrete) IR.
            Word16 ir = sys.readIr(sim);
            if (!ir.isFullyKnown()) {
                sh.fail("X program counter with unknown IR");
                return;
            }
            isa::Decoded dec = isa::decode(ir.value, 0, 0);
            if (!dec.valid || !isa::isJump(dec.instr.op)) {
                sh.fail("unresolvable X program counter (op " +
                        std::string(isa::opName(dec.instr.op)) +
                        "): indirect jump through unknown data");
                return;
            }

            // At EXEC of a jump the PC holds the fall-through address.
            uint32_t fallThrough = lastPc;
            uint32_t taken =
                (lastPc +
                 uint32_t(int32_t(dec.instr.jumpOffsetWords) * 2)) &
                0xffff;
            uint32_t targets[2] = {taken, fallThrough};
            unsigned numTargets = taken == fallThrough ? 1 : 2;

            // Hash keys and capture the fork state before touching
            // any shared structure: both read only worker-local
            // state, and they are the heavy part of a fork. The
            // state is hashed once (target and schedule phase enter
            // via final mixes) and the snapshots are shared by both
            // child Pendings.
            uint64_t keyBase = sim.hashFullState();
            sys.memory().hashInto(keyBase);
            keyBase ^= 0xda942042e4dd58b5ull *
                       (scen.dedupPhase(pathCycles) + 1);
            uint64_t keys[2];
            for (unsigned t = 0; t < numTargets; ++t)
                keys[t] = keyBase ^ 0x9e3779b97f4a7c15ull *
                                        (uint64_t(targets[t]) + 1);
            std::shared_ptr<const Simulator::Snapshot> childFull;
            std::shared_ptr<const Simulator::DeltaSnapshot> childDelta;
            captureSim(sh, base, childFull, childDelta);
            auto sysSnap =
                std::make_shared<const msp::System::Snapshot>(
                    sys.snapshot());

            // Commit this node's trace (we own it; no lock), then
            // resolve each target against the sharded dedup map.
            nodePtr->branchPc = (lastPc - 2) & 0xffff;
            commitNode(false);
            resolveFork(sh, nodePtr, nodeId, targets, keys,
                        numTargets, childFull, childDelta, sysSnap,
                        lastPc, curInstr, pathCycles);
            return; // continuations live on the work queues
        }
    }

    /** Resolve fork targets against the sharded dedup map, link
     * edges from @p nodePtr, and enqueue new children on this
     * worker's deque -- the tail shared by the scalar and packed
     * forks, so the key -> node semantics cannot diverge. Returns
     * false when the node budget failed the engine. */
    bool
    resolveFork(
        SharedState &sh, TreeNode *nodePtr, uint32_t nodeId,
        const uint32_t *targets, const uint64_t *keys,
        unsigned numTargets,
        const std::shared_ptr<const Simulator::Snapshot> &childFull,
        const std::shared_ptr<const Simulator::DeltaSnapshot>
            &childDelta,
        const std::shared_ptr<const msp::System::Snapshot> &sysSnap,
        uint32_t lastPc, uint32_t curInstr, uint64_t pathCycles)
    {
        for (unsigned t = 0; t < numTargets; ++t) {
            uint64_t key = keys[t];
            SharedState::Shard &shard =
                sh.shards[SharedState::shardOf(key)];
            uint32_t child = kNoNode;
            TreeNode *childPtr = nullptr;
            {
                std::lock_guard<std::mutex> lock(shard.mu);
                auto it = shard.visited.find(key);
                if (it != shard.visited.end()) {
                    // Algorithm 1 line 19: already simulated (or
                    // claimed by a racing worker, which will
                    // simulate the identical continuation); merge.
                    nodePtr->edges.push_back(
                        TreeEdge{targets[t], it->second, true});
                    sh.dedupMerges.fetch_add(
                        1, std::memory_order_relaxed);
                    continue;
                }
                // New state: allocate its node while holding the
                // shard (lock order: shard -> tree, never the
                // reverse), so a racing twin either sees our map
                // entry or blocks until it does.
                {
                    std::lock_guard<std::mutex> tlock(sh.treeMu);
                    if (sh.tree->numNodes() >= cfg_.maxNodes) {
                        sh.fail("execution tree node budget "
                                "exhausted");
                        return false;
                    }
                    child = sh.tree->newNode(nodeId);
                    childPtr = &sh.tree->node(child);
                }
                shard.visited.emplace(key, child);
            }
            nodePtr->edges.push_back(
                TreeEdge{targets[t], child, false});
            Pending next;
            next.simFull = childFull;
            next.simDelta = childDelta;
            next.sysSnap = sysSnap;
            next.node = child;
            next.nodePtr = childPtr;
            next.nodeKey = key;
            next.forcedPc = targets[t];
            next.lastKnownPc = lastPc;
            next.curInstrAddr = curInstr;
            next.pathCycles = pathCycles;
            sh.push(id_, std::move(next));
        }
        return true;
    }

    // ---- Packed frontier (SymbolicConfig::packedExplore) ----
    //
    // Up to 64 pending paths ride the PackedSimulator's lanes at
    // once: a lane is loaded from a Pending's (delta or full)
    // snapshot, advanced by the shared level-bucketed sweep until it
    // reaches its own fork / halt / failure boundary, then transposed
    // back to a scalar snapshot for the exact same dedup, capture and
    // commit path runPath takes. The lane-identity invariant of the
    // packed kernel makes every per-lane byte -- values, activity,
    // energies, and therefore hashes, keys, traces and snapshots --
    // equal to the scalar run's, which is the whole bit-identity
    // argument: same keys => same node set, edges and merge counts;
    // same traces => same peak/energy/NPE/envelope; same snapshot
    // bytes => same byte statistics. Only scheduling statistics
    // (steals, batch/occupancy counters, per-worker cycles) differ.

    /** One lane's in-flight continuation (the live part of a
     *  Pending, plus the path-local trace buffers of runPath). */
    struct Lane {
        bool live = false;
        bool applyInit = false;
        uint32_t node = 0;
        TreeNode *nodePtr = nullptr;
        uint64_t nodeKey = 0;
        uint32_t forcedPc = kNoForcedPc;
        uint32_t lastPc = 0;
        uint32_t curInstr = 0;
        uint64_t pathCycles = 0;
        /** Absolute simulator cycle of the lane (the scalar sim's
         *  cycle() after restore + steps); stamps extracted
         *  snapshots so prune engagement and deltas line up. */
        uint64_t absCycle = 0;
        /** Snapshot base the lane restored from (delta denominator
         *  and diff base for this lane's own fork captures). */
        std::shared_ptr<const Simulator::Snapshot> base;
        std::vector<float> powerW;
        std::vector<std::vector<float>> modulePowerW;
        std::vector<CycleInfo> cycleInfo;
    };

    /** explore()'s pop/steal/idle protocol with up to 64 paths in
     *  flight at once. */
    void
    explorePacked(SharedState &sh)
    {
        for (;;) {
            if (sh.failed.load())
                break;
            // Refill every free lane while work is available; steals
            // fill lanes the own deque cannot.
            unsigned loadedNow = 0;
            uint64_t freeMask = ~liveMask_;
            while (freeMask) {
                unsigned l = unsigned(__builtin_ctzll(freeMask));
                Pending p;
                bool got = sh.popOwn(id_, p);
                if (!got && sh.queues.size() > 1)
                    got = sh.stealFrom(id_, p);
                if (!got)
                    break;
                freeMask &= freeMask - 1;
                sh.pathsExplored.fetch_add(
                    1, std::memory_order_relaxed);
                loadLane(l, std::move(p));
                ++loadedNow;
            }
            if (loadedNow)
                sh.packedBatches.fetch_add(
                    1, std::memory_order_relaxed);
            if (liveMask_) {
                // Exceptions must not escape the worker thread (see
                // explore()).
                try {
                    stepBatch(sh);
                } catch (const std::exception &e) {
                    sh.fail(std::string("worker exception: ") +
                            e.what());
                }
                continue;
            }
            std::unique_lock<std::mutex> lock(sh.idleMu);
            sh.idleCv.wait(lock, [&] {
                return sh.failed.load() ||
                       sh.inflight.load() == 0 ||
                       sh.queued.load(std::memory_order_acquire) > 0;
            });
            if (sh.failed.load() || sh.inflight.load() == 0)
                break;
        }
        std::lock_guard<std::mutex> lock(sh.idleMu);
        sh.idleCv.notify_all();
    }

    /** Install @p p into lane @p l -- the packed counterpart of
     *  runPath's restore prologue. */
    void
    loadLane(unsigned l, Pending p)
    {
        Lane &L = lanes_[l];
        if (p.simDelta) {
            Simulator::Snapshot snap =
                Simulator::materialize(*p.simDelta);
            psim_->loadLaneState(l, snap);
            L.absCycle = snap.cycle;
            L.base = p.simDelta->base;
        } else {
            psim_->loadLaneState(l, *p.simFull);
            L.absCycle = p.simFull->cycle;
            L.base = p.simFull;
        }
        laneMem_[l].restore(p.sysSnap->mem);
        // Pending paths are never halted or faulted (either would
        // have ended the parent as a leaf / failure, not a fork).
        uint64_t bit = uint64_t(1) << l;
        haltedMask_ &= ~bit;
        faultMask_ &= ~bit;
        L.live = true;
        L.applyInit = p.applyInit;
        L.node = p.node;
        L.nodePtr = p.nodePtr;
        L.nodeKey = p.nodeKey;
        L.forcedPc = p.forcedPc;
        L.lastPc = p.lastKnownPc;
        L.curInstr = p.curInstrAddr;
        L.pathCycles = p.pathCycles;
        L.powerW.clear();
        L.modulePowerW.clear();
        L.cycleInfo.clear();
        liveMask_ |= bit;
    }

    void
    commitLane(Lane &L, bool ends_halted)
    {
        L.nodePtr->powerW = std::move(L.powerW);
        L.nodePtr->modulePowerW = std::move(L.modulePowerW);
        L.nodePtr->cycleInfo = std::move(L.cycleInfo);
        L.nodePtr->endsHalted = ends_halted;
    }

    /** Free lane @p l and account its path as done (the per-path
     *  inflight decrement of explore()). */
    void
    retireLane(SharedState &sh, unsigned l)
    {
        lanes_[l].live = false;
        lanes_[l].base.reset();
        liveMask_ &= ~(uint64_t(1) << l);
        if (sh.inflight.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> lock(sh.idleMu);
            sh.idleCv.notify_all();
        }
    }

    /** Per-lane mirror of System::fsmState. */
    int
    fsmStateLane(unsigned l) const
    {
        const msp::CpuHandles &h = sys_->handles();
        int found = -1;
        for (unsigned s = 0; s < msp::kNumStates; ++s) {
            V4 v = psim_->valueLane(h.state[s], l);
            if (v == V4::X)
                return -1;
            if (v == V4::One) {
                if (found >= 0)
                    return -1;
                found = int(s);
            }
        }
        return found;
    }

    /** One packed cycle of every live lane: the per-lane mirror of
     *  one runPath loop iteration (same check order, same failure
     *  strings), retiring lanes that reach their fork / halt
     *  boundary this cycle. */
    void
    stepBatch(SharedState &sh)
    {
        PackedSimulator &ps = *psim_;
        const msp::CpuHandles &h = sys_->handles();
        power::PowerContext &ctx = *ctx_;
        const scenario::Scenario &scen = cfg_.scenario;

        for (uint64_t m = liveMask_; m; m &= m - 1) {
            Lane &L = lanes_[unsigned(__builtin_ctzll(m))];
            if (sh.totalCycles.load(std::memory_order_relaxed) >=
                cfg_.maxTotalCycles) {
                sh.fail("symbolic cycle budget exhausted");
                return;
            }
            if (L.pathCycles >= cfg_.maxPathCycles) {
                sh.fail("path exceeded maxPathCycles (missing "
                        "halt or unbounded loop?)");
                return;
            }
        }

        std::array<Word16, PackedSimulator::kLanes> ports;
        ports.fill(Word16::allX());
        for (uint64_t m = liveMask_; m; m &= m - 1) {
            unsigned l = unsigned(__builtin_ctzll(m));
            ports[l] = scen.portWordAt(lanes_[l].pathCycles);
        }
        uint64_t stepped = liveMask_;
        ps.step([&](PackedSimulator &s) {
            // driveCycle splatted to all lanes (dead lanes' inputs
            // are dont-cares: their edges are skipped and their
            // values never read), then runPath's per-path forces
            // narrowed to single lanes.
            s.setInput(h.rstn, V64::splat(V4::One));
            s.setInput(h.irq, V64::splat(V4::Zero));
            s.setInputBusLanes(h.portIn, ports);
            for (uint64_t m = stepped; m; m &= m - 1) {
                unsigned l = unsigned(__builtin_ctzll(m));
                Lane &L = lanes_[l];
                if (L.applyInit) {
                    L.applyInit = false;
                    for (const auto &[reg, value] : scen.regInit)
                        s.forceBusLane(h.regs[reg], l,
                                       Word16::known(value));
                }
                if (L.forcedPc != kNoForcedPc) {
                    s.forceBusLane(
                        h.pc, l,
                        Word16::known(uint16_t(L.forcedPc)));
                    L.forcedPc = kNoForcedPc;
                }
            }
        });
        unsigned nLive = unsigned(__builtin_popcountll(stepped));
        sh.totalCycles.fetch_add(nLive, std::memory_order_relaxed);
        sh.packedSweeps.fetch_add(1, std::memory_order_relaxed);
        sh.packedLaneCycles.fetch_add(nLive,
                                      std::memory_order_relaxed);
        cyclesRun += nLive;

        if (cfg_.recordActiveSets) {
            size_t n = everActive_.size();
            for (GateId g = 0; g < n; ++g)
                if (ps.activeMask(g) & stepped)
                    everActive_[g] = 1;
        }

        for (uint64_t m = stepped; m; m &= m - 1) {
            unsigned l = unsigned(__builtin_ctzll(m));
            uint64_t lbit = uint64_t(1) << l;
            Lane &L = lanes_[l];
            uint64_t cycleIdx = L.pathCycles; // mode phase of this step
            ++L.pathCycles;
            ++L.absCycle;

            Word16 pcNow = ps.readBusLane(h.pc, l);
            if (pcNow.isFullyKnown()) {
                L.lastPc = pcNow.value;
            } else {
                sh.fail("PC became X without fork interception");
                return;
            }
            int fsm = fsmStateLane(l);
            if (fsm == msp::kStFetch)
                L.curInstr = L.lastPc;

            double w;
            double modeScale = 1.0, modeFreq = ctx.freqHz();
            if (modeFactors_.empty()) {
                w = ctx.cyclePowerW(ps.boundEnergyJ(l));
            } else {
                const std::pair<double, double> &mf = modeFactors_
                    [size_t(cycleIdx % modeFactors_.size())];
                modeScale = mf.first;
                modeFreq = mf.second;
                w = ctx.cyclePowerW(ps.boundEnergyJ(l), modeScale,
                                    modeFreq);
            }
            L.powerW.push_back(float(w));
            if (cfg_.recordModuleTrace) {
                std::vector<double> mod = ctx.cycleModulePowerW(
                    ps.moduleBoundEnergyLaneJ(l));
                if (!modeFactors_.empty()) {
                    double ratio =
                        modeScale * (modeFreq / ctx.freqHz());
                    for (double &mm : mod)
                        mm *= ratio;
                }
                L.modulePowerW.emplace_back(mod.begin(), mod.end());
                CycleInfo info;
                info.instrPc = L.curInstr;
                info.fsmState = uint8_t(fsm < 0 ? 255 : fsm);
                L.cycleInfo.push_back(info);
            }
            uint32_t cyc = uint32_t(L.powerW.size() - 1);
            if (betterCandidate(w, L.nodeKey, cyc)) {
                peakPowerW = w;
                peakNode = L.node;
                peakCycleInNode = cyc;
                peakNodeKey = L.nodeKey;
                if (cfg_.recordActiveSets) {
                    // Ascending gate id, like the canonicalized
                    // scalar activeGates() view.
                    peakActive.clear();
                    size_t n = everActive_.size();
                    for (GateId g = 0; g < n; ++g)
                        if (ps.activeMask(g) & lbit)
                            peakActive.push_back(g);
                }
            }

            if (faultMask_ & lbit) {
                sh.fail("store with unknown address or enable "
                        "(X-store); see DESIGN.md section 5");
                return;
            }
            if (haltedMask_ & lbit) {
                commitLane(L, /*ends_halted=*/true);
                retireLane(sh, l);
                continue;
            }
            if (fsm == msp::kStHalt) {
                sh.fail("core trapped (invalid instruction) at "
                        "pc~0x" + std::to_string(L.lastPc));
                return;
            }

            bool pcNextX = false;
            for (GateId g : h.pc) {
                if (ps.predictSeqValueLane(g, l) == V4::X) {
                    pcNextX = true;
                    break;
                }
            }
            if (!pcNextX)
                continue;
            if (!forkLane(sh, l))
                return;
        }
    }

    /** The fork tail of runPath for lane @p l: resolve targets from
     *  the lane's (concrete) IR, hash and capture the transposed
     *  lane state, and hand the children to resolveFork. Returns
     *  false when the engine failed. */
    bool
    forkLane(SharedState &sh, unsigned l)
    {
        Lane &L = lanes_[l];
        PackedSimulator &ps = *psim_;
        const msp::CpuHandles &h = sys_->handles();
        const scenario::Scenario &scen = cfg_.scenario;

        Word16 ir = ps.readBusLane(h.ir, l);
        if (!ir.isFullyKnown()) {
            sh.fail("X program counter with unknown IR");
            return false;
        }
        isa::Decoded dec = isa::decode(ir.value, 0, 0);
        if (!dec.valid || !isa::isJump(dec.instr.op)) {
            sh.fail("unresolvable X program counter (op " +
                    std::string(isa::opName(dec.instr.op)) +
                    "): indirect jump through unknown data");
            return false;
        }

        uint32_t fallThrough = L.lastPc;
        uint32_t taken =
            (L.lastPc +
             uint32_t(int32_t(dec.instr.jumpOffsetWords) * 2)) &
            0xffff;
        uint32_t targets[2] = {taken, fallThrough};
        unsigned numTargets = taken == fallThrough ? 1 : 2;

        // Same key recipe as the scalar fork, over the transposed
        // lane state (lane identity makes the hashed bytes equal);
        // hashSnapshotState applies the prune-basis rule against the
        // snapshot's own cycle, so --static-prune keys match too.
        Simulator::Snapshot snap =
            ps.extractLaneState(l, L.absCycle);
        uint64_t keyBase = sim_->hashSnapshotState(snap);
        laneMem_[l].hashInto(keyBase);
        keyBase ^= 0xda942042e4dd58b5ull *
                   (scen.dedupPhase(L.pathCycles) + 1);
        uint64_t keys[2];
        for (unsigned t = 0; t < numTargets; ++t)
            keys[t] = keyBase ^ 0x9e3779b97f4a7c15ull *
                                    (uint64_t(targets[t]) + 1);
        std::shared_ptr<const Simulator::Snapshot> childFull;
        std::shared_ptr<const Simulator::DeltaSnapshot> childDelta;
        captureLane(sh, L, std::move(snap), childFull, childDelta);
        auto sysSnap = std::make_shared<const msp::System::Snapshot>(
            msp::System::Snapshot{laneMem_[l].snapshot(),
                                  /*halted=*/false,
                                  /*xStoreFault=*/false});

        L.nodePtr->branchPc = (L.lastPc - 2) & 0xffff;
        commitLane(L, /*ends_halted=*/false);
        if (!resolveFork(sh, L.nodePtr, L.node, targets, keys,
                         numTargets, childFull, childDelta, sysSnap,
                         L.lastPc, L.curInstr, L.pathCycles))
            return false;
        retireLane(sh, l);
        return true;
    }

    /** captureSim for a transposed lane state: the same promote rule
     *  and byte statistics, with the delta diffed between snapshots
     *  (Simulator::deltaBetween) instead of read out of a live
     *  simulator. */
    void
    captureLane(SharedState &sh, Lane &L, Simulator::Snapshot snap,
                std::shared_ptr<const Simulator::Snapshot> &out_full,
                std::shared_ptr<const Simulator::DeltaSnapshot>
                    &out_delta) const
    {
        size_t full_bytes = Simulator::bytesOf(*L.base);
        sh.snapshotBytesFull.fetch_add(full_bytes,
                                       std::memory_order_relaxed);
        if (cfg_.snapshotMode == SnapshotMode::Delta) {
            Simulator::DeltaSnapshot d =
                Simulator::deltaBetween(snap, L.base);
            if (d.deltaBytes() * kDeltaPromoteDen <=
                full_bytes * kDeltaPromoteNum) {
                sh.snapshotBytesCopied.fetch_add(
                    d.deltaBytes(), std::memory_order_relaxed);
                out_delta = std::make_shared<
                    const Simulator::DeltaSnapshot>(std::move(d));
                return;
            }
        }
        sh.snapshotBytesCopied.fetch_add(full_bytes,
                                         std::memory_order_relaxed);
        out_full = std::make_shared<const Simulator::Snapshot>(
            std::move(snap));
    }

    SymbolicConfig cfg_;
    unsigned id_;
    std::unique_ptr<msp::System> owned_;
    msp::System *sys_ = nullptr;
    std::unique_ptr<Simulator> sim_;
    std::unique_ptr<power::PowerContext> ctx_;
    /** Per-schedule-phase (energy scale, clock Hz); empty without
     *  operating modes. */
    std::vector<std::pair<double, double>> modeFactors_;
    /// @name Packed-frontier state (null/empty unless packedExplore)
    /// @{
    std::unique_ptr<PackedSimulator> psim_;
    std::vector<Memory> laneMem_;
    std::vector<Lane> lanes_;
    uint64_t liveMask_ = 0;
    uint64_t haltedMask_ = 0;
    uint64_t faultMask_ = 0;
    /// @}
};

} // namespace

SymbolicEngine::SymbolicEngine(msp::System &sys,
                               const SymbolicConfig &cfg)
    : sys_(&sys), cfg_(cfg)
{
}

SymbolicResult
SymbolicEngine::run(const isa::Image &image)
{
    SymbolicResult res;
    const Netlist &nl = sys_->netlist();

    unsigned numWorkers = cfg_.numThreads > 1 ? cfg_.numThreads : 1;
    if (numWorkers > 1) {
        // More exploration threads than cores adds no parallelism and
        // burns time in the steal loop (results are identical at any
        // worker count, so clamping only changes the scheduling
        // statistics). Never clamp below 2: the concurrent paths stay
        // exercised even on single-core hosts.
        unsigned hw = std::thread::hardware_concurrency();
        if (hw && numWorkers > hw)
            numWorkers = std::max(2u, hw);
    }

    // Mode-schedule consistency first (like the regInit/ramInit
    // validation below, programmatic scenarios must fail as cleanly
    // as JSON ones) -- worker construction resolves mode voltages
    // against the library, so a broken schedule must never get there.
    try {
        cfg_.scenario.validate();
    } catch (const std::exception &e) {
        res.ok = false;
        res.error = e.what();
        return res;
    }

    // Algorithm 1 lines 2-5: everything X, load binary, reset. Worker
    // 0 wraps the caller's System; extra workers elaborate clones.
    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(numWorkers);
    try {
        for (unsigned i = 0; i < numWorkers; ++i)
            workers.push_back(std::make_unique<Worker>(
                *sys_, cfg_, image, i, /*owns_clone=*/i > 0));
    } catch (const std::exception &e) {
        res.ok = false;
        res.error = std::string("worker setup failed: ") + e.what();
        return res;
    }
    sys_->reset(workers[0]->sim());

    if (cfg_.staticPrune) {
        // Static quiescence: prove gates constant under the scenario
        // and let every worker simulator skip them once settled. The
        // engage cycle is the settle bound relative to the end of
        // reset: one cycle for the depth-0 combinational cones plus
        // one per sequential stage the deepest pruned proof crosses.
        // Bit-identity of all reported numbers with the unpruned
        // analysis is enforced by fuzz property 9.
        lint::ConstAnalysisOptions lopts;
        lopts.scenario = cfg_.scenario;
        const msp::CpuHandles &h = sys_->handles();
        lopts.portBits.assign(h.portIn.begin(), h.portIn.end());
        lopts.drivenConstants = {{h.rstn, V4::One},
                                 {h.irq, V4::Zero}};
        lint::ConstAnalysis ca = lint::analyzeConstants(nl, lopts);
        auto mask = std::make_shared<const std::vector<uint8_t>>(
            std::move(ca.pruneMask));
        uint64_t engage =
            workers[0]->sim().cycle() + 1 + ca.maxPruneDepth;
        for (auto &w : workers)
            w->sim().setStaticPrune(mask, engage);
    }

    // Scenario constraints are validated here, not only in the JSON
    // parser: scenarios built programmatically must fail as cleanly
    // as ones read from files.
    for (const auto &[reg, value] : cfg_.scenario.regInit) {
        (void)value;
        if (reg < 4 || reg > 15) {
            res.ok = false;
            res.error = "scenario reg_init register r" +
                        std::to_string(reg) +
                        " is not a general-purpose register "
                        "(4..15; r0-r3 are pc/sp/sr/cg)";
            return res;
        }
    }
    // Scenario initial-memory constraints, applied to the base
    // system before the root snapshot so every path inherits them.
    for (const auto &[addr, words] : cfg_.scenario.ramInit) {
        char range[32];
        std::snprintf(range, sizeof range, "0x%04x", addr);
        if (words.empty()) {
            res.ok = false;
            res.error = std::string("scenario ram_init at ") + range +
                        " has no words";
            return res;
        }
        uint32_t last = addr + uint32_t(words.size() - 1) * 2;
        if (!sys_->memory().inRam(addr) ||
            !sys_->memory().inRam(last)) {
            res.ok = false;
            res.error = std::string("scenario ram_init range [") +
                        range + ", +" +
                        std::to_string(words.size()) +
                        " words] is outside RAM";
            return res;
        }
        sys_->memory().loadRam(addr, words);
    }

    SharedState sh;
    sh.tree = &res.tree;
    sh.queues.resize(numWorkers);

    uint32_t root = res.tree.newNode(kNoNode);
    {
        Pending p;
        p.simFull = std::make_shared<const Simulator::Snapshot>(
            workers[0]->sim().snapshot());
        p.sysSnap = std::make_shared<const msp::System::Snapshot>(
            sys_->snapshot());
        p.node = root;
        p.nodePtr = &res.tree.node(root);
        p.applyInit = !cfg_.scenario.regInit.empty();
        sh.push(0, std::move(p));
    }

    if (numWorkers == 1) {
        workers[0]->explore(sh);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(numWorkers);
        for (unsigned i = 0; i < numWorkers; ++i) {
            Worker *w = workers[i].get();
            pool.emplace_back([&sh, w] { w->explore(sh); });
        }
        for (auto &t : pool)
            t.join();
    }

    res.totalCycles = sh.totalCycles.load();
    res.pathsExplored = sh.pathsExplored.load();
    res.dedupMerges = sh.dedupMerges.load();
    res.steals = sh.steals.load();
    res.snapshotBytesCopied = sh.snapshotBytesCopied.load();
    res.snapshotBytesFull = sh.snapshotBytesFull.load();
    res.packedBatches = sh.packedBatches.load();
    res.packedSweeps = sh.packedSweeps.load();
    res.packedLaneCycles = sh.packedLaneCycles.load();
    res.perWorkerCycles.reserve(numWorkers);
    for (auto &w : workers)
        res.perWorkerCycles.push_back(w->cyclesRun);

    if (sh.failed.load()) {
        res.ok = false;
        res.error = sh.error;
        return res;
    }

    // Deterministic merge: candidates are ordered by (power, then
    // canonical node key / cycle on exact ties), so the winning cycle
    // -- including its recorded active set -- is the same logical
    // cycle under any work partition or thread scheduling.
    if (cfg_.recordActiveSets)
        res.everActive.assign(nl.numGates(), 0);
    const Worker *best = nullptr;
    for (auto &w : workers) {
        if (w->peakPowerW > 0.0 &&
            (!best || best->betterCandidate(w->peakPowerW,
                                            w->peakNodeKey,
                                            w->peakCycleInNode)))
            best = w.get();
        if (cfg_.recordActiveSets)
            for (size_t g = 0; g < w->everActive_.size(); ++g)
                res.everActive[g] |= w->everActive_[g];
    }
    if (best) {
        res.peakPowerW = best->peakPowerW;
        res.peakNode = best->peakNode;
        res.peakCycleInNode = best->peakCycleInNode;
        res.peakActive = best->peakActive;
    }

    // ---- Section 3.3: peak energy over the tree ----
    power::PowerContext ctx(nl, cfg_.freqHz);
    try {
        PathEnergy pe =
            cfg_.scenario.hasModes()
                ? res.tree.maxPathEnergy(
                      cfg_.scenario.phaseTclkS(),
                      cfg_.inputDependentLoopBound)
                : res.tree.maxPathEnergy(
                      ctx.tclkS(), cfg_.inputDependentLoopBound);
        res.peakEnergyJ = pe.energyJ;
        res.maxPathCycles = pe.cycles;
        res.npeJPerCycle =
            pe.cycles ? pe.energyJ / double(pe.cycles) : 0.0;
        // ---- Per-cycle peak power envelope over the tree ----
        // Computed from the tree rather than max-merged inside the
        // workers: a dedup race can hang the same logical node under
        // either racing parent, and only the tree walk sees both
        // resulting offsets -- worker-local merges would be
        // scheduling-dependent exactly there.
        if (cfg_.recordEnvelope)
            res.envelopeW = res.tree.envelopePowerW(
                cfg_.inputDependentLoopBound);
    } catch (const std::exception &e) {
        res.ok = false;
        res.error = e.what();
        return res;
    }

    res.ok = true;
    return res;
}

} // namespace sym
} // namespace ulpeak
