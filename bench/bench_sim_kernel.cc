/**
 * @file
 * Microbenchmark of the simulation kernels: full-sweep vs.
 * event-driven cycles/second on the GA stressmark (the adversarial
 * high-activity workload) and on bench430 programs, under both a
 * concrete-input driver and the symbolic all-X port driver. Asserts
 * that both kernels accumulate identical bound energy before trusting
 * the timing, prints one row per (workload, driver), and drops
 * machine-readable results in bench_out/BENCH_sim_kernel.json (the
 * checked-in BENCH_sim_kernel.json at the repository root is a copy).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "baseline/baselines.hh"
#include "bench/bench_util.hh"
#include "bench430/benchmarks.hh"
#include "power/analysis.hh"

namespace ulpeak {
namespace {

struct Workload {
    std::string name;
    isa::Image image;
    power::RamInit ram;
    bool portX = false; ///< drive the port all-X (symbolic prefix)
};

struct Measurement {
    double cyclesPerSec = 0.0;
    double boundEnergyJ = 0.0;
    uint64_t cycles = 0;
};

Measurement
runKernel(msp::System &sys, const Workload &w, EvalMode mode,
          uint64_t target_cycles)
{
    Measurement m;
    auto t0 = std::chrono::steady_clock::now();
    while (m.cycles < target_cycles) {
        sys.memory().reset();
        sys.loadImage(w.image);
        for (auto &[addr, words] : w.ram)
            sys.memory().loadRam(addr, words);
        sys.clearHalted();
        Simulator sim(sys.netlist(), mode);
        sys.attach(sim);
        sys.reset(sim);
        Word16 port = w.portX ? Word16::allX() : Word16::known(0x5a5a);
        while (m.cycles < target_cycles && !sys.halted()) {
            sim.step([&](Simulator &s) { sys.driveCycle(s, port); });
            m.boundEnergyJ += sim.boundEnergyJ();
            ++m.cycles;
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    double sec = std::chrono::duration<double>(t1 - t0).count();
    m.cyclesPerSec = sec > 0 ? double(m.cycles) / sec : 0.0;
    return m;
}

} // namespace
} // namespace ulpeak

int
main()
{
    using namespace ulpeak;
    bench_util::printHeader(
        "sim kernel: full-sweep vs event-driven cycles/sec");

    msp::System sys(CellLibrary::tsmc65Like());

    // The paper's adversarial workload: a GA-evolved power stressmark
    // (small search; the winner is representative high-activity code).
    baseline::StressmarkConfig scfg;
    scfg.population = 8;
    scfg.generations = 3;
    scfg.evalCycles = 400;
    baseline::StressmarkResult sm =
        baseline::generateStressmark(sys, bench_util::kFreq65, scfg);

    fuzz::Rng rng(7);
    std::vector<Workload> workloads;
    workloads.push_back({"stressmark", isa::assemble(sm.bestSource),
                         {}, false});
    for (const char *name : {"mult", "binSearch", "FFT"}) {
        const bench430::Benchmark &b = bench430::benchmarkByName(name);
        baseline::InputSet in = b.makeInput(rng);
        workloads.push_back(
            {b.name, b.assembleImage(), in.ram, false});
        workloads.push_back(
            {b.name + "/x-port", b.assembleImage(), in.ram, true});
    }

    constexpr uint64_t kWarmup = 2000;
    constexpr uint64_t kMeasure = 20000;

    std::string json = "{\n  \"bench\": \"sim_kernel\",\n"
                       "  \"target_cycles\": " +
                       std::to_string(kMeasure) +
                       ",\n  \"workloads\": [\n";
    std::printf("%-16s %14s %14s %9s\n", "workload",
                "fullsweep c/s", "event c/s", "speedup");
    bool first = true;
    for (const Workload &w : workloads) {
        runKernel(sys, w, EvalMode::FullSweep, kWarmup);
        Measurement fs =
            runKernel(sys, w, EvalMode::FullSweep, kMeasure);
        Measurement ev =
            runKernel(sys, w, EvalMode::EventDriven, kMeasure);
        if (std::abs(fs.boundEnergyJ - ev.boundEnergyJ) >
            1e-12 * std::abs(fs.boundEnergyJ)) {
            std::fprintf(stderr,
                         "FATAL: kernel energy mismatch on %s "
                         "(%.17g vs %.17g)\n",
                         w.name.c_str(), fs.boundEnergyJ,
                         ev.boundEnergyJ);
            return 1;
        }
        double speedup = ev.cyclesPerSec / fs.cyclesPerSec;
        std::printf("%-16s %14.0f %14.0f %8.2fx\n", w.name.c_str(),
                    fs.cyclesPerSec, ev.cyclesPerSec, speedup);
        if (!first)
            json += ",\n";
        first = false;
        char row[256];
        std::snprintf(row, sizeof(row),
                      "    {\"name\": \"%s\", "
                      "\"fullsweep_cycles_per_sec\": %.0f, "
                      "\"event_cycles_per_sec\": %.0f, "
                      "\"speedup\": %.2f}",
                      w.name.c_str(), fs.cyclesPerSec,
                      ev.cyclesPerSec, speedup);
        json += row;
    }
    json += "\n  ]\n}\n";

    std::ofstream out(bench_util::outDir() + "BENCH_sim_kernel.json");
    out << json;
    std::printf("wrote %sBENCH_sim_kernel.json\n",
                bench_util::outDir().c_str());
    return 0;
}
