/**
 * @file
 * Memory-mapped 16x16 hardware multiplier peripheral.
 *
 * Modeled after openMSP430's multiplier: software MOVes the first
 * operand to MPY (0x0130), the second to OP2 (0x0138) -- which triggers
 * the multiplication -- and reads the 32-bit product from RESLO/RESHI
 * (0x013a/0x013c). The combinational array multiplier is by far the
 * largest and highest-power block of the design, which is exactly the
 * property the paper's mult-heavy benchmarks and OPT3 exploit.
 */

#include "msp/internal.hh"

namespace ulpeak {
namespace msp {

using hw::Builder;

void
buildMultiplier(Builder &b, CpuBuild &c)
{
    hw::ModuleScope scope(b, "multiplier");
    c.h->modMultiplier = b.currentModule();

    // Local bus decode (each peripheral snoops mab/mbWr itself).
    Bus addrWord(8);
    for (unsigned i = 0; i < 8; ++i)
        addrWord[i] = c.mab[i + 1];
    Sig isPeriph = b.inv(b.orN({c.mab[9], c.mab[10], c.mab[11],
                                c.mab[12], c.mab[13], c.mab[14],
                                c.mab[15]}));
    auto wrSel = [&](uint32_t addr) {
        return b.andN({c.mbWr, isPeriph,
                       hw::equalConst(b, addrWord, (addr >> 1) & 0xff)});
    };

    Sig mpyWr = wrSel(SystemMap::kMpy);
    Sig mpysWr = wrSel(SystemMap::kMpys);
    Sig op2Wr = wrSel(SystemMap::kOp2);
    Sig resloWr = wrSel(SystemMap::kResLo);
    Sig reshiWr = wrSel(SystemMap::kResHi);

    Sig op1Wr = b.or2(mpyWr, mpysWr);
    hw::Reg mpy = b.regDecl(16, "mpy_op1", op1Wr, c.rstn);
    mpy.connect(c.mdbOut);
    c.mpyQ = mpy.q();

    // Signed-mode flag: set by MPYS writes, cleared by MPY writes.
    hw::Reg mode = b.regDecl(1, "mpy_signed", op1Wr, c.rstn);
    mode.connect({mpysWr});
    Sig isSigned = mode.q(0);

    hw::Reg op2 = b.regDecl(16, "mpy_op2", op2Wr, c.rstn);
    op2.connect(c.mdbOut);
    c.op2Q = op2.q();

    // The product settles combinationally; results latch one cycle
    // after the OP2 write (earliest architectural read is >= 2 cycles
    // later, so software never observes the latency).
    Bus product = hw::arrayMultiplier(b, mpy.q(), op2.q());
    Bus prodLo(product.begin(), product.begin() + 16);
    Bus prodHiU(product.begin() + 16, product.end());

    // Signed correction on the upper half: for two's-complement
    // operands, p_signed = p_unsigned - (a15 ? b<<16 : 0)
    //                               - (b15 ? a<<16 : 0).
    Bus corrA = b.busAndScalar(op2.q(), mpy.q(15));
    Bus corrB = b.busAndScalar(mpy.q(), op2.q(15));
    Bus hi1 = hw::adder(b, prodHiU, b.busNot(corrA), b.one()).sum;
    Bus hi2 = hw::adder(b, hi1, b.busNot(corrB), b.one()).sum;
    Bus prodHi = b.busMux(isSigned, prodHiU, hi2);

    Bus trigger = b.reg(Bus{op2Wr}, "mpy_trigger", kNoGate, c.rstn);
    Sig latchNow = trigger[0];

    hw::Reg reslo = b.regDecl(16, "mpy_reslo",
                              b.or2(latchNow, resloWr), c.rstn);
    reslo.connect(b.busMux(latchNow, c.mdbOut, prodLo));
    c.resloQ = reslo.q();

    hw::Reg reshi = b.regDecl(16, "mpy_reshi",
                              b.or2(latchNow, reshiWr), c.rstn);
    reshi.connect(b.busMux(latchNow, c.mdbOut, prodHi));
    c.reshiQ = reshi.q();
}

} // namespace msp
} // namespace ulpeak
