/**
 * @file
 * Four-valued (well, three-valued) logic used throughout ulpeak.
 *
 * The symbolic analysis of the paper propagates unknown logic values (Xs)
 * through a gate-level netlist. We model the value domain {0, 1, X}.
 * High-impedance (Z) is not needed: the netlists we build contain no
 * tristate cells, and the paper's openMSP430 flow resolves buses in the
 * mem_backbone with muxes, as do we.
 */

#ifndef ULPEAK_LOGIC_V4_HH
#define ULPEAK_LOGIC_V4_HH

#include <cstdint>
#include <string>

namespace ulpeak {

/** A single three-valued logic value. Values 0 and 1 are concrete. */
enum class V4 : uint8_t {
    Zero = 0,
    One = 1,
    X = 2,
};

/** @return true iff @p v is a concrete 0 or 1. */
constexpr bool
isKnown(V4 v)
{
    return v != V4::X;
}

/** Convert a bool to a concrete logic value. */
constexpr V4
fromBool(bool b)
{
    return b ? V4::One : V4::Zero;
}

// The five hot logic ops below are the innermost operations of both
// simulation kernels (evalCell composes them per gate, every cycle),
// so they live here as constexpr header functions: out-of-line calls
// per signal cost more than the operation itself
// (BENCH_sim_kernel.json tracks the kernel throughput this protects).

/** Kleene AND: 0 dominates, X otherwise unless both 1. */
constexpr V4
v4And(V4 a, V4 b)
{
    if (a == V4::Zero || b == V4::Zero)
        return V4::Zero;
    if (a == V4::One && b == V4::One)
        return V4::One;
    return V4::X;
}

/** Kleene OR: 1 dominates, X otherwise unless both 0. */
constexpr V4
v4Or(V4 a, V4 b)
{
    if (a == V4::One || b == V4::One)
        return V4::One;
    if (a == V4::Zero && b == V4::Zero)
        return V4::Zero;
    return V4::X;
}

/** XOR: X if either operand is X. */
constexpr V4
v4Xor(V4 a, V4 b)
{
    if (a == V4::X || b == V4::X)
        return V4::X;
    return fromBool(a != b);
}

/** NOT: X maps to X. */
constexpr V4
v4Not(V4 a)
{
    if (a == V4::X)
        return V4::X;
    return a == V4::One ? V4::Zero : V4::One;
}

/**
 * 2:1 multiplexer with X-pessimistic select. When the select is X the
 * result is the common value of the two data inputs if they agree and are
 * known, X otherwise. This matches standard gate-level simulation
 * semantics for a mux composed of AND/OR gates except that the composed
 * network is strictly more pessimistic (it yields X even when inputs
 * agree); cells of kind MUX2 use this slightly tighter rule, which is
 * sound because the real cell output cannot differ from both inputs.
 */
constexpr V4
v4Mux(V4 sel, V4 a, V4 b)
{
    if (sel == V4::Zero)
        return a;
    if (sel == V4::One)
        return b;
    if (a == b && isKnown(a))
        return a;
    return V4::X;
}

/** Single-character representation: '0', '1' or 'x' (VCD style). */
char v4Char(V4 v);

/** Parse a '0'/'1'/'x'/'X' character; anything else yields X. */
V4 v4FromChar(char c);

/**
 * A 16-bit word in three-valued logic, stored as a value/X-mask pair.
 * Bit i is X when bit i of @ref xmask is set; otherwise bit i of
 * @ref value holds the concrete bit. X bits of @ref value are kept at 0
 * so that equal words compare equal bitwise.
 */
struct Word16 {
    uint16_t value = 0;
    uint16_t xmask = 0;

    Word16() = default;
    Word16(uint16_t v, uint16_t x) : value(uint16_t(v & ~x)), xmask(x) {}

    /** Fully concrete word. */
    static Word16
    known(uint16_t v)
    {
        return Word16(v, 0);
    }

    /** Fully unknown word. */
    static Word16
    allX()
    {
        return Word16(0, 0xffff);
    }

    bool
    isFullyKnown() const
    {
        return xmask == 0;
    }

    V4
    bit(unsigned i) const
    {
        if (xmask & (1u << i))
            return V4::X;
        return fromBool(value & (1u << i));
    }

    void
    setBit(unsigned i, V4 v)
    {
        uint16_t m = uint16_t(1u << i);
        if (v == V4::X) {
            xmask |= m;
            value = uint16_t(value & ~m);
        } else {
            xmask = uint16_t(xmask & ~m);
            if (v == V4::One)
                value |= m;
            else
                value = uint16_t(value & ~m);
        }
    }

    bool
    operator==(const Word16 &o) const
    {
        return value == o.value && xmask == o.xmask;
    }

    /** Render as 16 characters, MSB first, e.g. "00000xxxx0101010". */
    std::string toString() const;
};

} // namespace ulpeak

#endif // ULPEAK_LOGIC_V4_HH
