/**
 * @file
 * Execution unit: 16x16 register file with the PC/SP/SR special paths,
 * operand latches (SRCV/EXTD/DSTV/SRCA), address adders, the ALU and
 * the status-flag network.
 */

#include "isa/encoding.hh"
#include "msp/internal.hh"

namespace ulpeak {
namespace msp {

using hw::Builder;

void
buildExecUnit(Builder &b, CpuBuild &c)
{
    hw::ModuleScope scope(b, "exec_unit");
    c.h->modExec = b.currentModule();

    const DecodeSignals &d = c.dec;
    const auto &st = c.st;

    // ---- Register file ---------------------------------------------
    // True enable flops (DFFE) with late-bound enables: a held
    // register provably cannot toggle, which keeps idle X registers
    // out of the activity sets (Section 3.1's definition would
    // otherwise chase its own tail through a hold mux).
    std::array<hw::Reg, 16> rf;
    std::array<Sig, 16> rfEnWire;
    for (unsigned r = 0; r < 16; ++r) {
        rfEnWire[r] = b.wireDecl("r" + std::to_string(r) + "_we");
        rf[r] = b.regDecl(16, "r" + std::to_string(r), rfEnWire[r]);
        c.regQ[r] = rf[r].q();
        c.h->regs[r] = rf[r].q();
    }
    c.h->pc = c.regQ[0];
    c.h->sp = c.regQ[1];
    c.h->sr = c.regQ[2];

    std::vector<Sig> sregHot = hw::decoder(b, d.sreg);
    std::vector<Sig> dregHot = hw::decoder(b, d.dreg);

    std::vector<Bus> regBuses(c.regQ.begin(), c.regQ.end());
    Bus srcRegVal = b.busMuxOneHot(sregHot, regBuses);
    Bus dstRegVal = b.busMuxOneHot(dregHot, regBuses);

    // ---- Operand latches -------------------------------------------
    Sig srcvEn = b.or2(st[kStSrcExt], st[kStSrcRd]);
    hw::Reg srcv = b.regDecl(16, "srcv", srcvEn, c.rstn);
    srcv.connect(c.mdbIn);
    c.srcvQ = srcv.q();

    hw::Reg extd =
        b.regDecl(16, "extd", st[kStDstExt], c.rstn);
    extd.connect(c.mdbIn);
    c.extdQ = extd.q();

    hw::Reg dstv =
        b.regDecl(16, "dstv", st[kStDstRd], c.rstn);
    dstv.connect(c.mdbIn);
    c.dstvQ = dstv.q();

    // ---- Address arithmetic ----------------------------------------
    Bus pcPlus2 = hw::addConst(b, c.regQ[0], 2);
    c.spMinus2 = hw::addConst(b, c.regQ[1], 0xfffe);
    Bus autoincVal = hw::addConst(b, srcRegVal, 2);

    Sig srcHasIndex = b.or2(d.src.isIndexed, d.src.isAbsolute);
    Bus srcBase = b.busAndScalar(srcRegVal, b.inv(d.src.isAbsolute));
    Bus srcOff = b.busAndScalar(c.srcvQ, srcHasIndex);
    c.srcAddr = hw::adder(b, srcBase, srcOff, b.zero()).sum;

    hw::Reg srca =
        b.regDecl(16, "srca", st[kStSrcRd], c.rstn);
    srca.connect(c.srcAddr);
    c.srcaQ = srca.q();

    Bus dstBase = b.busAndScalar(dstRegVal, b.inv(d.dstIsAbsolute));
    c.dstAddr = hw::adder(b, dstBase, c.extdQ, b.zero()).sum;

    // Jump target: PC already points past the jump word at EXEC.
    Bus offX2(16);
    offX2[0] = b.zero();
    for (unsigned i = 0; i < 10; ++i)
        offX2[i + 1] = d.jumpOffset[i];
    for (unsigned i = 11; i < 16; ++i)
        offX2[i] = d.jumpOffset[9];
    c.jumpTarget = hw::adder(b, c.regQ[0], offX2, b.zero()).sum;

    // ---- Source operand value --------------------------------------
    Bus immOrMem = b.busMux(d.src.isConst, c.srcvQ, d.cgValue);
    c.srcVal = b.busMux(d.src.isReg, immOrMem, srcRegVal);

    // ---- ALU ---------------------------------------------------------
    Sig flagC = c.regQ[2][isa::kFlagC];
    Sig flagZ = c.regQ[2][isa::kFlagZ];
    Sig flagN = c.regQ[2][isa::kFlagN];
    Sig flagV = c.regQ[2][isa::kFlagV];

    auto opI = [&](isa::Op op) { return d.fmtIOp[size_t(op)]; };
    Sig opMov = opI(isa::Op::Mov);
    Sig opAdd = opI(isa::Op::Add);
    Sig opAddc = opI(isa::Op::Addc);
    Sig opSubc = opI(isa::Op::Subc);
    Sig opSub = opI(isa::Op::Sub);
    Sig opCmp = opI(isa::Op::Cmp);
    Sig opBit = opI(isa::Op::Bit);
    Sig opBic = opI(isa::Op::Bic);
    Sig opBis = opI(isa::Op::Bis);
    Sig opXor = opI(isa::Op::Xor);
    Sig opAnd = opI(isa::Op::And);
    Sig opRrc = d.fmtIIOp[0];
    Sig opSwpb = d.fmtIIOp[1];
    Sig opRra = d.fmtIIOp[2];
    Sig opSxt = d.fmtIIOp[3];

    Sig subFamily = b.orN({opSub, opSubc, opCmp});
    Sig addFamily = b.orN({opAdd, opAddc, subFamily});

    // Operand A: source, inverted for subtract-family (a = ~src).
    Bus aluA(16);
    for (unsigned i = 0; i < 16; ++i)
        aluA[i] = b.xor2(c.srcVal[i], subFamily);
    // Operand B: destination (register or latched memory value); the
    // format-II shifts use the source operand itself.
    Bus aluB = b.busMux(d.dstIsMem, dstRegVal, c.dstvQ);

    Sig cin = b.or2(b.or2(opSub, opCmp),
                    b.and2(b.or2(opAddc, opSubc), flagC));
    hw::AddResult add = hw::adder(b, aluA, aluB, cin);

    Bus andR = b.busAnd(c.srcVal, aluB);
    Bus bicR(16), bisR(16), xorR(16);
    for (unsigned i = 0; i < 16; ++i) {
        bicR[i] = b.and2(b.inv(c.srcVal[i]), aluB[i]);
        bisR[i] = b.or2(c.srcVal[i], aluB[i]);
        xorR[i] = b.xor2(c.srcVal[i], aluB[i]);
    }

    // Shifter network (operand = srcVal).
    Bus rraR(16), rrcR(16), swpbR(16), sxtR(16);
    for (unsigned i = 0; i < 15; ++i) {
        rraR[i] = c.srcVal[i + 1];
        rrcR[i] = c.srcVal[i + 1];
    }
    rraR[15] = c.srcVal[15];
    rrcR[15] = flagC;
    for (unsigned i = 0; i < 8; ++i) {
        swpbR[i] = c.srcVal[i + 8];
        swpbR[i + 8] = c.srcVal[i];
        sxtR[i] = c.srcVal[i];
        sxtR[i + 8] = c.srcVal[7];
    }

    std::vector<Sig> resSel = {opMov, opAdd,  opAddc, opSubc, opSub,
                               opCmp, opBit,  opBic,  opBis,  opXor,
                               opAnd, opRrc,  opSwpb, opRra,  opSxt};
    std::vector<Bus> resVal = {c.srcVal, add.sum, add.sum, add.sum,
                               add.sum,  add.sum, andR,    bicR,
                               bisR,     xorR,    andR,    rrcR,
                               swpbR,    rraR,    sxtR};
    c.aluResult = b.busMuxOneHot(resSel, resVal);

    // Memory write data is latched at the EXEC edge: the flags EXEC
    // writes into SR feed the ALU's carry-in, so recomputing the
    // result during DSTWR would use post-update flags for ADDC/SUBC/
    // RRC. (This is exactly why multi-cycle cores carry a result
    // register.)
    hw::Reg resv = b.regDecl(16, "resv", st[kStExec], c.rstn);
    resv.connect(c.aluResult);
    c.resvQ = resv.q();

    // ---- Flags -------------------------------------------------------
    Sig rNonZero = b.orN(c.aluResult);
    Sig rZero = b.inv(rNonZero);
    Sig rNeg = c.aluResult[15];
    Sig vAdd = b.and2(b.xnor2(aluA[15], aluB[15]),
                      b.xor2(aluA[15], add.sum[15]));
    Sig shiftC = c.srcVal[0];
    Sig rrShift = b.or2(opRra, opRrc);
    Sig cNext = b.mux(addFamily,
                      b.mux(rrShift, rNonZero, shiftC), add.carryOut);
    Sig vXor = b.and2(c.srcVal[15], aluB[15]);
    Sig vNext = b.mux(addFamily, b.and2(opXor, vXor), vAdd);

    // ---- Jump condition ---------------------------------------------
    // cond: 0 JNE, 1 JEQ, 2 JNC, 3 JC, 4 JN, 5 JGE, 6 JL, 7 JMP
    Sig nxv = b.xor2(flagN, flagV);
    std::vector<Bus> condChoices = {
        Bus{b.inv(flagZ)}, Bus{flagZ},      Bus{b.inv(flagC)},
        Bus{flagC},        Bus{flagN},      Bus{b.inv(nxv)},
        Bus{nxv},          Bus{b.one()}};
    c.jumpTaken = b.busMuxN(d.jumpCond, condChoices)[0];

    // ---- Register file write paths ----------------------------------
    Sig stFetchy = b.orN({st[kStFetch], st[kStSrcExt], st[kStDstExt]});
    Sig execWr = st[kStExec];
    Sig autoincNow = b.and2(st[kStSrcRd], d.src.isIndirectInc);
    Sig jumpWr = b.andN({execWr, d.isJump, c.jumpTaken});
    Sig callWr = b.and2(st[kStPushWr], d.isCall);

    // SR next value when only flags update: splice C/Z/N/V into the
    // current SR.
    Bus srFlags = c.regQ[2];
    Bus srNext = srFlags;
    srNext[isa::kFlagC] = cNext;
    srNext[isa::kFlagZ] = rZero;
    srNext[isa::kFlagN] = rNeg;
    srNext[isa::kFlagV] = vNext;

    for (unsigned r = 0; r < 16; ++r) {
        Sig aluWrThis =
            b.and2(execWr, b.or2(b.and2(d.writesDstReg, dregHot[r]),
                                 b.and2(d.fmtIIWritesReg, sregHot[r])));
        Sig autoincThis = b.and2(autoincNow, sregHot[r]);

        std::vector<Sig> sel;
        std::vector<Bus> val;
        sel.push_back(aluWrThis);
        val.push_back(c.aluResult);
        sel.push_back(autoincThis);
        val.push_back(autoincVal);

        if (r == isa::kPc) {
            sel.push_back(st[kStResetV]);
            val.push_back(c.mdbIn);
            sel.push_back(stFetchy);
            val.push_back(pcPlus2);
            sel.push_back(jumpWr);
            val.push_back(c.jumpTarget);
            sel.push_back(callWr);
            val.push_back(c.srcVal);
        } else if (r == isa::kSp) {
            sel.push_back(st[kStPushWr]);
            val.push_back(c.spMinus2);
        } else if (r == isa::kSr) {
            // ALU flag update unless the instruction explicitly wrote
            // SR (explicit write wins, as in the ISS).
            Sig flagsWr = b.andN(
                {execWr, d.setsFlags, b.inv(aluWrThis)});
            sel.push_back(flagsWr);
            val.push_back(srNext);
        }

        b.wireConnect(rfEnWire[r], b.orN(sel));
        rf[r].connect(b.busMuxOneHot(sel, val));
    }
}

} // namespace msp
} // namespace ulpeak
