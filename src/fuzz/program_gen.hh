/**
 * @file
 * Seeded random MSP430 program generator.
 *
 * Produces well-formed assembly programs for differential testing
 * (src/cosim): weighted over every supported addressing mode and both
 * instruction formats, with forward conditional branches, bounded
 * counter loops, multiplier-peripheral sequences, and memory traffic
 * confined to two valid RAM windows. A fixed prologue makes every
 * architectural register and the touched RAM window concrete before
 * the random body runs, so lockstep comparison against the gate-level
 * core never sees uninitialized-X noise; a fixed epilogue stores to
 * the DONE address and parks in a forever loop, the same shape the
 * bench430 programs use.
 *
 * Generation is fully deterministic in the passed Rng: one seed, one
 * program, on every platform. This is the contract the divergence
 * reports rely on ("reproduce with --seed N").
 */

#ifndef ULPEAK_FUZZ_PROGRAM_GEN_HH
#define ULPEAK_FUZZ_PROGRAM_GEN_HH

#include <string>

#include "fuzz/rng.hh"

namespace ulpeak {
namespace fuzz {

struct ProgramGenOptions {
    /** Random body items; one item may expand to a few instructions
     *  (loops, push/pop pairs). */
    unsigned instructions = 24;
    /** Permit reads of the input port (&0x0020). Under the symbolic
     *  engine these become X and force execution-tree forks at
     *  flag-dependent branches -- enable for symbolic-determinism
     *  fuzzing, keep for concrete cosim too (the ISS models the
     *  port). */
    bool allowPortInput = true;
    /** Permit hardware-multiplier peripheral sequences. */
    bool allowMultiplier = true;
    /** Permit bounded counter loops (always terminating). */
    bool allowLoops = true;
    /** Iteration count of generated loops is 1..maxLoopIterations. */
    unsigned maxLoopIterations = 6;
};

struct GeneratedProgram {
    std::string source; ///< complete program (.org, vectors, halt)
    std::string body;   ///< the random body alone (for reports)
};

/** Generate one program; consumes randomness from @p rng only. */
GeneratedProgram generateProgram(Rng &rng,
                                 const ProgramGenOptions &opts);

} // namespace fuzz
} // namespace ulpeak

#endif // ULPEAK_FUZZ_PROGRAM_GEN_HH
