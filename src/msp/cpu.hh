/**
 * @file
 * The ULP processor: an MSP430-ISA gate-level core plus peripherals,
 * organized into the same microarchitectural modules the paper reports
 * power for (Figure 3.6): frontend, exec_unit, mem_backbone,
 * multiplier, sfr, watchdog, clk_module, dbg.
 *
 * The CPU is a multi-cycle implementation driven by a one-hot FSM whose
 * schedule is exactly isa::MicroPlan: FETCH, SRCEXT, SRCRD, DSTEXT,
 * DSTRD, EXEC, DSTWR, PUSHWR (+ RESETV and HALT). Program/data memory
 * is a behavioral macro (sim::Memory) connected through a netlist hook,
 * as RAM macros are in the paper's placed-and-routed design.
 */

#ifndef ULPEAK_MSP_CPU_HH
#define ULPEAK_MSP_CPU_HH

#include <memory>
#include <string>

#include "hw/builder.hh"
#include "isa/assembler.hh"
#include "isa/iss.hh"
#include "netlist/netlist.hh"
#include "sim/memory.hh"
#include "sim/simulator.hh"

namespace ulpeak {
namespace msp {

using SystemMap = isa::SystemMap;

/** FSM state indices (one-hot bit positions). */
enum FsmState : unsigned {
    kStResetV = 0,
    kStFetch,
    kStSrcExt,
    kStSrcRd,
    kStDstExt,
    kStDstRd,
    kStExec,
    kStDstWr,
    kStPushWr,
    kStHalt,
    kNumStates,
};

const char *fsmStateName(unsigned s);

/** Externally interesting nets of the built CPU. */
struct CpuHandles {
    // Primary inputs
    hw::Sig rstn = kNoGate;   ///< active-low reset
    hw::Sig irq = kNoGate;    ///< interrupt request pin (Ch. 6)
    hw::Bus portIn;           ///< 16-bit input port (reads X under
                              ///< symbolic analysis)
    hw::Bus memData;          ///< RAM/ROM read data (hook-driven)

    // Observation points
    hw::Bus pc;               ///< regfile r0 flops
    hw::Bus sr;               ///< regfile r2 flops
    hw::Bus sp;               ///< regfile r1 flops
    std::array<hw::Bus, 16> regs;
    hw::Bus ir;               ///< instruction register flops
    std::array<hw::Sig, kNumStates> state; ///< one-hot FSM nets

    // Memory interface (outputs of mem_backbone)
    hw::Bus mab;              ///< address bus
    hw::Sig mbEn = kNoGate;   ///< access enable
    hw::Sig mbWr = kNoGate;   ///< write enable
    hw::Bus mdbOut;           ///< write data

    uint32_t memHookId = 0;

    // Module ids for per-module power reporting
    ModuleId modFrontend = 0, modExec = 0, modMemBackbone = 0,
             modMultiplier = 0, modSfr = 0, modWatchdog = 0,
             modClk = 0, modDbg = 0;
};

/**
 * A complete simulatable system: netlist + behavioral memory + halt
 * tracking. One System pairs with one Simulator.
 */
class System {
  public:
    /** Build and finalize the netlist against @p lib. */
    explicit System(const CellLibrary &lib);

    const Netlist &netlist() const { return nl_; }
    /** The library the netlist was built against (voltage scaling). */
    const CellLibrary &lib() const { return lib_; }
    const CpuHandles &handles() const { return h_; }
    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }

    void loadImage(const isa::Image &image);

    /**
     * Register the memory hook, edge function and halt watcher on
     * @p sim. Must be called once per Simulator.
     */
    void attach(Simulator &sim);

    /**
     * Reset cycles driven before analysis begins (Algorithm 1 line 4:
     * "propagate reset signal"). Long enough for the power-on
     * X-transient to settle while the core is held in reset, so the
     * recorded trace starts at the application, not at the boot
     * glitch.
     */
    static constexpr unsigned kResetCycles = 6;

    /**
     * Drive the reset sequence; after this the core is in RESETV.
     * @p pre_cycle (may be null) runs inside each reset step's driver,
     * after the inputs are set -- the fault layer injects SEUs there
     * so reset cycles are injectable like any other cycle.
     */
    void reset(Simulator &sim,
               const std::function<void(Simulator &)> &pre_cycle =
                   nullptr);

    /**
     * Per-cycle input driver: deasserts reset, holds irq at 0 (Ch. 6
     * mechanism) and drives the input port with @p port_in.
     */
    void driveCycle(Simulator &sim, Word16 port_in);

    bool halted() const { return halted_; }
    void clearHalted() { halted_ = false; }

    /** True when a store with unknown address/enable was attempted. */
    bool xStoreFault() const { return xStoreFault_; }

    /** Architectural views (for checks and the symbolic engine). */
    Word16 readPc(const Simulator &sim) const;
    Word16 readReg(const Simulator &sim, unsigned r) const;
    Word16 readIr(const Simulator &sim) const;
    /** Index of the active FSM state; -1 if not one-hot concrete. */
    int fsmState(const Simulator &sim) const;

    /** Per-access behavioral RAM/ROM energy [J] (read and write). */
    static constexpr double kMemAccessEnergyJ = 1.6e-12;

    /// @name Snapshot of behavioral state (symbolic forking)
    /// @{
    struct Snapshot {
        Memory::Snapshot mem;
        bool halted;
        bool xStoreFault;
    };
    Snapshot snapshot() const;
    void restore(const Snapshot &s);
    /// @}

  private:
    void memHook(Simulator &sim);
    void memEdge(Simulator &sim);

    CellLibrary lib_;
    Netlist nl_;
    CpuHandles h_;
    Memory mem_;
    bool halted_ = false;
    bool xStoreFault_ = false;
};

} // namespace msp
} // namespace ulpeak

#endif // ULPEAK_MSP_CPU_HH
