/**
 * @file
 * Shared helpers for gate-level CPU tests: build a System once per
 * process (construction elaborates ~10k gates) and run assembled
 * programs to completion.
 */

#ifndef ULPEAK_TESTS_CPU_TEST_UTIL_HH
#define ULPEAK_TESTS_CPU_TEST_UTIL_HH

#include <memory>
#include <string>

#include "isa/assembler.hh"
#include "isa/iss.hh"
#include "msp/cpu.hh"

namespace ulpeak {
namespace test {

/** Lazily-built shared netlist (the netlist itself is immutable). */
inline msp::System &
sharedSystem()
{
    static msp::System system(CellLibrary::tsmc65Like());
    return system;
}

struct GateRun {
    bool halted = false;
    bool xStoreFault = false;
    uint64_t cycles = 0;
    std::array<uint16_t, 16> regs{};
    std::array<bool, 16> regKnown{};
};

/**
 * Run @p image on the gate-level core with a concrete @p port_in until
 * halt or @p max_cycles. The System's memory is (re)loaded, so calls
 * are independent.
 */
inline GateRun
runGate(msp::System &sys, const isa::Image &image, uint16_t port_in,
        uint64_t max_cycles = 60000)
{
    sys.memory().reset();
    sys.loadImage(image);
    sys.clearHalted();

    Simulator sim(sys.netlist());
    sys.attach(sim);
    sys.reset(sim);
    while (!sys.halted() && sim.cycle() < max_cycles) {
        sim.step([&](Simulator &s) {
            sys.driveCycle(s, Word16::known(port_in));
        });
    }

    GateRun r;
    r.halted = sys.halted();
    r.xStoreFault = sys.xStoreFault();
    r.cycles = sim.cycle();
    for (unsigned i = 0; i < 16; ++i) {
        Word16 w = sys.readReg(sim, i);
        r.regKnown[i] = w.isFullyKnown();
        r.regs[i] = w.value;
    }
    return r;
}

/** Convenience: wrap @p body in the standard prologue/epilogue.
 * Holding the watchdog matters for symbolic tests: a free-running
 * counter makes every cycle's state unique, defeating Algorithm 1's
 * dedup. */
inline std::string
wrapProgram(const std::string &body)
{
    return R"(
        .org 0xf800
start:
        mov #0x0a00, sp
        mov #0x5a80, &0x0120
)" + body + R"(
        mov #1, &0x01f0
__forever:
        jmp __forever
        .org 0xfffe
        .word start
    )";
}

} // namespace test
} // namespace ulpeak

#endif // ULPEAK_TESTS_CPU_TEST_UTIL_HH
