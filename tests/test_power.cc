/**
 * @file
 * Tests for the power-analysis layer: PowerContext accounting,
 * TraceStats, the statistical (design-tool) estimator's properties,
 * and concrete gate-level runs.
 */

#include <fstream>

#include <gtest/gtest.h>

#include "power/analysis.hh"
#include "power/statistical.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

TEST(PowerContext, StaticFloor)
{
    msp::System &sys = test::sharedSystem();
    power::PowerContext ctx(sys.netlist(), 100e6);
    // Clock + leakage floor: calibrated near the paper's ~1.3 mW.
    double floor = ctx.cyclePowerW(0.0);
    EXPECT_GT(floor, 1.0e-3);
    EXPECT_LT(floor, 1.6e-3);
    // Power scales with frequency (leakage does not).
    power::PowerContext slow(sys.netlist(), 50e6);
    EXPECT_LT(slow.cyclePowerW(0.0), floor);
    EXPECT_GT(slow.cyclePowerW(0.0), floor / 2.0);
}

TEST(PowerContext, ModuleStaticSplitsSumToTotal)
{
    msp::System &sys = test::sharedSystem();
    const Netlist &nl = sys.netlist();
    power::PowerContext ctx(nl, 100e6);
    double sum = 0.0;
    for (size_t m = 0; m < nl.numModules(); ++m)
        sum += ctx.moduleStaticEnergyJ(ModuleId(m));
    EXPECT_NEAR(sum, ctx.staticEnergyPerCycleJ(),
                ctx.staticEnergyPerCycleJ() * 1e-9);
}

TEST(TraceStats, PeakAndAverage)
{
    power::TraceStats s;
    s.add(1.0);
    s.add(3.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.peakW, 3.0);
    EXPECT_EQ(s.peakCycle, 1u);
    EXPECT_DOUBLE_EQ(s.avgW(), 2.0);
    EXPECT_DOUBLE_EQ(s.energyJ(1e-8), 6.0 * 1e-8);
}

TEST(Statistical, ToggleRateMonotonic)
{
    msp::System &sys = test::sharedSystem();
    auto lo = power::statisticalPower(sys.netlist(), 100e6, 0.1);
    auto mid = power::statisticalPower(sys.netlist(), 100e6, 0.3);
    auto hi = power::statisticalPower(sys.netlist(), 100e6, 0.6);
    EXPECT_LT(lo.totalPowerW, mid.totalPowerW);
    EXPECT_LT(mid.totalPowerW, hi.totalPowerW);
    // Static parts are rate-independent.
    EXPECT_DOUBLE_EQ(lo.clockPowerW, hi.clockPowerW);
    EXPECT_DOUBLE_EQ(lo.leakagePowerW, hi.leakagePowerW);
}

TEST(Statistical, ProbabilitiesAreProbabilities)
{
    msp::System &sys = test::sharedSystem();
    auto r = power::statisticalPower(sys.netlist(), 100e6, 0.2);
    for (size_t g = 0; g < r.probOne.size(); ++g) {
        ASSERT_GE(r.probOne[g], 0.0);
        ASSERT_LE(r.probOne[g], 1.0);
        ASSERT_GE(r.density[g], 0.0);
        ASSERT_LE(r.density[g], 1.0);
    }
}

TEST(Statistical, ZeroActivityIsStaticOnly)
{
    msp::System &sys = test::sharedSystem();
    auto r = power::statisticalPower(sys.netlist(), 100e6, 0.0);
    EXPECT_DOUBLE_EQ(r.switchingPowerW, 0.0);
    EXPECT_NEAR(r.totalPowerW, r.clockPowerW + r.leakagePowerW, 1e-12);
}

TEST(ConcreteRun, HaltsAndRecords)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(test::wrapProgram(R"(
        mov #5, r4
cr_loop:
        dec r4
        jnz cr_loop
    )"));
    power::PowerContext ctx(sys.netlist(), 100e6);
    power::ConcreteRunOptions opts;
    opts.recordModules = true;
    auto run = power::runConcrete(sys, img, ctx, opts);
    EXPECT_TRUE(run.halted);
    EXPECT_GT(run.stats.cycles, 10u);
    EXPECT_EQ(run.traceW.size(), run.stats.cycles);
    EXPECT_GT(run.stats.peakW, ctx.cyclePowerW(0.0));
    EXPECT_GT(run.totalEnergyJ, 0.0);
    // Per-module traces align with the scalar trace.
    ASSERT_FALSE(run.traceModulesW.empty());
    for (const auto &m : run.traceModulesW)
        EXPECT_EQ(m.size(), run.traceW.size());
}

TEST(ConcreteRun, DeterministicForSameInputs)
{
    msp::System &sys = test::sharedSystem();
    isa::Image img = isa::assemble(test::wrapProgram(R"(
        mov &0x0020, r4
        add r4, r4
    )"));
    power::PowerContext ctx(sys.netlist(), 100e6);
    power::ConcreteRunOptions opts;
    opts.portIn = 0x1234;
    auto a = power::runConcrete(sys, img, ctx, opts);
    auto b = power::runConcrete(sys, img, ctx, opts);
    ASSERT_EQ(a.traceW.size(), b.traceW.size());
    for (size_t i = 0; i < a.traceW.size(); ++i)
        ASSERT_EQ(a.traceW[i], b.traceW[i]);
}

TEST(ConcreteRun, CsvWriter)
{
    std::string path = ::testing::TempDir() + "ulpeak_trace.csv";
    power::writePowerCsv(path, {1.0f, 2.0f});
    std::ifstream is(path);
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line, "cycle,power_w");
    std::getline(is, line);
    EXPECT_EQ(line.substr(0, 2), "0,");
}

} // namespace
} // namespace ulpeak
