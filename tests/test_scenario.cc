/**
 * @file
 * Scenario subsystem tests: pattern/JSON parsing and presets, the
 * engine-level semantics of port/memory/register constraints
 * (constraints collapse the forks their X values caused and can only
 * tighten the bounds), schedule-phase dedup determinism under the
 * parallel exploration core, snapshot-mode bit-identity, exploration
 * statistics, and the scenario x program batch matrix with its
 * per-scenario aggregates and cache behavior.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <thread>

#include "bench430/benchmarks.hh"
#include "cli/driver.hh"
#include "peak/batch.hh"
#include "peak/peak_analysis.hh"
#include "scenario/scenario.hh"

namespace ulpeak {
namespace {

namespace fs = std::filesystem;
using scenario::PortPattern;
using scenario::Scenario;

/** A program forking twice on port bits: 4 paths unconstrained,
 *  1 path with the port pinned. */
std::string
portBranchSource()
{
    return bench430::wrapBenchmarkBody(R"(
        mov #0, r4
        mov &PIN, r5
        and #1, r5
        jz ps_skip1
        add #1, r4
ps_skip1:
        mov &PIN, r5
        and #2, r5
        jz ps_skip2
        add #2, r4
ps_skip2:
        mov r4, &OUT
)");
}

/** A program forking on an uninitialized (X) RAM word. */
std::string
ramBranchSource()
{
    return bench430::wrapBenchmarkBody(R"(
        mov #0, r4
        mov &INPUT, r5
        and #1, r5
        jz rs_skip
        add #1, r4
rs_skip:
        mov r4, &OUT
)");
}

/** A program forking on an uninitialized (X) register. */
std::string
regBranchSource()
{
    return bench430::wrapBenchmarkBody(R"(
        mov #0, r4
        and #1, r7
        jz gs_skip
        add #1, r4
gs_skip:
        mov r4, &OUT
)");
}

TEST(Scenario, PortPatternParseRoundTrip)
{
    PortPattern p = PortPattern::parse("000000000000xxxx");
    EXPECT_EQ(p.pinned, 0xfff0);
    EXPECT_EQ(p.value, 0x0000);
    EXPECT_EQ(p.toString(), "000000000000xxxx");

    PortPattern q = PortPattern::parse("1xxxxxxxxxxxxxx0");
    EXPECT_EQ(q.pinned, 0x8001);
    EXPECT_EQ(q.value, 0x8000);
    EXPECT_EQ(q.word().bit(15), V4::One);
    EXPECT_EQ(q.word().bit(0), V4::Zero);
    EXPECT_EQ(q.word().bit(7), V4::X);

    EXPECT_THROW(PortPattern::parse("0000"), std::runtime_error);
    EXPECT_THROW(PortPattern::parse("000000000000xxx2"),
                 std::runtime_error);
}

TEST(Scenario, Presets)
{
    EXPECT_TRUE(Scenario::preset("unconstrained").isUnconstrained());
    Scenario g = Scenario::preset("ports-grounded");
    EXPECT_FALSE(g.isUnconstrained());
    EXPECT_EQ(g.port.pinned, 0xffff);
    EXPECT_TRUE(g.portWordAt(0).isFullyKnown());

    Scenario s4 = Scenario::preset("sensor-4bit");
    EXPECT_EQ(s4.port.pinned, 0xfff0);

    Scenario ps = Scenario::preset("periodic-sensor");
    ASSERT_EQ(ps.portSchedule.size(), 8u);
    EXPECT_EQ(ps.portWordAt(0), Word16::allX());
    EXPECT_TRUE(ps.portWordAt(1).isFullyKnown());
    EXPECT_EQ(ps.portWordAt(8), Word16::allX()); // period wraps
    EXPECT_EQ(ps.dedupPhase(3), 3u);
    EXPECT_EQ(ps.dedupPhase(11), 3u);
    EXPECT_EQ(Scenario::preset("unconstrained").dedupPhase(7), 0u);

    EXPECT_THROW(Scenario::preset("no-such-scenario"),
                 std::runtime_error);
}

TEST(Scenario, JsonParsing)
{
    Scenario s = Scenario::fromJson(R"({
        "name": "lab-bench",
        "port": "00000000xxxxxxxx",
        "port_schedule": ["xxxxxxxxxxxxxxxx",
                          {"pinned": "0xffff", "value": 0}],
        "ram_init": [{"addr": "0x0380", "words": [17, "0xbeef"]}],
        "reg_init": [{"reg": 7, "value": "0x10"}]
    })");
    EXPECT_EQ(s.name, "lab-bench");
    EXPECT_EQ(s.port.pinned, 0xff00);
    ASSERT_EQ(s.portSchedule.size(), 2u);
    EXPECT_EQ(s.portSchedule[0].pinned, 0x0000);
    EXPECT_EQ(s.portSchedule[1].pinned, 0xffff);
    ASSERT_EQ(s.ramInit.size(), 1u);
    EXPECT_EQ(s.ramInit[0].first, 0x0380u);
    EXPECT_EQ(s.ramInit[0].second,
              (std::vector<uint16_t>{17, 0xbeef}));
    ASSERT_EQ(s.regInit.size(), 1u);
    EXPECT_EQ(s.regInit[0].first, 7u);
    EXPECT_EQ(s.regInit[0].second, 0x10);

    // Malformed inputs fail loudly.
    EXPECT_THROW(Scenario::fromJson("[]"), std::runtime_error);
    EXPECT_THROW(Scenario::fromJson(R"({"port": "short"})"),
                 std::runtime_error);
    EXPECT_THROW(Scenario::fromJson(R"({"unknown_key": 1})"),
                 std::runtime_error);
    EXPECT_THROW(
        Scenario::fromJson(R"({"reg_init": [{"reg": 0, "value": 1}]})"),
        std::runtime_error);
    EXPECT_THROW(
        Scenario::fromJson(R"({"ram_init": [{"addr": 0x}]})"),
        std::runtime_error);
}

TEST(Scenario, ResolveDispatchesPresetsAndFiles)
{
    EXPECT_EQ(Scenario::resolve("ports-grounded").port.pinned, 0xffff);

    fs::path file =
        fs::temp_directory_path() / "ulpeak_scn_test.json";
    std::ofstream(file) << R"({"port": "0000000000000000"})";
    Scenario s = Scenario::resolve(file.string());
    EXPECT_EQ(s.port.pinned, 0xffff);
    EXPECT_EQ(s.name, "ulpeak_scn_test"); // file stem becomes the name
    fs::remove(file);

    EXPECT_THROW(Scenario::resolve("/nonexistent/dir/x.json"),
                 std::runtime_error);
}

TEST(Scenario, ContentHashIgnoresNameAndSeesEveryField)
{
    auto key = [](const Scenario &s) {
        uint64_t h = 1469598103934665603ull;
        s.hashInto(h);
        return h;
    };
    Scenario a = Scenario::preset("ports-grounded");
    Scenario b = a;
    b.name = "renamed";
    EXPECT_EQ(key(a), key(b)); // names never split the cache

    Scenario c = a;
    c.port.value = 1;
    c.port.pinned = 0xffff;
    EXPECT_NE(key(a), key(c));
    Scenario d = a;
    d.ramInit.push_back({0x0380, {1}});
    EXPECT_NE(key(a), key(d));
    Scenario e = a;
    e.regInit.push_back({7, 0});
    EXPECT_NE(key(a), key(e));
}

TEST(Scenario, CacheKeyIncludesScenario)
{
    isa::Image img =
        bench430::benchmarkByName("mult").assembleImage();
    CellLibrary lib = CellLibrary::tsmc65Like();
    peak::Options u;
    peak::Options g;
    g.scenario = Scenario::preset("ports-grounded");
    EXPECT_NE(peak::cacheKey(lib, img, u),
              peak::cacheKey(lib, img, g));
    // snapshotMode, threads, kernels stay excluded.
    peak::Options full = u;
    full.snapshotMode = sym::SnapshotMode::Full;
    full.numThreads = 4;
    full.evalMode = EvalMode::FullSweep;
    EXPECT_EQ(peak::cacheKey(lib, img, u),
              peak::cacheKey(lib, img, full));
}

TEST(Scenario, PinnedPortsCollapseForksAndTightenBounds)
{
    msp::System sys(CellLibrary::tsmc65Like());
    isa::Image img = isa::assemble(portBranchSource());

    peak::Options uopts;
    uopts.recordEnvelope = true;
    peak::Report unc = peak::analyze(sys, img, uopts);
    ASSERT_TRUE(unc.ok) << unc.error;
    EXPECT_GE(unc.pathsExplored, 3u); // two port branches fork

    peak::Options gopts = uopts;
    gopts.scenario = Scenario::preset("ports-grounded");
    peak::Report grounded = peak::analyze(sys, img, gopts);
    ASSERT_TRUE(grounded.ok) << grounded.error;
    EXPECT_EQ(grounded.pathsExplored, 1u); // branches are concrete
    EXPECT_LE(grounded.peakPowerW, unc.peakPowerW * (1 + 1e-9));
    EXPECT_LE(grounded.peakEnergyJ, unc.peakEnergyJ * (1 + 1e-9));
    EXPECT_LE(grounded.envelope.powerW.size(),
              unc.envelope.powerW.size());

    // Pinning only bit 0 leaves the second branch (bit 1) forking.
    peak::Options bit0 = uopts;
    bit0.scenario.name = "bit0";
    bit0.scenario.port.pinned = 0x0001;
    peak::Report partial = peak::analyze(sys, img, bit0);
    ASSERT_TRUE(partial.ok) << partial.error;
    EXPECT_GT(partial.pathsExplored, grounded.pathsExplored);
    EXPECT_LT(partial.pathsExplored, unc.pathsExplored);
    EXPECT_LE(partial.peakPowerW, unc.peakPowerW * (1 + 1e-9));
}

TEST(Scenario, RamInitNarrowsUninitializedMemory)
{
    msp::System sys(CellLibrary::tsmc65Like());
    isa::Image img = isa::assemble(ramBranchSource());

    peak::Report unc = peak::analyze(sys, img, peak::Options{});
    ASSERT_TRUE(unc.ok) << unc.error;
    EXPECT_GE(unc.pathsExplored, 2u); // X RAM word forks the branch

    peak::Options copts;
    copts.scenario.name = "ram-pinned";
    copts.scenario.ramInit.push_back({0x0380, {0}});
    peak::Report con = peak::analyze(sys, img, copts);
    ASSERT_TRUE(con.ok) << con.error;
    EXPECT_EQ(con.pathsExplored, 1u);
    EXPECT_LE(con.peakPowerW, unc.peakPowerW * (1 + 1e-9));

    // Out-of-RAM init ranges fail loudly, not with an assert.
    peak::Options bad;
    bad.scenario.ramInit.push_back({0xf000, {1}});
    peak::Report b = peak::analyze(sys, img, bad);
    EXPECT_FALSE(b.ok);
    EXPECT_NE(b.error.find("outside RAM"), std::string::npos);
    EXPECT_NE(b.error.find("0xf000"), std::string::npos);
}

// Scenarios built through the library API (bypassing the JSON
// parser's checks) must fail as cleanly as ones read from files.
TEST(Scenario, ProgrammaticConstraintsAreValidated)
{
    msp::System sys(CellLibrary::tsmc65Like());
    isa::Image img = isa::assemble(regBranchSource());

    peak::Options emptyWords;
    emptyWords.scenario.ramInit.push_back({0x0380, {}});
    peak::Report a = peak::analyze(sys, img, emptyWords);
    EXPECT_FALSE(a.ok);
    EXPECT_NE(a.error.find("has no words"), std::string::npos);

    peak::Options regHigh;
    regHigh.scenario.regInit.push_back({16, 0});
    peak::Report b = peak::analyze(sys, img, regHigh);
    EXPECT_FALSE(b.ok);
    EXPECT_NE(b.error.find("general-purpose"), std::string::npos);

    peak::Options regSpecial;
    regSpecial.scenario.regInit.push_back({2, 0}); // r2 = sr
    peak::Report c = peak::analyze(sys, img, regSpecial);
    EXPECT_FALSE(c.ok);
}

// A bad --scenario spec is a usage error (exit 2), never an uncaught
// exception aborting the process.
TEST(Scenario, CliRejectsBadScenarioSpecsAsUsageErrors)
{
    const char *argv[] = {"ulpeak", "--programs", "mult",
                          "--scenario", "no-such-preset"};
    EXPECT_EQ(cli::runCli(5, argv), 2);
    const char *argv2[] = {"ulpeak", "--programs", "mult",
                           "--scenario", "/nonexistent/x.json"};
    EXPECT_EQ(cli::runCli(5, argv2), 2);
}

TEST(Scenario, RegInitNarrowsBootRegisters)
{
    msp::System sys(CellLibrary::tsmc65Like());
    isa::Image img = isa::assemble(regBranchSource());

    peak::Report unc = peak::analyze(sys, img, peak::Options{});
    ASSERT_TRUE(unc.ok) << unc.error;
    EXPECT_GE(unc.pathsExplored, 2u); // X r7 forks the branch

    peak::Options copts;
    copts.scenario.name = "r7-known";
    copts.scenario.regInit.push_back({7, 0x0001});
    peak::Report con = peak::analyze(sys, img, copts);
    ASSERT_TRUE(con.ok) << con.error;
    EXPECT_EQ(con.pathsExplored, 1u);
    EXPECT_LE(con.peakPowerW, unc.peakPowerW * (1 + 1e-9));
}

/** Field-by-field identity of two reports (the scheduling- and
 *  representation-independent parts). */
void
expectIdenticalReports(const peak::Report &a, const peak::Report &b)
{
    ASSERT_EQ(a.ok, b.ok) << a.error << " vs " << b.error;
    EXPECT_EQ(a.peakPowerW, b.peakPowerW);
    EXPECT_EQ(a.peakEnergyJ, b.peakEnergyJ);
    EXPECT_EQ(a.npeJPerCycle, b.npeJPerCycle);
    EXPECT_EQ(a.maxPathCycles, b.maxPathCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.pathsExplored, b.pathsExplored);
    EXPECT_EQ(a.dedupMerges, b.dedupMerges);
    EXPECT_EQ(a.flatTraceW, b.flatTraceW);
    EXPECT_EQ(a.envelope.powerW, b.envelope.powerW);
    EXPECT_EQ(a.envelope.windowEnergyJ, b.envelope.windowEnergyJ);
}

// A scheduled scenario makes the same simulator state reachable at
// different schedule phases; the phase-aware dedup keys must keep
// 1-vs-K-thread exploration bit-identical anyway.
TEST(Scenario, ScheduledScenarioIsThreadDeterministic)
{
    msp::System sys(CellLibrary::tsmc65Like());
    isa::Image img = isa::assemble(portBranchSource());

    peak::Options opts;
    opts.recordEnvelope = true;
    opts.scenario = Scenario::preset("periodic-sensor");
    peak::Report serial = peak::analyze(sys, img, opts);
    ASSERT_TRUE(serial.ok) << serial.error;

    opts.numThreads = 4;
    peak::Report parallel = peak::analyze(sys, img, opts);
    expectIdenticalReports(serial, parallel);
}

// Delta and full fork snapshots must be bit-identical end to end --
// and the delta representation must actually copy fewer bytes.
TEST(Scenario, SnapshotModesAreBitIdentical)
{
    msp::System sys(CellLibrary::tsmc65Like());
    for (const char *prog : {"binSearch", "tea8"}) {
        isa::Image img =
            bench430::benchmarkByName(prog).assembleImage();
        peak::Options delta;
        delta.recordEnvelope = true;
        peak::Options full = delta;
        full.snapshotMode = sym::SnapshotMode::Full;
        peak::Report rd = peak::analyze(sys, img, delta);
        peak::Report rf = peak::analyze(sys, img, full);
        expectIdenticalReports(rd, rf);
        if (rd.pathsExplored > 1) {
            EXPECT_LT(rd.snapshotBytesCopied, rf.snapshotBytesCopied)
                << prog;
            EXPECT_EQ(rf.snapshotBytesCopied, rf.snapshotBytesFull)
                << prog;
        }
    }
}

TEST(Scenario, ExplorationStatistics)
{
    msp::System sys(CellLibrary::tsmc65Like());
    isa::Image img =
        bench430::benchmarkByName("binSearch").assembleImage();
    peak::Options opts;
    peak::Report r = peak::analyze(sys, img, opts);
    ASSERT_TRUE(r.ok);
    // Serial exploration: one worker, no steals, its cycle count is
    // the whole run.
    EXPECT_EQ(r.steals, 0u);
    ASSERT_EQ(r.perWorkerCycles.size(), 1u);
    EXPECT_EQ(r.perWorkerCycles[0], r.totalCycles);
    EXPECT_GT(r.snapshotBytesFull, 0u);
    EXPECT_LE(r.snapshotBytesCopied, r.snapshotBytesFull);

    opts.numThreads = 3;
    peak::Report p = peak::analyze(sys, img, opts);
    ASSERT_TRUE(p.ok);
    // The engine clamps workers to the host's core count (never
    // below 2, so concurrency stays exercised on small hosts).
    unsigned hw = std::thread::hardware_concurrency();
    unsigned expectWorkers =
        hw && hw < 3 ? std::max(2u, hw) : 3u;
    ASSERT_EQ(p.perWorkerCycles.size(), expectWorkers);
    uint64_t sum = 0;
    for (uint64_t c : p.perWorkerCycles)
        sum += c;
    EXPECT_EQ(sum, p.totalCycles);
    // Scheduling-independent statistics stay pinned across thread
    // counts; steals/perWorkerCycles are allowed to differ.
    EXPECT_EQ(p.snapshotBytesCopied, r.snapshotBytesCopied);
    EXPECT_EQ(p.snapshotBytesFull, r.snapshotBytesFull);
}

TEST(Scenario, BatchMatrixAndPerScenarioAggregates)
{
    auto suite = cli::resolvePrograms({"mult", "intAVG"});
    peak::BatchOptions opts;
    opts.analysis.recordEnvelope = true;
    opts.scenarios = {Scenario::preset("unconstrained"),
                      Scenario::preset("ports-grounded")};
    peak::BatchReport rep = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(rep.ok);

    // Scenario-major matrix.
    ASSERT_EQ(rep.programs.size(), 4u);
    EXPECT_EQ(rep.programs[0].name, "mult");
    EXPECT_EQ(rep.programs[0].scenario, "unconstrained");
    EXPECT_EQ(rep.programs[1].name, "intAVG");
    EXPECT_EQ(rep.programs[1].scenario, "unconstrained");
    EXPECT_EQ(rep.programs[2].scenario, "ports-grounded");
    EXPECT_EQ(rep.programs[3].scenario, "ports-grounded");

    ASSERT_EQ(rep.scenarios.size(), 2u);
    EXPECT_TRUE(rep.scenarios[0].ok);
    EXPECT_TRUE(rep.scenarios[1].ok);
    // Top-level aggregates mirror the first scenario.
    EXPECT_EQ(rep.maxPeakPowerW, rep.scenarios[0].maxPeakPowerW);
    EXPECT_EQ(rep.suiteEnvelope.powerW,
              rep.scenarios[0].suiteEnvelope.powerW);
    // Constraining can only tighten the suite maxima.
    EXPECT_LE(rep.scenarios[1].maxPeakPowerW,
              rep.scenarios[0].maxPeakPowerW * (1 + 1e-9));
    EXPECT_LE(rep.scenarios[1].maxPeakEnergyJ,
              rep.scenarios[0].maxPeakEnergyJ * (1 + 1e-9));
    EXPECT_TRUE(rep.scenarios[1].suiteEnvelope.present);

    // JSON without timings stays byte-identical across jobs.
    peak::BatchOptions par = opts;
    par.jobs = 4;
    peak::BatchReport rep4 = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, par);
    EXPECT_EQ(cli::toJson(rep, opts, /*include_timings=*/false),
              cli::toJson(rep4, par, /*include_timings=*/false));
    EXPECT_EQ(cli::toCsv(rep).substr(0, cli::toCsv(rep).find("wall")),
              cli::toCsv(rep4).substr(0,
                                      cli::toCsv(rep4).find("wall")));
}

TEST(Scenario, ModeJsonParsing)
{
    Scenario s = Scenario::fromJson(R"({
        "name": "duty",
        "modes": [{"name": "burst", "vdd": 1.0, "freq_hz": 100e6},
                  {"name": "sleep", "vdd": 0.6, "freq_hz": 8e6}],
        "mode_schedule": ["burst", 1, "sleep", 0],
        "assert": [{"mode": "sleep", "max_power_w": 1e-3,
                    "settle_cycles": 2}]
    })");
    ASSERT_EQ(s.modes.size(), 2u);
    EXPECT_EQ(s.modes[0].name, "burst");
    EXPECT_DOUBLE_EQ(s.modes[1].vdd, 0.6);
    // Names and indices resolve to the same schedule regardless of
    // key order in the file.
    EXPECT_EQ(s.modeSchedule, (std::vector<uint32_t>{0, 1, 1, 0}));
    ASSERT_EQ(s.assertions.size(), 1u);
    EXPECT_EQ(s.assertions[0].mode, "sleep");
    EXPECT_DOUBLE_EQ(s.assertions[0].maxPowerW, 1e-3);
    EXPECT_EQ(s.assertions[0].settleCycles, 2u);
    EXPECT_TRUE(s.hasModes());
    EXPECT_FALSE(s.isUnconstrained()); // modes change the numbers
    EXPECT_EQ(s.modePeriod(), 4u);
    EXPECT_EQ(s.modeAt(6).name, "sleep"); // wraps: 6 % 4 = 2
    ASSERT_EQ(s.phaseTclkS().size(), 4u);
    EXPECT_DOUBLE_EQ(s.phaseTclkS()[0], 1.0 / 100e6);
    EXPECT_DOUBLE_EQ(s.phaseTclkS()[2], 1.0 / 8e6);
}

TEST(Scenario, ModeJsonRejectsMalformedInputs)
{
    const char *mode_hdr = R"({"modes": [{"name": "a", "vdd": 1.0,
                                          "freq_hz": 1e6}],)";
    // A schedule with nothing to schedule.
    EXPECT_THROW(Scenario::fromJson(R"({"mode_schedule": [0]})"),
                 std::runtime_error);
    // Unknown mode names and out-of-range indices.
    EXPECT_THROW(Scenario::fromJson(std::string(mode_hdr) +
                                    R"("mode_schedule": ["b"]})"),
                 std::runtime_error);
    EXPECT_THROW(Scenario::fromJson(std::string(mode_hdr) +
                                    R"("mode_schedule": [1]})"),
                 std::runtime_error);
    // Empty schedules are a structural error, not "no schedule".
    EXPECT_THROW(Scenario::fromJson(std::string(mode_hdr) +
                                    R"("mode_schedule": []})"),
                 std::runtime_error);
    // Non-positive vdd / freq.
    EXPECT_THROW(Scenario::fromJson(
                     R"({"modes": [{"name": "a", "vdd": 0,
                                    "freq_hz": 1e6}]})"),
                 std::runtime_error);
    EXPECT_THROW(Scenario::fromJson(
                     R"({"modes": [{"name": "a", "vdd": 1.0,
                                    "freq_hz": -8e6}]})"),
                 std::runtime_error);
    // Duplicate mode names (two legal modes, colliding labels).
    EXPECT_THROW(Scenario::fromJson(
                     R"({"modes": [
                         {"name": "a", "vdd": 1.0, "freq_hz": 1e6},
                         {"name": "a", "vdd": 0.6, "freq_hz": 8e6}]})"),
                 std::runtime_error);
    // Duplicate object keys never silently last-write-wins.
    EXPECT_THROW(Scenario::fromJson(
                     R"({"modes": [{"name": "a", "vdd": 1.0,
                                    "freq_hz": 1e6}],
                         "modes": [{"name": "b", "vdd": 0.6,
                                    "freq_hz": 8e6}]})"),
                 std::runtime_error);
    // Incomplete mode objects.
    EXPECT_THROW(Scenario::fromJson(
                     R"({"modes": [{"name": "a", "vdd": 1.0}]})"),
                 std::runtime_error);
    // Assertions must name a declared mode with a positive ceiling.
    EXPECT_THROW(Scenario::fromJson(std::string(mode_hdr) +
                                    R"("assert": [{"mode": "nope",
                                        "max_power_w": 1e-3}]})"),
                 std::runtime_error);
    EXPECT_THROW(Scenario::fromJson(std::string(mode_hdr) +
                                    R"("assert": [{"mode": "a",
                                        "max_power_w": 0}]})"),
                 std::runtime_error);
}

TEST(Scenario, DedupPhaseMixesPortAndModePeriods)
{
    Scenario s = Scenario::preset("periodic-sensor"); // port period 8
    s.modes.push_back({"a", 1.0, 1e6});
    s.modes.push_back({"b", 0.8, 1e6});
    s.modeSchedule = {0, 1, 1}; // mode period 3
    // Mixed-radix: equal dedupPhase iff congruent mod both periods.
    EXPECT_EQ(s.dedupPhase(0), s.dedupPhase(24)); // lcm(8,3) = 24
    EXPECT_NE(s.dedupPhase(0), s.dedupPhase(8));  // same port phase
    EXPECT_NE(s.dedupPhase(0), s.dedupPhase(3));  // same mode phase
    std::vector<uint64_t> phases;
    for (uint64_t c = 0; c < 24; ++c)
        phases.push_back(s.dedupPhase(c));
    std::sort(phases.begin(), phases.end());
    EXPECT_EQ(std::unique(phases.begin(), phases.end()),
              phases.end()); // injective over one combined period
}

TEST(Scenario, ContentHashSeesModesButNotLabels)
{
    auto key = [](const Scenario &s) {
        uint64_t h = 1469598103934665603ull;
        s.hashInto(h);
        return h;
    };
    Scenario a = Scenario::preset("duty-cycled-dvfs");
    Scenario renamed = a;
    renamed.modes[0].name = "sprint";
    EXPECT_EQ(key(a), key(renamed)); // labels never split the cache

    Scenario asserted = a;
    asserted.assertions.push_back({"sleep", 1e-3, 2});
    EXPECT_EQ(key(a), key(asserted)); // post-processing only

    Scenario vddChanged = a;
    vddChanged.modes[1].vdd = 0.7;
    EXPECT_NE(key(a), key(vddChanged));
    Scenario freqChanged = a;
    freqChanged.modes[0].freqHz = 50e6;
    EXPECT_NE(key(a), key(freqChanged));
    Scenario reScheduled = a;
    reScheduled.modeSchedule[7] = 0;
    EXPECT_NE(key(a), key(reScheduled));

    // And the analysis cache key inherits the distinction.
    isa::Image img =
        bench430::benchmarkByName("mult").assembleImage();
    CellLibrary lib = CellLibrary::tsmc65Like();
    peak::Options u;
    peak::Options m;
    m.scenario = a;
    EXPECT_NE(peak::cacheKey(lib, img, u), peak::cacheKey(lib, img, m));
}

// A mode schedule re-prices cycles but never changes which executions
// exist, so lowering every operating point can only tighten the
// bounds -- and the mode-priced analysis must stay bit-identical
// across thread counts and snapshot modes (mode phases join the
// dedup keys).
TEST(Scenario, ModeScheduleDominanceAndDeterminism)
{
    msp::System sys(CellLibrary::tsmc65Like());
    isa::Image img = isa::assemble(portBranchSource());

    peak::Options base;
    base.recordEnvelope = true;
    base.scenario = Scenario::preset("duty-cycled-dvfs");
    peak::Report rb = peak::analyze(sys, img, base);
    ASSERT_TRUE(rb.ok) << rb.error;

    peak::Options lowered = base;
    for (scenario::OperatingMode &m : lowered.scenario.modes) {
        m.vdd *= 0.8;
        m.freqHz *= 0.5;
    }
    peak::Report rl = peak::analyze(sys, img, lowered);
    ASSERT_TRUE(rl.ok) << rl.error;
    EXPECT_LE(rl.peakPowerW, rb.peakPowerW);
    EXPECT_LE(rl.peakEnergyJ, rb.peakEnergyJ * (1 + 1e-6));
    ASSERT_EQ(rl.envelope.powerW.size(), rb.envelope.powerW.size());
    for (size_t c = 0; c < rl.envelope.powerW.size(); ++c)
        ASSERT_LE(rl.envelope.powerW[c], rb.envelope.powerW[c]) << c;

    peak::Options par = base;
    par.numThreads = 4;
    expectIdenticalReports(rb, peak::analyze(sys, img, par));
    peak::Options full = base;
    full.snapshotMode = sym::SnapshotMode::Full;
    expectIdenticalReports(rb, peak::analyze(sys, img, full));
    peak::Options sweep = base;
    sweep.evalMode = EvalMode::FullSweep;
    expectIdenticalReports(rb, peak::analyze(sys, img, sweep));
}

// The --modes report (JSON without timings) is byte-identical across
// batch worker counts, like every other deterministic artifact.
TEST(Scenario, ModeReportByteIdenticalAcrossJobs)
{
    auto suite = cli::resolvePrograms({"mult", "intAVG"});
    peak::BatchOptions opts;
    opts.analysis.recordEnvelope = true;
    opts.scenarios = {Scenario::preset("duty-cycled-dvfs")};
    opts.scenarios[0].assertions.push_back({"sleep", 1e-3, 2});
    peak::BatchReport r1 = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(r1.ok);
    peak::BatchOptions par = opts;
    par.jobs = 4;
    peak::BatchReport r4 = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, par);
    double vdd = CellLibrary::tsmc65Like().vdd();
    auto m1 = cli::buildModeReports(r1, opts.scenarios, vdd);
    auto m4 = cli::buildModeReports(r4, par.scenarios, vdd);
    EXPECT_EQ(cli::toModesJson(r1, m1), cli::toModesJson(r4, m4));
    EXPECT_EQ(cli::toModesCsv(r1, m1), cli::toModesCsv(r4, m4));
    EXPECT_EQ(cli::toJson(r1, opts, /*include_timings=*/false),
              cli::toJson(r4, par, /*include_timings=*/false));
}

TEST(Scenario, BatchCacheIsScenarioAware)
{
    fs::path dir = fs::temp_directory_path() /
                   ("ulpeak_scn_cache_" +
                    std::to_string(::getpid()));
    fs::remove_all(dir);
    auto suite = cli::resolvePrograms({"mult"});
    peak::BatchOptions opts;
    opts.cacheDir = dir.string();
    opts.scenarios = {Scenario::preset("unconstrained"),
                      Scenario::preset("ports-grounded")};

    peak::BatchReport cold = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    ASSERT_TRUE(cold.ok);
    EXPECT_EQ(cold.cacheMisses, 2u); // one entry per scenario

    peak::BatchReport warm = peak::analyzeBatch(
        CellLibrary::tsmc65Like(), suite, opts);
    EXPECT_EQ(warm.cacheHits, 2u);
    for (size_t i = 0; i < cold.programs.size(); ++i) {
        EXPECT_EQ(warm.programs[i].peakPowerW,
                  cold.programs[i].peakPowerW);
        EXPECT_EQ(warm.programs[i].scenario,
                  cold.programs[i].scenario);
    }
    // The two scenarios produced distinct numbers, so a shared entry
    // would have been wrong -- prove they differ on this program.
    EXPECT_NE(cold.programs[0].peakPowerW,
              cold.programs[1].peakPowerW);
    fs::remove_all(dir);
}

} // namespace
} // namespace ulpeak
