/**
 * @file
 * Deployment scenarios: first-class descriptions of the environment
 * an application is analyzed under.
 *
 * The paper's central observation is that peak power/energy
 * requirements are application-specific; its Section 5 goes one step
 * further and shows the bounds tighten again when the analyst knows
 * something about the deployment -- e.g. that a peripheral port is
 * strapped to ground, or that a sensor drives only 4 of 16 pins. A
 * Scenario captures exactly that knowledge:
 *
 *  - per-port input constraints: each port bit is either pinned to a
 *    concrete value or left unconstrained (X), optionally as a
 *    per-cycle schedule that repeats with a fixed period
 *    (generalizing power::ConcreteRunOptions::portSchedule from
 *    concrete words to three-valued patterns);
 *  - initial-memory constraints: RAM words with known contents at
 *    boot (calibration tables, pinned input buffers) instead of
 *    Algorithm 1's all-X initialization;
 *  - initial-register constraints: architectural registers with
 *    known boot values.
 *
 * The symbolic engine drives port bits from the scenario instead of
 * all-X (sym::SymbolicConfig::scenario), so every reported number --
 * peak power, peak energy, NPE, the envelope -- is a guaranteed bound
 * over exactly the executions the scenario admits. Constraining a
 * scenario can only shrink that execution set, so every bound is <=
 * the unconstrained one (the dominance property
 * fuzz::scenarioDominanceCheck pins end-to-end).
 *
 * Scenarios come from named presets (presetNames()) or JSON files
 * (fromJsonFile; `ulpeak --scenario NAME|file.json`), participate in
 * the batch result cache by content hash (hashInto), and one
 * analyzeBatch call can sweep a whole scenario x program matrix.
 */

#ifndef ULPEAK_SCENARIO_SCENARIO_HH
#define ULPEAK_SCENARIO_SCENARIO_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "logic/v4.hh"

namespace ulpeak {
namespace scenario {

/** One cycle's three-valued port constraint: bit i of @ref pinned
 *  set means the port bit is held at bit i of @ref value; clear
 *  means the bit is unconstrained (X under symbolic analysis). */
struct PortPattern {
    uint16_t pinned = 0;
    uint16_t value = 0;

    /** The Word16 the simulator is driven with (free bits X). */
    Word16
    word() const
    {
        return Word16(value, uint16_t(~pinned));
    }

    bool
    operator==(const PortPattern &o) const
    {
        return pinned == o.pinned && value == o.value;
    }

    /** Render as 16 chars, MSB first: '0'/'1' pinned, 'x' free. */
    std::string toString() const;
    /** Parse the toString() form; throws std::runtime_error. */
    static PortPattern parse(const std::string &s);
};

struct Scenario {
    std::string name = "unconstrained";

    /** Static port constraint, used when @ref portSchedule is empty. */
    PortPattern port;
    /** Per-cycle port constraints, repeating with period size();
     *  cycle c (counted from the end of reset, like every trace and
     *  envelope) uses entry c % size(). Overrides @ref port. */
    std::vector<PortPattern> portSchedule;

    /** Concrete RAM words loaded before analysis begins (addr,
     *  words), narrowing Algorithm 1's all-X initial memory. */
    std::vector<std::pair<uint32_t, std::vector<uint16_t>>> ramInit;
    /** Concrete boot values of architectural registers (reg index
     *  4..15, value); applied once at the first post-reset cycle. */
    std::vector<std::pair<unsigned, uint16_t>> regInit;

    /** True when the scenario admits every execution (all port bits
     *  X every cycle, no memory/register constraints) -- analysis
     *  results equal the classic all-X flow exactly. */
    bool isUnconstrained() const;

    /** The constraint in force at post-reset cycle @p cycle. */
    const PortPattern &patternAt(uint64_t cycle) const;
    /** The port word driven at post-reset cycle @p cycle. */
    Word16
    portWordAt(uint64_t cycle) const
    {
        return patternAt(cycle).word();
    }

    /** Schedule phase at @p cycle -- 0 for unscheduled scenarios.
     *  Two simulator states are interchangeable only at equal
     *  phases, so the engine mixes this into its dedup keys. */
    uint64_t
    dedupPhase(uint64_t cycle) const
    {
        return portSchedule.empty() ? 0 : cycle % portSchedule.size();
    }

    /** Mix the full scenario content into @p h (FNV-1a order): the
     *  batch cache key uses this, so two scenarios hash equal iff
     *  they constrain identically (the name does not participate). */
    void hashInto(uint64_t &h) const;

    /** Human one-liner ("port 0000xxxxxxxxxxxx, 2 RAM ranges"). */
    std::string summary() const;

    /// @name Construction
    /// @{
    static const std::vector<std::string> &presetNames();
    /** A named preset; throws std::runtime_error on unknown names
     *  (message lists the known ones). */
    static Scenario preset(const std::string &name);
    /** Parse the JSON form (see docs/architecture.md):
     *  {"name": ..., "port": "16-char pattern" | {"pinned","value"},
     *   "port_schedule": [pattern, ...],
     *   "ram_init": [{"addr": A, "words": [...]}, ...],
     *   "reg_init": [{"reg": R, "value": V}, ...]}
     *  Numbers may be JSON integers or "0x.." strings. Throws
     *  std::runtime_error with a position-bearing message. */
    static Scenario fromJson(const std::string &text);
    static Scenario fromJsonFile(const std::string &path);
    /** A preset name, or a path to a JSON file (anything containing
     *  a '/' or ending in ".json"). */
    static Scenario resolve(const std::string &spec);
    /// @}
};

} // namespace scenario
} // namespace ulpeak

#endif // ULPEAK_SCENARIO_SCENARIO_HH
