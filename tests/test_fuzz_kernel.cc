/**
 * @file
 * Kernel-level differential fuzzing: EvalMode::FullSweep and
 * EvalMode::EventDriven must be bit-identical (values, activity,
 * energies, full-state hashes) on random netlists under random
 * three-valued input schedules -- the same property the suite pins on
 * the CPU netlist, checked far outside the CPU's structural idioms.
 *
 * Also pins the first bug this fuzzer found: a synchronously-reset
 * enabled flop (Dffre) clearing from a held state reported itself
 * "provably held", so the event kernel never woke its fanout cone and
 * the activity tracker under-counted the clear edge.
 */

#include <gtest/gtest.h>

#include "fuzz/properties.hh"
#include "hw/builder.hh"

namespace ulpeak {
namespace {

class KernelFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelFuzz, FullSweepAndEventDrivenBitIdentical)
{
    fuzz::NetlistGenOptions opts;
    fuzz::PropertyResult r = fuzz::kernelEquivalenceCheck(
        fuzz::Rng::deriveStream(11, GetParam()), opts, 64);
    EXPECT_TRUE(r.ok) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzz,
                         ::testing::Range(uint64_t(0), uint64_t(10)));

TEST(KernelFuzzLong, ManyNetlistsManyShapes)
{
    for (uint64_t seed = 0; seed < 60; ++seed) {
        fuzz::NetlistGenOptions opts;
        // Vary the shape with the seed: dense register feedback,
        // pure combinational, deep gate soups, X-heavy inputs.
        opts.numRegBanks = unsigned(seed % 7);
        opts.numCombGates = 40 + unsigned(seed % 5) * 60;
        opts.inputXPercent = unsigned(seed % 3) * 25;
        fuzz::PropertyResult r = fuzz::kernelEquivalenceCheck(
            fuzz::Rng::deriveStream(13, seed), opts, 96);
        EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
    }
}

TEST(KernelRegression, ResetOverridesHoldInEnabledFlop)
{
    // Dffre with en == 0 and rstn == 0 in the same cycle: reset wins,
    // the output clears, and the clear must count as activity so the
    // event kernel re-evaluates the fanout cone. Before the fix the
    // cell reported "held" and the fanout kept its stale value.
    CellLibrary lib = CellLibrary::tsmc65Like();
    Netlist nl(lib);
    hw::Builder b(nl);
    hw::Sig d = b.input("d");
    hw::Sig en = b.input("en");
    hw::Sig rstn = b.input("rstn");
    hw::Reg q = b.regDecl(1, "q", en, rstn);
    hw::Sig out = b.inv(q.q(0));
    q.connect({d});
    nl.finalize();

    Simulator full(nl, EvalMode::FullSweep);
    Simulator event(nl, EvalMode::EventDriven);
    auto drive = [&](V4 dv, V4 env, V4 rv) {
        return [&, dv, env, rv](Simulator &s) {
            s.setInput(d, dv);
            s.setInput(en, env);
            s.setInput(rstn, rv);
        };
    };
    auto stepBoth = [&](V4 dv, V4 env, V4 rv) {
        full.step(drive(dv, env, rv));
        event.step(drive(dv, env, rv));
        ASSERT_EQ(full.value(q.q(0)), event.value(q.q(0)));
        ASSERT_EQ(full.value(out), event.value(out));
        ASSERT_EQ(full.isActive(q.q(0)), event.isActive(q.q(0)));
    };
    // Load a 1 (en high, no reset), verify, then clear via reset
    // while the enable holds.
    stepBoth(V4::One, V4::One, V4::One);
    stepBoth(V4::One, V4::One, V4::One);
    ASSERT_EQ(full.value(q.q(0)), V4::One);
    stepBoth(V4::Zero, V4::Zero, V4::Zero); // hold + reset asserted
    stepBoth(V4::Zero, V4::Zero, V4::Zero); // edge: clears to 0
    EXPECT_EQ(full.value(q.q(0)), V4::Zero);
    EXPECT_EQ(event.value(out), V4::One) << "fanout must see the clear";
    // A 1 -> 0 clear is a real toggle: both kernels must report the
    // flop active on the clearing edge (checked inside stepBoth).
}

} // namespace
} // namespace ulpeak
