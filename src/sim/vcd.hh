/**
 * @file
 * Value change dump (VCD) writer and reader.
 *
 * Section 3.2 of the paper records the flattened execution trace in VCD
 * files and constructs two derived VCDs (even- and odd-cycle
 * maximizing) that are fed to the power tool. We provide a real VCD
 * writer/reader pair so that flow can be exercised literally
 * (peak/even_odd.cc) and so traces can be inspected with standard
 * waveform tools. Values are '0', '1' and 'x'.
 */

#ifndef ULPEAK_SIM_VCD_HH
#define ULPEAK_SIM_VCD_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/v4.hh"

namespace ulpeak {

/** Streams one scalar signal per tracked gate to a VCD file. */
class VcdWriter {
  public:
    /**
     * @param os        output stream (kept by reference)
     * @param signals   (name, initial id order) of tracked signals
     * @param timescale e.g. "10ns" for a 100 MHz clock
     */
    VcdWriter(std::ostream &os, const std::vector<std::string> &signals,
              const std::string &timescale = "10ns");

    /** Emit a timestep; @p values must align with the signal list. */
    void writeCycle(const std::vector<V4> &values);

    uint64_t cyclesWritten() const { return cycles_; }

  private:
    static std::string idCode(size_t index);

    std::ostream *os_;
    size_t numSignals_;
    std::vector<std::string> codes_;
    std::vector<V4> last_;
    uint64_t cycles_ = 0;
    bool first_ = true;
};

/** In-memory representation of a parsed VCD. */
struct VcdData {
    std::vector<std::string> signals;
    /** values[c][s] = value of signal s during cycle c. */
    std::vector<std::vector<V4>> values;

    /** Index of a signal by name; -1 if absent. */
    int signalIndex(const std::string &name) const;
};

/** Parse a VCD produced by VcdWriter (scalar signals only). */
VcdData readVcd(std::istream &is);

} // namespace ulpeak

#endif // ULPEAK_SIM_VCD_HH
