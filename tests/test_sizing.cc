/**
 * @file
 * Tests for the system-sizing models (Chapter 1 / Tables 5.1-5.2).
 */

#include <gtest/gtest.h>

#include "sizing/sizing.hh"

namespace ulpeak {
namespace sizing {
namespace {

TEST(SizingData, PaperTables)
{
    // Table 1.1 spot checks.
    ASSERT_EQ(batteryTypes().size(), 6u);
    EXPECT_EQ(batteryTypes()[0].name, "Li-ion");
    EXPECT_DOUBLE_EQ(batteryTypes()[0].specificEnergyJPerG, 460.0);
    EXPECT_DOUBLE_EQ(batteryTypes()[0].energyDensityMJPerL, 1.152);
    // Table 1.2 spot checks.
    ASSERT_EQ(harvesterTypes().size(), 4u);
    EXPECT_DOUBLE_EQ(harvesterTypes()[0].powerDensityWPerCm2, 0.1);
    EXPECT_DOUBLE_EQ(harvesterTypes()[2].powerDensityWPerCm2, 60e-6);
}

TEST(Sizing, HarvesterAreaProportionalToPeakPower)
{
    const HarvesterType &indoor = harvesterTypes()[1]; // 100 uW/cm^2
    EXPECT_NEAR(harvesterAreaCm2(2.0e-3, indoor), 20.0, 1e-9);
    EXPECT_NEAR(harvesterAreaCm2(1.0e-3, indoor), 10.0, 1e-9);
}

TEST(Sizing, BatterySizing)
{
    const BatteryType &liion = batteryTypes()[0];
    // 1152 J fits in 1 mL of Li-ion.
    EXPECT_NEAR(batteryVolumeL(1152.0, liion), 1e-3, 1e-12);
    EXPECT_NEAR(batteryMassG(460.0, liion), 1.0, 1e-12);
}

TEST(Sizing, DecapNeedsDischargeHeadroom)
{
    // The nominal model: 5% droop from a 1.0 V rail.
    double c = decapFarads(1e-9, 1.0, kDecapVminRatio * 1.0);
    EXPECT_NEAR(c, 2e-9 / (1.0 - 0.95 * 0.95), 1e-18);

    // vmin >= vdd has no discharge headroom: no finite capacitor
    // delivers the energy, so this must throw instead of returning
    // the old silently-wrong 0.0 F. A DVFS sleep mode near
    // kDecapVminRatio * vdd_nominal is exactly the caller that used
    // to hit it.
    EXPECT_THROW(decapFarads(1e-9, 1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(decapFarads(1e-9, 0.95, 1.0), std::invalid_argument);
    EXPECT_THROW(decapFarads(1e-9, 0.6, 0.95),
                 std::invalid_argument);
    // Just inside the floor still sizes.
    EXPECT_GT(decapFarads(1e-9, 1.0, 0.9999), 0.0);
}

TEST(Sizing, ReductionFormulaMatchesPaperStructure)
{
    // Table 5.1 structure: reduction scales linearly with the
    // processor's contribution fraction.
    double full = harvesterAreaReductionPct(2.0, 1.7, 1.0); // 15%
    EXPECT_NEAR(full, 15.0, 1e-9);
    EXPECT_NEAR(harvesterAreaReductionPct(2.0, 1.7, 0.5), full / 2,
                1e-9);
    EXPECT_NEAR(harvesterAreaReductionPct(2.0, 1.7, 0.1), full / 10,
                1e-9);
    // Identical requirement -> no savings; degenerate baselines safe.
    EXPECT_DOUBLE_EQ(harvesterAreaReductionPct(2.0, 2.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(harvesterAreaReductionPct(0.0, 1.0, 1.0), 0.0);
    // A looser "requirement" never reports negative savings.
    EXPECT_DOUBLE_EQ(harvesterAreaReductionPct(1.0, 2.0, 1.0), 0.0);
    // Battery-volume accounting mirrors the harvester one.
    EXPECT_NEAR(batteryVolumeReductionPct(20e-12, 10e-12, 0.75), 37.5,
                1e-9);
}

} // namespace
} // namespace sizing
} // namespace ulpeak
