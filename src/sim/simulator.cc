#include "sim/simulator.hh"

#include <cassert>
#include <stdexcept>

namespace ulpeak {

Simulator::Simulator(const Netlist &nl) : nl_(&nl)
{
    if (!nl.finalized())
        throw std::logic_error("Simulator requires a finalized netlist");
    size_t n = nl.numGates();
    val_.assign(n, V4::X);
    prev_.assign(n, V4::X);
    active_.assign(n, 0);
    activePrev_.assign(n, 0);
    loadedPrevEdge_.assign(nl.seqGates().size(), 1);
    seqIndexOf_.assign(n, UINT32_MAX);
    for (size_t i = 0; i < nl.seqGates().size(); ++i)
        seqIndexOf_[nl.seqGates()[i]] = uint32_t(i);
    topModuleOf_.resize(n);
    for (GateId g = 0; g < n; ++g)
        topModuleOf_[g] = nl.topLevelModuleOf(nl.gate(g).module);
    hookFns_.resize(nl.hooks().size());
    moduleEnergy_.assign(nl.numModules(), 0.0);
}

void
Simulator::setHookFn(uint32_t hook_id, HookFn fn)
{
    hookFns_.at(hook_id) = std::move(fn);
}

void
Simulator::addEdgeFn(EdgeFn fn)
{
    edgeFns_.push_back(std::move(fn));
}

void
Simulator::setInput(GateId g, V4 v)
{
    assert(nl_->gate(g).kind == CellKind::Input);
    val_[g] = v;
}

void
Simulator::setInputBus(const std::vector<GateId> &bus, Word16 w)
{
    for (size_t i = 0; i < bus.size(); ++i)
        setInput(bus[i], w.bit(unsigned(i)));
}

void
Simulator::forceBus(const std::vector<GateId> &bus, Word16 w)
{
    for (size_t i = 0; i < bus.size(); ++i)
        val_[bus[i]] = w.bit(unsigned(i));
}

Word16
Simulator::readBus(const std::vector<GateId> &bus) const
{
    Word16 w;
    for (size_t i = 0; i < bus.size(); ++i)
        w.setBit(unsigned(i), val_[bus[i]]);
    return w;
}

void
Simulator::addBehavioralEnergyJ(double j, ModuleId top_module)
{
    actualEnergy_ += j;
    boundEnergy_ += j;
    behavioralEnergy_ += j;
    moduleEnergy_[top_module] += j;
}

void
Simulator::updateSequential()
{
    const auto &seq = nl_->seqGates();
    for (size_t i = 0; i < seq.size(); ++i) {
        GateId g = seq[i];
        const Gate &gate = nl_->gate(g);
        V4 ins[3];
        for (unsigned p = 0; p < gate.nin; ++p)
            ins[p] = prev_[gate.in[p]];
        V4 q = prev_[g];
        bool held = false;
        V4 newq = evalSeqCell(gate.kind, q, ins, held);
        val_[g] = newq;

        bool act;
        bool x_involved = !isKnown(newq) || !isKnown(q);
        if (held) {
            act = false;
        } else if (!x_involved) {
            act = newq != q;
        } else {
            // An unknown output may have toggled at this edge unless we
            // can prove the loaded value is the same unknown as before:
            // the flop loaded at the previous edge too, its D pin was
            // inactive then, and no control pin is X.
            bool ctrl_x = false;
            for (unsigned p = 1; p < gate.nin; ++p)
                if (!isKnown(ins[p]))
                    ctrl_x = true;
            act = !loadedPrevEdge_[i] || ctrl_x ||
                  activePrev_[gate.in[0]] ||
                  (isKnown(newq) != isKnown(q));
        }
        active_[g] = act;
        if (act)
            activeList_.push_back(g);
        loadedPrevEdge_[i] = held ? 0 : 1;
    }
}

void
Simulator::sweep()
{
    V4 ins[4];
    for (const EvalItem &item : nl_->evalOrder()) {
        if (item.type == EvalItem::Type::Hook) {
            if (hookFns_[item.index])
                hookFns_[item.index](*this);
            continue;
        }
        GateId g = item.index;
        const Gate &gate = nl_->gate(g);
        switch (gate.kind) {
          case CellKind::Const0:
            val_[g] = V4::Zero;
            active_[g] = 0;
            continue;
          case CellKind::Const1:
            val_[g] = V4::One;
            active_[g] = 0;
            continue;
          case CellKind::Input: {
            // Value was set by the driver or a hook (or holds over from
            // the previous cycle). An unknown input may toggle at any
            // time, so X counts as active.
            bool act = val_[g] != prev_[g] || val_[g] == V4::X;
            active_[g] = act;
            if (act)
                activeList_.push_back(g);
            continue;
          }
          default:
            break;
        }
        if (isSequential(gate.kind))
            continue; // handled in updateSequential()

        bool fanin_active = false;
        for (unsigned p = 0; p < gate.nin; ++p) {
            GateId src = gate.in[p];
            ins[p] = val_[src];
            fanin_active |= active_[src] != 0;
        }
        V4 v = evalCell(gate.kind, ins);
        val_[g] = v;
        bool act = v != prev_[g] || (v == V4::X && fanin_active);
        active_[g] = act;
        if (act)
            activeList_.push_back(g);
    }
}

void
Simulator::step(const std::function<void(Simulator &)> &driver)
{
    // Commit edge effects (memory writes) of the previous cycle.
    if (cycle_ > 0)
        for (auto &fn : edgeFns_)
            fn(*this);

    prev_ = val_;
    activePrev_ = active_;
    activeList_.clear();
    actualEnergy_ = 0.0;
    boundEnergy_ = 0.0;
    behavioralEnergy_ = 0.0;
    std::fill(moduleEnergy_.begin(), moduleEnergy_.end(), 0.0);

    updateSequential();
    if (driver)
        driver(*this);
    sweep();

    // Per-cycle energy: concrete transitions (actual) and the
    // Algorithm-2 per-cycle peak assignment (bound).
    for (GateId g : activeList_) {
        V4 p = prev_[g];
        V4 c = val_[g];
        double e;
        if (isKnown(p) && isKnown(c)) {
            if (p == c)
                continue; // active-X propagation flag only, no toggle
            e = (c == V4::One) ? nl_->riseEnergyJ(g)
                               : nl_->fallEnergyJ(g);
            actualEnergy_ += e;
        } else if (isKnown(p)) {
            // Assign the X to !p: the transition p -> !p happened.
            e = (p == V4::Zero) ? nl_->riseEnergyJ(g)
                                : nl_->fallEnergyJ(g);
        } else if (isKnown(c)) {
            // Assign the previous X to !c.
            e = (c == V4::One) ? nl_->riseEnergyJ(g)
                               : nl_->fallEnergyJ(g);
        } else {
            // Both unknown: the cell's maximum-power transition
            // (Algorithm 2, maxTransition lookup).
            e = nl_->maxEnergyJ(g);
        }
        boundEnergy_ += e;
        moduleEnergy_[topModuleOf_[g]] += e;
    }

    ++cycle_;
}

Simulator::Snapshot
Simulator::snapshot() const
{
    // Captured between steps: active_ holds the last stepped cycle's
    // activity, which the next step() moves into activePrev_.
    return Snapshot{val_, prev_, active_, loadedPrevEdge_, cycle_};
}

void
Simulator::restore(const Snapshot &s)
{
    val_ = s.val;
    prev_ = s.prev;
    active_ = s.activeLast;
    loadedPrevEdge_ = s.loadedPrevEdge;
    cycle_ = s.cycle;
    activeList_.clear();
}

V4
Simulator::predictSeqValue(GateId g) const
{
    const Gate &gate = nl_->gate(g);
    V4 ins[3];
    for (unsigned p = 0; p < gate.nin; ++p)
        ins[p] = val_[gate.in[p]];
    bool held = false;
    return evalSeqCell(gate.kind, val_[g], ins, held);
}

uint64_t
Simulator::hashSeqState() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (GateId g : nl_->seqGates()) {
        h ^= uint8_t(val_[g]);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace ulpeak
