/**
 * @file
 * Topological levelization of a netlist.
 *
 * The cycle-based simulator evaluates every combinational gate exactly
 * once per cycle, in an order where each gate's fanins (and any
 * behavioral hook feeding it) have already been evaluated. Sequential
 * gate outputs and primary inputs are the sources of the order;
 * combinational loops are construction errors and are reported with a
 * witness gate.
 */

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "netlist/netlist.hh"

namespace ulpeak {

/** Helper with friend access that computes the evaluation order. */
class Levelizer {
  public:
    static void
    run(Netlist &nl)
    {
        const size_t n = nl.gates_.size();
        const size_t h = nl.hooks_.size();

        // Node ids: [0, n) are gates, [n, n + h) are hooks.
        std::vector<uint32_t> indeg(n + h, 0);
        std::vector<std::vector<uint32_t>> succ(n + h);

        // Map each hook-output Input gate to its hook node.
        std::vector<uint32_t> hookOf(n, UINT32_MAX);
        for (size_t i = 0; i < h; ++i)
            for (GateId g : nl.hooks_[i].outputs)
                hookOf[g] = uint32_t(i);

        nl.fanoutCount_.assign(n, 0);

        auto addEdge = [&](uint32_t from, uint32_t to) {
            succ[from].push_back(to);
            ++indeg[to];
        };

        for (GateId g = 0; g < n; ++g) {
            const Gate &gate = nl.gates_[g];
            for (unsigned i = 0; i < gate.nin; ++i) {
                GateId src = gate.in[i];
                if (src == kNoGate)
                    throw std::logic_error(
                        "unconnected fanin at gate " + std::to_string(g));
                ++nl.fanoutCount_[src];
                // Sequential gates consume their fanins at the clock
                // edge; they are not part of the combinational order.
                if (isSequential(gate.kind))
                    continue;
                addEdge(src, g);
            }
            // A hook-driven input must wait for its hook.
            if (hookOf[g] != UINT32_MAX)
                addEdge(uint32_t(n + hookOf[g]), g);
        }
        for (size_t i = 0; i < h; ++i)
            for (GateId dep : nl.hooks_[i].depends)
                addEdge(dep, uint32_t(n + i));

        // Kahn's algorithm. Sequential outputs, constants and plain
        // primary inputs start ready; they are emitted in the order so
        // the simulator has a complete per-cycle visit sequence.
        std::queue<uint32_t> ready;
        for (uint32_t v = 0; v < n + h; ++v)
            if (indeg[v] == 0)
                ready.push(v);

        nl.order_.clear();
        nl.order_.reserve(n + h);
        size_t emitted = 0;
        while (!ready.empty()) {
            uint32_t v = ready.front();
            ready.pop();
            ++emitted;
            EvalItem item;
            if (v < n) {
                item.type = EvalItem::Type::Gate;
                item.index = v;
            } else {
                item.type = EvalItem::Type::Hook;
                item.index = uint32_t(v - n);
            }
            nl.order_.push_back(item);
            for (uint32_t s : succ[v])
                if (--indeg[s] == 0)
                    ready.push(s);
        }

        if (emitted != n + h) {
            for (uint32_t v = 0; v < n; ++v) {
                if (indeg[v] != 0) {
                    throw std::logic_error(
                        "combinational loop through gate " +
                        std::to_string(v) + " (" +
                        cellName(nl.gates_[v].kind) + ")");
                }
            }
            throw std::logic_error("combinational loop through a hook");
        }

        nl.seqGates_.clear();
        for (GateId g = 0; g < n; ++g)
            if (isSequential(nl.gates_[g].kind))
                nl.seqGates_.push_back(g);

        // Pre-compute per-gate transition energies and static totals.
        const CellLibrary &lib = *nl.lib_;
        nl.riseE_.resize(n);
        nl.fallE_.resize(n);
        nl.totalLeakage_ = 0.0;
        nl.clockEnergy_ = 0.0;
        for (GateId g = 0; g < n; ++g) {
            CellKind k = nl.gates_[g].kind;
            unsigned fo = nl.fanoutCount_[g];
            nl.riseE_[g] = lib.transitionEnergyJ(k, true, fo);
            nl.fallE_[g] = lib.transitionEnergyJ(k, false, fo);
            nl.totalLeakage_ += lib.params(k).leakageW;
            nl.clockEnergy_ += lib.params(k).clkPinEnergyJ;
        }

        flatten(nl, hookOf);
    }

  private:
    /**
     * Build the structure-of-arrays kernel view: contiguous kind/nin
     * arrays, CSR fanins, the CSR fanout adjacency restricted to
     * combinational consumers, and the level-bucketed schedule.
     */
    static void
    flatten(Netlist &nl, const std::vector<uint32_t> &hookOf)
    {
        const uint32_t n = uint32_t(nl.gates_.size());
        const uint32_t h = uint32_t(nl.hooks_.size());
        FlatNetlist &f = nl.flat_;
        f.numGates = n;
        f.numHooks = h;

        f.kind.resize(n);
        f.nin.resize(n);
        f.maxE.resize(n);
        f.faninOffset.assign(n + 1, 0);
        for (GateId g = 0; g < n; ++g) {
            const Gate &gate = nl.gates_[g];
            f.kind[g] = gate.kind;
            f.nin[g] = gate.nin;
            f.maxE[g] = std::max(nl.riseE_[g], nl.fallE_[g]);
            f.faninOffset[g + 1] = f.faninOffset[g] + gate.nin;
        }
        f.fanin.resize(f.faninOffset[n]);
        for (GateId g = 0; g < n; ++g) {
            const Gate &gate = nl.gates_[g];
            for (unsigned p = 0; p < gate.nin; ++p)
                f.fanin[f.faninOffset[g] + p] = gate.in[p];
        }

        // Fanout CSR into combinational consumers (two-pass fill).
        f.fanoutOffset.assign(n + 1, 0);
        for (GateId g = 0; g < n; ++g) {
            const Gate &gate = nl.gates_[g];
            if (isSequential(gate.kind))
                continue;
            for (unsigned p = 0; p < gate.nin; ++p)
                ++f.fanoutOffset[gate.in[p] + 1];
        }
        for (GateId g = 0; g < n; ++g)
            f.fanoutOffset[g + 1] += f.fanoutOffset[g];
        f.fanout.resize(f.fanoutOffset[n]);
        std::vector<uint32_t> fill(f.fanoutOffset.begin(),
                                   f.fanoutOffset.end() - 1);
        for (GateId g = 0; g < n; ++g) {
            const Gate &gate = nl.gates_[g];
            if (isSequential(gate.kind))
                continue;
            for (unsigned p = 0; p < gate.nin; ++p)
                f.fanout[fill[gate.in[p]]++] = g;
        }

        // CSR of sequential consumers (by seq index, two-pass fill).
        std::vector<uint32_t> seqIndexOf(n, UINT32_MAX);
        for (size_t i = 0; i < nl.seqGates_.size(); ++i)
            seqIndexOf[nl.seqGates_[i]] = uint32_t(i);
        f.seqFanoutOffset.assign(n + 1, 0);
        for (GateId g : nl.seqGates_) {
            const Gate &gate = nl.gates_[g];
            for (unsigned p = 0; p < gate.nin; ++p)
                ++f.seqFanoutOffset[gate.in[p] + 1];
        }
        for (GateId g = 0; g < n; ++g)
            f.seqFanoutOffset[g + 1] += f.seqFanoutOffset[g];
        f.seqFanout.resize(f.seqFanoutOffset[n]);
        std::vector<uint32_t> sfill(f.seqFanoutOffset.begin(),
                                    f.seqFanoutOffset.end() - 1);
        for (GateId g : nl.seqGates_) {
            const Gate &gate = nl.gates_[g];
            for (unsigned p = 0; p < gate.nin; ++p)
                f.seqFanout[sfill[gate.in[p]]++] = seqIndexOf[g];
        }

        // Levels, walked in the already-computed topological order so
        // every fanin/dependency level is final when consumed.
        f.levelOfNode.assign(n + h, 0);
        for (const EvalItem &item : nl.order_) {
            if (item.type == EvalItem::Type::Hook) {
                uint32_t node = n + item.index;
                uint32_t lvl = 0;
                for (GateId dep : nl.hooks_[item.index].depends)
                    lvl = std::max(lvl, f.levelOfNode[dep] + 1);
                f.levelOfNode[node] = lvl;
                continue;
            }
            GateId g = item.index;
            const Gate &gate = nl.gates_[g];
            if (isSequential(gate.kind)) {
                // Sequential outputs are level-0 sources of the
                // combinational phase; the gate itself is unscheduled.
                f.levelOfNode[g] = 0;
                continue;
            }
            uint32_t lvl = 0;
            if (hookOf[g] != UINT32_MAX)
                lvl = f.levelOfNode[n + hookOf[g]] + 1;
            for (unsigned p = 0; p < gate.nin; ++p)
                lvl = std::max(lvl, f.levelOfNode[gate.in[p]] + 1);
            f.levelOfNode[g] = lvl;
        }

        // Bucket the schedulable nodes by level, ascending node id
        // within a level (counting sort keeps it stable).
        uint32_t numLevels = 0;
        for (uint32_t node = 0; node < n + h; ++node)
            if (node >= n || !isSequential(nl.gates_[node].kind))
                numLevels =
                    std::max(numLevels, f.levelOfNode[node] + 1);
        f.numLevels = numLevels;
        f.levelOffset.assign(numLevels + 1, 0);
        for (uint32_t node = 0; node < n + h; ++node) {
            if (node < n && isSequential(nl.gates_[node].kind))
                continue;
            ++f.levelOffset[f.levelOfNode[node] + 1];
        }
        for (uint32_t l = 0; l < numLevels; ++l)
            f.levelOffset[l + 1] += f.levelOffset[l];
        f.schedule.resize(f.levelOffset[numLevels]);
        f.posOfNode.assign(n + h, kNoLevel);
        std::vector<uint32_t> lfill(f.levelOffset.begin(),
                                    f.levelOffset.end() - 1);
        for (uint32_t node = 0; node < n + h; ++node) {
            if (node < n && isSequential(nl.gates_[node].kind))
                continue;
            uint32_t pos = lfill[f.levelOfNode[node]]++;
            f.schedule[pos] = node;
            f.posOfNode[node] = pos;
        }
        for (GateId g = 0; g < n; ++g)
            if (isSequential(nl.gates_[g].kind))
                f.levelOfNode[g] = kNoLevel;
    }
};

void
Netlist::finalize()
{
    if (finalized_)
        return;
    Levelizer::run(*this);
    finalized_ = true;
}

} // namespace ulpeak
