/**
 * @file
 * Peak-power software optimizations (Sections 3.5 / 5.1).
 *
 * The COI analysis identifies the instructions and modules behind
 * power peaks; these source-to-source transforms then rewrite the
 * culprits:
 *
 *  - OPT1 (register-indexed loads): `mov x(rN), rM` splits into
 *    address generation + register-indirect load, spreading one
 *    cycle's activity over several;
 *  - OPT2 (POP): `pop rM` (= mov @sp+, rM) splits into the data move
 *    and the stack-pointer increment;
 *  - OPT3 (multiplier overlap): a NOP is inserted between writing OP2
 *    and reading RESLO/RESHI so the multiplier and the core do not
 *    draw their peak in the same cycle.
 */

#ifndef ULPEAK_OPT_OPTIMIZER_HH
#define ULPEAK_OPT_OPTIMIZER_HH

#include <string>

#include "bench430/benchmarks.hh"
#include "peak/peak_analysis.hh"

namespace ulpeak {
namespace opt {

struct TransformConfig {
    bool opt1 = true;
    bool opt2 = true;
    bool opt3 = true;
    /** Scratch register OPT1 may clobber ("" disables OPT1). */
    std::string scratchReg;
};

struct TransformStats {
    unsigned opt1Applied = 0;
    unsigned opt2Applied = 0;
    unsigned opt3Applied = 0;
    unsigned total() const
    {
        return opt1Applied + opt2Applied + opt3Applied;
    }
};

/** Rewrite assembly source; returns the transformed program. */
std::string applyTransforms(const std::string &source,
                            const TransformConfig &cfg,
                            TransformStats *stats = nullptr);

/** Before/after evaluation backing Figures 5.4 / 5.5 / 5.6. */
struct OptimizationReport {
    bool ok = false;
    std::string error;
    TransformStats transforms;

    double peakBeforeW = 0.0;
    double peakAfterW = 0.0;
    double peakReductionPct = 0.0;

    /** Peak power dynamic range = peak - worst-case average power. */
    double dynRangeBeforeW = 0.0;
    double dynRangeAfterW = 0.0;
    double dynRangeReductionPct = 0.0;

    uint64_t cyclesBefore = 0;
    uint64_t cyclesAfter = 0;
    double perfDegradationPct = 0.0;

    double energyBeforeJ = 0.0;
    double energyAfterJ = 0.0;
    double energyOverheadPct = 0.0;

    std::vector<float> traceBeforeW; ///< Figure 5.5
    std::vector<float> traceAfterW;
};

/** Run the X-based analysis on a benchmark before and after the
 *  transforms and compare. */
OptimizationReport evaluateOptimizations(msp::System &sys,
                                         const bench430::Benchmark &b,
                                         const TransformConfig &cfg,
                                         const peak::Options &opts);

} // namespace opt
} // namespace ulpeak

#endif // ULPEAK_OPT_OPTIMIZER_HH
