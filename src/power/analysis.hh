/**
 * @file
 * Activity-based power analysis runs: execute a binary concretely on
 * the gate-level system and record the per-cycle power trace (the
 * input-based profiling primitive of the paper) -- plus CSV output
 * used by the figure-regeneration benches.
 */

#ifndef ULPEAK_POWER_ANALYSIS_HH
#define ULPEAK_POWER_ANALYSIS_HH

#include <string>
#include <utility>
#include <vector>

#include "isa/assembler.hh"
#include "msp/cpu.hh"
#include "power/power_model.hh"

namespace ulpeak {
namespace power {

/** Concrete words loaded into RAM before a run (the input set). */
using RamInit = std::vector<std::pair<uint32_t, std::vector<uint16_t>>>;

struct ConcreteRunOptions {
    uint64_t maxCycles = 200000;
    bool recordTrace = true;
    bool recordModules = false;
    /** Record the union of gates that toggled (Figure 3.4's
     *  input-based sets, validated against the X-based superset). */
    bool recordActivity = false;
    uint16_t portIn = 0;
    /** Per-cycle port values (cycled when shorter than the run);
     *  overrides portIn when non-empty. The envelope-bounding fuzz
     *  property drives a fresh random word every cycle this way. */
    std::vector<uint16_t> portSchedule;
    /** Per-cycle operating-mode factors (energy scale, clock Hz),
     *  repeating with period size() and indexed by the post-reset
     *  cycle -- the concrete-side mirror of a scenario mode schedule
     *  (scale = CellLibrary::energyScale(mode vdd)). Empty runs the
     *  classic fixed-operating-point path bit-identically. */
    std::vector<std::pair<double, double>> modeSchedule;
};

struct ConcreteRunResult {
    bool halted = false;
    TraceStats stats;
    std::vector<float> traceW;
    /** traceModulesW[m][c]: power of top module m in cycle c. */
    std::vector<std::vector<float>> traceModulesW;
    std::vector<uint8_t> everActive;
    double totalEnergyJ = 0.0;

    double npeJPerCycle() const
    {
        return stats.cycles ? totalEnergyJ / double(stats.cycles) : 0.0;
    }
};

/**
 * Run @p image on @p sys with concrete inputs and record power. The
 * system's memory is reset and reloaded, so calls are independent.
 */
ConcreteRunResult runConcrete(msp::System &sys, const isa::Image &image,
                              const PowerContext &ctx,
                              const ConcreteRunOptions &opts,
                              const RamInit &ram_init = {});

/** Write "cycle,power_w" rows (plus optional per-module columns). */
void writePowerCsv(const std::string &path,
                   const std::vector<float> &trace_w,
                   const std::vector<std::vector<float>> *modules = nullptr,
                   const std::vector<std::string> *module_names = nullptr);

} // namespace power
} // namespace ulpeak

#endif // ULPEAK_POWER_ANALYSIS_HH
