/**
 * @file
 * Hardware construction DSL.
 *
 * The paper's netlist comes out of Synopsys Design Compiler; ours comes
 * out of this builder, a small Chisel-style construction library whose
 * every operation elaborates to standard cells of the CellLibrary. The
 * CPU in src/msp is written against this API, so the result is a genuine
 * gate-level netlist (thousands of mapped cells with DFF state), which is
 * what the symbolic engine and the power analysis operate on.
 *
 * Conventions: a Sig is a single net (the emitting gate's output); a Bus
 * is a little-endian vector of Sigs (bus[0] is bit 0). Registers may be
 * declared before their D input is known (Reg::connect) so state machines
 * with feedback can be described naturally.
 */

#ifndef ULPEAK_HW_BUILDER_HH
#define ULPEAK_HW_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace ulpeak {
namespace hw {

using Sig = GateId;
using Bus = std::vector<Sig>;

class Builder;

/**
 * A declared register bank: q is usable immediately; connect() wires the
 * D inputs once the next-state logic exists. Enable/reset were fixed at
 * declaration time.
 */
class Reg {
  public:
    const Bus &q() const { return q_; }
    Sig q(unsigned i) const { return q_[i]; }
    unsigned width() const { return unsigned(q_.size()); }
    /** Wire the D pins; must be called exactly once. */
    void connect(const Bus &d);
    bool connected() const { return connected_; }

  private:
    friend class Builder;
    Builder *b_ = nullptr;
    Bus q_;
    bool connected_ = false;
};

class Builder {
  public:
    explicit Builder(Netlist &nl);

    Netlist &netlist() { return *nl_; }

    /// @name Module scoping
    /// @{
    void pushModule(const std::string &name);
    void popModule();
    ModuleId currentModule() const { return moduleStack_.back(); }
    /// @}

    /// @name Sources
    /// @{
    Sig zero();
    Sig one();
    Sig input(const std::string &name = "");
    Bus busInput(unsigned width, const std::string &name = "");
    Bus busConst(unsigned width, uint32_t value);
    /// @}

    /// @name Single-bit logic
    /// @{
    Sig buf(Sig a);
    Sig inv(Sig a);
    Sig and2(Sig a, Sig b);
    Sig or2(Sig a, Sig b);
    Sig nand2(Sig a, Sig b);
    Sig nor2(Sig a, Sig b);
    Sig xor2(Sig a, Sig b);
    Sig xnor2(Sig a, Sig b);
    Sig mux(Sig sel, Sig a0, Sig a1); ///< sel==0 -> a0, sel==1 -> a1
    Sig aoi21(Sig a, Sig b, Sig c);   ///< !((a&b)|c)
    Sig oai21(Sig a, Sig b, Sig c);   ///< !((a|b)&c)
    /** Wide AND/OR reductions, built as balanced AND3/AND4 trees. */
    Sig andN(const Bus &xs);
    Sig orN(const Bus &xs);
    /// @}

    /// @name Bus logic
    /// @{
    Bus busNot(const Bus &a);
    Bus busAnd(const Bus &a, const Bus &b);
    Bus busOr(const Bus &a, const Bus &b);
    Bus busXor(const Bus &a, const Bus &b);
    /** AND every bit of @p a with scalar @p s. */
    Bus busAndScalar(const Bus &a, Sig s);
    Bus busMux(Sig sel, const Bus &a0, const Bus &a1);
    /**
     * N-way mux: @p sel is a binary index bus; @p choices must have
     * exactly 2^width(sel) entries. Built as a mux tree.
     */
    Bus busMuxN(const Bus &sel, const std::vector<Bus> &choices);
    /** One-hot mux: OR of (choice_i AND onehot_i); caller guarantees the
     * select really is one-hot. */
    Bus busMuxOneHot(const std::vector<Sig> &onehot,
                     const std::vector<Bus> &choices);
    /// @}

    /// @name Late-bound wires
    /// Cross-module combinational nets can be declared before their
    /// driver exists (they elaborate to BUF cells, like the buffers a
    /// synthesis tool inserts on long top-level nets). finalize()
    /// rejects wires never driven.
    /// @{
    Sig wireDecl(const std::string &name = "");
    void wireConnect(Sig wire, Sig driver);
    Bus busWireDecl(unsigned width, const std::string &name = "");
    void busWireConnect(const Bus &wires, const Bus &drivers);
    /// @}

    /// @name Registers
    /// @{
    /**
     * Declare a register bank.
     * @param en   optional enable (kNoGate for always-load)
     * @param rstn optional active-low reset (kNoGate for none)
     */
    Reg regDecl(unsigned width, const std::string &name = "",
                Sig en = kNoGate, Sig rstn = kNoGate);
    /** One-step convenience: declared and connected at once. */
    Bus reg(const Bus &d, const std::string &name = "",
            Sig en = kNoGate, Sig rstn = kNoGate);
    /// @}

  private:
    friend class Reg;

    Sig emit(CellKind kind, std::initializer_list<Sig> fanins);

    Netlist *nl_;
    std::vector<ModuleId> moduleStack_;
    Sig const0_ = kNoGate;
    Sig const1_ = kNoGate;
};

/** RAII module scope. */
class ModuleScope {
  public:
    ModuleScope(Builder &b, const std::string &name) : b_(&b)
    {
        b_->pushModule(name);
    }
    ~ModuleScope() { b_->popModule(); }
    ModuleScope(const ModuleScope &) = delete;
    ModuleScope &operator=(const ModuleScope &) = delete;

  private:
    Builder *b_;
};

/// @name Arithmetic / structural components (components.cc)
/// @{

struct AddResult {
    Bus sum;
    Sig carryOut;
};

/** Ripple-carry adder; widths of @p a and @p b must match. */
AddResult adder(Builder &b, const Bus &a, const Bus &bb, Sig carryIn);

/** a - b computed as a + ~b + 1; carryOut is the MSP430-style carry
 *  (1 = no borrow). */
AddResult subtractor(Builder &b, const Bus &a, const Bus &bb);

/** a + constant. */
Bus addConst(Builder &b, const Bus &a, uint32_t k);

/** Bit-equality of two buses (XNOR reduce). */
Sig equal(Builder &b, const Bus &a, const Bus &bb);
/** Bus equals a compile-time constant. */
Sig equalConst(Builder &b, const Bus &a, uint32_t k);

/** Full binary decoder: 2^width(sel) one-hot outputs. */
std::vector<Sig> decoder(Builder &b, const Bus &sel);

/**
 * Combinational array multiplier (AND partial products + ripple-carry
 * reduction). Returns the 2N-bit product. This is deliberately the
 * biggest, highest-power block in the design, mirroring openMSP430's
 * hardware multiplier peripheral.
 */
Bus arrayMultiplier(Builder &b, const Bus &a, const Bus &bb);

/// @}

} // namespace hw
} // namespace ulpeak

#endif // ULPEAK_HW_BUILDER_HH
