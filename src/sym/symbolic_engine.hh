/**
 * @file
 * The input-independent gate activity analysis of Algorithm 1 and the
 * per-cycle peak assignment of Algorithm 2, combined into one engine.
 *
 * The engine symbolically simulates an application binary on the
 * gate-level system: all peripheral port inputs are driven X each
 * cycle (Algorithm 1 line 11), uninitialized memory and registers are
 * X (line 2), and when the next program-counter value is unknown the
 * execution forks into one path per feasible target (lines 17-24)
 * with duplicate states pruned by hashing (line 19). Every simulated
 * cycle is annotated with its maximum-power X assignment -- the
 * online equivalent of the even/odd VCD construction; see
 * peak/even_odd.hh for the literal file-based flow and the test that
 * proves the equivalence.
 *
 * Forks are O(state-copy): the engine snapshots simulator + system
 * state at each branch and restores instead of re-executing the
 * prefix. With SymbolicConfig::numThreads > 1 independent
 * execution-tree branches are explored by a worker pool over a shared
 * work stack; the visited-state dedup map and the tree are
 * mutex-guarded, per-cycle traces are buffered worker-locally and
 * committed at fork/leaf boundaries, and peak results merge
 * deterministically (the explored state set, every node's trace, and
 * therefore peak power, peak energy and NPE are independent of thread
 * scheduling; only tree node numbering varies).
 */

#ifndef ULPEAK_SYM_SYMBOLIC_ENGINE_HH
#define ULPEAK_SYM_SYMBOLIC_ENGINE_HH

#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "msp/cpu.hh"
#include "power/power_model.hh"
#include "sym/exec_tree.hh"

namespace ulpeak {
namespace sym {

struct SymbolicConfig {
    double freqHz = 100e6;
    uint64_t maxTotalCycles = 3000000;
    uint64_t maxPathCycles = 100000;
    uint32_t maxNodes = 300000;
    /** Combinational kernel used by the exploration simulators. */
    EvalMode evalMode = EvalMode::EventDriven;
    /**
     * Worker threads exploring independent execution-tree branches
     * (<= 1: sequential exploration on the calling thread). Each extra
     * worker elaborates its own System clone; snapshots transfer
     * between clones because netlist construction is deterministic.
     * Peak power/energy/NPE results are scheduling-independent; node
     * numbering inside the tree is not.
     *
     * This parallelizes *within* one application's analysis and is
     * orthogonal to the *program-level* sharding of a suite
     * (peak::BatchOptions::jobs in peak/batch.hh); the two compose,
     * and because results are scheduling-independent here and
     * programs are independent there, every (jobs, numThreads)
     * combination reports bit-identical numbers
     * (tests/test_symbolic.cc and tests/test_batch.cc pin the two
     * halves of that claim).
     */
    unsigned numThreads = 1;
    /** Record the union + peak-cycle sets of active gates
     *  (Figures 1.5 / 3.4). */
    bool recordActiveSets = false;
    /** Record per-cycle per-module power and instruction attribution
     *  (Figure 3.6 COI analysis). */
    bool recordModuleTrace = false;
    /** Compute the cycle-aligned peak power envelope over the whole
     *  execution tree (ExecTree::envelopePowerW) after exploration.
     *  Derived from the tree's logical structure, so it is
     *  byte-identical under any numThreads / EvalMode. */
    bool recordEnvelope = false;
    /** Iteration bound applied to back-edges in the execution tree
     *  (0 = reject unbounded input-dependent loops). */
    unsigned inputDependentLoopBound = 0;
};

struct SymbolicResult {
    bool ok = false;
    std::string error;

    ExecTree tree;

    /// @name Peak power (Section 3.2)
    /// @{
    double peakPowerW = 0.0;
    uint32_t peakNode = 0;
    uint32_t peakCycleInNode = 0;
    /// @}

    /// @name Peak energy (Section 3.3)
    /// @{
    double peakEnergyJ = 0.0;
    uint64_t maxPathCycles = 0;
    /** Normalized peak energy [J/cycle] -- the NPE axis of the
     *  paper's Figures 2.2b / 4.1b / 5.2. */
    double npeJPerCycle = 0.0;
    /// @}

    /// @name Activity sets (when recordActiveSets)
    /// @{
    std::vector<uint8_t> everActive;  ///< per gate: 1 if ever active
    std::vector<uint32_t> peakActive; ///< gates active at the peak
    /// @}

    /** Per-cycle upper-bound power envelope env[c] = max over all
     *  execution-tree walks of power(walk, c), when
     *  SymbolicConfig::recordEnvelope. */
    std::vector<float> envelopeW;

    /// @name Exploration statistics
    /// @{
    uint64_t totalCycles = 0;
    uint32_t pathsExplored = 0;
    uint32_t dedupMerges = 0;
    /// @}
};

class SymbolicEngine {
  public:
    SymbolicEngine(msp::System &sys, const SymbolicConfig &cfg);

    /** Run Algorithm 1 + per-cycle Algorithm 2 on @p image. */
    SymbolicResult run(const isa::Image &image);

  private:
    msp::System *sys_;
    SymbolicConfig cfg_;
};

} // namespace sym
} // namespace ulpeak

#endif // ULPEAK_SYM_SYMBOLIC_ENGINE_HH
