/**
 * @file
 * Tests of the lockstep co-simulation checker (src/cosim): random
 * generated programs must run divergence-free, and -- the checker
 * checking itself -- deliberately injected semantic bugs must be
 * caught with a report naming the first divergent cycle and
 * instruction.
 *
 * Suites named *Long* are excluded from the quick ctest label and run
 * under `ctest -L long` (see CMakeLists.txt and docs/testing.md).
 */

#include <gtest/gtest.h>

#include "cosim/cosim.hh"
#include "fuzz/program_gen.hh"
#include "fuzz/rng.hh"
#include "tests/cpu_test_util.hh"

namespace ulpeak {
namespace {

cosim::Result
runSeed(uint64_t seed, unsigned instructions = 24)
{
    fuzz::Rng rng(fuzz::Rng::deriveStream(seed, 0));
    fuzz::ProgramGenOptions gen;
    gen.instructions = instructions;
    fuzz::GeneratedProgram prog = fuzz::generateProgram(rng, gen);
    SCOPED_TRACE(prog.source);
    cosim::Options opts;
    opts.portIn = rng.word();
    return cosim::run(test::sharedSystem(), isa::assemble(prog.source),
                      opts);
}

class CosimFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CosimFuzz, RandomProgramLockstepsDivergenceFree)
{
    cosim::Result r = runSeed(GetParam());
    EXPECT_TRUE(r.ok) << r.report();
    EXPECT_GT(r.instructionsRetired, 30u) << "prologue alone is ~38";
    EXPECT_EQ(r.gateCycles, r.issCycles);
    EXPECT_EQ(r.divergence.kind, cosim::Divergence::Kind::None);
    EXPECT_TRUE(r.report().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CosimFuzz, ::testing::Range(uint64_t(0), uint64_t(8)));

class CosimFuzzLong : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CosimFuzzLong, RandomProgramLockstepsDivergenceFree)
{
    for (uint64_t s = 0; s < 25; ++s) {
        cosim::Result r = runSeed(GetParam() * 1000 + s, 32);
        EXPECT_TRUE(r.ok) << "seed " << GetParam() * 1000 + s << "\n"
                          << r.report();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CosimFuzzLong,
                         ::testing::Range(uint64_t(1), uint64_t(7)));

/** Two images identical except for one instruction: the tampered one
 *  goes to the ISS, so the gate core plays the reference. */
struct BugPair {
    isa::Image gate;
    isa::Image iss;
};

BugPair
makeBugPair(const std::string &good_line, const std::string &bad_line)
{
    std::string head = R"(
        mov #1234, r4
        mov #40, r5
        add r5, r4
)";
    std::string tail = R"(
        mov r4, &0x0300
        add r5, r4
        xor r4, r5
)";
    BugPair p;
    p.gate = isa::assemble(
        test::wrapProgram(head + "        " + good_line + "\n" + tail));
    p.iss = isa::assemble(
        test::wrapProgram(head + "        " + bad_line + "\n" + tail));
    return p;
}

TEST(CosimInjectedBug, RegisterBugCaughtAndLocated)
{
    BugPair p = makeBugPair("add #1, r4", "add #2, r4");
    cosim::Result r =
        cosim::run(test::sharedSystem(), p.gate, p.iss, {});
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.divergence.kind, cosim::Divergence::Kind::Register);
    // The divergence is visible at the boundary following the
    // tampered instruction.
    EXPECT_GT(r.divergence.cycle, 0u);
    EXPECT_GT(r.divergence.instrIndex, 4u);
    EXPECT_NE(r.divergence.detail.find("r4"), std::string::npos)
        << r.report();
    // The report names kind, location and carries a disassembly
    // window with the faulting instruction marked.
    std::string rep = r.report();
    EXPECT_NE(rep.find("register"), std::string::npos);
    EXPECT_NE(rep.find("gate cycle"), std::string::npos);
    EXPECT_NE(rep.find("> 0x"), std::string::npos);
    // The window is disassembled from the (tampered) ISS image.
    EXPECT_NE(rep.find("add #2, r4"), std::string::npos) << rep;
}

TEST(CosimInjectedBug, MemWriteBugCaught)
{
    BugPair p = makeBugPair("mov #5, &0x0310", "mov #6, &0x0310");
    cosim::Result r =
        cosim::run(test::sharedSystem(), p.gate, p.iss, {});
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.divergence.kind, cosim::Divergence::Kind::MemWrite);
    EXPECT_NE(r.divergence.detail.find("0x0310"), std::string::npos)
        << r.report();
}

TEST(CosimInjectedBug, BranchBugCaught)
{
    // Z is set by `mov #0 -> tst`: jeq taken, jne not -- the two
    // sides part ways at the branch and the checker reports the PC
    // split.
    std::string head = "        mov #0, r4\n        tst r4\n";
    std::string tail = "        mov #7, r6\nskip_t:\n        nop\n";
    isa::Image gate = isa::assemble(
        test::wrapProgram(head + "        jeq skip_t\n" + tail));
    isa::Image iss = isa::assemble(
        test::wrapProgram(head + "        jne skip_t\n" + tail));
    cosim::Result r = cosim::run(test::sharedSystem(), gate, iss, {});
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.divergence.kind, cosim::Divergence::Kind::Pc)
        << r.report();
    EXPECT_NE(r.divergence.detail.find("next pc"), std::string::npos);
}

TEST(CosimInjectedBug, CycleScheduleBugCaught)
{
    // Same architectural result, different cycle count: indexed vs
    // register addressing of the same value. Registers all match, so
    // only the end-of-run cycle comparison can catch it.
    std::string head = "        mov #21, r4\n        mov r4, &0x0300\n";
    isa::Image gate = isa::assemble(
        test::wrapProgram(head + "        mov &0x0300, r5\n"));
    isa::Image iss = isa::assemble(
        test::wrapProgram(head + "        mov r4, r5\n"));
    cosim::Result r = cosim::run(test::sharedSystem(), gate, iss, {});
    ASSERT_FALSE(r.ok);
    // The first observable difference may be the cycle count or an
    // intermediate fetch-address mismatch, depending on alignment;
    // either way the run must not pass.
    EXPECT_NE(r.divergence.kind, cosim::Divergence::Kind::None);
}

TEST(CosimChecker, MatchedProgramRunsCleanAndCountsMatch)
{
    isa::Image img = isa::assemble(test::wrapProgram(R"(
        mov #6, r4
        mov #0, r5
c_loop:
        add r4, r5
        push r4
        pop r6
        dec r4
        jnz c_loop
        mov r5, &0x0300
        mov &0x0300, r7
    )"));
    cosim::Result r = cosim::run(test::sharedSystem(), img, {});
    ASSERT_TRUE(r.ok) << r.report();
    EXPECT_EQ(r.gateCycles, r.issCycles);
    EXPECT_GT(r.instructionsRetired, 30u);
}

TEST(CosimChecker, PortInputFlowsThroughBothModels)
{
    isa::Image img = isa::assemble(test::wrapProgram(R"(
        mov &0x0020, r4
        add #3, r4
        mov r4, &0x0300
        mov r4, &0x0022
    )"));
    cosim::Options opts;
    opts.portIn = 0xbeef;
    cosim::Result r = cosim::run(test::sharedSystem(), img, opts);
    ASSERT_TRUE(r.ok) << r.report();
}

} // namespace
} // namespace ulpeak
