#include "hw/builder.hh"

#include <cassert>
#include <stdexcept>

namespace ulpeak {
namespace hw {

void
Reg::connect(const Bus &d)
{
    if (connected_)
        throw std::logic_error("register connected twice");
    if (d.size() != q_.size())
        throw std::invalid_argument("register width mismatch");
    for (size_t i = 0; i < d.size(); ++i)
        b_->netlist().setFanin(q_[i], 0, d[i]);
    connected_ = true;
}

Builder::Builder(Netlist &nl) : nl_(&nl)
{
    moduleStack_.push_back(kTopModule);
}

void
Builder::pushModule(const std::string &name)
{
    moduleStack_.push_back(nl_->addModule(name, moduleStack_.back()));
}

void
Builder::popModule()
{
    assert(moduleStack_.size() > 1);
    moduleStack_.pop_back();
}

Sig
Builder::emit(CellKind kind, std::initializer_list<Sig> fanins)
{
    return nl_->addGate(kind, fanins, moduleStack_.back());
}

Sig
Builder::zero()
{
    if (const0_ == kNoGate)
        const0_ = nl_->addGate(CellKind::Const0, {}, kTopModule);
    return const0_;
}

Sig
Builder::one()
{
    if (const1_ == kNoGate)
        const1_ = nl_->addGate(CellKind::Const1, {}, kTopModule);
    return const1_;
}

Sig
Builder::input(const std::string &name)
{
    Sig s = emit(CellKind::Input, {});
    if (!name.empty())
        nl_->setName(s, name);
    return s;
}

Bus
Builder::busInput(unsigned width, const std::string &name)
{
    Bus bus(width);
    for (unsigned i = 0; i < width; ++i) {
        bus[i] = emit(CellKind::Input, {});
        if (!name.empty())
            nl_->setName(bus[i], name + "[" + std::to_string(i) + "]");
    }
    return bus;
}

Bus
Builder::busConst(unsigned width, uint32_t value)
{
    Bus bus(width);
    for (unsigned i = 0; i < width; ++i)
        bus[i] = (value >> i) & 1 ? one() : zero();
    return bus;
}

Sig Builder::buf(Sig a) { return emit(CellKind::Buf, {a}); }
Sig Builder::inv(Sig a) { return emit(CellKind::Inv, {a}); }
Sig Builder::and2(Sig a, Sig b) { return emit(CellKind::And2, {a, b}); }
Sig Builder::or2(Sig a, Sig b) { return emit(CellKind::Or2, {a, b}); }
Sig Builder::nand2(Sig a, Sig b) { return emit(CellKind::Nand2, {a, b}); }
Sig Builder::nor2(Sig a, Sig b) { return emit(CellKind::Nor2, {a, b}); }
Sig Builder::xor2(Sig a, Sig b) { return emit(CellKind::Xor2, {a, b}); }
Sig Builder::xnor2(Sig a, Sig b) { return emit(CellKind::Xnor2, {a, b}); }

Sig
Builder::mux(Sig sel, Sig a0, Sig a1)
{
    return emit(CellKind::Mux2, {a0, a1, sel});
}

Sig
Builder::aoi21(Sig a, Sig b, Sig c)
{
    return emit(CellKind::Aoi21, {a, b, c});
}

Sig
Builder::oai21(Sig a, Sig b, Sig c)
{
    return emit(CellKind::Oai21, {a, b, c});
}

Sig
Builder::andN(const Bus &xs)
{
    if (xs.empty())
        return one();
    Bus level = xs;
    while (level.size() > 1) {
        Bus next;
        size_t i = 0;
        while (i < level.size()) {
            size_t rem = level.size() - i;
            if (rem >= 4) {
                next.push_back(emit(CellKind::And4,
                                    {level[i], level[i + 1],
                                     level[i + 2], level[i + 3]}));
                i += 4;
            } else if (rem == 3) {
                next.push_back(emit(CellKind::And3,
                                    {level[i], level[i + 1],
                                     level[i + 2]}));
                i += 3;
            } else if (rem == 2) {
                next.push_back(and2(level[i], level[i + 1]));
                i += 2;
            } else {
                next.push_back(level[i]);
                i += 1;
            }
        }
        level = std::move(next);
    }
    return level[0];
}

Sig
Builder::orN(const Bus &xs)
{
    if (xs.empty())
        return zero();
    Bus level = xs;
    while (level.size() > 1) {
        Bus next;
        size_t i = 0;
        while (i < level.size()) {
            size_t rem = level.size() - i;
            if (rem >= 4) {
                next.push_back(emit(CellKind::Or4,
                                    {level[i], level[i + 1],
                                     level[i + 2], level[i + 3]}));
                i += 4;
            } else if (rem == 3) {
                next.push_back(emit(CellKind::Or3,
                                    {level[i], level[i + 1],
                                     level[i + 2]}));
                i += 3;
            } else if (rem == 2) {
                next.push_back(or2(level[i], level[i + 1]));
                i += 2;
            } else {
                next.push_back(level[i]);
                i += 1;
            }
        }
        level = std::move(next);
    }
    return level[0];
}

Bus
Builder::busNot(const Bus &a)
{
    Bus r(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = inv(a[i]);
    return r;
}

Bus
Builder::busAnd(const Bus &a, const Bus &b)
{
    assert(a.size() == b.size());
    Bus r(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = and2(a[i], b[i]);
    return r;
}

Bus
Builder::busOr(const Bus &a, const Bus &b)
{
    assert(a.size() == b.size());
    Bus r(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = or2(a[i], b[i]);
    return r;
}

Bus
Builder::busXor(const Bus &a, const Bus &b)
{
    assert(a.size() == b.size());
    Bus r(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = xor2(a[i], b[i]);
    return r;
}

Bus
Builder::busAndScalar(const Bus &a, Sig s)
{
    Bus r(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        r[i] = and2(a[i], s);
    return r;
}

Bus
Builder::busMux(Sig sel, const Bus &a0, const Bus &a1)
{
    assert(a0.size() == a1.size());
    Bus r(a0.size());
    for (size_t i = 0; i < a0.size(); ++i)
        r[i] = mux(sel, a0[i], a1[i]);
    return r;
}

Bus
Builder::busMuxN(const Bus &sel, const std::vector<Bus> &choices)
{
    assert(choices.size() == (size_t(1) << sel.size()));
    std::vector<Bus> level = choices;
    for (size_t s = 0; s < sel.size(); ++s) {
        std::vector<Bus> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(busMux(sel[s], level[i], level[i + 1]));
        level = std::move(next);
    }
    return level[0];
}

Bus
Builder::busMuxOneHot(const std::vector<Sig> &onehot,
                      const std::vector<Bus> &choices)
{
    assert(onehot.size() == choices.size());
    assert(!choices.empty());
    size_t width = choices[0].size();
    Bus result(width);
    for (size_t bit = 0; bit < width; ++bit) {
        Bus terms(choices.size());
        for (size_t i = 0; i < choices.size(); ++i)
            terms[i] = and2(choices[i][bit], onehot[i]);
        result[bit] = orN(terms);
    }
    return result;
}

Sig
Builder::wireDecl(const std::string &name)
{
    Sig s = nl_->addGate(CellKind::Buf, {kNoGate}, moduleStack_.back());
    if (!name.empty())
        nl_->setName(s, name);
    return s;
}

void
Builder::wireConnect(Sig wire, Sig driver)
{
    nl_->setFanin(wire, 0, driver);
}

Bus
Builder::busWireDecl(unsigned width, const std::string &name)
{
    Bus bus(width);
    for (unsigned i = 0; i < width; ++i)
        bus[i] = wireDecl(
            name.empty() ? "" : name + "[" + std::to_string(i) + "]");
    return bus;
}

void
Builder::busWireConnect(const Bus &wires, const Bus &drivers)
{
    if (wires.size() != drivers.size())
        throw std::invalid_argument("busWireConnect width mismatch");
    for (size_t i = 0; i < wires.size(); ++i)
        wireConnect(wires[i], drivers[i]);
}

Reg
Builder::regDecl(unsigned width, const std::string &name, Sig en,
                 Sig rstn)
{
    Reg r;
    r.b_ = this;
    r.q_.resize(width);
    for (unsigned i = 0; i < width; ++i) {
        CellKind kind;
        std::vector<GateId> fanins;
        if (en != kNoGate && rstn != kNoGate) {
            kind = CellKind::Dffre;
            fanins = {kNoGate, en, rstn};
        } else if (en != kNoGate) {
            kind = CellKind::Dffe;
            fanins = {kNoGate, en};
        } else if (rstn != kNoGate) {
            kind = CellKind::Dffr;
            fanins = {kNoGate, rstn};
        } else {
            kind = CellKind::Dff;
            fanins = {kNoGate};
        }
        // Placeholder D pin; Reg::connect re-points it, and finalize()
        // reports any register left unconnected.
        fanins[0] = kNoGate;
        r.q_[i] = nl_->addGate(kind, fanins, moduleStack_.back());
        if (!name.empty())
            nl_->setName(r.q_[i], name + "[" + std::to_string(i) + "]");
    }
    return r;
}

Bus
Builder::reg(const Bus &d, const std::string &name, Sig en, Sig rstn)
{
    Reg r = regDecl(unsigned(d.size()), name, en, rstn);
    r.connect(d);
    return r.q();
}

} // namespace hw
} // namespace ulpeak
