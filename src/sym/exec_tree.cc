#include "sym/exec_tree.hh"

#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace ulpeak {
namespace sym {

uint64_t
ExecTree::totalCycles() const
{
    uint64_t total = 0;
    for (const TreeNode &n : nodes_)
        total += n.powerW.size();
    return total;
}

std::vector<float>
ExecTree::flatten() const
{
    std::vector<float> out;
    for (const FlatRef &ref : flattenRefs())
        out.push_back(nodes_[ref.nodeId].powerW[ref.offset]);
    return out;
}

std::vector<ExecTree::FlatRef>
ExecTree::flattenRefs() const
{
    std::vector<FlatRef> out;
    if (nodes_.empty())
        return out;
    std::vector<uint32_t> stack{0};
    std::vector<bool> visited(nodes_.size(), false);
    while (!stack.empty()) {
        uint32_t id = stack.back();
        stack.pop_back();
        if (visited[id])
            continue;
        visited[id] = true;
        const TreeNode &n = nodes_[id];
        for (uint32_t c = 0; c < n.powerW.size(); ++c)
            out.push_back(FlatRef{id, c});
        // Depth-first order: push children reversed.
        for (auto it = n.edges.rbegin(); it != n.edges.rend(); ++it)
            if (it->child != kNoNode && !visited[it->child])
                stack.push_back(it->child);
    }
    return out;
}

namespace {

struct EnergyMemo {
    std::vector<int8_t> state; // 0 unvisited, 1 on-stack, 2 done
    std::vector<PathEnergy> best;
};

PathEnergy
visit(const ExecTree &tree, uint32_t id,
      const std::vector<double> &self_energy_j, unsigned loop_bound,
      EnergyMemo &memo)
{
    if (memo.state[id] == 2)
        return memo.best[id];
    if (memo.state[id] == 1) {
        // Back-edge: an input-dependent loop survived dedup. Bound it
        // explicitly (Section 3.3: "the maximum number of iterations
        // may be determined by static analysis or user input").
        if (loop_bound == 0)
            throw std::runtime_error(
                "unbounded input-dependent loop in execution tree; "
                "provide inputDependentLoopBound");
        return PathEnergy{0.0, 0};
    }
    memo.state[id] = 1;

    const TreeNode &n = tree.node(id);
    PathEnergy self;
    self.energyJ = self_energy_j[id];
    self.cycles = n.powerW.size();

    PathEnergy bestChild;
    bool sawBackEdge = false;
    for (const TreeEdge &e : n.edges) {
        if (e.child == kNoNode)
            continue;
        bool childOnStack =
            memo.state[e.child] == 1;
        PathEnergy pe =
            visit(tree, e.child, self_energy_j, loop_bound, memo);
        if (childOnStack)
            sawBackEdge = true;
        if (pe.energyJ > bestChild.energyJ)
            bestChild = pe;
    }
    PathEnergy total{self.energyJ + bestChild.energyJ,
                     self.cycles + bestChild.cycles};
    if (sawBackEdge) {
        // Conservative bound: the whole loop body repeats loop_bound
        // times.
        total.energyJ += self.energyJ * (loop_bound > 0
                                             ? double(loop_bound - 1)
                                             : 0.0);
        total.cycles +=
            self.cycles * (loop_bound > 0 ? loop_bound - 1 : 0);
    }
    memo.state[id] = 2;
    memo.best[id] = total;
    return total;
}

} // namespace

std::vector<float>
ExecTree::envelopePowerW(unsigned loop_bound,
                         uint64_t pair_budget) const
{
    std::vector<float> env;
    if (nodes_.empty())
        return env;

    // Detect back-edges (iterative three-color DFS over nodes): a
    // cycle means walks can revisit a node, so offsets are unbounded
    // without a loop bound.
    unsigned backEdges = 0;
    {
        std::vector<int8_t> color(nodes_.size(), 0);
        // (node, next-edge-index) explicit stack.
        std::vector<std::pair<uint32_t, size_t>> dfs{{0, 0}};
        color[0] = 1;
        while (!dfs.empty()) {
            auto &[id, ei] = dfs.back();
            const TreeNode &n = nodes_[id];
            if (ei >= n.edges.size()) {
                color[id] = 2;
                dfs.pop_back();
                continue;
            }
            uint32_t child = n.edges[ei++].child;
            if (child == kNoNode)
                continue;
            if (color[child] == 1) {
                ++backEdges;
            } else if (color[child] == 0) {
                color[child] = 1;
                dfs.emplace_back(child, 0);
            }
        }
    }
    if (backEdges && loop_bound == 0)
        throw std::runtime_error(
            "unbounded input-dependent loop in execution tree; "
            "provide inputDependentLoopBound");
    // A legal walk takes each of the B back-edges at most loop_bound
    // times per enclosing iteration, so node visits multiply to at
    // most loop_bound^B nestings and every legal offset is below
    // totalCycles * loop_bound^B. Saturate the product instead of
    // overflowing: a cap that large is never reached -- the pair
    // budget throws (loudly) long before, rather than an undersized
    // cap silently truncating legal walks of nested loops.
    uint64_t cap = UINT64_MAX;
    if (backEdges) {
        cap = totalCycles();
        for (unsigned b = 0; b < backEdges; ++b) {
            if (cap > (uint64_t(1) << 42))
                break; // saturated; pair_budget is the real guard
            cap *= uint64_t(loop_bound);
        }
    }

    // Max-merge every reachable (node, start-offset) pair. The pair
    // set -- not the visit order -- determines the result, because
    // per-cycle float max is order-independent.
    std::vector<std::unordered_set<uint64_t>> seen(nodes_.size());
    std::vector<std::pair<uint32_t, uint64_t>> work{{0, 0}};
    seen[0].insert(0);
    uint64_t pairs = 0;
    while (!work.empty()) {
        auto [id, start] = work.back();
        work.pop_back();
        if (++pairs > pair_budget)
            throw std::runtime_error(
                "envelope pair budget exhausted (pathologically "
                "merge-heavy execution tree)");
        const TreeNode &n = nodes_[id];
        if (env.size() < start + n.powerW.size())
            env.resize(start + n.powerW.size(), 0.0f);
        for (size_t c = 0; c < n.powerW.size(); ++c)
            if (n.powerW[c] > env[start + c])
                env[start + c] = n.powerW[c];
        uint64_t childStart = start + n.powerW.size();
        if (childStart >= cap)
            continue;
        for (const TreeEdge &e : n.edges) {
            if (e.child == kNoNode)
                continue;
            if (seen[e.child].insert(childStart).second)
                work.emplace_back(e.child, childStart);
        }
    }
    return env;
}

PathEnergy
ExecTree::maxPathEnergy(double tclk, unsigned loop_bound) const
{
    if (nodes_.empty())
        return PathEnergy{};
    // Per-node self energies in the node's own per-cycle
    // multiply-accumulate order (bit-identical to summing inline).
    std::vector<double> self(nodes_.size(), 0.0);
    for (size_t id = 0; id < nodes_.size(); ++id)
        for (float w : nodes_[id].powerW)
            self[id] += double(w) * tclk;
    EnergyMemo memo;
    memo.state.assign(nodes_.size(), 0);
    memo.best.assign(nodes_.size(), PathEnergy{});
    return visit(*this, 0, self, loop_bound, memo);
}

PathEnergy
ExecTree::maxPathEnergy(const std::vector<double> &tclk_by_phase,
                        unsigned loop_bound) const
{
    if (nodes_.empty())
        return PathEnergy{};
    if (tclk_by_phase.empty())
        throw std::invalid_argument(
            "maxPathEnergy: tclk_by_phase must be non-empty");
    const uint64_t period = tclk_by_phase.size();
    // Each node's start offset in post-reset cycles, mod the
    // schedule period. Parents are always allocated before their
    // children (newNode takes an existing parent), so one ascending
    // pass suffices. Dedup keys include the schedule phase, so every
    // walk reaches a merged node at a congruent offset and the
    // creating parent's offset is representative.
    std::vector<uint64_t> start(nodes_.size(), 0);
    for (size_t id = 1; id < nodes_.size(); ++id) {
        uint32_t p = nodes_[id].parent;
        start[id] = p == kNoNode
                        ? 0
                        : (start[p] + nodes_[p].powerW.size()) %
                              period;
    }
    std::vector<double> self(nodes_.size(), 0.0);
    for (size_t id = 0; id < nodes_.size(); ++id) {
        const TreeNode &n = nodes_[id];
        for (size_t c = 0; c < n.powerW.size(); ++c)
            self[id] += double(n.powerW[c]) *
                        tclk_by_phase[size_t((start[id] + c) %
                                             period)];
    }
    EnergyMemo memo;
    memo.state.assign(nodes_.size(), 0);
    memo.best.assign(nodes_.size(), PathEnergy{});
    return visit(*this, 0, self, loop_bound, memo);
}

} // namespace sym
} // namespace ulpeak
