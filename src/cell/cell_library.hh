/**
 * @file
 * Synthetic standard-cell library.
 *
 * The paper synthesizes openMSP430 into TSMC 65GP standard cells and runs
 * Synopsys PrimeTime power analysis on the placed-and-routed netlist. We
 * substitute a synthetic cell library: each cell kind carries input
 * capacitance, internal per-transition switching energy, output drive
 * (load handled via fanout capacitance), leakage power and area. The
 * absolute constants are calibrated (see CellLibrary::tsmc65Like and
 * CellLibrary::f1610Like) so totals land in the paper's milliwatt range;
 * all of the paper's *comparative* results depend only on relative
 * activity, which the library preserves.
 *
 * The library also provides the "maximum power transition" lookup used by
 * Algorithm 2: for a gate whose value is X in two consecutive cycles, the
 * peak-power assignment picks the transition of that cell with the highest
 * energy (for CMOS cells the 0->1 output transition, which charges the
 * output load, is the more expensive one here).
 */

#ifndef ULPEAK_CELL_CELL_LIBRARY_HH
#define ULPEAK_CELL_CELL_LIBRARY_HH

#include <array>
#include <cstdint>
#include <string>

#include "logic/v4.hh"

namespace ulpeak {

/**
 * Every cell kind the hardware builder may instantiate. Combinational
 * kinds come first; sequential kinds (DFF*) last. INPUT denotes a primary
 * input (driven by the simulator each cycle); CONST0/1 are tie cells.
 */
enum class CellKind : uint8_t {
    Const0,
    Const1,
    Input,
    Buf,
    Inv,
    And2,
    And3,
    And4,
    Or2,
    Or3,
    Or4,
    Nand2,
    Nand3,
    Nand4,
    Nor2,
    Nor3,
    Nor4,
    Xor2,
    Xnor2,
    Mux2,   ///< in: a, b, sel; out = sel ? b : a
    Aoi21,  ///< out = !((a & b) | c)
    Oai21,  ///< out = !((a | b) & c)
    Aoi22,  ///< out = !((a & b) | (c & d))
    Oai22,  ///< out = !((a | b) & (c | d))
    Dff,    ///< in: d
    Dffe,   ///< in: d, en      (en==0 holds)
    Dffr,   ///< in: d, rstn    (rstn==0 clears)
    Dffre,  ///< in: d, en, rstn
    NumKinds,
};

constexpr size_t kNumCellKinds = size_t(CellKind::NumKinds);

/** @return true for the DFF* kinds. */
bool isSequential(CellKind k);

/** @return number of data fanins for @p k (0 for Const/Input). */
unsigned cellFaninCount(CellKind k);

/** Canonical liberty-style cell name, e.g. "NAND2_X1". */
const char *cellName(CellKind k);

/**
 * Evaluate the combinational function of @p k over three-valued inputs.
 * Must not be called for sequential or source kinds.
 */
V4 evalCell(CellKind k, const V4 *in);

/**
 * Compute the next state of a sequential cell at a clock edge.
 *
 * @param k     sequential cell kind
 * @param q     present output value
 * @param in    fanin values at the edge (d [, en][, rstn])
 * @param held  out-param: set true when the cell provably kept its value
 *              (e.g. enable low), which the activity tracker uses to rule
 *              out a toggle even for X values.
 */
V4 evalSeqCell(CellKind k, V4 q, const V4 *in, bool &held);

/** Per-cell electrical / power parameters. */
struct CellParams {
    double inputCapF = 0.0;     ///< capacitance per input pin [F]
    double riseEnergyJ = 0.0;   ///< internal energy, output 0->1 [J]
    double fallEnergyJ = 0.0;   ///< internal energy, output 1->0 [J]
    double leakageW = 0.0;      ///< static leakage [W]
    double areaUm2 = 0.0;       ///< cell area [um^2]
    double clkPinEnergyJ = 0.0; ///< per-cycle clock-pin energy (seq only)
};

/**
 * A calibrated cell library: parameters for every kind plus the global
 * electrical context (supply, wire load per fanout).
 */
class CellLibrary {
  public:
    /** 65 nm-class profile used for the openMSP430-like evaluations. */
    static CellLibrary tsmc65Like();
    /**
     * 130 nm-class profile standing in for the MSP430F1610 silicon
     * measured in Chapter 2 (higher caps, lower frequency context).
     */
    static CellLibrary f1610Like();

    const CellParams &
    params(CellKind k) const
    {
        return params_[size_t(k)];
    }

    double vdd() const { return vdd_; }
    /** Wire + receiver load added per fanout connection [F]. */
    double wireCapPerFanoutF() const { return wireCapPerFanout_; }
    const std::string &name() const { return name_; }

    /**
     * Energy of one output transition of a @p k cell driving
     * @p fanouts receivers. 0->1 charges the load (0.5*C*V^2 on top of
     * internal energy); 1->0 dissipates the internal energy only (the
     * load discharge energy was accounted at charge time).
     */
    double transitionEnergyJ(CellKind k, bool rising,
                             unsigned fanouts) const;

    /** Algorithm 2's maxTransition: the costlier of rise/fall. */
    double maxTransitionEnergyJ(CellKind k, unsigned fanouts) const;

    /**
     * Dynamic-energy scale factor of running this library at supply
     * @p vdd_v instead of its calibration voltage: (vdd_v / vdd())^2.
     * Every dynamic term here -- internal rise/fall energy, the
     * 0.5*C*V^2 load charge, and the clock-pin energy -- is
     * proportional to vdd^2, so one factor rescales a whole cycle's
     * switching energy (what the operating-mode schedules of
     * scenario::OperatingMode rely on). Throws std::invalid_argument
     * unless @p vdd_v is positive and finite.
     */
    double energyScale(double vdd_v) const;

    /**
     * transitionEnergyJ evaluated at supply @p vdd_v: the calibrated
     * energy (internal + load-charge terms) times
     * energyScale(vdd_v). energyScale(vdd()) == 1 exactly, so the
     * default operating point reproduces transitionEnergyJ
     * bit-for-bit. Clock-pin energy scales by the same factor --
     * the engine applies energyScale to whole per-cycle switching
     * energies, which the simulator accumulates with clkPinEnergyJ
     * already inside.
     */
    double scaledTransitionEnergyJ(CellKind k, bool rising,
                                   unsigned fanouts,
                                   double vdd_v) const;

    /**
     * The first/second cycle values of the maximum-power transition of
     * cell @p k (paper: maxTransition(g,1) / maxTransition(g,2)). For
     * every cell here the rising output transition is the expensive one,
     * so this returns 0 then 1.
     */
    V4 maxTransitionValue(CellKind k, unsigned phase) const;

  private:
    CellLibrary() = default;

    std::string name_;
    double vdd_ = 1.0;
    double wireCapPerFanout_ = 0.0;
    std::array<CellParams, kNumCellKinds> params_{};
};

} // namespace ulpeak

#endif // ULPEAK_CELL_CELL_LIBRARY_HH
